// Command oijsend feeds CSV data to an oijd server and writes the join
// results back out as CSV — the client half of the serving pair.
//
//	oijsend -addr 127.0.0.1:7781 \
//	    -probe orders.csv  -probe-key user -probe-time ts -probe-value amount \
//	    -base  requests.csv -base-key user -base-time ts \
//	    -time-format unixms > features.csv
//
// Rows from both files are merged by event timestamp and streamed in that
// order; results are written as "seq,ts,key,agg,matches" lines.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"oij/internal/csvsrc"
	"oij/internal/server"
	"oij/internal/tuple"
	"oij/internal/wire"
)

// fail prints a classified error and exits nonzero. Lost connections get a
// message naming the server rather than the raw EPIPE/ECONNRESET the
// kernel produced.
func fail(addr, op string, err error) {
	if errors.Is(err, server.ErrDisconnected) {
		fmt.Fprintf(os.Stderr, "oijsend: connection to %s lost during %s: %v\n", addr, op, err)
	} else {
		fmt.Fprintf(os.Stderr, "oijsend: %s: %v\n", op, err)
	}
	os.Exit(1)
}

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7781", "oijd address")
		probeF  = flag.String("probe", "", "probe-stream CSV file (the joined data)")
		baseF   = flag.String("base", "", "base-stream CSV file (the feature requests)")
		pKey    = flag.String("probe-key", "key", "probe key column")
		pTime   = flag.String("probe-time", "ts", "probe timestamp column")
		pVal    = flag.String("probe-value", "", "probe value column (empty = 0)")
		bKey    = flag.String("base-key", "key", "base key column")
		bTime   = flag.String("base-time", "ts", "base timestamp column")
		tFormat = flag.String("time-format", "unixus", "timestamp format: unixus|unixms|unixs|rfc3339")
		latency = flag.Bool("latency", false, "append a latency_ms column: client-observed send-to-result time per request, matched by the request ID each frame carries")
	)
	flag.Parse()
	if *probeF == "" && *baseF == "" {
		fmt.Fprintln(os.Stderr, "oijsend: need at least one of -probe / -base")
		os.Exit(2)
	}

	load := func(path, key, ts, val string) []csvsrc.Record {
		if path == "" {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oijsend: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		sc, err := csvsrc.NewScanner(f, csvsrc.Mapping{
			Key: key, Time: ts, Value: val, TimeFormat: csvsrc.TimeFormat(*tFormat),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "oijsend: %s: %v\n", path, err)
			os.Exit(1)
		}
		recs, err := sc.ReadAll()
		if err != nil {
			fmt.Fprintf(os.Stderr, "oijsend: %s: %v\n", path, err)
			os.Exit(1)
		}
		return recs
	}
	probes := load(*probeF, *pKey, *pTime, *pVal)
	bases := load(*baseF, *bKey, *bTime, "")

	// Merge by event time so the server's watermark advances sanely.
	type ev struct {
		rec  csvsrc.Record
		base bool
	}
	evs := make([]ev, 0, len(probes)+len(bases))
	for _, r := range probes {
		evs = append(evs, ev{r, false})
	}
	for _, r := range bases {
		evs = append(evs, ev{r, true})
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].rec.TS < evs[j].rec.TS })

	c, err := server.Dial(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oijsend: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()

	// Send times by request ID, for -latency. Entries are stored *before*
	// the request hits the wire (request IDs are assigned sequentially, so
	// the next one is predictable), which keeps the lock off the blocking
	// send path and guarantees the receiver never sees a result whose send
	// time is missing.
	sendTimes := make(map[uint64]time.Time)
	var sendMu sync.Mutex
	var nextSeq uint64

	// Drain results concurrently with sending so neither side stalls.
	var wg sync.WaitGroup
	wg.Add(1)
	var recvErr error
	var nacked int
	go func() {
		defer wg.Done()
		if *latency {
			fmt.Println("seq,ts,key,agg,matches,latency_ms")
		} else {
			fmt.Println("seq,ts,key,agg,matches")
		}
		for {
			m, err := c.Recv()
			if err != nil {
				recvErr = err
				return
			}
			switch m.Kind {
			case wire.TagResult:
				r := m.Result
				if *latency {
					sendMu.Lock()
					t0, ok := sendTimes[r.Seq]
					delete(sendTimes, r.Seq)
					sendMu.Unlock()
					ms := -1.0
					if ok {
						ms = float64(time.Since(t0).Microseconds()) / 1000
					}
					fmt.Printf("%d,%d,%d,%g,%d,%.3f\n", r.Seq, r.TS, r.Key, r.Agg, r.Matches, ms)
				} else {
					fmt.Printf("%d,%d,%d,%g,%d\n", r.Seq, r.TS, r.Key, r.Agg, r.Matches)
				}
			case wire.TagNack:
				n := server.NackError{Seq: m.Nack.Seq, Code: m.Nack.Code}
				fmt.Fprintf(os.Stderr, "oijsend: %v\n", &n)
				nacked++
			case wire.TagFlush: // everything answered
				return
			}
		}
	}()

	sent := 0
	for _, e := range evs {
		var err error
		if e.base {
			if *latency {
				sendMu.Lock()
				sendTimes[nextSeq] = time.Now()
				sendMu.Unlock()
			}
			nextSeq++
			_, err = c.SendBase(tuple.Key(e.rec.Key), e.rec.TS, e.rec.Val)
		} else {
			err = c.SendProbe(tuple.Key(e.rec.Key), e.rec.TS, e.rec.Val)
		}
		if err != nil {
			fail(*addr, "send", err)
		}
		sent++
	}
	if err := c.Barrier(); err != nil {
		fail(*addr, "flush", err)
	}
	wg.Wait()
	if recvErr != nil {
		fail(*addr, "recv", recvErr)
	}
	fmt.Fprintf(os.Stderr, "oijsend: streamed %d tuples (%d requests)\n", sent, len(bases))
	if nacked > 0 {
		fmt.Fprintf(os.Stderr, "oijsend: %d request(s) rejected by the server's overload control\n", nacked)
		os.Exit(1)
	}
}
