package main

import (
	"flag"
	"fmt"
	"io"
	"time"

	"oij/internal/agg"
	"oij/internal/control"
	"oij/internal/engine"
	"oij/internal/harness"
	"oij/internal/server"
	"oij/internal/sql"
	"oij/internal/window"
)

// options is the fully resolved daemon configuration; parseArgs builds one
// from an argument slice so the unit tests drive the exact code path main
// dispatches to.
type options struct {
	addr   string
	cfg    server.Config
	banner string // one-line description of the declared join, for startup output
}

// parseArgs resolves the oijd command line into a server configuration.
// Errors are suitable for printing (the FlagSet's own output goes to w).
func parseArgs(args []string, w io.Writer) (*options, error) {
	fs := flag.NewFlagSet("oijd", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		addr     = fs.String("addr", "127.0.0.1:7781", "listen address")
		sqlText  = fs.String("sql", "", "join declaration in the OpenMLDB dialect (overrides -pre/-fol/-lateness/-agg)")
		pre      = fs.Duration("pre", time.Minute, "window PRECEDING offset")
		fol      = fs.Duration("fol", 0, "window FOLLOWING offset")
		lateness = fs.Duration("lateness", time.Second, "out-of-order bound")
		aggName  = fs.String("agg", "sum", "aggregation: sum|count|avg|min|max")
		alg      = fs.String("algorithm", harness.ScaleOIJ, "engine variant")
		parallel = fs.Int("parallel", 4, "joiner goroutines")
		exact    = fs.Bool("exact", false, "emit on watermark (exact event-time results) instead of on arrival")
		wal      = fs.String("wal", "", "write-ahead log path: probe state survives restarts")
		walSync  = fs.String("wal-sync", "interval", "WAL durability: interval (fsync on the heartbeat cadence), always (fsync before each append), none (let the OS persist)")
		admin    = fs.String("admin", "", "observability address serving /metrics, /statusz, /debug/pprof (e.g. :7782)")

		replicateTo = fs.String("replicate-to", "",
			"replication listen address: stream the WAL to hot standbys that connect here (e.g. :7783; requires -wal)")
		standbyOf = fs.String("standby-of", "",
			"run as a hot standby of the primary at this replication address: apply its WAL, refuse writes, promote on lease expiry (requires -wal)")
		lease = fs.Duration("lease", 0,
			"failure-detection budget for automatic failover: the standby promotes after this long of silence, the primary self-fences at 3/4 of it (0 defaults to 3s when replication is on; negative disables auto-failover)")
		maxReplLag = fs.Int64("max-repl-lag", 0,
			"replication lag alarm in bytes: above it the primary records a lag_exceeded flight event and dumps the flight recorder (0 disables)")

		admission = fs.String("admission", server.AdmissionBlock,
			"overload admission policy when the ingest queue is full: block (senders wait), shed-probes (drop probe data, requests wait), reject (drop probes and NACK requests)")
		deadline = fs.Duration("deadline", 0,
			"per-request deadline: feature requests queued longer are answered with a deadline NACK (0 disables)")
		memCap = fs.Int64("mem-cap", 0,
			"buffered-probe cap: above it the server sheds oldest-window probes first (0 disables)")
		slowGrace = fs.Duration("slow-grace", 0,
			"slow-consumer grace before a non-draining session is evicted (0 keeps the server default, negative disables eviction)")

		traceSample = fs.Int("trace-sample", 0,
			"trace every Nth feature request through the pipeline stages, scrapeable at /tracez (0 disables sampling; the flight recorder stays on regardless)")
		traceRing = fs.Int("trace-ring", 0,
			"completed trace spans retained for /tracez (0 keeps the server default)")
		flightDump = fs.String("flight-dump", "",
			"file the flight recorder auto-dumps to on evictions, stalls, and memory-pressure transitions (empty disables auto-dump; /debug/flightrecorder always works)")

		hotKeys = fs.Int("hot-keys", 0,
			"top-K hot keys tracked per joiner per stream with a SpaceSaving sketch, shown on /statusz and as /timeline skew series (0 keeps the server default of 16, negative disables)")
		sloWindow = fs.Duration("slo-window", 0,
			"trailing window the /healthz burn rates are computed over (0 keeps the server default of 30s)")
		sloP99 = fs.Duration("slo-p99", 0,
			"/healthz goes 503 while the window-averaged p99 request latency exceeds this (0 disables the dimension)")
		sloShedRate = fs.Float64("slo-shed-rate", 0,
			"/healthz goes 503 while shed+NACK events per second exceed this (0 disables)")
		sloLag = fs.Duration("slo-lag", 0,
			"/healthz goes 503 while the window-averaged watermark lag exceeds this (0 disables)")
		sloMemLevel = fs.Int("slo-mem-level", 0,
			"/healthz goes 503 while any sample in the window reaches this memory-pressure rung, 1 or 2 (0 disables)")

		profileDir = fs.String("profile-dir", "",
			"continuous-profiling ring directory: short CPU slices plus heap/mutex/block snapshots are captured periodically and on incidents, served at /profilez (empty disables profiling)")
		profilePeriod = fs.Duration("profile-period", 0,
			"continuous-profiling duty cycle: one capture round per period (0 keeps the default of 60s)")
		profileCPUSlice = fs.Duration("profile-cpu-slice", 0,
			"CPU profile slice length per round; must be shorter than -profile-period (0 keeps the default of 2s)")
		profileRetain = fs.Int("profile-retain", 0,
			"profiles kept in the on-disk ring before the oldest are evicted (0 keeps the default of 32)")

		controller = fs.Bool("controller", false,
			"enable the adaptive self-tuning controller: retunes active joiners, admission policy, trace sampling, and the soft memory watermark live against the SLO (inspect and override at /controlz)")
		ctlMinJoiners = fs.Int("ctl-min-joiners", 0,
			"controller floor on active joiners (0 keeps the default of 1)")
		ctlMaxJoiners = fs.Int("ctl-max-joiners", 0,
			"controller ceiling on active joiners; the engine pool is sized to it up front (0 keeps -parallel)")
		ctlUtilHigh = fs.Float64("ctl-util-high", 0,
			"mean active-joiner utilization that arms a scale-up (0 keeps the default of 0.85)")
		ctlUtilLow = fs.Float64("ctl-util-low", 0,
			"mean active-joiner utilization below which a healthy system scales down (0 keeps the default of 0.25)")
		ctlP99 = fs.Duration("ctl-p99", 0,
			"p99 latency target the controller's admission ladder defends (0 inherits -slo-p99)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	o := &options{
		addr: *addr,
		cfg: server.Config{
			Algorithm:         *alg,
			WALPath:           *wal,
			WALSync:           *walSync,
			AdminAddr:         *admin,
			Admission:         *admission,
			RequestDeadline:   *deadline,
			MemCapProbes:      *memCap,
			SlowConsumerGrace: *slowGrace,
			TraceSampleN:      *traceSample,
			TraceRing:         *traceRing,
			FlightDumpPath:    *flightDump,
			HotKeysK:          *hotKeys,
			SLOWindow:         *sloWindow,
			SLOP99:            *sloP99,
			SLOShedRate:       *sloShedRate,
			SLOWatermarkLag:   *sloLag,
			SLOMemLevel:       *sloMemLevel,
			ReplListenAddr:    *replicateTo,
			StandbyOf:         *standbyOf,
			ReplLease:         *lease,
			MaxReplLag:        *maxReplLag,
		},
	}
	if *sloMemLevel < 0 || *sloMemLevel > 2 {
		return nil, fmt.Errorf("-slo-mem-level must be 0, 1 or 2 (got %d)", *sloMemLevel)
	}
	if *replicateTo != "" && *standbyOf != "" {
		return nil, fmt.Errorf("-replicate-to and -standby-of are mutually exclusive (chained replication is not supported)")
	}
	if (*replicateTo != "" || *standbyOf != "") && *wal == "" {
		return nil, fmt.Errorf("replication requires a WAL (set -wal)")
	}
	if (*lease != 0 || *maxReplLag != 0) && *replicateTo == "" && *standbyOf == "" {
		return nil, fmt.Errorf("-lease and -max-repl-lag need -replicate-to or -standby-of")
	}
	if *maxReplLag < 0 {
		return nil, fmt.Errorf("-max-repl-lag must be non-negative (got %d)", *maxReplLag)
	}
	if *profileDir == "" && (*profilePeriod != 0 || *profileCPUSlice != 0 || *profileRetain != 0) {
		return nil, fmt.Errorf("-profile-* flags need -profile-dir")
	}
	if *profileDir != "" {
		if *profilePeriod < 0 {
			return nil, fmt.Errorf("-profile-period must be positive (got %s)", *profilePeriod)
		}
		if *profileCPUSlice < 0 {
			return nil, fmt.Errorf("-profile-cpu-slice must be positive (got %s)", *profileCPUSlice)
		}
		if *profileRetain < 0 {
			return nil, fmt.Errorf("-profile-retain must be positive (got %d)", *profileRetain)
		}
		period, slice := *profilePeriod, *profileCPUSlice
		if period == 0 {
			period = 60 * time.Second
		}
		if slice == 0 {
			slice = 2 * time.Second
		}
		if slice >= period {
			return nil, fmt.Errorf("-profile-cpu-slice %s must be shorter than -profile-period %s", slice, period)
		}
		o.cfg.ProfileDir = *profileDir
		o.cfg.ProfilePeriod = *profilePeriod
		o.cfg.ProfileCPUSlice = *profileCPUSlice
		o.cfg.ProfileRetain = *profileRetain
	}
	if !*controller && (*ctlMinJoiners != 0 || *ctlMaxJoiners != 0 || *ctlUtilHigh != 0 || *ctlUtilLow != 0 || *ctlP99 != 0) {
		return nil, fmt.Errorf("-ctl-* flags need -controller")
	}
	if *controller {
		if *ctlMaxJoiners != 0 && *ctlMaxJoiners < *ctlMinJoiners {
			return nil, fmt.Errorf("-ctl-max-joiners %d below -ctl-min-joiners %d", *ctlMaxJoiners, *ctlMinJoiners)
		}
		o.cfg.Control = control.Config{
			Enabled:    true,
			MinJoiners: *ctlMinJoiners,
			MaxJoiners: *ctlMaxJoiners,
			UtilHigh:   *ctlUtilHigh,
			UtilLow:    *ctlUtilLow,
			P99Target:  *ctlP99,
		}
	}
	if *sqlText != "" {
		q, err := sql.Parse(*sqlText)
		if err != nil {
			return nil, err
		}
		o.cfg.Engine.Window = q.Window
		o.cfg.Engine.Agg = q.Aggs[0].Func
		o.banner = fmt.Sprintf("%s ⋈ %s on %s over %s", q.BaseTable, q.ProbeTable, q.PartitionBy, q.Window)
	} else {
		fn, err := agg.Parse(*aggName)
		if err != nil {
			return nil, err
		}
		o.cfg.Engine.Window = window.Spec{
			Pre:      pre.Microseconds(),
			Fol:      fol.Microseconds(),
			Lateness: lateness.Microseconds(),
		}
		o.cfg.Engine.Agg = fn
	}
	o.cfg.Engine.Joiners = *parallel
	if *exact {
		o.cfg.Engine.Mode = engine.OnWatermark
	}
	return o, nil
}
