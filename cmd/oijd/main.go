// Command oijd serves an online interval join over TCP — the repository's
// OpenMLDB-style feature-serving daemon. Clients stream probe data and
// send base frames as feature requests (see internal/wire for the
// protocol; internal/server.Client is a ready-made Go client).
//
// The join is declared in the OpenMLDB SQL dialect:
//
//	oijd -addr :7781 -sql 'SELECT sum(amount) OVER w FROM requests
//	    WINDOW w AS (UNION orders PARTITION BY user ORDER BY ts
//	    ROWS_RANGE BETWEEN 1h PRECEDING AND CURRENT ROW LATENESS 5s)'
//
// or with explicit flags (-pre, -agg, ...) when no SQL is given.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/harness"
	"oij/internal/server"
	"oij/internal/sql"
	"oij/internal/window"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7781", "listen address")
		sqlText  = flag.String("sql", "", "join declaration in the OpenMLDB dialect (overrides -pre/-fol/-lateness/-agg)")
		pre      = flag.Duration("pre", time.Minute, "window PRECEDING offset")
		fol      = flag.Duration("fol", 0, "window FOLLOWING offset")
		lateness = flag.Duration("lateness", time.Second, "out-of-order bound")
		aggName  = flag.String("agg", "sum", "aggregation: sum|count|avg|min|max")
		alg      = flag.String("algorithm", harness.ScaleOIJ, "engine variant")
		parallel = flag.Int("parallel", 4, "joiner goroutines")
		exact    = flag.Bool("exact", false, "emit on watermark (exact event-time results) instead of on arrival")
		wal      = flag.String("wal", "", "write-ahead log path: probe state survives restarts")
		walSync  = flag.String("wal-sync", "interval", "WAL durability: interval (fsync on the heartbeat cadence), always (fsync before each append), none (let the OS persist)")
		admin    = flag.String("admin", "", "observability address serving /metrics, /statusz, /debug/pprof (e.g. :7782)")
	)
	flag.Parse()

	cfg := server.Config{Algorithm: *alg, WALPath: *wal, WALSync: *walSync, AdminAddr: *admin}
	if *sqlText != "" {
		q, err := sql.Parse(*sqlText)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oijd: %v\n", err)
			os.Exit(2)
		}
		cfg.Engine.Window = q.Window
		cfg.Engine.Agg = q.Aggs[0].Func
		fmt.Printf("oijd: %s ⋈ %s on %s over %s\n", q.BaseTable, q.ProbeTable, q.PartitionBy, q.Window)
	} else {
		fn, err := agg.Parse(*aggName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oijd: %v\n", err)
			os.Exit(2)
		}
		cfg.Engine.Window = window.Spec{
			Pre:      pre.Microseconds(),
			Fol:      fol.Microseconds(),
			Lateness: lateness.Microseconds(),
		}
		cfg.Engine.Agg = fn
	}
	cfg.Engine.Joiners = *parallel
	if *exact {
		cfg.Engine.Mode = engine.OnWatermark
	}

	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oijd: %v\n", err)
		os.Exit(2)
	}
	if *wal != "" {
		n, err := srv.Recover()
		if err != nil {
			fmt.Fprintf(os.Stderr, "oijd: recovering %s: %v\n", *wal, err)
			os.Exit(1)
		}
		_, skipped, truncated := srv.WALStats()
		fmt.Printf("oijd: recovered %d probes from %s (%d corrupt frames skipped, %d torn bytes truncated, sync=%s)\n",
			n, *wal, skipped, truncated, *walSync)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oijd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("oijd: serving %s with %s (%d joiners) on %s\n",
		cfg.Engine.Agg, *alg, *parallel, bound)
	if a := srv.AdminAddr(); a != nil {
		fmt.Printf("oijd: observability on http://%s (/metrics /statusz /debug/pprof)\n", a)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("oijd: shutting down")
	srv.Shutdown()
	fmt.Printf("oijd: served %d tuples\n", srv.Served())
}
