// Command oijd serves an online interval join over TCP — the repository's
// OpenMLDB-style feature-serving daemon. Clients stream probe data and
// send base frames as feature requests (see internal/wire for the
// protocol; internal/server.Client is a ready-made Go client).
//
// The join is declared in the OpenMLDB SQL dialect:
//
//	oijd -addr :7781 -sql 'SELECT sum(amount) OVER w FROM requests
//	    WINDOW w AS (UNION orders PARTITION BY user ORDER BY ts
//	    ROWS_RANGE BETWEEN 1h PRECEDING AND CURRENT ROW LATENESS 5s)'
//
// or with explicit flags (-pre, -agg, ...) when no SQL is given.
//
// Overload control is configured with -admission (block | shed-probes |
// reject), -deadline (per-request NACK deadline), -mem-cap (buffered-probe
// ceiling) and -slow-grace (slow-consumer eviction grace); see the README's
// "Operating oijd" section for the degradation ladder they form.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"oij/internal/server"
)

func main() {
	o, err := parseArgs(os.Args[1:], os.Stderr)
	if err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "oijd: %v\n", err)
		os.Exit(2)
	}

	srv, err := server.New(o.cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oijd: %v\n", err)
		os.Exit(2)
	}
	if o.banner != "" {
		fmt.Printf("oijd: %s\n", o.banner)
	}
	if o.cfg.WALPath != "" {
		n, err := srv.Recover()
		if err != nil {
			fmt.Fprintf(os.Stderr, "oijd: recovering %s: %v\n", o.cfg.WALPath, err)
			os.Exit(1)
		}
		_, skipped, truncated := srv.WALStats()
		fmt.Printf("oijd: recovered %d probes from %s (%d corrupt frames skipped, %d torn bytes truncated, sync=%s)\n",
			n, o.cfg.WALPath, skipped, truncated, o.cfg.WALSync)
	}
	bound, err := srv.Listen(o.addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oijd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("oijd: serving %s with %s (%d joiners) on %s\n",
		o.cfg.Engine.Agg, o.cfg.Algorithm, o.cfg.Engine.Joiners, bound)
	fmt.Printf("oijd: overload: admission=%s deadline=%s mem-cap=%d\n",
		o.cfg.Admission, o.cfg.RequestDeadline, o.cfg.MemCapProbes)
	if o.cfg.ReplListenAddr != "" || o.cfg.StandbyOf != "" {
		lease := o.cfg.ReplLease
		if lease == 0 {
			lease = 3 * time.Second
		}
		failover := "auto-failover on"
		if lease < 0 {
			failover = "auto-failover off"
		}
		if o.cfg.StandbyOf != "" {
			fmt.Printf("oijd: hot standby of %s (lease %s, %s): applying the primary's WAL, refusing writes until promoted\n",
				o.cfg.StandbyOf, lease, failover)
		} else {
			addr := o.cfg.ReplListenAddr
			if a := srv.ReplAddr(); a != nil {
				addr = a.String()
			}
			fmt.Printf("oijd: primary replicating to standbys on %s (lease %s, %s, max-lag %d bytes)\n",
				addr, lease, failover, o.cfg.MaxReplLag)
		}
	}
	if a := srv.AdminAddr(); a != nil {
		fmt.Printf("oijd: observability on http://%s (/metrics /statusz /tracez /timeline /healthz /debug/flightrecorder /debug/pprof)\n", a)
	}
	if o.cfg.Control.Enabled {
		cc := o.cfg.Control.WithDefaults()
		maxJ := cc.MaxJoiners
		if maxJ < o.cfg.Engine.Joiners {
			maxJ = o.cfg.Engine.Joiners
		}
		fmt.Printf("oijd: controller: joiners=[%d,%d] util=[%g,%g] p99-target=%s (inspect/override at /controlz)\n",
			cc.MinJoiners, maxJ, cc.UtilLow, cc.UtilHigh, cc.P99Target)
	}
	if o.cfg.ProfileDir != "" {
		period, slice := o.cfg.ProfilePeriod, o.cfg.ProfileCPUSlice
		if period == 0 {
			period = 60 * time.Second
		}
		if slice == 0 {
			slice = 2 * time.Second
		}
		fmt.Printf("oijd: continuous profiling to %s (%s CPU slice every %s, see /profilez)\n",
			o.cfg.ProfileDir, slice, period)
	}
	if o.cfg.TraceSampleN > 0 {
		fmt.Printf("oijd: tracing every %d. request (see /tracez)\n", o.cfg.TraceSampleN)
	}
	if o.cfg.SLOP99 > 0 || o.cfg.SLOShedRate > 0 || o.cfg.SLOWatermarkLag > 0 || o.cfg.SLOMemLevel > 0 {
		fmt.Printf("oijd: slo: window=%s p99=%s shed-rate=%g lag=%s mem-level=%d\n",
			o.cfg.SLOWindow, o.cfg.SLOP99, o.cfg.SLOShedRate, o.cfg.SLOWatermarkLag, o.cfg.SLOMemLevel)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("oijd: shutting down")
	srv.Shutdown()
	fmt.Printf("oijd: served %d tuples\n", srv.Served())
}
