package main

import (
	"io"
	"strings"
	"testing"
	"time"

	"oij/internal/engine"
	"oij/internal/harness"
	"oij/internal/server"
)

func TestParseDefaults(t *testing.T) {
	o, err := parseArgs(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "127.0.0.1:7781" {
		t.Errorf("addr = %q", o.addr)
	}
	if o.cfg.Algorithm != harness.ScaleOIJ || o.cfg.Engine.Joiners != 4 {
		t.Errorf("engine = %s/%d", o.cfg.Algorithm, o.cfg.Engine.Joiners)
	}
	if w := o.cfg.Engine.Window; w.Pre != time.Minute.Microseconds() || w.Lateness != time.Second.Microseconds() {
		t.Errorf("window = %+v", w)
	}
	if o.cfg.Admission != server.AdmissionBlock {
		t.Errorf("admission = %q", o.cfg.Admission)
	}
	if o.cfg.RequestDeadline != 0 || o.cfg.MemCapProbes != 0 || o.cfg.SlowConsumerGrace != 0 {
		t.Errorf("overload knobs not zero by default: %+v", o.cfg)
	}
	// The default configuration must actually construct a server.
	srv, err := server.New(o.cfg)
	if err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	srv.Shutdown()
}

func TestParseOverloadFlags(t *testing.T) {
	o, err := parseArgs([]string{
		"-admission", "reject",
		"-deadline", "250ms",
		"-mem-cap", "100000",
		"-slow-grace", "2s",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.cfg.Admission != server.AdmissionReject {
		t.Errorf("admission = %q", o.cfg.Admission)
	}
	if o.cfg.RequestDeadline != 250*time.Millisecond {
		t.Errorf("deadline = %v", o.cfg.RequestDeadline)
	}
	if o.cfg.MemCapProbes != 100000 {
		t.Errorf("mem-cap = %d", o.cfg.MemCapProbes)
	}
	if o.cfg.SlowConsumerGrace != 2*time.Second {
		t.Errorf("slow-grace = %v", o.cfg.SlowConsumerGrace)
	}
}

func TestParseTraceFlags(t *testing.T) {
	o, err := parseArgs([]string{
		"-trace-sample", "16",
		"-trace-ring", "128",
		"-flight-dump", "/tmp/oij-flight.json",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.cfg.TraceSampleN != 16 {
		t.Errorf("trace-sample = %d", o.cfg.TraceSampleN)
	}
	if o.cfg.TraceRing != 128 {
		t.Errorf("trace-ring = %d", o.cfg.TraceRing)
	}
	if o.cfg.FlightDumpPath != "/tmp/oij-flight.json" {
		t.Errorf("flight-dump = %q", o.cfg.FlightDumpPath)
	}
	// Tracing off by default: sampling must not silently turn itself on.
	d, err := parseArgs(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if d.cfg.TraceSampleN != 0 || d.cfg.FlightDumpPath != "" {
		t.Errorf("tracing enabled by default: %+v", d.cfg)
	}
}

func TestParseBadAdmissionRejectedByServer(t *testing.T) {
	o, err := parseArgs([]string{"-admission", "panic-wildly"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.New(o.cfg); err == nil || !strings.Contains(err.Error(), "admission") {
		t.Fatalf("bad policy accepted: %v", err)
	}
}

func TestParseSQL(t *testing.T) {
	o, err := parseArgs([]string{"-sql",
		"SELECT sum(amount) OVER w FROM requests WINDOW w AS (UNION orders PARTITION BY user ORDER BY ts ROWS_RANGE BETWEEN 1h PRECEDING AND CURRENT ROW LATENESS 5s)",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.cfg.Engine.Window.Pre != time.Hour.Microseconds() {
		t.Errorf("pre = %d", o.cfg.Engine.Window.Pre)
	}
	if o.cfg.Engine.Window.Lateness != (5 * time.Second).Microseconds() {
		t.Errorf("lateness = %d", o.cfg.Engine.Window.Lateness)
	}
	if !strings.Contains(o.banner, "requests") || !strings.Contains(o.banner, "orders") {
		t.Errorf("banner = %q", o.banner)
	}
}

func TestParseExactMode(t *testing.T) {
	o, err := parseArgs([]string{"-exact"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.cfg.Engine.Mode != engine.OnWatermark {
		t.Errorf("mode = %v", o.cfg.Engine.Mode)
	}
}

func TestParseErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-agg", "frobnicate"},
		{"-sql", "SELECT nonsense"},
		{"stray-positional"},
		{"-deadline", "not-a-duration"},
		{"-mem-cap", "NaN"},
	} {
		if _, err := parseArgs(args, io.Discard); err == nil {
			t.Errorf("parseArgs(%q): expected error", args)
		}
	}
}

func TestParseProfilingFlags(t *testing.T) {
	o, err := parseArgs([]string{
		"-profile-dir", "/tmp/oij-prof",
		"-profile-period", "30s",
		"-profile-cpu-slice", "1s",
		"-profile-retain", "64",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.cfg.ProfileDir != "/tmp/oij-prof" {
		t.Errorf("profile-dir = %q", o.cfg.ProfileDir)
	}
	if o.cfg.ProfilePeriod != 30*time.Second {
		t.Errorf("profile-period = %v", o.cfg.ProfilePeriod)
	}
	if o.cfg.ProfileCPUSlice != time.Second {
		t.Errorf("profile-cpu-slice = %v", o.cfg.ProfileCPUSlice)
	}
	if o.cfg.ProfileRetain != 64 {
		t.Errorf("profile-retain = %d", o.cfg.ProfileRetain)
	}

	// Dir alone enables profiling on capturer defaults.
	o, err = parseArgs([]string{"-profile-dir", "/tmp/oij-prof"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.cfg.ProfileDir == "" || o.cfg.ProfilePeriod != 0 || o.cfg.ProfileRetain != 0 {
		t.Errorf("dir-only profiling config: %+v", o.cfg)
	}

	// Profiling off by default.
	d, err := parseArgs(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if d.cfg.ProfileDir != "" {
		t.Errorf("profiling enabled by default: %q", d.cfg.ProfileDir)
	}
}

func TestParseProfilingErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-profile-period", "30s"},                         // period without dir
		{"-profile-cpu-slice", "1s"},                       // slice without dir
		{"-profile-retain", "8"},                           // retain without dir
		{"-profile-dir", "d", "-profile-period", "-10s"},   // negative period
		{"-profile-dir", "d", "-profile-cpu-slice", "-1s"}, // negative slice
		{"-profile-dir", "d", "-profile-retain", "-1"},     // negative retain
		{"-profile-dir", "d", "-profile-period", "1s",
			"-profile-cpu-slice", "2s"}, // slice >= period
		{"-profile-dir", "d", "-profile-cpu-slice", "90s"}, // slice >= default period
	} {
		if _, err := parseArgs(args, io.Discard); err == nil {
			t.Errorf("parseArgs(%q): expected error", args)
		}
	}
}

func TestParseReplicationFlags(t *testing.T) {
	o, err := parseArgs([]string{
		"-wal", "/tmp/oij.wal",
		"-replicate-to", ":7783",
		"-lease", "2s",
		"-max-repl-lag", "1048576",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.cfg.ReplListenAddr != ":7783" {
		t.Errorf("replicate-to = %q", o.cfg.ReplListenAddr)
	}
	if o.cfg.ReplLease != 2*time.Second {
		t.Errorf("lease = %v", o.cfg.ReplLease)
	}
	if o.cfg.MaxReplLag != 1048576 {
		t.Errorf("max-repl-lag = %d", o.cfg.MaxReplLag)
	}

	o, err = parseArgs([]string{
		"-wal", "/tmp/oij.wal",
		"-standby-of", "primary:7783",
		"-lease", "-1s",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.cfg.StandbyOf != "primary:7783" {
		t.Errorf("standby-of = %q", o.cfg.StandbyOf)
	}
	if o.cfg.ReplLease != -time.Second {
		t.Errorf("lease = %v", o.cfg.ReplLease)
	}
}

func TestParseReplicationErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-replicate-to", ":7783"},                                  // no WAL
		{"-standby-of", "primary:7783"},                             // no WAL
		{"-wal", "w", "-replicate-to", ":1", "-standby-of", "p:2"},  // both roles
		{"-lease", "2s"},                                            // lease without replication
		{"-max-repl-lag", "1"},                                      // lag alarm without replication
		{"-wal", "w", "-replicate-to", ":1", "-max-repl-lag", "-5"}, // negative lag
	} {
		if _, err := parseArgs(args, io.Discard); err == nil {
			t.Errorf("parseArgs(%q): expected error", args)
		}
	}
}
