package main

import (
	"io"
	"strings"
	"testing"
	"time"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/obs/timeline"
	"oij/internal/server"
	"oij/internal/tuple"
	"oij/internal/window"
)

func TestParseArgs(t *testing.T) {
	o, err := parseArgs([]string{"-admin", "10.0.0.1:9999", "-interval", "250ms", "-once", "-keys", "3"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.admin != "10.0.0.1:9999" || o.interval != 250*time.Millisecond || !o.once || o.keys != 3 {
		t.Fatalf("parsed %+v", o)
	}
	for _, bad := range [][]string{
		{"extra"},
		{"-interval", "1ms"},
		{"-width", "2"},
	} {
		if _, err := parseArgs(bad, io.Discard); err == nil {
			t.Fatalf("args %v accepted", bad)
		}
	}
}

func TestSpark(t *testing.T) {
	if s, _, _ := spark(nil, 10); s != "" {
		t.Fatalf("empty spark = %q", s)
	}
	// A ramp uses the whole rune range and reports last/max.
	pts := []timeline.Point{{Avg: 0, Max: 0}, {Avg: 5, Max: 5}, {Avg: 10, Max: 10}}
	s, last, max := spark(pts, 10)
	if last != 10 || max != 10 {
		t.Fatalf("spark stats last=%g max=%g", last, max)
	}
	runes := []rune(s)
	if len(runes) != 3 || runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("ramp spark = %q", s)
	}
	// Width clamps to the trailing points.
	long := make([]timeline.Point, 100)
	for i := range long {
		long[i] = timeline.Point{Avg: float64(i), Max: float64(i)}
	}
	if s, _, _ := spark(long, 20); len([]rune(s)) != 20 {
		t.Fatalf("width clamp: %d runes", len([]rune(s)))
	}
}

// TestDashboardEndToEnd boots a real oijd (in process), streams a skewed
// workload through it, and renders a dashboard frame against the live
// admin endpoint — the acceptance test that oijtop works against the
// daemon it ships with.
func TestDashboardEndToEnd(t *testing.T) {
	cfg := server.Config{
		Engine: engine.Config{
			Joiners: 2,
			Window:  window.Spec{Pre: 10_000_000, Lateness: 1000},
			Agg:     agg.Sum,
		},
		AdminAddr:  "127.0.0.1:0",
		UtilEpoch:  20 * time.Millisecond,
		SLOP99:     time.Second, // enable the SLO evaluator so the frame shows dimensions
		SLOWindow:  5 * time.Second,
		ProfileDir: t.TempDir(), // enable profiling so the frame shows the prof line
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	c, err := server.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 500; i++ {
		key := tuple.Key(100 + i%10)
		if i%2 == 0 {
			key = 7 // hot key: half the probe stream
		}
		c.SendProbe(key, tuple.Time(1000+i*5), 1)
	}
	c.SendBase(7, 3000, 0)
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecvResults(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Let the sampler land a few timeline ticks.
	time.Sleep(120 * time.Millisecond)

	d := newDashboard(&options{admin: srv.AdminAddr().String(), keys: 3, width: 30, noColor: true})
	var out strings.Builder
	if err := d.renderOnce(&out); err != nil {
		t.Fatal(err)
	}
	frame := out.String()

	for _, want := range []string{
		"oijd @",
		"2 joiners",
		"HEALTHY",
		"p99_latency", // SLO dimension line
		"probes/s",    // sparkline rows
		"wm lag",
		"mem lvl",
		"joiners: [0]",
		"hot probe keys: 7 (", // the hot key leads the analytics line
		"goroutine",           // runtime-health sparkline rows
		"gc p99",
		"heap",
		"runtime: ", // runtime summary line
		"prof: ",    // continuous-profiling status on the same line
		"overload: level=0",
		"flight:",
	} {
		if !strings.Contains(frame, want) {
			t.Fatalf("frame missing %q:\n%s", want, frame)
		}
	}
	if strings.Contains(frame, "\x1b[") {
		t.Fatalf("-no-color frame contains ANSI escapes:\n%q", frame)
	}
	t.Logf("frame:\n%s", frame)
}

// TestDashboardReconnect flaps the admin endpoint under a live dashboard:
// frames render, the daemon dies, the dashboard must switch to a
// reconnecting banner with exponential backoff (keeping the stale frame
// on screen), and when a daemon comes back on the same address the next
// poll recovers and the backoff resets.
func TestDashboardReconnect(t *testing.T) {
	cfg := server.Config{
		Engine: engine.Config{
			Joiners: 1,
			Window:  window.Spec{Pre: 10_000_000, Lateness: 1000},
			Agg:     agg.Sum,
		},
		AdminAddr: "127.0.0.1:0",
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	admin := srv.AdminAddr().String()

	d := newDashboard(&options{admin: admin, interval: 200 * time.Millisecond, keys: 3, width: 30, noColor: true})
	d.client.Timeout = time.Second

	frame, delay := d.pollFrame()
	if !strings.Contains(frame, "oijd @") || delay != 200*time.Millisecond {
		t.Fatalf("healthy poll: delay %v, frame:\n%s", delay, frame)
	}

	srv.Shutdown()

	frame, delay = d.pollFrame()
	if !strings.Contains(frame, "reconnecting to "+admin) || !strings.Contains(frame, "attempt 1") {
		t.Fatalf("first failed poll missing banner:\n%s", frame)
	}
	if delay != 200*time.Millisecond {
		t.Fatalf("first retry delay %v, want the interval", delay)
	}
	if !strings.Contains(frame, "last frame") || !strings.Contains(frame, "oijd @") {
		t.Fatalf("banner dropped the stale frame:\n%s", frame)
	}
	frame, delay = d.pollFrame()
	if !strings.Contains(frame, "attempt 2") || delay != 400*time.Millisecond {
		t.Fatalf("second failed poll: delay %v, frame:\n%s", delay, frame)
	}
	if _, delay = d.pollFrame(); delay != 800*time.Millisecond {
		t.Fatalf("third retry delay %v, want doubled again", delay)
	}

	// A new daemon on the same admin address: the dashboard recovers.
	cfg.AdminAddr = admin
	srv2, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv2.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown()
	deadline := time.Now().Add(5 * time.Second)
	for {
		frame, delay = d.pollFrame()
		if strings.Contains(frame, "oijd @") && !strings.Contains(frame, "reconnecting") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dashboard never recovered:\n%s", frame)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if delay != 200*time.Millisecond {
		t.Fatalf("recovered delay %v, want the interval (backoff reset)", delay)
	}
}

func TestReconnectDelayCaps(t *testing.T) {
	if d := reconnectDelay(time.Second, 1); d != time.Second {
		t.Fatalf("first delay %v", d)
	}
	if d := reconnectDelay(time.Second, 4); d != 8*time.Second {
		t.Fatalf("fourth delay %v", d)
	}
	if d := reconnectDelay(time.Second, 60); d != reconnectMax {
		t.Fatalf("capped delay %v", d)
	}
}
