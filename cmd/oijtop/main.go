// Command oijtop is a live terminal dashboard for a running oijd: it polls
// the daemon's admin endpoint (/statusz, /timeline, /healthz) and renders
// throughput, latency, watermark lag, queue depths, memory pressure, and
// the hottest keys as sparkline rows — `top` for an interval-join server.
//
//	oijtop -admin 127.0.0.1:7782
//
// The dashboard is read-only and zero-dependency: plain ANSI escapes, no
// terminal library, so it runs anywhere a Go binary does. -once renders a
// single frame without clearing the screen (useful in scripts and tests).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// options is the resolved oijtop configuration; parseArgs builds one from
// an argument slice so tests drive the exact path main dispatches to.
type options struct {
	admin    string
	interval time.Duration
	once     bool
	noColor  bool
	keys     int
	width    int
}

func parseArgs(args []string, w io.Writer) (*options, error) {
	fs := flag.NewFlagSet("oijtop", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		admin    = fs.String("admin", "127.0.0.1:7782", "oijd admin address (host:port of -admin)")
		interval = fs.Duration("interval", time.Second, "refresh interval")
		once     = fs.Bool("once", false, "render one frame and exit (no screen clearing)")
		noColor  = fs.Bool("no-color", false, "disable ANSI colors")
		keys     = fs.Int("keys", 5, "hot keys shown per stream")
		width    = fs.Int("width", 60, "sparkline width in columns")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *interval < 100*time.Millisecond {
		return nil, fmt.Errorf("-interval %s too small (min 100ms)", *interval)
	}
	if *width < 10 {
		return nil, fmt.Errorf("-width %d too small (min 10)", *width)
	}
	return &options{
		admin:    *admin,
		interval: *interval,
		once:     *once,
		noColor:  *noColor,
		keys:     *keys,
		width:    *width,
	}, nil
}

func main() {
	o, err := parseArgs(os.Args[1:], os.Stderr)
	if err != nil {
		if err == flag.ErrHelp {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "oijtop: %v\n", err)
		os.Exit(2)
	}
	d := newDashboard(o)

	if o.once {
		if err := d.renderOnce(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "oijtop: %v\n", err)
			os.Exit(1)
		}
		return
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	// Hide the cursor while live; restore it on the way out.
	fmt.Print("\x1b[?25l")
	defer fmt.Print("\x1b[?25h\n")
	for {
		// An unreachable daemon shows a reconnecting banner and backs the
		// poll off exponentially; the dashboard rides through restarts.
		frame, delay := d.pollFrame()
		// Home + clear-to-end redraw: no flicker, no full-screen erase.
		fmt.Print("\x1b[H\x1b[2J" + frame)
		select {
		case <-stop:
			return
		case <-time.After(delay):
		}
	}
}
