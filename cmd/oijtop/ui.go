package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"oij/internal/obs"
	"oij/internal/obs/timeline"
	"oij/internal/server"
)

// sparkRunes are the eight-level bar glyphs; index 0 renders the smallest
// non-absent value, so any activity is visible above a true gap.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkSeries are the timeline series the dashboard graphs, in row order.
var sparkSeries = []struct {
	name  string
	label string
	unit  string
	scale float64 // display = value * scale
}{
	{"oij_probes_total:rate", "probes/s", "t/s", 1},
	{"oij_requests_total:rate", "requests", "req/s", 1},
	{"oij_request_latency_seconds:p99", "p99 lat", "ms", 1e3},
	{"oij_watermark_lag_us", "wm lag", "ms", 1e-3},
	{"oij_ingest_queue_depth", "ingest q", "", 1},
	{"oij_mem_pressure_level", "mem lvl", "", 1},
	{"oij_go_goroutines", "goroutine", "", 1},
	{"oij_go_gc_pause_p99_us", "gc p99", "µs", 1},
	{"oij_go_heap_inuse_bytes", "heap", "MB", 1e-6},
}

// dashboard polls one oijd admin endpoint and renders frames.
type dashboard struct {
	o      *options
	base   string
	client *http.Client

	// Reconnect state: consecutive poll failures and the last frame that
	// rendered, kept on screen under the reconnecting banner so the
	// operator retains the final pre-outage picture.
	fails     int
	lastFrame string
	lastGood  time.Time
}

// reconnectMax caps the dashboard's retry backoff.
const reconnectMax = 30 * time.Second

// reconnectDelay is the retry schedule after n consecutive failures:
// interval·2ⁿ⁻¹, capped at reconnectMax.
func reconnectDelay(interval time.Duration, fails int) time.Duration {
	d := interval
	for i := 1; i < fails && d < reconnectMax; i++ {
		d *= 2
	}
	if d > reconnectMax {
		d = reconnectMax
	}
	return d
}

// pollFrame returns the next screen and how long to wait before the next
// poll: the refresh interval while the daemon answers, an exponential
// backoff under a reconnecting banner while it does not. A dashboard must
// outlive the daemon it watches — an oijd restart (or a failover to a
// standby behind the same address) is exactly when the operator is
// looking at it.
func (d *dashboard) pollFrame() (string, time.Duration) {
	frame, err := d.frame()
	if err == nil {
		d.fails = 0
		d.lastFrame, d.lastGood = frame, time.Now()
		return frame, d.o.interval
	}
	d.fails++
	delay := reconnectDelay(d.o.interval, d.fails)
	var b strings.Builder
	b.WriteString(d.color("33;1", fmt.Sprintf("oijtop: reconnecting to %s — attempt %d, next try in %s",
		d.o.admin, d.fails, delay.Round(time.Millisecond))))
	fmt.Fprintf(&b, "\n  %v\n", err)
	if d.lastFrame != "" {
		fmt.Fprintf(&b, "\nlast frame, %s stale:\n%s",
			time.Since(d.lastGood).Round(time.Second), d.lastFrame)
	}
	return b.String(), delay
}

func newDashboard(o *options) *dashboard {
	return &dashboard{
		o:      o,
		base:   "http://" + o.admin,
		client: &http.Client{Timeout: 5 * time.Second},
	}
}

// snapshot is one poll of the daemon.
type snapshot struct {
	st      server.Status
	tl      timeline.Doc
	health  server.HealthStatus
	healthy bool // the /healthz status code, the LB's view
}

func (d *dashboard) getJSON(path string, into any) (int, error) {
	resp, err := d.client.Get(d.base + path)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		return resp.StatusCode, fmt.Errorf("%s: %w", path, err)
	}
	return resp.StatusCode, nil
}

func (d *dashboard) fetch() (*snapshot, error) {
	var snap snapshot
	if code, err := d.getJSON("/statusz", &snap.st); err != nil {
		return nil, err
	} else if code != http.StatusOK {
		return nil, fmt.Errorf("/statusz: status %d", code)
	}
	names := make([]string, len(sparkSeries))
	for i, s := range sparkSeries {
		names[i] = s.name
	}
	q := "/timeline?res=1s&series=" + strings.Join(names, ",")
	if code, err := d.getJSON(q, &snap.tl); err != nil {
		return nil, err
	} else if code != http.StatusOK {
		return nil, fmt.Errorf("/timeline: status %d", code)
	}
	code, err := d.getJSON("/healthz", &snap.health)
	if err != nil {
		return nil, err
	}
	snap.healthy = code == http.StatusOK
	return &snap, nil
}

// frame fetches and renders one screen.
func (d *dashboard) frame() (string, error) {
	snap, err := d.fetch()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	d.render(&b, snap)
	return b.String(), nil
}

// renderOnce writes a single frame without screen control sequences.
func (d *dashboard) renderOnce(w interface{ Write([]byte) (int, error) }) error {
	frame, err := d.frame()
	if err != nil {
		return err
	}
	_, err = w.Write([]byte(frame))
	return err
}

// color wraps s in an SGR sequence unless colors are disabled.
func (d *dashboard) color(code, s string) string {
	if d.o.noColor {
		return s
	}
	return "\x1b[" + code + "m" + s + "\x1b[0m"
}

// spark renders the last width points of a series as an eight-level bar
// chart, scaled to the window's own maximum (each row auto-ranges).
func spark(points []timeline.Point, width int) (string, float64, float64) {
	if len(points) > width {
		points = points[len(points)-width:]
	}
	var max, last float64
	for _, p := range points {
		if p.Max > max {
			max = p.Max
		}
	}
	var b strings.Builder
	for _, p := range points {
		idx := 0
		if max > 0 {
			idx = int(p.Avg / max * float64(len(sparkRunes)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
		}
		b.WriteRune(sparkRunes[idx])
		last = p.Avg
	}
	return b.String(), last, max
}

// fmtVal renders a value compactly (1234567 → 1.23M).
func fmtVal(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v >= 10 || v == 0:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func fmtUptime(sec float64) string {
	dur := time.Duration(sec * float64(time.Second)).Round(time.Second)
	return dur.String()
}

func (d *dashboard) render(b *strings.Builder, snap *snapshot) {
	st := &snap.st

	verdict := d.color("32;1", "HEALTHY")
	if !snap.healthy {
		verdict = d.color("31;1", "UNHEALTHY")
	}
	fmt.Fprintf(b, "%s @ %s · %s/%s · %d joiners · up %s · %s\n",
		d.color("1", "oijd"), d.o.admin, st.Algorithm, st.Mode, st.Joiners,
		fmtUptime(st.UptimeSeconds), verdict)

	if len(snap.health.Dimensions) > 0 {
		parts := make([]string, 0, len(snap.health.Dimensions))
		for _, dim := range snap.health.Dimensions {
			s := fmt.Sprintf("%s %s/%s%s", dim.Name, fmtVal(dim.Value), fmtVal(dim.Threshold), dim.Unit)
			if dim.Breached {
				s = d.color("31", s+" !")
			}
			parts = append(parts, s)
		}
		fmt.Fprintf(b, "slo(%gs): %s\n", snap.health.WindowSeconds, strings.Join(parts, " · "))
	}
	b.WriteByte('\n')

	series := map[string][]timeline.Point{}
	for _, s := range snap.tl.Series {
		series[s.Name] = s.Points
	}
	for _, row := range sparkSeries {
		graph, last, max := spark(series[row.name], d.o.width)
		fmt.Fprintf(b, "%-9s %-*s %8s %s (peak %s)\n",
			row.label, d.o.width, graph, fmtVal(last*row.scale), row.unit, fmtVal(max*row.scale))
	}
	b.WriteByte('\n')

	fmt.Fprintf(b, "joiners: ")
	for i, js := range st.PerJoiner {
		fmt.Fprintf(b, "[%d] %3.0f%% q=%-4d ", i, js.Utilization*100, js.QueueDepth)
		if (i+1)%6 == 0 && i+1 < len(st.PerJoiner) {
			fmt.Fprintf(b, "\n         ")
		}
	}
	b.WriteByte('\n')

	if hk := st.HotKeys; hk != nil {
		fmt.Fprintf(b, "hot probe keys: %s\n", hotLine(hk.Probes, d.o.keys))
		fmt.Fprintf(b, "hot base keys:  %s\n", hotLine(hk.Bases, d.o.keys))
	}

	if rp := st.Replication; rp != nil {
		role := rp.Role
		if role == "fenced" {
			role = d.color("31;1", role)
		}
		sync := "catching up"
		if rp.CaughtUp {
			sync = "caught up"
		}
		fmt.Fprintf(b, "repl: %s epoch=%d slots=%d/%d replayed=%d lag=%sB·%.0fms %s standbys=%d refused=%d",
			role, rp.Epoch, rp.DurableSlot, rp.LogEndSlot, rp.ReplayOffset,
			fmtVal(float64(rp.LagBytes)), rp.LagMs, sync, rp.Standbys, rp.Refused)
		if rp.LastError != "" {
			fmt.Fprintf(b, " · %s", d.color("31", rp.LastError))
		}
		b.WriteByte('\n')
	}

	rt := &st.Runtime
	fmt.Fprintf(b, "runtime: %d goroutines · heap %sB / goal %sB · gc p99 %sµs",
		rt.Goroutines, fmtVal(float64(rt.HeapInUse)), fmtVal(float64(rt.GCGoalBytes)), fmtVal(rt.GCPauseP99Us))
	if ps := st.Profiling; ps != nil {
		fmt.Fprintf(b, " · prof: %d captures (%d incident, %d err) ring %d/%sB",
			ps.Captures, ps.Incidents, ps.Errors, ps.Entries, fmtVal(float64(ps.Bytes)))
		if ps.LastReason != "" {
			fmt.Fprintf(b, " last=%s", ps.LastReason)
		}
	}
	b.WriteByte('\n')

	ov := &st.Overload
	fmt.Fprintf(b, "overload: level=%d shed=%d rejected=%d deadline=%d mem-shed=%d evicted=%d buffered=%s\n",
		ov.MemPressureLevel, ov.ShedProbes, ov.Rejected, ov.DeadlineRejected,
		ov.MemShedProbes, ov.SlowSessionsEvicted, fmtVal(float64(ov.BufferedProbes)))
	fmt.Fprintf(b, "flight: %d events, %d dumps · spans: %d done · pending: %d · sessions: %d\n",
		st.Trace.FlightEvents, st.Trace.FlightDumps, st.Trace.CompletedSpans,
		st.PendingRequests, ov.SessionsActive)
}

// hotLine renders the top entries of a merged sketch snapshot with their
// stream shares (SpaceSaving counts are upper bounds, so shares are too).
func hotLine(s obs.TopKSnapshot, n int) string {
	if len(s.Entries) == 0 || s.Total == 0 {
		return "(none)"
	}
	entries := s.Entries
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Count > entries[j].Count })
	if len(entries) > n {
		entries = entries[:n]
	}
	parts := make([]string, len(entries))
	for i, e := range entries {
		parts[i] = fmt.Sprintf("%d (%.1f%%)", e.Key, float64(e.Count)/float64(s.Total)*100)
	}
	return strings.Join(parts, "  ")
}
