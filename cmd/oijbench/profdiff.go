package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"oij/internal/prof"
)

// runProfDiff compares two pprof profiles and ranks functions by how much
// of the profile they gained — the regression-attribution step behind the
// profiling-overhead CI job. Each argument is either a pprof file or a
// continuous-profiling ring directory (holding MANIFEST.json), in which
// case all its CPU profiles are merged into one window first.
//
// Shares are normalized (fraction of each profile's own total), so a
// baseline and candidate of different lengths still compare: a function
// whose share grew by more than -threshold percentage points is a finding,
// and when its name matches -gate the diff FAILs with exit 1.
func runProfDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("profdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.Int("top", 15, "rows shown, ranked by flat-share delta")
	threshold := fs.Float64("threshold", 1.0, "flat-share growth (percentage points) that makes a function a finding")
	gate := fs.String("gate", "", "regexp over function names: a finding matching it fails the diff (exit 1)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "oijbench profdiff: exactly two arguments required: BASE CANDIDATE (pprof file or profile-ring dir)")
		fs.Usage()
		return 2
	}
	var gateRE *regexp.Regexp
	if *gate != "" {
		re, err := regexp.Compile(*gate)
		if err != nil {
			fmt.Fprintf(stderr, "oijbench profdiff: bad -gate: %v\n", err)
			return 2
		}
		gateRE = re
	}

	base, baseDesc, err := loadProfileArg(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "oijbench profdiff: %s: %v\n", fs.Arg(0), err)
		return 2
	}
	cand, candDesc, err := loadProfileArg(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "oijbench profdiff: %s: %v\n", fs.Arg(1), err)
		return 2
	}

	rows, findings := diffProfiles(base, cand, *threshold, gateRE)

	fmt.Fprintf(stdout, "oijbench profdiff: base %s, candidate %s\n", baseDesc, candDesc)
	fmt.Fprintf(stdout, "%-44s %9s %9s %8s %9s\n", "function (by flat-share delta)", "base%", "cand%", "Δpp", "candcum%")
	n := *top
	if n > len(rows) {
		n = len(rows)
	}
	for _, r := range rows[:n] {
		mark := " "
		if r.finding {
			mark = "!"
		}
		fmt.Fprintf(stdout, "%s %-42s %8.2f%% %8.2f%% %+7.2f %8.2f%%\n",
			mark, truncFunc(r.name, 42), r.baseShare*100, r.candShare*100, r.delta*100, r.candCum*100)
	}

	if len(findings) > 0 {
		fmt.Fprintf(stdout, "oijbench profdiff: FAIL — %d gated function(s) grew beyond %.1fpp: %s\n",
			len(findings), *threshold, strings.Join(findings, ", "))
		return 1
	}
	fmt.Fprintf(stdout, "oijbench profdiff: PASS (no gated function grew beyond %.1fpp)\n", *threshold)
	return 0
}

// diffRow is one function's before/after share of its profile.
type diffRow struct {
	name                 string
	baseShare, candShare float64
	candCum              float64
	delta                float64
	finding              bool
}

// diffProfiles ranks every function by flat-share growth. A finding is a
// function that grew beyond threshold percentage points; findings matching
// gateRE are returned separately as the failures.
func diffProfiles(base, cand *prof.Profile, thresholdPP float64, gateRE *regexp.Regexp) ([]diffRow, []string) {
	bTotals, bGrand := base.FuncTotals(base.DefaultValueIndex())
	cTotals, cGrand := cand.FuncTotals(cand.DefaultValueIndex())

	names := map[string]bool{}
	for n := range bTotals {
		names[n] = true
	}
	for n := range cTotals {
		names[n] = true
	}
	rows := make([]diffRow, 0, len(names))
	for n := range names {
		r := diffRow{name: n}
		if bGrand > 0 {
			r.baseShare = float64(bTotals[n].Flat) / float64(bGrand)
		}
		if cGrand > 0 {
			r.candShare = float64(cTotals[n].Flat) / float64(cGrand)
			r.candCum = float64(cTotals[n].Cum) / float64(cGrand)
		}
		r.delta = r.candShare - r.baseShare
		r.finding = r.delta*100 > thresholdPP
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].delta != rows[j].delta {
			return rows[i].delta > rows[j].delta
		}
		return rows[i].name < rows[j].name
	})

	var findings []string
	if gateRE != nil {
		for _, r := range rows {
			if r.finding && gateRE.MatchString(r.name) {
				findings = append(findings, r.name)
			}
		}
	}
	return rows, findings
}

// loadProfileArg resolves a profdiff argument: a directory is a profile
// ring whose CPU entries are merged via MANIFEST.json; anything else is a
// single pprof file.
func loadProfileArg(path string) (*prof.Profile, string, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, "", err
	}
	if !st.IsDir() {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, "", err
		}
		p, err := prof.Parse(data)
		if err != nil {
			return nil, "", err
		}
		return p, path, nil
	}

	raw, err := os.ReadFile(filepath.Join(path, "MANIFEST.json"))
	if err != nil {
		return nil, "", fmt.Errorf("reading ring manifest: %w", err)
	}
	var doc struct {
		Entries []prof.Entry `json:"entries"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, "", fmt.Errorf("decoding ring manifest: %w", err)
	}
	var profiles []*prof.Profile
	for _, e := range doc.Entries {
		if e.Kind != "cpu" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(path, e.File))
		if err != nil {
			return nil, "", fmt.Errorf("ring entry %d: %w", e.Seq, err)
		}
		p, err := prof.Parse(data)
		if err != nil {
			return nil, "", fmt.Errorf("ring entry %d: %w", e.Seq, err)
		}
		profiles = append(profiles, p)
	}
	if len(profiles) == 0 {
		return nil, "", fmt.Errorf("ring holds no cpu profiles")
	}
	merged, err := prof.Merge(profiles)
	if err != nil {
		return nil, "", err
	}
	return merged, fmt.Sprintf("%s (%d cpu slices merged)", path, len(profiles)), nil
}

// truncFunc shortens long symbol names from the left, keeping the
// distinguishing suffix (package path prefixes repeat).
func truncFunc(name string, max int) string {
	if len(name) <= max {
		return name
	}
	return "…" + name[len(name)-max+1:]
}
