package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"oij/internal/prof"
)

// Package-level burn functions with stable symbols: the candidate run
// spins profdiffBurnHotLoop so the diff must attribute the regression to
// it by name, while the baseline spins a different function.
var profdiffSink uint64

//go:noinline
func profdiffBurnHotLoop(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		for i := 0; i < 1<<14; i++ {
			profdiffSink = profdiffSink*2654435761 + uint64(i)
		}
	}
}

//go:noinline
func profdiffBurnBaseline(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		for i := 0; i < 1<<14; i++ {
			profdiffSink ^= uint64(i) * 0x9e3779b97f4a7c15
		}
	}
}

// captureBurn records a CPU profile while burn spins, returning the raw
// pprof bytes. Skips the test if another CPU profile is already running.
func captureBurn(t *testing.T, burn func(<-chan struct{})) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("CPU profiler busy: %v", err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { burn(stop); close(done) }()
	time.Sleep(400 * time.Millisecond)
	close(stop)
	<-done
	pprof.StopCPUProfile()
	return buf.Bytes()
}

// TestProfDiffAttributesRegression is the golden attribution test: a
// deliberate hot loop burned only in the candidate profile must top the
// ranked delta, and gating on its symbol must trip the nonzero exit.
func TestProfDiffAttributesRegression(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.pprof")
	candPath := filepath.Join(dir, "cand.pprof")
	if err := os.WriteFile(basePath, captureBurn(t, profdiffBurnBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(candPath, captureBurn(t, profdiffBurnHotLoop), 0o644); err != nil {
		t.Fatal(err)
	}

	// Ungated: reports the regression but passes.
	var out bytes.Buffer
	if code := runProfDiff([]string{basePath, candPath}, &out, io.Discard); code != 0 {
		t.Fatalf("ungated profdiff exit %d:\n%s", code, out.String())
	}
	lines := strings.Split(out.String(), "\n")
	if len(lines) < 3 {
		t.Fatalf("short output:\n%s", out.String())
	}
	// Line 0 is the header, line 1 the column row; line 2 is the top
	// ranked delta — the burned function must be there.
	if !strings.Contains(lines[2], "profdiffBurnHotLoop") {
		t.Fatalf("hot loop not top of ranked delta:\n%s", out.String())
	}

	// Gated on the offending symbol: exit 1 with a FAIL verdict.
	out.Reset()
	code := runProfDiff([]string{"-gate", "profdiffBurnHotLoop", basePath, candPath}, &out, io.Discard)
	if code != 1 {
		t.Fatalf("gated profdiff exit %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") || !strings.Contains(out.String(), "profdiffBurnHotLoop") {
		t.Fatalf("gated verdict:\n%s", out.String())
	}

	// Gated on a symbol that did NOT regress: passes.
	out.Reset()
	if code := runProfDiff([]string{"-gate", "profdiffBurnBaseline", basePath, candPath}, &out, io.Discard); code != 0 {
		t.Fatalf("clean gate exit %d:\n%s", code, out.String())
	}
}

// TestProfDiffRingDir exercises the ring-directory argument form: the
// candidate is a profile ring whose CPU entries are merged before
// diffing.
func TestProfDiffRingDir(t *testing.T) {
	baseRaw := captureBurn(t, profdiffBurnBaseline)
	candRaw := captureBurn(t, profdiffBurnHotLoop)

	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.pprof")
	if err := os.WriteFile(basePath, baseRaw, 0o644); err != nil {
		t.Fatal(err)
	}
	ring := filepath.Join(dir, "ring")
	if err := os.Mkdir(ring, 0o755); err != nil {
		t.Fatal(err)
	}
	entries := []prof.Entry{
		{Seq: 0, Kind: "cpu", File: "000000-cpu-periodic.pprof"},
		{Seq: 1, Kind: "heap", File: "000001-heap-periodic.pprof"},
		{Seq: 2, Kind: "cpu", File: "000002-cpu-periodic.pprof"},
	}
	for _, e := range entries {
		data := candRaw
		if e.Kind == "heap" {
			data = []byte("not read: non-cpu entries are skipped")
		}
		if err := os.WriteFile(filepath.Join(ring, e.File), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	man, _ := json.Marshal(map[string]any{"next_seq": 3, "entries": entries})
	if err := os.WriteFile(filepath.Join(ring, "MANIFEST.json"), man, 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	code := runProfDiff([]string{"-gate", "profdiffBurnHotLoop", basePath, ring}, &out, io.Discard)
	if code != 1 {
		t.Fatalf("ring-dir profdiff exit %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "2 cpu slices merged") {
		t.Fatalf("ring merge description missing:\n%s", out.String())
	}
}

// TestProfDiffUsageErrors pins the usage exit code.
func TestProfDiffUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"only-one.pprof"},
		{"-gate", "([", "a.pprof", "b.pprof"},
		{"/does/not/exist.pprof", "/does/not/exist2.pprof"},
	} {
		if code := runProfDiff(args, io.Discard, io.Discard); code != 2 {
			t.Errorf("runProfDiff(%q) exit %d, want 2", args, code)
		}
	}
}
