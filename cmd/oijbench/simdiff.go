package main

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"oij/internal/perf"
)

// runSimDiff compares two SIM_*.json reports' SLO outcomes — the A/B
// verdict behind the controller CI job. Exit 1 iff the candidate breached
// MORE intervals than the base (equality passes: the candidate must not
// make things worse, and identical behavior is not a regression). With
// -dim the comparison is restricted to one SLO dimension.
func runSimDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dim := fs.String("dim", "", "compare only this SLO dimension (p99_latency, watermark_lag, nacks, sheds)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "oijbench simdiff: exactly two report paths required: BASE_SIM.json CANDIDATE_SIM.json")
		fs.Usage()
		return 2
	}
	base, err := perf.ReadSimReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "oijbench simdiff: %v\n", err)
		return 2
	}
	cand, err := perf.ReadSimReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "oijbench simdiff: %v\n", err)
		return 2
	}
	if base.Profile.Name != cand.Profile.Name || base.Profile.Seed != cand.Profile.Seed {
		fmt.Fprintf(stderr, "oijbench simdiff: reports ran different scenarios: %s seed %d vs %s seed %d\n",
			base.Profile.Name, base.Profile.Seed, cand.Profile.Name, cand.Profile.Seed)
		return 2
	}

	bTotal, bDims := breachCounts(base, *dim)
	cTotal, cDims := breachCounts(cand, *dim)

	fmt.Fprintf(stdout, "oijbench simdiff: profile %s (seed %d), %d intervals\n",
		base.Profile.Name, base.Profile.Seed, len(base.Intervals))
	fmt.Fprintf(stdout, "  base      (%s, drive %s, joiners %d): %d breached intervals%s\n",
		fs.Arg(0), base.Drive, base.Joiners, bTotal, dimDetail(bDims))
	fmt.Fprintf(stdout, "  candidate (%s, drive %s, joiners %d): %d breached intervals%s\n",
		fs.Arg(1), cand.Drive, cand.Joiners, cTotal, dimDetail(cDims))

	if cTotal > bTotal {
		fmt.Fprintf(stdout, "oijbench simdiff: FAIL — candidate breached %d intervals vs base %d\n", cTotal, bTotal)
		return 1
	}
	verdict := "no worse than"
	if cTotal < bTotal {
		verdict = "better than"
	}
	fmt.Fprintf(stdout, "oijbench simdiff: PASS — candidate %s base (%d vs %d breached intervals)\n",
		verdict, cTotal, bTotal)
	return 0
}

// breachCounts tallies breached intervals, overall and per dimension. With
// a dimension filter, an interval counts only when that dimension breached.
func breachCounts(rep *perf.SimReport, dim string) (int, map[string]int) {
	dims := map[string]int{}
	total := 0
	for _, iv := range rep.Intervals {
		hit := false
		for _, d := range iv.SLOBreaches {
			if dim != "" && d != dim {
				continue
			}
			dims[d]++
			hit = true
		}
		if hit {
			total++
		}
	}
	return total, dims
}

// dimDetail renders per-dimension counts like " (p99_latency=10 nacks=2)".
func dimDetail(dims map[string]int) string {
	if len(dims) == 0 {
		return ""
	}
	order := []string{"p99_latency", "watermark_lag", "nacks", "sheds"}
	var parts []string
	for _, d := range order {
		if n, ok := dims[d]; ok {
			parts = append(parts, fmt.Sprintf("%s=%d", d, n))
		}
	}
	for d, n := range dims {
		found := false
		for _, k := range order {
			if d == k {
				found = true
				break
			}
		}
		if !found {
			parts = append(parts, fmt.Sprintf("%s=%d", d, n))
		}
	}
	return " (" + strings.Join(parts, " ") + ")"
}
