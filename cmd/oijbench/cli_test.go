package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"oij/internal/harness"
	"oij/internal/perf"
)

func TestParseThreads(t *testing.T) {
	got, err := parseThreads("1, 4,16")
	if err != nil || !reflect.DeepEqual(got, []int{1, 4, 16}) {
		t.Fatalf("got %v, %v", got, err)
	}
	if got, err := parseThreads(""); err != nil || got != nil {
		t.Fatalf("empty: got %v, %v", got, err)
	}
	for _, bad := range []string{"x", "0", "-2", "1,,2"} {
		if _, err := parseThreads(bad); err == nil {
			t.Errorf("parseThreads(%q): expected error", bad)
		}
	}
}

func TestLegacyExperiments(t *testing.T) {
	all, err := legacyExperiments("all")
	if err != nil || len(all) == 0 {
		t.Fatalf("all: %v, %d experiments", err, len(all))
	}
	one, err := legacyExperiments(all[0].ID)
	if err != nil || len(one) != 1 || one[0].ID != all[0].ID {
		t.Fatalf("single: %v, %v", one, err)
	}
	if _, err := legacyExperiments("nope"); err == nil || !strings.Contains(err.Error(), "known IDs") {
		t.Fatalf("unknown: %v", err)
	}
}

func TestResolveSpecBuiltinAndFile(t *testing.T) {
	for _, name := range perf.BuiltinSpecNames() {
		s, err := resolveSpec(name)
		if err != nil || s.Name != name {
			t.Fatalf("builtin %s: %v (got %q)", name, err, s.Name)
		}
	}

	// A spec written to JSON loads back identically through the file path.
	want, err := perf.BuiltinSpec("smoke")
	if err != nil {
		t.Fatal(err)
	}
	want.Name = "custom"
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "custom.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := resolveSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("spec changed across file round-trip:\n%+v\n%+v", want, got)
	}

	if _, err := resolveSpec("no-such-spec"); err == nil {
		t.Fatal("expected error for unknown spec name")
	}
	if _, err := resolveSpec(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected error for missing spec file")
	}
}

// testSpecFile writes a minimal one-cell spec and returns its path.
func testSpecFile(t *testing.T, dir string) string {
	t.Helper()
	spec := perf.Spec{
		SpecVersion: perf.CurrentSpecVersion,
		Name:        "clitest",
		N:           3000,
		Repeats:     2,
		Sweeps: []perf.Sweep{{
			Name: "t", Workload: "default", Engines: []string{harness.KeyOIJ},
			Threads: []int{2}, Gate: true,
		}},
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSweepGateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	specPath := testSpecFile(t, dir)
	baseline := filepath.Join(dir, "BENCH_seed.json")

	var out, errOut bytes.Buffer
	if code := runSweepOrBaseline("baseline", []string{"-spec", specPath, "-out", baseline, "-q"}, &out, &errOut); code != 0 {
		t.Fatalf("baseline exit %d: %s%s", code, out.String(), errOut.String())
	}
	rep, err := perf.ReadReport(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 1 || len(rep.Cells[0].Samples) != 2 {
		t.Fatalf("unexpected baseline shape: %+v", rep.Cells)
	}

	// A fresh gate run against the just-recorded baseline on the same
	// machine must pass (the acceptance criterion CI enforces).
	out.Reset()
	if code := runGate([]string{"-baseline", baseline, "-q"}, &out, &errOut); code != 0 {
		t.Fatalf("gate exit %d:\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "gate: PASS") {
		t.Fatalf("missing PASS banner:\n%s", out.String())
	}
}

// TestGateFailsOnDoctoredBaseline inflates the committed baseline's
// throughput far beyond what the machine can do; the gate must exit
// nonzero — the same signal a genuinely slowed hot path produces.
func TestGateFailsOnDoctoredBaseline(t *testing.T) {
	dir := t.TempDir()
	specPath := testSpecFile(t, dir)
	baseline := filepath.Join(dir, "BENCH_seed.json")

	var out, errOut bytes.Buffer
	if code := runSweepOrBaseline("baseline", []string{"-spec", specPath, "-out", baseline, "-q"}, &out, &errOut); code != 0 {
		t.Fatalf("baseline exit %d: %s", code, errOut.String())
	}
	rep, err := perf.ReadReport(baseline)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range rep.Cells {
		for si := range rep.Cells[ci].Samples {
			rep.Cells[ci].Samples[si].ThroughputTPS *= 1000
		}
	}
	if err := rep.WriteFile(baseline); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	code := runGate([]string{"-baseline", baseline, "-q"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("gate exit %d against 1000x-inflated baseline, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "gate: FAIL") || !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("missing FAIL output:\n%s", out.String())
	}
}

func TestGateUsageErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := runGate(nil, &out, &errOut); code != 2 {
		t.Fatalf("missing -baseline: exit %d, want 2", code)
	}
	if code := runGate([]string{"-baseline", "does-not-exist.json"}, &out, &errOut); code != 2 {
		t.Fatalf("unreadable baseline: exit %d, want 2", code)
	}
	if code := runSweepOrBaseline("sweep", []string{"-spec", "no-such"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown spec: exit %d, want 2", code)
	}
}

func TestRunSpecsListsBuiltins(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := runSpecs(&out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, name := range perf.BuiltinSpecNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("specs output missing %q:\n%s", name, out.String())
		}
	}
}
