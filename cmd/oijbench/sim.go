package main

import (
	"flag"
	"fmt"
	"io"
	"path/filepath"
	"strings"

	"oij/internal/engine"
	"oij/internal/harness"
	"oij/internal/perf"
	"oij/internal/workload/pattern"
)

// runSim drives one scenario profile and writes its timeline report.
func runSim(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	eng := fs.String("engine", harness.ScaleOIJ, "engine variant to drive (in-process mode)")
	joiners := fs.Int("joiners", 4, "joiner threads (in-process mode)")
	mode := fs.String("mode", "arrival", "emission mode: arrival or watermark")
	timeScale := fs.Float64("time-scale", 0, "override the profile's time scale (>0)")
	maxTuples := fs.Int("max-tuples", 0, "truncate the run after this many tuples")
	unpaced := fs.Bool("unpaced", false, "disable wall pacing: replay at full speed (latency columns stay zero)")
	addr := fs.String("addr", "", "drive a live oijd at this address instead of an in-process engine")
	admin := fs.String("admin", "", "with -addr: scrape this admin base URL's /statusz per interval for sheds and lag")
	out := fs.String("out", "", "output path (default: SIM_<profile-name>.json)")
	checkSLO := fs.Bool("check-slo", false, "exit 1 when any interval breaches the profile's SLO")
	quiet := fs.Bool("q", false, "suppress per-interval progress")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "oijbench sim: exactly one profile path required (see profiles/)")
		fs.Usage()
		return 2
	}
	path := fs.Arg(0)

	var emitMode engine.EmitMode
	switch *mode {
	case "arrival":
		emitMode = engine.OnArrival
	case "watermark":
		emitMode = engine.OnWatermark
	default:
		fmt.Fprintf(stderr, "oijbench sim: unknown -mode %q (want arrival or watermark)\n", *mode)
		return 2
	}

	prof, err := pattern.LoadProfile(path)
	if err != nil {
		fmt.Fprintf(stderr, "oijbench sim: %v\n", err)
		return 2
	}
	sc, err := pattern.Compile(prof, filepath.Dir(path))
	if err != nil {
		fmt.Fprintf(stderr, "oijbench sim: %v\n", err)
		return 2
	}

	var progress io.Writer
	if !*quiet {
		progress = stdout
	}
	rep, err := perf.RunSim(sc, perf.SimOptions{
		Engine:    *eng,
		Joiners:   *joiners,
		Mode:      emitMode,
		TimeScale: *timeScale,
		Addr:      *addr,
		AdminURL:  strings.TrimSuffix(*admin, "/"),
		Unpaced:   *unpaced,
		MaxTuples: *maxTuples,
		Progress:  progress,
		GitSHA:    gitSHA(),
	})
	if err != nil {
		fmt.Fprintf(stderr, "oijbench sim: %v\n", err)
		return 1
	}

	outPath := *out
	if outPath == "" {
		outPath = "SIM_" + prof.Name + ".json"
	}
	if err := rep.WriteFile(outPath); err != nil {
		fmt.Fprintf(stderr, "oijbench sim: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "oijbench: wrote %s (%d intervals, %d tuples, %d results, wall %.1fs, slo breaches %d)\n",
		outPath, len(rep.Intervals), rep.Tuples, rep.Results,
		float64(rep.WallElapsedNS)/1e9, rep.SLOBreachedIntervals)
	if *checkSLO && rep.SLOBreachedIntervals > 0 {
		fmt.Fprintf(stdout, "oijbench sim: SLO FAIL (%d breached intervals)\n", rep.SLOBreachedIntervals)
		return 1
	}
	return 0
}
