package main

import (
	"flag"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"time"

	"oij/internal/control"
	"oij/internal/engine"
	"oij/internal/harness"
	"oij/internal/perf"
	"oij/internal/server"
	"oij/internal/workload/pattern"
)

// runSim drives one scenario profile and writes its timeline report.
func runSim(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	eng := fs.String("engine", harness.ScaleOIJ, "engine variant to drive (in-process mode)")
	joiners := fs.Int("joiners", 4, "joiner threads (in-process mode)")
	mode := fs.String("mode", "arrival", "emission mode: arrival or watermark")
	timeScale := fs.Float64("time-scale", 0, "override the profile's time scale (>0)")
	maxTuples := fs.Int("max-tuples", 0, "truncate the run after this many tuples")
	unpaced := fs.Bool("unpaced", false, "disable wall pacing: replay at full speed (latency columns stay zero)")
	addr := fs.String("addr", "", "drive a live oijd at this address instead of an in-process engine")
	admin := fs.String("admin", "", "with -addr: scrape this admin base URL's /statusz per interval for sheds and lag")
	out := fs.String("out", "", "output path (default: SIM_<profile-name>.json)")
	checkSLO := fs.Bool("check-slo", false, "exit 1 when any interval breaches the profile's SLO")
	quiet := fs.Bool("q", false, "suppress per-interval progress")

	serve := fs.Bool("serve", false,
		"drive an in-process oijd (full serving stack: admission, SLO, controller) over loopback instead of a bare engine; SLO thresholds come from the profile")
	admission := fs.String("admission", server.AdmissionBlock, "with -serve: admission policy (block, shed-probes, reject)")
	memCap := fs.Int64("mem-cap", 0, "with -serve: buffered-probe cap (0 disables the memory guard)")
	deadline := fs.Duration("deadline", 0, "with -serve: per-request NACK deadline (0 disables)")
	utilEpoch := fs.Duration("util-epoch", 0, "with -serve: sampler/controller epoch (0 keeps the server default of 1s)")
	controller := fs.Bool("controller", false, "with -serve: enable the adaptive self-tuning controller")
	ctlMinJoiners := fs.Int("ctl-min-joiners", 0, "with -controller: active-joiner floor (0 keeps the default of 1)")
	ctlMaxJoiners := fs.Int("ctl-max-joiners", 0, "with -controller: active-joiner ceiling; the pool is sized to it (0 keeps -joiners)")
	ctlP99 := fs.Duration("ctl-p99", 0, "with -controller: p99 target the admission ladder defends (0 inherits the profile SLO)")
	flightOut := fs.String("flight-out", "", "with -serve: dump the server's flight recorder (controller decisions, SLO transitions) to this path on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "oijbench sim: exactly one profile path required (see profiles/)")
		fs.Usage()
		return 2
	}
	path := fs.Arg(0)

	var emitMode engine.EmitMode
	switch *mode {
	case "arrival":
		emitMode = engine.OnArrival
	case "watermark":
		emitMode = engine.OnWatermark
	default:
		fmt.Fprintf(stderr, "oijbench sim: unknown -mode %q (want arrival or watermark)\n", *mode)
		return 2
	}

	prof, err := pattern.LoadProfile(path)
	if err != nil {
		fmt.Fprintf(stderr, "oijbench sim: %v\n", err)
		return 2
	}
	sc, err := pattern.Compile(prof, filepath.Dir(path))
	if err != nil {
		fmt.Fprintf(stderr, "oijbench sim: %v\n", err)
		return 2
	}

	var serveCfg *server.Config
	if *serve {
		if *addr != "" {
			fmt.Fprintln(stderr, "oijbench sim: -serve and -addr are mutually exclusive")
			return 2
		}
		cfg := server.Config{
			Admission:       *admission,
			RequestDeadline: *deadline,
			MemCapProbes:    *memCap,
			UtilEpoch:       *utilEpoch,
		}
		// The profile's SLO doubles as the server's /healthz thresholds so
		// the controller defends the same targets the report scores.
		if slo := prof.SLO; slo != nil {
			cfg.SLOP99 = time.Duration(slo.P99Ms * float64(time.Millisecond))
			cfg.SLOWatermarkLag = time.Duration(slo.MaxLagS * float64(time.Second))
		}
		if *controller {
			cfg.Control = control.Config{
				Enabled:    true,
				MinJoiners: *ctlMinJoiners,
				MaxJoiners: *ctlMaxJoiners,
				P99Target:  *ctlP99,
			}
		}
		serveCfg = &cfg
	} else if *controller || *flightOut != "" {
		fmt.Fprintln(stderr, "oijbench sim: -controller and -flight-out need -serve")
		return 2
	}

	var progress io.Writer
	if !*quiet {
		progress = stdout
	}
	rep, err := perf.RunSim(sc, perf.SimOptions{
		Engine:    *eng,
		Joiners:   *joiners,
		Mode:      emitMode,
		TimeScale: *timeScale,
		Addr:      *addr,
		AdminURL:  strings.TrimSuffix(*admin, "/"),
		Serve:     serveCfg,
		FlightOut: *flightOut,
		Unpaced:   *unpaced,
		MaxTuples: *maxTuples,
		Progress:  progress,
		GitSHA:    gitSHA(),
	})
	if err != nil {
		fmt.Fprintf(stderr, "oijbench sim: %v\n", err)
		return 1
	}

	outPath := *out
	if outPath == "" {
		outPath = "SIM_" + prof.Name + ".json"
	}
	if err := rep.WriteFile(outPath); err != nil {
		fmt.Fprintf(stderr, "oijbench sim: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "oijbench: wrote %s (%d intervals, %d tuples, %d results, wall %.1fs, slo breaches %d)\n",
		outPath, len(rep.Intervals), rep.Tuples, rep.Results,
		float64(rep.WallElapsedNS)/1e9, rep.SLOBreachedIntervals)
	if *checkSLO && rep.SLOBreachedIntervals > 0 {
		fmt.Fprintf(stdout, "oijbench sim: SLO FAIL (%d breached intervals: %s)\n",
			rep.SLOBreachedIntervals, breachSummary(rep))
		return 1
	}
	return 0
}

// breachSummary renders per-dimension breach counts across all intervals,
// e.g. "p99_latency=10 watermark_lag=4", so an exit-1 run says which
// dimensions failed without opening the report.
func breachSummary(rep *perf.SimReport) string {
	counts := map[string]int{}
	var order []string
	for _, iv := range rep.Intervals {
		for _, dim := range iv.SLOBreaches {
			if counts[dim] == 0 {
				order = append(order, dim)
			}
			counts[dim]++
		}
	}
	parts := make([]string, 0, len(order))
	for _, dim := range order {
		parts = append(parts, fmt.Sprintf("%s=%d", dim, counts[dim]))
	}
	return strings.Join(parts, " ")
}
