package main

import (
	"flag"
	"fmt"
	"io"
	"os/exec"
	"strconv"
	"strings"

	"oij/internal/harness"
	"oij/internal/perf"
)

// This file implements the sweep/baseline/gate subcommands on top of
// internal/perf. Each run* function takes its argument slice and output
// writers and returns a process exit code, so the unit tests drive the
// exact code paths main dispatches to.

var usageText = `Usage:
  oijbench sweep    [-spec name|file.json] [-tag t] [-out BENCH_t.json] [-n N] [-repeats R] [-q]
                    [-profiler [-profile-dir dir]]
  oijbench baseline [-spec name|file.json] [-out BENCH_seed.json] ...
  oijbench gate     -baseline BENCH_seed.json [-spec name|file.json] [-threshold 0.10]
                    [-p99-threshold 0.25] [-no-normalize] [-flight-recorder] [-telemetry]
                    [-profiler [-profile-dir dir]]
                    [-out BENCH_fresh.json] [-n N] [-repeats R] [-q]
  oijbench sim      [-engine e] [-joiners J] [-mode arrival|watermark] [-time-scale S]
                    [-max-tuples N] [-unpaced] [-addr host:port [-admin url]]
                    [-serve [-admission p] [-mem-cap N] [-deadline d] [-util-epoch d]
                     [-controller [-ctl-min-joiners N] [-ctl-max-joiners N] [-ctl-p99 d]]
                     [-flight-out FLIGHT.json]]
                    [-out SIM_name.json] [-check-slo] [-q] profile.json
  oijbench simdiff  [-dim name] BASE_SIM.json CANDIDATE_SIM.json
  oijbench profdiff [-top N] [-threshold pp] [-gate regexp] BASE CANDIDATE
                    (each a pprof file or a continuous-profiling ring dir)
  oijbench specs
  oijbench -exp <id>|all [-n N] [-threads 1,2,4] ...   (paper figure mode; -list for IDs)

Builtin sweep specs: ` + strings.Join(perf.BuiltinSpecNames(), ", ") + `.
See EXPERIMENTS.md for the sweep spec format and the gate's decision rule.`

// resolveSpec maps a -spec argument to a builtin name or a JSON file path.
func resolveSpec(arg string) (perf.Spec, error) {
	if strings.ContainsAny(arg, "/\\") || strings.HasSuffix(arg, ".json") {
		return perf.LoadSpec(arg)
	}
	return perf.BuiltinSpec(arg)
}

// gitSHA best-effort resolves the current commit for report provenance.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// sweepFlags are the options shared by sweep and baseline.
type sweepFlags struct {
	spec       string
	tag        string
	out        string
	n          int
	repeats    int
	quiet      bool
	profiler   bool
	profileDir string
}

func bindSweepFlags(fs *flag.FlagSet) *sweepFlags {
	var f sweepFlags
	fs.StringVar(&f.spec, "spec", "seed", "builtin spec name or spec JSON path")
	fs.StringVar(&f.tag, "tag", "", "report tag (default: the spec's name)")
	fs.StringVar(&f.out, "out", "", "output path (default: BENCH_<tag>.json)")
	fs.IntVar(&f.n, "n", 0, "override tuples per workload")
	fs.IntVar(&f.repeats, "repeats", 0, "override per-cell repeats")
	fs.BoolVar(&f.quiet, "q", false, "suppress per-sample progress")
	fs.BoolVar(&f.profiler, "profiler", false, "attach the continuous profiler to the sweep, leaving a capture ring behind for `oijbench profdiff`")
	fs.StringVar(&f.profileDir, "profile-dir", "", "capture-ring directory for -profiler (default oij-prof-ring)")
	return &f
}

// resolve fills the tag/out defaults after parsing.
func (f *sweepFlags) resolve(spec perf.Spec) {
	if f.tag == "" {
		f.tag = spec.Name
	}
	if f.out == "" {
		f.out = "BENCH_" + f.tag + ".json"
	}
}

// runSweepOrBaseline records a report; baseline differs only in its
// default output name, so a freshly recorded reference is exactly a sweep.
func runSweepOrBaseline(name string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	f := bindSweepFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	spec, err := resolveSpec(f.spec)
	if err != nil {
		fmt.Fprintf(stderr, "oijbench %s: %v\n", name, err)
		return 2
	}
	if name == "baseline" && f.tag == "" {
		f.tag = "seed"
	}
	f.resolve(spec)

	var progress io.Writer
	if !f.quiet {
		progress = stdout
	}
	if f.profileDir != "" && !f.profiler {
		fmt.Fprintf(stderr, "oijbench %s: -profile-dir needs -profiler\n", name)
		fs.Usage()
		return 2
	}
	rep, err := perf.RunSpec(spec, perf.RunOptions{
		Tag: f.tag, GitSHA: gitSHA(), N: f.n, Repeats: f.repeats, Progress: progress,
		Profiler: f.profiler, ProfileDir: f.profileDir,
	})
	if err != nil {
		fmt.Fprintf(stderr, "oijbench %s: %v\n", name, err)
		return 1
	}
	if err := rep.WriteFile(f.out); err != nil {
		fmt.Fprintf(stderr, "oijbench %s: %v\n", name, err)
		return 1
	}
	fmt.Fprintf(stdout, "oijbench: wrote %s (%d cells x %d repeats, calibration %.0f ops/us)\n",
		f.out, len(rep.Cells), rep.Spec.Repeats, rep.Env.CalibrationOpsPerUS)
	return 0
}

// runGate re-measures the baseline's cells and compares.
func runGate(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "", "baseline BENCH_*.json to gate against (required)")
	specArg := fs.String("spec", "", "spec to run (default: the baseline's embedded spec)")
	threshold := fs.Float64("threshold", 0.10, "max tolerated median throughput drop (fraction)")
	p99Threshold := fs.Float64("p99-threshold", 0.25, "max tolerated median p99 inflation (fraction)")
	noNormalize := fs.Bool("no-normalize", false, "disable calibration-ratio normalization")
	out := fs.String("out", "", "also write the fresh report to this path")
	n := fs.Int("n", 0, "override tuples per workload")
	repeats := fs.Int("repeats", 0, "override per-cell repeats")
	quiet := fs.Bool("q", false, "suppress per-sample progress")
	flightRec := fs.Bool("flight-recorder", false, "attach an always-on flight recorder to the fresh run, gating the recorder's overhead against the recorder-free baseline")
	telemetry := fs.Bool("telemetry", false, "attach the oijd telemetry layer (per-tuple hot-key sketch + background timeline sampler) to the fresh run, gating its overhead against the telemetry-free baseline")
	profiler := fs.Bool("profiler", false, "attach the continuous profiler to the fresh run (periodic CPU slices + heap/mutex/block snapshots into a ring), gating its duty-cycle overhead against the profiler-free baseline")
	profileDir := fs.String("profile-dir", "", "capture-ring directory for -profiler (default oij-prof-ring); feed it to `oijbench profdiff` afterwards")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baselinePath == "" {
		fmt.Fprintln(stderr, "oijbench gate: -baseline is required")
		fs.Usage()
		return 2
	}
	base, err := perf.ReadReport(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "oijbench gate: %v\n", err)
		return 2
	}
	spec := base.Spec
	if *specArg != "" {
		if spec, err = resolveSpec(*specArg); err != nil {
			fmt.Fprintf(stderr, "oijbench gate: %v\n", err)
			return 2
		}
	}

	var progress io.Writer
	if !*quiet {
		progress = stdout
	}
	if *profileDir != "" && !*profiler {
		fmt.Fprintln(stderr, "oijbench gate: -profile-dir needs -profiler")
		fs.Usage()
		return 2
	}
	fresh, err := perf.RunSpec(spec, perf.RunOptions{
		Tag: "gate", GitSHA: gitSHA(), N: *n, Repeats: *repeats, Progress: progress,
		FlightRecorder: *flightRec, Telemetry: *telemetry,
		Profiler: *profiler, ProfileDir: *profileDir,
	})
	if err != nil {
		fmt.Fprintf(stderr, "oijbench gate: %v\n", err)
		return 1
	}
	if *out != "" {
		if err := fresh.WriteFile(*out); err != nil {
			fmt.Fprintf(stderr, "oijbench gate: %v\n", err)
			return 1
		}
	}

	opts := perf.GateOptions{
		MaxThroughputDrop: *threshold,
		MaxP99Inflation:   *p99Threshold,
		Normalize:         !*noNormalize,
	}
	g := perf.Gate(base, fresh, opts)
	fmt.Fprintf(stdout, "\ngate: fresh run vs %s (recorded %s, git %.12s)\n",
		*baselinePath, base.CreatedAt.Format("2006-01-02"), base.GitSHA)
	g.WriteTable(stdout)
	if g.OK() {
		fmt.Fprintf(stdout, "gate: PASS (%d gated cells)\n", len(g.Verdicts))
		return 0
	}
	fmt.Fprintf(stdout, "gate: FAIL (%d regressions, %d missing cells)\n", g.Regressions, len(g.MissingCells))
	return 1
}

// runSpecs prints the builtin specs and their cell counts.
func runSpecs(stdout, stderr io.Writer) int {
	for _, name := range perf.BuiltinSpecNames() {
		spec, err := perf.BuiltinSpec(name)
		if err != nil {
			fmt.Fprintf(stderr, "oijbench specs: %v\n", err)
			return 1
		}
		cells, err := spec.Cells()
		if err != nil {
			fmt.Fprintf(stderr, "oijbench specs: %v\n", err)
			return 1
		}
		gated := 0
		for _, c := range cells {
			if c.Gated {
				gated++
			}
		}
		fmt.Fprintf(stdout, "%-8s %3d cells (%d gated) x %d repeats, n=%d\n",
			name, len(cells), gated, spec.Repeats, spec.N)
	}
	return 0
}

// parseThreads parses the legacy -threads flag value.
func parseThreads(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -threads value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// legacyExperiments resolves the legacy -exp argument to experiments.
func legacyExperiments(exp string) ([]harness.Experiment, error) {
	if exp == "all" {
		return harness.AllExperiments(), nil
	}
	e, ok := harness.FindExperiment(exp)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q; known IDs: %s",
			exp, strings.Join(harness.ExperimentIDs(), ", "))
	}
	return []harness.Experiment{e}, nil
}
