package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oij/internal/perf"
)

// simProfileJSON is a fast synthetic scenario the CLI tests replay.
const simProfileJSON = `{
  "schema_version": 1,
  "name": "cli-smoke",
  "seed": 3,
  "duration_s": 4,
  "interval_s": 1,
  "stream": {
    "rate_tps": 500,
    "keys": 40,
    "base_share": 0.3,
    "window_pre_s": 0.5,
    "lateness_s": 0.1
  },
  "phases": [{"name": "all", "start_s": 0, "end_s": 4}],
  "slo": {"p99_ms": 1000}
}
`

func writeSimProfile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cli-smoke.json")
	if err := os.WriteFile(path, []byte(simProfileJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSimEndToEnd(t *testing.T) {
	prof := writeSimProfile(t)
	out := filepath.Join(t.TempDir(), "SIM_cli.json")
	var stdout, stderr bytes.Buffer
	code := runSim([]string{"-unpaced", "-q", "-out", out, prof}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "wrote "+out) {
		t.Fatalf("stdout: %s", stdout.String())
	}
	rep, err := perf.ReadSimReport(out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Profile.Name != "cli-smoke" || len(rep.Intervals) != 4 || rep.Tuples == 0 {
		t.Fatalf("report shape: name=%q intervals=%d tuples=%d",
			rep.Profile.Name, len(rep.Intervals), rep.Tuples)
	}
	if rep.Drive != "engine" || !rep.Unpaced {
		t.Fatalf("drive metadata: %q unpaced=%v", rep.Drive, rep.Unpaced)
	}
}

func TestSimDefaultOutputName(t *testing.T) {
	prof := writeSimProfile(t)
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	var stdout, stderr bytes.Buffer
	if code := runSim([]string{"-unpaced", "-q", "-max-tuples", "200", prof}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "SIM_cli-smoke.json")); err != nil {
		t.Fatalf("default output missing: %v", err)
	}
}

func TestSimUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                           // no profile
		{"a.json", "b.json"},         // two profiles
		{"-mode", "bogus", "x.json"}, // bad mode
		{"/does/not/exist.json"},     // missing file
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := runSim(args, &stdout, &stderr); code != 2 {
			t.Errorf("runSim(%v) exit %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}

func TestSimRejectsBadProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	broken := strings.Replace(simProfileJSON, `"rate_tps"`, `"rate_tsp"`, 1)
	if err := os.WriteFile(path, []byte(broken), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := runSim([]string{"-unpaced", "-q", path}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "rate_tsp") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

func TestSimCheckSLOFailure(t *testing.T) {
	// An impossible latency SLO with pacing on: every measured interval
	// breaches, and -check-slo turns that into a non-zero exit.
	slow := strings.Replace(simProfileJSON, `"p99_ms": 1000`, `"p99_ms": 0.000001`, 1)
	slow = strings.Replace(slow, `"duration_s": 4`, `"duration_s": 1, "time_scale": 4`, 1)
	slow = strings.Replace(slow, `"end_s": 4`, `"end_s": 1`, 1)
	path := filepath.Join(t.TempDir(), "slow.json")
	if err := os.WriteFile(path, []byte(slow), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "SIM_slow.json")
	var stdout, stderr bytes.Buffer
	code := runSim([]string{"-check-slo", "-q", "-out", out, path}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stdout: %s stderr: %s)", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "SLO FAIL") {
		t.Fatalf("stdout: %s", stdout.String())
	}
}
