// Command oijbench is the benchmark front end of the repository.
//
// Subcommands drive the perf subsystem (internal/perf):
//
//	oijbench sweep -spec full -tag nightly         # record BENCH_nightly.json
//	oijbench baseline -spec seed                   # record BENCH_seed.json
//	oijbench gate -baseline BENCH_seed.json        # re-measure + regression-gate
//	oijbench specs                                 # list builtin sweep specs
//
// The legacy flag form regenerates the tables and figures of "Scalable
// Online Interval Join on Modern Multicore Processors in OpenMLDB"
// (ICDE 2023) against this repository's engines:
//
//	oijbench -list
//	oijbench -exp fig4
//	oijbench -exp all -n 500000 -threads 1,2,4,8,16,32
//
// See DESIGN.md for the experiment index, EXPERIMENTS.md for the sweep
// spec format and gate semantics, and PAPER_RESULTS.md for recorded
// paper-vs-measured outcomes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"oij/internal/harness"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "sweep", "baseline":
			os.Exit(runSweepOrBaseline(os.Args[1], os.Args[2:], os.Stdout, os.Stderr))
		case "gate":
			os.Exit(runGate(os.Args[2:], os.Stdout, os.Stderr))
		case "specs":
			os.Exit(runSpecs(os.Stdout, os.Stderr))
		case "sim":
			os.Exit(runSim(os.Args[2:], os.Stdout, os.Stderr))
		case "simdiff":
			os.Exit(runSimDiff(os.Args[2:], os.Stdout, os.Stderr))
		case "profdiff":
			os.Exit(runProfDiff(os.Args[2:], os.Stdout, os.Stderr))
		case "help", "-h", "-help", "--help":
			fmt.Println(usageText)
			return
		}
	}
	legacyMain()
}

// legacyMain is the original figure-regeneration mode.
func legacyMain() {
	var (
		exp     = flag.String("exp", "", "experiment ID to run, or \"all\"")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		n       = flag.Int("n", 0, "tuples per run (default 200000)")
		threads = flag.String("threads", "", "comma-separated joiner sweep (default 1,2,4,8,16)")
		latj    = flag.Int("latency-threads", 0, "joiner count for latency CDFs (default 16)")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, usageText)
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, e := range harness.AllExperiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	opts := harness.ExpOptions{N: *n, LatencyThreads: *latj}
	ts, err := parseThreads(*threads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oijbench: %v\n", err)
		os.Exit(2)
	}
	opts.Threads = ts

	toRun, err := legacyExperiments(*exp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oijbench: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("oijbench: GOMAXPROCS=%d (parallel speedup is bounded by available CPUs)\n", runtime.GOMAXPROCS(0))
	for _, e := range toRun {
		fmt.Printf("\n=== %s — %s ===\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "oijbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
