// Command oijbench regenerates the tables and figures of "Scalable Online
// Interval Join on Modern Multicore Processors in OpenMLDB" (ICDE 2023)
// against this repository's engines.
//
// Usage:
//
//	oijbench -list
//	oijbench -exp fig4
//	oijbench -exp all -n 500000 -threads 1,2,4,8,16,32
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured outcomes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"oij/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment ID to run, or \"all\"")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		n       = flag.Int("n", 0, "tuples per run (default 200000)")
		threads = flag.String("threads", "", "comma-separated joiner sweep (default 1,2,4,8,16)")
		latj    = flag.Int("latency-threads", 0, "joiner count for latency CDFs (default 16)")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.AllExperiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	opts := harness.ExpOptions{N: *n, LatencyThreads: *latj}
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "oijbench: bad -threads value %q\n", part)
				os.Exit(2)
			}
			opts.Threads = append(opts.Threads, v)
		}
	}

	var toRun []harness.Experiment
	if *exp == "all" {
		toRun = harness.AllExperiments()
	} else {
		e, ok := harness.FindExperiment(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "oijbench: unknown experiment %q; known IDs: %s\n",
				*exp, strings.Join(harness.ExperimentIDs(), ", "))
			os.Exit(2)
		}
		toRun = []harness.Experiment{e}
	}

	fmt.Printf("oijbench: GOMAXPROCS=%d (parallel speedup is bounded by available CPUs)\n", runtime.GOMAXPROCS(0))
	for _, e := range toRun {
		fmt.Printf("\n=== %s — %s ===\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "oijbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
