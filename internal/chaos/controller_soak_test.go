package chaos_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oij/internal/agg"
	"oij/internal/chaos"
	"oij/internal/control"
	"oij/internal/engine"
	"oij/internal/refjoin"
	"oij/internal/server"
	"oij/internal/trace"
	"oij/internal/tuple"
	"oij/internal/window"
)

// controlzState is the subset of the /controlz document these tests read.
type controlzState struct {
	Enabled bool `json:"enabled"`
	Active  int  `json:"active_joiners"`
	State   *struct {
		Frozen     bool               `json:"frozen"`
		Joiners    int                `json:"joiners"`
		Applied    uint64             `json:"applied_decisions"`
		Suppressed uint64             `json:"suppressed_decisions"`
		Decisions  []control.Decision `json:"decisions"`
	} `json:"state"`
}

func getControlz(t *testing.T, base string) controlzState {
	t.Helper()
	var doc controlzState
	if err := json.Unmarshal([]byte(httpGet(t, base+"/controlz")), &doc); err != nil {
		t.Fatalf("controlz decode: %v", err)
	}
	return doc
}

func postControlz(t *testing.T, base, query string) {
	t.Helper()
	resp, err := http.Post(base+"/controlz?"+query, "", nil)
	if err != nil {
		t.Fatalf("POST /controlz?%s: %v", query, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /controlz?%s: status %d", query, resp.StatusCode)
	}
}

// TestSoakControllerDecisionsBounded runs the adaptive controller through a
// degraded network (latency, partial writes, stalls) with a bursty fleet,
// while /controlz is scraped and driven (freeze, unfreeze, manual resizes)
// concurrently. It asserts the controller's operational envelope: the
// applied-decision rate stays inside the MaxDecisionsPerMin budget, every
// decision (automatic or manual) lands in the flight recorder in sequence
// order, the endpoint stays readable through the faults, and the server
// still answers correctly once the dust settles.
func TestSoakControllerDecisionsBounded(t *testing.T) {
	clients, rounds := 6, 20
	if testing.Short() {
		clients, rounds = 3, 8
	}

	cfg := server.Config{
		Admission:       server.AdmissionShedProbes,
		RequestDeadline: 5 * time.Second,
		MemCapProbes:    10_000,
		AdminAddr:       "127.0.0.1:0",
		FlightRing:      4096,
		UtilEpoch:       20 * time.Millisecond,
		Engine: engine.Config{
			Joiners: 1,
			Window:  window.Spec{Pre: 10_000_000, Lateness: 10_000},
			Agg:     agg.Sum,
		},
		Control: control.Config{
			Enabled:    true,
			MaxJoiners: 4,
		},
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	proxy, err := chaos.Listen(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxy.SetLatency(1*time.Millisecond, 2*time.Millisecond)
	proxy.SetChunk(9)
	proxy.SetStall(128, 5*time.Millisecond)

	adminBase := fmt.Sprintf("http://%s", s.AdminAddr())
	start := time.Now()

	// Concurrent operator: scrape /controlz continuously and issue manual
	// actions mid-soak — exactly the traffic an incident produces.
	var overrides, freezes int64
	opStop := make(chan struct{})
	var opWG sync.WaitGroup
	opWG.Add(1)
	go func() {
		defer opWG.Done()
		i := 0
		for {
			select {
			case <-opStop:
				return
			default:
			}
			doc := getControlz(t, adminBase)
			if !doc.Enabled || doc.State == nil {
				t.Errorf("controlz dead mid-soak: %+v", doc)
				return
			}
			switch i {
			case 3:
				postControlz(t, adminBase, "action=freeze")
				atomic.AddInt64(&freezes, 1)
			case 6:
				postControlz(t, adminBase, "actuator=joiners&value=3")
				atomic.AddInt64(&overrides, 1)
			case 9:
				postControlz(t, adminBase, "action=unfreeze")
				atomic.AddInt64(&freezes, 1)
			case 12:
				postControlz(t, adminBase, "actuator=joiners&value=1")
				atomic.AddInt64(&overrides, 1)
			}
			i++
			time.Sleep(20 * time.Millisecond)
		}
	}()

	var ts atomic.Int64
	ts.Store(1000)
	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rc := server.NewRetryClient(proxy.Addr(), server.DialOptions{
				DialTimeout:  2 * time.Second,
				ReadTimeout:  10 * time.Second,
				WriteTimeout: 5 * time.Second,
			})
			rc.MaxAttempts = 8
			defer rc.Close()
			for r := 0; r < rounds; r++ {
				_ = rc.Do(func(c *server.Client) error {
					base := ts.Add(100)
					for i := int64(0); i < 30; i++ {
						if err := c.SendProbe(uint64(id%5+1), base+i, 1); err != nil {
							return err
						}
					}
					if _, err := c.SendBase(uint64(id%5+1), base+60, 0); err != nil {
						return err
					}
					if err := c.Barrier(); err != nil {
						return err
					}
					_, err := c.RecvResults(10 * time.Second)
					return err
				})
			}
		}(id)
	}
	wg.Wait()
	close(opStop)
	opWG.Wait()
	proxy.ClearFaults()

	// Budget: applied automatic decisions per minute must stay inside
	// MaxDecisionsPerMin (default 12). Manual overrides bypass the budget
	// and are excluded from the applied counter by design.
	doc := getControlz(t, adminBase)
	if doc.State == nil {
		t.Fatal("controlz state missing after soak")
	}
	elapsedMin := int(time.Since(start).Minutes()) + 1
	budget := control.Config{}.WithDefaults().MaxDecisionsPerMin
	if doc.State.Applied > uint64(budget*elapsedMin) {
		t.Errorf("applied decisions = %d over %d min, budget %d/min", doc.State.Applied, elapsedMin, budget)
	}

	// Every decision — automatic, manual, freeze — is a ctl_decision
	// flight event, and the recorder keeps them in sequence order.
	var fd trace.FlightDoc
	if err := json.Unmarshal([]byte(httpGet(t, adminBase+"/debug/flightrecorder")), &fd); err != nil {
		t.Fatalf("flight decode: %v", err)
	}
	var ctlEvents uint64
	var lastSeq uint64
	for _, ev := range fd.Events {
		if ev.Kind != "ctl_decision" {
			continue
		}
		ctlEvents++
		if ev.Seq <= lastSeq {
			t.Fatalf("ctl_decision events out of order: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
	}
	want := doc.State.Applied + uint64(atomic.LoadInt64(&overrides)) + uint64(atomic.LoadInt64(&freezes))
	if ctlEvents != want {
		t.Errorf("flight holds %d ctl_decision events, want %d (applied %d + overrides %d + freezes %d)",
			ctlEvents, want, doc.State.Applied, overrides, freezes)
	}

	// The manual resize decisions must be in the /controlz ring.
	manual := 0
	for _, d := range doc.State.Decisions {
		if d.Rule == "manual-override" && d.Actuator == "joiners" {
			manual++
		}
	}
	if manual < int(atomic.LoadInt64(&overrides)) {
		t.Errorf("controlz ring holds %d manual joiner overrides, issued %d", manual, overrides)
	}

	// Post-soak the server must still answer a clean round correctly.
	c, err := server.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	base := ts.Add(1000)
	for i := int64(0); i < 10; i++ {
		if err := c.SendProbe(7, base+i, 2); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := c.SendBase(7, base+20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	rs, err := c.RecvResults(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Seq != seq || rs[0].Agg != 20 {
		t.Fatalf("post-soak round = %+v, want seq %d agg 20", rs, seq)
	}
	t.Logf("controller soak: %d applied, %d suppressed, %d ctl flight events, active=%d",
		doc.State.Applied, doc.State.Suppressed, ctlEvents, doc.Active)
}

// TestControllerResizeDifferential proves live resizes are answer-preserving:
// a deterministic probe/base stream runs through a controller-enabled server
// while /controlz resizes the joiner team up and down mid-stream, and every
// answer must equal the refjoin arrival-semantics oracle exactly — same
// aggregate, same match count, for every base sequence number. Integer
// payloads make float ordering irrelevant, so equality is exact.
func TestControllerResizeDifferential(t *testing.T) {
	cfg := server.Config{
		AdminAddr: "127.0.0.1:0",
		Engine: engine.Config{
			Joiners: 1,
			Window:  window.Spec{Pre: 2_000_000, Lateness: 1000},
			Agg:     agg.Sum,
		},
		Control: control.Config{
			Enabled:    true,
			MaxJoiners: 4,
			// A huge latency target keeps the automatic admission rule
			// quiet: shedding would legitimately drop probes and the
			// oracle comparison below requires every tuple admitted.
			P99Target: time.Hour,
		},
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	adminBase := fmt.Sprintf("http://%s", s.AdminAddr())

	c, err := server.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Deterministic stream: 6 chunks of mixed traffic over 5 keys; before
	// each chunk the joiner team is resized through /controlz, so chunk
	// boundaries cross team widths 1→3→1→4→2→3 with buffered probe state
	// carried across every transition.
	rng := rand.New(rand.NewSource(20260808))
	targets := []int{3, 1, 4, 2, 3, 1}
	const perChunk = 500
	var oracle []tuple.Tuple
	var baseSeqs []uint64
	now := tuple.Time(1_000_000)
	for chunk, target := range targets {
		postControlz(t, adminBase, fmt.Sprintf("actuator=joiners&value=%d", target))
		for i := 0; i < perChunk; i++ {
			now += tuple.Time(rng.Intn(400) + 1)
			key := uint64(rng.Intn(5) + 1)
			if rng.Intn(4) == 0 {
				seq, err := c.SendBase(key, now, 0)
				if err != nil {
					t.Fatalf("chunk %d: %v", chunk, err)
				}
				baseSeqs = append(baseSeqs, seq)
				oracle = append(oracle, tuple.Tuple{TS: now, Key: key, Side: tuple.Base, Seq: seq})
			} else {
				val := float64(rng.Intn(1000))
				if err := c.SendProbe(key, now, val); err != nil {
					t.Fatalf("chunk %d: %v", chunk, err)
				}
				oracle = append(oracle, tuple.Tuple{TS: now, Key: key, Val: val, Side: tuple.Probe})
			}
			if i%97 == 0 {
				if err := c.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	rs, err := c.RecvResults(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(baseSeqs) {
		t.Fatalf("got %d results for %d bases", len(rs), len(baseSeqs))
	}

	want := refjoin.ByBaseSeq(refjoin.Arrival(oracle, cfg.Engine.Window, agg.Sum))
	mismatches := 0
	for _, r := range rs {
		w, ok := want[r.Seq]
		if !ok {
			t.Fatalf("result for unknown base seq %d", r.Seq)
		}
		if r.Agg != w.Agg || r.Matches != w.Matches {
			mismatches++
			if mismatches <= 5 {
				t.Errorf("base seq %d: got agg=%v matches=%d, oracle agg=%v matches=%d",
					r.Seq, r.Agg, r.Matches, w.Agg, w.Matches)
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d of %d answers diverged from the oracle across resizes", mismatches, len(rs))
	}

	// The final resize must actually have landed (the ingest loop applies
	// pending targets on its heartbeat), proving the stream above really
	// crossed team-width changes rather than racing past them.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if doc := getControlz(t, adminBase); doc.Active == targets[len(targets)-1] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("final resize to %d never applied", targets[len(targets)-1])
		}
		time.Sleep(10 * time.Millisecond)
	}
	if ctl := getControlz(t, adminBase); ctl.State != nil {
		manual := 0
		for _, d := range ctl.State.Decisions {
			if d.Rule == "manual-override" {
				manual++
			}
		}
		if manual < len(targets) {
			t.Errorf("decision ring holds %d manual overrides, want >= %d", manual, len(targets))
		}
	}
}
