// Package chaos is a TCP fault-injection proxy for robustness tests: it
// sits between a client and a server and degrades the byte streams flowing
// through it — added latency, bounded stalls, partial writes, dropped and
// refused connections — without either end knowing. The serving path's
// overload-control machinery (admission policies, deadlines, slow-consumer
// eviction, client reconnect/breaker) is exercised end to end by driving
// real traffic through a Proxy while tightening its knobs.
//
// All knobs are atomics: tests flip them mid-flight from the test goroutine
// while pump goroutines apply them per chunk. The zero state forwards bytes
// faithfully, so a Proxy with no faults set is a transparent relay.
package chaos

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy forwards TCP connections to Target, applying the configured faults
// to every chunk relayed in either direction.
type Proxy struct {
	target string
	ln     net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // both legs of every active session
	closed bool
	wg     sync.WaitGroup

	latencyNS  atomic.Int64 // per-chunk delay
	jitterNS   atomic.Int64 // uniform extra delay in [0, jitter)
	chunkBytes atomic.Int64 // max bytes per downstream write (0 = no split)
	stallEvery atomic.Int64 // pause the pump every N chunks (0 = off)
	stallNS    atomic.Int64 // pause duration
	refuseNew  atomic.Bool  // accept-and-immediately-close new connections

	// ForwardedBytes counts payload bytes relayed in both directions.
	ForwardedBytes atomic.Int64
	// DroppedConns counts sessions killed by DropActive.
	DroppedConns atomic.Int64
}

// Listen starts a proxy on 127.0.0.1:0 forwarding to target.
func Listen(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, ln: ln, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listening address (dial this instead of the
// real server).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetLatency delays every relayed chunk by base plus a uniform random
// amount in [0, jitter).
func (p *Proxy) SetLatency(base, jitter time.Duration) {
	p.latencyNS.Store(int64(base))
	p.jitterNS.Store(int64(jitter))
}

// SetChunk caps the bytes written downstream per write call, forcing the
// receiver through partial reads (0 restores whole-chunk writes).
func (p *Proxy) SetChunk(n int) { p.chunkBytes.Store(int64(n)) }

// SetStall pauses each pump for d after every n relayed chunks (n == 0
// disables stalling).
func (p *Proxy) SetStall(n int, d time.Duration) {
	p.stallNS.Store(int64(d))
	p.stallEvery.Store(int64(n))
}

// SetRefuseNew makes the proxy close new connections immediately (the
// server looks down) while leaving established sessions alone.
func (p *Proxy) SetRefuseNew(v bool) { p.refuseNew.Store(v) }

// ClearFaults restores transparent relaying for existing and new
// connections.
func (p *Proxy) ClearFaults() {
	p.SetLatency(0, 0)
	p.SetChunk(0)
	p.SetStall(0, 0)
	p.SetRefuseNew(false)
}

// DropActive hard-closes every active session, simulating a network
// partition that resets established connections.
func (p *Proxy) DropActive() {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.conns) / 2 // two legs per session
	for c := range p.conns {
		c.Close()
	}
	p.DroppedConns.Add(int64(n))
}

// Close stops accepting, drops every session, and waits for the pumps.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.ln.Close()
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		down, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.refuseNew.Load() {
			down.Close()
			continue
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			down.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			down.Close()
			up.Close()
			return
		}
		p.conns[down] = struct{}{}
		p.conns[up] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go p.pump(down, up)
		go p.pump(up, down)
	}
}

func (p *Proxy) forget(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// pump relays src → dst one chunk at a time, applying the live fault knobs
// between read and write. Each direction has its own pump, so a stall on
// results does not stop requests (mirroring real asymmetric congestion).
func (p *Proxy) pump(src, dst net.Conn) {
	defer p.wg.Done()
	defer func() {
		src.Close()
		dst.Close()
		p.forget(src)
		p.forget(dst)
	}()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	buf := make([]byte, 16<<10)
	chunks := int64(0)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			chunks++
			if d := p.latencyNS.Load(); d > 0 {
				if j := p.jitterNS.Load(); j > 0 {
					d += rng.Int63n(j)
				}
				time.Sleep(time.Duration(d))
			}
			if every := p.stallEvery.Load(); every > 0 && chunks%every == 0 {
				if d := p.stallNS.Load(); d > 0 {
					time.Sleep(time.Duration(d))
				}
			}
			if werr := p.writeChunked(dst, buf[:n], rng); werr != nil {
				return
			}
			p.ForwardedBytes.Add(int64(n))
		}
		if err != nil {
			if !errors.Is(err, io.EOF) {
				return
			}
			// Half-close: let in-flight bytes in the other direction
			// finish; closing both legs here is fine for test traffic.
			return
		}
	}
}

// writeChunked forwards b, split into at most chunkBytes-sized writes with
// a scheduling yield between them so the receiver observes genuine partial
// frames.
func (p *Proxy) writeChunked(dst net.Conn, b []byte, rng *rand.Rand) error {
	max := int(p.chunkBytes.Load())
	if max <= 0 || max >= len(b) {
		_, err := dst.Write(b)
		return err
	}
	for len(b) > 0 {
		n := 1 + rng.Intn(max)
		if n > len(b) {
			n = len(b)
		}
		if _, err := dst.Write(b[:n]); err != nil {
			return err
		}
		b = b[n:]
		time.Sleep(50 * time.Microsecond)
	}
	return nil
}
