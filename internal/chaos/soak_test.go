package chaos_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oij/internal/agg"
	"oij/internal/chaos"
	"oij/internal/engine"
	"oij/internal/prof"
	"oij/internal/server"
	"oij/internal/trace"
	"oij/internal/window"
)

// soakStats aggregates what the client fleet observed; the soak asserts
// server-side counters against these.
type soakStats struct {
	mu          sync.Mutex
	latencies   []time.Duration // successful (admitted) request rounds
	nacks       int64
	failed      int64 // rounds that failed even after retries (fault phase only)
	disconnects int64
}

func (st *soakStats) record(d time.Duration) {
	st.mu.Lock()
	st.latencies = append(st.latencies, d)
	st.mu.Unlock()
}

func (st *soakStats) p99() time.Duration {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.latencies) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), st.latencies...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)*99)/100]
}

// TestSoakOverloadAndRecovery drives a bursty client fleet through the
// chaos proxy against a fully armed server (admission policy, request
// deadline, memory cap, slow-consumer grace) across three phases — clean,
// faulted (latency + partial writes + stalls + a connection drop + a
// never-reading consumer), recovered — and asserts the degradation ladder:
// no deadlock anywhere, the slow session evicted and counted, shed/NACK
// accounting consistent between clients, /statusz, and /metrics, bounded
// p99 for admitted requests in clean phases, and a return to a NACK-free
// steady state once faults clear.
func TestSoakOverloadAndRecovery(t *testing.T) {
	clients, warmRounds, faultRounds, recoverRounds := 8, 8, 24, 12
	if testing.Short() {
		clients, warmRounds, faultRounds, recoverRounds = 4, 4, 10, 6
	}

	// MemCapProbes is set low enough that the warmup fleet alone crosses
	// both pressure rungs, so the flight recorder is guaranteed to hold
	// mem_level transitions with sequence numbers before the fault-phase
	// slow-consumer eviction. The flight ring is sized so the post-fault
	// traffic cannot wash those events out before the final assertions.
	// The SLO thresholds arm the /healthz verdict: MemCapProbes=300 means
	// the warmup fleet alone crosses pressure rung 1, so the soak is
	// guaranteed at least one healthy→unhealthy SLO transition with the
	// flight-recorder evidence trail behind it.
	// ProfilePeriod is parked at an hour so every profile in the ring is
	// an incident capture — the soak then proves the incident path (SLO
	// breach, mem pressure, eviction) reaches the continuous profiler.
	flightDump := filepath.Join(t.TempDir(), "flight-incident.json")
	profileDir := filepath.Join(t.TempDir(), "prof-ring")
	cfg := server.Config{
		Admission:         server.AdmissionShedProbes,
		RequestDeadline:   5 * time.Second,
		MemCapProbes:      300,
		SlowConsumerGrace: 300 * time.Millisecond,
		ResultBuffer:      32,
		AdminAddr:         "127.0.0.1:0",
		TraceSampleN:      8,
		FlightRing:        2048,
		FlightDumpPath:    flightDump,
		ProfileDir:        profileDir,
		ProfilePeriod:     time.Hour,
		ProfileCPUSlice:   50 * time.Millisecond,
		UtilEpoch:         50 * time.Millisecond,
		SLOWindow:         time.Second,
		SLOMemLevel:       1,
		Engine: engine.Config{
			Joiners: 2,
			Window:  window.Spec{Pre: 10_000_000, Lateness: 10_000},
			Agg:     agg.Sum,
		},
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	proxy, err := chaos.Listen(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	var stats soakStats
	var ts atomic.Int64 // shared virtual event clock
	ts.Store(1000)

	round := func(rc *server.RetryClient, key uint64) error {
		t0 := time.Now()
		err := rc.Do(func(c *server.Client) error {
			base := ts.Add(100)
			for i := int64(0); i < 20; i++ {
				if err := c.SendProbe(key, base+i, 1); err != nil {
					return err
				}
			}
			for i := int64(0); i < 3; i++ {
				if _, err := c.SendBase(key, base+50+i, 0); err != nil {
					return err
				}
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			_, err := c.RecvResults(15 * time.Second)
			return err
		})
		var nerr *server.NackError
		if errors.As(err, &nerr) {
			atomic.AddInt64(&stats.nacks, 1)
		}
		if errors.Is(err, server.ErrDisconnected) {
			atomic.AddInt64(&stats.disconnects, 1)
		}
		if err == nil {
			stats.record(time.Since(t0))
		}
		return err
	}

	runPhase := func(name string, rounds int, strict bool) {
		var wg sync.WaitGroup
		for id := 0; id < clients; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				rc := server.NewRetryClient(proxy.Addr(), server.DialOptions{
					DialTimeout:  2 * time.Second,
					ReadTimeout:  15 * time.Second,
					WriteTimeout: 5 * time.Second,
				})
				rc.Backoff = server.Backoff{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond}
				rc.Breaker = server.Breaker{Threshold: 4, Cooldown: 100 * time.Millisecond}
				rc.MaxAttempts = 10
				defer rc.Close()
				for r := 0; r < rounds; r++ {
					if err := round(rc, uint64(id+1)); err != nil {
						if strict {
							t.Errorf("%s: client %d round %d: %v", name, id, r, err)
							return
						}
						atomic.AddInt64(&stats.failed, 1)
					}
				}
			}(id)
		}
		wg.Wait()
	}

	// Phase 1: clean warmup — everything must succeed.
	runPhase("warmup", warmRounds, true)

	// Phase 2: degrade the network and add a never-reading consumer. While
	// the faults run, hammer every observability endpoint concurrently —
	// the scrape paths must stay readable (and race-clean) exactly when
	// someone would be debugging the incident.
	proxy.SetLatency(2*time.Millisecond, 3*time.Millisecond)
	proxy.SetChunk(7)
	proxy.SetStall(64, 10*time.Millisecond)

	adminBase := fmt.Sprintf("http://%s", s.AdminAddr())
	scrapeStop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	var scrapes atomic.Int64
	for _, url := range []string{
		adminBase + "/metrics",
		adminBase + "/statusz",
		adminBase + "/tracez",
		adminBase + "/debug/flightrecorder",
		adminBase + "/timeline",
		adminBase + "/healthz",
		adminBase + "/profilez",
	} {
		scrapeWG.Add(1)
		go func(u string) {
			defer scrapeWG.Done()
			for {
				select {
				case <-scrapeStop:
					return
				default:
				}
				resp, err := http.Get(u)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					scrapes.Add(1)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(url)
	}

	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		// Dial the server directly (not via the proxy) with a tiny receive
		// buffer so kernel TCP buffering cannot absorb the unread results —
		// the server's send side must actually block past the grace period.
		raw, err := net.Dial("tcp", addr.String())
		if err != nil {
			return
		}
		if tc, ok := raw.(*net.TCPConn); ok {
			tc.SetReadBuffer(2048)
		}
		c := server.NewClient(raw)
		defer c.Close()
		// Request answers, never read them: the server must evict this
		// session after SlowConsumerGrace instead of wedging a joiner.
		// The volume must out-run tcp_wmem autotuning (4MB here) so the
		// server's send side genuinely blocks rather than buffering.
		for i := int64(0); i < 1<<18; i++ {
			if _, err := c.SendBase(99, ts.Load()+i, 0); err != nil {
				return
			}
			if i%512 == 0 {
				if err := c.Flush(); err != nil {
					return
				}
			}
		}
		c.Flush()
		<-time.After(2 * time.Second) // hold the unread connection open
	}()

	faultHalf := faultRounds / 2
	runPhase("fault-a", faultHalf, false)
	// Partition mid-phase so live sessions actually reset and clients must
	// reconnect through backoff.
	dropDone := make(chan struct{})
	go func() {
		defer close(dropDone)
		time.Sleep(100 * time.Millisecond)
		proxy.DropActive()
	}()
	runPhase("fault-b", faultRounds-faultHalf, false)
	<-dropDone
	<-slowDone
	if proxy.DroppedConns.Load() < 1 {
		t.Error("partition dropped no live sessions")
	}

	// Phase 3: clear every fault and require a clean steady state.
	proxy.ClearFaults()
	waitFor(t, 10*time.Second, "slow session eviction", func() bool {
		return s.Statusz().Overload.SlowSessionsEvicted >= 1
	})
	nacksBefore := atomic.LoadInt64(&stats.nacks)
	runPhase("recovery", recoverRounds, true)
	close(scrapeStop)
	scrapeWG.Wait()
	if scrapes.Load() == 0 {
		t.Error("observability endpoints unreadable during the soak")
	}
	if d := atomic.LoadInt64(&stats.nacks) - nacksBefore; d != 0 {
		t.Errorf("recovery phase saw %d NACKs, want 0", d)
	}

	// Bounded p99 for admitted requests across the whole soak: every
	// recorded latency is a request the server accepted and answered.
	if p99 := stats.p99(); p99 <= 0 || p99 > 10*time.Second {
		t.Errorf("admitted-request p99 = %v", p99)
	}

	// Accounting: the overload ladder's transitions all surface as
	// counters, and /statusz agrees with /metrics at quiesce.
	st := s.Statusz()
	if st.Overload.SlowSessionsEvicted < 1 {
		t.Errorf("slow sessions evicted = %d, want >= 1", st.Overload.SlowSessionsEvicted)
	}
	if clientNacks := atomic.LoadInt64(&stats.nacks); clientNacks > 0 &&
		st.Overload.DeadlineRejected+st.Overload.Rejected+st.Overload.NacksDropped < clientNacks {
		t.Errorf("clients saw %d NACKs but server counted %+v", clientNacks, st.Overload)
	}
	admin := s.AdminAddr()
	if admin == nil {
		t.Fatal("no admin endpoint")
	}
	metrics := httpGet(t, fmt.Sprintf("http://%s/metrics", admin))
	for metric, want := range map[string]int64{
		"oij_slow_sessions_evicted_total": st.Overload.SlowSessionsEvicted,
		"oij_admission_shed_probes_total": st.Overload.ShedProbes,
		"oij_admission_rejected_total":    st.Overload.Rejected,
		"oij_deadline_rejected_total":     st.Overload.DeadlineRejected,
		"oij_mem_shed_probes_total":       st.Overload.MemShedProbes,
		"oij_transport_stall_parks_total": -1, // presence only
		"oij_stalled_joiners":             -1,
		"oij_mem_pressure_level":          -1,
		"oij_buffered_probes":             -1,
	} {
		line := metricLine(metrics, metric)
		if line == "" {
			t.Errorf("metric %s missing from /metrics", metric)
			continue
		}
		if want >= 0 && !strings.HasSuffix(line, fmt.Sprintf(" %d", want)) {
			t.Errorf("metric %s = %q, statusz says %d", metric, line, want)
		}
	}
	var statusz struct {
		Overload struct {
			SlowSessionsEvicted int64 `json:"slow_sessions_evicted"`
		} `json:"overload"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, fmt.Sprintf("http://%s/statusz", admin))), &statusz); err != nil {
		t.Fatalf("statusz decode: %v", err)
	}
	if statusz.Overload.SlowSessionsEvicted != st.Overload.SlowSessionsEvicted {
		t.Errorf("statusz HTTP evictions = %d, direct = %d",
			statusz.Overload.SlowSessionsEvicted, st.Overload.SlowSessionsEvicted)
	}

	// The SLO evaluator must have witnessed the warmup pressure spike: at
	// least one healthy→unhealthy transition, scored over the timeline.
	if st.SLO.Transitions < 1 {
		t.Errorf("SLO transitions = %d, want >= 1 (MemCapProbes crossing should trip SLOMemLevel=1)", st.SLO.Transitions)
	}

	// Hot-key analytics: the never-reading consumer pushed ~256k bases of
	// key 99 — orders of magnitude more than the fleet's bases — so the
	// merged SpaceSaving sketch must rank it first.
	if st.HotKeys == nil {
		t.Fatal("hot-key analytics absent from /statusz")
	} else if es := st.HotKeys.Bases.Entries; len(es) == 0 || es[0].Key != 99 {
		t.Errorf("merged hot base keys = %+v, want key 99 first", es)
	}

	// The timeline must be live (ticking, all three resolutions) and its
	// memory bound honoured: series x slots x slot size, O(100KB), not
	// growing with soak length.
	if st.Timeline.Ticks == 0 || len(st.Timeline.Resolutions) != 3 {
		t.Errorf("timeline not live: %+v", st.Timeline)
	}
	if st.Timeline.MemoryBytes > 8<<20 {
		t.Errorf("timeline memory %d bytes exceeds its fixed budget", st.Timeline.MemoryBytes)
	}

	// The trace layer must have survived the soak: sampled spans from the
	// healthy fleet completed, and the slow consumer's abandoned requests
	// are accounted as drops, not leaks.
	tracezBody := httpGet(t, adminBase+"/tracez")
	var tz trace.TracezDoc
	if err := json.Unmarshal([]byte(tracezBody), &tz); err != nil {
		t.Fatalf("tracez decode: %v", err)
	}
	if tz.SampleEvery != 8 {
		t.Errorf("tracez sample_every = %d", tz.SampleEvery)
	}
	completeSpans := 0
	for _, sp := range tz.Spans {
		if sp.Complete {
			completeSpans++
		}
	}
	if completeSpans == 0 {
		t.Errorf("no complete spans on /tracez after the soak (completed=%d dropped=%d)", tz.Completed, tz.Dropped)
	}

	// Every eviction and detected stall must have left a flight event, and
	// the control-plane story must read in causal (sequence) order: memory
	// pressure rose before the slow consumer was finally evicted.
	flightBody := httpGet(t, adminBase+"/debug/flightrecorder")
	var fd trace.FlightDoc
	if err := json.Unmarshal([]byte(flightBody), &fd); err != nil {
		t.Fatalf("flight recorder decode: %v", err)
	}
	var evictions, memLevels, stalls, sloFlips, profCaptures int64
	var firstPressureSeq, evictionSeq uint64
	for i, ev := range fd.Events {
		if i > 0 && fd.Events[i-1].Seq >= ev.Seq {
			t.Fatalf("flight events out of sequence order at %d: %d >= %d", i, fd.Events[i-1].Seq, ev.Seq)
		}
		switch ev.Kind {
		case "slow_eviction":
			evictions++
			evictionSeq = ev.Seq
		case "mem_level":
			memLevels++
			if ev.A > 0 && firstPressureSeq == 0 {
				firstPressureSeq = ev.Seq
			}
		case "stall_detected":
			stalls++
		case "slo_unhealthy", "slo_recovered":
			sloFlips++
		case "prof_capture":
			profCaptures++
		}
	}
	if evictions != st.Overload.SlowSessionsEvicted {
		t.Errorf("flight recorder holds %d slow_eviction events, server evicted %d", evictions, st.Overload.SlowSessionsEvicted)
	}
	if memLevels == 0 {
		t.Error("no mem_level transitions in the flight recorder (MemCapProbes should have tripped during warmup)")
	}
	if sloFlips == 0 {
		t.Error("no slo_unhealthy/slo_recovered events in the flight recorder (SLOMemLevel=1 should have tripped with the pressure rung)")
	}
	if firstPressureSeq == 0 || evictionSeq == 0 || firstPressureSeq >= evictionSeq {
		t.Errorf("pressure-before-eviction ordering violated: first mem pressure seq %d, eviction seq %d",
			firstPressureSeq, evictionSeq)
	}

	// The incident path must also have reached the continuous profiler:
	// with the periodic loop parked, every ring entry is an out-of-cycle
	// incident capture, its flight sequence stamped AFTER the incident
	// that triggered it — the capture manifest reads in causal order
	// against the flight timeline.
	if profCaptures == 0 {
		t.Error("no prof_capture events in the flight recorder (incidents should trigger out-of-cycle captures)")
	}
	var profilezBody string
	var pdoc struct {
		Entries []prof.Entry `json:"entries"`
	}
	waitFor(t, 10*time.Second, "incident profile captures", func() bool {
		profilezBody = httpGet(t, adminBase+"/profilez")
		pdoc.Entries = nil
		if err := json.Unmarshal([]byte(profilezBody), &pdoc); err != nil {
			return false
		}
		return len(pdoc.Entries) >= 2
	})
	for _, e := range pdoc.Entries {
		if e.Reason == "periodic" {
			t.Errorf("periodic capture %d in an incident-only ring: %+v", e.Seq, e)
		}
		if e.FlightSeq == 0 || e.FlightSeq < firstPressureSeq {
			t.Errorf("capture %d (%s/%s) flight seq %d precedes the first incident seq %d",
				e.Seq, e.Kind, e.Reason, e.FlightSeq, firstPressureSeq)
		}
	}

	// The eviction (and the mem-pressure escalations before it) must have
	// produced an incident dump on disk.
	waitFor(t, 5*time.Second, "flight incident dump", func() bool {
		_, err := os.Stat(flightDump)
		return err == nil
	})
	dumpBytes, err := os.ReadFile(flightDump)
	if err != nil {
		t.Fatal(err)
	}
	var dump trace.FlightDoc
	if err := json.Unmarshal(dumpBytes, &dump); err != nil {
		t.Fatalf("flight dump decode: %v", err)
	}
	if dump.Reason == "" || len(dump.Events) == 0 {
		t.Errorf("flight dump empty: reason=%q events=%d", dump.Reason, len(dump.Events))
	}
	if fd.Dumps < 1 {
		t.Errorf("flight recorder dump counter = %d", fd.Dumps)
	}

	// When CI points OIJ_SOAK_ARTIFACT_DIR at a directory, leave the trace
	// ring, the flight timeline, and the telemetry timeline behind for the
	// workflow to upload.
	if dir := os.Getenv("OIJ_SOAK_ARTIFACT_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, body := range map[string]string{
			"soak-tracez.json":        tracezBody,
			"soak-flight.json":        flightBody,
			"soak-incident-dump.json": string(dumpBytes),
			"soak-timeline.json":      httpGet(t, adminBase+"/timeline"),
			"soak-profilez.json":      profilezBody,
		} {
			if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	t.Logf("soak: %d admitted rounds (p99 %v), %d NACKs, %d disconnects, %d failed fault-phase rounds, %d scrapes, overload=%+v, flight: %d mem / %d stall / %d evict events",
		len(stats.latencies), stats.p99(), stats.nacks, stats.disconnects, stats.failed, scrapes.Load(), st.Overload, memLevels, stalls, evictions)
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricLine returns the sample line for a metric name (exact match, not a
// prefix of a longer name).
func metricLine(metrics, name string) string {
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimSpace(line)
		}
	}
	return ""
}
