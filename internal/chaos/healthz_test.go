package chaos_test

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/server"
	"oij/internal/trace"
	"oij/internal/window"
)

// healthzBody is the JSON shape /healthz serves (a subset of
// server.HealthStatus — decoded independently so this test also pins the
// wire contract a load balancer would script against).
type healthzBody struct {
	Healthy     bool  `json:"healthy"`
	Transitions int64 `json:"transitions"`
	Dimensions  []struct {
		Name     string `json:"name"`
		Breached bool   `json:"breached"`
	} `json:"dimensions"`
}

func getHealthz(t *testing.T, url string) (int, healthzBody) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var body healthzBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	return resp.StatusCode, body
}

// TestHealthzFlipsUnderMemoryPressure drives the full load-balancer
// contract end to end over HTTP: a clean server reports 200, a probe flood
// past MemCapProbes trips the memory-pressure SLO to 503, and draining the
// buffered state (watermark advance → eviction) returns 200 once the
// trailing SLO window is clean again. The transition pair must also land
// in the flight recorder, so the 503 interval is reconstructable after the
// fact.
func TestHealthzFlipsUnderMemoryPressure(t *testing.T) {
	cfg := server.Config{
		MemCapProbes: 200,
		AdminAddr:    "127.0.0.1:0",
		UtilEpoch:    20 * time.Millisecond, // fast sampler → fast SLO evaluation
		SLOMemLevel:  1,
		SLOWindow:    time.Second,
		Engine: engine.Config{
			Joiners: 2,
			Window:  window.Spec{Pre: 10_000_000, Lateness: 1000},
			Agg:     agg.Sum,
		},
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	healthURL := "http://" + s.AdminAddr().String() + "/healthz"

	c, err := server.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Phase 1: light traffic, healthy. The evaluator starts healthy, so
	// this pins the 200 side of the contract before anything breaks.
	for i := int64(0); i < 10; i++ {
		c.SendProbe(1, 1000+i, 1)
	}
	if _, err := c.SendBase(1, 2000, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecvResults(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	code, body := getHealthz(t, healthURL)
	if code != http.StatusOK || !body.Healthy {
		t.Fatalf("clean server: healthz = %d %+v", code, body)
	}

	// Phase 2: flood probes with no watermark progress. Buffered state
	// crosses MemCapProbes, the ingest loop raises the pressure rung, and
	// the next SLO evaluation must flip /healthz to 503.
	for i := int64(0); i < 3*cfg.MemCapProbes; i++ {
		c.SendProbe(2, 10_000+i, 1)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	var unhealthy healthzBody
	waitFor(t, 10*time.Second, "healthz to report 503", func() bool {
		code, b := getHealthz(t, healthURL)
		if code == http.StatusServiceUnavailable {
			unhealthy = b
			return true
		}
		return false
	})
	if unhealthy.Healthy {
		t.Errorf("503 body claims healthy: %+v", unhealthy)
	}
	breached := false
	for _, d := range unhealthy.Dimensions {
		if d.Name == "mem_pressure" && d.Breached {
			breached = true
		}
	}
	if !breached {
		t.Errorf("503 body does not flag mem_pressure: %+v", unhealthy)
	}

	// Phase 3: recover. Bases far ahead advance the watermark past the
	// flooded probes' retention horizon, eviction reclaims the buffered
	// state, and a trickle of fresh probes keeps the ingest loop
	// re-sampling the (now clear) pressure rung. Once the breach ages out
	// of the trailing SLO window, /healthz must return to 200.
	deadline := time.Now().Add(20 * time.Second)
	ts := int64(50_000_000)
	recovered := false
	for time.Now().Before(deadline) {
		if _, err := c.SendBase(3, ts, 0); err != nil {
			t.Fatal(err)
		}
		c.SendProbe(3, ts, 1)
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		ts += 1_000_000
		if code, _ := getHealthz(t, healthURL); code == http.StatusOK {
			recovered = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("healthz never returned to 200 after the flood drained")
	}

	// The full arc is accounted: one unhealthy→healthy round trip (or
	// more, if pressure flapped), currently healthy, and both transition
	// kinds on the flight recorder for postmortem reconstruction.
	st := s.Statusz()
	if !st.SLO.Healthy || st.SLO.Transitions < 2 || st.SLO.Transitions%2 != 0 {
		t.Errorf("final SLO state %+v, want healthy with an even transition count >= 2", st.SLO)
	}
	var fd trace.FlightDoc
	if err := json.Unmarshal([]byte(httpGet(t, "http://"+s.AdminAddr().String()+"/debug/flightrecorder")), &fd); err != nil {
		t.Fatal(err)
	}
	var sawUnhealthy, sawRecovered bool
	for _, ev := range fd.Events {
		switch ev.Kind {
		case "slo_unhealthy":
			sawUnhealthy = true
		case "slo_recovered":
			sawRecovered = true
		}
	}
	if !sawUnhealthy || !sawRecovered {
		t.Errorf("flight recorder missing SLO transitions: unhealthy=%v recovered=%v", sawUnhealthy, sawRecovered)
	}
	t.Logf("healthz arc complete: transitions=%d", st.SLO.Transitions)
}
