package chaos_test

import (
	"fmt"
	"testing"
	"time"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/perf"
	"oij/internal/server"
	"oij/internal/workload/pattern"
)

// The scenario simulator's overload accounting, cross-checked against the
// server's own degradation ladder: a healthy daemon yields a clean
// timeline, an armed daemon under the same profile yields NACK and shed
// counts that agree between the sim report and /statusz.

// overloadProfile is a short, dense scenario with a NACK-sensitive SLO.
func overloadProfile() pattern.Profile {
	return pattern.Profile{
		SchemaVersion: pattern.ProfileSchemaVersion,
		Name:          "overload-smoke",
		Seed:          77,
		DurationS:     4,
		IntervalS:     1,
		Stream: pattern.StreamSpec{
			RateTPS: 2000, Keys: 64, BaseShare: 0.3,
			WindowPreS: 0.5, LatenessS: 0.1,
		},
		Phases: []pattern.Phase{{Name: "all", StartS: 0, EndS: 4}},
		SLO:    &pattern.SLOSpec{CheckNacks: true},
	}
}

func compileOverloadProfile(t *testing.T) *pattern.Scenario {
	t.Helper()
	sc, err := pattern.Compile(overloadProfile(), "")
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func startSimServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s, addr.String()
}

func simEngineConfig(sc *pattern.Scenario) engine.Config {
	return engine.Config{
		Joiners: 2,
		Window:  sc.Window(),
		Agg:     agg.Sum,
		Mode:    engine.OnArrival,
	}
}

// TestSimHealthyServerCleanTimeline: a healthy daemon answers every
// request; the timeline shows zero NACKs and no SLO breach.
func TestSimHealthyServerCleanTimeline(t *testing.T) {
	sc := compileOverloadProfile(t)
	_, addr := startSimServer(t, server.Config{Engine: simEngineConfig(sc)})

	rep, err := perf.RunSim(sc, perf.SimOptions{Addr: addr, Unpaced: true, Env: &perf.Env{}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nacks != 0 {
		t.Fatalf("healthy server produced %d NACKs", rep.Nacks)
	}
	if rep.Results != rep.Bases || rep.Bases == 0 {
		t.Fatalf("results %d, bases %d", rep.Results, rep.Bases)
	}
	if rep.SLOBreachedIntervals != 0 {
		t.Fatalf("%d SLO breaches on a healthy run", rep.SLOBreachedIntervals)
	}
}

// TestSimOverloadedServerAccounting: with a request deadline every request
// goes stale, and with a tiny probe memory cap the server sheds — the sim
// timeline must count every NACK, scrape the shed count, and fail the SLO.
func TestSimOverloadedServerAccounting(t *testing.T) {
	sc := compileOverloadProfile(t)
	srv, addr := startSimServer(t, server.Config{
		Engine:          simEngineConfig(sc),
		RequestDeadline: time.Nanosecond,
		MemCapProbes:    400,
		AdminAddr:       "127.0.0.1:0",
	})

	rep, err := perf.RunSim(sc, perf.SimOptions{
		Addr:     addr,
		AdminURL: fmt.Sprintf("http://%s", srv.AdminAddr()),
		Unpaced:  true,
		Env:      &perf.Env{},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Every base request went stale against the 1ns deadline.
	if rep.Nacks != rep.Bases || rep.Bases == 0 {
		t.Fatalf("nacks %d, bases %d: every request must be NACKed", rep.Nacks, rep.Bases)
	}
	if rep.Results != 0 {
		t.Fatalf("%d results despite universal deadline NACKs", rep.Results)
	}

	// The driver's NACK count must agree with the server's ladder.
	st := srv.Statusz()
	if st.Overload.DeadlineRejected != rep.Nacks {
		t.Fatalf("server counted %d deadline NACKs, sim counted %d",
			st.Overload.DeadlineRejected, rep.Nacks)
	}

	// The memory guard shed probes, and the admin scrape carried the count
	// into the timeline.
	if st.Overload.MemShedProbes == 0 {
		t.Fatal("memory cap never shed (raise the profile rate?)")
	}
	if rep.Sheds != st.Overload.ShedProbes+st.Overload.MemShedProbes {
		t.Fatalf("sim sheds %d, server sheds %d+%d",
			rep.Sheds, st.Overload.ShedProbes, st.Overload.MemShedProbes)
	}

	// NACK-laden intervals fail the check_nacks SLO.
	if rep.SLOBreachedIntervals == 0 {
		t.Fatal("universal NACKs breached no interval SLO")
	}
	var ivNacks, ivSheds int64
	for _, iv := range rep.Intervals {
		ivNacks += iv.Nacks
		ivSheds += iv.Sheds
	}
	if ivNacks != rep.Nacks || ivSheds != rep.Sheds {
		t.Fatalf("interval sums (%d nacks, %d sheds) disagree with totals (%d, %d)",
			ivNacks, ivSheds, rep.Nacks, rep.Sheds)
	}
}
