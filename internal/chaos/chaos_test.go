package chaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c)
		}
	}()
	return ln.Addr().String()
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func roundTrip(t *testing.T, c net.Conn, payload []byte) []byte {
	t.Helper()
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestTransparentRelay(t *testing.T) {
	p, err := Listen(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	payload := bytes.Repeat([]byte("interval-join"), 100)
	if got := roundTrip(t, c, payload); !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted through clean proxy")
	}
	if p.ForwardedBytes.Load() < int64(2*len(payload)) {
		t.Fatalf("forwarded = %d", p.ForwardedBytes.Load())
	}
}

func TestLatencyInjection(t *testing.T) {
	p, err := Listen(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	roundTrip(t, c, []byte("warm")) // establish both pumps

	p.SetLatency(50*time.Millisecond, 10*time.Millisecond)
	t0 := time.Now()
	roundTrip(t, c, []byte("slow"))
	// Two pump traversals, ≥50ms each.
	if d := time.Since(t0); d < 100*time.Millisecond {
		t.Fatalf("round-trip %v under injected latency", d)
	}
	p.ClearFaults()
}

func TestChunkedPartialWrites(t *testing.T) {
	p, err := Listen(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetChunk(3)
	c := dialProxy(t, p)
	payload := bytes.Repeat([]byte{0xab, 0xcd, 0xef, 0x01}, 200)
	if got := roundTrip(t, c, payload); !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted by chunked writes")
	}
}

func TestStall(t *testing.T) {
	p, err := Listen(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	roundTrip(t, c, []byte("warm"))

	p.SetStall(1, 80*time.Millisecond)
	t0 := time.Now()
	roundTrip(t, c, []byte("stalled"))
	if d := time.Since(t0); d < 80*time.Millisecond {
		t.Fatalf("round-trip %v under stall", d)
	}
}

func TestRefuseNewKeepsExisting(t *testing.T) {
	p, err := Listen(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	old := dialProxy(t, p)
	roundTrip(t, old, []byte("pre"))

	p.SetRefuseNew(true)
	fresh, err := net.Dial("tcp", p.Addr())
	if err == nil {
		fresh.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, rerr := fresh.Read(make([]byte, 1)); rerr == nil {
			t.Fatal("new connection served while refusing")
		}
		fresh.Close()
	}
	// The established session keeps working.
	if got := roundTrip(t, old, []byte("post")); !bytes.Equal(got, []byte("post")) {
		t.Fatal("existing session broken by refuse-new")
	}
}

func TestDropActive(t *testing.T) {
	p, err := Listen(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dialProxy(t, p)
	roundTrip(t, c, []byte("up"))

	p.DropActive()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 8)
	_, werr := c.Write([]byte("dead?"))
	_, rerr := c.Read(buf)
	if werr == nil && rerr == nil {
		t.Fatal("session survived DropActive")
	}
	if p.DroppedConns.Load() < 1 {
		t.Fatalf("dropped = %d", p.DroppedConns.Load())
	}

	// The proxy still accepts fresh sessions afterwards.
	c2 := dialProxy(t, p)
	if got := roundTrip(t, c2, []byte("back")); !bytes.Equal(got, []byte("back")) {
		t.Fatal("proxy dead after DropActive")
	}
}
