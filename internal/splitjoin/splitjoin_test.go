package splitjoin

import (
	"math"
	"testing"
	"time"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/metrics"
	"oij/internal/refjoin"
	"oij/internal/tuple"
	"oij/internal/window"
	"oij/internal/workload"
)

func replay(e engine.Engine, tuples []tuple.Tuple) {
	e.Start()
	for _, t := range tuples {
		e.Ingest(t)
	}
	e.Drain()
}

func gen(t *testing.T, n, keys int, w window.Spec) []tuple.Tuple {
	t.Helper()
	wl := workload.Config{
		Name: "split-test", N: n, EventRate: 1_000_000, Keys: keys,
		BaseShare: 0.5, Window: w, Disorder: w.Lateness, Seed: 17,
	}
	ts, err := wl.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// TestBroadcastAccounting: every data tuple is shipped to all joiners.
func TestBroadcastAccounting(t *testing.T) {
	w := window.Spec{Pre: 1000, Fol: 0, Lateness: 100}
	stream := gen(t, 5000, 4, w)
	e := New(engine.Config{Joiners: 4, Window: w, Agg: agg.Sum}, engine.NullSink{})
	replay(e, stream)
	if got := e.Stats().Extra["broadcast"]; got != int64(len(stream)*4) {
		t.Fatalf("broadcast = %d, want %d", got, len(stream)*4)
	}
}

// TestRoundRobinStorageBalance: joiners own equal probe shares and process
// every base, so Processed is flat regardless of key skew — SplitJoin's
// defining property.
func TestRoundRobinStorageBalance(t *testing.T) {
	w := window.Spec{Pre: 1000, Fol: 0, Lateness: 100}
	stream := gen(t, 60_000, 1, w) // a single key: worst case for key partitioning
	e := New(engine.Config{Joiners: 4, Window: w, Agg: agg.Sum}, engine.NullSink{})
	replay(e, stream)
	if unb := metrics.Unbalancedness(e.Stats().Loads()); unb > 0.05 {
		t.Fatalf("unbalancedness %.3f on single-key stream, want ~0", unb)
	}
}

// TestMergerExactlyOnce: one merged result per base tuple, none duplicated
// and none lost, across both modes.
func TestMergerExactlyOnce(t *testing.T) {
	w := window.Spec{Pre: 1000, Fol: 0, Lateness: 100}
	stream := gen(t, 20_000, 6, w)
	bases := workload.CountBase(stream)
	for _, mode := range []engine.EmitMode{engine.OnArrival, engine.OnWatermark} {
		sink := &engine.CollectSink{}
		e := New(engine.Config{Joiners: 5, Window: w, Agg: agg.Sum, Mode: mode}, sink)
		replay(e, stream)
		rs := sink.Results()
		if len(rs) != bases {
			t.Fatalf("%v: %d results for %d bases", mode, len(rs), bases)
		}
		seen := map[uint64]bool{}
		for _, r := range rs {
			if seen[r.BaseSeq] {
				t.Fatalf("%v: duplicate result for base %d", mode, r.BaseSeq)
			}
			seen[r.BaseSeq] = true
		}
	}
}

// TestPartialMergeMatchesReference: the J partial aggregates recombine to
// the exact event-time join, including for the non-invertible max.
func TestPartialMergeMatchesReference(t *testing.T) {
	w := window.Spec{Pre: 1500, Fol: 200, Lateness: 300}
	stream := gen(t, 25_000, 7, w)
	for _, fn := range []agg.Func{agg.Sum, agg.Max} {
		want := refjoin.ByBaseSeq(refjoin.EventTime(stream, w, fn))
		sink := &engine.CollectSink{}
		e := New(engine.Config{Joiners: 6, Window: w, Agg: fn, Mode: engine.OnWatermark}, sink)
		replay(e, stream)
		got := sink.ByBaseSeq()
		for seq, wr := range want {
			g := got[seq]
			if g.Matches != wr.Matches {
				t.Fatalf("%v base %d: %d matches, want %d", fn, seq, g.Matches, wr.Matches)
			}
			if wr.Matches > 0 && math.Abs(g.Agg-wr.Agg) > 1e-6*(1+math.Abs(wr.Agg)) {
				t.Fatalf("%v base %d: agg %g, want %g", fn, seq, g.Agg, wr.Agg)
			}
		}
	}
}

// TestEviction: round-robin stores are swept like any other buffer.
func TestEviction(t *testing.T) {
	w := window.Spec{Pre: 500, Fol: 0, Lateness: 100}
	stream := gen(t, 100_000, 4, w)
	e := New(engine.Config{Joiners: 3, Window: w, Agg: agg.Sum}, engine.NullSink{})
	replay(e, stream)
	if e.Stats().Evicted.Load() == 0 {
		t.Fatal("no eviction over a long stream")
	}
}

// TestInstrumentation: the split/store/process pattern reports breakdown
// and (full-scan) effectiveness below 1 under lateness.
func TestInstrumentation(t *testing.T) {
	w := window.Spec{Pre: 500, Fol: 0, Lateness: 2000}
	stream := gen(t, 40_000, 4, w)
	e := New(engine.Config{Joiners: 2, Window: w, Agg: agg.Sum, Instrument: true}, engine.NullSink{})
	replay(e, stream)
	st := e.Stats()
	if st.MergedBreakdown().Lookup == 0 {
		t.Fatal("lookup breakdown not populated")
	}
	if eff := st.MergedEffectiveness(); eff <= 0 || eff >= 1 {
		t.Fatalf("effectiveness = %g, want in (0,1) under lateness", eff)
	}
}

// TestLatencyRecording: the merger records latency for stamped bases.
func TestLatencyRecording(t *testing.T) {
	w := window.Spec{Pre: 1000, Fol: 0, Lateness: 100}
	ls := engine.NewLatencySink(1, 16)
	e := New(engine.Config{Joiners: 3, Window: w, Agg: agg.Sum}, ls)
	e.Start()
	e.Ingest(tuple.Tuple{TS: 10, Key: 1, Side: tuple.Probe, Val: 1})
	e.Ingest(tuple.Tuple{TS: 20, Key: 1, Side: tuple.Base, Seq: 0, Arrival: time.Now()})
	e.Drain()
	if ls.CDF().Quantile(0.5) <= 0 {
		t.Fatal("no latency recorded")
	}
}
