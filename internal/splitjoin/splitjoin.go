// Package splitjoin implements SplitJoin (Najafi, Sadoghi, Jacobsen —
// USENIX ATC'16) adapted to online-interval-join semantics, the third
// comparator in the paper's §V-D evaluation.
//
// SplitJoin replaces key partitioning with a top-down data-flow model:
// every incoming tuple is *broadcast* to all joiners ("split"); each joiner
// *stores* only its round-robin share of the probe stream but *processes*
// every base tuple against that local share, emitting a partial aggregate;
// a collection stage merges the per-joiner partials into the final result.
// As in the paper, the adaptation adds a relative-window predicate to every
// comparison so the semantics match OIJ.
//
// The model is perfectly balanced by construction (hence its good latency
// on skewed workloads) but pays for it with J-way tuple broadcast traffic
// and the all-joiners-process-all-tuples pattern, which the paper shows
// over-killing the balance benefit at small windows and high thread counts
// (Fig. 21) and with full-buffer scans under large lateness (Fig. 19).
package splitjoin

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/queue"
	"oij/internal/trace"
	"oij/internal/tuple"
	"oij/internal/watermark"
)

// partial is one joiner's contribution to one base tuple's aggregate.
type partial struct {
	baseSeq uint64
	baseTS  tuple.Time
	key     tuple.Key
	arrival time.Time
	st      agg.State
}

// Engine is the SplitJoin implementation of engine.Engine.
type Engine struct {
	cfg   engine.Config
	tr    *engine.Transport
	sink  engine.Sink
	lrec  engine.LatencyRecorder
	srec  engine.StageRecorder
	arec  engine.AllocRecorder
	stats *engine.Stats
	js    []*joiner

	// partials[i] carries joiner i's partial aggregates to the merger.
	partials []*queue.SPSC[partial]
	mergerWG sync.WaitGroup
}

// New builds a SplitJoin engine.
func New(cfg engine.Config, sink engine.Sink) *Engine {
	cfg = cfg.WithDefaults()
	if cfg.Instrument {
		cfg.TrackBusy = true
	}
	e := &Engine{cfg: cfg, tr: engine.NewTransport(cfg), sink: sink, stats: engine.NewStats(cfg.Joiners)}
	e.lrec, _ = sink.(engine.LatencyRecorder)
	e.srec, _ = sink.(engine.StageRecorder)
	e.arec, _ = sink.(engine.AllocRecorder)
	e.partials = make([]*queue.SPSC[partial], cfg.Joiners)
	for i := range e.partials {
		e.partials[i] = queue.NewSPSC[partial](cfg.QueueCap)
	}
	e.js = make([]*joiner, cfg.Joiners)
	for i := range e.js {
		e.js[i] = &joiner{e: e, id: i, buffers: make(map[tuple.Key][]tuple.Tuple), wm: watermark.MinTime, lastSweep: watermark.MinTime}
	}
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "splitjoin" }

// Start implements engine.Engine.
func (e *Engine) Start() {
	for i, j := range e.js {
		var busy *atomic.Int64
		if e.cfg.TrackBusy {
			busy = &e.stats.Busy[i]
		}
		e.tr.Go(i, engine.JoinerHooks{OnTuple: j.onTuple, OnWatermark: j.onWatermark, Busy: busy})
	}
	e.mergerWG.Add(1)
	go e.mergeLoop()
}

// Ingest implements engine.Engine: broadcast (the "split" step).
func (e *Engine) Ingest(t tuple.Tuple) {
	e.tr.Observe(t.TS)
	e.tr.Broadcast(t)
	e.stats.Extra["broadcast"] += int64(e.cfg.Joiners)
}

// Drain implements engine.Engine.
func (e *Engine) Drain() {
	e.tr.Finish()
	for _, q := range e.partials {
		q.Close()
	}
	e.mergerWG.Wait()
	var evicted int64
	for _, j := range e.js {
		evicted += j.evicted
	}
	e.stats.Evicted.Store(evicted)
	if e.cfg.Instrument {
		engine.FillOther(e.stats)
	}
}

// Stats implements engine.Engine.
func (e *Engine) Stats() *engine.Stats { return e.stats }

// Heartbeat implements engine.Engine.
func (e *Engine) Heartbeat() { e.tr.Heartbeat() }

// QueueDepths implements engine.Introspector.
func (e *Engine) QueueDepths() []int { return e.tr.QueueDepths() }

// Watermark implements engine.Introspector.
func (e *Engine) Watermark() tuple.Time { return e.tr.Watermark() }

// MaxEventTS implements engine.Introspector.
func (e *Engine) MaxEventTS() tuple.Time { return e.tr.MaxEventTS() }

// Stalls implements engine.Introspector.
func (e *Engine) Stalls() engine.StallSnapshot { return e.tr.Stalls() }

// mergeLoop is the collection stage: it gathers the J partial aggregates
// of every base tuple and emits the merged result.
type mergeSlot struct {
	st      agg.State
	got     int
	baseTS  tuple.Time
	key     tuple.Key
	arrival time.Time
}

func (e *Engine) mergeLoop() {
	defer e.mergerWG.Done()
	slots := make(map[uint64]*mergeSlot)
	open := len(e.partials)
	batch := make([]partial, 64)
	for open > 0 {
		progress := false
		for _, q := range e.partials {
			n := q.PopBatch(batch)
			if n == 0 {
				continue
			}
			progress = true
			for _, p := range batch[:n] {
				slot, ok := slots[p.baseSeq]
				if !ok {
					slot = &mergeSlot{st: agg.NewState(e.cfg.Agg), baseTS: p.baseTS, key: p.key, arrival: p.arrival}
					slots[p.baseSeq] = slot
					// The merge slot plus its collection-side state are
					// per-result allocations on the emit path.
					engine.CountStateAlloc(e.arec, trace.StageEmit)
				}
				slot.st.Merge(p.st)
				slot.got++
				if slot.got == e.cfg.Joiners {
					delete(slots, p.baseSeq)
					if e.srec != nil {
						// The merge completing is the moment the
						// result exists; stages accumulated by the
						// team (probe/aggregate) are summed across
						// joiners by Span.Add's atomics.
						e.srec.SpanFor(p.baseSeq).StampJoined()
					}
					e.stats.Results.Add(1)
					e.sink.Emit(0, tuple.Result{
						BaseTS:  slot.baseTS,
						Key:     slot.key,
						BaseSeq: p.baseSeq,
						Agg:     slot.st.Value(),
						Matches: slot.st.Count(),
					})
					if e.lrec != nil && !slot.arrival.IsZero() {
						e.lrec.Record(0, time.Since(slot.arrival))
					}
				}
			}
		}
		if !progress {
			open = 0
			for _, q := range e.partials {
				if !q.Closed() || q.Len() > 0 {
					open++
				}
			}
			runtime.Gosched()
		}
	}
}

// joiner is one SplitJoin worker: it stores its round-robin 1/J share of
// the probe stream in per-key arrival-order buffers and evaluates every
// base tuple against that local share.
type joiner struct {
	e  *Engine
	id int

	probeSeen uint64 // round-robin counter over the broadcast probe stream
	buffers   map[tuple.Key][]tuple.Tuple
	pending   engine.PendingHeap
	wm        tuple.Time
	lastSweep tuple.Time
	evicted   int64
	published int64 // evictions already mirrored into stats.Evicted
	scratch   []engine.TSVal
}

func (j *joiner) onTuple(t tuple.Tuple) {
	if t.Side == tuple.Probe {
		// Store step: only the round-robin owner keeps the tuple. All
		// joiners see the identical broadcast order, so ownership is
		// consistent without coordination.
		owner := j.probeSeen % uint64(j.e.cfg.Joiners)
		j.probeSeen++
		if owner != uint64(j.id) {
			return
		}
		j.e.stats.Processed[j.id].Add(1)
		buf := j.buffers[t.Key]
		before := cap(buf)
		buf = append(buf, t)
		j.buffers[t.Key] = buf
		engine.CountSliceGrowth(j.e.arec, trace.StageIngest, before, cap(buf), engine.TupleAllocBytes)
		return
	}
	j.e.stats.Processed[j.id].Add(1)
	if j.e.cfg.Mode == engine.OnWatermark {
		j.pending.Push(t)
		return
	}
	j.join(t)
}

func (j *joiner) onWatermark(wm tuple.Time) {
	// Equal watermarks are heartbeats: re-run finalization (the global
	// minimum may have advanced) but skip stale (smaller) values.
	if wm < j.wm {
		return
	}
	j.wm = wm
	if j.e.cfg.Mode == engine.OnWatermark {
		for {
			b, ok := j.pending.PopIfBefore(wm - j.e.cfg.Window.Fol)
			if !ok {
				break
			}
			j.join(b)
		}
	}
	horizon := j.e.cfg.Window.Len() + j.e.cfg.Window.Lateness
	if j.lastSweep == watermark.MinTime || wm-j.lastSweep > horizon/2+1 {
		j.lastSweep = wm
		bound := j.evictBound(wm)
		for k, buf := range j.buffers {
			keep := buf[:0]
			for _, t := range buf {
				if t.TS >= bound {
					keep = append(keep, t)
				} else {
					j.evicted++
				}
			}
			j.buffers[k] = keep
		}
	}
	// Mirror evictions into the shared counter at watermark cadence, so
	// the serving layer's memory guard reads live buffered state without a
	// per-tuple atomic on the join path.
	if d := j.evicted - j.published; d > 0 {
		j.published = j.evicted
		j.e.stats.Evicted.Add(d)
	}
}

func (j *joiner) evictBound(wm tuple.Time) tuple.Time {
	if wm == watermark.MinTime {
		return watermark.MinTime
	}
	b := wm - j.e.cfg.Window.Pre
	if j.e.cfg.Mode == engine.OnWatermark {
		b -= j.e.cfg.Window.Fol
	}
	return b
}

// join scans the local probe share with the added interval predicate and
// ships the partial aggregate to the merger.
func (j *joiner) join(base tuple.Tuple) {
	lo, hi := j.e.cfg.Window.Bounds(base.TS)
	buf := j.buffers[base.Key]
	st := agg.NewState(j.e.cfg.Agg)
	engine.CountStateAlloc(j.e.arec, trace.StageAggregate)

	var sp *trace.Span
	if j.e.srec != nil {
		sp = j.e.srec.SpanFor(base.Seq)
	}
	// Every joiner processes every base; the dispatch stamp's CAS keeps
	// the first joiner to arrive, and each member's probe/aggregate time
	// accumulates into the span (team-summed work, not wall time).
	sp.StampDispatched(j.id)

	if j.e.cfg.Instrument || sp != nil {
		t0 := time.Now()
		scratchCap := cap(j.scratch)
		j.scratch = j.scratch[:0]
		for _, t := range buf {
			if t.TS >= lo && t.TS <= hi {
				j.scratch = append(j.scratch, engine.TSVal{TS: t.TS, Val: t.Val})
			}
		}
		engine.CountSliceGrowth(j.e.arec, trace.StageProbe, scratchCap, cap(j.scratch), engine.TSValAllocBytes)
		t1 := time.Now()
		for _, p := range j.scratch {
			st.AddAt(p.TS, p.Val)
		}
		t2 := time.Now()
		if j.e.cfg.Instrument {
			bd := &j.e.stats.Breakdown[j.id]
			bd.Lookup += t1.Sub(t0)
			bd.Match += t2.Sub(t1)
			j.e.stats.Effect[j.id].Observe(int64(len(j.scratch)), int64(len(buf)))
		}
		sp.Add(trace.StageProbe, t1.Sub(t0))
		sp.Add(trace.StageAggregate, t2.Sub(t1))
	} else {
		for _, t := range buf {
			if t.TS >= lo && t.TS <= hi {
				st.AddAt(t.TS, t.Val)
			}
		}
	}

	p := partial{baseSeq: base.Seq, baseTS: base.TS, key: base.Key, arrival: base.Arrival, st: st}
	for !j.e.partials[j.id].TryPush(p) {
		runtime.Gosched()
	}
}
