// Package control is oijd's online feedback controller: a small rule
// engine that runs once per sampler epoch and retunes the serving stack
// against the live signals the observability layer already exports —
// joiner utilization and unbalancedness, ingest-funnel occupancy,
// watermark lag, the memory-pressure rung, and the windowed p99 request
// latency.
//
// The loop is signals → rules → actuators. Signals arrive as one
// immutable snapshot per epoch (built by the server's sampler), rules are
// pure threshold checks with hysteresis (a condition must hold for
// HoldEpochs consecutive epochs before an action fires, each actuator has
// a cooldown after acting, and relaxing requires a longer healthy streak
// than tightening required a sick one), and actuators are injected
// callbacks so the decision logic is table-testable without a server.
//
// Hysteresis rationale: every signal here is noisy at epoch granularity —
// utilization breathes with GC, p99 jumps on a single slow request — and
// an eager controller turns that noise into oscillation (scale up, scale
// down, scale up...), which is strictly worse than either steady state.
// Consecutive-epoch holds filter the noise, per-actuator cooldowns bound
// the slew rate, the asymmetric relax streak makes recovery deliberate
// ("fast to protect, slow to relax"), and a global decisions-per-minute
// budget is the backstop against any rule interaction storm.
//
// Every applied decision is recorded to the flight recorder as a
// ctl_decision event and kept in a bounded ring for /controlz, which also
// exposes a freeze switch (suppress all actions, keep observing) and
// manual overrides.
package control

import (
	"fmt"
	"sync"
	"time"

	"oij/internal/trace"
)

// Admission levels, ordered loosest to tightest. They mirror the server's
// admission policies; the controller only ever steps between adjacent
// levels.
const (
	AdmissionBlock  = 0 // backpressure: block the session reader
	AdmissionShed   = 1 // shed probe tuples, keep answering requests
	AdmissionReject = 2 // reject new requests outright
)

// AdmissionName renders an admission level ("block", "shed-probes",
// "reject") matching the server's policy names.
func AdmissionName(l int) string {
	switch l {
	case AdmissionShed:
		return "shed-probes"
	case AdmissionReject:
		return "reject"
	default:
		return "block"
	}
}

// Config tunes the controller.
type Config struct {
	// Enabled gates the whole loop; a zero Config is a disabled
	// controller.
	Enabled bool
	// MinJoiners/MaxJoiners bound the active joiner count the controller
	// may set (defaults 1 and the boot joiner count).
	MinJoiners int
	MaxJoiners int
	// UtilHigh: mean active-joiner utilization at or above this arms a
	// scale-up (default 0.85). UtilLow: at or below this (with a healthy
	// p99) arms a scale-down (default 0.25).
	UtilHigh float64
	UtilLow  float64
	// UnbalanceHigh arms the skew scale-up rule: one pegged joiner
	// (MaxUtil >= UtilHigh) plus unbalancedness at or above this means
	// more team members would help even though the mean looks fine
	// (default 0.5).
	UnbalanceHigh float64
	// QueueHighFrac arms a scale-up when the ingest funnel is this full
	// (default 0.5).
	QueueHighFrac float64
	// P99Target is the latency SLO the admission ladder defends; zero
	// disables the latency rules. P99HighFrac of it arms tightening
	// (default 0.9), P99LowFrac of it is the healthy bar for relaxing
	// and scaling down (default 0.5).
	P99Target   time.Duration
	P99HighFrac float64
	P99LowFrac  float64
	// HoldEpochs is how many consecutive epochs a tightening condition
	// must hold before the controller acts (default 3). RelaxEpochs is
	// the healthy streak required before relaxing anything (default 6).
	HoldEpochs  int
	RelaxEpochs int
	// CooldownEpochs is the minimum epochs between two actions on the
	// same actuator (default 5).
	CooldownEpochs int
	// MaxDecisionsPerMin is the global applied-decision budget; past it
	// the controller suppresses further actions until the window slides
	// (default 12).
	MaxDecisionsPerMin int
	// TracePressureFactor multiplies the boot 1-in-N trace sampling rate
	// while the system is under pressure, so sampled tracing gets
	// coarser exactly when its overhead matters (default 8).
	TracePressureFactor int
	// MemSoftPctTight is the soft memory-guard watermark (percent of the
	// hard cap at which probe shedding starts) applied under sustained
	// hard memory pressure, replacing the default until recovery
	// (default 50).
	MemSoftPctTight int
	// RingSize bounds the /controlz decision ring (default 128).
	RingSize int
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.MinJoiners <= 0 {
		c.MinJoiners = 1
	}
	if c.MaxJoiners <= 0 {
		c.MaxJoiners = c.MinJoiners
	}
	if c.MaxJoiners < c.MinJoiners {
		c.MaxJoiners = c.MinJoiners
	}
	if c.UtilHigh <= 0 {
		c.UtilHigh = 0.85
	}
	if c.UtilLow <= 0 {
		c.UtilLow = 0.25
	}
	if c.UnbalanceHigh <= 0 {
		c.UnbalanceHigh = 0.5
	}
	if c.QueueHighFrac <= 0 {
		c.QueueHighFrac = 0.5
	}
	if c.P99HighFrac <= 0 {
		c.P99HighFrac = 0.9
	}
	if c.P99LowFrac <= 0 {
		c.P99LowFrac = 0.5
	}
	if c.HoldEpochs <= 0 {
		c.HoldEpochs = 3
	}
	if c.RelaxEpochs <= 0 {
		c.RelaxEpochs = 2 * c.HoldEpochs
	}
	if c.CooldownEpochs <= 0 {
		c.CooldownEpochs = 5
	}
	if c.MaxDecisionsPerMin <= 0 {
		c.MaxDecisionsPerMin = 12
	}
	if c.TracePressureFactor <= 0 {
		c.TracePressureFactor = 8
	}
	if c.MemSoftPctTight <= 0 {
		c.MemSoftPctTight = 50
	}
	if c.RingSize <= 0 {
		c.RingSize = 128
	}
	return c
}

// Signals is one epoch's snapshot of the system, built by the sampler.
type Signals struct {
	// Epoch is the sampler epoch index.
	Epoch uint64
	// ActiveJoiners is the engine's current active joiner count.
	ActiveJoiners int
	// MeanUtil/MaxUtil are utilization over the *active* joiners, 0..1.
	MeanUtil float64
	MaxUtil  float64
	// Unbalancedness is Eq. 2 over the active joiners' workloads.
	Unbalancedness float64
	// QueueFrac is the ingest-funnel occupancy, 0..1.
	QueueFrac float64
	// WatermarkLagS is the live watermark lag in event-time seconds.
	WatermarkLagS float64
	// MemLevel is the memory guard rung (0 none, 1 soft, 2 hard).
	MemLevel int
	// P99 is the windowed p99 request latency (0 when no requests).
	P99 time.Duration
	// ShedRate is admission sheds per second over the window.
	ShedRate float64
}

// compact renders the signal vector for the decision log.
func (s Signals) compact() string {
	return fmt.Sprintf("util=%.2f max=%.2f unb=%.2f q=%.2f lag=%.1fs mem=%d p99=%s shed=%.1f/s",
		s.MeanUtil, s.MaxUtil, s.Unbalancedness, s.QueueFrac,
		s.WatermarkLagS, s.MemLevel, s.P99.Round(time.Millisecond), s.ShedRate)
}

// Actuators are the knobs the controller may turn. Each is optional —
// a nil actuator disables its rules (an engine without a Resize path
// simply never sees joiner decisions). All are invoked from the sampler
// goroutine (Step's caller) or the /controlz handler (Override).
type Actuators struct {
	// ResizeJoiners requests the engine's active joiner count become n;
	// false means the engine cannot resize and the controller stops
	// trying.
	ResizeJoiners func(n int) bool
	// SetAdmission applies an admission level (AdmissionBlock..Reject).
	SetAdmission func(level int)
	// SetTraceSample retunes the 1-in-N request-trace sampling rate.
	SetTraceSample func(n int)
	// SetMemSoftPct retunes the memory guard's soft watermark percent.
	SetMemSoftPct func(pct int)
}

// Boot is the serving stack's state at controller start — the values the
// controller treats as "home" and relaxes back toward.
type Boot struct {
	Joiners      int
	Admission    int
	TraceSampleN int
	MemSoftPct   int
}

// Rule identifiers, stable for the flight recorder's a-field.
const (
	ruleScaleUpUtil = iota + 1
	ruleScaleUpSkew
	ruleScaleUpQueue
	ruleScaleDown
	ruleTighten
	ruleRelax
	ruleTraceCoarsen
	ruleTraceRestore
	ruleMemTighten
	ruleMemRestore
	ruleManual
	ruleFreeze
)

var ruleNames = map[int]string{
	ruleScaleUpUtil:  "scale-up-util",
	ruleScaleUpSkew:  "scale-up-skew",
	ruleScaleUpQueue: "scale-up-queue",
	ruleScaleDown:    "scale-down",
	ruleTighten:      "admission-tighten",
	ruleRelax:        "admission-relax",
	ruleTraceCoarsen: "trace-coarsen",
	ruleTraceRestore: "trace-restore",
	ruleMemTighten:   "mem-soft-tighten",
	ruleMemRestore:   "mem-soft-restore",
	ruleManual:       "manual-override",
	ruleFreeze:       "freeze",
}

// Decision is one recorded controller action (or manual override).
type Decision struct {
	Seq      uint64 `json:"seq"`
	WallNS   int64  `json:"wall_ns"`
	Epoch    uint64 `json:"epoch"`
	Rule     string `json:"rule"`
	Actuator string `json:"actuator"`
	Old      int64  `json:"old"`
	New      int64  `json:"new"`
	OldName  string `json:"old_name,omitempty"`
	NewName  string `json:"new_name,omitempty"`
	Inputs   string `json:"inputs"`
}

// Controller owns the rule state. All mutable state is behind one mutex:
// Step runs at epoch cadence (1/s by default) and /controlz reads are
// rare, so there is nothing to shave.
type Controller struct {
	cfg Config
	act Actuators
	fr  *trace.Flight

	mu     sync.Mutex
	frozen bool

	// Current knob values (what the controller believes it has applied).
	joiners    int
	admission  int
	traceN     int
	memSoftPct int
	boot       Boot

	// resizeBroken latches when ResizeJoiners returns false: the engine
	// cannot resize, stop asking.
	resizeBroken bool

	// Hysteresis state: consecutive-epoch condition counters and the
	// epoch each actuator last acted.
	upHold, downHold       int
	tightHold, relaxHold   int
	memTightHold, memRelax int
	pressureHold           int
	lastJoiners, lastAdm   uint64 // epoch of last action; ^0 = never
	lastTrace, lastMem     uint64

	// Decision log and rate limiting.
	ring       []Decision
	next       int
	seq        uint64
	applied    uint64
	suppressed uint64
	recent     []int64 // wall ns of recent applied decisions (rate window)
}

// New builds a controller. boot seeds the knob values the controller
// relaxes back toward; fr may be nil (decisions still reach the ring).
func New(cfg Config, boot Boot, act Actuators, fr *trace.Flight) *Controller {
	cfg = cfg.WithDefaults()
	if cfg.MaxJoiners < boot.Joiners {
		cfg.MaxJoiners = boot.Joiners
	}
	if boot.MemSoftPct <= 0 {
		boot.MemSoftPct = 75
	}
	c := &Controller{
		cfg:        cfg,
		act:        act,
		fr:         fr,
		joiners:    boot.Joiners,
		admission:  boot.Admission,
		traceN:     boot.TraceSampleN,
		memSoftPct: boot.MemSoftPct,
		boot:       boot,
		ring:       make([]Decision, 0, cfg.RingSize),
	}
	c.lastJoiners, c.lastAdm = ^uint64(0), ^uint64(0)
	c.lastTrace, c.lastMem = ^uint64(0), ^uint64(0)
	return c
}

// Config returns the effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Frozen reports whether the controller is frozen (observing, not acting).
func (c *Controller) Frozen() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frozen
}

// SetFrozen flips the freeze switch. Freezing is itself an auditable
// event: it lands in the flight recorder and the decision ring.
func (c *Controller) SetFrozen(now time.Time, frozen bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.frozen == frozen {
		return
	}
	c.frozen = frozen
	from, to := int64(0), int64(1)
	if !frozen {
		from, to = 1, 0
	}
	c.record(now, 0, ruleFreeze, "freeze", from, to, "", "", "manual")
	var a uint64
	if frozen {
		a = 1
	}
	c.fr.Record(trace.CompControl, trace.EvCtlFreeze, a, 0)
}

// cooled reports whether the actuator last acting at last has sat out its
// cooldown by epoch.
func (c *Controller) cooled(epoch, last uint64) bool {
	return last == ^uint64(0) || epoch >= last+uint64(c.cfg.CooldownEpochs)
}

// budget reports whether the decisions-per-minute budget allows another
// action at now, pruning the slid-out window.
func (c *Controller) budget(now time.Time) bool {
	cut := now.Add(-time.Minute).UnixNano()
	keep := c.recent[:0]
	for _, t := range c.recent {
		if t > cut {
			keep = append(keep, t)
		}
	}
	c.recent = keep
	return len(c.recent) < c.cfg.MaxDecisionsPerMin
}

// record appends a decision to the ring and the flight recorder.
func (c *Controller) record(now time.Time, epoch uint64, ruleID int, actuator string, oldV, newV int64, oldName, newName, inputs string) {
	c.seq++
	d := Decision{
		Seq: c.seq, WallNS: now.UnixNano(), Epoch: epoch,
		Rule: ruleNames[ruleID], Actuator: actuator,
		Old: oldV, New: newV, OldName: oldName, NewName: newName,
		Inputs: inputs,
	}
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, d)
	} else {
		c.ring[c.next] = d
		c.next = (c.next + 1) % len(c.ring)
	}
	c.fr.Record(trace.CompControl, trace.EvCtlDecision,
		uint64(ruleID), uint64(uint32(oldV))<<32|uint64(uint32(newV)))
}

// apply runs one actuator change end to end: budget check, the actuator
// call, the decision log, rate accounting.
func (c *Controller) apply(now time.Time, sig Signals, ruleID int, actuator string, oldV, newV int64, oldName, newName string, fn func() bool) *Decision {
	if !c.budget(now) {
		c.suppressed++
		return nil
	}
	if fn != nil && !fn() {
		return nil
	}
	c.applied++
	c.recent = append(c.recent, now.UnixNano())
	c.record(now, sig.Epoch, ruleID, actuator, oldV, newV, oldName, newName, sig.compact())
	return &c.ring[(c.next+len(c.ring)-1)%len(c.ring)]
}

// Step evaluates every rule against one epoch's signals, applies what
// fired, and returns the applied decisions. Sampler goroutine only.
func (c *Controller) Step(now time.Time, sig Signals) []Decision {
	if c == nil || !c.cfg.Enabled {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.frozen {
		return nil
	}
	var out []Decision
	if d := c.stepJoiners(now, sig); d != nil {
		out = append(out, *d)
	}
	if d := c.stepAdmission(now, sig); d != nil {
		out = append(out, *d)
	}
	if d := c.stepTrace(now, sig); d != nil {
		out = append(out, *d)
	}
	if d := c.stepMem(now, sig); d != nil {
		out = append(out, *d)
	}
	return out
}

// p99Healthy reports whether the windowed p99 sits safely under the
// target (vacuously true with the latency rules disabled).
func (c *Controller) p99Healthy(sig Signals) bool {
	if c.cfg.P99Target <= 0 {
		return true
	}
	return float64(sig.P99) <= c.cfg.P99LowFrac*float64(c.cfg.P99Target)
}

// scaleUpWanted reports whether any scale-up condition holds, and which.
func (c *Controller) scaleUpWanted(sig Signals) (int, bool) {
	switch {
	case sig.MeanUtil >= c.cfg.UtilHigh:
		return ruleScaleUpUtil, true
	case sig.QueueFrac >= c.cfg.QueueHighFrac:
		return ruleScaleUpQueue, true
	case sig.MaxUtil >= c.cfg.UtilHigh && sig.Unbalancedness >= c.cfg.UnbalanceHigh:
		return ruleScaleUpSkew, true
	}
	return 0, false
}

func (c *Controller) stepJoiners(now time.Time, sig Signals) *Decision {
	if c.act.ResizeJoiners == nil || c.resizeBroken {
		return nil
	}
	upRule, up := c.scaleUpWanted(sig)
	down := sig.MeanUtil <= c.cfg.UtilLow && sig.QueueFrac < c.cfg.QueueHighFrac &&
		c.p99Healthy(sig) && sig.MemLevel == 0
	switch {
	case up:
		c.upHold++
		c.downHold = 0
	case down:
		c.downHold++
		c.upHold = 0
	default:
		c.upHold, c.downHold = 0, 0
	}
	if up && c.upHold >= c.cfg.HoldEpochs && c.joiners < c.cfg.MaxJoiners &&
		c.cooled(sig.Epoch, c.lastJoiners) {
		return c.resizeTo(now, sig, upRule, c.joiners+1)
	}
	if down && c.downHold >= c.cfg.RelaxEpochs && c.joiners > c.cfg.MinJoiners &&
		c.cooled(sig.Epoch, c.lastJoiners) {
		return c.resizeTo(now, sig, ruleScaleDown, c.joiners-1)
	}
	return nil
}

// resizeTo applies one joiner-count step.
func (c *Controller) resizeTo(now time.Time, sig Signals, ruleID, n int) *Decision {
	old := c.joiners
	d := c.apply(now, sig, ruleID, "joiners", int64(old), int64(n), "", "", func() bool {
		if !c.act.ResizeJoiners(n) {
			c.resizeBroken = true
			return false
		}
		return true
	})
	if d != nil {
		c.joiners = n
		c.lastJoiners = sig.Epoch
		c.upHold, c.downHold = 0, 0
	}
	return d
}

func (c *Controller) stepAdmission(now time.Time, sig Signals) *Decision {
	if c.act.SetAdmission == nil {
		return nil
	}
	burning := sig.MemLevel >= 2
	if c.cfg.P99Target > 0 && sig.P99 > 0 &&
		float64(sig.P99) >= c.cfg.P99HighFrac*float64(c.cfg.P99Target) {
		burning = true
	}
	healthy := sig.MemLevel == 0 && c.p99Healthy(sig)
	switch {
	case burning:
		c.tightHold++
		c.relaxHold = 0
	case healthy:
		c.relaxHold++
		c.tightHold = 0
	default:
		c.tightHold, c.relaxHold = 0, 0
	}
	if burning && c.tightHold >= c.cfg.HoldEpochs && c.admission < AdmissionReject &&
		c.cooled(sig.Epoch, c.lastAdm) {
		return c.admitTo(now, sig, ruleTighten, c.admission+1)
	}
	if healthy && c.relaxHold >= c.cfg.RelaxEpochs && c.admission > c.boot.Admission &&
		c.cooled(sig.Epoch, c.lastAdm) {
		return c.admitTo(now, sig, ruleRelax, c.admission-1)
	}
	return nil
}

// admitTo applies one admission-level step.
func (c *Controller) admitTo(now time.Time, sig Signals, ruleID, level int) *Decision {
	old := c.admission
	d := c.apply(now, sig, ruleID, "admission", int64(old), int64(level),
		AdmissionName(old), AdmissionName(level), func() bool {
			c.act.SetAdmission(level)
			return true
		})
	if d != nil {
		c.admission = level
		c.lastAdm = sig.Epoch
		c.tightHold, c.relaxHold = 0, 0
	}
	return d
}

// underPressure reports whether the stack is visibly stressed — the gate
// for coarsening trace sampling.
func (c *Controller) underPressure(sig Signals) bool {
	return c.admission > c.boot.Admission || sig.MemLevel >= 1
}

func (c *Controller) stepTrace(now time.Time, sig Signals) *Decision {
	if c.act.SetTraceSample == nil || c.boot.TraceSampleN <= 0 {
		return nil
	}
	if c.underPressure(sig) {
		c.pressureHold++
	} else {
		c.pressureHold = 0
	}
	coarse := c.boot.TraceSampleN * c.cfg.TracePressureFactor
	if c.pressureHold >= c.cfg.HoldEpochs && c.traceN == c.boot.TraceSampleN &&
		c.cooled(sig.Epoch, c.lastTrace) {
		d := c.apply(now, sig, ruleTraceCoarsen, "trace_sample_n",
			int64(c.traceN), int64(coarse), "", "", func() bool {
				c.act.SetTraceSample(coarse)
				return true
			})
		if d != nil {
			c.traceN = coarse
			c.lastTrace = sig.Epoch
		}
		return d
	}
	if !c.underPressure(sig) && sig.MemLevel == 0 && c.traceN != c.boot.TraceSampleN &&
		c.relaxHold >= c.cfg.RelaxEpochs && c.cooled(sig.Epoch, c.lastTrace) {
		d := c.apply(now, sig, ruleTraceRestore, "trace_sample_n",
			int64(c.traceN), int64(c.boot.TraceSampleN), "", "", func() bool {
				c.act.SetTraceSample(c.boot.TraceSampleN)
				return true
			})
		if d != nil {
			c.traceN = c.boot.TraceSampleN
			c.lastTrace = sig.Epoch
		}
		return d
	}
	return nil
}

func (c *Controller) stepMem(now time.Time, sig Signals) *Decision {
	if c.act.SetMemSoftPct == nil {
		return nil
	}
	if sig.MemLevel >= 2 {
		c.memTightHold++
		c.memRelax = 0
	} else if sig.MemLevel == 0 {
		c.memRelax++
		c.memTightHold = 0
	} else {
		c.memTightHold, c.memRelax = 0, 0
	}
	if c.memTightHold >= c.cfg.HoldEpochs && c.memSoftPct != c.cfg.MemSoftPctTight &&
		c.cooled(sig.Epoch, c.lastMem) {
		d := c.apply(now, sig, ruleMemTighten, "mem_soft_pct",
			int64(c.memSoftPct), int64(c.cfg.MemSoftPctTight), "", "", func() bool {
				c.act.SetMemSoftPct(c.cfg.MemSoftPctTight)
				return true
			})
		if d != nil {
			c.memSoftPct = c.cfg.MemSoftPctTight
			c.lastMem = sig.Epoch
		}
		return d
	}
	if c.memRelax >= c.cfg.RelaxEpochs && c.memSoftPct != c.boot.MemSoftPct &&
		c.cooled(sig.Epoch, c.lastMem) {
		d := c.apply(now, sig, ruleMemRestore, "mem_soft_pct",
			int64(c.memSoftPct), int64(c.boot.MemSoftPct), "", "", func() bool {
				c.act.SetMemSoftPct(c.boot.MemSoftPct)
				return true
			})
		if d != nil {
			c.memSoftPct = c.boot.MemSoftPct
			c.lastMem = sig.Epoch
		}
		return d
	}
	return nil
}

// Override applies a manual actuator change from /controlz, bypassing
// rules, holds, and the freeze switch (a frozen controller is exactly the
// state where an operator drives by hand). Returns the recorded decision
// or an error for unknown actuators/values.
func (c *Controller) Override(now time.Time, actuator string, value int) (Decision, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var zero Decision
	switch actuator {
	case "joiners":
		if c.act.ResizeJoiners == nil {
			return zero, fmt.Errorf("control: engine does not support resize")
		}
		if value < 1 {
			return zero, fmt.Errorf("control: joiners must be >= 1")
		}
		old := c.joiners
		if !c.act.ResizeJoiners(value) {
			return zero, fmt.Errorf("control: engine refused resize")
		}
		c.joiners = value
		c.record(now, 0, ruleManual, actuator, int64(old), int64(value), "", "", "manual")
		return c.lastDecision(), nil
	case "admission":
		if c.act.SetAdmission == nil {
			return zero, fmt.Errorf("control: admission actuator unavailable")
		}
		if value < AdmissionBlock || value > AdmissionReject {
			return zero, fmt.Errorf("control: admission level out of range")
		}
		old := c.admission
		c.act.SetAdmission(value)
		c.admission = value
		c.record(now, 0, ruleManual, actuator, int64(old), int64(value),
			AdmissionName(old), AdmissionName(value), "manual")
		return c.lastDecision(), nil
	case "trace_sample_n":
		if c.act.SetTraceSample == nil {
			return zero, fmt.Errorf("control: trace actuator unavailable")
		}
		if value < 0 {
			return zero, fmt.Errorf("control: trace_sample_n must be >= 0")
		}
		old := c.traceN
		c.act.SetTraceSample(value)
		c.traceN = value
		c.record(now, 0, ruleManual, actuator, int64(old), int64(value), "", "", "manual")
		return c.lastDecision(), nil
	case "mem_soft_pct":
		if c.act.SetMemSoftPct == nil {
			return zero, fmt.Errorf("control: mem actuator unavailable")
		}
		if value < 1 || value > 100 {
			return zero, fmt.Errorf("control: mem_soft_pct must be in [1,100]")
		}
		old := c.memSoftPct
		c.act.SetMemSoftPct(value)
		c.memSoftPct = value
		c.record(now, 0, ruleManual, actuator, int64(old), int64(value), "", "", "manual")
		return c.lastDecision(), nil
	}
	return zero, fmt.Errorf("control: unknown actuator %q", actuator)
}

// lastDecision returns the newest ring entry. Caller holds mu and has
// recorded at least once.
func (c *Controller) lastDecision() Decision {
	return c.ring[(c.next+len(c.ring)-1)%len(c.ring)]
}

// Snapshot is the /controlz document.
type Snapshot struct {
	Enabled    bool       `json:"enabled"`
	Frozen     bool       `json:"frozen"`
	Joiners    int        `json:"joiners"`
	Admission  string     `json:"admission"`
	TraceN     int        `json:"trace_sample_n"`
	MemSoftPct int        `json:"mem_soft_pct"`
	Boot       BootSnap   `json:"boot"`
	Policy     PolicySnap `json:"policy"`
	Applied    uint64     `json:"applied_decisions"`
	Suppressed uint64     `json:"suppressed_decisions"`
	Decisions  []Decision `json:"decisions"`
}

// BootSnap renders the boot ("home") knob values.
type BootSnap struct {
	Joiners    int    `json:"joiners"`
	Admission  string `json:"admission"`
	TraceN     int    `json:"trace_sample_n"`
	MemSoftPct int    `json:"mem_soft_pct"`
}

// PolicySnap renders the effective policy bands.
type PolicySnap struct {
	MinJoiners         int     `json:"min_joiners"`
	MaxJoiners         int     `json:"max_joiners"`
	UtilHigh           float64 `json:"util_high"`
	UtilLow            float64 `json:"util_low"`
	UnbalanceHigh      float64 `json:"unbalance_high"`
	QueueHighFrac      float64 `json:"queue_high_frac"`
	P99TargetMS        float64 `json:"p99_target_ms"`
	HoldEpochs         int     `json:"hold_epochs"`
	RelaxEpochs        int     `json:"relax_epochs"`
	CooldownEpochs     int     `json:"cooldown_epochs"`
	MaxDecisionsPerMin int     `json:"max_decisions_per_min"`
}

// Snapshot renders the controller for /controlz, newest decision first.
func (c *Controller) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{Decisions: []Decision{}}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		Enabled:    c.cfg.Enabled,
		Frozen:     c.frozen,
		Joiners:    c.joiners,
		Admission:  AdmissionName(c.admission),
		TraceN:     c.traceN,
		MemSoftPct: c.memSoftPct,
		Boot: BootSnap{
			Joiners: c.boot.Joiners, Admission: AdmissionName(c.boot.Admission),
			TraceN: c.boot.TraceSampleN, MemSoftPct: c.boot.MemSoftPct,
		},
		Policy: PolicySnap{
			MinJoiners: c.cfg.MinJoiners, MaxJoiners: c.cfg.MaxJoiners,
			UtilHigh: c.cfg.UtilHigh, UtilLow: c.cfg.UtilLow,
			UnbalanceHigh: c.cfg.UnbalanceHigh, QueueHighFrac: c.cfg.QueueHighFrac,
			P99TargetMS:        float64(c.cfg.P99Target) / float64(time.Millisecond),
			HoldEpochs:         c.cfg.HoldEpochs,
			RelaxEpochs:        c.cfg.RelaxEpochs,
			CooldownEpochs:     c.cfg.CooldownEpochs,
			MaxDecisionsPerMin: c.cfg.MaxDecisionsPerMin,
		},
		Applied:    c.applied,
		Suppressed: c.suppressed,
		Decisions:  []Decision{},
	}
	// Newest first.
	n := len(c.ring)
	for i := 0; i < n; i++ {
		s.Decisions = append(s.Decisions, c.ring[(c.next+n-1-i)%n])
	}
	return s
}

// Applied returns the number of applied decisions so far.
func (c *Controller) Applied() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applied
}
