package control

import (
	"strings"
	"testing"
	"time"

	"oij/internal/trace"
)

// fakeActs records every actuator invocation so tests can assert exactly
// what the controller did.
type fakeActs struct {
	resizes    []int
	admissions []int
	traceNs    []int
	memPcts    []int
	refuse     bool
}

func (f *fakeActs) actuators() Actuators {
	return Actuators{
		ResizeJoiners: func(n int) bool {
			if f.refuse {
				return false
			}
			f.resizes = append(f.resizes, n)
			return true
		},
		SetAdmission:   func(l int) { f.admissions = append(f.admissions, l) },
		SetTraceSample: func(n int) { f.traceNs = append(f.traceNs, n) },
		SetMemSoftPct:  func(p int) { f.memPcts = append(f.memPcts, p) },
	}
}

// testCfg is a small, fast policy: hold 2, relax 3, cooldown 2, so the
// tables stay readable.
func testCfg() Config {
	return Config{
		Enabled:            true,
		MinJoiners:         1,
		MaxJoiners:         4,
		P99Target:          100 * time.Millisecond,
		HoldEpochs:         2,
		RelaxEpochs:        3,
		CooldownEpochs:     2,
		MaxDecisionsPerMin: 100,
	}
}

func testBoot() Boot {
	return Boot{Joiners: 2, Admission: AdmissionBlock, TraceSampleN: 100, MemSoftPct: 75}
}

// drive feeds the signal vectors one per epoch (1s apart) and returns
// every applied decision in order.
func drive(t *testing.T, c *Controller, sigs []Signals) []Decision {
	t.Helper()
	var out []Decision
	now := time.Unix(1000, 0)
	for i, s := range sigs {
		s.Epoch = uint64(i + 1)
		out = append(out, c.Step(now.Add(time.Duration(i)*time.Second), s)...)
	}
	return out
}

// repeat builds n copies of one signal vector.
func repeat(s Signals, n int) []Signals {
	out := make([]Signals, n)
	for i := range out {
		out[i] = s
	}
	return out
}

var (
	idle      = Signals{ActiveJoiners: 2, MeanUtil: 0.10, P99: 10 * time.Millisecond}
	saturated = Signals{ActiveJoiners: 2, MeanUtil: 0.95, MaxUtil: 0.99, P99: 40 * time.Millisecond}
	skewed    = Signals{ActiveJoiners: 2, MeanUtil: 0.50, MaxUtil: 0.97, Unbalancedness: 0.9, P99: 40 * time.Millisecond}
	queued    = Signals{ActiveJoiners: 2, MeanUtil: 0.60, QueueFrac: 0.8, P99: 40 * time.Millisecond}
	burning   = Signals{ActiveJoiners: 2, MeanUtil: 0.60, P99: 95 * time.Millisecond}
	healthy   = Signals{ActiveJoiners: 2, MeanUtil: 0.40, P99: 20 * time.Millisecond}
	memHard   = Signals{ActiveJoiners: 2, MeanUtil: 0.40, MemLevel: 2, P99: 30 * time.Millisecond}
)

func TestDecisionRules(t *testing.T) {
	cases := []struct {
		name string
		sigs []Signals
		// wantRules are the expected applied rules in order (prefix
		// match against the full decision stream).
		wantRules []string
		// wantResizes / wantAdmissions assert the actuator call streams.
		wantResizes    []int
		wantAdmissions []int
	}{
		{
			name:        "saturated scales up after hold",
			sigs:        repeat(saturated, 3),
			wantRules:   []string{"scale-up-util"},
			wantResizes: []int{3},
		},
		{
			name:      "one hot epoch is not enough",
			sigs:      append(repeat(saturated, 1), repeat(healthy, 4)...),
			wantRules: nil,
		},
		{
			name:        "skew scales up even at moderate mean util",
			sigs:        repeat(skewed, 3),
			wantRules:   []string{"scale-up-skew"},
			wantResizes: []int{3},
		},
		{
			name:        "full funnel scales up",
			sigs:        repeat(queued, 3),
			wantRules:   []string{"scale-up-queue"},
			wantResizes: []int{3},
		},
		{
			name:        "sustained saturation keeps scaling to the cap, cooldown-paced",
			sigs:        repeat(saturated, 20),
			wantRules:   []string{"scale-up-util", "scale-up-util"},
			wantResizes: []int{3, 4},
		},
		{
			name:        "idle scales down only after the longer relax streak",
			sigs:        repeat(idle, 4),
			wantRules:   []string{"scale-down"},
			wantResizes: []int{1},
		},
		{
			name:           "p99 burn tightens admission, then keeps stepping",
			sigs:           repeat(burning, 12),
			wantRules:      []string{"admission-tighten", "trace-coarsen", "admission-tighten"},
			wantAdmissions: []int{AdmissionShed, AdmissionReject},
		},
		{
			name:           "hard memory pressure tightens admission too",
			sigs:           repeat(memHard, 3),
			wantRules:      []string{"admission-tighten", "trace-coarsen", "mem-soft-tighten"},
			wantAdmissions: []int{AdmissionShed},
		},
		{
			name: "recovery relaxes back to boot with hysteresis",
			sigs: append(repeat(burning, 3), repeat(healthy, 12)...),
			wantRules: []string{
				"admission-tighten", "trace-coarsen", "admission-relax", "trace-restore",
			},
			wantAdmissions: []int{AdmissionShed, AdmissionBlock},
		},
		{
			name: "oscillating signals never fire",
			sigs: []Signals{
				saturated, idle, saturated, idle, saturated, idle,
				saturated, idle, saturated, idle, saturated, idle,
			},
			wantRules: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			acts := &fakeActs{}
			c := New(testCfg(), testBoot(), acts.actuators(), nil)
			got := drive(t, c, tc.sigs)
			var rules []string
			for _, d := range got {
				rules = append(rules, d.Rule)
			}
			if len(rules) < len(tc.wantRules) {
				t.Fatalf("rules = %v, want prefix %v", rules, tc.wantRules)
			}
			for i, w := range tc.wantRules {
				if rules[i] != w {
					t.Fatalf("rules = %v, want prefix %v", rules, tc.wantRules)
				}
			}
			if tc.wantRules == nil && len(rules) != 0 {
				t.Fatalf("expected no decisions, got %v", rules)
			}
			if tc.wantResizes != nil && !equalInts(acts.resizes, tc.wantResizes) {
				t.Fatalf("resizes = %v, want %v", acts.resizes, tc.wantResizes)
			}
			if tc.wantAdmissions != nil && !equalInts(acts.admissions, tc.wantAdmissions) {
				t.Fatalf("admissions = %v, want %v", acts.admissions, tc.wantAdmissions)
			}
		})
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDecisionCarriesInputsAndValues(t *testing.T) {
	acts := &fakeActs{}
	c := New(testCfg(), testBoot(), acts.actuators(), nil)
	ds := drive(t, c, repeat(saturated, 3))
	if len(ds) == 0 {
		t.Fatal("no decision")
	}
	d := ds[0]
	if d.Actuator != "joiners" || d.Old != 2 || d.New != 3 {
		t.Fatalf("decision = %+v, want joiners 2->3", d)
	}
	if !strings.Contains(d.Inputs, "util=0.95") {
		t.Fatalf("inputs %q missing signal vector", d.Inputs)
	}
	if d.Epoch == 0 || d.WallNS == 0 {
		t.Fatalf("decision missing provenance: %+v", d)
	}
}

func TestFreezeSuppressesAllActions(t *testing.T) {
	acts := &fakeActs{}
	c := New(testCfg(), testBoot(), acts.actuators(), nil)
	c.SetFrozen(time.Unix(999, 0), true)
	// Signals that would otherwise trip every rule.
	mix := append(repeat(saturated, 5), repeat(burning, 8)...)
	mix = append(mix, repeat(memHard, 8)...)
	if got := drive(t, c, mix); len(got) != 0 {
		t.Fatalf("frozen controller acted: %v", got)
	}
	if len(acts.resizes)+len(acts.admissions)+len(acts.traceNs)+len(acts.memPcts) != 0 {
		t.Fatal("frozen controller touched actuators")
	}
	if !c.Frozen() {
		t.Fatal("Frozen() = false")
	}
	// Unfreeze: the same pressure now acts.
	c.SetFrozen(time.Unix(1200, 0), false)
	if got := drive(t, c, repeat(saturated, 3)); len(got) == 0 {
		t.Fatal("unfrozen controller still suppressed")
	}
	// The freeze/unfreeze flips are themselves in the decision log.
	snap := c.Snapshot()
	var freezes int
	for _, d := range snap.Decisions {
		if d.Rule == "freeze" {
			freezes++
		}
	}
	if freezes != 2 {
		t.Fatalf("freeze decisions = %d, want 2", freezes)
	}
}

func TestOverrideAppliesAndRecords(t *testing.T) {
	acts := &fakeActs{}
	c := New(testCfg(), testBoot(), acts.actuators(), nil)
	c.SetFrozen(time.Unix(999, 0), true) // overrides work while frozen
	d, err := c.Override(time.Unix(1000, 0), "joiners", 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rule != "manual-override" || d.New != 4 {
		t.Fatalf("override decision = %+v", d)
	}
	if !equalInts(acts.resizes, []int{4}) {
		t.Fatalf("resizes = %v", acts.resizes)
	}
	if _, err := c.Override(time.Unix(1001, 0), "admission", AdmissionReject); err != nil {
		t.Fatal(err)
	}
	if snap := c.Snapshot(); snap.Admission != "reject" || snap.Joiners != 4 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if _, err := c.Override(time.Unix(1002, 0), "bogus", 1); err == nil {
		t.Fatal("unknown actuator accepted")
	}
	if _, err := c.Override(time.Unix(1003, 0), "admission", 9); err == nil {
		t.Fatal("out-of-range admission accepted")
	}
}

func TestDecisionRateBounded(t *testing.T) {
	cfg := testCfg()
	cfg.HoldEpochs = 1
	cfg.CooldownEpochs = 1
	cfg.MaxDecisionsPerMin = 2
	cfg.MaxJoiners = 64
	acts := &fakeActs{}
	c := New(cfg, testBoot(), acts.actuators(), nil)
	got := drive(t, c, repeat(saturated, 30))
	if len(got) > 2 {
		t.Fatalf("%d decisions within a minute, budget 2", len(got))
	}
	snap := c.Snapshot()
	if snap.Suppressed == 0 {
		t.Fatal("no suppressions recorded despite exhausted budget")
	}
}

func TestResizeRefusalLatches(t *testing.T) {
	acts := &fakeActs{refuse: true}
	c := New(testCfg(), testBoot(), acts.actuators(), nil)
	if got := drive(t, c, repeat(saturated, 10)); len(got) != 0 {
		t.Fatalf("decisions against a non-resizable engine: %v", got)
	}
}

func TestTraceCoarsensUnderPressureAndRestores(t *testing.T) {
	acts := &fakeActs{}
	c := New(testCfg(), testBoot(), acts.actuators(), nil)
	// Burn p99 long enough to tighten admission (pressure), then recover.
	sigs := append(repeat(burning, 4), repeat(healthy, 14)...)
	drive(t, c, sigs)
	if len(acts.traceNs) < 2 {
		t.Fatalf("trace actuator calls = %v, want coarsen then restore", acts.traceNs)
	}
	if acts.traceNs[0] != 800 {
		t.Fatalf("coarsened to %d, want 8x boot (800)", acts.traceNs[0])
	}
	if acts.traceNs[len(acts.traceNs)-1] != 100 {
		t.Fatalf("restored to %d, want boot 100", acts.traceNs[len(acts.traceNs)-1])
	}
}

func TestMemSoftWatermarkTightensAndRestores(t *testing.T) {
	acts := &fakeActs{}
	c := New(testCfg(), testBoot(), acts.actuators(), nil)
	sigs := append(repeat(memHard, 4), repeat(healthy, 14)...)
	drive(t, c, sigs)
	if len(acts.memPcts) < 2 {
		t.Fatalf("mem actuator calls = %v, want tighten then restore", acts.memPcts)
	}
	if acts.memPcts[0] != 50 || acts.memPcts[len(acts.memPcts)-1] != 75 {
		t.Fatalf("mem soft pct calls = %v, want 50 then 75", acts.memPcts)
	}
}

func TestEveryDecisionReachesFlightRecorder(t *testing.T) {
	fr := trace.NewFlight(64, "")
	acts := &fakeActs{}
	c := New(testCfg(), testBoot(), acts.actuators(), fr)
	ds := drive(t, c, append(repeat(saturated, 3), repeat(burning, 3)...))
	if len(ds) == 0 {
		t.Fatal("no decisions")
	}
	var ctl int
	for _, ev := range fr.Snapshot() {
		if ev.Component == "control" && ev.Kind == "ctl_decision" {
			ctl++
		}
	}
	if ctl != len(ds) {
		t.Fatalf("flight recorder has %d ctl_decision events, want %d", ctl, len(ds))
	}
}

func TestDisabledAndNilControllerAreInert(t *testing.T) {
	var nilC *Controller
	if got := nilC.Step(time.Now(), saturated); got != nil {
		t.Fatal("nil controller acted")
	}
	acts := &fakeActs{}
	cfg := testCfg()
	cfg.Enabled = false
	c := New(cfg, testBoot(), acts.actuators(), nil)
	if got := drive(t, c, repeat(saturated, 10)); len(got) != 0 {
		t.Fatal("disabled controller acted")
	}
}
