package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("Throughput = %g", got)
	}
	if got := Throughput(500, 250*time.Millisecond); got != 2000 {
		t.Fatalf("Throughput = %g", got)
	}
	if got := Throughput(10, 0); got != 0 {
		t.Fatalf("zero-elapsed throughput = %g", got)
	}
}

func TestEffectiveness(t *testing.T) {
	var e Effectiveness
	if e.Value() != 1 {
		t.Fatal("no joins should be fully effective")
	}
	e.Observe(5, 10)  // 0.5
	e.Observe(10, 10) // 1.0
	e.Observe(0, 0)   // empty visit counts as 1.0
	if got := e.Value(); math.Abs(got-(0.5+1+1)/3) > 1e-12 {
		t.Fatalf("effectiveness = %g", got)
	}
	var o Effectiveness
	o.Observe(0, 10) // 0.0
	e.Merge(&o)
	if got := e.Value(); math.Abs(got-(0.5+1+1+0)/4) > 1e-12 {
		t.Fatalf("merged effectiveness = %g", got)
	}
}

func TestUnbalancedness(t *testing.T) {
	if got := Unbalancedness(nil); got != 0 {
		t.Fatalf("empty = %g", got)
	}
	if got := Unbalancedness([]float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("balanced = %g", got)
	}
	if got := Unbalancedness([]float64{0, 0, 0, 0}); got != 0 {
		t.Fatalf("all-zero = %g", got)
	}
	// One joiner does all the work of 4: stddev/mu = sqrt(3).
	got := Unbalancedness([]float64{4, 0, 0, 0})
	if math.Abs(got-math.Sqrt(3)) > 1e-12 {
		t.Fatalf("skewed = %g, want sqrt(3)", got)
	}
	// Skew ranks correctly.
	if Unbalancedness([]float64{3, 1, 1, 1}) >= Unbalancedness([]float64{4, 0, 0, 0}) {
		t.Fatal("milder skew not ranked lower")
	}
}

func TestCDF(t *testing.T) {
	r1 := NewLatencyRecorder(8)
	r2 := NewLatencyRecorder(8)
	for i := 1; i <= 50; i++ {
		r1.Record(time.Duration(i) * time.Millisecond)
	}
	for i := 51; i <= 100; i++ {
		r2.Record(time.Duration(i) * time.Millisecond)
	}
	c := MergeCDF(r1, r2)
	if len(c.Sorted) != 100 {
		t.Fatalf("merged %d samples", len(c.Sorted))
	}
	if got := c.Quantile(0); got != time.Millisecond {
		t.Fatalf("p0 = %v", got)
	}
	if got := c.Quantile(1); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if got := c.Quantile(0.5); got < 49*time.Millisecond || got > 52*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := c.FractionBelow(20 * time.Millisecond); got != 0.2 {
		t.Fatalf("FractionBelow(20ms) = %g", got)
	}
	if got := c.FractionBelow(time.Hour); got != 1 {
		t.Fatalf("FractionBelow(1h) = %g", got)
	}
	pts := c.Series([]float64{0.5, 0.99})
	if len(pts) != 2 || pts[0].Q != 0.5 {
		t.Fatalf("Series = %+v", pts)
	}
}

// TestQuantileNearestRank is the regression test for the index-truncation
// bug: int(q*(len-1)) floored, so p99 of 1..100 returned 99 instead of
// 100 and high quantiles of small sample sets biased low.
func TestQuantileNearestRank(t *testing.T) {
	r := NewLatencyRecorder(100)
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	c := MergeCDF(r)
	if got := c.Quantile(0.99); got != 99*time.Millisecond {
		t.Fatalf("p99 of 1..100 = %v, want 99ms (nearest rank 99)", got)
	}
	if got := c.Quantile(0.999); got != 100*time.Millisecond {
		t.Fatalf("p99.9 of 1..100 = %v, want 100ms", got)
	}
	// The small-set case the truncation bug got most wrong: with 4
	// samples, p75 must be the 3rd value (ceil(0.75*4) = 3), and p99 the
	// maximum — the floor formula returned index int(0.99*3) = 2.
	small := CDF{Sorted: []int64{10, 20, 30, 40}}
	if got := small.Quantile(0.75); got != 30 {
		t.Fatalf("p75 of 4 samples = %v, want 30", got)
	}
	if got := small.Quantile(0.99); got != 40 {
		t.Fatalf("p99 of 4 samples = %v, want the maximum 40", got)
	}
	if got := small.Quantile(0.25); got != 10 {
		t.Fatalf("p25 of 4 samples = %v, want 10", got)
	}
	one := CDF{Sorted: []int64{7}}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := one.Quantile(q); got != 7 {
			t.Fatalf("single-sample q=%g = %v", q, got)
		}
	}
}

// TestReservoirRecorder covers the long-running-server fix: the buffer
// never exceeds its cap, sampling is deterministic under a fixed seed, and
// retained samples stay representative.
func TestReservoirRecorder(t *testing.T) {
	const max = 1000
	r := NewReservoirRecorder(max, 12345)
	const n = 100000
	for i := 1; i <= n; i++ {
		r.Record(time.Duration(i))
	}
	if r.Len() != max {
		t.Fatalf("retained %d samples, cap %d", r.Len(), max)
	}
	if r.Seen() != n {
		t.Fatalf("seen %d, want %d", r.Seen(), n)
	}

	// Determinism: an identical run retains identical samples.
	r2 := NewReservoirRecorder(max, 12345)
	for i := 1; i <= n; i++ {
		r2.Record(time.Duration(i))
	}
	a, b := MergeCDF(r), MergeCDF(r2)
	for i := range a.Sorted {
		if a.Sorted[i] != b.Sorted[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a.Sorted[i], b.Sorted[i])
		}
	}
	// A different seed retains a different subset.
	r3 := NewReservoirRecorder(max, 999)
	for i := 1; i <= n; i++ {
		r3.Record(time.Duration(i))
	}
	c3 := MergeCDF(r3)
	same := true
	for i := range a.Sorted {
		if a.Sorted[i] != c3.Sorted[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds retained identical reservoirs")
	}

	// Representativeness: the median of a uniform 1..n stream should land
	// near n/2 (reservoir sampling is unbiased; allow a generous band).
	med := int64(a.Quantile(0.5))
	if med < n/2-n/10 || med > n/2+n/10 {
		t.Fatalf("reservoir median %d too far from %d", med, n/2)
	}

	// Below the cap the recorder retains everything.
	small := NewReservoirRecorder(max, 1)
	for i := 0; i < 10; i++ {
		small.Record(time.Duration(i))
	}
	if small.Len() != 10 || small.Seen() != 10 {
		t.Fatalf("under-cap retention: len=%d seen=%d", small.Len(), small.Seen())
	}
}

// TestEffectivenessConcurrentValue reads a live accumulator while a single
// writer observes — the statusz snapshot pattern, race-checked.
func TestEffectivenessConcurrentValue(t *testing.T) {
	var e Effectiveness
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10000; i++ {
			e.Observe(1, 2)
		}
	}()
	for {
		select {
		case <-done:
			if v := e.Value(); math.Abs(v-0.5) > 1e-9 {
				t.Fatalf("final value = %g", v)
			}
			return
		default:
			if v := e.Value(); v < 0 || v > 1 {
				t.Fatalf("mid-run value out of range: %g", v)
			}
		}
	}
}

func TestUtilizationLimitHistory(t *testing.T) {
	u := NewUtilization(2, time.Second)
	u.LimitHistory(3)
	for i := 0; i < 10; i++ {
		u.AddBusy(0, time.Duration(i)*100*time.Millisecond)
		u.Snapshot()
	}
	h := u.History()
	if len(h) != 3 {
		t.Fatalf("history rows = %d, want 3", len(h))
	}
	// The retained rows are the newest ones (epochs 7, 8, 9).
	if h[0][0] != 0.7 || h[2][0] != 0.9 {
		t.Fatalf("retained rows %v, want newest three", h)
	}
	// Shrinking an existing history truncates to the newest rows.
	v := NewUtilization(1, time.Second)
	for i := 0; i < 5; i++ {
		v.AddBusy(0, time.Duration(i)*100*time.Millisecond)
		v.Snapshot()
	}
	v.LimitHistory(2)
	if h := v.History(); len(h) != 2 || h[1][0] != 0.4 {
		t.Fatalf("post-hoc limit: %v", h)
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.Quantile(0.5) != 0 || c.FractionBelow(time.Second) != 0 {
		t.Fatal("empty CDF should degrade to zeros")
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{Lookup: 3 * time.Second, Match: time.Second}
	b.Add(Breakdown{Other: 4 * time.Second, Match: time.Second})
	if b.Total() != 9*time.Second {
		t.Fatalf("total = %v", b.Total())
	}
	l, m, o := b.Fractions()
	if math.Abs(l-3.0/9) > 1e-12 || math.Abs(m-2.0/9) > 1e-12 || math.Abs(o-4.0/9) > 1e-12 {
		t.Fatalf("fractions = %g %g %g", l, m, o)
	}
	var empty Breakdown
	l, m, o = empty.Fractions()
	if l != 0 || m != 0 || o != 0 {
		t.Fatal("empty breakdown fractions non-zero")
	}
}

func TestUtilization(t *testing.T) {
	u := NewUtilization(2, 100*time.Millisecond)
	u.AddBusy(0, 50*time.Millisecond)
	u.AddBusy(1, 200*time.Millisecond) // clamped to 1
	row := u.Snapshot()
	if row[0] != 0.5 || row[1] != 1 {
		t.Fatalf("snapshot = %v", row)
	}
	// Counters reset per epoch.
	row = u.Snapshot()
	if row[0] != 0 || row[1] != 0 {
		t.Fatalf("second snapshot = %v", row)
	}
	if len(u.History()) != 2 {
		t.Fatalf("history rows = %d", len(u.History()))
	}
	// Smoothness: constant per-joiner shares are perfectly smooth even
	// when absolute load varies.
	c := NewUtilization(2, time.Second)
	for i := 0; i < 5; i++ {
		c.AddBusy(0, time.Duration(i+1)*100*time.Millisecond)
		c.AddBusy(1, time.Duration(i+1)*100*time.Millisecond)
		c.Snapshot()
	}
	if got := c.Smoothness(); got != 0 {
		t.Fatalf("constant-share smoothness = %g", got)
	}
	if got := c.Imbalance(); got != 0 {
		t.Fatalf("balanced imbalance = %g", got)
	}
	// A hot spot alternating between two joiners: rough and imbalanced.
	rough := NewUtilization(2, time.Second)
	for i := 0; i < 6; i++ {
		rough.AddBusy(i%2, time.Second)
		rough.Snapshot()
	}
	if got := rough.Smoothness(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("alternating smoothness = %g, want 0.5", got)
	}
	if got := rough.Imbalance(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("alternating imbalance = %g, want 1", got)
	}
	// Empty history degrades to zero.
	if got := NewUtilization(2, time.Second).Imbalance(); got != 0 {
		t.Fatalf("empty imbalance = %g", got)
	}
}

// TestQuickUnbalancednessInvariants: non-negative, zero iff uniform,
// scale-invariant.
func TestQuickUnbalancednessInvariants(t *testing.T) {
	f := func(loads []uint16, scale uint8) bool {
		ws := make([]float64, len(loads))
		uniform := true
		for i, l := range loads {
			ws[i] = float64(l)
			if l != loads[0] {
				uniform = false
			}
		}
		u := Unbalancedness(ws)
		if u < 0 {
			return false
		}
		if uniform && u != 0 {
			return false
		}
		// Scale invariance (coefficient of variation).
		k := float64(scale%7) + 1
		scaled := make([]float64, len(ws))
		for i := range ws {
			scaled[i] = ws[i] * k
		}
		return math.Abs(Unbalancedness(scaled)-u) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
