// Package metrics implements the measurements the paper reports: throughput
// (§III-B), latency CDFs (§III-B), the lookup/match/other time breakdown
// (Fig. 6), effectiveness (Eq. 1), unbalancedness (Eq. 2), and the
// per-joiner utilization trace behind Fig. 14.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Throughput converts a tuple count and elapsed duration to tuples/second.
func Throughput(tuples int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(tuples) / elapsed.Seconds()
}

// Effectiveness is the paper's Equation (1): the mean, over base tuples, of
// the fraction of visited buffer entries that were actually inside the
// window. Engines accumulate (matched, visited) pairs per join; this helper
// folds the per-join ratios.
//
// State is held in atomics under the single-writer discipline: only the
// owning joiner calls Observe, so updates are plain load/store (no CAS on
// the hot path), while any goroutine may call Value concurrently — the
// live statusz endpoint snapshots accumulators mid-run.
type Effectiveness struct {
	ratioBits atomic.Uint64 // float64 bits of the summed per-join ratios
	joins     atomic.Int64
}

// Observe records one join operation that visited `visited` buffered tuples
// of which `matched` were in-window. Joins that visited nothing count as
// fully effective (nothing useless was read). Single writer only.
func (e *Effectiveness) Observe(matched, visited int64) {
	r := 1.0
	if visited != 0 {
		r = float64(matched) / float64(visited)
	}
	e.addRatio(r)
	e.joins.Add(1)
}

func (e *Effectiveness) addRatio(r float64) {
	e.ratioBits.Store(math.Float64bits(math.Float64frombits(e.ratioBits.Load()) + r))
}

// Merge folds another accumulator in (per-joiner accumulators are merged at
// the end of a run, or live for statusz).
func (e *Effectiveness) Merge(o *Effectiveness) {
	e.addRatio(math.Float64frombits(o.ratioBits.Load()))
	e.joins.Add(o.joins.Load())
}

// Value returns the average effectiveness in [0, 1], or 1 if no joins ran.
// Safe to call while another goroutine is Observing; the ratio sum and
// join count may then be one observation apart.
func (e *Effectiveness) Value() float64 {
	joins := e.joins.Load()
	if joins == 0 {
		return 1
	}
	return math.Float64frombits(e.ratioBits.Load()) / float64(joins)
}

// Unbalancedness is the paper's Equation (2): the dispersion of per-joiner
// workloads, normalized by joiner count and mean workload. As printed in
// the paper the summand is (W_i - µ), which telescopes to zero; the text
// defines it as the standard deviation of workloads, so we compute
// stddev(W) / µ (the coefficient of variation), which reproduces the
// figure's behaviour: 0 when perfectly balanced, large when few joiners
// carry most tuples.
func Unbalancedness(loads []float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	var sum float64
	for _, w := range loads {
		sum += w
	}
	mu := sum / float64(len(loads))
	if mu == 0 {
		return 0
	}
	var ss float64
	for _, w := range loads {
		d := w - mu
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(loads))) / mu
}

// LatencyRecorder collects per-result latencies for one joiner (so the hot
// path stays lock-free) and renders CDFs after the run. Latencies are
// recorded in nanoseconds.
//
// An uncapped recorder retains every sample — fine for bounded benchmark
// replays, fatal for a long-running server. NewReservoirRecorder caps
// memory with reservoir sampling (Algorithm R): every observation has an
// equal probability of being retained, so quantiles stay unbiased while
// the buffer never grows past the cap. The PRNG is a deterministic
// seedable splitmix64 so capped runs are reproducible.
type LatencyRecorder struct {
	samples []int64
	cap     int    // 0 = unbounded
	seen    int64  // total observations, including evicted ones
	rng     uint64 // splitmix64 state (capped mode only)
}

// NewLatencyRecorder pre-sizes the sample buffer; it retains every sample
// (use NewReservoirRecorder on unbounded-duration paths).
func NewLatencyRecorder(capacity int) *LatencyRecorder {
	return &LatencyRecorder{samples: make([]int64, 0, capacity)}
}

// NewReservoirRecorder retains at most max samples via reservoir sampling
// with the given PRNG seed.
func NewReservoirRecorder(max int, seed uint64) *LatencyRecorder {
	if max < 1 {
		max = 1
	}
	return &LatencyRecorder{samples: make([]int64, 0, max), cap: max, rng: seed}
}

// Record adds one latency observation.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.seen++
	if r.cap <= 0 || len(r.samples) < cap(r.samples) {
		r.samples = append(r.samples, int64(d))
		return
	}
	// Algorithm R: replace a uniformly random slot with probability
	// cap/seen, so every observation is retained with equal probability.
	if k := r.next() % uint64(r.seen); k < uint64(r.cap) {
		r.samples[k] = int64(d)
	}
}

// next steps the splitmix64 PRNG.
func (r *LatencyRecorder) next() uint64 {
	r.rng += 0x9e3779b97f4a7c15
	z := r.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Len returns the number of retained samples.
func (r *LatencyRecorder) Len() int { return len(r.samples) }

// Seen returns the number of observations, including ones the reservoir
// evicted.
func (r *LatencyRecorder) Seen() int64 { return r.seen }

// CDF summarises a latency distribution.
type CDF struct {
	Sorted []int64 // ascending latencies in ns
}

// MergeCDF builds a CDF from several per-joiner recorders.
func MergeCDF(recs ...*LatencyRecorder) CDF {
	total := 0
	for _, r := range recs {
		total += len(r.samples)
	}
	all := make([]int64, 0, total)
	for _, r := range recs {
		all = append(all, r.samples...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return CDF{Sorted: all}
}

// Quantile returns the nearest-rank q-quantile (0 <= q <= 1) latency: the
// smallest sample with at least a q fraction of samples at or below it.
// (The former int(q*(len-1)) indexing floored, biasing high quantiles low
// on small sample sets — e.g. p99 of 100 samples returned rank 99 of 100.)
func (c CDF) Quantile(q float64) time.Duration {
	n := len(c.Sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return time.Duration(c.Sorted[0])
	}
	if q >= 1 {
		return time.Duration(c.Sorted[n-1])
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return time.Duration(c.Sorted[rank-1])
}

// FractionBelow returns the fraction of samples at or below d — e.g. the
// paper's "80%-90% below 20 ms" check for Workloads A and D.
func (c CDF) FractionBelow(d time.Duration) float64 {
	if len(c.Sorted) == 0 {
		return 0
	}
	n := sort.Search(len(c.Sorted), func(i int) bool { return c.Sorted[i] > int64(d) })
	return float64(n) / float64(len(c.Sorted))
}

// Series renders (latency, cumulative fraction) points at the given
// quantiles, ready for plotting a CDF curve.
func (c CDF) Series(quantiles []float64) []struct {
	Q       float64
	Latency time.Duration
} {
	out := make([]struct {
		Q       float64
		Latency time.Duration
	}, len(quantiles))
	for i, q := range quantiles {
		out[i].Q = q
		out[i].Latency = c.Quantile(q)
	}
	return out
}

// Summary describes a small set of repeated measurements (e.g. the
// per-cell throughput samples of a benchmark sweep) by its nearest-rank
// quartiles — the statistics the perf regression gate compares. Quartiles
// use the same nearest-rank convention as CDF.Quantile, so with very few
// repeats Q1 and Q3 degrade gracefully toward the sample extremes and the
// interquartile range covers the whole observed spread.
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

// Summarize computes the five-number summary of samples. A zero Summary is
// returned for an empty input.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	rank := func(q float64) float64 {
		r := int(math.Ceil(q * float64(len(sorted))))
		if r < 1 {
			r = 1
		}
		if r > len(sorted) {
			r = len(sorted)
		}
		return sorted[r-1]
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Q1:     rank(0.25),
		Median: rank(0.5),
		Q3:     rank(0.75),
		Max:    sorted[len(sorted)-1],
	}
}

// Scale returns the summary with every statistic multiplied by f —
// used to normalize a baseline recorded on different hardware by a
// calibration ratio.
func (s Summary) Scale(f float64) Summary {
	s.Min *= f
	s.Q1 *= f
	s.Median *= f
	s.Q3 *= f
	s.Max *= f
	return s
}

// IQROverlaps reports whether the interquartile ranges [Q1, Q3] of the two
// summaries intersect. Overlapping IQRs mean the two sample sets are
// indistinguishable at benchmark-noise resolution, which the regression
// gate treats as "no regression" regardless of the median delta.
func (s Summary) IQROverlaps(o Summary) bool {
	return s.Q1 <= o.Q3 && o.Q1 <= s.Q3
}

// Breakdown accumulates the paper's Fig. 6 time categories for one joiner.
// Lookup is time spent visiting buffered tuples to find the in-window set,
// Match is time spent folding in-window tuples into the aggregate, and
// Other is everything else the joiner did while busy (queue handling,
// insertion, eviction, result writing).
type Breakdown struct {
	Lookup time.Duration
	Match  time.Duration
	Other  time.Duration
}

// Add folds another breakdown in.
func (b *Breakdown) Add(o Breakdown) {
	b.Lookup += o.Lookup
	b.Match += o.Match
	b.Other += o.Other
}

// Total returns the sum of all categories.
func (b Breakdown) Total() time.Duration { return b.Lookup + b.Match + b.Other }

// Fractions returns each category as a share of the total.
func (b Breakdown) Fractions() (lookup, match, other float64) {
	t := b.Total()
	if t == 0 {
		return 0, 0, 0
	}
	return float64(b.Lookup) / float64(t), float64(b.Match) / float64(t), float64(b.Other) / float64(t)
}

// String implements fmt.Stringer.
func (b Breakdown) String() string {
	l, m, o := b.Fractions()
	return fmt.Sprintf("lookup=%.1f%% match=%.1f%% other=%.1f%%", l*100, m*100, o*100)
}

// Utilization samples per-joiner busy time over fixed epochs, reproducing
// the CPU-utilization-over-time trace of Fig. 14 in software. Joiners call
// AddBusy with the time they spent processing during the current epoch; the
// harness calls Snapshot at epoch boundaries.
type Utilization struct {
	epoch   time.Duration
	busy    []time.Duration
	history [][]float64
	limit   int // 0 = unbounded history (batch runs)
}

// NewUtilization tracks n joiners with the given epoch length.
func NewUtilization(n int, epoch time.Duration) *Utilization {
	return &Utilization{epoch: epoch, busy: make([]time.Duration, n)}
}

// LimitHistory keeps only the newest n epochs (0 restores unbounded
// retention). Long-running servers sample forever; an unbounded history
// would be the same leak the reservoir recorder fixes.
func (u *Utilization) LimitHistory(n int) {
	u.limit = n
	if n > 0 && len(u.history) > n {
		u.history = append(u.history[:0], u.history[len(u.history)-n:]...)
	}
}

// AddBusy accounts busy-time d to joiner i during the current epoch. Only
// the harness goroutine mutates the tracker, folding per-joiner counters it
// drains from the engine, so no locking is needed.
func (u *Utilization) AddBusy(i int, d time.Duration) { u.busy[i] += d }

// Snapshot closes the current epoch: it appends each joiner's utilization
// (busy/epoch, capped at 1) to the history and zeroes the counters.
func (u *Utilization) Snapshot() []float64 { return u.SnapshotOver(u.epoch) }

// SnapshotOver closes the current epoch against the actual elapsed
// duration — live samplers tick on the wall clock, which jitters, so the
// denominator is measured rather than nominal.
func (u *Utilization) SnapshotOver(epoch time.Duration) []float64 {
	row := make([]float64, len(u.busy))
	for i, b := range u.busy {
		var f float64
		if epoch > 0 {
			f = float64(b) / float64(epoch)
		}
		if f > 1 {
			f = 1
		}
		row[i] = f
		u.busy[i] = 0
	}
	if u.limit > 0 && len(u.history) >= u.limit {
		copy(u.history, u.history[len(u.history)-u.limit+1:])
		u.history = u.history[:u.limit-1]
	}
	u.history = append(u.history, row)
	return row
}

// History returns one row per epoch, one column per joiner.
func (u *Utilization) History() [][]float64 { return u.history }

// Imbalance returns the mean over epochs of the cross-joiner
// unbalancedness of utilization within that epoch — the primary
// quantitative reading of Fig. 14: under a rotating hot set, a static key
// partition keeps a few joiners saturated while others idle (high
// imbalance), whereas the dynamic schedule spreads each epoch's load
// (low imbalance). Epochs with no recorded work are skipped.
func (u *Utilization) Imbalance() float64 {
	var sum float64
	n := 0
	for _, row := range u.history {
		var total float64
		for _, v := range row {
			total += v
		}
		if total == 0 {
			continue
		}
		sum += Unbalancedness(row)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Smoothness returns the mean over joiners of the standard deviation of
// their *share* of each epoch's total utilization across epochs — the
// temporal reading of Fig. 14 ("smoother CPU utilization variation"):
// lower is smoother. Shares (rather than raw busy fractions) make the
// metric insensitive to how fast the engine is in absolute terms.
func (u *Utilization) Smoothness() float64 {
	if len(u.history) == 0 || len(u.busy) == 0 {
		return 0
	}
	nJ := len(u.busy)
	var shares [][]float64
	for _, row := range u.history {
		var total float64
		for _, v := range row {
			total += v
		}
		if total == 0 {
			continue
		}
		s := make([]float64, nJ)
		for j, v := range row {
			s[j] = v / total
		}
		shares = append(shares, s)
	}
	if len(shares) == 0 {
		return 0
	}
	var totalDev float64
	for j := 0; j < nJ; j++ {
		var sum float64
		for _, s := range shares {
			sum += s[j]
		}
		mu := sum / float64(len(shares))
		var ss float64
		for _, s := range shares {
			d := s[j] - mu
			ss += d * d
		}
		totalDev += math.Sqrt(ss / float64(len(shares)))
	}
	return totalDev / float64(nJ)
}
