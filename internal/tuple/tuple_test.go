package tuple

import (
	"strings"
	"testing"
)

func TestSideString(t *testing.T) {
	if Base.String() != "base" || Probe.String() != "probe" {
		t.Fatalf("side strings: %s %s", Base, Probe)
	}
	if s := Side(9).String(); !strings.Contains(s, "9") {
		t.Fatalf("unknown side string %q", s)
	}
}

func TestResultString(t *testing.T) {
	r := Result{BaseTS: 10, Key: 3, BaseSeq: 1, Agg: 2.5, Matches: 4}
	s := r.String()
	for _, want := range []string{"key=3", "ts=10", "agg=2.5", "n=4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Result string %q missing %q", s, want)
		}
	}
}

func TestZeroValueTuple(t *testing.T) {
	var tp Tuple
	if tp.Side != Base {
		t.Fatal("zero Side should be Base (iota 0)")
	}
	if !tp.Arrival.IsZero() {
		t.Fatal("zero Arrival not zero")
	}
}
