// Package tuple defines the stream tuple model shared by every engine in the
// repository: an event-timestamped, keyed record together with the side
// (base or probe) it belongs to and the result type produced by an online
// interval join.
package tuple

import (
	"fmt"
	"time"
)

// Time is an event timestamp in microseconds since an arbitrary stream
// epoch. All window arithmetic in the repository is done in this unit; the
// paper's workloads use window lengths from 100 µs to 150 s, all of which
// are exactly representable.
type Time = int64

// Key identifies the join key of a tuple. The paper's workloads use between
// 1 and 100 000 unique keys, so a 64-bit integer key loses no generality;
// string keys can be pre-hashed by the caller.
type Key = uint64

// Side tags which input stream a tuple belongs to.
type Side uint8

const (
	// Base is the stream S whose tuples define the relative windows and
	// for which one aggregate result per tuple is emitted.
	Base Side = iota
	// Probe is the stream R whose tuples fall into base windows.
	Probe
)

// String implements fmt.Stringer.
func (s Side) String() string {
	switch s {
	case Base:
		return "base"
	case Probe:
		return "probe"
	default:
		return fmt.Sprintf("side(%d)", uint8(s))
	}
}

// Tuple is one stream record x = {t, k, p}. Seq is the arrival sequence
// number assigned by the source, used to recover arrival order in tests and
// to correlate latency measurements; Arrival is the wall-clock instant the
// tuple entered the system (zero in full-speed replays, where latency is not
// measured).
type Tuple struct {
	TS      Time      // event timestamp t (µs)
	Key     Key       // join key k
	Val     float64   // numeric payload aggregated by the join
	Seq     uint64    // arrival sequence number within its stream
	Side    Side      // which stream the tuple belongs to
	Arrival time.Time // wall-clock arrival instant (optional)
}

// Result is the aggregated output of the interval join for one base tuple:
// the base tuple's identity plus the aggregate over every matching probe
// tuple. Matches counts probe tuples that fell inside the window, which the
// correctness tests compare against a reference join.
type Result struct {
	BaseTS  Time    // timestamp of the base tuple
	Key     Key     // key of the base tuple
	BaseSeq uint64  // sequence number of the base tuple
	Agg     float64 // aggregate value over matching probe tuples
	Matches int64   // number of matching probe tuples
}

// String implements fmt.Stringer for debugging output.
func (r Result) String() string {
	return fmt.Sprintf("result{key=%d ts=%d agg=%g n=%d}", r.Key, r.BaseTS, r.Agg, r.Matches)
}
