// Package scaleoij implements Scale-OIJ, the paper's contribution (§V): a
// parallel online interval join combining
//
//  1. the SWMR time-travel index (package timetravel), so window boundaries
//     are located in O(log) and lateness-inflated buffers are never scanned;
//  2. shared processing via virtual teams and the dynamic balanced schedule
//     (package sched), so few or skewed keys no longer pin work to single
//     joiners; and
//  3. incremental window aggregation (Subtract-on-Evict adapted to interval
//     joins), so overlapping windows share aggregation work.
//
// Each technique toggles independently through Options, which is how the
// ablation experiments (Figs. 11, 13, 16) isolate their contributions. The
// "no time-travel index" ablation is Key-OIJ itself (package keyoij), as in
// the paper.
package scaleoij

import (
	"math/bits"
	"runtime"
	"sync/atomic"
	"time"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/sched"
	"oij/internal/timetravel"
	"oij/internal/trace"
	"oij/internal/tuple"
	"oij/internal/watermark"
)

// Options select Scale-OIJ's optimizations.
type Options struct {
	// SharedProcessing lets virtual-team members read each other's
	// indices so tuples of one key can be spread over several joiners.
	SharedProcessing bool
	// DynamicSchedule runs the Algorithm-3 balancer, growing virtual
	// teams toward the unbalancedness optimum. Implies SharedProcessing.
	DynamicSchedule bool
	// Incremental enables Subtract-on-Evict incremental aggregation for
	// invertible aggregation functions.
	Incremental bool
	// Sched tunes the balancer.
	Sched sched.Config
	// RescheduleEvery is the number of ingested tuples between balancer
	// passes (default 32768).
	RescheduleEvery int
}

// Default returns all optimizations enabled, with cold virtual teams
// shrinking back to their home joiner so the schedule tracks shifting hot
// sets (Fig. 14) instead of accreting stale replicas.
func Default() Options {
	return Options{
		SharedProcessing: true,
		DynamicSchedule:  true,
		Incremental:      true,
		Sched:            sched.Config{ShrinkFraction: 0.05},
	}
}

func (o Options) withDefaults() Options {
	if o.DynamicSchedule {
		o.SharedProcessing = true
	}
	if o.RescheduleEvery <= 0 {
		o.RescheduleEvery = 32768
	}
	o.Sched = o.Sched.WithDefaults()
	return o
}

// Engine is the Scale-OIJ implementation of engine.Engine.
type Engine struct {
	cfg   engine.Config
	opt   Options
	tr    *engine.Transport
	sink  engine.Sink
	lrec  engine.LatencyRecorder
	srec  engine.StageRecorder
	arec  engine.AllocRecorder
	stats *engine.Stats
	js    []*joiner

	// Driver-side scheduling state.
	schedule  *sched.Schedule
	bal       *sched.Balancer
	sinceBal  int
	lastWrite [][]tuple.Time // [partition][joiner] newest event ts routed

	// active is the number of joiners currently receiving newly routed
	// tuples (driver-owned); pubActive mirrors it for concurrent readers
	// (ActiveJoiners). The full cfg.Joiners pool keeps running — see
	// Resize.
	active    int
	pubActive atomic.Int32

	// masks[p] is partition p's read set: every joiner whose index may
	// hold live tuples of p. Written by the driver, read by joiners.
	masks []atomic.Uint64

	// processed[i] is the newest in-band watermark joiner i has handled;
	// finalized[i] is the watermark through which joiner i has emitted
	// its pending windows. Both drive safe cross-team eviction (see
	// evictWM).
	processed *watermark.Tracker
	finalized *watermark.Tracker
}

// New builds a Scale-OIJ engine. It panics if cfg.Joiners exceeds
// sched.MaxJoiners (the read-set mask width).
func New(cfg engine.Config, opt Options, sink engine.Sink) *Engine {
	cfg = cfg.WithDefaults()
	if cfg.Instrument {
		cfg.TrackBusy = true
	}
	opt = opt.withDefaults()
	bal, err := sched.NewBalancer(opt.Sched, cfg.Joiners)
	if err != nil {
		panic(err)
	}
	p := bal.Partitions()
	e := &Engine{
		cfg:       cfg,
		opt:       opt,
		tr:        engine.NewTransport(cfg),
		sink:      sink,
		stats:     engine.NewStats(cfg.Joiners),
		schedule:  sched.NewStatic(p, cfg.Joiners),
		bal:       bal,
		masks:     make([]atomic.Uint64, p),
		lastWrite: make([][]tuple.Time, p),
		processed: watermark.NewTracker(cfg.Joiners),
		finalized: watermark.NewTracker(cfg.Joiners),
	}
	e.active = cfg.Joiners
	e.pubActive.Store(int32(cfg.Joiners))
	e.lrec, _ = sink.(engine.LatencyRecorder)
	e.srec, _ = sink.(engine.StageRecorder)
	e.arec, _ = sink.(engine.AllocRecorder)
	for i := range e.lastWrite {
		e.lastWrite[i] = make([]tuple.Time, cfg.Joiners)
		e.masks[i].Store(1 << uint(i%cfg.Joiners))
	}
	e.js = make([]*joiner, cfg.Joiners)
	for i := range e.js {
		e.js[i] = newJoiner(e, i)
	}
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "scale-oij" }

// Start implements engine.Engine.
func (e *Engine) Start() {
	for i, j := range e.js {
		var busy *atomic.Int64
		if e.cfg.TrackBusy {
			busy = &e.stats.Busy[i]
		}
		hooks := engine.JoinerHooks{OnTuple: j.onTuple, OnWatermark: j.onWatermark, Busy: busy}
		if e.cfg.Mode == engine.OnWatermark {
			hooks.OnDrained = j.onDrained
		}
		e.tr.Go(i, hooks)
	}
}

// partition maps a key to its hash bucket.
func (e *Engine) partition(k tuple.Key) int {
	return int(engine.HashKey(k) % uint64(len(e.masks)))
}

// Ingest implements engine.Engine: route by the current schedule, keep the
// read-set mask and balancer statistics, and periodically rebalance.
func (e *Engine) Ingest(t tuple.Tuple) {
	e.tr.Observe(t.TS)
	p := e.partition(t.Key)
	j := e.schedule.Route(p)

	// Maintain the read set before the tuple is visible: a reader must
	// never miss an index that holds live data for p.
	if m := e.masks[p].Load(); m&(1<<uint(j)) == 0 {
		e.masks[p].Store(m | 1<<uint(j))
	}
	if t.TS > e.lastWrite[p][j] {
		e.lastWrite[p][j] = t.TS
	}
	e.bal.Counts[p]++

	e.tr.Push(j, t)

	if e.opt.DynamicSchedule {
		e.sinceBal++
		if e.sinceBal >= e.opt.RescheduleEvery {
			e.sinceBal = 0
			e.rebalance(t.TS)
		}
	}
}

// rebalance runs one Algorithm-3 pass and prunes read-set bits whose data
// has fully expired.
func (e *Engine) rebalance(nowTS tuple.Time) {
	if s, changed := e.bal.Rebalance(e.schedule); changed {
		e.schedule = s
	}
	// A joiner that stopped receiving partition p keeps its mask bit
	// until everything it buffered for p is evictable everywhere.
	w := e.cfg.Window
	retention := w.Len() + w.Lateness + w.Len() // eviction slack upper bound
	for p := range e.masks {
		m := e.masks[p].Load()
		nm := m
		for j := 0; j < e.cfg.Joiners; j++ {
			bit := uint64(1) << uint(j)
			if m&bit == 0 || e.schedule.TeamMask(p)&bit != 0 {
				continue
			}
			if e.lastWrite[p][j]+retention < nowTS-w.Lateness {
				nm &^= bit
			}
		}
		if nm != m {
			e.masks[p].Store(nm)
		}
	}
}

// Drain implements engine.Engine.
func (e *Engine) Drain() {
	e.tr.Finish()
	var evicted int64
	for _, j := range e.js {
		evicted += j.evicted
	}
	e.stats.Evicted.Store(evicted)
	e.stats.Extra["reschedules"] = e.bal.Reschedules.Load()
	if e.opt.Sched.Topology != nil {
		share := sched.CrossNodeShare(e.schedule, e.bal.Counts, e.opt.Sched.Topology, e.cfg.Joiners)
		e.stats.Extra["cross_node_permille"] = int64(1000 * share)
	}
	if e.cfg.Instrument {
		engine.FillOther(e.stats)
	}
}

// Stats implements engine.Engine.
func (e *Engine) Stats() *engine.Stats { return e.stats }

// Heartbeat implements engine.Engine.
func (e *Engine) Heartbeat() { e.tr.Heartbeat() }

// QueueDepths implements engine.Introspector.
func (e *Engine) QueueDepths() []int { return e.tr.QueueDepths() }

// Watermark implements engine.Introspector.
func (e *Engine) Watermark() tuple.Time { return e.tr.Watermark() }

// MaxEventTS implements engine.Introspector.
func (e *Engine) MaxEventTS() tuple.Time { return e.tr.MaxEventTS() }

// Stalls implements engine.Introspector.
func (e *Engine) Stalls() engine.StallSnapshot { return e.tr.Stalls() }

// Reschedules reports accepted dynamic-schedule changes so far; safe to
// read live.
func (e *Engine) Reschedules() int64 { return e.bal.Reschedules.Load() }

// Resize implements engine.Resizer: it narrows (or re-widens) routing to
// the first n joiners without migrating any buffered data. The read-set
// masks make this safe — a joiner that stops receiving a partition keeps
// its mask bit until everything it buffered has expired (rebalance prunes
// it after the retention horizon), so shared-processing reads still cover
// every live tuple and answers stay byte-identical to the oracle across a
// resize. The full pool of cfg.Joiners goroutines and rings keeps running:
// watermarks are broadcast to all of them, so finalization and eviction on
// deactivated joiners continue. Requires SharedProcessing (without it a
// deactivated joiner's buffer would become unreachable); returns false
// otherwise. Driver goroutine only.
func (e *Engine) Resize(n int) bool {
	if !e.opt.SharedProcessing {
		return false
	}
	if n < 1 {
		n = 1
	}
	if n > e.cfg.Joiners {
		n = e.cfg.Joiners
	}
	if n == e.active {
		return true
	}
	e.active = n
	e.pubActive.Store(int32(n))
	e.bal.SetActive(n)
	e.schedule = e.schedule.Restrict(n)
	return true
}

// ActiveJoiners implements engine.Resizer. Safe from any goroutine.
func (e *Engine) ActiveJoiners() int { return int(e.pubActive.Load()) }

// incEntry caches the previous window's aggregate for one key at one
// joiner, so the next window is computed by adding and subtracting only the
// non-overlapping edges (Fig. 15/16 of the paper). Invertible operators use
// the Subtract-on-Evict state st; non-invertible ones (min/max) use the
// two-stacks sliding window — the paper's "incremental computing for
// non-invertible operators" future-work item.
type incEntry struct {
	lo, hi tuple.Time
	mask   uint64
	st     agg.State
	slide  *agg.Sliding
	// late buffers interior inserts the two-stacks window cannot absorb
	// (a FIFO structure only grows at the tail); they are folded into
	// the aggregate at query time and pruned as the window slides past
	// them. Past lateCap the entry rebuilds instead.
	late []tsval
}

// lateCap bounds the per-entry late buffer before a rebuild is cheaper.
const lateCap = 64

// joiner is one Scale-OIJ worker.
type joiner struct {
	e  *Engine
	id int

	ix        *timetravel.Index
	pending   engine.PendingHeap
	wm        tuple.Time // newest in-band watermark seen
	lastSweep tuple.Time
	evicted   int64
	inc       map[tuple.Key]*incEntry
	scratch   []tsval
	pairs     []tsval
}

// tsval is a scratch (timestamp, value) pair for merged team scans.
type tsval struct {
	ts  tuple.Time
	val float64
}

func newJoiner(e *Engine, id int) *joiner {
	return &joiner{
		e:         e,
		id:        id,
		ix:        timetravel.New(uint64(id)*0x9e3779b97f4a7c15 + 1),
		wm:        watermark.MinTime,
		lastSweep: watermark.MinTime,
		inc:       make(map[tuple.Key]*incEntry),
	}
}

func (j *joiner) onTuple(t tuple.Tuple) {
	j.e.stats.Processed[j.id].Add(1)
	if t.Side == tuple.Probe {
		j.ix.Put(t)
		if j.e.arec != nil {
			// Every Put allocates one time-travel index node.
			j.e.arec.CountAlloc(trace.StageIngest, 1, engine.TupleAllocBytes)
		}
		if j.e.opt.Incremental && j.e.cfg.Mode == engine.OnArrival {
			// A late probe landing inside this joiner's cached window
			// would be missed by the edge-delta scans, so fold it into
			// the cached aggregate directly — the entry then stays
			// exact without rescanning. Probes above the cached hi are
			// picked up by the next delta-add (not folded here, which
			// would double-count); probes a *teammate* inserts into an
			// interior another joiner cached remain the documented
			// arrival-mode approximation, bounded by the lateness.
			// (OnWatermark mode needs none of this: finalized windows
			// lie wholly below the watermark, which late probes
			// cannot.)
			if e := j.inc[t.Key]; e != nil && e.mask != 0 && t.TS >= e.lo && t.TS <= e.hi {
				switch {
				case e.slide == nil:
					e.st.Add(t.Val)
				case len(e.late) < lateCap:
					// A FIFO two-stacks window cannot absorb an
					// interior insert; park it in the late
					// buffer, folded at query time.
					before := cap(e.late)
					e.late = append(e.late, tsval{t.TS, t.Val})
					engine.CountSliceGrowth(j.e.arec, trace.StageIngest, before, cap(e.late), engine.TSValAllocBytes)
				default:
					e.mask = 0 // too many stragglers: rebuild
				}
			}
		}
		return
	}
	if j.e.cfg.Mode == engine.OnWatermark {
		j.pending.Push(t)
		return
	}
	j.join(t)
}

func (j *joiner) onWatermark(wm tuple.Time) {
	// Equal watermarks are heartbeats: re-run finalization (the global
	// minimum may have advanced) but skip stale (smaller) values.
	if wm < j.wm {
		return
	}
	j.wm = wm
	if j.e.cfg.Mode == engine.OnWatermark {
		// Publish progress first (a peer may be waiting on us), then
		// finalize everything complete under the finalize gate, then
		// advertise how far we have finalized — eviction is gated on
		// the latter so no peer evicts probes a pending window of ours
		// still needs. With shared processing the gate is the global
		// minimum processed watermark (a teammate's index must be
		// complete before we read it); without sharing all of a key's
		// probes flow through this joiner's own ring, so the local
		// watermark suffices and matches the local eviction gate.
		j.e.processed.Update(j.id, wm)
		gwm := wm
		if j.e.opt.SharedProcessing {
			gwm = j.e.processed.Global()
		}
		j.finalize(gwm)
		j.e.finalized.Update(j.id, gwm)
	} else {
		j.e.processed.Update(j.id, wm)
	}
	j.maybeSweep(wm)
}

// onDrained flushes the remaining pending windows after the ring closed:
// the global minimum keeps rising as peers process the final watermark, so
// this terminates once every joiner has drained its ring.
func (j *joiner) onDrained() {
	for j.pending.Len() > 0 {
		gwm := j.e.processed.Global()
		j.finalize(gwm)
		j.e.finalized.Update(j.id, gwm)
		runtime.Gosched()
	}
	j.e.finalized.Update(j.id, engine.FinalWatermark)
}

// finalize emits every pending base tuple whose window is complete under
// the global watermark gwm.
func (j *joiner) finalize(gwm tuple.Time) {
	if gwm == watermark.MinTime {
		return
	}
	for {
		b, ok := j.pending.PopIfBefore(gwm - j.e.cfg.Window.Fol)
		if !ok {
			return
		}
		j.join(b)
	}
}

// evictWM returns the watermark that gates eviction. With shared
// processing the joiner's index has remote readers, so it must take the
// *global minimum* progress — processed watermarks in arrival mode,
// finalized watermarks in watermark mode (a peer's pending window may need
// our probes until the peer has finalized past it). Without sharing the
// local watermark suffices: reads and evictions are same-goroutine.
func (j *joiner) evictWM() tuple.Time {
	if !j.e.opt.SharedProcessing {
		return j.wm
	}
	if j.e.cfg.Mode == engine.OnWatermark {
		return j.e.finalized.Global()
	}
	return j.e.processed.Global()
}

// evictBound converts a gate watermark into the eviction timestamp bound.
// OnWatermark retains an extra FOL (pending windows reach forward), and
// incremental mode retains one extra window length: a cached aggregate may
// still need to *subtract* probes up to a full window behind the current
// boundary, so they must stay physically readable (see incEntry).
func (j *joiner) evictBound(wm tuple.Time) tuple.Time {
	if wm == watermark.MinTime {
		return watermark.MinTime
	}
	b := wm - j.e.cfg.Window.Pre
	if j.e.cfg.Mode == engine.OnWatermark {
		b -= j.e.cfg.Window.Fol
	}
	if j.e.opt.Incremental {
		b -= j.e.cfg.Window.Len()
	}
	return b
}

// maybeSweep evicts expired probes from the joiner's own index at most
// every half retention horizon.
func (j *joiner) maybeSweep(wm tuple.Time) {
	horizon := j.e.cfg.Window.Len() + j.e.cfg.Window.Lateness
	if j.lastSweep != watermark.MinTime && wm-j.lastSweep <= horizon/2+1 {
		return
	}
	j.lastSweep = wm
	gate := j.evictWM()
	if bound := j.evictBound(gate); bound != watermark.MinTime {
		if n := int64(j.ix.EvictBefore(bound)); n > 0 {
			j.evicted += n
			// Mirror live so the serving layer's memory guard can read
			// buffered state without waiting for Drain; sweeps are
			// amortized, so the shared atomic sees one add per sweep.
			j.e.stats.Evicted.Add(n)
		}
	}
}

// readMask returns the set of indices that may hold live probes for the
// key.
func (j *joiner) readMask(k tuple.Key) uint64 {
	if !j.e.opt.SharedProcessing {
		return 1 << uint(j.id)
	}
	return j.e.masks[j.e.partition(k)].Load()
}

// scanTeam visits probes of key k with lo <= ts <= hi across every index
// in the mask and returns the number visited (which equals the number
// matched: the time-travel index only surfaces in-window tuples).
func (j *joiner) scanTeam(mask uint64, k tuple.Key, lo, hi tuple.Time, fn func(ts tuple.Time, val float64) bool) int {
	visited := 0
	for m := mask; m != 0; m &= m - 1 {
		member := bits.TrailingZeros64(m)
		visited += j.e.js[member].ix.ScanWindow(k, lo, hi, fn)
	}
	return visited
}

// join computes one base tuple's window aggregate and emits the result.
func (j *joiner) join(base tuple.Tuple) {
	lo, hi := j.e.cfg.Window.Bounds(base.TS)
	mask := j.readMask(base.Key)

	var sp *trace.Span
	if j.e.srec != nil {
		sp = j.e.srec.SpanFor(base.Seq)
	}
	sp.StampDispatched(j.id)

	var st agg.State
	switch {
	case sp != nil:
		// Traced bases take the full-scan two-pass path so probe and
		// aggregate get distinct timings. The incremental cache is left
		// untouched: entries self-validate against their stored bounds
		// and mask, so the next untraced base simply slides from the
		// cached window as if this one had never happened.
		st = j.joinFull(base.Key, mask, lo, hi, sp)
	case j.e.opt.Incremental && j.e.cfg.Agg.Invertible():
		st = j.joinIncremental(base, mask, lo, hi)
	case j.e.opt.Incremental:
		st = j.joinSliding(base, mask, lo, hi)
	default:
		st = j.joinFull(base.Key, mask, lo, hi, nil)
	}
	j.emit(base, st, sp)
}

// joinFull recomputes the aggregate from scratch over the window.
func (j *joiner) joinFull(k tuple.Key, mask uint64, lo, hi tuple.Time, sp *trace.Span) agg.State {
	st := agg.NewState(j.e.cfg.Agg)
	engine.CountStateAlloc(j.e.arec, trace.StageAggregate)
	if j.e.cfg.Instrument || sp != nil {
		t0 := time.Now()
		scratchCap := cap(j.scratch)
		j.scratch = j.scratch[:0]
		visited := j.scanTeam(mask, k, lo, hi, func(ts tuple.Time, val float64) bool {
			j.scratch = append(j.scratch, tsval{ts, val})
			return true
		})
		engine.CountSliceGrowth(j.e.arec, trace.StageProbe, scratchCap, cap(j.scratch), engine.TSValAllocBytes)
		t1 := time.Now()
		for _, p := range j.scratch {
			st.AddAt(p.ts, p.val)
		}
		t2 := time.Now()
		if j.e.cfg.Instrument {
			bd := &j.e.stats.Breakdown[j.id]
			bd.Lookup += t1.Sub(t0)
			bd.Match += t2.Sub(t1)
			j.e.stats.Effect[j.id].Observe(int64(len(j.scratch)), int64(visited))
		}
		sp.Add(trace.StageProbe, t1.Sub(t0))
		sp.Add(trace.StageAggregate, t2.Sub(t1))
		return st
	}
	j.scanTeam(mask, k, lo, hi, func(ts tuple.Time, val float64) bool {
		st.AddAt(ts, val)
		return true
	})
	return st
}

// joinIncremental slides the key's cached window aggregate to the new
// bounds, adding and subtracting only the edge deltas; it falls back to a
// full scan when there is no usable cache (first window of a key, no
// overlap, team change, or the cached left edge has been evicted past).
func (j *joiner) joinIncremental(base tuple.Tuple, mask uint64, lo, hi tuple.Time) agg.State {
	entry := j.inc[base.Key]
	usable := entry != nil &&
		entry.mask == mask &&
		lo <= entry.hi && hi >= entry.lo && // windows overlap
		entry.lo >= j.evictBound(j.evictWM()) // subtraction range still physically readable

	if !usable {
		st := j.joinFull(base.Key, mask, lo, hi, nil)
		if entry == nil {
			entry = &incEntry{}
			j.inc[base.Key] = entry
		}
		entry.lo, entry.hi, entry.mask, entry.st = lo, hi, mask, st
		return st
	}

	st := &entry.st
	// Left edge.
	if lo > entry.lo {
		j.scanTeam(mask, base.Key, entry.lo, lo-1, func(_ tuple.Time, val float64) bool {
			st.Remove(val)
			return true
		})
	} else if lo < entry.lo {
		j.scanTeam(mask, base.Key, lo, entry.lo-1, func(_ tuple.Time, val float64) bool {
			st.Add(val)
			return true
		})
	}
	// Right edge.
	if hi > entry.hi {
		j.scanTeam(mask, base.Key, entry.hi+1, hi, func(_ tuple.Time, val float64) bool {
			st.Add(val)
			return true
		})
	} else if hi < entry.hi {
		j.scanTeam(mask, base.Key, hi+1, entry.hi, func(_ tuple.Time, val float64) bool {
			st.Remove(val)
			return true
		})
	}
	entry.lo, entry.hi = lo, hi
	if j.e.cfg.Instrument {
		// Incremental scans only touch in-window edges; effectiveness
		// stays 1 by construction, so record the join as fully
		// effective.
		j.e.stats.Effect[j.id].Observe(1, 1)
	}
	return entry.st
}

// joinSliding is the incremental path for non-invertible operators: a
// two-stacks sliding window per (joiner, key) absorbs the new right edge
// and expels the stale left edge in amortized O(1) per entry. Windows must
// move forward; a regression, team change, or interior late insert rebuilds
// from a full scan.
func (j *joiner) joinSliding(base tuple.Tuple, mask uint64, lo, hi tuple.Time) agg.State {
	entry := j.inc[base.Key]
	usable := entry != nil &&
		entry.slide != nil &&
		entry.mask == mask &&
		lo >= entry.lo && hi >= entry.hi

	if !usable {
		if entry == nil {
			entry = &incEntry{}
			j.inc[base.Key] = entry
		}
		if entry.slide == nil {
			entry.slide = agg.NewSliding(j.e.cfg.Agg)
		} else {
			entry.slide.Reset()
		}
		entry.late = entry.late[:0]
		j.pushSorted(entry.slide, mask, base.Key, lo, hi)
	} else {
		if hi > entry.hi {
			j.pushSorted(entry.slide, mask, base.Key, entry.hi+1, hi)
		}
		entry.slide.PopBefore(lo)
		// Slide the late buffer too.
		keep := entry.late[:0]
		for _, p := range entry.late {
			if p.ts >= lo {
				keep = append(keep, p)
			}
		}
		entry.late = keep
	}
	entry.lo, entry.hi, entry.mask = lo, hi, mask
	st := entry.slide.Aggregate()
	for _, p := range entry.late {
		st.AddAt(p.ts, p.val)
	}
	return st
}

// pushSorted scans [lo, hi] across the team indices and pushes the entries
// into the sliding window in timestamp order. A single-member mask scans in
// order directly; a multi-member merge is nearly sorted (each member is
// sorted), so an allocation-free insertion sort beats sort.Slice on the
// hot path.
func (j *joiner) pushSorted(s *agg.Sliding, mask uint64, k tuple.Key, lo, hi tuple.Time) {
	if mask&(mask-1) == 0 {
		member := bits.TrailingZeros64(mask)
		j.e.js[member].ix.ScanWindow(k, lo, hi, func(ts tuple.Time, val float64) bool {
			s.Push(ts, val)
			return true
		})
		return
	}
	pairsCap := cap(j.pairs)
	j.pairs = j.pairs[:0]
	j.scanTeam(mask, k, lo, hi, func(ts tuple.Time, val float64) bool {
		j.pairs = append(j.pairs, tsval{ts, val})
		return true
	})
	engine.CountSliceGrowth(j.e.arec, trace.StageProbe, pairsCap, cap(j.pairs), engine.TSValAllocBytes)
	for i := 1; i < len(j.pairs); i++ {
		p := j.pairs[i]
		q := i - 1
		for q >= 0 && j.pairs[q].ts > p.ts {
			j.pairs[q+1] = j.pairs[q]
			q--
		}
		j.pairs[q+1] = p
	}
	for _, p := range j.pairs {
		s.Push(p.ts, p.val)
	}
}

func (j *joiner) emit(base tuple.Tuple, st agg.State, sp *trace.Span) {
	sp.StampJoined()
	j.e.stats.Results.Add(1)
	j.e.sink.Emit(j.id, tuple.Result{
		BaseTS:  base.TS,
		Key:     base.Key,
		BaseSeq: base.Seq,
		Agg:     st.Value(),
		Matches: st.Count(),
	})
	if j.e.lrec != nil && !base.Arrival.IsZero() {
		j.e.lrec.Record(j.id, time.Since(base.Arrival))
	}
}

// CrossNodeShareAgainst evaluates the engine's final schedule against a
// hypothetical NUMA topology (experimentation helper: it quantifies the
// remote reads a topology-blind schedule would cause). Call after Drain.
func (e *Engine) CrossNodeShareAgainst(topology []int) float64 {
	return sched.CrossNodeShare(e.schedule, e.bal.Counts, topology, e.cfg.Joiners)
}
