package scaleoij

import (
	"math"
	"testing"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/metrics"
	"oij/internal/refjoin"
	"oij/internal/sched"
	"oij/internal/tuple"
	"oij/internal/window"
	"oij/internal/workload"
)

func replay(e engine.Engine, tuples []tuple.Tuple) {
	e.Start()
	for _, t := range tuples {
		e.Ingest(t)
	}
	e.Drain()
}

func gen(t testing.TB, n, keys int, w window.Spec, orderedBase bool) []tuple.Tuple {
	t.Helper()
	wl := workload.Config{
		Name: "scale-test", N: n, EventRate: 1_000_000, Keys: keys,
		BaseShare: 0.5, Window: w, Disorder: w.Lateness,
		OrderedBase: orderedBase, Seed: 33,
	}
	ts, err := wl.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestOptionsNormalization(t *testing.T) {
	o := Options{DynamicSchedule: true}.withDefaults()
	if !o.SharedProcessing {
		t.Fatal("DynamicSchedule did not imply SharedProcessing")
	}
	if o.RescheduleEvery <= 0 {
		t.Fatal("RescheduleEvery default missing")
	}
	d := Default()
	if !d.SharedProcessing || !d.DynamicSchedule || !d.Incremental {
		t.Fatalf("Default() = %+v", d)
	}
}

func TestTooManyJoinersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for joiners > mask width")
		}
	}()
	New(engine.Config{Joiners: sched.MaxJoiners + 1, Window: window.Spec{Pre: 1}}, Default(), engine.NullSink{})
}

// TestIncrementalEqualsFullWatermark: with deterministic watermark-mode
// semantics, the incremental engine must produce bit-equal match counts
// and numerically equal aggregates to the non-incremental one.
func TestIncrementalEqualsFullWatermark(t *testing.T) {
	w := window.Spec{Pre: 2000, Fol: 500, Lateness: 300}
	stream := gen(t, 40_000, 12, w, false)
	results := map[bool]map[uint64]tuple.Result{}
	for _, inc := range []bool{false, true} {
		o := Default()
		o.Incremental = inc
		sink := &engine.CollectSink{}
		e := New(engine.Config{Joiners: 4, Window: w, Agg: agg.Sum, Mode: engine.OnWatermark}, o, sink)
		replay(e, stream)
		results[inc] = sink.ByBaseSeq()
	}
	if len(results[true]) != len(results[false]) {
		t.Fatalf("cardinality: inc %d vs full %d", len(results[true]), len(results[false]))
	}
	for seq, full := range results[false] {
		inc := results[true][seq]
		if inc.Matches != full.Matches || math.Abs(inc.Agg-full.Agg) > 1e-6*(1+math.Abs(full.Agg)) {
			t.Fatalf("base %d: incremental %+v vs full %+v", seq, inc, full)
		}
	}
}

// TestArrivalIncrementalExactSingleJoiner: with one joiner, arrival-mode
// incremental is exact even under disorder (interior late probes fold into
// the cached aggregate).
func TestArrivalIncrementalExactSingleJoiner(t *testing.T) {
	w := window.Spec{Pre: 1500, Fol: 0, Lateness: 400}
	stream := gen(t, 30_000, 6, w, false) // disordered bases too
	want := refjoin.ByBaseSeq(refjoin.Arrival(stream, w, agg.Sum))

	o := Options{Incremental: true}
	sink := &engine.CollectSink{}
	e := New(engine.Config{Joiners: 1, Window: w, Agg: agg.Sum, Mode: engine.OnArrival}, o, sink)
	replay(e, stream)
	got := sink.ByBaseSeq()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for seq, wr := range want {
		g := got[seq]
		if g.Matches != wr.Matches || math.Abs(g.Agg-wr.Agg) > 1e-6*(1+math.Abs(wr.Agg)) {
			t.Fatalf("base %d: got %+v want %+v", seq, g, wr)
		}
	}
}

// TestNonInvertibleSlidingExact: min/max run through the two-stacks
// sliding path when Incremental is requested and stay exact.
func TestNonInvertibleSlidingExact(t *testing.T) {
	w := window.Spec{Pre: 1000, Fol: 0, Lateness: 100}
	stream := gen(t, 20_000, 5, w, true)
	want := refjoin.ByBaseSeq(refjoin.EventTime(stream, w, agg.Max))

	sink := &engine.CollectSink{}
	e := New(engine.Config{Joiners: 3, Window: w, Agg: agg.Max, Mode: engine.OnWatermark}, Default(), sink)
	replay(e, stream)
	for seq, wr := range want {
		g := sink.ByBaseSeq()[seq]
		if g.Matches != wr.Matches {
			t.Fatalf("base %d: got %+v want %+v", seq, g, wr)
		}
		if wr.Matches > 0 && math.Abs(g.Agg-wr.Agg) > 1e-9 {
			t.Fatalf("base %d: max %g want %g", seq, g.Agg, wr.Agg)
		}
	}
}

// TestSlidingArrivalSingleJoiner: arrival-mode min over an ordered-base
// stream with late probes; interior inserts force sliding rebuilds, which
// must stay exact against the arrival reference.
func TestSlidingArrivalSingleJoiner(t *testing.T) {
	w := window.Spec{Pre: 1200, Fol: 0, Lateness: 300}
	stream := gen(t, 25_000, 5, w, true)
	want := refjoin.ByBaseSeq(refjoin.Arrival(stream, w, agg.Min))

	sink := &engine.CollectSink{}
	e := New(engine.Config{Joiners: 1, Window: w, Agg: agg.Min, Mode: engine.OnArrival}, Options{Incremental: true}, sink)
	replay(e, stream)
	got := sink.ByBaseSeq()
	for seq, wr := range want {
		g := got[seq]
		if g.Matches != wr.Matches {
			t.Fatalf("base %d: %d matches, want %d", seq, g.Matches, wr.Matches)
		}
		if wr.Matches > 0 && math.Abs(g.Agg-wr.Agg) > 1e-9 {
			t.Fatalf("base %d: min %g want %g", seq, g.Agg, wr.Agg)
		}
	}
}

// TestDynamicScheduleBalances: on a tiny key set the dynamic schedule must
// spread tuples far more evenly than the static baseline.
func TestDynamicScheduleBalances(t *testing.T) {
	w := window.Spec{Pre: 1000, Fol: 0, Lateness: 100}
	stream := gen(t, 150_000, 2, w, true)

	unb := map[bool]float64{}
	for _, dyn := range []bool{false, true} {
		o := Options{SharedProcessing: true, DynamicSchedule: dyn, RescheduleEvery: 8192}
		e := New(engine.Config{Joiners: 8, Window: w, Agg: agg.Sum}, o, engine.NullSink{})
		replay(e, stream)
		unb[dyn] = metrics.Unbalancedness(e.Stats().Loads())
		if dyn && e.Stats().Extra["reschedules"] == 0 {
			t.Fatal("dynamic schedule never rescheduled")
		}
	}
	if unb[true] >= unb[false]/2 {
		t.Fatalf("dynamic unbalancedness %.3f not well below static %.3f", unb[true], unb[false])
	}
}

// TestSharedProcessingCorrectUnderRebalance: results stay exact while the
// schedule is actively changing (watermark mode, aggressive rescheduling).
func TestSharedProcessingCorrectUnderRebalance(t *testing.T) {
	w := window.Spec{Pre: 800, Fol: 0, Lateness: 150}
	stream := gen(t, 60_000, 3, w, false)
	want := refjoin.ByBaseSeq(refjoin.EventTime(stream, w, agg.Sum))

	o := Default()
	o.RescheduleEvery = 2048 // rebalance ~30 times during the run
	sink := &engine.CollectSink{}
	e := New(engine.Config{Joiners: 6, Window: w, Agg: agg.Sum, Mode: engine.OnWatermark}, o, sink)
	replay(e, stream)

	got := sink.ByBaseSeq()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	bad := 0
	for seq, wr := range want {
		g := got[seq]
		if g.Matches != wr.Matches || math.Abs(g.Agg-wr.Agg) > 1e-6*(1+math.Abs(wr.Agg)) {
			bad++
		}
	}
	if bad > 0 {
		t.Fatalf("%d/%d results wrong under active rebalancing", bad, len(want))
	}
}

// TestEvictionRuns: long stream with small windows must evict.
func TestEvictionRuns(t *testing.T) {
	w := window.Spec{Pre: 500, Fol: 0, Lateness: 100}
	stream := gen(t, 120_000, 8, w, true)
	e := New(engine.Config{Joiners: 2, Window: w, Agg: agg.Sum}, Default(), engine.NullSink{})
	replay(e, stream)
	if e.Stats().Evicted.Load() == 0 {
		t.Fatal("no eviction over a long stream")
	}
	var live int
	for _, j := range e.js {
		live += j.ix.Len()
	}
	probes := len(stream) - workload.CountBase(stream)
	if live > probes/10 {
		t.Fatalf("index retains %d of %d probes", live, probes)
	}
}

// TestEffectivenessIsOne: the time-travel index never visits out-of-window
// tuples, so instrumented effectiveness is 1 regardless of lateness.
func TestEffectivenessIsOne(t *testing.T) {
	w := window.Spec{Pre: 500, Fol: 0, Lateness: 5000} // lateness >> window
	stream := gen(t, 40_000, 8, w, true)
	cfg := engine.Config{Joiners: 2, Window: w, Agg: agg.Sum, Instrument: true}
	o := Default()
	o.Incremental = false // isolate the index property
	e := New(cfg, o, engine.NullSink{})
	replay(e, stream)
	if eff := e.Stats().MergedEffectiveness(); eff < 0.999 {
		t.Fatalf("effectiveness = %g, want 1 (index scans only in-window)", eff)
	}
}

// TestLastValueExact: OpenMLDB's LAST JOIN semantics (most recent matching
// row) through the two-stacks sliding path, against the reference.
func TestLastValueExact(t *testing.T) {
	w := window.Spec{Pre: 1000, Fol: 0, Lateness: 0}
	wl := workload.Config{
		Name: "last-test", N: 20_000, EventRate: 400_000, Keys: 6,
		BaseShare: 0.5, Window: w, Disorder: 0, Seed: 77,
	}
	stream, err := wl.Generate()
	if err != nil {
		t.Fatal(err)
	}
	want := refjoin.ByBaseSeq(refjoin.EventTime(stream, w, agg.Last))

	sink := &engine.CollectSink{}
	e := New(engine.Config{Joiners: 3, Window: w, Agg: agg.Last, Mode: engine.OnWatermark}, Default(), sink)
	replay(e, stream)
	got := sink.ByBaseSeq()
	for seq, wr := range want {
		g := got[seq]
		if g.Matches != wr.Matches {
			t.Fatalf("base %d: %d matches, want %d", seq, g.Matches, wr.Matches)
		}
		if wr.Matches > 0 && g.Agg != wr.Agg {
			t.Fatalf("base %d: last = %g, want %g", seq, g.Agg, wr.Agg)
		}
	}
}
