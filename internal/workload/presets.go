package workload

import (
	"oij/internal/tuple"
	"oij/internal/window"
)

// Time-unit helpers (event time is in µs).
const (
	us tuple.Time = 1
	ms tuple.Time = 1_000
	s  tuple.Time = 1_000_000
)

// The probe-stream shares below are derived from Table II's published
// matches-per-window figures: share = matches·u / (|w|·rate), so the
// generated streams reproduce the buffer sizes and scan lengths each
// algorithm is sensitive to. See DESIGN.md (substitutions).

// A returns Workload A (Table II): logistics, 120 K/s, 5 keys, |w| = 1 s,
// l = 1 s, ≈4000 matching elements per window. Few keys make it the
// unbalanced-partition stress case (Figs. 4a, 13a).
func A(n int) Config {
	return Config{
		Name:        "A",
		N:           n,
		EventRate:   120_000,
		ArrivalRate: 120_000,
		Keys:        5,
		BaseShare:   1 - 1.0/6, // probe rate 20 K/s -> 4000 matches/window
		Window:      window.Spec{Pre: 1 * s, Fol: 0, Lateness: 1 * s},
		Disorder:    1 * s,
		OrderedBase: true,
		Seed:        42,
	}
}

// B returns Workload B (Table II): retail, 200 K/s, 111 keys, huge window,
// ≈6000 matching elements per window — the match/aggregation-dominated
// case where incremental processing pays (Figs. 4b, 18).
//
// Table II's literal times (|w| = 150 s at 200 K/s) need ≈32 M tuples
// before a single window fills, so the preset compresses event time while
// preserving every quantity the algorithms are sensitive to: the key
// count, the 6000 matches per window (window population == aggregation
// work per base tuple), and the window:lateness ratio; steady state is
// reached within ~1 M tuples. See DESIGN.md (substitutions).
func B(n int) Config {
	return Config{
		Name:        "B",
		N:           n,
		EventRate:   200_000,
		ArrivalRate: 200_000,
		Keys:        111,
		BaseShare:   1 - 0.666, // probe rate 133.2 K/s -> 6000 matches/window
		Window:      window.Spec{Pre: 5 * s, Fol: 0, Lateness: 150 * ms},
		Disorder:    150 * ms,
		OrderedBase: true,
		Seed:        43,
	}
}

// C returns Workload C (Table II): retail, unpaced arrival ("∞"), 45 keys,
// medium window, ≈300 matching elements per window, with lateness an order
// of magnitude beyond the window — the lookup-dominated case where the
// time-travel index pays (Figs. 4c, 19).
//
// As with B, Table II's literal times (l = 100 s) would need >10 M tuples
// per run to populate the lateness range, so event time is compressed
// preserving the key count, the 300 matches per window, and the paper's
// defining ratio for this workload: buffered-but-out-of-window elements
// ≈ 13× the in-window matches (≈3900 lateness-range elements per key).
func C(n int) Config {
	return Config{
		Name:        "C",
		N:           n,
		EventRate:   200_000,
		ArrivalRate: 0, // unpaced: replay at full speed
		Keys:        45,
		BaseShare:   1 - 0.135, // probe rate 27 K/s -> 300 matches/window
		Window:      window.Spec{Pre: 500 * ms, Fol: 0, Lateness: 6500 * ms},
		Disorder:    6500 * ms,
		OrderedBase: true,
		Seed:        44,
	}
}

// D returns Workload D (Table II): logistics, 15 K/s, 5 keys, |w| = 1 s,
// l = 2 s — Workload A's distribution at a low arrival rate, where even few
// cores keep up (Figs. 4d, 20).
func D(n int) Config {
	return Config{
		Name:        "D",
		N:           n,
		EventRate:   15_000,
		ArrivalRate: 15_000,
		Keys:        5,
		BaseShare:   1 - 1.0/6,
		Window:      window.Spec{Pre: 1 * s, Fol: 0, Lateness: 2 * s},
		Disorder:    2 * s,
		OrderedBase: true,
		Seed:        45,
	}
}

// DefaultSynthetic returns the Table IV workload used by the sensitivity
// sweeps of §IV-B: u = 100 keys, |w| = 1000 µs, l = 100 µs, 16 joiners. The
// event rate is 1 M tuples/s so µs-scale windows hold a handful of matches.
func DefaultSynthetic(n int) Config {
	return Config{
		Name:        "synthetic-default",
		N:           n,
		EventRate:   1_000_000,
		ArrivalRate: 0,
		Keys:        100,
		BaseShare:   0.5,
		Window:      window.Spec{Pre: 1000 * us, Fol: 0, Lateness: 100 * us},
		Disorder:    100 * us,
		OrderedBase: true,
		Seed:        7,
	}
}

// TableV returns the Key-OIJ-favouring synthetic workload of Table V
// (Fig. 21): many keys (u = 1000), tiny window (100 µs) and tiny lateness
// (10 µs), where static key partitioning is already balanced and neither
// ordering nor incremental processing has anything to win.
func TableV(n int) Config {
	return Config{
		Name:        "synthetic-tableV",
		N:           n,
		EventRate:   1_000_000,
		ArrivalRate: 0,
		Keys:        1000,
		BaseShare:   0.5,
		Window:      window.Spec{Pre: 100 * us, Fol: 0, Lateness: 10 * us},
		Disorder:    10 * us,
		OrderedBase: true,
		Seed:        8,
	}
}

// Skewed returns the Fig. 14 workload: 10 000 keys (large enough to
// partition evenly even for Key-OIJ) with a random hot set rotating every
// rotation period, other parameters per Table IV.
func Skewed(n int) Config {
	c := DefaultSynthetic(n)
	c.Name = "synthetic-skewed"
	c.Keys = 10_000
	c.Hot = &HotRotation{Period: 100 * ms, HotKeys: 8, HotShare: 0.8}
	c.Seed = 9
	return c
}
