// Package workload synthesizes the input streams of every experiment in the
// paper. The four proprietary 4Paradigm workloads (Table II) are modelled by
// generators parameterized with the table's published characteristics —
// arrival rate, unique keys, window length, lateness, and matches per
// window — plus the synthetic sweeps of §IV-B (Table IV defaults) and the
// Key-OIJ-favouring workload of Table V. Fig. 14's rotating-hot-key stream
// is produced by the HotRotation option.
package workload

import (
	"fmt"
	"math/rand"

	"oij/internal/tuple"
	"oij/internal/window"
)

// HotRotation periodically concentrates traffic on a rotating random set of
// hot keys (Fig. 14's skewed stream): every Period µs of event time a fresh
// set of HotKeys keys is drawn and receives HotShare of all tuples.
type HotRotation struct {
	Period   tuple.Time // rotation period in event-time µs
	HotKeys  int        // size of the hot set
	HotShare float64    // fraction of tuples routed to the hot set
}

// Config fully describes a synthetic workload.
type Config struct {
	Name string

	// N is the total number of tuples to generate across both streams.
	N int

	// EventRate is the number of tuples per second of *event time*; it
	// fixes the density of timestamps and therefore how many tuples fall
	// in a window. It is always finite — Workload C's "∞" arrival rate
	// refers to replay pacing, not timestamp density.
	EventRate float64

	// ArrivalRate is the replay pacing in tuples per wall-clock second;
	// 0 means unpaced (replay at full speed), the paper's "∞".
	ArrivalRate float64

	// Keys is the number of unique keys u.
	Keys int

	// ZipfS skews the key popularity (0 or <=1 = uniform; >1 = Zipf with
	// that exponent).
	ZipfS float64

	// BaseShare is the fraction of tuples belonging to the base stream S;
	// the rest form the probe stream R.
	BaseShare float64

	// Window is the join window and lateness configuration.
	Window window.Spec

	// Disorder is the maximum event-time displacement of a tuple
	// relative to in-order arrival, in µs. It must not exceed
	// Window.Lateness or results would be inexact; presets set it equal
	// to the lateness, matching the paper's "lateness represents the
	// degree of disorder of the dataset".
	Disorder tuple.Time

	// OrderedBase keeps the base stream in event-time order and applies
	// Disorder only to probe tuples. This models OpenMLDB's serving
	// reality — a base tuple is a feature request stamped when it
	// reaches the system, so base timestamps are monotone, while the
	// joined data (orders, transactions, device events) arrives late.
	// All presets enable it.
	OrderedBase bool

	// Hot, when non-nil, enables rotating hot-key skew.
	Hot *HotRotation

	// Seed makes generation deterministic.
	Seed int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("workload %s: N must be positive, got %d", c.Name, c.N)
	case c.EventRate <= 0:
		return fmt.Errorf("workload %s: EventRate must be positive", c.Name)
	case c.Keys <= 0:
		return fmt.Errorf("workload %s: Keys must be positive", c.Name)
	case c.BaseShare <= 0 || c.BaseShare >= 1:
		return fmt.Errorf("workload %s: BaseShare must be in (0,1), got %g", c.Name, c.BaseShare)
	case c.Disorder < 0:
		return fmt.Errorf("workload %s: negative disorder", c.Name)
	case c.Disorder > c.Window.Lateness:
		return fmt.Errorf("workload %s: disorder %d exceeds lateness %d (results would be inexact)",
			c.Name, c.Disorder, c.Window.Lateness)
	}
	if err := c.Window.Validate(); err != nil {
		return fmt.Errorf("workload %s: %w", c.Name, err)
	}
	return nil
}

// MatchesPerWindow estimates the expected number of probe tuples matching
// one base tuple's window under uniform keys — the quantity Table II
// reports per workload.
func (c Config) MatchesPerWindow() float64 {
	probeRate := c.EventRate * (1 - c.BaseShare) / float64(c.Keys)
	return probeRate * float64(c.Window.Len()) / 1e6
}

// LatenessElements estimates the extra probe tuples buffered per key purely
// to cover the lateness range (Workload C's "extra 10,000 elements").
func (c Config) LatenessElements() float64 {
	probeRate := c.EventRate * (1 - c.BaseShare) / float64(c.Keys)
	return probeRate * float64(c.Window.Lateness) / 1e6
}

// Generate produces the tuple sequence in arrival order.
//
// Tuple i has a nominal event timestamp i/EventRate; a jitter uniform in
// [0, Disorder] is subtracted so that arrival order deviates from event
// order by at most Disorder µs. Because every timestamp satisfies
// ts_j >= nominal_j - Disorder and nominal is monotone, the watermark
// maxSeenTS - Lateness never overtakes a future tuple, so engines that
// evict on it are exact.
func (c Config) Generate() ([]tuple.Tuple, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	var zipf *rand.Zipf
	if c.ZipfS > 1 {
		zipf = rand.NewZipf(rng, c.ZipfS, 1, uint64(c.Keys-1))
	}

	tuples := make([]tuple.Tuple, c.N)
	usPerTuple := 1e6 / c.EventRate
	var baseSeq, probeSeq uint64

	hotSet := make([]tuple.Key, 0)
	var nextRotation tuple.Time
	for i := 0; i < c.N; i++ {
		nominal := tuple.Time(float64(i) * usPerTuple)

		var key tuple.Key
		switch {
		case c.Hot != nil:
			if nominal >= nextRotation {
				hotSet = hotSet[:0]
				for len(hotSet) < c.Hot.HotKeys {
					hotSet = append(hotSet, tuple.Key(rng.Intn(c.Keys)))
				}
				nextRotation = nominal + c.Hot.Period
			}
			if rng.Float64() < c.Hot.HotShare {
				key = hotSet[rng.Intn(len(hotSet))]
			} else {
				key = tuple.Key(rng.Intn(c.Keys))
			}
		case zipf != nil:
			key = tuple.Key(zipf.Uint64())
		default:
			key = tuple.Key(rng.Intn(c.Keys))
		}

		t := tuple.Tuple{Key: key, Val: rng.Float64() * 100}
		if rng.Float64() < c.BaseShare {
			t.Side = tuple.Base
			t.Seq = baseSeq
			baseSeq++
		} else {
			t.Side = tuple.Probe
			t.Seq = probeSeq
			probeSeq++
		}
		ts := nominal
		if c.Disorder > 0 && !(c.OrderedBase && t.Side == tuple.Base) {
			ts -= rng.Int63n(c.Disorder + 1)
			if ts < 0 {
				ts = 0
			}
		}
		t.TS = ts
		tuples[i] = t
	}
	return tuples, nil
}

// CountBase returns how many tuples in a generated sequence are base-side.
func CountBase(ts []tuple.Tuple) int {
	n := 0
	for i := range ts {
		if ts[i].Side == tuple.Base {
			n++
		}
	}
	return n
}
