package workload

import (
	"math"
	"testing"
	"testing/quick"

	"oij/internal/tuple"
	"oij/internal/window"
)

func testConfig(n int) Config {
	return Config{
		Name:      "t",
		N:         n,
		EventRate: 1_000_000,
		Keys:      10,
		BaseShare: 0.5,
		Window:    window.Spec{Pre: 1000, Fol: 0, Lateness: 200},
		Disorder:  200,
		Seed:      1,
	}
}

func TestValidate(t *testing.T) {
	ok := testConfig(100)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, mut := range map[string]func(*Config){
		"zero N":              func(c *Config) { c.N = 0 },
		"zero rate":           func(c *Config) { c.EventRate = 0 },
		"zero keys":           func(c *Config) { c.Keys = 0 },
		"base share 0":        func(c *Config) { c.BaseShare = 0 },
		"base share 1":        func(c *Config) { c.BaseShare = 1 },
		"negative disorder":   func(c *Config) { c.Disorder = -1 },
		"disorder > lateness": func(c *Config) { c.Disorder = c.Window.Lateness + 1 },
		"empty window":        func(c *Config) { c.Window = window.Spec{} },
	} {
		c := testConfig(100)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: validation passed", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := testConfig(5000).Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := testConfig(5000).Generate()
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tuple %d differs between generations", i)
		}
	}
}

func TestGenerateProperties(t *testing.T) {
	c := testConfig(50_000)
	ts, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != c.N {
		t.Fatalf("generated %d tuples", len(ts))
	}
	var maxSeen tuple.Time
	var baseSeq, probeSeq uint64
	keys := map[tuple.Key]bool{}
	bases := 0
	for i, tp := range ts {
		if tp.TS < 0 {
			t.Fatalf("negative timestamp at %d", i)
		}
		// Disorder bound: ts >= nominal - Disorder, nominal monotone.
		nominal := tuple.Time(float64(i) * 1e6 / c.EventRate)
		if tp.TS > nominal || tp.TS < nominal-c.Disorder {
			t.Fatalf("tuple %d ts %d outside [nominal-disorder, nominal] = [%d, %d]",
				i, tp.TS, nominal-c.Disorder, nominal)
		}
		// Watermark safety: maxSeen - lateness never overtakes.
		if tp.TS < maxSeen-c.Window.Lateness {
			t.Fatalf("tuple %d violates lateness bound", i)
		}
		if tp.TS > maxSeen {
			maxSeen = tp.TS
		}
		if int(tp.Key) >= c.Keys {
			t.Fatalf("key %d out of range", tp.Key)
		}
		keys[tp.Key] = true
		switch tp.Side {
		case tuple.Base:
			if tp.Seq != baseSeq {
				t.Fatalf("base seq %d, want %d", tp.Seq, baseSeq)
			}
			baseSeq++
			bases++
		case tuple.Probe:
			if tp.Seq != probeSeq {
				t.Fatalf("probe seq %d, want %d", tp.Seq, probeSeq)
			}
			probeSeq++
		default:
			t.Fatalf("unexpected side %v", tp.Side)
		}
	}
	if len(keys) != c.Keys {
		t.Fatalf("saw %d distinct keys, want %d", len(keys), c.Keys)
	}
	share := float64(bases) / float64(c.N)
	if math.Abs(share-c.BaseShare) > 0.02 {
		t.Fatalf("base share %g, want ~%g", share, c.BaseShare)
	}
	if CountBase(ts) != bases {
		t.Fatal("CountBase mismatch")
	}
}

func TestMatchesPerWindowEstimate(t *testing.T) {
	// Empirically count matches and compare with the analytic estimate.
	c := testConfig(200_000)
	c.Disorder = 0
	c.Window.Lateness = 0
	c.Window.Pre = 2000
	ts, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	perKey := map[tuple.Key][]tuple.Time{}
	for _, tp := range ts {
		if tp.Side == tuple.Probe {
			perKey[tp.Key] = append(perKey[tp.Key], tp.TS)
		}
	}
	var matches, basesSeen float64
	for _, tp := range ts {
		if tp.Side != tuple.Base || tp.TS < c.Window.Pre {
			continue
		}
		basesSeen++
		for _, pts := range perKey[tp.Key] {
			if pts >= tp.TS-c.Window.Pre && pts <= tp.TS {
				matches++
			}
		}
	}
	got := matches / basesSeen
	want := c.MatchesPerWindow()
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("measured %g matches/window, estimate %g", got, want)
	}
}

func TestZipfSkew(t *testing.T) {
	c := testConfig(50_000)
	c.ZipfS = 1.5
	ts, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[tuple.Key]int{}
	for _, tp := range ts {
		counts[tp.Key]++
	}
	// Key 0 must dominate under Zipf.
	if counts[0] < len(ts)/4 {
		t.Fatalf("zipf head key has only %d/%d tuples", counts[0], len(ts))
	}
}

func TestHotRotation(t *testing.T) {
	c := testConfig(100_000)
	c.Keys = 1000
	c.Hot = &HotRotation{Period: 10_000, HotKeys: 4, HotShare: 0.9}
	ts, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Within one period, the top-4 keys should hold ~90% of tuples; the
	// hot set must change across periods.
	period := func(lo, hi int) map[tuple.Key]int {
		m := map[tuple.Key]int{}
		for _, tp := range ts[lo:hi] {
			m[tp.Key]++
		}
		return m
	}
	topShare := func(m map[tuple.Key]int, k int) float64 {
		var all []int
		total := 0
		for _, n := range m {
			all = append(all, n)
			total += n
		}
		// selection of top k
		top := 0
		for i := 0; i < k && len(all) > 0; i++ {
			best := 0
			for j, v := range all {
				if v > all[best] {
					best = j
				}
			}
			top += all[best]
			all = append(all[:best], all[best+1:]...)
		}
		return float64(top) / float64(total)
	}
	m1 := period(0, 9000)
	if s := topShare(m1, 4); s < 0.7 {
		t.Fatalf("hot share in period 1 = %g", s)
	}
}

func TestPresetsValid(t *testing.T) {
	for _, c := range []Config{A(1000), B(1000), C(1000), D(1000), DefaultSynthetic(1000), TableV(1000), Skewed(1000)} {
		if err := c.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", c.Name, err)
		}
		if _, err := c.Generate(); err != nil {
			t.Errorf("preset %s failed to generate: %v", c.Name, err)
		}
	}
}

func TestPresetTableIICharacteristics(t *testing.T) {
	// The presets must reproduce Table II's matches-per-window figures.
	for _, c := range []struct {
		cfg  Config
		want float64
		tol  float64
	}{
		{A(1), 4000, 0.05},
		{B(1), 6000, 0.05},
		{C(1), 300, 0.05},
	} {
		got := c.cfg.MatchesPerWindow()
		if math.Abs(got-c.want)/c.want > c.tol {
			t.Errorf("%s: matches/window = %g, want ~%g", c.cfg.Name, got, c.want)
		}
	}
	if A(1).Keys != 5 || B(1).Keys != 111 || C(1).Keys != 45 || D(1).Keys != 5 {
		t.Error("preset key counts diverge from Table II")
	}
}

// TestQuickWatermarkSafety: for arbitrary valid configs, generation never
// violates the lateness bound (the property every engine's eviction
// correctness rests on).
func TestQuickWatermarkSafety(t *testing.T) {
	f := func(seed int64, keys, disorder uint8) bool {
		c := Config{
			Name:      "q",
			N:         2000,
			EventRate: 500_000,
			Keys:      int(keys%50) + 1,
			BaseShare: 0.5,
			Window:    window.Spec{Pre: 500, Fol: 0, Lateness: tuple.Time(disorder)},
			Disorder:  tuple.Time(disorder),
			Seed:      seed,
		}
		ts, err := c.Generate()
		if err != nil {
			return false
		}
		var maxSeen tuple.Time
		for _, tp := range ts {
			if tp.TS < maxSeen-c.Window.Lateness {
				return false
			}
			if tp.TS > maxSeen {
				maxSeen = tp.TS
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
