package pattern

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"oij/internal/tuple"
	"oij/internal/window"
)

// Scenario is a compiled profile: validated, trace preloaded, tenant slabs
// laid out. Compilation is side-effect free; streams are created on demand
// and each stream re-derives every random sub-stream from the profile
// seed, so all streams of one scenario yield the identical tuple sequence.
type Scenario struct {
	Profile Profile

	win     window.Spec
	durUS   int64
	tenants []tenantSlab
	keys    int

	// trace, when non-nil, is the preloaded replay source.
	trace []traceTuple
}

// tenantSlab is one tenant's contiguous key range with its cumulative
// weight for O(#tenants) weighted picks (tenant counts are tiny).
type tenantSlab struct {
	name   string
	cum    float64 // cumulative weight fraction, (0,1]
	offset int
	keys   int
}

// traceTuple is one preloaded trace record: the pacing instant in
// simulated µs plus the tuple fields (Side/Seq/Val assigned at stream
// time so the side draw stays on its own random stream).
type traceTuple struct {
	arrUS int64 // simulated arrival instant (gap-capped cumulative time)
	ts    tuple.Time
	key   tuple.Key
	val   float64
}

// Compile validates the profile and builds a Scenario. baseDir resolves a
// trace path (usually the profile file's directory).
func Compile(p Profile, baseDir string) (*Scenario, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sc := &Scenario{
		Profile: p,
		win:     p.Stream.Window(),
		durUS:   int64(secToUS(p.DurationS)),
		keys:    p.TotalKeys(),
	}
	if p.Stream.ZipfS != 0 && sc.keys < 2 {
		return nil, fmt.Errorf("pattern: profile %q: zipf needs at least 2 keys", p.Name)
	}
	var cum float64
	var total float64
	for _, t := range p.Tenants {
		total += t.Weight
	}
	offset := 0
	for _, t := range p.Tenants {
		cum += t.Weight / total
		sc.tenants = append(sc.tenants, tenantSlab{name: t.Name, cum: cum, offset: offset, keys: t.Keys})
		offset += t.Keys
	}
	if p.Trace != nil {
		path := p.Trace.Path
		if !filepath.IsAbs(path) {
			path = filepath.Join(baseDir, path)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("pattern: profile %q: opening trace: %w", p.Name, err)
		}
		defer f.Close()
		if err := sc.loadTrace(f); err != nil {
			return nil, err
		}
	}
	return sc, nil
}

// Window returns the join window the profile configures.
func (sc *Scenario) Window() window.Spec { return sc.win }

// DurationUS returns the simulated duration in µs.
func (sc *Scenario) DurationUS() int64 { return sc.durUS }

// IntervalUS returns the report interval in simulated µs.
func (sc *Scenario) IntervalUS() int64 { return int64(secToUS(sc.Profile.IntervalS)) }

// TimeScale returns the wall-clock compression factor (default 1).
func (sc *Scenario) TimeScale() float64 {
	if sc.Profile.TimeScale <= 0 {
		return 1
	}
	return sc.Profile.TimeScale
}

// Stream iterates the scenario's tuple sequence in arrival order. Not safe
// for concurrent use; create one stream per consumer.
type Stream struct {
	sc *Scenario

	// synthetic state
	simUS    float64
	phaseIdx int
	rngSide  *rng
	rngKey   *rng
	rngVal   *rng
	rngJit   *rng
	rngTen   *rng
	rngHot   *rng
	zipf     *rand.Zipf

	// trace state
	tracePos int

	baseSeq  uint64
	probeSeq uint64
	done     bool
}

// NewStream starts a fresh deterministic iteration of the scenario.
func (sc *Scenario) NewStream() *Stream {
	seed := sc.Profile.Seed
	s := &Stream{
		sc:      sc,
		rngSide: newRNG(seed, "side"),
		rngKey:  newRNG(seed, "key"),
		rngVal:  newRNG(seed, "val"),
		rngJit:  newRNG(seed, "jitter"),
		rngTen:  newRNG(seed, "tenant"),
		rngHot:  newRNG(seed, "hot"),
	}
	if z := sc.Profile.Stream.ZipfS; z != 0 {
		s.zipf = rand.NewZipf(rand.New(newRNG(seed, "zipf")), z, 1, uint64(sc.keys-1))
	}
	return s
}

// maxIdleStepUS bounds how far the synthetic cursor strides through a
// dead zone (rate ≈ 0, e.g. a diurnal floor of 0 or a gap between phases)
// per iteration, so streams over silent stretches always terminate.
const maxIdleStepUS = 100e6 // 100 simulated seconds

// minRateTPS is the rate below which the stream emits nothing and strides
// instead; one tuple per maxIdleStepUS would be below it anyway.
const minRateTPS = 1e-5

// Next returns the next tuple, its simulated arrival instant in µs, and
// whether the stream is still live. The returned sequence is a pure
// function of the profile: no wall clock, no global randomness.
func (s *Stream) Next() (tuple.Tuple, int64, bool) {
	if s.done {
		return tuple.Tuple{}, 0, false
	}
	if s.sc.trace != nil {
		return s.nextTrace()
	}
	return s.nextSynthetic()
}

// nextSynthetic advances the rate-integrating cursor to the next emission.
func (s *Stream) nextSynthetic() (tuple.Tuple, int64, bool) {
	p := &s.sc.Profile
	for {
		// Find the phase covering the cursor, striding over gaps.
		for s.phaseIdx < len(p.Phases) && s.simUS >= secToUSf(p.Phases[s.phaseIdx].EndS) {
			s.phaseIdx++
		}
		if s.phaseIdx >= len(p.Phases) || s.simUS >= float64(s.sc.durUS) {
			s.done = true
			return tuple.Tuple{}, 0, false
		}
		ph := &p.Phases[s.phaseIdx]
		if start := secToUSf(ph.StartS); s.simUS < start {
			s.simUS = start
		}

		rate := s.rateAt(ph, s.simUS)
		if rate < minRateTPS {
			s.simUS += maxIdleStepUS
			continue
		}

		arr := int64(math.Round(s.simUS))
		t := s.emit(ph, arr)
		s.simUS += 1e6 / rate
		return t, arr, true
	}
}

// rateAt evaluates the instantaneous rate (tuples per simulated second) at
// cursor position usf inside phase ph.
func (s *Stream) rateAt(ph *Phase, usf float64) float64 {
	p := &s.sc.Profile
	rate := p.Stream.RateTPS
	if ph.RateFactor > 0 {
		rate *= ph.RateFactor
	}
	tS := usf / 1e6
	for i := range ph.Modulators {
		m := &ph.Modulators[i]
		switch m.Kind {
		case ModDiurnal:
			// Raised cosine: 1 at PeakS, Floor half a period away.
			c := 0.5 * (1 + math.Cos(2*math.Pi*(tS-m.PeakS)/m.PeriodS))
			rate *= m.Floor + (1-m.Floor)*c
		case ModFlash:
			rate *= flashFactor(m, tS)
		}
	}
	return rate
}

// flashFactor evaluates the spike envelope at simulated second tS.
func flashFactor(m *Modulator, tS float64) float64 {
	d := tS - m.AtS
	switch {
	case d < 0 || d > m.RampS+m.HoldS+m.DecayS:
		return 1
	case d < m.RampS:
		return 1 + (m.PeakFactor-1)*(d/m.RampS)
	case d < m.RampS+m.HoldS:
		return m.PeakFactor
	default:
		if m.DecayS == 0 {
			return 1
		}
		frac := (d - m.RampS - m.HoldS) / m.DecayS
		return m.PeakFactor - (m.PeakFactor-1)*frac
	}
}

// emit materializes one tuple at simulated arrival instant arrUS.
func (s *Stream) emit(ph *Phase, arrUS int64) tuple.Tuple {
	p := &s.sc.Profile
	key := s.pickKey(ph, arrUS)

	t := tuple.Tuple{Key: key, Val: s.rngVal.Float64() * 100}
	if s.rngSide.Float64() < p.Stream.BaseShare {
		t.Side = tuple.Base
		t.Seq = s.baseSeq
		s.baseSeq++
	} else {
		t.Side = tuple.Probe
		t.Seq = s.probeSeq
		s.probeSeq++
	}

	ts := arrUS
	if dis := int64(secToUS(p.Stream.DisorderS)); dis > 0 && !(p.Stream.OrderedBase && t.Side == tuple.Base) {
		ts -= s.rngJit.Int63n(dis + 1)
		if ts < 0 {
			ts = 0
		}
	}
	t.TS = ts
	return t
}

// pickKey chooses the tuple key: the phase's rotating hot set when a
// hotkey-churn modulator is active, otherwise tenant slabs, Zipf, or
// uniform. The hot set of churn epoch e is computed by pure hashing of
// (seed, phase, e), so the set active at a simulated instant does not
// depend on how many tuples were generated before it.
func (s *Stream) pickKey(ph *Phase, arrUS int64) tuple.Key {
	for i := range ph.Modulators {
		m := &ph.Modulators[i]
		if m.Kind != ModHotChurn {
			continue
		}
		if s.rngHot.Float64() < m.HotShare {
			tS := float64(arrUS)/1e6 - ph.StartS
			epoch := uint64(tS / m.PeriodS)
			slot := s.rngHot.Intn(m.HotKeys)
			phaseSeed := s.sc.Profile.Seed + int64(s.phaseIdx)*0x632be59bd9b4e019
			return tuple.Key(hashSet(phaseSeed, epoch, slot, s.sc.keys))
		}
		break
	}
	return s.coldKey()
}

// coldKey draws from the background key distribution.
func (s *Stream) coldKey() tuple.Key {
	if len(s.sc.tenants) > 0 {
		d := s.rngTen.Float64()
		for i := range s.sc.tenants {
			if d < s.sc.tenants[i].cum || i == len(s.sc.tenants)-1 {
				sl := &s.sc.tenants[i]
				return tuple.Key(sl.offset + s.rngKey.Intn(sl.keys))
			}
		}
	}
	if s.zipf != nil {
		return tuple.Key(s.zipf.Uint64())
	}
	return tuple.Key(s.rngKey.Intn(s.sc.keys))
}

// secToUSf converts simulated seconds to fractional µs (cursor arithmetic).
func secToUSf(s float64) float64 { return s * 1e6 }

// Collect drains up to max tuples from the stream (max <= 0 drains all) —
// the helper the differential and determinism tests use.
func Collect(s *Stream, max int) []tuple.Tuple {
	var out []tuple.Tuple
	for max <= 0 || len(out) < max {
		t, _, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, t)
	}
	return out
}
