package pattern

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// validProfile returns a minimal synthetic profile the mutation tests can
// break one field at a time.
func validProfile() Profile {
	return Profile{
		SchemaVersion: ProfileSchemaVersion,
		Name:          "t",
		Seed:          1,
		DurationS:     100,
		IntervalS:     10,
		Stream: StreamSpec{
			RateTPS:    50,
			Keys:       100,
			BaseShare:  0.25,
			WindowPreS: 5,
			LatenessS:  2,
			DisorderS:  1,
		},
		Phases: []Phase{{Name: "all", StartS: 0, EndS: 100}},
	}
}

func TestValidateTable(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Profile)
		wantErr string // substring; "" means valid
	}{
		{"valid", func(p *Profile) {}, ""},
		{"wrong version", func(p *Profile) { p.SchemaVersion = 99 }, "schema_version"},
		{"no name", func(p *Profile) { p.Name = "" }, "no name"},
		{"negative time scale", func(p *Profile) { p.TimeScale = -1 }, "time_scale"},
		{"zero interval", func(p *Profile) { p.IntervalS = 0 }, "interval_s"},
		{"zero duration", func(p *Profile) { p.DurationS = 0 }, "duration_s"},
		{"base share zero", func(p *Profile) { p.Stream.BaseShare = 0 }, "base_share"},
		{"base share one", func(p *Profile) { p.Stream.BaseShare = 1 }, "base_share"},
		{"disorder beyond lateness", func(p *Profile) { p.Stream.DisorderS = 3 }, "disorder_s"},
		{"zero rate", func(p *Profile) { p.Stream.RateTPS = 0 }, "rate_tps"},
		{"zero keys", func(p *Profile) { p.Stream.Keys = 0 }, "keys"},
		{"zipf at 1", func(p *Profile) { p.Stream.ZipfS = 1 }, "zipf_s"},
		{"zipf ok", func(p *Profile) { p.Stream.ZipfS = 1.5 }, ""},
		{"no phases", func(p *Profile) { p.Phases = nil }, "at least one phase"},
		{"unnamed phase", func(p *Profile) { p.Phases[0].Name = "" }, "phase 0 has no name"},
		{"phase out of bounds", func(p *Profile) { p.Phases[0].EndS = 101 }, "outside"},
		{"inverted phase", func(p *Profile) { p.Phases[0].EndS = 0 }, "must exceed"},
		{"unsorted phases", func(p *Profile) {
			p.Phases = []Phase{{Name: "b", StartS: 50, EndS: 100}, {Name: "a", StartS: 0, EndS: 40}}
		}, "sorted"},
		{"overlapping phases", func(p *Profile) {
			p.Phases = []Phase{{Name: "a", StartS: 0, EndS: 60}, {Name: "b", StartS: 50, EndS: 100}}
		}, "overlaps"},
		{"gap between phases ok", func(p *Profile) {
			p.Phases = []Phase{{Name: "a", StartS: 0, EndS: 40}, {Name: "b", StartS: 60, EndS: 100}}
		}, ""},
		{"negative rate factor", func(p *Profile) { p.Phases[0].RateFactor = -1 }, "rate_factor"},
		{"kindless modulator", func(p *Profile) {
			p.Phases[0].Modulators = []Modulator{{}}
		}, "no kind"},
		{"unknown modulator kind", func(p *Profile) {
			p.Phases[0].Modulators = []Modulator{{Kind: "lunar"}}
		}, "unknown modulator"},
		{"diurnal needs period", func(p *Profile) {
			p.Phases[0].Modulators = []Modulator{{Kind: ModDiurnal}}
		}, "period_s"},
		{"diurnal floor above 1", func(p *Profile) {
			p.Phases[0].Modulators = []Modulator{{Kind: ModDiurnal, PeriodS: 10, Floor: 1.5}}
		}, "floor"},
		{"flash peak must exceed 1", func(p *Profile) {
			p.Phases[0].Modulators = []Modulator{{Kind: ModFlash, PeakFactor: 1, RampS: 1}}
		}, "peak_factor"},
		{"flash zero width", func(p *Profile) {
			p.Phases[0].Modulators = []Modulator{{Kind: ModFlash, PeakFactor: 2}}
		}, "zero width"},
		{"churn needs hot keys", func(p *Profile) {
			p.Phases[0].Modulators = []Modulator{{Kind: ModHotChurn, PeriodS: 10, HotShare: 0.5}}
		}, "hot_keys"},
		{"churn share above 1", func(p *Profile) {
			p.Phases[0].Modulators = []Modulator{{Kind: ModHotChurn, PeriodS: 10, HotKeys: 4, HotShare: 1.5}}
		}, "hot_share"},
		{"tenants replace keys", func(p *Profile) {
			p.Stream.Keys = 0
			p.Tenants = []Tenant{{Name: "a", Weight: 1, Keys: 10}}
		}, ""},
		{"zipf with tenants", func(p *Profile) {
			p.Stream.ZipfS = 1.5
			p.Tenants = []Tenant{{Name: "a", Weight: 1, Keys: 10}}
		}, "mutually exclusive"},
		{"zero-weight tenant", func(p *Profile) {
			p.Tenants = []Tenant{{Name: "a", Weight: 0, Keys: 10}}
		}, "weight"},
		{"trace excludes phases", func(p *Profile) {
			p.Trace = &TraceSpec{Path: "x.csv", KeyColumn: "k", TimeColumn: "t"}
			p.Stream.RateTPS = 0
			p.Stream.Keys = 0
		}, "mutually exclusive"},
		{"trace excludes rate", func(p *Profile) {
			p.Trace = &TraceSpec{Path: "x.csv", KeyColumn: "k", TimeColumn: "t"}
			p.Phases = nil
			p.Stream.Keys = 0
		}, "rate_tps"},
		{"trace needs columns", func(p *Profile) {
			p.Trace = &TraceSpec{Path: "x.csv"}
			p.Phases = nil
			p.Stream.RateTPS = 0
			p.Stream.Keys = 0
			p.DurationS = 0
		}, "key_column"},
		{"negative slo", func(p *Profile) { p.SLO = &SLOSpec{P99Ms: -1} }, "slo"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := validProfile()
			tc.mutate(&p)
			err := p.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	data, err := validProfile().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Inject a typoed knob at the top level.
	broken := strings.Replace(string(data), "\"name\"", "\"rate_tsp\": 5,\n  \"name\"", 1)
	if _, err := ParseProfile([]byte(broken)); err == nil || !strings.Contains(err.Error(), "rate_tsp") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
}

func TestParseRejectsTrailingData(t *testing.T) {
	data, err := validProfile().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseProfile(append(data, []byte("{}")...)); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing document not rejected: %v", err)
	}
}

// profilesDir locates the checked-in profile library from the package dir.
func profilesDir(t *testing.T) string {
	t.Helper()
	dir := filepath.Join("..", "..", "..", "profiles")
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("profiles/ not found: %v", err)
	}
	return dir
}

// TestCheckedInProfilesRoundTrip loads every shipped profile, re-marshals
// it, re-parses that, and requires a structurally identical result — so the
// on-disk format and the Go schema cannot drift apart silently.
func TestCheckedInProfilesRoundTrip(t *testing.T) {
	dir := profilesDir(t)
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no checked-in profiles found (%v)", err)
	}
	if len(paths) < 5 {
		t.Fatalf("expected at least 5 shipped profiles, found %d", len(paths))
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			p, err := LoadProfile(path)
			if err != nil {
				t.Fatal(err)
			}
			if want := strings.TrimSuffix(filepath.Base(path), ".json"); p.Name != want {
				t.Errorf("profile name %q does not match file name %q", p.Name, want)
			}
			data, err := p.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			p2, err := ParseProfile(data)
			if err != nil {
				t.Fatalf("re-parse: %v", err)
			}
			if !reflect.DeepEqual(p, p2) {
				t.Fatalf("round trip changed the profile:\nbefore: %+v\nafter:  %+v", p, p2)
			}
			// Every shipped profile must also compile (traces resolve).
			if _, err := Compile(p, dir); err != nil {
				t.Fatalf("compile: %v", err)
			}
		})
	}
}
