package pattern

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oij/internal/tuple"
)

// traceProfile returns a replay profile pointed at a trace written to a
// temp dir; mutate before Compile to vary the scenario.
func traceProfile(t *testing.T, csv string) (Profile, string) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "trace.csv"), []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	return Profile{
		SchemaVersion: ProfileSchemaVersion,
		Name:          "trace-test",
		Seed:          5,
		IntervalS:     10,
		Stream: StreamSpec{
			BaseShare:  0.5,
			WindowPreS: 5,
			LatenessS:  10,
		},
		Trace: &TraceSpec{
			Path:       "trace.csv",
			KeyColumn:  "key",
			TimeColumn: "ts",
			TimeFormat: "unixs",
		},
	}, dir
}

func TestTraceEmptyFile(t *testing.T) {
	for name, csv := range map[string]string{
		"no rows":    "ts,key\n",
		"zero bytes": "",
	} {
		t.Run(name, func(t *testing.T) {
			p, dir := traceProfile(t, csv)
			if _, err := Compile(p, dir); err == nil {
				t.Fatal("empty trace compiled without error")
			}
		})
	}
}

func TestTraceCRLF(t *testing.T) {
	lf := "ts,key\n0,1\n2,2\n4,3\n"
	pa, da := traceProfile(t, lf)
	pb, db := traceProfile(t, strings.ReplaceAll(lf, "\n", "\r\n"))
	sa, err := Compile(pa, da)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Compile(pb, db)
	if err != nil {
		t.Fatal(err)
	}
	ta, aa := collectArr(sa.NewStream(), 0)
	tb, ab := collectArr(sb.NewStream(), 0)
	if len(ta) != 3 || len(tb) != 3 {
		t.Fatalf("row counts %d/%d, want 3", len(ta), len(tb))
	}
	for i := range ta {
		if ta[i] != tb[i] || aa[i] != ab[i] {
			t.Fatalf("row %d differs between LF and CRLF replay", i)
		}
	}
}

// TestTraceOutOfOrder: a backwards timestamp replays immediately (monotone
// arrival) while keeping its own event time, and the event axis is shifted
// so the earliest timestamp — not the first row — lands at zero.
func TestTraceOutOfOrder(t *testing.T) {
	p, dir := traceProfile(t, "ts,key\n10,1\n14,2\n8,3\n16,4\n")
	sc, err := Compile(p, dir)
	if err != nil {
		t.Fatal(err)
	}
	ts, arr := collectArr(sc.NewStream(), 0)
	if len(ts) != 4 {
		t.Fatalf("%d rows, want 4", len(ts))
	}
	// Event times shift by min=8s: 2s, 6s, 0s, 8s.
	want := []tuple.Time{2e6, 6e6, 0, 8e6}
	for i, w := range want {
		if ts[i].TS != w {
			t.Errorf("row %d event ts %d, want %d", i, ts[i].TS, w)
		}
	}
	// Arrival: gaps 4s, then 0 (backwards), then 8s.
	wantArr := []int64{0, 4e6, 4e6, 12e6}
	for i, w := range wantArr {
		if arr[i] != w {
			t.Errorf("row %d arrival %d, want %d", i, arr[i], w)
		}
	}
}

// TestTraceTooTardyRejected: a row later than the profile's lateness bound
// must refuse to compile — the simulation would silently join inexactly.
func TestTraceTooTardyRejected(t *testing.T) {
	p, dir := traceProfile(t, "ts,key\n0,1\n20,2\n5,3\n")
	if _, err := Compile(p, dir); err == nil ||
		!strings.Contains(err.Error(), "inexact") {
		t.Fatalf("tardy trace compiled: %v", err)
	}
}

// TestTraceGapCap: an overnight hole in the trace replays in at most
// GapCapS of simulated time while event timestamps keep the real gap.
func TestTraceGapCap(t *testing.T) {
	p, dir := traceProfile(t, "ts,key\n0,1\n2,2\n9000,3\n9002,4\n")
	p.Trace.GapCapS = 5
	sc, err := Compile(p, dir)
	if err != nil {
		t.Fatal(err)
	}
	ts, arr := collectArr(sc.NewStream(), 0)
	wantArr := []int64{0, 2e6, 7e6, 9e6} // hole of 8998s compressed to 5s
	for i, w := range wantArr {
		if arr[i] != w {
			t.Errorf("row %d arrival %d, want %d", i, arr[i], w)
		}
	}
	if ts[2].TS != 9000e6 {
		t.Errorf("event ts rewritten by gap cap: %d", ts[2].TS)
	}
	if sc.DurationUS() != 9e6+1 {
		t.Errorf("duration %d, want %d", sc.DurationUS(), int64(9e6+1))
	}
}

// TestTraceArrivalIndependentOfTimeScale: the time-scale knob compresses
// wall-clock pacing only; the simulated schedule (and thus every join
// answer) is identical at any speed.
func TestTraceArrivalIndependentOfTimeScale(t *testing.T) {
	csv := "ts,key\n0,1\n3,2\n7,3\n"
	pa, da := traceProfile(t, csv)
	pb, db := traceProfile(t, csv)
	pb.TimeScale = 500
	sa, err := Compile(pa, da)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Compile(pb, db)
	if err != nil {
		t.Fatal(err)
	}
	ta, aa := collectArr(sa.NewStream(), 0)
	tb, ab := collectArr(sb.NewStream(), 0)
	for i := range ta {
		if ta[i] != tb[i] || aa[i] != ab[i] {
			t.Fatalf("row %d differs across time scales: %+v@%d vs %+v@%d",
				i, ta[i], aa[i], tb[i], ab[i])
		}
	}
	if sb.TimeScale() != 500 {
		t.Fatalf("time scale %g, want 500", sb.TimeScale())
	}
}

// TestTraceDurationTruncates: duration_s cuts replay at the simulated
// instant, and truncating everything is an error.
func TestTraceDurationTruncates(t *testing.T) {
	p, dir := traceProfile(t, "ts,key\n0,1\n3,2\n7,3\n")
	p.DurationS = 5
	sc, err := Compile(p, dir)
	if err != nil {
		t.Fatal(err)
	}
	if ts := Collect(sc.NewStream(), 0); len(ts) != 2 {
		t.Fatalf("%d rows after truncation, want 2", len(ts))
	}

	// The first row arrives at simulated 0, so even a microscopic duration
	// keeps it: truncation can shorten a replay but never empty it.
	p2, dir2 := traceProfile(t, "ts,key\n0,1\n9,2\n")
	p2.DurationS = 1e-6
	sc2, err := Compile(p2, dir2)
	if err != nil {
		t.Fatal(err)
	}
	if ts := Collect(sc2.NewStream(), 0); len(ts) != 1 {
		t.Fatalf("%d rows, want 1", len(ts))
	}
}

// TestTraceSidesDeterministic: replayed side assignment comes from the
// profile seed, so two streams agree and a seed change reshuffles.
func TestTraceSidesDeterministic(t *testing.T) {
	csv := "ts,key\n0,1\n1,2\n2,3\n3,4\n4,5\n5,6\n6,7\n7,8\n"
	p, dir := traceProfile(t, csv)
	sc, err := Compile(p, dir)
	if err != nil {
		t.Fatal(err)
	}
	a := Collect(sc.NewStream(), 0)
	b := Collect(sc.NewStream(), 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs between same-seed replays", i)
		}
	}
}
