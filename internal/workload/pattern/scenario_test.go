package pattern

import (
	"path/filepath"
	"sync"
	"testing"

	"oij/internal/tuple"
)

// collectArr drains the stream keeping both tuples and arrival instants.
func collectArr(s *Stream, max int) ([]tuple.Tuple, []int64) {
	var ts []tuple.Tuple
	var arr []int64
	for max <= 0 || len(ts) < max {
		t, a, ok := s.Next()
		if !ok {
			break
		}
		ts = append(ts, t)
		arr = append(arr, a)
	}
	return ts, arr
}

// TestStreamsDeterministicConcurrent is the pattern half of the determinism
// audit: for every checked-in profile, two streams drained concurrently
// must agree tuple for tuple, arrival instant for arrival instant. Shared
// state between streams would trip the race detector here.
func TestStreamsDeterministicConcurrent(t *testing.T) {
	dir := profilesDir(t)
	paths, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			p, err := LoadProfile(path)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := Compile(p, dir)
			if err != nil {
				t.Fatal(err)
			}
			const max = 30000
			type run struct {
				ts  []tuple.Tuple
				arr []int64
			}
			runs := make([]run, 2)
			var wg sync.WaitGroup
			for i := range runs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					ts, arr := collectArr(sc.NewStream(), max)
					runs[i] = run{ts, arr}
				}(i)
			}
			wg.Wait()
			if len(runs[0].ts) == 0 {
				t.Fatal("stream produced no tuples")
			}
			if len(runs[0].ts) != len(runs[1].ts) {
				t.Fatalf("lengths differ: %d vs %d", len(runs[0].ts), len(runs[1].ts))
			}
			for i := range runs[0].ts {
				if runs[0].ts[i] != runs[1].ts[i] || runs[0].arr[i] != runs[1].arr[i] {
					t.Fatalf("position %d differs between same-seed streams:\n  %+v @%d\n  %+v @%d",
						i, runs[0].ts[i], runs[0].arr[i], runs[1].ts[i], runs[1].arr[i])
				}
			}
		})
	}
}

// TestStreamInvariants checks the watermark-safety contract on every
// checked-in synthetic profile: arrival instants are monotone, timestamps
// never trail arrival by more than the disorder bound, base timestamps are
// monotone under ordered_base, and seqs are dense per side.
func TestStreamInvariants(t *testing.T) {
	dir := profilesDir(t)
	paths, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			p, err := LoadProfile(path)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := Compile(p, dir)
			if err != nil {
				t.Fatal(err)
			}
			ts, arr := collectArr(sc.NewStream(), 50000)
			disorder := int64(secToUS(p.Stream.DisorderS))
			var prevArr, prevBaseTS int64 = -1, -1
			var nextBase, nextProbe uint64
			for i, tp := range ts {
				if arr[i] < prevArr {
					t.Fatalf("arrival went backwards at %d: %d after %d", i, arr[i], prevArr)
				}
				prevArr = arr[i]
				if sc.trace == nil {
					if lag := arr[i] - int64(tp.TS); lag < 0 || lag > disorder {
						t.Fatalf("tuple %d: ts %d vs arrival %d violates disorder bound %d",
							i, tp.TS, arr[i], disorder)
					}
					if p.Stream.OrderedBase && tp.Side == tuple.Base {
						if int64(tp.TS) < prevBaseTS {
							t.Fatalf("base ts went backwards at %d despite ordered_base", i)
						}
						prevBaseTS = int64(tp.TS)
					}
				}
				switch tp.Side {
				case tuple.Base:
					if tp.Seq != nextBase {
						t.Fatalf("base seq %d at %d, want %d", tp.Seq, i, nextBase)
					}
					nextBase++
				default:
					if tp.Seq != nextProbe {
						t.Fatalf("probe seq %d at %d, want %d", tp.Seq, i, nextProbe)
					}
					nextProbe++
				}
			}
		})
	}
}

// TestFlashFactorEnvelope pins the spike shape: identity outside, linear
// ramp, flat hold, linear decay.
func TestFlashFactorEnvelope(t *testing.T) {
	m := &Modulator{Kind: ModFlash, AtS: 100, RampS: 10, HoldS: 20, DecayS: 40, PeakFactor: 5}
	cases := []struct {
		tS   float64
		want float64
	}{
		{0, 1}, {99.9, 1},
		{105, 3}, // halfway up the ramp
		{110, 5}, // peak
		{125, 5}, // holding
		{150, 3}, // halfway down
		{170, 1}, // decayed
		{200, 1}, // long after
	}
	for _, c := range cases {
		if got := flashFactor(m, c.tS); got != c.want {
			t.Errorf("flashFactor(%g) = %g, want %g", c.tS, got, c.want)
		}
	}
}

// TestDiurnalRateShape checks the raised cosine: peak rate at PeakS, floor
// rate half a period away.
func TestDiurnalRateShape(t *testing.T) {
	p := validProfile()
	p.Phases[0].Modulators = []Modulator{{Kind: ModDiurnal, PeriodS: 100, Floor: 0.2, PeakS: 50}}
	sc, err := Compile(p, "")
	if err != nil {
		t.Fatal(err)
	}
	s := sc.NewStream()
	ph := &sc.Profile.Phases[0]
	peak := s.rateAt(ph, secToUSf(50))
	trough := s.rateAt(ph, secToUSf(0))
	if want := p.Stream.RateTPS; peak != want {
		t.Errorf("peak rate %g, want %g", peak, want)
	}
	if want := p.Stream.RateTPS * 0.2; abs(trough-want) > 1e-9 {
		t.Errorf("trough rate %g, want %g", trough, want)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestDeadZoneTerminates: a diurnal floor of 0 silences most of the phase;
// the stream must stride through the silence and finish.
func TestDeadZoneTerminates(t *testing.T) {
	p := validProfile()
	p.DurationS = 10000
	p.Phases[0].EndS = 10000
	p.Phases[0].Modulators = []Modulator{{Kind: ModDiurnal, PeriodS: 10000, Floor: 0, PeakS: 0}}
	sc, err := Compile(p, "")
	if err != nil {
		t.Fatal(err)
	}
	ts := Collect(sc.NewStream(), 0)
	if len(ts) == 0 {
		t.Fatal("no tuples at all")
	}
}

// TestHotChurnRotatesAndConcentrates: with churn active, the hot fraction
// of traffic lands on at most HotKeys distinct keys per epoch, and the hot
// sets of different epochs differ.
func TestHotChurnRotatesAndConcentrates(t *testing.T) {
	p := validProfile()
	p.DurationS = 200
	p.IntervalS = 50
	p.Stream.RateTPS = 500
	p.Stream.Keys = 10000
	p.Phases[0].EndS = 200
	p.Phases[0].Modulators = []Modulator{{Kind: ModHotChurn, PeriodS: 100, HotKeys: 8, HotShare: 0.6}}
	sc, err := Compile(p, "")
	if err != nil {
		t.Fatal(err)
	}
	s := sc.NewStream()
	epochKeys := map[uint64]map[tuple.Key]int{}
	for {
		tp, arr, ok := s.Next()
		if !ok {
			break
		}
		epoch := uint64(float64(arr) / 1e6 / 100)
		if epochKeys[epoch] == nil {
			epochKeys[epoch] = map[tuple.Key]int{}
		}
		epochKeys[epoch][tp.Key]++
	}
	if len(epochKeys) != 2 {
		t.Fatalf("expected 2 churn epochs, saw %d", len(epochKeys))
	}
	hot := make([]map[tuple.Key]bool, 2)
	for e := uint64(0); e < 2; e++ {
		counts := epochKeys[e]
		total := 0
		for _, n := range counts {
			total += n
		}
		// Hot keys get ~0.6/8 = 7.5% each; cold keys ~0.4/10000 each. Any
		// key above 1% of the epoch's traffic is unambiguously hot.
		hot[e] = map[tuple.Key]bool{}
		hotTraffic := 0
		for k, n := range counts {
			if float64(n) > 0.01*float64(total) {
				hot[e][k] = true
				hotTraffic += n
			}
		}
		if len(hot[e]) == 0 || len(hot[e]) > 8 {
			t.Fatalf("epoch %d: %d hot keys, want 1..8", e, len(hot[e]))
		}
		if share := float64(hotTraffic) / float64(total); share < 0.5 || share > 0.7 {
			t.Fatalf("epoch %d: hot share %.2f, want ~0.6", e, share)
		}
	}
	same := 0
	for k := range hot[0] {
		if hot[1][k] {
			same++
		}
	}
	if same == len(hot[0]) {
		t.Fatal("hot set did not rotate between epochs")
	}
}

// TestTenantSlabs: tenant keys stay inside their slabs and traffic splits
// by weight.
func TestTenantSlabs(t *testing.T) {
	p := validProfile()
	p.Stream.Keys = 0
	p.Stream.RateTPS = 1000
	p.Tenants = []Tenant{
		{Name: "gold", Weight: 3, Keys: 10},
		{Name: "bronze", Weight: 1, Keys: 1000},
	}
	sc, err := Compile(p, "")
	if err != nil {
		t.Fatal(err)
	}
	if sc.keys != 1010 {
		t.Fatalf("key space %d, want 1010", sc.keys)
	}
	ts := Collect(sc.NewStream(), 0)
	var gold, bronze int
	for _, tp := range ts {
		switch {
		case tp.Key < 10:
			gold++
		case tp.Key < 1010:
			bronze++
		default:
			t.Fatalf("key %d outside the tenant key space", tp.Key)
		}
	}
	share := float64(gold) / float64(gold+bronze)
	if share < 0.70 || share > 0.80 {
		t.Fatalf("gold share %.3f, want ~0.75", share)
	}
}

// TestSubStreamIndependence: the "hot" decision stream must not perturb the
// key stream — a profile with churn and one without draw the same cold keys
// for the tuples that stay cold... which cannot hold tuple-for-tuple, so we
// pin the weaker, load-bearing property instead: sub-streams with distinct
// labels start from distinct states.
func TestSubStreamIndependence(t *testing.T) {
	a, b := newRNG(42, "key"), newRNG(42, "val")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("labeled sub-streams collided %d/64 draws", same)
	}
}

// TestHashSetIsPure: hot-set membership depends only on (seed, epoch, slot),
// never on draw history.
func TestHashSetIsPure(t *testing.T) {
	r := newRNG(7, "hot")
	before := hashSet(7, 3, 2, 1000)
	for i := 0; i < 100; i++ {
		r.Uint64() // unrelated draws
	}
	if after := hashSet(7, 3, 2, 1000); after != before {
		t.Fatal("hashSet changed with unrelated draw history")
	}
	if hashSet(7, 3, 2, 1000) == hashSet(7, 4, 2, 1000) &&
		hashSet(7, 3, 1, 1000) == hashSet(7, 4, 1, 1000) &&
		hashSet(7, 3, 0, 1000) == hashSet(7, 4, 0, 1000) {
		t.Fatal("adjacent epochs produced identical hot sets")
	}
}
