package pattern

// Deterministic random streams for scenario generation.
//
// Every randomized decision in a scenario (key choice, payload, side,
// jitter, tenant pick, hot-set membership) draws from its own named
// sub-stream derived from the profile seed, never from a shared or global
// generator. Two consequences the simulator's contract depends on:
//
//   - byte reproducibility: the tuple sequence is a pure function of the
//     profile, so two runs of the same profile — on different machines, at
//     different time scales, paced or unpaced — generate identical tuples;
//   - decision independence: adding a draw to one sub-stream (say, an
//     extra jitter sample) cannot shift every later key choice, because
//     the streams do not share state.
//
// The generator is splitmix64, the same mix the engines' key hashing uses:
// tiny state, full 64-bit period per stream, and statistically clean enough
// for workload shaping (this is load synthesis, not cryptography).

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rng is one deterministic sub-stream.
type rng struct {
	state uint64
}

// newRNG derives an independent sub-stream from a root seed and a stream
// label. Distinct labels yield decorrelated streams even for adjacent
// seeds, because both pass through the finalizer.
func newRNG(seed int64, label string) *rng {
	h := uint64(1469598103934665603) // FNV-1a offset
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return &rng{state: mix64(uint64(seed)*0x9e3779b97f4a7c15 + h)}
}

// Uint64 returns the next raw draw.
func (r *rng) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// Float64 returns a uniform draw in [0, 1).
func (r *rng) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). n must be positive.
func (r *rng) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform draw in [0, n). n must be positive.
func (r *rng) Int63n(n int64) int64 {
	return int64(r.Uint64() % uint64(n))
}

// Source64 adapts the stream to math/rand.Source64, so library samplers
// (rand.Zipf) can run on a scenario-owned stream instead of a global one.
func (r *rng) Int63() int64 { return int64(r.Uint64() >> 1) }

// Seed implements math/rand.Source; scenario streams are seeded at
// construction and never reseeded.
func (r *rng) Seed(seed int64) { r.state = mix64(uint64(seed)) }

// hashSet returns the i-th member of a deterministic pseudo-random set
// identified by (seed, epoch): the rotating hot sets are computed by pure
// hashing rather than by drawing from a sequential stream, so the hot set
// active at any simulated instant is independent of how many tuples were
// generated before it.
func hashSet(seed int64, epoch uint64, i int, n int) uint64 {
	return mix64(uint64(seed)^mix64(epoch*0x9e3779b97f4a7c15+uint64(i)+1)) % uint64(n)
}
