// Package pattern is the declarative scenario layer over the workload
// generator: a Profile composes phases and modulators — diurnal curves,
// flash crowds with ramp/decay, rotating hot-key sets, multi-tenant mixes,
// or a replayed CSV trace — into one simulated-time tuple stream, with a
// time-scale knob so a 24-hour profile runs in minutes and a deterministic
// seed→tuple-sequence contract so any scenario is byte-reproducible.
//
// The event-time axis of a scenario is simulated time: tuple timestamps are
// microseconds since the scenario start, exactly as the profile declares
// them, regardless of time scale. Time compression happens only at replay
// (a tuple due at simulated second T is sent at wall second T/TimeScale),
// so the same profile joins identically at every speed.
package pattern

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"oij/internal/tuple"
	"oij/internal/window"
)

// ProfileSchemaVersion is the profile format version this build reads and
// writes. Checked-in profiles are part of the repository's test surface, so
// the version gates incompatible format changes the same way BENCH_*.json
// does.
const ProfileSchemaVersion = 1

// Modulator kinds.
const (
	// ModDiurnal shapes the rate with a raised cosine: factor 1 at PeakS,
	// Floor at the opposite point of the period.
	ModDiurnal = "diurnal"
	// ModFlash multiplies the rate with a spike envelope: linear ramp to
	// PeakFactor over RampS, hold for HoldS, linear decay over DecayS.
	ModFlash = "flash"
	// ModHotChurn concentrates HotShare of the keys on a rotating hot set
	// of HotKeys keys redrawn every PeriodS of simulated time.
	ModHotChurn = "hotkey-churn"
)

// Profile is one declarative scenario, loadable from JSON (see profiles/).
type Profile struct {
	SchemaVersion int    `json:"schema_version"`
	Name          string `json:"name"`
	// Seed roots every random stream of the scenario. Same profile, same
	// seed, same tuple sequence — always.
	Seed int64 `json:"seed"`
	// DurationS is the simulated duration in seconds. With a trace source
	// it may be 0 (replay the whole trace) or truncate the trace.
	DurationS float64 `json:"duration_s,omitempty"`
	// TimeScale compresses wall clock at replay: simulated time passes
	// TimeScale times faster than wall time. 0 defaults to 1.
	TimeScale float64 `json:"time_scale,omitempty"`
	// IntervalS is the timeline-report bucket width in simulated seconds.
	IntervalS float64 `json:"interval_s"`
	// Stream carries the join-window configuration plus the synthetic
	// source parameters (ignored when Trace is set, except the window,
	// lateness, disorder and base-share fields which apply to both).
	Stream StreamSpec `json:"stream"`
	// Phases partition the simulated duration for synthetic sources; gaps
	// between phases generate no tuples.
	Phases []Phase `json:"phases,omitempty"`
	// Tenants, when set, split the key space into weighted slabs.
	Tenants []Tenant `json:"tenants,omitempty"`
	// Trace, when set, replays a CSV instead of synthesizing.
	Trace *TraceSpec `json:"trace,omitempty"`
	// SLO, when set, scores every report interval to a pass/fail verdict.
	SLO *SLOSpec `json:"slo,omitempty"`
}

// StreamSpec is the synthetic source plus join-window configuration.
type StreamSpec struct {
	// RateTPS is the baseline rate in tuples per simulated second, before
	// phase factors and modulators.
	RateTPS float64 `json:"rate_tps,omitempty"`
	// Keys is the number of unique keys (ignored when Tenants are set:
	// the key space is then the concatenation of the tenant slabs).
	Keys int `json:"keys,omitempty"`
	// BaseShare is the fraction of tuples on the base (request) side.
	BaseShare float64 `json:"base_share"`
	// ZipfS skews key popularity (0 = uniform; >1 = Zipf exponent).
	// Mutually exclusive with Tenants.
	ZipfS float64 `json:"zipf_s,omitempty"`
	// WindowPreS/WindowFolS/LatenessS configure the interval join, in
	// simulated seconds.
	WindowPreS float64 `json:"window_pre_s"`
	WindowFolS float64 `json:"window_fol_s,omitempty"`
	LatenessS  float64 `json:"lateness_s"`
	// DisorderS bounds how far a probe timestamp may trail in-order
	// arrival. Must not exceed LatenessS or joins would be inexact.
	DisorderS float64 `json:"disorder_s,omitempty"`
	// OrderedBase keeps base (request) timestamps monotone, modelling
	// serving reality; disorder then applies to probes only.
	OrderedBase bool `json:"ordered_base,omitempty"`
}

// Phase is one contiguous span of simulated time with its own rate factor
// and modulators.
type Phase struct {
	Name       string  `json:"name"`
	StartS     float64 `json:"start_s"`
	EndS       float64 `json:"end_s"`
	RateFactor float64 `json:"rate_factor,omitempty"` // default 1

	Modulators []Modulator `json:"modulators,omitempty"`
}

// Modulator shapes a phase. Exactly the fields of its Kind may be set;
// unknown kinds and misconfigured fields are rejected at validation.
type Modulator struct {
	Kind string `json:"kind"`

	// diurnal + hotkey-churn
	PeriodS float64 `json:"period_s,omitempty"`

	// diurnal
	Floor float64 `json:"floor,omitempty"`
	PeakS float64 `json:"peak_s,omitempty"`

	// flash
	AtS        float64 `json:"at_s,omitempty"`
	RampS      float64 `json:"ramp_s,omitempty"`
	HoldS      float64 `json:"hold_s,omitempty"`
	DecayS     float64 `json:"decay_s,omitempty"`
	PeakFactor float64 `json:"peak_factor,omitempty"`

	// hotkey-churn
	HotKeys  int     `json:"hot_keys,omitempty"`
	HotShare float64 `json:"hot_share,omitempty"`
}

// Tenant is one weighted slab of the key space.
type Tenant struct {
	Name string `json:"name"`
	// Weight is the tenant's share of traffic relative to the sum of all
	// weights.
	Weight float64 `json:"weight"`
	// Keys is the size of the tenant's private key slab.
	Keys int `json:"keys"`
}

// TraceSpec replays a CSV file (via internal/csvsrc) as the tuple source.
// Replay preserves file order as arrival order; the event-time axis is the
// trace's own timestamps shifted to start at zero.
type TraceSpec struct {
	// Path to the CSV, relative to the profile file's directory.
	Path string `json:"path"`
	// KeyColumn/TimeColumn/ValueColumn name the CSV header columns
	// (ValueColumn may be empty: payload 0).
	KeyColumn   string `json:"key_column"`
	TimeColumn  string `json:"time_column"`
	ValueColumn string `json:"value_column,omitempty"`
	// TimeFormat is a csvsrc format name (unixus, unixms, unixs, rfc3339);
	// empty means unixus.
	TimeFormat string `json:"time_format,omitempty"`
	// GapCapS, when > 0, caps each replayed inter-arrival gap at this many
	// simulated seconds, so a trace with an overnight hole replays the
	// hole in bounded time. Event timestamps are not rewritten — only the
	// pacing schedule compresses.
	GapCapS float64 `json:"gap_cap_s,omitempty"`
}

// SLOSpec scores report intervals. Zero fields are unchecked dimensions.
type SLOSpec struct {
	// P99Ms bounds the per-interval p99 request latency (wall clock).
	P99Ms float64 `json:"p99_ms,omitempty"`
	// MaxLagS bounds the watermark lag at interval end, in simulated
	// seconds.
	MaxLagS float64 `json:"max_lag_s,omitempty"`
	// MaxNacks bounds admission NACKs observed per interval.
	MaxNacks int64 `json:"max_nacks,omitempty"`
	// MaxSheds bounds server-side probe sheds per interval.
	MaxSheds int64 `json:"max_sheds,omitempty"`
	// CheckNacks/CheckSheds make a zero bound meaningful: "no NACK/shed
	// tolerated" is a real serving SLO, but a bare zero value must not
	// turn every unconfigured profile unhealthy.
	CheckNacks bool `json:"check_nacks,omitempty"`
	CheckSheds bool `json:"check_sheds,omitempty"`
}

// LoadProfile reads, strictly decodes, and validates a profile file.
// Unknown fields are rejected: a typoed modulator knob must fail loudly,
// not silently leave the default in place.
func LoadProfile(path string) (Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Profile{}, fmt.Errorf("pattern: reading profile: %w", err)
	}
	return ParseProfile(data)
}

// ParseProfile strictly decodes and validates profile JSON.
func ParseProfile(data []byte) (Profile, error) {
	var p Profile
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Profile{}, fmt.Errorf("pattern: parsing profile: %w", err)
	}
	// Reject trailing garbage (a second JSON document).
	if dec.More() {
		return Profile{}, fmt.Errorf("pattern: parsing profile: trailing data after document")
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// Marshal renders the profile as canonical indented JSON (the round-trip
// format the parsing tests lock in).
func (p Profile) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Window converts the stream's window fields to the engine's window.Spec.
func (s StreamSpec) Window() window.Spec {
	return window.Spec{
		Pre:      secToUS(s.WindowPreS),
		Fol:      secToUS(s.WindowFolS),
		Lateness: secToUS(s.LatenessS),
	}
}

// secToUS converts simulated seconds to event-time microseconds.
func secToUS(s float64) tuple.Time { return tuple.Time(math.Round(s * 1e6)) }

// Validate checks the profile for structural errors: version, ranges,
// phase ordering and overlap, per-kind modulator fields, and source
// exclusivity (synthetic phases XOR trace replay).
func (p Profile) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("pattern: profile %q: %s", p.Name, fmt.Sprintf(format, args...))
	}
	if p.SchemaVersion != ProfileSchemaVersion {
		return bad("schema_version %d, this build reads %d", p.SchemaVersion, ProfileSchemaVersion)
	}
	if p.Name == "" {
		return fmt.Errorf("pattern: profile has no name")
	}
	if p.TimeScale < 0 {
		return bad("time_scale must be >= 0, got %g", p.TimeScale)
	}
	if p.IntervalS <= 0 {
		return bad("interval_s must be positive, got %g", p.IntervalS)
	}
	s := p.Stream
	if s.BaseShare <= 0 || s.BaseShare >= 1 {
		return bad("stream.base_share must be in (0,1), got %g", s.BaseShare)
	}
	if s.DisorderS < 0 {
		return bad("stream.disorder_s must be >= 0")
	}
	if s.DisorderS > s.LatenessS {
		return bad("stream.disorder_s %g exceeds lateness_s %g (results would be inexact)", s.DisorderS, s.LatenessS)
	}
	if err := s.Window().Validate(); err != nil {
		return bad("stream window: %v", err)
	}

	if p.Trace != nil {
		t := p.Trace
		switch {
		case len(p.Phases) > 0:
			return bad("trace and phases are mutually exclusive")
		case len(p.Tenants) > 0:
			return bad("trace and tenants are mutually exclusive")
		case s.RateTPS != 0:
			return bad("trace replay ignores stream.rate_tps; remove it")
		case s.ZipfS != 0:
			return bad("trace replay ignores stream.zipf_s; remove it")
		case t.Path == "":
			return bad("trace.path is required")
		case t.KeyColumn == "" || t.TimeColumn == "":
			return bad("trace.key_column and trace.time_column are required")
		case t.GapCapS < 0:
			return bad("trace.gap_cap_s must be >= 0")
		case p.DurationS < 0:
			return bad("duration_s must be >= 0")
		}
	} else {
		if p.DurationS <= 0 {
			return bad("duration_s must be positive, got %g", p.DurationS)
		}
		if s.RateTPS <= 0 {
			return bad("stream.rate_tps must be positive for synthetic scenarios")
		}
		if len(p.Tenants) == 0 && s.Keys <= 0 {
			return bad("stream.keys must be positive (or declare tenants)")
		}
		if s.ZipfS != 0 && s.ZipfS <= 1 {
			return bad("stream.zipf_s must be > 1 (or 0 for uniform), got %g", s.ZipfS)
		}
		if s.ZipfS != 0 && len(p.Tenants) > 0 {
			return bad("stream.zipf_s and tenants are mutually exclusive")
		}
		if len(p.Phases) == 0 {
			return bad("synthetic scenarios need at least one phase")
		}
		if err := p.validatePhases(); err != nil {
			return err
		}
	}

	for i, t := range p.Tenants {
		if t.Name == "" {
			return bad("tenant %d has no name", i)
		}
		if t.Weight <= 0 {
			return bad("tenant %q: weight must be positive", t.Name)
		}
		if t.Keys <= 0 {
			return bad("tenant %q: keys must be positive", t.Name)
		}
	}

	if slo := p.SLO; slo != nil {
		if slo.P99Ms < 0 || slo.MaxLagS < 0 || slo.MaxNacks < 0 || slo.MaxSheds < 0 {
			return bad("slo thresholds must be >= 0")
		}
	}
	return nil
}

// validatePhases checks ordering, bounds, overlap, and modulators.
func (p Profile) validatePhases() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("pattern: profile %q: %s", p.Name, fmt.Sprintf(format, args...))
	}
	if !sort.SliceIsSorted(p.Phases, func(i, j int) bool { return p.Phases[i].StartS < p.Phases[j].StartS }) {
		return bad("phases must be sorted by start_s")
	}
	for i, ph := range p.Phases {
		if ph.Name == "" {
			return bad("phase %d has no name", i)
		}
		if ph.StartS < 0 || ph.EndS > p.DurationS {
			return bad("phase %q: [%g, %g) outside [0, %g)", ph.Name, ph.StartS, ph.EndS, p.DurationS)
		}
		if ph.EndS <= ph.StartS {
			return bad("phase %q: end_s %g must exceed start_s %g", ph.Name, ph.EndS, ph.StartS)
		}
		if i > 0 && ph.StartS < p.Phases[i-1].EndS {
			return bad("phase %q overlaps phase %q", ph.Name, p.Phases[i-1].Name)
		}
		if ph.RateFactor < 0 {
			return bad("phase %q: rate_factor must be >= 0", ph.Name)
		}
		for j, m := range ph.Modulators {
			if err := m.validate(); err != nil {
				return bad("phase %q modulator %d: %v", ph.Name, j, err)
			}
		}
	}
	return nil
}

// validate checks one modulator's kind-specific fields.
func (m Modulator) validate() error {
	switch m.Kind {
	case ModDiurnal:
		if m.PeriodS <= 0 {
			return fmt.Errorf("diurnal: period_s must be positive")
		}
		if m.Floor < 0 || m.Floor > 1 {
			return fmt.Errorf("diurnal: floor must be in [0,1], got %g", m.Floor)
		}
	case ModFlash:
		if m.PeakFactor <= 1 {
			return fmt.Errorf("flash: peak_factor must exceed 1, got %g", m.PeakFactor)
		}
		if m.RampS < 0 || m.HoldS < 0 || m.DecayS < 0 {
			return fmt.Errorf("flash: ramp_s/hold_s/decay_s must be >= 0")
		}
		if m.RampS+m.HoldS+m.DecayS <= 0 {
			return fmt.Errorf("flash: spike has zero width")
		}
	case ModHotChurn:
		if m.PeriodS <= 0 {
			return fmt.Errorf("hotkey-churn: period_s must be positive")
		}
		if m.HotKeys <= 0 {
			return fmt.Errorf("hotkey-churn: hot_keys must be positive")
		}
		if m.HotShare <= 0 || m.HotShare > 1 {
			return fmt.Errorf("hotkey-churn: hot_share must be in (0,1], got %g", m.HotShare)
		}
	case "":
		return fmt.Errorf("modulator has no kind")
	default:
		return fmt.Errorf("unknown modulator kind %q", m.Kind)
	}
	return nil
}

// TotalKeys returns the size of the scenario key space: the tenant slabs
// concatenated, or the stream's flat key count.
func (p Profile) TotalKeys() int {
	if len(p.Tenants) == 0 {
		return p.Stream.Keys
	}
	n := 0
	for _, t := range p.Tenants {
		n += t.Keys
	}
	return n
}
