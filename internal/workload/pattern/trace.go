package pattern

import (
	"fmt"
	"io"

	"oij/internal/csvsrc"
	"oij/internal/tuple"
)

// loadTrace preloads a CSV replay source. File order is arrival order; the
// event-time axis is the trace's own timestamps shifted so the earliest
// timestamp lands at 0 (out-of-order rows keep their relative offsets).
//
// The pacing schedule is the cumulative sum of inter-arrival gaps, where
// each gap is clamped to [0, GapCapS]: a backwards timestamp replays
// immediately (arrival time is monotone by construction) and an overnight
// hole replays in at most GapCapS of simulated time. Only the schedule
// compresses — event timestamps are never rewritten, so join answers are
// independent of the cap.
//
// A trace is rejected when any row is later than the profile's lateness
// bound (prefix-max timestamp minus row timestamp exceeds LatenessS):
// engines evicting on the watermark would silently drop its matches, and a
// simulation that quietly joins inexactly is worse than one that refuses
// to start.
func (sc *Scenario) loadTrace(r io.Reader) error {
	p := &sc.Profile
	t := p.Trace
	scan, err := csvsrc.NewScanner(r, csvsrc.Mapping{
		Key:        t.KeyColumn,
		Time:       t.TimeColumn,
		Value:      t.ValueColumn,
		TimeFormat: csvsrc.TimeFormat(t.TimeFormat),
	})
	if err != nil {
		return fmt.Errorf("pattern: profile %q: %w", p.Name, err)
	}
	recs, err := scan.ReadAll()
	if err != nil {
		return fmt.Errorf("pattern: profile %q: reading trace: %w", p.Name, err)
	}
	if len(recs) == 0 {
		return fmt.Errorf("pattern: profile %q: trace has no rows", p.Name)
	}

	gapCap := int64(secToUS(t.GapCapS))
	lateness := int64(secToUS(p.Stream.LatenessS))
	minTS := recs[0].TS
	for _, rec := range recs {
		if rec.TS < minTS {
			minTS = rec.TS
		}
	}

	out := make([]traceTuple, 0, len(recs))
	var arr int64
	prevTS := recs[0].TS
	maxTS := recs[0].TS
	for i, rec := range recs {
		if i > 0 {
			gap := rec.TS - prevTS
			if gap < 0 {
				gap = 0 // out-of-order row: arrives immediately
			}
			if gapCap > 0 && gap > gapCap {
				gap = gapCap
			}
			arr += gap
			prevTS = rec.TS
		}
		if rec.TS > maxTS {
			maxTS = rec.TS
		}
		if tardy := maxTS - rec.TS; tardy > lateness {
			return fmt.Errorf("pattern: profile %q: trace row %d is %gs late, beyond lateness_s %g (join would be inexact)",
				p.Name, i+2, float64(tardy)/1e6, p.Stream.LatenessS)
		}
		out = append(out, traceTuple{arrUS: arr, ts: rec.TS - minTS, key: rec.Key, val: rec.Val})
	}

	if sc.durUS > 0 {
		// Truncate at the declared duration. The first row always arrives
		// at simulated 0, so at least one row survives any valid duration.
		n := 0
		for n < len(out) && out[n].arrUS < sc.durUS {
			n++
		}
		out = out[:n]
	} else {
		sc.durUS = out[len(out)-1].arrUS + 1
	}
	sc.trace = out
	return nil
}

// nextTrace replays the preloaded records, drawing sides from the stream's
// own random sub-stream so replay is as reproducible as synthesis.
func (s *Stream) nextTrace() (tuple.Tuple, int64, bool) {
	if s.tracePos >= len(s.sc.trace) {
		s.done = true
		return tuple.Tuple{}, 0, false
	}
	rec := s.sc.trace[s.tracePos]
	s.tracePos++

	t := tuple.Tuple{TS: rec.ts, Key: rec.key, Val: rec.val}
	if s.rngSide.Float64() < s.sc.Profile.Stream.BaseShare {
		t.Side = tuple.Base
		t.Seq = s.baseSeq
		s.baseSeq++
	} else {
		t.Side = tuple.Probe
		t.Seq = s.probeSeq
		s.probeSeq++
	}
	return t, rec.arrUS, true
}
