package workload

import (
	"reflect"
	"sync"
	"testing"

	"oij/internal/tuple"
)

// TestEverySourceOwnsItsRNG is the determinism audit: every preset, run
// twice concurrently with the same seed, must produce identical tuple
// sequences. A shared or global math/rand source would interleave draws
// across the two goroutines (and trip the race detector); a per-seed local
// source cannot.
func TestEverySourceOwnsItsRNG(t *testing.T) {
	const n = 20000
	for _, name := range BaseNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg, err := Base(name, n)
			if err != nil {
				t.Fatal(err)
			}
			runs := make([][]tuple.Tuple, 2)
			var wg sync.WaitGroup
			for i := range runs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					ts, err := cfg.Generate()
					if err != nil {
						t.Errorf("run %d: %v", i, err)
						return
					}
					runs[i] = ts
				}(i)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if len(runs[0]) != len(runs[1]) {
				t.Fatalf("runs differ in length: %d vs %d", len(runs[0]), len(runs[1]))
			}
			for i := range runs[0] {
				if runs[0][i] != runs[1][i] {
					t.Fatalf("tuple %d differs between concurrent same-seed runs:\n  %+v\n  %+v",
						i, runs[0][i], runs[1][i])
				}
			}
		})
	}
}

// TestSeedsDecorrelate guards the other direction: different seeds must not
// produce the same sequence (a constant-sequence bug would pass the
// determinism test above).
func TestSeedsDecorrelate(t *testing.T) {
	cfg := DefaultSynthetic(5000)
	a, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed++
	b, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Fatal("seed change did not change the generated sequence")
	}
}
