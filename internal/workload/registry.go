package workload

import (
	"fmt"
	"sort"
)

// The registry gives every preset a stable, spec-addressable name so that
// declarative sweep specifications (internal/perf) and BENCH_*.json reports
// can reference workloads by string instead of embedding generator
// parameters. Names are part of the benchmark schema: renaming one orphans
// every recorded baseline that uses it.
var registry = map[string]func(n int) Config{
	"A":       A,
	"B":       B,
	"C":       C,
	"D":       D,
	"default": DefaultSynthetic,
	"tableV":  TableV,
	"skewed":  Skewed,
}

// Base builds the named preset workload with n tuples. The name must be one
// of BaseNames.
func Base(name string, n int) (Config, error) {
	mk, ok := registry[name]
	if !ok {
		return Config{}, fmt.Errorf("workload: unknown preset %q (known: %v)", name, BaseNames())
	}
	return mk(n), nil
}

// BaseNames lists the registered preset names in sorted order.
func BaseNames() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
