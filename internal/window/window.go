// Package window implements the relative-window semantics of the online
// interval join: the window spec (PRE, FOL), the lateness configuration, and
// the bound arithmetic every engine relies on (which probe timestamps match
// a base tuple, when a base tuple's window is complete, and when a probe
// tuple can never match again and may be evicted).
package window

import (
	"errors"
	"fmt"

	"oij/internal/tuple"
)

// Spec describes the relative time window of an online interval join
// together with the lateness bound of the input streams. For a base tuple
// with timestamp t the matching probe timestamps are [t-Pre, t+Fol], both
// ends inclusive, matching Definition 2 of the paper.
type Spec struct {
	Pre      tuple.Time // preceding offset PRE (µs, >= 0)
	Fol      tuple.Time // following offset FOL (µs, >= 0)
	Lateness tuple.Time // lateness l (µs, >= 0): max disorder of the streams

	// ExcludeCurrentTime drops probe tuples stamped exactly at the base
	// tuple's timestamp (OpenMLDB's EXCLUDE CURRENT_TIME window option:
	// same-moment events are often by-products of the request itself).
	// It requires Fol == 0, where those rows sit exactly at the upper
	// bound, so exclusion is a one-microsecond retreat of that bound.
	ExcludeCurrentTime bool
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	switch {
	case s.Pre < 0:
		return fmt.Errorf("window: negative PRE %d", s.Pre)
	case s.Fol < 0:
		return fmt.Errorf("window: negative FOL %d", s.Fol)
	case s.Lateness < 0:
		return fmt.Errorf("window: negative lateness %d", s.Lateness)
	case s.Pre == 0 && s.Fol == 0:
		return errors.New("window: empty window (PRE = FOL = 0)")
	case s.ExcludeCurrentTime && s.Fol != 0:
		return errors.New("window: EXCLUDE CURRENT_TIME requires the window to end at CURRENT ROW (FOL = 0)")
	}
	return nil
}

// Len returns the window length |w| = PRE + FOL.
func (s Spec) Len() tuple.Time { return s.Pre + s.Fol }

// Bounds returns the inclusive probe-timestamp range matched by a base
// tuple with event timestamp ts.
func (s Spec) Bounds(ts tuple.Time) (lo, hi tuple.Time) {
	hi = ts + s.Fol
	if s.ExcludeCurrentTime {
		hi--
	}
	return ts - s.Pre, hi
}

// Contains reports whether a probe tuple with timestamp probeTS falls in
// the window of a base tuple with timestamp baseTS.
func (s Spec) Contains(baseTS, probeTS tuple.Time) bool {
	lo, hi := s.Bounds(baseTS)
	return probeTS >= lo && probeTS <= hi
}

// Complete reports whether the window of a base tuple with timestamp ts is
// closed under watermark wm: no probe tuple that could still arrive
// (i.e. with event time > wm) can land inside the window.
func (s Spec) Complete(ts, wm tuple.Time) bool {
	return ts+s.Fol <= wm
}

// Evictable reports whether a probe tuple with timestamp ts can never match
// a base tuple that might still arrive or finalize under watermark wm. A
// future base tuple has event time > wm, and the probe matches base tuples
// with base timestamp in [ts-Fol, ts+Pre]; once wm passes ts+Pre the probe
// is dead weight. Engines evict on this predicate to bound buffer growth.
func (s Spec) Evictable(ts, wm tuple.Time) bool {
	return ts+s.Pre < wm
}

// Overlap returns the length of the overlap between the windows of two base
// tuples at timestamps a and b (a <= b), in µs. Neighbouring windows overlap
// by |w| - (b-a) when that is positive; the incremental aggregation
// optimization exploits exactly this shared region.
func (s Spec) Overlap(a, b tuple.Time) tuple.Time {
	if b < a {
		a, b = b, a
	}
	ov := s.Len() - (b - a)
	if ov < 0 {
		return 0
	}
	return ov
}

// String implements fmt.Stringer.
func (s Spec) String() string {
	return fmt.Sprintf("window(PRE=%dµs FOL=%dµs l=%dµs)", s.Pre, s.Fol, s.Lateness)
}
