package window

import (
	"testing"
	"testing/quick"

	"oij/internal/tuple"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		s  Spec
		ok bool
	}{
		{Spec{Pre: 100, Fol: 0, Lateness: 10}, true},
		{Spec{Pre: 0, Fol: 100}, true},
		{Spec{Pre: 100, Fol: 100, Lateness: 0}, true},
		{Spec{Pre: -1}, false},
		{Spec{Pre: 10, Fol: -1}, false},
		{Spec{Pre: 10, Lateness: -5}, false},
		{Spec{}, false}, // empty window
	}
	for _, c := range cases {
		if err := c.s.Validate(); (err == nil) != c.ok {
			t.Errorf("%v.Validate() = %v, want ok=%v", c.s, err, c.ok)
		}
	}
}

func TestBoundsAndContains(t *testing.T) {
	s := Spec{Pre: 100, Fol: 50}
	lo, hi := s.Bounds(1000)
	if lo != 900 || hi != 1050 {
		t.Fatalf("Bounds = (%d,%d)", lo, hi)
	}
	if s.Len() != 150 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Inclusive both ends, per Definition 2.
	for _, c := range []struct {
		probe tuple.Time
		in    bool
	}{{899, false}, {900, true}, {1000, true}, {1050, true}, {1051, false}} {
		if got := s.Contains(1000, c.probe); got != c.in {
			t.Errorf("Contains(1000, %d) = %v", c.probe, got)
		}
	}
}

func TestComplete(t *testing.T) {
	s := Spec{Pre: 100, Fol: 50}
	if s.Complete(1000, 1049) {
		t.Error("window complete before watermark reached ts+Fol")
	}
	if !s.Complete(1000, 1050) {
		t.Error("window not complete at watermark == ts+Fol")
	}
}

func TestEvictable(t *testing.T) {
	s := Spec{Pre: 100, Fol: 0}
	// A probe at ts can match base tuples up to ts+Pre; it is dead once
	// the watermark passes that.
	if s.Evictable(500, 600) {
		t.Error("probe evicted while a base at wm could still match it")
	}
	if !s.Evictable(500, 601) {
		t.Error("probe not evicted after its last possible match")
	}
}

func TestOverlap(t *testing.T) {
	s := Spec{Pre: 100, Fol: 0}
	if got := s.Overlap(1000, 1000); got != 100 {
		t.Errorf("identical windows overlap = %d", got)
	}
	if got := s.Overlap(1000, 1040); got != 60 {
		t.Errorf("overlap = %d, want 60", got)
	}
	if got := s.Overlap(1040, 1000); got != 60 {
		t.Errorf("overlap not symmetric: %d", got)
	}
	if got := s.Overlap(1000, 1100); got != 0 {
		t.Errorf("disjoint windows overlap = %d", got)
	}
	if got := s.Overlap(1000, 5000); got != 0 {
		t.Errorf("far windows overlap = %d", got)
	}
}

// TestQuickContainsMatchesBounds property-tests Contains against Bounds.
func TestQuickContainsMatchesBounds(t *testing.T) {
	f := func(pre, fol uint16, base, probe int32) bool {
		s := Spec{Pre: tuple.Time(pre), Fol: tuple.Time(fol)}
		lo, hi := s.Bounds(tuple.Time(base))
		want := tuple.Time(probe) >= lo && tuple.Time(probe) <= hi
		return s.Contains(tuple.Time(base), tuple.Time(probe)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEvictionSafety: an evictable probe is never contained in the
// window of any base tuple that can still arrive (ts >= wm).
func TestQuickEvictionSafety(t *testing.T) {
	f := func(pre, fol uint16, probe int32, wm int32, futureOffset uint16) bool {
		s := Spec{Pre: tuple.Time(pre), Fol: tuple.Time(fol)}
		p, w := tuple.Time(probe), tuple.Time(wm)
		if !s.Evictable(p, w) {
			return true
		}
		futureBase := w + tuple.Time(futureOffset)
		return !s.Contains(futureBase, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExcludeCurrentTime(t *testing.T) {
	s := Spec{Pre: 100, Fol: 0, ExcludeCurrentTime: true}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid exclude-current spec rejected: %v", err)
	}
	if s.Contains(1000, 1000) {
		t.Fatal("same-moment probe not excluded")
	}
	if !s.Contains(1000, 999) || !s.Contains(1000, 900) {
		t.Fatal("in-window probes excluded")
	}
	lo, hi := s.Bounds(1000)
	if lo != 900 || hi != 999 {
		t.Fatalf("bounds = (%d,%d)", lo, hi)
	}
	bad := Spec{Pre: 100, Fol: 50, ExcludeCurrentTime: true}
	if err := bad.Validate(); err == nil {
		t.Fatal("exclude-current with FOL accepted")
	}
}
