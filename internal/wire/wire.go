// Package wire defines the binary protocol the serving layer (package
// server, cmd/oijd) speaks: fixed-layout little-endian frames carrying
// stream tuples from clients and join results back — the OpenMLDB-style
// "feature request over the network" path for the interval join.
//
// Every frame starts with a one-byte type tag. Data frames have fixed
// layouts, so encode/decode is allocation-free:
//
//	probe  : tag(1) ts(8) key(8) val(8)                          = 25 B
//	base   : tag(1) ts(8) key(8) val(8)                          = 25 B
//	baseid : tag(1) ts(8) key(8) val(8) id(8)                    = 33 B
//	result : tag(1) seq(8) ts(8) key(8) agg(8) matches(8)        = 41 B
//	flush  : tag(1)                                              =  1 B
//	error  : tag(1) len(2) message(len)
//	nack   : tag(1) seq(8) code(1)                               = 10 B
//
// A client streams probe/base frames; the server answers every base frame
// with exactly one result frame (ordering between different base frames is
// not guaranteed) — or, under overload control, with exactly one nack frame
// carrying the same sequence number and a reason code, so a rejected
// request fails fast instead of queueing. baseid is a base frame that also
// carries the client's request id explicitly, so the client-observed
// latency for a request can be correlated with the server's /tracez span
// for the same id; the server answers it with the same id as the result's
// seq. flush asks the server to close all pending windows and answer
// outstanding bases; it is also implied by closing the write side.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"oij/internal/tuple"
)

// Frame type tags.
const (
	TagProbe  byte = 0x01
	TagBase   byte = 0x02
	TagResult byte = 0x03
	TagFlush  byte = 0x04
	TagError  byte = 0x05
	TagNack   byte = 0x06
	TagBaseID byte = 0x07
)

// Nack reason codes.
const (
	// NackOverload: the request was rejected at admission because the
	// server's ingest path is saturated (admission policy "reject").
	NackOverload byte = 0x01
	// NackDeadline: the request waited longer than the configured
	// per-request deadline before reaching the engine.
	NackDeadline byte = 0x02
	// NackNotPrimary: the node is a replication standby; it applies the
	// primary's log but answers no feature requests. Clients retry against
	// the next address in their failover list.
	NackNotPrimary byte = 0x03
	// NackFenced: the node was the primary but lost its lease (a standby
	// has promoted, or is presumed to be promoting); it refuses writes so
	// the promoted side's log stays the single history.
	NackFenced byte = 0x04
)

// MaxErrorLen bounds error-frame messages.
const MaxErrorLen = 1024

// Tuple is a decoded probe or base frame.
type Tuple struct {
	Base bool
	TS   tuple.Time
	Key  tuple.Key
	Val  float64
	// ID is the client-chosen request id carried by baseid frames (0 for
	// probe and plain base frames, where the server assigns sequence
	// numbers in arrival order instead).
	ID uint64
}

// Result is a decoded result frame.
type Result struct {
	Seq     uint64
	TS      tuple.Time
	Key     tuple.Key
	Agg     float64
	Matches int64
}

// Nack is a decoded nack frame: the server's typed rejection of the base
// request carrying the same session-local sequence number.
type Nack struct {
	Seq  uint64
	Code byte
}

// Reason renders the nack code for operators and error messages.
func (n Nack) Reason() string {
	switch n.Code {
	case NackOverload:
		return "overload"
	case NackDeadline:
		return "deadline"
	case NackNotPrimary:
		return "not-primary"
	case NackFenced:
		return "fenced"
	default:
		return fmt.Sprintf("code 0x%02x", n.Code)
	}
}

// Message is a decoded frame: exactly one of the fields is meaningful,
// selected by Kind.
type Message struct {
	Kind   byte // TagProbe, TagBase, TagResult, TagFlush, TagError or TagNack
	Tuple  Tuple
	Result Result
	Nack   Nack
	Err    string
}

// Writer encodes frames onto a buffered stream. Not safe for concurrent
// use.
type Writer struct {
	w   *bufio.Writer
	buf [41]byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// WriteTuple emits a probe or base frame.
func (w *Writer) WriteTuple(t Tuple) error {
	b := w.buf[:25]
	if t.Base {
		b[0] = TagBase
	} else {
		b[0] = TagProbe
	}
	binary.LittleEndian.PutUint64(b[1:], uint64(t.TS))
	binary.LittleEndian.PutUint64(b[9:], uint64(t.Key))
	binary.LittleEndian.PutUint64(b[17:], math.Float64bits(t.Val))
	_, err := w.w.Write(b)
	return err
}

// WriteBaseID emits a base frame carrying an explicit request id.
func (w *Writer) WriteBaseID(t Tuple) error {
	b := w.buf[:33]
	b[0] = TagBaseID
	binary.LittleEndian.PutUint64(b[1:], uint64(t.TS))
	binary.LittleEndian.PutUint64(b[9:], uint64(t.Key))
	binary.LittleEndian.PutUint64(b[17:], math.Float64bits(t.Val))
	binary.LittleEndian.PutUint64(b[25:], t.ID)
	_, err := w.w.Write(b)
	return err
}

// WriteResult emits a result frame.
func (w *Writer) WriteResult(r Result) error {
	b := w.buf[:41]
	b[0] = TagResult
	binary.LittleEndian.PutUint64(b[1:], r.Seq)
	binary.LittleEndian.PutUint64(b[9:], uint64(r.TS))
	binary.LittleEndian.PutUint64(b[17:], uint64(r.Key))
	binary.LittleEndian.PutUint64(b[25:], math.Float64bits(r.Agg))
	binary.LittleEndian.PutUint64(b[33:], uint64(r.Matches))
	_, err := w.w.Write(b)
	return err
}

// WriteFlush emits a flush frame.
func (w *Writer) WriteFlush() error {
	return w.w.WriteByte(TagFlush)
}

// WriteNack emits a nack frame.
func (w *Writer) WriteNack(n Nack) error {
	b := w.buf[:10]
	b[0] = TagNack
	binary.LittleEndian.PutUint64(b[1:], n.Seq)
	b[9] = n.Code
	_, err := w.w.Write(b)
	return err
}

// WriteError emits an error frame (message truncated to MaxErrorLen).
func (w *Writer) WriteError(msg string) error {
	if len(msg) > MaxErrorLen {
		msg = msg[:MaxErrorLen]
	}
	b := w.buf[:3]
	b[0] = TagError
	binary.LittleEndian.PutUint16(b[1:], uint16(len(msg)))
	if _, err := w.w.Write(b); err != nil {
		return err
	}
	_, err := w.w.WriteString(msg)
	return err
}

// Flush flushes the underlying buffer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes frames from a buffered stream. Not safe for concurrent
// use.
type Reader struct {
	r   *bufio.Reader
	buf [40]byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Read decodes the next frame. It returns io.EOF at a clean end of stream
// and io.ErrUnexpectedEOF on a truncated frame.
func (r *Reader) Read() (Message, error) {
	tag, err := r.r.ReadByte()
	if err != nil {
		return Message{}, err
	}
	switch tag {
	case TagProbe, TagBase:
		b := r.buf[:24]
		if _, err := io.ReadFull(r.r, b); err != nil {
			return Message{}, eofToUnexpected(err)
		}
		return Message{Kind: tag, Tuple: Tuple{
			Base: tag == TagBase,
			TS:   tuple.Time(binary.LittleEndian.Uint64(b[0:])),
			Key:  tuple.Key(binary.LittleEndian.Uint64(b[8:])),
			Val:  math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
		}}, nil
	case TagBaseID:
		b := r.buf[:32]
		if _, err := io.ReadFull(r.r, b); err != nil {
			return Message{}, eofToUnexpected(err)
		}
		return Message{Kind: tag, Tuple: Tuple{
			Base: true,
			TS:   tuple.Time(binary.LittleEndian.Uint64(b[0:])),
			Key:  tuple.Key(binary.LittleEndian.Uint64(b[8:])),
			Val:  math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
			ID:   binary.LittleEndian.Uint64(b[24:]),
		}}, nil
	case TagResult:
		b := r.buf[:40]
		if _, err := io.ReadFull(r.r, b); err != nil {
			return Message{}, eofToUnexpected(err)
		}
		return Message{Kind: tag, Result: Result{
			Seq:     binary.LittleEndian.Uint64(b[0:]),
			TS:      tuple.Time(binary.LittleEndian.Uint64(b[8:])),
			Key:     tuple.Key(binary.LittleEndian.Uint64(b[16:])),
			Agg:     math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
			Matches: int64(binary.LittleEndian.Uint64(b[32:])),
		}}, nil
	case TagFlush:
		return Message{Kind: TagFlush}, nil
	case TagNack:
		b := r.buf[:9]
		if _, err := io.ReadFull(r.r, b); err != nil {
			return Message{}, eofToUnexpected(err)
		}
		return Message{Kind: TagNack, Nack: Nack{
			Seq:  binary.LittleEndian.Uint64(b[0:]),
			Code: b[8],
		}}, nil
	case TagError:
		b := r.buf[:2]
		if _, err := io.ReadFull(r.r, b); err != nil {
			return Message{}, eofToUnexpected(err)
		}
		n := int(binary.LittleEndian.Uint16(b))
		if n > MaxErrorLen {
			return Message{}, fmt.Errorf("wire: error frame length %d exceeds limit %d", n, MaxErrorLen)
		}
		msg := make([]byte, n)
		if _, err := io.ReadFull(r.r, msg); err != nil {
			return Message{}, eofToUnexpected(err)
		}
		return Message{Kind: TagError, Err: string(msg)}, nil
	default:
		return Message{}, fmt.Errorf("wire: unknown frame tag 0x%02x", tag)
	}
}

func eofToUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
