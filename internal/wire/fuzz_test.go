package wire

import (
	"bytes"
	"io"
	"math"
	"testing"
)

// FuzzWireDecode feeds arbitrary bytes through the frame reader. The
// invariants: Read never panics, every successfully decoded frame
// re-encodes to something that decodes back identically (decode → encode
// → decode is the identity), and the reader terminates (EOF or error) on
// every input.
func FuzzWireDecode(f *testing.F) {
	// One of each frame kind, plus junk and truncations.
	var w bytes.Buffer
	enc := NewWriter(&w)
	enc.WriteTuple(Tuple{TS: 100, Key: 7, Val: 2.5})
	enc.WriteTuple(Tuple{Base: true, TS: 200, Key: 8, Val: -1})
	enc.WriteResult(Result{Seq: 1, TS: 300, Key: 9, Agg: 4.5, Matches: 3})
	enc.WriteFlush()
	enc.WriteError("boom")
	enc.WriteNack(Nack{Seq: 11, Code: NackOverload})
	enc.Flush()
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Add([]byte{TagProbe, 1, 2, 3})
	f.Add([]byte{0xff, 0x00, 0x41})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < len(data)+1; i++ { // bounded: each Read consumes >= 1 byte or errors
			m, err := r.Read()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF && m.Kind != 0 {
					t.Fatalf("error with non-zero kind: %+v, %v", m, err)
				}
				return
			}
			// Round-trip the decoded frame.
			var buf bytes.Buffer
			w := NewWriter(&buf)
			switch m.Kind {
			case TagProbe, TagBase:
				w.WriteTuple(m.Tuple)
			case TagResult:
				w.WriteResult(m.Result)
			case TagFlush:
				w.WriteFlush()
			case TagError:
				w.WriteError(m.Err)
			case TagNack:
				w.WriteNack(m.Nack)
			default:
				t.Fatalf("decoded unknown kind 0x%02x", m.Kind)
			}
			w.Flush()
			m2, err := NewReader(&buf).Read()
			if err != nil {
				t.Fatalf("re-decode of kind 0x%02x: %v", m.Kind, err)
			}
			if !sameMessage(m, m2) {
				t.Fatalf("round trip changed frame: %+v -> %+v", m, m2)
			}
		}
		t.Fatal("reader did not terminate")
	})
}

// sameMessage compares decoded frames bit-for-bit (NaN-safe).
func sameMessage(a, b Message) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case TagProbe, TagBase:
		return a.Tuple.Base == b.Tuple.Base && a.Tuple.TS == b.Tuple.TS &&
			a.Tuple.Key == b.Tuple.Key &&
			math.Float64bits(a.Tuple.Val) == math.Float64bits(b.Tuple.Val)
	case TagResult:
		return a.Result.Seq == b.Result.Seq && a.Result.TS == b.Result.TS &&
			a.Result.Key == b.Result.Key && a.Result.Matches == b.Result.Matches &&
			math.Float64bits(a.Result.Agg) == math.Float64bits(b.Result.Agg)
	case TagError:
		return a.Err == b.Err
	case TagNack:
		return a.Nack == b.Nack
	}
	return true
}

// FuzzWALFrameDecode: arbitrary 29-byte blocks either fail cleanly or
// decode to a tuple whose re-encoding reproduces the block exactly.
func FuzzWALFrameDecode(f *testing.F) {
	var seed [WALFrameBytes]byte
	EncodeWALFrame(seed[:], Tuple{TS: 77, Key: 5, Val: 1.25})
	f.Add(seed[:])
	f.Add(make([]byte, WALFrameBytes))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < WALFrameBytes {
			return
		}
		data = data[:WALFrameBytes]
		tu, err := DecodeWALFrame(data)
		if err != nil {
			return
		}
		var re [WALFrameBytes]byte
		EncodeWALFrame(re[:], tu)
		if !bytes.Equal(re[:], data) {
			t.Fatalf("accepted frame does not re-encode to itself:\n in %x\nout %x", data, re)
		}
	})
}
