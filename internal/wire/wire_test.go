package wire

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTupleRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	in := []Tuple{
		{Base: false, TS: 123, Key: 7, Val: 3.5},
		{Base: true, TS: -9, Key: 1<<64 - 1, Val: math.Inf(1)},
		{Base: true, TS: 0, Key: 0, Val: 0},
	}
	for _, tp := range in {
		if err := w.WriteTuple(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range in {
		m, err := r.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		wantKind := TagProbe
		if want.Base {
			wantKind = TagBase
		}
		if m.Kind != wantKind || m.Tuple != want {
			t.Fatalf("frame %d: got %+v want %+v", i, m.Tuple, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBaseIDRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	in := []Tuple{
		{Base: true, TS: 123, Key: 7, Val: 3.5, ID: 42},
		{Base: true, TS: -9, Key: 1<<64 - 1, Val: math.Inf(1), ID: 1<<64 - 1},
		{Base: true, TS: 0, Key: 0, Val: 0, ID: 0},
	}
	for _, tp := range in {
		if err := w.WriteBaseID(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range in {
		m, err := r.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if m.Kind != TagBaseID || m.Tuple != want {
			t.Fatalf("frame %d: got %+v want %+v", i, m.Tuple, want)
		}
	}
	// A truncated baseid frame must fail like the other fixed frames.
	buf.Reset()
	w = NewWriter(&buf)
	w.WriteBaseID(Tuple{Base: true, TS: 1, Key: 2, Val: 3, ID: 4})
	w.Flush()
	short := buf.Bytes()[:20]
	if _, err := NewReader(bytes.NewReader(short)).Read(); err != io.ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestResultRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := Result{Seq: 42, TS: 1000, Key: 5, Agg: -2.25, Matches: 17}
	if err := w.WriteResult(want); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	m, err := NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != TagResult || m.Result != want {
		t.Fatalf("got %+v", m.Result)
	}
}

func TestFlushAndErrorFrames(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteFlush()
	w.WriteError("boom")
	w.Flush()
	r := NewReader(&buf)
	m, err := r.Read()
	if err != nil || m.Kind != TagFlush {
		t.Fatalf("flush: %+v %v", m, err)
	}
	m, err = r.Read()
	if err != nil || m.Kind != TagError || m.Err != "boom" {
		t.Fatalf("error: %+v %v", m, err)
	}
}

func TestNackRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := Nack{Seq: 77, Code: NackDeadline}
	if err := w.WriteNack(want); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	m, err := NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != TagNack || m.Nack != want {
		t.Fatalf("got %+v", m.Nack)
	}
	if m.Nack.Reason() != "deadline" {
		t.Fatalf("reason = %q", m.Nack.Reason())
	}
	if (Nack{Code: NackOverload}).Reason() != "overload" {
		t.Fatal("overload reason")
	}
}

func TestErrorTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteError(strings.Repeat("x", MaxErrorLen+100))
	w.Flush()
	m, err := NewReader(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Err) != MaxErrorLen {
		t.Fatalf("error message length %d", len(m.Err))
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteTuple(Tuple{TS: 1, Key: 2, Val: 3})
	w.Flush()
	short := buf.Bytes()[:10]
	if _, err := NewReader(bytes.NewReader(short)).Read(); err != io.ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestUnknownTag(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{0xFF})).Read(); err == nil {
		t.Fatal("unknown tag accepted")
	}
}

func TestOversizedErrorFrameRejected(t *testing.T) {
	// Hand-craft an error frame header claiming a huge length.
	raw := []byte{TagError, 0xFF, 0xFF}
	if _, err := NewReader(bytes.NewReader(raw)).Read(); err == nil {
		t.Fatal("oversized error frame accepted")
	}
}

// TestQuickRoundTrip property-tests tuple and result round-trips.
func TestQuickRoundTrip(t *testing.T) {
	f := func(base bool, ts int64, key uint64, val float64, seq uint64, matches int64) bool {
		if math.IsNaN(val) {
			val = 0 // NaN != NaN would fail equality, not the codec
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		tp := Tuple{Base: base, TS: ts, Key: key, Val: val}
		rs := Result{Seq: seq, TS: ts, Key: key, Agg: val, Matches: matches}
		w.WriteTuple(tp)
		w.WriteResult(rs)
		w.Flush()
		r := NewReader(&buf)
		m1, err1 := r.Read()
		m2, err2 := r.Read()
		return err1 == nil && err2 == nil && m1.Tuple == tp && m2.Result == rs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
