package wire

import (
	"math"
	"testing"

	"oij/internal/tuple"
)

// TestWALFrameRoundTrip: encode → decode is the identity, bit for bit.
func TestWALFrameRoundTrip(t *testing.T) {
	cases := []Tuple{
		{TS: 0, Key: 0, Val: 0},
		{TS: 1<<62 - 1, Key: tuple.Key(^uint64(0) >> 1), Val: -math.MaxFloat64},
		{TS: 123456, Key: 42, Val: 3.141592653589793},
		{Base: true, TS: 7, Key: 9, Val: math.Inf(1)},
		{TS: -5, Key: 1, Val: math.SmallestNonzeroFloat64},
	}
	var b [WALFrameBytes]byte
	for _, want := range cases {
		EncodeWALFrame(b[:], want)
		got, err := DecodeWALFrame(b[:])
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got.Base != want.Base || got.TS != want.TS || got.Key != want.Key ||
			math.Float64bits(got.Val) != math.Float64bits(want.Val) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

// TestWALFrameDetectsCorruption: flipping any single bit of a frame must
// fail the checksum (or the tag check) — the property v1 lacked.
func TestWALFrameDetectsCorruption(t *testing.T) {
	var b [WALFrameBytes]byte
	EncodeWALFrame(b[:], Tuple{TS: 9999, Key: 7, Val: 2.5})
	for bit := 0; bit < WALFrameBytes*8; bit++ {
		c := b
		c[bit/8] ^= 1 << (bit % 8)
		if _, err := DecodeWALFrame(c[:]); err == nil {
			t.Fatalf("bit flip at %d went undetected", bit)
		}
	}
}

// TestWALFrameBadTag: non-data tags are rejected before the checksum.
func TestWALFrameBadTag(t *testing.T) {
	var b [WALFrameBytes]byte
	EncodeWALFrame(b[:], Tuple{TS: 1, Key: 1, Val: 1})
	for _, tag := range []byte{TagResult, TagFlush, TagError, 0x00, 0xff} {
		c := b
		c[0] = tag
		if _, err := DecodeWALFrame(c[:]); err == nil {
			t.Fatalf("tag 0x%02x accepted", tag)
		}
	}
}
