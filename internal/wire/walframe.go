// WAL frame format v2: the on-disk encoding of the server's write-ahead
// log. Version 1 reused the raw network frames (25-byte probe records, no
// integrity check), so a flipped bit replayed garbage silently. Version 2
// keeps the same fixed layout but prefixes every segment with a magic
// header and suffixes every frame with a CRC32C of its contents:
//
//	segment: magic "OIJWALv2" (8)  then frames
//	frame  : tag(1) ts(8) key(8) val(8) crc32c(4)               = 29 B
//
// The checksum covers the first 25 bytes (tag through val). Fixed-size
// frames mean recovery can skip a corrupted frame and resynchronize at the
// next 29-byte boundary — there is no resync marker, so the format assumes
// length-preserving corruption (bit rot, torn sectors), which is what
// checksums are for; lost bytes end the segment at the last valid frame.
package wire

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"

	"oij/internal/tuple"
)

// WALMagicV2 opens every v2 WAL segment. Legacy (v1) segments start
// directly with a frame tag byte (0x01/0x02), which can never collide with
// 'O', so format detection is a single-byte peek.
const WALMagicV2 = "OIJWALv2"

// WALHeaderBytes is the v2 segment header size.
const WALHeaderBytes = len(WALMagicV2)

// WALFrameBytes is the size of one v2 WAL frame on disk.
const WALFrameBytes = 29

// walFramePayload is the checksummed prefix of a frame.
const walFramePayload = 25

// ErrBadFrame marks a WAL frame whose checksum or tag is invalid.
var ErrBadFrame = errors.New("wire: wal frame corrupt")

// TagWALEpoch marks an epoch frame: a v2 WAL frame (same 29-byte layout
// and checksum) that carries the replication fencing epoch instead of a
// tuple. One is stamped at the start of every segment written by a
// replicated node and again whenever the epoch changes, so recovery of
// any surviving segment suffix finds the highest epoch this log acked
// under. The tag is outside the data range, so v2 readers that predate
// replication skip epoch frames as unparseable rather than replaying
// garbage tuples. The epoch occupies the ts field; key and val are zero.
const TagWALEpoch byte = 0x0e

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EncodeWALFrame writes t as one v2 WAL frame into b, which must hold at
// least WALFrameBytes.
func EncodeWALFrame(b []byte, t Tuple) {
	if t.Base {
		b[0] = TagBase
	} else {
		b[0] = TagProbe
	}
	binary.LittleEndian.PutUint64(b[1:], uint64(t.TS))
	binary.LittleEndian.PutUint64(b[9:], uint64(t.Key))
	binary.LittleEndian.PutUint64(b[17:], math.Float64bits(t.Val))
	binary.LittleEndian.PutUint32(b[walFramePayload:], crc32.Checksum(b[:walFramePayload], castagnoli))
}

// EncodeWALEpochFrame writes a fencing-epoch frame into b, which must
// hold at least WALFrameBytes.
func EncodeWALEpochFrame(b []byte, epoch uint64) {
	b[0] = TagWALEpoch
	binary.LittleEndian.PutUint64(b[1:], epoch)
	binary.LittleEndian.PutUint64(b[9:], 0)
	binary.LittleEndian.PutUint64(b[17:], 0)
	binary.LittleEndian.PutUint32(b[walFramePayload:], crc32.Checksum(b[:walFramePayload], castagnoli))
}

// DecodeWALEpochFrame parses an epoch frame from b[:WALFrameBytes],
// returning ErrBadFrame when the tag is not TagWALEpoch or the checksum
// does not match.
func DecodeWALEpochFrame(b []byte) (uint64, error) {
	if b[0] != TagWALEpoch {
		return 0, ErrBadFrame
	}
	sum := binary.LittleEndian.Uint32(b[walFramePayload:])
	if sum != crc32.Checksum(b[:walFramePayload], castagnoli) {
		return 0, ErrBadFrame
	}
	return binary.LittleEndian.Uint64(b[1:]), nil
}

// DecodeWALFrame parses one v2 WAL frame from b[:WALFrameBytes]. It
// returns ErrBadFrame when the tag is not a data tag or the checksum does
// not match — the caller decides whether to skip or stop.
func DecodeWALFrame(b []byte) (Tuple, error) {
	if b[0] != TagProbe && b[0] != TagBase {
		return Tuple{}, ErrBadFrame
	}
	sum := binary.LittleEndian.Uint32(b[walFramePayload:])
	if sum != crc32.Checksum(b[:walFramePayload], castagnoli) {
		return Tuple{}, ErrBadFrame
	}
	return Tuple{
		Base: b[0] == TagBase,
		TS:   tuple.Time(binary.LittleEndian.Uint64(b[1:])),
		Key:  tuple.Key(binary.LittleEndian.Uint64(b[9:])),
		Val:  math.Float64frombits(binary.LittleEndian.Uint64(b[17:])),
	}, nil
}
