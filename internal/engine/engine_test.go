package engine

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"oij/internal/agg"
	"oij/internal/tuple"
	"oij/internal/window"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Joiners != 1 || c.QueueCap != 8192 || c.WatermarkEvery != 256 {
		t.Fatalf("defaults = %+v", c)
	}
	// Explicit values survive.
	c = Config{Joiners: 7, QueueCap: 16, WatermarkEvery: 3}.WithDefaults()
	if c.Joiners != 7 || c.QueueCap != 16 || c.WatermarkEvery != 3 {
		t.Fatalf("explicit config clobbered: %+v", c)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Joiners: 0, Window: window.Spec{Pre: 1}}).Validate(); err == nil {
		t.Fatal("zero joiners accepted")
	}
	if err := (Config{Joiners: 1}).Validate(); err == nil {
		t.Fatal("empty window accepted")
	}
	if err := (Config{Joiners: 1, Window: window.Spec{Pre: 1}}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestWatermarkTuples(t *testing.T) {
	wm := WatermarkTuple(12345)
	if !IsWatermark(wm) || wm.TS != 12345 {
		t.Fatalf("watermark tuple = %+v", wm)
	}
	if IsWatermark(tuple.Tuple{Side: tuple.Base}) || IsWatermark(tuple.Tuple{Side: tuple.Probe}) {
		t.Fatal("data tuple classified as watermark")
	}
}

func TestEmitModeString(t *testing.T) {
	if OnArrival.String() != "on-arrival" || OnWatermark.String() != "on-watermark" {
		t.Fatal("EmitMode strings wrong")
	}
}

// TestPushStallDetection fills a ring with no consumer: the blocked push
// must park (not busy-spin), the stall snapshot must show the ring wedged,
// and draining the ring must complete the push and clear the stall.
func TestPushStallDetection(t *testing.T) {
	cfg := Config{Joiners: 1, Window: window.Spec{Pre: 100}, QueueCap: 2}.WithDefaults()
	tr := NewTransport(cfg)
	for tr.Rings[0].TryPush(tuple.Tuple{}) {
	}
	done := make(chan struct{})
	go func() {
		tr.Push(0, tuple.Tuple{TS: 42})
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := tr.Stalls()
		if s.Parks > 0 && s.BlockedFor[0] > 0 {
			if w := s.Wedged(time.Nanosecond); len(w) != 1 || w[0] != 0 {
				t.Fatalf("wedged = %v", w)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stall never detected: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	// Drain one slot; the parked push must complete and reset the stall.
	if _, ok := tr.Rings[0].TryPop(); !ok {
		t.Fatal("pop failed")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("parked push never completed")
	}
	if s := tr.Stalls(); s.BlockedFor[0] != 0 {
		t.Fatalf("stall not cleared: %+v", s)
	}
}

// TestTransportDelivery checks FIFO per ring, watermark broadcast, and the
// drain hook.
func TestTransportDelivery(t *testing.T) {
	cfg := Config{Joiners: 3, Window: window.Spec{Pre: 100, Lateness: 10}, WatermarkEvery: 4}.WithDefaults()
	tr := NewTransport(cfg)

	type seen struct {
		tuples []tuple.Time
		wms    []tuple.Time
		drain  atomic.Bool
	}
	all := make([]seen, 3)
	for i := 0; i < 3; i++ {
		i := i
		tr.Go(i, JoinerHooks{
			OnTuple:     func(tp tuple.Tuple) { all[i].tuples = append(all[i].tuples, tp.TS) },
			OnWatermark: func(wm tuple.Time) { all[i].wms = append(all[i].wms, wm) },
			OnDrained:   func() { all[i].drain.Store(true) },
		})
	}

	// 8 observed tuples -> two in-band watermark broadcasts (every 4).
	for i := 0; i < 8; i++ {
		ts := tuple.Time(100 * (i + 1))
		tr.Observe(ts)
		tr.Push(i%3, tuple.Tuple{TS: ts, Side: tuple.Probe})
	}
	tr.Finish()

	for i := range all {
		if !all[i].drain.Load() {
			t.Fatalf("joiner %d: OnDrained not called", i)
		}
		// Two periodic watermarks (maxTS-lateness) plus the final one.
		want := []tuple.Time{400 - 10, 800 - 10, FinalWatermark}
		if len(all[i].wms) != len(want) {
			t.Fatalf("joiner %d: watermarks %v", i, all[i].wms)
		}
		for k, wm := range want {
			if all[i].wms[k] != wm {
				t.Fatalf("joiner %d: watermark %d = %d, want %d", i, k, all[i].wms[k], wm)
			}
		}
		// FIFO per ring.
		if !sort.SliceIsSorted(all[i].tuples, func(a, b int) bool { return all[i].tuples[a] < all[i].tuples[b] }) {
			t.Fatalf("joiner %d: out of order %v", i, all[i].tuples)
		}
	}
	total := len(all[0].tuples) + len(all[1].tuples) + len(all[2].tuples)
	if total != 8 {
		t.Fatalf("delivered %d tuples, want 8", total)
	}
}

func TestTransportBusyTracking(t *testing.T) {
	cfg := Config{Joiners: 1, Window: window.Spec{Pre: 1}}.WithDefaults()
	tr := NewTransport(cfg)
	var busy atomic.Int64
	tr.Go(0, JoinerHooks{
		OnTuple:     func(tuple.Tuple) { time.Sleep(time.Millisecond) },
		OnWatermark: func(tuple.Time) {},
		Busy:        &busy,
	})
	for i := 0; i < 5; i++ {
		tr.Push(0, tuple.Tuple{TS: tuple.Time(i), Side: tuple.Probe})
	}
	tr.Finish()
	if busy.Load() < int64(4*time.Millisecond) {
		t.Fatalf("busy = %v, want >= ~5ms", time.Duration(busy.Load()))
	}
}

func TestPendingHeapOrdering(t *testing.T) {
	var h PendingHeap
	if _, ok := h.Min(); ok {
		t.Fatal("Min on empty heap")
	}
	if _, ok := h.PopIfBefore(100); ok {
		t.Fatal("pop on empty heap")
	}
	rng := rand.New(rand.NewSource(5))
	for _, ts := range rng.Perm(100) {
		h.Push(tuple.Tuple{TS: tuple.Time(ts)})
	}
	if h.Len() != 100 {
		t.Fatalf("Len = %d", h.Len())
	}
	if m, ok := h.Min(); !ok || m.TS != 0 {
		t.Fatalf("Min = %+v", m)
	}
	// PopIfBefore respects the strict bound and yields ascending order.
	prev := tuple.Time(-1)
	popped := 0
	for {
		tp, ok := h.PopIfBefore(50)
		if !ok {
			break
		}
		if tp.TS <= prev {
			t.Fatalf("pop order violated: %d after %d", tp.TS, prev)
		}
		if tp.TS >= 50 {
			t.Fatalf("popped %d at bound 50", tp.TS)
		}
		prev = tp.TS
		popped++
	}
	if popped != 50 {
		t.Fatalf("popped %d, want 50", popped)
	}
	if h.Len() != 50 {
		t.Fatalf("remaining = %d", h.Len())
	}
}

// TestQuickPendingHeap property-tests heap behaviour against sorting.
func TestQuickPendingHeap(t *testing.T) {
	f := func(tss []int16, bound int16) bool {
		var h PendingHeap
		for _, ts := range tss {
			h.Push(tuple.Tuple{TS: tuple.Time(ts)})
		}
		var got []tuple.Time
		for {
			tp, ok := h.PopIfBefore(tuple.Time(bound))
			if !ok {
				break
			}
			got = append(got, tp.TS)
		}
		var want []tuple.Time
		for _, ts := range tss {
			if tuple.Time(ts) < tuple.Time(bound) {
				want = append(want, tuple.Time(ts))
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSinks(t *testing.T) {
	r := tuple.Result{BaseSeq: 3, Agg: 2, Matches: 1}
	NullSink{}.Emit(0, r) // must not panic

	var cs CountSink
	cs.Emit(0, r)
	cs.Emit(1, r)
	if cs.Count() != 2 {
		t.Fatalf("CountSink.Count = %d", cs.Count())
	}

	var col CollectSink
	col.Emit(0, r)
	col.Emit(0, tuple.Result{BaseSeq: 9})
	if len(col.Results()) != 2 {
		t.Fatal("CollectSink lost results")
	}
	if _, ok := col.ByBaseSeq()[9]; !ok {
		t.Fatal("ByBaseSeq missing entry")
	}

	ls := NewLatencySink(2, 4)
	ls.Emit(0, r)
	ls.Record(0, 5*time.Millisecond)
	ls.Record(1, 15*time.Millisecond)
	if ls.Count() != 1 {
		t.Fatalf("LatencySink.Count = %d", ls.Count())
	}
	cdf := ls.CDF()
	if cdf.Quantile(0) != 5*time.Millisecond || cdf.Quantile(1) != 15*time.Millisecond {
		t.Fatal("LatencySink CDF wrong")
	}
	// LatencySink satisfies the recorder interface engines probe for.
	var _ LatencyRecorder = ls
}

func TestStatsHelpers(t *testing.T) {
	s := NewStats(2)
	s.Processed[0].Store(30)
	s.Processed[1].Store(10)
	if s.TotalProcessed() != 40 {
		t.Fatalf("TotalProcessed = %d", s.TotalProcessed())
	}
	loads := s.Loads()
	if loads[0] != 30 || loads[1] != 10 {
		t.Fatalf("Loads = %v", loads)
	}
	s.Busy[0].Store(int64(10 * time.Second))
	s.Breakdown[0].Lookup = 3 * time.Second
	s.Breakdown[0].Match = 2 * time.Second
	FillOther(s)
	if s.Breakdown[0].Other != 5*time.Second {
		t.Fatalf("Other = %v", s.Breakdown[0].Other)
	}
	// Other never goes negative.
	s.Busy[1].Store(int64(time.Second))
	s.Breakdown[1].Lookup = 2 * time.Second
	FillOther(s)
	if s.Breakdown[1].Other != 0 {
		t.Fatalf("negative Other: %v", s.Breakdown[1].Other)
	}
	s.Effect[0].Observe(1, 2)
	s.Effect[1].Observe(1, 1)
	if v := s.MergedEffectiveness(); v != 0.75 {
		t.Fatalf("merged effectiveness = %g", v)
	}
	if s.MergedBreakdown().Lookup != 5*time.Second {
		t.Fatal("merged breakdown wrong")
	}
}

func TestHashKeyDistribution(t *testing.T) {
	// Sequential keys must spread evenly over a small modulus.
	const buckets = 16
	counts := make([]int, buckets)
	for k := tuple.Key(0); k < 16000; k++ {
		counts[HashKey(k)%buckets]++
	}
	for b, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("bucket %d has %d of 16000 (expected ~1000)", b, c)
		}
	}
	if HashKey(1) == HashKey(2) {
		t.Fatal("trivial collision")
	}
}

// TestEnginesImplementInterface pins the Engine contract at compile time
// via the harness-built variants (done in package harness); here we check
// the agg import is wired for the config.
func TestConfigAgg(t *testing.T) {
	c := Config{Joiners: 1, Window: window.Spec{Pre: 1}, Agg: agg.Max}
	if c.Agg != agg.Max {
		t.Fatal("agg not carried")
	}
}
