// Package engine defines the contract shared by every online-interval-join
// implementation in the repository (Key-OIJ, Scale-OIJ, SplitJoin, the
// OpenMLDB-style baseline): configuration, the driver-facing lifecycle, the
// result sink, runtime statistics, and the common joiner plumbing (SPSC
// transport, in-band watermark control tuples, key hashing), so that
// measured differences between algorithms come from their join designs and
// not from incidental framework differences.
package engine

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"oij/internal/agg"
	"oij/internal/metrics"
	"oij/internal/queue"
	"oij/internal/trace"
	"oij/internal/tuple"
	"oij/internal/watermark"
	"oij/internal/window"
)

// EmitMode selects when a base tuple's aggregate is emitted.
type EmitMode uint8

const (
	// OnArrival emits the aggregate over currently buffered probes the
	// moment the base tuple is processed — the online-serving semantics
	// of OpenMLDB feature extraction (a request is answered now, from
	// the data present now). Latency excludes event-time completeness
	// waits; out-of-order probes that arrive after the base tuple do not
	// retroactively update its result.
	OnArrival EmitMode = iota
	// OnWatermark buffers base tuples and emits once the watermark
	// guarantees the window is complete: the exact event-time semantics
	// ("100% accuracy") OpenMLDB applications assume. Results are
	// deterministic regardless of thread interleaving, which the
	// cross-engine correctness tests rely on.
	OnWatermark
)

// String implements fmt.Stringer.
func (m EmitMode) String() string {
	if m == OnArrival {
		return "on-arrival"
	}
	return "on-watermark"
}

// FinalWatermark is the in-band watermark injected by Drain to flush every
// pending window. It is far below MaxInt64 so ts+FOL arithmetic cannot
// overflow.
const FinalWatermark tuple.Time = math.MaxInt64 / 4

// Config configures any engine.
type Config struct {
	// Joiners is the number of parallel joiner goroutines.
	Joiners int
	// Window is the interval-join window and lateness.
	Window window.Spec
	// Agg is the aggregation operator applied per base tuple.
	Agg agg.Func
	// Mode selects arrival or watermark emission (see EmitMode).
	Mode EmitMode
	// QueueCap is the per-joiner transport ring capacity (default 8192).
	QueueCap int
	// WatermarkEvery injects an in-band watermark after this many
	// ingested tuples (default 256). Watermarks drive eviction in both
	// modes and finalization in OnWatermark mode.
	WatermarkEvery int
	// Instrument enables the lookup/match/other time breakdown and
	// effectiveness accounting (adds two clock reads per join).
	Instrument bool
	// TrackBusy enables live per-joiner busy-time counters for the
	// utilization trace of Fig. 14.
	TrackBusy bool
	// AdaptiveLateness derives the watermark lag from the observed
	// tardiness distribution instead of Window.Lateness — the paper's
	// "tunable accuracy without prior knowledge" future-work item.
	// Tuples later than the online estimate may lose matches; the
	// quantile tunes that accuracy/buffer-space trade-off.
	AdaptiveLateness bool
	// AdaptiveQuantile is the tardiness quantile the estimate covers
	// (default 0.999).
	AdaptiveQuantile float64
	// Flight, when set, receives watermark-advance events from the
	// transport (nil disables; trace.Flight methods are nil-safe so the
	// hot path pays only the advance check).
	Flight *trace.Flight
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Joiners <= 0 {
		c.Joiners = 1
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 8192
	}
	if c.WatermarkEvery <= 0 {
		c.WatermarkEvery = 256
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Joiners < 1 {
		return fmt.Errorf("engine: joiners must be >= 1, got %d", c.Joiners)
	}
	return c.Window.Validate()
}

// Sink receives join results. Emit may be called concurrently from
// different joiner indexes but never concurrently with the same index, so
// per-joiner sharded sinks need no locking.
type Sink interface {
	Emit(joiner int, r tuple.Result)
}

// StageRecorder is implemented by sinks that attach per-request trace
// spans (the serving path's sampled tracing). Engines assert their sink
// for it at construction, like LatencyRecorder; SpanFor returns nil for
// unsampled requests, and every trace.Span method is nil-safe, so joiners
// stamp unconditionally. Safe from any joiner goroutine.
type StageRecorder interface {
	SpanFor(baseSeq uint64) *trace.Span
}

// AllocRecorder is implemented by sinks that account hot-path allocations
// exactly, per stage — the always-on baseline for the allocation-free
// hot-path work. Engines assert their sink for it at construction (like
// StageRecorder) and report only when an allocation actually happened
// (slice growth, new state object), so the disabled path costs one nil
// check. Safe from any joiner goroutine: the counters behind it are
// lock-free.
type AllocRecorder interface {
	CountAlloc(st trace.Stage, objs, bytes int64)
}

// Accounting sizes for AllocRecorder reports. Slice growth is exact
// (capacity delta × element size); aggregation states are interface-boxed
// small structs whose concrete size varies by aggregate, so they are
// booked at a nominal fixed size — the objs count is the signal ROADMAP
// item 2 needs (states-per-tuple), the bytes are an order-of-magnitude
// aid.
const StateAllocBytes = 48

// TupleAllocBytes and TSValAllocBytes are the element sizes used when
// booking probe-buffer and scratch-slice growth.
var (
	TupleAllocBytes = int64(unsafe.Sizeof(tuple.Tuple{}))
	TSValAllocBytes = int64(unsafe.Sizeof(TSVal{}))
)

// CountSliceGrowth books one slice reallocation with rec when the
// capacity changed across an append. The disabled path (nil rec) is a
// single comparison, cheap enough for every hot-path append site.
func CountSliceGrowth(rec AllocRecorder, st trace.Stage, beforeCap, afterCap int, elemBytes int64) {
	if rec != nil && afterCap != beforeCap {
		rec.CountAlloc(st, 1, int64(afterCap-beforeCap)*elemBytes)
	}
}

// CountStateAlloc books one aggregation-state allocation.
func CountStateAlloc(rec AllocRecorder, st trace.Stage) {
	if rec != nil {
		rec.CountAlloc(st, 1, StateAllocBytes)
	}
}

// Engine is the driver-facing lifecycle every implementation provides.
type Engine interface {
	// Name identifies the algorithm ("key-oij", "scale-oij", ...).
	Name() string
	// Start launches the joiner goroutines.
	Start()
	// Ingest feeds one tuple in arrival order. Single-threaded: only the
	// driver goroutine calls it, between Start and Drain.
	Ingest(t tuple.Tuple)
	// Drain flushes in-flight work (injecting a final watermark so every
	// pending window closes), stops the joiners, and waits for them.
	Drain()
	// Heartbeat re-broadcasts the current watermark so joiners
	// re-evaluate pending windows while the input is idle — long-lived
	// serving deployments call it periodically; batch replays never
	// need it. Driver goroutine only, like Ingest.
	Heartbeat()
	// Stats returns run statistics. Valid after Drain; the per-joiner
	// Processed, Busy, and Effect counters are additionally safe to
	// sample live (they are single-writer atomics).
	Stats() *Stats
}

// Resizer is implemented by engines that can retune their active joiner
// count live, without a restart and without migrating buffered data. The
// full joiner pool (Config.Joiners goroutines and rings) stays running —
// resizing only changes how many of them receive newly routed tuples, so
// watermarks keep flowing to every ring and data buffered on deactivated
// joiners stays readable until it expires. Scale-OIJ implements it via its
// shared-processing read-set masks; engines with immutable partition
// ownership (static hash routing) do not.
type Resizer interface {
	// Resize sets the active joiner count to n (clamped to
	// [1, Config.Joiners]). Returns false when the engine cannot resize
	// under its current options (the caller should stop asking). Driver
	// goroutine only, like Ingest.
	Resize(n int) bool
	// ActiveJoiners returns the current active joiner count. Safe from
	// any goroutine.
	ActiveJoiners() int
}

// Introspector is implemented by engines that expose live transport state
// for the observability layer. All methods are safe from any goroutine
// while the engine runs — they read atomics published by the driver.
type Introspector interface {
	// QueueDepths returns the current depth of each joiner's input ring.
	QueueDepths() []int
	// Watermark returns the newest broadcast watermark (watermark.MinTime
	// before the first broadcast).
	Watermark() tuple.Time
	// MaxEventTS returns the newest observed event timestamp
	// (watermark.MinTime before the first tuple). MaxEventTS − Watermark
	// is the live watermark lag.
	MaxEventTS() tuple.Time
	// Stalls reports the transport's push-stall state (see StallSnapshot).
	Stalls() StallSnapshot
}

// StallSnapshot is the stall detector's view of the driver→joiner rings:
// how often the driver had to park waiting for ring space, and for each
// ring how long the driver's current push (if any) has been blocked. A
// joiner whose BlockedFor keeps growing is wedged — its consumer stopped
// draining — and the watchdog surfaces it instead of letting the driver
// spin invisibly.
type StallSnapshot struct {
	// Parks counts driver parks (bounded sleeps after the spin budget was
	// exhausted) across all rings since startup.
	Parks int64
	// BlockedFor[i] is how long the driver's in-progress push to ring i
	// has been blocked (0 when the last push completed normally).
	BlockedFor []time.Duration
}

// Wedged returns the indexes of rings blocked longer than threshold.
func (s StallSnapshot) Wedged(threshold time.Duration) []int {
	var out []int
	for i, d := range s.BlockedFor {
		if d >= threshold {
			out = append(out, i)
		}
	}
	return out
}

// Stats aggregates what the experiments measure.
type Stats struct {
	// Processed[i] counts data tuples handled by joiner i (the paper's
	// per-joiner workload W_i).
	Processed []atomic.Int64
	// Busy[i] accumulates nanoseconds joiner i spent processing, for
	// utilization sampling (only maintained with Config.TrackBusy).
	Busy []atomic.Int64
	// Breakdown[i] is joiner i's lookup/match/other split (only with
	// Config.Instrument); owned by joiner i until Drain returns.
	Breakdown []metrics.Breakdown
	// Effect[i] is joiner i's effectiveness accumulator (Eq. 1; only
	// with Config.Instrument).
	Effect []metrics.Effectiveness
	// Evicted counts probe tuples expired from buffers.
	Evicted atomic.Int64
	// Results counts emitted results.
	Results atomic.Int64
	// Extra carries engine-specific counters (reschedules, broadcast
	// tuples, lock waits); written by the engine before Drain returns.
	Extra map[string]int64
}

// NewStats sizes per-joiner slots.
func NewStats(joiners int) *Stats {
	return &Stats{
		Processed: make([]atomic.Int64, joiners),
		Busy:      make([]atomic.Int64, joiners),
		Breakdown: make([]metrics.Breakdown, joiners),
		Effect:    make([]metrics.Effectiveness, joiners),
		Extra:     map[string]int64{},
	}
}

// Loads renders Processed as float64 workloads for Unbalancedness (Eq. 2).
func (s *Stats) Loads() []float64 {
	out := make([]float64, len(s.Processed))
	for i := range s.Processed {
		out[i] = float64(s.Processed[i].Load())
	}
	return out
}

// TotalProcessed sums Processed across joiners.
func (s *Stats) TotalProcessed() int64 {
	var n int64
	for i := range s.Processed {
		n += s.Processed[i].Load()
	}
	return n
}

// MergedBreakdown folds the per-joiner breakdowns.
func (s *Stats) MergedBreakdown() metrics.Breakdown {
	var b metrics.Breakdown
	for i := range s.Breakdown {
		b.Add(s.Breakdown[i])
	}
	return b
}

// MergedEffectiveness folds the per-joiner effectiveness accumulators.
// Safe to call live: the accumulators are single-writer atomics.
func (s *Stats) MergedEffectiveness() float64 {
	var e metrics.Effectiveness
	for i := range s.Effect {
		e.Merge(&s.Effect[i])
	}
	return e.Value()
}

// watermarkTuple marks in-band control tuples: Side == watermarkSide and TS
// holds the watermark value.
const watermarkSide tuple.Side = 255

// WatermarkTuple builds an in-band watermark control tuple.
func WatermarkTuple(wm tuple.Time) tuple.Tuple {
	return tuple.Tuple{TS: wm, Side: watermarkSide}
}

// IsWatermark reports whether t is an in-band watermark.
func IsWatermark(t tuple.Tuple) bool { return t.Side == watermarkSide }

// Transport owns the driver→joiner rings plus the watermark cadence shared
// by every engine. Engines embed it and supply a routing decision per
// tuple.
type Transport struct {
	Cfg      Config
	Rings    []*queue.SPSC[tuple.Tuple]
	assign   *watermarkAssigner
	adaptive *watermark.Adaptive
	wg       sync.WaitGroup

	// pubMax/pubWM mirror the driver-owned watermark state for concurrent
	// observers (the admin scrape path). The driver stores, anyone loads;
	// the cost on the ingest path is one uncontended atomic store.
	pubMax atomic.Int64
	pubWM  atomic.Int64

	// stall is the per-ring stall state behind StallSnapshot. The driver
	// writes, the watchdog reads; padded so the scrape never bounces the
	// driver's cache line.
	stall []ringStall
	parks atomic.Int64
}

// ringStall records one ring's blocked-push state.
type ringStall struct {
	// blockedSince is the wall-clock nanos when the driver's current push
	// to this ring exhausted its spin budget (0 = not blocked).
	blockedSince atomic.Int64
	_            [cacheLineSize - 8]byte
}

const cacheLineSize = 64

// Push's overload behavior: spin pushSpinBudget times yielding the
// processor, then park in pushParkDelay sleeps. Spinning keeps the
// uncontended hot path as fast as before (a full ring normally drains in
// microseconds); parking caps the CPU a wedged joiner can burn and gives
// the stall detector a timestamp to watch.
const (
	pushSpinBudget = 256
	pushParkDelay  = 100 * time.Microsecond
)

// watermarkAssigner tracks the driver-side max event timestamp.
type watermarkAssigner struct {
	maxTS tuple.Time
	seen  bool
	count int
	total int64
	// lastWM is the newest watermark recorded to the flight recorder, so
	// a heartbeat rebroadcast of an unchanged watermark is not an event.
	lastWM     tuple.Time
	lastWMSeen bool
}

// NewTransport builds rings for cfg.Joiners joiners.
func NewTransport(cfg Config) *Transport {
	t := &Transport{Cfg: cfg, assign: &watermarkAssigner{}}
	t.pubMax.Store(int64(watermark.MinTime))
	t.pubWM.Store(int64(watermark.MinTime))
	if cfg.AdaptiveLateness {
		t.adaptive = watermark.NewAdaptive(cfg.AdaptiveQuantile, 0, 0)
	}
	t.Rings = make([]*queue.SPSC[tuple.Tuple], cfg.Joiners)
	for i := range t.Rings {
		t.Rings[i] = queue.NewSPSC[tuple.Tuple](cfg.QueueCap)
	}
	t.stall = make([]ringStall, cfg.Joiners)
	return t
}

// Push blocks until the tuple fits in ring i (backpressure): a bounded
// spin, then park-and-retry with stall accounting so a wedged consumer
// shows up on the watchdog instead of pegging the driver core forever.
func (t *Transport) Push(i int, tp tuple.Tuple) {
	if t.Rings[i].TryPush(tp) {
		return
	}
	for spin := 0; spin < pushSpinBudget; spin++ {
		runtime.Gosched()
		if t.Rings[i].TryPush(tp) {
			return
		}
	}
	st := &t.stall[i]
	st.blockedSince.CompareAndSwap(0, time.Now().UnixNano())
	for {
		t.parks.Add(1)
		time.Sleep(pushParkDelay)
		if t.Rings[i].TryPush(tp) {
			st.blockedSince.Store(0)
			return
		}
	}
}

// Stalls snapshots the push-stall state. Safe from any goroutine.
func (t *Transport) Stalls() StallSnapshot {
	s := StallSnapshot{Parks: t.parks.Load(), BlockedFor: make([]time.Duration, len(t.stall))}
	now := time.Now().UnixNano()
	for i := range t.stall {
		if since := t.stall[i].blockedSince.Load(); since != 0 {
			s.BlockedFor[i] = time.Duration(now - since)
		}
	}
	return s
}

// Broadcast pushes tp to every ring (watermarks; SplitJoin data tuples).
func (t *Transport) Broadcast(tp tuple.Tuple) {
	for i := range t.Rings {
		t.Push(i, tp)
	}
}

// Observe records a data tuple's event timestamp and, every
// WatermarkEvery tuples, broadcasts the current watermark in-band:
// maxSeenTS minus the configured lateness, or minus the online tardiness
// estimate when AdaptiveLateness is set. Driver-side only.
func (t *Transport) Observe(ts tuple.Time) {
	a := t.assign
	var wm tuple.Time
	if t.adaptive != nil {
		wm = t.adaptive.Observe(ts)
	}
	if !a.seen || ts > a.maxTS {
		a.maxTS = ts
		a.seen = true
		t.pubMax.Store(int64(ts))
	}
	if t.adaptive == nil {
		wm = a.maxTS - t.Cfg.Window.Lateness
	}
	a.count++
	a.total++
	if a.count >= t.Cfg.WatermarkEvery {
		a.count = 0
		t.pubWM.Store(int64(wm))
		t.recordWM(wm)
		t.Broadcast(WatermarkTuple(wm))
	}
}

// recordWM logs a watermark advance to the flight recorder (driver-side
// only; no-op when the watermark did not move or no recorder is set).
func (t *Transport) recordWM(wm tuple.Time) {
	if t.Cfg.Flight == nil {
		return
	}
	a := t.assign
	if a.lastWMSeen && wm <= a.lastWM {
		return
	}
	a.lastWM = wm
	a.lastWMSeen = true
	t.Cfg.Flight.Record(trace.CompWatermark, trace.EvWatermarkAdvance, uint64(wm), uint64(a.total))
}

// Heartbeat re-broadcasts the current watermark (a no-op before any tuple
// was observed). Driver-side only.
func (t *Transport) Heartbeat() {
	if !t.assign.seen {
		return
	}
	wm := t.assign.maxTS - t.Cfg.Window.Lateness
	if t.adaptive != nil {
		wm = t.adaptive.Current()
	}
	t.pubWM.Store(int64(wm))
	t.recordWM(wm)
	t.Broadcast(WatermarkTuple(wm))
}

// QueueDepths samples the live depth of every joiner ring.
func (t *Transport) QueueDepths() []int {
	out := make([]int, len(t.Rings))
	for i, r := range t.Rings {
		out[i] = r.Len()
	}
	return out
}

// Watermark returns the newest broadcast watermark (watermark.MinTime
// before the first broadcast). Safe from any goroutine.
func (t *Transport) Watermark() tuple.Time { return tuple.Time(t.pubWM.Load()) }

// MaxEventTS returns the newest observed event timestamp (watermark.MinTime
// before the first tuple). Safe from any goroutine.
func (t *Transport) MaxEventTS() tuple.Time { return tuple.Time(t.pubMax.Load()) }

// EstimatedLateness reports the adaptive tardiness estimate (0 when
// adaptive lateness is off).
func (t *Transport) EstimatedLateness() tuple.Time {
	if t.adaptive == nil {
		return 0
	}
	return t.adaptive.EstimatedLateness()
}

// Finish broadcasts the final watermark, closes every ring, and waits for
// the joiner goroutines registered via Go.
func (t *Transport) Finish() {
	t.Broadcast(WatermarkTuple(FinalWatermark))
	for _, r := range t.Rings {
		r.Close()
	}
	t.wg.Wait()
}

// JoinerHooks are the callbacks a joiner loop dispatches to. OnTuple
// receives data tuples, OnWatermark in-band watermarks, and OnDrained (may
// be nil) runs once after the ring is closed and empty — engines that need
// cross-joiner synchronization to flush their last pending windows do it
// there. If Busy is non-nil the loop accumulates processing time into it.
type JoinerHooks struct {
	OnTuple     func(tuple.Tuple)
	OnWatermark func(tuple.Time)
	OnDrained   func()
	Busy        *atomic.Int64
}

// Go launches a joiner loop on ring i.
func (t *Transport) Go(i int, h JoinerHooks) {
	t.wg.Add(1)
	ring := t.Rings[i]
	go func() {
		defer t.wg.Done()
		batch := make([]tuple.Tuple, 64)
		for {
			n := ring.PopBatch(batch)
			if n == 0 {
				if ring.Closed() && ring.Len() == 0 {
					if h.OnDrained != nil {
						h.OnDrained()
					}
					return
				}
				runtime.Gosched()
				continue
			}
			var start time.Time
			if h.Busy != nil {
				start = time.Now()
			}
			for _, tp := range batch[:n] {
				if IsWatermark(tp) {
					h.OnWatermark(tp.TS)
				} else {
					h.OnTuple(tp)
				}
			}
			if h.Busy != nil {
				h.Busy.Add(int64(time.Since(start)))
			}
		}
	}()
}

// HashKey mixes a join key into a well-distributed 64-bit hash
// (splitmix64 finalizer), so partitioning does not depend on key encoding.
func HashKey(k tuple.Key) uint64 {
	x := uint64(k) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// FillOther completes the per-joiner breakdowns after a drained
// instrumented run: the "other" category is the joiner's total busy time
// minus the measured lookup and match portions.
func FillOther(s *Stats) {
	for i := range s.Breakdown {
		other := time.Duration(s.Busy[i].Load()) - s.Breakdown[i].Lookup - s.Breakdown[i].Match
		if other < 0 {
			other = 0
		}
		s.Breakdown[i].Other = other
	}
}

// TSVal is a (timestamp, value) scratch pair engines collect during
// instrumented two-pass joins, so timestamped aggregations (last/first)
// stay exact under instrumentation.
type TSVal struct {
	TS  tuple.Time
	Val float64
}
