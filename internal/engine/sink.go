package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"oij/internal/metrics"
	"oij/internal/tuple"
)

// NullSink discards results (pure-throughput benches).
type NullSink struct{}

// Emit implements Sink.
func (NullSink) Emit(int, tuple.Result) {}

// CountSink counts results and checksums aggregates, so throughput runs
// can sanity-check output volume without retaining it.
type CountSink struct {
	n   atomic.Int64
	sum atomic.Int64 // fixed-point (×1024) sum of aggregates, ±LSB races aside
}

// Emit implements Sink.
func (s *CountSink) Emit(_ int, r tuple.Result) {
	s.n.Add(1)
	s.sum.Add(int64(r.Agg * 1024))
}

// Count returns the number of results seen.
func (s *CountSink) Count() int64 { return s.n.Load() }

// CollectSink retains every result for correctness tests. Safe for
// concurrent emitters.
type CollectSink struct {
	mu      sync.Mutex
	results []tuple.Result
}

// Emit implements Sink.
func (s *CollectSink) Emit(_ int, r tuple.Result) {
	s.mu.Lock()
	s.results = append(s.results, r)
	s.mu.Unlock()
}

// Results returns the collected results (call after Drain).
func (s *CollectSink) Results() []tuple.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.results
}

// ByBaseSeq indexes the collected results by base sequence number.
func (s *CollectSink) ByBaseSeq() map[uint64]tuple.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := make(map[uint64]tuple.Result, len(s.results))
	for _, r := range s.results {
		m[r.BaseSeq] = r
	}
	return m
}

// LatencySink records per-result latency (now − base-tuple arrival) into
// per-joiner recorders, keeping the hot path lock-free. Results without an
// arrival stamp are counted but not timed.
//
// The base tuple's wall-clock arrival is not carried inside Result (results
// may be emitted long after and by another joiner than the one that queued
// the base tuple), so engines emitting to a LatencySink stamp the result
// path themselves: Emit here is called with tuple.Result whose Arrival was
// propagated by the engine via the pending-base records. To keep the Sink
// interface minimal, LatencySink receives latency via EmitLatency from
// engines; plain Emit just counts.
type LatencySink struct {
	recs []*metrics.LatencyRecorder
	n    atomic.Int64
}

// NewLatencySink sizes per-joiner recorders that retain every sample
// (bounded replays only — see NewLatencySinkCapped for servers).
func NewLatencySink(joiners, capacity int) *LatencySink {
	s := &LatencySink{recs: make([]*metrics.LatencyRecorder, joiners)}
	for i := range s.recs {
		s.recs[i] = metrics.NewLatencyRecorder(capacity)
	}
	return s
}

// NewLatencySinkCapped bounds each per-joiner recorder at max samples via
// deterministic reservoir sampling (each shard seeded from seed), so the
// sink is safe on unbounded-duration serving paths.
func NewLatencySinkCapped(joiners, max int, seed uint64) *LatencySink {
	s := &LatencySink{recs: make([]*metrics.LatencyRecorder, joiners)}
	for i := range s.recs {
		s.recs[i] = metrics.NewReservoirRecorder(max, seed+uint64(i)*0x9e3779b97f4a7c15)
	}
	return s
}

// Emit implements Sink (counts only).
func (s *LatencySink) Emit(_ int, _ tuple.Result) { s.n.Add(1) }

// Record logs one latency observation for a joiner.
func (s *LatencySink) Record(joiner int, d time.Duration) {
	s.recs[joiner].Record(d)
}

// CDF merges per-joiner recorders (call after Drain).
func (s *LatencySink) CDF() metrics.CDF { return metrics.MergeCDF(s.recs...) }

// Count returns the number of results seen.
func (s *LatencySink) Count() int64 { return s.n.Load() }

// LatencyRecorder is implemented by sinks that accept latency samples;
// engines type-assert their Sink against it and call Record per result
// when the base tuple carries an arrival stamp.
type LatencyRecorder interface {
	Record(joiner int, d time.Duration)
}
