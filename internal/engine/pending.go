package engine

import (
	"oij/internal/tuple"
)

// PendingHeap is a binary min-heap of base tuples ordered by event
// timestamp, used in OnWatermark mode to hold base tuples whose windows are
// not yet complete. It is joiner-private, so it needs no locking. A hand
// specialized heap (rather than container/heap) avoids the interface
// boxing on the hot path.
type PendingHeap struct {
	items []tuple.Tuple
}

// Len returns the number of pending base tuples.
func (h *PendingHeap) Len() int { return len(h.items) }

// Push adds a base tuple.
func (h *PendingHeap) Push(t tuple.Tuple) {
	h.items = append(h.items, t)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].TS <= h.items[i].TS {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

// Min returns the earliest pending base tuple without removing it.
func (h *PendingHeap) Min() (tuple.Tuple, bool) {
	if len(h.items) == 0 {
		return tuple.Tuple{}, false
	}
	return h.items[0], true
}

// PopIfBefore removes and returns the earliest pending base tuple if its
// timestamp is strictly below bound.
func (h *PendingHeap) PopIfBefore(bound tuple.Time) (tuple.Tuple, bool) {
	if len(h.items) == 0 || h.items[0].TS >= bound {
		return tuple.Tuple{}, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.items[l].TS < h.items[smallest].TS {
			smallest = l
		}
		if r < len(h.items) && h.items[r].TS < h.items[smallest].TS {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top, true
}
