// Package sched implements the paper's dynamic balanced schedule (§V-B,
// Algorithm 3): the mapping from key-hash partitions to *virtual teams* of
// joiners, the workload estimate of Equation (3), and the greedy
// replicate-hottest-partition-to-coldest-joiner heuristic that minimizes
// unbalancedness (Equation 2) without migrating any data — ownership of a
// partition is only ever shared, never transferred, so tuples already in
// flight under the old schedule always land on a joiner that is still a
// team member under the new one.
package sched

import (
	"fmt"
	"sort"
	"sync/atomic"

	"oij/internal/metrics"
)

// MaxJoiners bounds the joiner count so read sets fit in one 64-bit mask.
const MaxJoiners = 64

// Schedule maps each partition to its virtual team (the route set of
// joiners receiving its tuples). Schedules are immutable once built; the
// driver swaps in a new one atomically.
type Schedule struct {
	// Teams[p] lists the joiners in partition p's virtual team. The
	// partition's home joiner (p mod J) is always a member, so a
	// schedule degenerates gracefully to the static key partition.
	Teams [][]int
	// rr holds per-partition round-robin cursors for routing; owned by
	// the single driver goroutine.
	rr []uint32
}

// NewStatic builds the initial schedule: every partition owned solely by
// its home joiner, which is exactly Key-OIJ's static partitioning.
func NewStatic(partitions, joiners int) *Schedule {
	s := &Schedule{Teams: make([][]int, partitions), rr: make([]uint32, partitions)}
	for p := range s.Teams {
		s.Teams[p] = []int{p % joiners}
	}
	return s
}

// Route picks the next team member for partition p (round-robin, so the
// partition's tuples spread evenly over its virtual team). Driver-only.
func (s *Schedule) Route(p int) int {
	team := s.Teams[p]
	if len(team) == 1 {
		return team[0]
	}
	i := s.rr[p]
	s.rr[p] = i + 1
	return team[int(i)%len(team)]
}

// TeamMask returns partition p's team as a bitmask.
func (s *Schedule) TeamMask(p int) uint64 {
	var m uint64
	for _, j := range s.Teams[p] {
		m |= 1 << uint(j)
	}
	return m
}

// Restrict returns a copy of the schedule with every team member >= active
// removed; a team left empty collapses to the partition's home joiner under
// the restricted pool (p mod active). Live resize uses it: the restricted
// schedule routes new tuples only to active joiners, while the engine's
// read-set masks keep data already buffered on deactivated joiners
// readable until it expires — ownership is narrowed, never migrated.
func (s *Schedule) Restrict(active int) *Schedule {
	if active < 1 {
		active = 1
	}
	n := s.clone()
	for p, team := range n.Teams {
		keep := team[:0]
		for _, j := range team {
			if j < active {
				keep = append(keep, j)
			}
		}
		if len(keep) == 0 {
			keep = append(keep, p%active)
		}
		n.Teams[p] = keep
	}
	return n
}

// clone copies the team structure (sharing member slices is unsafe because
// rebalancing appends).
func (s *Schedule) clone() *Schedule {
	n := &Schedule{Teams: make([][]int, len(s.Teams)), rr: make([]uint32, len(s.rr))}
	copy(n.rr, s.rr)
	for p, t := range s.Teams {
		n.Teams[p] = append([]int(nil), t...)
	}
	return n
}

// has reports whether joiner j is in partition p's team.
func (s *Schedule) has(p, j int) bool {
	for _, m := range s.Teams[p] {
		if m == j {
			return true
		}
	}
	return false
}

// Workloads evaluates Equation (3): each joiner's estimated load is the sum
// over its partitions of that partition's tuple count divided by the team
// size (team members share a partition's tuples evenly thanks to the
// round-robin routing).
func (s *Schedule) Workloads(counts []float64, joiners int) []float64 {
	w := make([]float64, joiners)
	for p, team := range s.Teams {
		share := counts[p] / float64(len(team))
		for _, j := range team {
			w[j] += share
		}
	}
	return w
}

// Config tunes the rebalancer.
type Config struct {
	// Partitions is the number of key-hash buckets (default 256).
	Partitions int
	// Delta is Algorithm 3's δ: the minimum unbalancedness improvement
	// for accepting a replication step (default 0.01).
	Delta float64
	// Decay is Algorithm 3's λ: the factor applied to the per-partition
	// statistics after each schedule pass (default 0.5), so the
	// scheduler tracks shifting hot sets (Fig. 14).
	Decay float64
	// MaxTeam bounds virtual-team size; 0 means up to all joiners.
	MaxTeam int
	// ShrinkFraction: a partition whose decayed count falls below this
	// fraction of the mean partition count has its team reset to the
	// home joiner, so cold partitions stop paying multi-index read
	// costs. 0 disables shrinking.
	ShrinkFraction float64
	// Topology assigns each joiner to a NUMA node (Topology[j] = node
	// id); nil means a flat machine. When set, the balancer biases
	// replication toward joiners on the same node as a partition's home
	// joiner, so virtual-team reads stay node-local — the paper's
	// "NUMA-aware dynamic scheduling" future-work item. The bias is
	// CrossNodePenalty; balance still wins when the skew is large
	// enough.
	Topology []int
	// CrossNodePenalty plays two roles when Topology is set: replication
	// targets off the home node are handicapped by this fraction of the
	// mean joiner load when choosing where to replicate, and a
	// cross-node replication is only accepted if it improves
	// unbalancedness by at least this much (same-node steps need only
	// Delta). Balance therefore still wins across nodes, but only when
	// the skew is worth the remote-read traffic (default 0.25).
	CrossNodePenalty float64
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Partitions <= 0 {
		c.Partitions = 256
	}
	if c.Delta <= 0 {
		c.Delta = 0.01
	}
	if c.Decay <= 0 || c.Decay >= 1 {
		c.Decay = 0.5
	}
	if c.ShrinkFraction < 0 {
		c.ShrinkFraction = 0
	}
	if c.CrossNodePenalty <= 0 {
		c.CrossNodePenalty = 0.25
	}
	return c
}

// Balancer owns the per-partition statistics and produces new schedules.
// It runs on the driver goroutine.
type Balancer struct {
	cfg     Config
	joiners int
	// active is the number of joiners eligible as routing targets
	// (<= joiners). The controller shrinks/grows it live via SetActive;
	// the pool itself never changes size.
	active int
	// Counts[p] is the (decayed) number of tuples recently routed to
	// partition p; the driver increments it per tuple.
	Counts []float64
	// Reschedules counts accepted schedule changes. Atomic so the live
	// observability layer can read it while the driver rebalances.
	Reschedules atomic.Int64
}

// NewBalancer creates a Balancer for the given joiner count.
func NewBalancer(cfg Config, joiners int) (*Balancer, error) {
	cfg = cfg.WithDefaults()
	if joiners > MaxJoiners {
		return nil, fmt.Errorf("sched: %d joiners exceeds the %d-joiner mask limit", joiners, MaxJoiners)
	}
	if cfg.Topology != nil && len(cfg.Topology) != joiners {
		return nil, fmt.Errorf("sched: topology describes %d joiners, have %d", len(cfg.Topology), joiners)
	}
	return &Balancer{cfg: cfg, joiners: joiners, active: joiners, Counts: make([]float64, cfg.Partitions)}, nil
}

// SetActive restricts (or re-widens) the set of joiners the balancer may
// route to: homes become p mod n and replication targets stay below n.
// Clamped to [1, joiners]. Driver goroutine only, like Rebalance.
func (b *Balancer) SetActive(n int) {
	if n < 1 {
		n = 1
	}
	if n > b.joiners {
		n = b.joiners
	}
	b.active = n
}

// Active returns the current routing-eligible joiner count.
func (b *Balancer) Active() int { return b.active }

// nodeOf returns joiner j's NUMA node (0 on a flat machine).
func (b *Balancer) nodeOf(j int) int {
	if b.cfg.Topology == nil {
		return 0
	}
	return b.cfg.Topology[j]
}

// Partitions returns the number of hash buckets.
func (b *Balancer) Partitions() int { return b.cfg.Partitions }

// Rebalance runs Algorithm 3 against the current schedule and statistics
// and returns the new schedule (which may be the input schedule unchanged)
// plus whether it changed. The statistics are decayed afterwards
// (Algorithm 3 line 13).
func (b *Balancer) Rebalance(cur *Schedule) (*Schedule, bool) {
	s := cur.clone()
	changed := false
	active := b.active
	maxTeam := b.cfg.MaxTeam
	if maxTeam <= 0 || maxTeam > active {
		maxTeam = active
	}

	// Shrink cold partitions back to their home joiner before growing
	// hot ones, so team growth under rotating hot sets does not
	// accumulate forever.
	if b.cfg.ShrinkFraction > 0 {
		var total float64
		for _, c := range b.Counts {
			total += c
		}
		mean := total / float64(len(b.Counts))
		for p, team := range s.Teams {
			if len(team) > 1 && b.Counts[p] < mean*b.cfg.ShrinkFraction {
				s.Teams[p] = []int{p % active}
				changed = true
			}
		}
	}

	lastUnb := metrics.Unbalancedness(s.Workloads(b.Counts, b.joiners)[:active])
	// The outer loop mirrors Algorithm 3's "while true": each round moves
	// one partition replica from the hottest joiner to the coldest. It
	// terminates because every accepted step strictly decreases
	// unbalancedness by at least δ and team growth is bounded.
	for iter := 0; iter < 4*active; iter++ {
		w := s.Workloads(b.Counts, b.joiners)[:active]
		jMax := argMax(w)
		var mean float64
		for _, v := range w {
			mean += v
		}
		mean /= float64(len(w))

		// Priority queue of J_max's partitions by per-member share,
		// hottest first (Algorithm 3 line 5).
		type cand struct {
			p     int
			share float64
		}
		var cands []cand
		for p, team := range s.Teams {
			if s.has(p, jMax) && len(team) < maxTeam {
				cands = append(cands, cand{p, b.Counts[p] / float64(len(team))})
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].share > cands[j].share })

		accepted := false
		for _, c := range cands {
			// Replication target: the least-loaded joiner not yet
			// in the team, handicapping off-node joiners so team
			// reads stay NUMA-local when the machine has nodes —
			// a large enough imbalance still overcomes the
			// penalty, restoring pure Algorithm-3 behaviour.
			homeNode := b.nodeOf(c.p % active)
			target, best := -1, 0.0
			for j := 0; j < active; j++ {
				if j == jMax || s.has(c.p, j) {
					continue
				}
				eff := w[j]
				if b.nodeOf(j) != homeNode {
					eff += b.cfg.CrossNodePenalty * mean
				}
				if target < 0 || eff < best {
					target, best = j, eff
				}
			}
			if target < 0 {
				continue
			}
			required := b.cfg.Delta
			if b.cfg.Topology != nil && b.nodeOf(target) != homeNode && b.cfg.CrossNodePenalty > required {
				required = b.cfg.CrossNodePenalty
			}
			s.Teams[c.p] = append(s.Teams[c.p], target)
			unb := metrics.Unbalancedness(s.Workloads(b.Counts, b.joiners)[:active])
			if lastUnb-unb > required {
				lastUnb = unb
				accepted = true
				changed = true
				break
			}
			// Revert the trial replication (Algorithm 3 pops the
			// queue and tries the next partition).
			s.Teams[c.p] = s.Teams[c.p][:len(s.Teams[c.p])-1]
		}
		if !accepted {
			// No replication improves the schedule: line 11-12.
			break
		}
	}

	// Decay statistics (line 13) so the balancer follows drift.
	for p := range b.Counts {
		b.Counts[p] *= b.cfg.Decay
	}

	if !changed {
		return cur, false
	}
	b.Reschedules.Add(1)
	return s, true
}

func argMax(w []float64) int { return bestIndex(w, true) }

func argMin(w []float64) int { return bestIndex(w, false) }

// bestIndex returns the index of the maximum (max=true) or minimum value.
func bestIndex(w []float64, max bool) int {
	best := 0
	for i, v := range w {
		if (max && v > w[best]) || (!max && v < w[best]) {
			best = i
		}
	}
	return best
}

// CrossNodeShare evaluates a schedule against a topology: the fraction of
// routed load that lands on a joiner outside its partition's home NUMA
// node (0 on a flat machine). Lower means more node-local team reads.
func CrossNodeShare(s *Schedule, counts []float64, topology []int, joiners int) float64 {
	if topology == nil {
		return 0
	}
	var total, cross float64
	for p, team := range s.Teams {
		if counts[p] == 0 {
			continue
		}
		homeNode := topology[p%joiners]
		off := 0
		for _, m := range team {
			if topology[m] != homeNode {
				off++
			}
		}
		total += counts[p]
		cross += counts[p] * float64(off) / float64(len(team))
	}
	if total == 0 {
		return 0
	}
	return cross / total
}
