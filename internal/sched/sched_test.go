package sched

import (
	"testing"
	"testing/quick"

	"oij/internal/metrics"
)

func TestNewStatic(t *testing.T) {
	s := NewStatic(8, 3)
	if len(s.Teams) != 8 {
		t.Fatalf("partitions = %d", len(s.Teams))
	}
	for p, team := range s.Teams {
		if len(team) != 1 || team[0] != p%3 {
			t.Fatalf("partition %d team = %v", p, team)
		}
	}
}

func TestRouteRoundRobin(t *testing.T) {
	s := NewStatic(4, 4)
	s.Teams[0] = []int{1, 3}
	counts := map[int]int{}
	for i := 0; i < 100; i++ {
		counts[s.Route(0)]++
	}
	if counts[1] != 50 || counts[3] != 50 {
		t.Fatalf("round robin uneven: %v", counts)
	}
	// Single-member partitions always route home.
	for i := 0; i < 10; i++ {
		if got := s.Route(1); got != 1 {
			t.Fatalf("partition 1 routed to %d", got)
		}
	}
}

func TestTeamMask(t *testing.T) {
	s := NewStatic(2, 8)
	s.Teams[0] = []int{0, 3, 7}
	if got := s.TeamMask(0); got != 1|1<<3|1<<7 {
		t.Fatalf("mask = %b", got)
	}
}

func TestWorkloadsEquation3(t *testing.T) {
	// 2 partitions, 2 joiners; partition 0 shared by both.
	s := NewStatic(2, 2)
	s.Teams[0] = []int{0, 1}
	s.Teams[1] = []int{1}
	counts := []float64{100, 60}
	w := s.Workloads(counts, 2)
	if w[0] != 50 || w[1] != 110 {
		t.Fatalf("workloads = %v, want [50 110]", w)
	}
}

func TestNewBalancerMaskLimit(t *testing.T) {
	if _, err := NewBalancer(Config{}, MaxJoiners+1); err == nil {
		t.Fatal("joiner count above mask width accepted")
	}
	if _, err := NewBalancer(Config{}, MaxJoiners); err != nil {
		t.Fatalf("exactly MaxJoiners rejected: %v", err)
	}
}

// TestRebalanceSkewedKey is the paper's core scenario: one scorching
// partition (few keys) must be replicated across joiners until the load
// spreads.
func TestRebalanceSkewedKey(t *testing.T) {
	b, err := NewBalancer(Config{Partitions: 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := NewStatic(8, 4)
	b.Counts[0] = 10_000 // partition 0 is hot, everything else idle
	before := metrics.Unbalancedness(s.Workloads(b.Counts, 4))

	ns, changed := b.Rebalance(s)
	if !changed {
		t.Fatal("balancer left a fully skewed schedule unchanged")
	}
	// Statistics were decayed; evaluate against the pre-decay counts.
	counts := []float64{10_000, 0, 0, 0, 0, 0, 0, 0}
	after := metrics.Unbalancedness(ns.Workloads(counts, 4))
	if after >= before {
		t.Fatalf("unbalancedness did not improve: %g -> %g", before, after)
	}
	if len(ns.Teams[0]) < 2 {
		t.Fatalf("hot partition team did not grow: %v", ns.Teams[0])
	}
	// Home ownership is preserved: the old member is still in the team.
	if !ns.has(0, 0) {
		t.Fatal("replication dropped the original owner")
	}
	if b.Reschedules.Load() != 1 {
		t.Fatalf("Reschedules = %d", b.Reschedules.Load())
	}
}

func TestRebalanceBalancedNoChange(t *testing.T) {
	b, _ := NewBalancer(Config{Partitions: 8}, 4)
	for p := range b.Counts {
		b.Counts[p] = 100 // uniform
	}
	s := NewStatic(8, 4)
	ns, changed := b.Rebalance(s)
	if changed {
		t.Fatalf("balanced schedule was changed: %v", ns.Teams)
	}
	if ns != s {
		t.Fatal("unchanged rebalance should return the input schedule")
	}
}

func TestRebalanceDecay(t *testing.T) {
	b, _ := NewBalancer(Config{Partitions: 4, Decay: 0.5}, 2)
	b.Counts[1] = 80
	b.Rebalance(NewStatic(4, 2))
	if b.Counts[1] != 40 {
		t.Fatalf("count after decay = %g, want 40", b.Counts[1])
	}
}

func TestRebalanceShrinkColdPartitions(t *testing.T) {
	b, _ := NewBalancer(Config{Partitions: 4, ShrinkFraction: 0.5}, 4)
	s := NewStatic(4, 4)
	s.Teams[2] = []int{2, 0, 1} // stale wide team on a now-cold partition
	b.Counts = []float64{100, 100, 0, 100}
	ns, changed := b.Rebalance(s)
	if !changed {
		t.Fatal("no change reported")
	}
	if len(ns.Teams[2]) != 1 || ns.Teams[2][0] != 2 {
		t.Fatalf("cold partition not shrunk to home: %v", ns.Teams[2])
	}
}

func TestRebalanceMaxTeam(t *testing.T) {
	b, _ := NewBalancer(Config{Partitions: 2, MaxTeam: 2}, 8)
	s := NewStatic(2, 8)
	b.Counts[0] = 1e6
	for i := 0; i < 10; i++ {
		s, _ = b.Rebalance(s)
		b.Counts[0] = 1e6
	}
	if len(s.Teams[0]) > 2 {
		t.Fatalf("team grew past MaxTeam: %v", s.Teams[0])
	}
}

// TestQuickRebalanceNeverWorsens: for random load distributions, a
// rebalance pass never increases unbalancedness (evaluated on the same
// counts it optimized).
func TestQuickRebalanceNeverWorsens(t *testing.T) {
	f := func(loads [16]uint16, joiners uint8) bool {
		j := int(joiners%7) + 2
		b, err := NewBalancer(Config{Partitions: 16, Decay: 0.999}, j)
		if err != nil {
			return false
		}
		counts := make([]float64, 16)
		for p := range counts {
			counts[p] = float64(loads[p])
			b.Counts[p] = counts[p]
		}
		s := NewStatic(16, j)
		before := metrics.Unbalancedness(s.Workloads(counts, j))
		ns, _ := b.Rebalance(s)
		after := metrics.Unbalancedness(ns.Workloads(counts, j))
		// Every team must still contain its home joiner.
		for p, team := range ns.Teams {
			found := false
			for _, m := range team {
				if m == p%j {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return after <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyValidation(t *testing.T) {
	if _, err := NewBalancer(Config{Topology: []int{0, 0, 1}}, 4); err == nil {
		t.Fatal("mismatched topology length accepted")
	}
	if _, err := NewBalancer(Config{Topology: []int{0, 0, 1, 1}}, 4); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
}

// TestNUMAAwareReplication: with a 2-node topology and a moderately hot
// partition, replication prefers same-node joiners; the flat balancer is
// free to go cross-node.
func TestNUMAAwareReplication(t *testing.T) {
	const joiners = 8
	topo := []int{0, 0, 0, 0, 1, 1, 1, 1}
	run := func(topology []int) (*Schedule, []float64) {
		b, err := NewBalancer(Config{Partitions: 8, Topology: topology, Decay: 0.999}, joiners)
		if err != nil {
			t.Fatal(err)
		}
		// Partition 0 (home joiner 0, node 0) is hot; everyone else
		// carries a light, uniform load so the balancer has both
		// same-node and cross-node targets with similar loads.
		counts := make([]float64, 8)
		counts[0] = 8000
		for p := 1; p < 8; p++ {
			counts[p] = 100
		}
		copy(b.Counts, counts)
		s := NewStatic(8, joiners)
		for i := 0; i < 6; i++ {
			s, _ = b.Rebalance(s)
			copy(b.Counts, counts)
		}
		return s, counts
	}

	aware, counts := run(topo)
	crossAware := CrossNodeShare(aware, counts, topo, joiners)
	if len(aware.Teams[0]) < 2 {
		t.Fatalf("hot partition not replicated: %v", aware.Teams[0])
	}
	// The aware balancer keeps the hot team on node 0 (where three idle
	// joiners wait); the flat balancer spreads across the machine.
	if crossAware > 0.05 {
		t.Fatalf("cross-node share %.2f with topology awareness", crossAware)
	}
	flat, _ := run(nil)
	crossFlat := CrossNodeShare(flat, counts, topo, joiners)
	if crossFlat <= crossAware {
		t.Fatalf("flat balancer (%.2f) not more cross-node than aware (%.2f)", crossFlat, crossAware)
	}
	// Locality trades some balance, but the schedule must still be far
	// better than the static one it started from.
	static := metrics.Unbalancedness(NewStatic(8, joiners).Workloads(counts, joiners))
	aw := metrics.Unbalancedness(aware.Workloads(counts, joiners))
	if aw > static/2 {
		t.Fatalf("aware schedule barely improved balance: %.3f vs static %.3f", aw, static)
	}
}

func TestCrossNodeShare(t *testing.T) {
	topo := []int{0, 0, 1, 1}
	s := NewStatic(4, 4)
	counts := []float64{10, 10, 10, 10}
	if got := CrossNodeShare(s, counts, topo, 4); got != 0 {
		t.Fatalf("static schedule cross share = %g", got)
	}
	if got := CrossNodeShare(s, counts, nil, 4); got != 0 {
		t.Fatalf("flat machine cross share = %g", got)
	}
	// Partition 0 (home joiner 0, node 0) half-served by node 1.
	s.Teams[0] = []int{0, 2}
	got := CrossNodeShare(s, counts, topo, 4)
	if got != 10*0.5/40 {
		t.Fatalf("cross share = %g, want %g", got, 10*0.5/40)
	}
	if CrossNodeShare(s, []float64{0, 0, 0, 0}, topo, 4) != 0 {
		t.Fatal("zero-load cross share not 0")
	}
}
