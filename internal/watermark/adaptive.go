package watermark

import (
	"math/bits"

	"oij/internal/tuple"
)

// Adaptive estimates the lateness bound online instead of requiring it as
// prior knowledge — the paper's "tunable accuracy without prior knowledge
// (i.e., lateness)" future-work item (§VII).
//
// Every observed tuple's tardiness (maxSeenTS − ts at arrival) is folded
// into a histogram with power-of-two buckets; the emitted watermark lags
// the maximum seen timestamp by the q-quantile of that distribution times
// a safety factor. Counts decay periodically so the estimate tracks
// drifting disorder. Choosing q trades buffer space for accuracy: tuples
// later than the estimate violate the watermark and may lose matches,
// exactly the knob the paper describes.
type Adaptive struct {
	quantile float64
	safety   float64
	decayN   int

	maxTS tuple.Time
	seen  bool

	// buckets[i] counts tardiness values t with 2^(i-1) <= t < 2^i
	// (bucket 0 counts t == 0). 48 buckets cover ~8.9 years in µs.
	buckets [48]float64
	total   float64
	sinceD  int

	// cached estimate, refreshed lazily.
	est      tuple.Time
	estStale bool
}

// NewAdaptive creates an estimator for the given tardiness quantile
// (e.g. 0.999) and safety factor (e.g. 2.0 doubles the estimated bound).
// Non-positive arguments take those defaults; decayEvery (default 8192)
// is the observation period after which counts are halved.
func NewAdaptive(quantile, safety float64, decayEvery int) *Adaptive {
	if quantile <= 0 || quantile > 1 {
		quantile = 0.999
	}
	if safety <= 0 {
		safety = 2.0
	}
	if decayEvery <= 0 {
		decayEvery = 8192
	}
	return &Adaptive{quantile: quantile, safety: safety, decayN: decayEvery}
}

// bucketOf maps a tardiness to its histogram bucket.
func bucketOf(t tuple.Time) int {
	if t <= 0 {
		return 0
	}
	b := bits.Len64(uint64(t))
	if b >= len(Adaptive{}.buckets) {
		b = len(Adaptive{}.buckets) - 1
	}
	return b
}

// Observe records one event timestamp and returns the current watermark.
func (a *Adaptive) Observe(ts tuple.Time) tuple.Time {
	if !a.seen {
		a.seen = true
		a.maxTS = ts
	}
	tardiness := a.maxTS - ts
	if ts > a.maxTS {
		a.maxTS = ts
		tardiness = 0
	}
	a.buckets[bucketOf(tardiness)]++
	a.total++
	a.estStale = true
	a.sinceD++
	if a.sinceD >= a.decayN {
		a.sinceD = 0
		a.total = 0
		for i := range a.buckets {
			a.buckets[i] /= 2
			a.total += a.buckets[i]
		}
	}
	return a.Current()
}

// EstimatedLateness returns the current lateness bound estimate in µs.
func (a *Adaptive) EstimatedLateness() tuple.Time {
	if !a.estStale {
		return a.est
	}
	a.estStale = false
	if a.total == 0 {
		a.est = 0
		return 0
	}
	target := a.quantile * a.total
	var cum float64
	bucket := 0
	for i, c := range a.buckets {
		cum += c
		if cum >= target {
			bucket = i
			break
		}
		bucket = i
	}
	// Upper edge of the bucket: 2^bucket (bucket 0 -> 0 tardiness).
	var bound tuple.Time
	if bucket > 0 {
		bound = 1 << uint(bucket)
	}
	a.est = tuple.Time(float64(bound) * a.safety)
	return a.est
}

// Current returns the adaptive watermark: maxSeenTS minus the estimated
// lateness, or MinTime before any observation.
func (a *Adaptive) Current() tuple.Time {
	if !a.seen {
		return MinTime
	}
	return a.maxTS - a.EstimatedLateness()
}

// MaxSeen returns the largest observed event timestamp.
func (a *Adaptive) MaxSeen() (tuple.Time, bool) { return a.maxTS, a.seen }
