package watermark

import (
	"math/rand"
	"testing"

	"oij/internal/tuple"
)

func TestAdaptiveDefaults(t *testing.T) {
	a := NewAdaptive(0, 0, 0)
	if a.quantile != 0.999 || a.safety != 2.0 || a.decayN != 8192 {
		t.Fatalf("defaults = %+v", a)
	}
	if a.Current() != MinTime {
		t.Fatal("fresh adaptive watermark not MinTime")
	}
	if _, ok := a.MaxSeen(); ok {
		t.Fatal("MaxSeen before observation")
	}
}

func TestAdaptiveOrderedStream(t *testing.T) {
	a := NewAdaptive(0.999, 1.0, 0)
	for ts := tuple.Time(0); ts < 10_000; ts += 10 {
		a.Observe(ts)
	}
	if got := a.EstimatedLateness(); got != 0 {
		t.Fatalf("ordered stream estimated lateness %d, want 0", got)
	}
	if wm := a.Current(); wm != 9990 {
		t.Fatalf("watermark = %d", wm)
	}
}

func TestAdaptiveBoundedDisorder(t *testing.T) {
	// Tuples up to 1000µs late: the estimate must cover (>= quantile of)
	// the true disorder without wildly overshooting (power-of-two bucket
	// + 2x safety => at most ~4x).
	rng := rand.New(rand.NewSource(3))
	a := NewAdaptive(0.999, 2.0, 0)
	for i := tuple.Time(0); i < 50_000; i++ {
		a.Observe(i*2 - tuple.Time(rng.Int63n(1000)))
	}
	est := a.EstimatedLateness()
	if est < 900 {
		t.Fatalf("estimate %d under-covers ~1000µs disorder", est)
	}
	if est > 4100 {
		t.Fatalf("estimate %d overshoots 1000µs disorder by more than 4x", est)
	}
}

func TestAdaptiveTracksDrift(t *testing.T) {
	// Disorder shrinks from 8000µs to ~0; after decay the estimate must
	// follow it down.
	rng := rand.New(rand.NewSource(4))
	a := NewAdaptive(0.99, 1.0, 1024)
	ts := tuple.Time(0)
	for i := 0; i < 20_000; i++ {
		ts += 2
		a.Observe(ts - tuple.Time(rng.Int63n(8000)))
	}
	noisy := a.EstimatedLateness()
	for i := 0; i < 100_000; i++ {
		ts += 2
		a.Observe(ts)
	}
	calm := a.EstimatedLateness()
	if calm >= noisy/4 {
		t.Fatalf("estimate did not decay with the disorder: %d -> %d", noisy, calm)
	}
}

func TestAdaptiveQuantileKnob(t *testing.T) {
	// A lower quantile yields a smaller (less conservative) bound.
	mk := func(q float64) tuple.Time {
		rng := rand.New(rand.NewSource(5))
		a := NewAdaptive(q, 1.0, 0)
		for i := tuple.Time(0); i < 30_000; i++ {
			late := tuple.Time(0)
			if rng.Float64() < 0.01 {
				late = 50_000 // rare stragglers
			} else {
				late = tuple.Time(rng.Int63n(100))
			}
			a.Observe(i*3 - late)
		}
		return a.EstimatedLateness()
	}
	strict, loose := mk(0.9999), mk(0.5)
	if loose >= strict {
		t.Fatalf("quantile knob inert: q=0.5 -> %d, q=0.9999 -> %d", loose, strict)
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[tuple.Time]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 1023: 10, 1024: 11}
	for in, want := range cases {
		if got := bucketOf(in); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", in, got, want)
		}
	}
	if got := bucketOf(1 << 60); got != 47 {
		t.Errorf("huge tardiness bucket = %d, want clamped 47", got)
	}
}
