package watermark

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestAssignerBeforeAnyObservation(t *testing.T) {
	a := NewAssigner(100)
	if a.Current() != MinTime {
		t.Fatal("fresh assigner watermark not MinTime")
	}
}

func TestAssignerMonotoneUnderDisorder(t *testing.T) {
	a := NewAssigner(10)
	seq := []int64{100, 95, 120, 90, 121, 50}
	want := []int64{90, 90, 110, 110, 111, 111}
	for i, ts := range seq {
		if got := a.Observe(ts); got != want[i] {
			t.Fatalf("step %d: watermark = %d, want %d", i, got, want[i])
		}
	}
}

func TestAssignerZeroLateness(t *testing.T) {
	a := NewAssigner(0)
	a.Observe(42)
	if a.Current() != 42 {
		t.Fatalf("watermark = %d, want 42", a.Current())
	}
}

func TestTrackerGlobalMin(t *testing.T) {
	tr := NewTracker(3)
	if tr.Global() != MinTime {
		t.Fatal("fresh tracker global not MinTime")
	}
	tr.Update(0, 100)
	tr.Update(1, 200)
	if tr.Global() != MinTime {
		t.Fatal("global advanced before all sources reported")
	}
	tr.Update(2, 150)
	if got := tr.Global(); got != 100 {
		t.Fatalf("global = %d, want 100", got)
	}
	// Stale updates are ignored.
	tr.Update(0, 50)
	if got := tr.Global(); got != 100 {
		t.Fatalf("global regressed to %d", got)
	}
	tr.Update(0, 300)
	if got := tr.Global(); got != 150 {
		t.Fatalf("global = %d, want 150", got)
	}
	if tr.Sources() != 3 {
		t.Fatalf("Sources = %d", tr.Sources())
	}
}

func TestTrackerConcurrentMonotone(t *testing.T) {
	tr := NewTracker(4)
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := int64(0); v < 10_000; v++ {
				tr.Update(s, v)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		last := MinTime
		for i := 0; i < 1000; i++ {
			g := tr.Global()
			if g < last {
				t.Error("global watermark regressed")
				return
			}
			last = g
		}
	}()
	wg.Wait()
	<-done
	if got := tr.Global(); got != 9999 {
		t.Fatalf("final global = %d", got)
	}
}

// TestQuickAssignerNeverOvertakes: the watermark never exceeds
// maxSeen - lateness, for any observation sequence.
func TestQuickAssignerNeverOvertakes(t *testing.T) {
	f := func(lateness uint16, seq []int32) bool {
		a := NewAssigner(int64(lateness))
		max := int64(0)
		seen := false
		for _, ts := range seq {
			wm := a.Observe(int64(ts))
			if !seen || int64(ts) > max {
				max = int64(ts)
				seen = true
			}
			if wm != max-int64(lateness) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
