// Package watermark tracks event-time progress of out-of-order streams.
//
// A watermark at value w asserts that no tuple with event timestamp <= w
// will arrive in the future. With a lateness bound l, the assigner emits
// w = maxSeenEventTime - l, which is exactly the guarantee the paper's
// workloads provide ("lateness represents the maximum degree of disorder").
// The join engines use watermarks to decide when a base tuple's window is
// complete (results may be emitted) and when probe tuples are expired.
package watermark

import (
	"math"
	"sync/atomic"

	"oij/internal/tuple"
)

// MinTime is the watermark value before any tuple has been observed.
const MinTime tuple.Time = math.MinInt64

// Assigner derives watermarks from observed event timestamps of a single
// source under a fixed lateness bound. It is not safe for concurrent use;
// each source goroutine owns one Assigner.
type Assigner struct {
	lateness tuple.Time
	maxTS    tuple.Time
	seen     bool
}

// NewAssigner returns an Assigner with the given lateness bound (µs).
func NewAssigner(lateness tuple.Time) *Assigner {
	return &Assigner{lateness: lateness, maxTS: MinTime}
}

// Observe records an event timestamp and returns the current watermark.
func (a *Assigner) Observe(ts tuple.Time) tuple.Time {
	if !a.seen || ts > a.maxTS {
		a.maxTS = ts
		a.seen = true
	}
	return a.Current()
}

// Current returns the watermark implied by the timestamps observed so far,
// or MinTime if nothing has been observed.
func (a *Assigner) Current() tuple.Time {
	if !a.seen {
		return MinTime
	}
	return a.maxTS - a.lateness
}

// Tracker merges watermarks from several sources and exposes the combined
// (minimum) watermark to concurrent readers. The combined watermark of a
// join is the minimum over both input streams: a window is complete only
// when *neither* stream can deliver a tuple inside it any more.
//
// Sources update their slot with Update; any goroutine may call Global.
type Tracker struct {
	slots []atomic.Int64
}

// NewTracker creates a tracker for n sources, all starting at MinTime.
func NewTracker(n int) *Tracker {
	t := &Tracker{slots: make([]atomic.Int64, n)}
	for i := range t.slots {
		t.slots[i].Store(MinTime)
	}
	return t
}

// Update advances source i's watermark to wm. Watermarks are monotone; a
// stale (smaller) update is ignored so sources may publish unconditionally.
func (t *Tracker) Update(i int, wm tuple.Time) {
	for {
		cur := t.slots[i].Load()
		if wm <= cur {
			return
		}
		if t.slots[i].CompareAndSwap(cur, wm) {
			return
		}
	}
}

// Global returns the minimum watermark across all sources.
func (t *Tracker) Global() tuple.Time {
	min := tuple.Time(math.MaxInt64)
	for i := range t.slots {
		if v := t.slots[i].Load(); v < min {
			min = v
		}
	}
	return min
}

// Sources returns the number of tracked sources.
func (t *Tracker) Sources() int { return len(t.slots) }
