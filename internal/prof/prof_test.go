package prof

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"oij/internal/faultfs"
	"oij/internal/trace"
)

// newTestCapturer builds a capturer on a Mem filesystem with the periodic
// loop effectively parked (long period) so tests drive captures directly.
func newTestCapturer(t *testing.T, mem *faultfs.Mem, mut func(*Config)) *Capturer {
	t.Helper()
	cfg := Config{
		Dir:            "ring",
		Period:         time.Hour,
		CPUSlice:       20 * time.Millisecond,
		FS:             mem,
		IncidentMinGap: time.Nanosecond,
		MutexFraction:  -1, // leave runtime sampling rates alone in tests
		BlockRateNS:    -1,
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("want error for missing Dir")
	}
	_, err := New(Config{Dir: "x", Period: time.Second, CPUSlice: 2 * time.Second, FS: faultfs.NewMem()})
	if err == nil || !strings.Contains(err.Error(), "shorter than Period") {
		t.Fatalf("want slice>=period error, got %v", err)
	}
}

func TestStoreAndManifest(t *testing.T) {
	mem := faultfs.NewMem()
	c := newTestCapturer(t, mem, nil)
	c.store("heap", "periodic", []byte("fake-profile"), 0)
	entries := c.Entries()
	if len(entries) != 1 {
		t.Fatalf("want 1 entry, got %d", len(entries))
	}
	e := entries[0]
	if e.Kind != "heap" || e.Bytes != int64(len("fake-profile")) || e.File != "000000-heap-periodic.pprof" {
		t.Fatalf("bad entry: %+v", e)
	}
	st := c.Stats()
	if st.Captures != 1 || st.Entries != 1 || st.LastReason != "periodic" {
		t.Fatalf("bad stats: %+v", st)
	}
	// Manifest must be parseable on its own.
	r, err := mem.Open("ring/MANIFEST.json")
	if err != nil {
		t.Fatalf("open manifest: %v", err)
	}
	defer r.Close()
	var doc manifestDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		t.Fatalf("manifest decode: %v", err)
	}
	if doc.NextSeq != 1 || len(doc.Entries) != 1 {
		t.Fatalf("bad manifest: %+v", doc)
	}
}

// TestRetentionEvictionOrder fills past both caps and checks strictly
// oldest-first eviction with on-disk file removal.
func TestRetentionEvictionOrder(t *testing.T) {
	mem := faultfs.NewMem()
	c := newTestCapturer(t, mem, func(cfg *Config) { cfg.Retain = 3 })
	for i := 0; i < 6; i++ {
		c.store("heap", "periodic", []byte(strings.Repeat("x", 10+i)), 0)
	}
	entries := c.Entries()
	if len(entries) != 3 {
		t.Fatalf("want 3 retained, got %d", len(entries))
	}
	for i, e := range entries {
		if want := uint64(3 + i); e.Seq != want {
			t.Fatalf("entry %d seq = %d, want %d (oldest-first eviction broken)", i, e.Seq, want)
		}
	}
	if c.Stats().Evictions != 3 {
		t.Fatalf("evictions = %d, want 3", c.Stats().Evictions)
	}
	// Evicted files must be gone, retained ones present.
	if _, err := mem.Open("ring/000000-heap-periodic.pprof"); err == nil {
		t.Fatal("evicted file still on disk")
	}
	if _, err := mem.Open("ring/000005-heap-periodic.pprof"); err != nil {
		t.Fatalf("retained file missing: %v", err)
	}
}

func TestRetentionByBytes(t *testing.T) {
	mem := faultfs.NewMem()
	c := newTestCapturer(t, mem, func(cfg *Config) { cfg.Retain = 100; cfg.MaxBytes = 64 })
	for i := 0; i < 4; i++ {
		c.store("heap", "periodic", []byte(strings.Repeat("y", 30)), 0)
	}
	st := c.Stats()
	if st.Bytes > 64 {
		t.Fatalf("ring bytes %d exceed cap 64", st.Bytes)
	}
	if st.Entries != 2 {
		t.Fatalf("want 2 entries under 64-byte cap, got %d", st.Entries)
	}
}

// TestManifestRecoveryAfterTornWrite corrupts the manifest mid-document
// and checks a fresh capturer rebuilds the index by directory scan.
func TestManifestRecoveryAfterTornWrite(t *testing.T) {
	mem := faultfs.NewMem()
	c := newTestCapturer(t, mem, nil)
	c.store("cpu", "periodic", []byte("cpu-profile-data"), int64(time.Second))
	c.store("heap", "slo-unhealthy", []byte("heap-profile-data"), 0)
	c.Close()

	// Tear the manifest: keep only the first half of the JSON document.
	mem.Put("ring/MANIFEST.json", []byte(`{"next_seq": 2, "entries": [{"seq"`))

	c2 := newTestCapturer(t, mem, nil)
	entries := c2.Entries()
	if len(entries) != 2 {
		t.Fatalf("recovered %d entries, want 2: %+v", len(entries), entries)
	}
	if entries[0].Seq != 0 || entries[0].Kind != "cpu" || entries[1].Seq != 1 || entries[1].Kind != "heap" {
		t.Fatalf("recovered entries wrong: %+v", entries)
	}
	if entries[1].Reason != "slo-unhealthy" {
		t.Fatalf("reason lost in recovery: %+v", entries[1])
	}
	if entries[0].Bytes != int64(len("cpu-profile-data")) {
		t.Fatalf("recovered size wrong: %+v", entries[0])
	}
	if c2.Stats().Recovered != 2 {
		t.Fatalf("Recovered = %d, want 2", c2.Stats().Recovered)
	}
	// New captures must continue the sequence, not collide.
	c2.store("heap", "periodic", []byte("later"), 0)
	if got := c2.Entries()[2].Seq; got != 2 {
		t.Fatalf("post-recovery seq = %d, want 2", got)
	}
}

func TestManifestMissingIsFreshRing(t *testing.T) {
	c := newTestCapturer(t, faultfs.NewMem(), nil)
	if len(c.Entries()) != 0 || c.Stats().Recovered != 0 {
		t.Fatalf("fresh ring not empty: %+v", c.Stats())
	}
}

// TestCaptureNowRecordsFlight checks the incident path: a real capture
// lands in the ring, stamps the flight sequence observed at capture time,
// and records a prof_capture flight event.
func TestCaptureNowRecordsFlight(t *testing.T) {
	fl := trace.NewFlight(64, "")
	mem := faultfs.NewMem()
	c := newTestCapturer(t, mem, func(cfg *Config) { cfg.Flight = fl })

	// Simulate the incident the capture should be attributable to.
	fl.Record(trace.CompSLO, trace.EvSLOUnhealthy, 1, 7)
	incidentSeq := fl.Seq()

	c.CaptureNow("slo-unhealthy")
	waitFor(t, func() bool { return len(c.Entries()) >= 2 }) // cpu + heap

	for _, e := range c.Entries() {
		if e.FlightSeq < incidentSeq {
			t.Fatalf("capture %+v predates incident flight seq %d", e, incidentSeq)
		}
		if e.Reason != "slo-unhealthy" {
			t.Fatalf("capture reason = %q", e.Reason)
		}
	}
	if c.Stats().Incidents != 1 {
		t.Fatalf("incidents = %d, want 1", c.Stats().Incidents)
	}
	var profEvents int
	for _, ev := range fl.Snapshot() {
		if ev.Component == "prof" && ev.Kind == "prof_capture" {
			profEvents++
		}
	}
	if profEvents < 2 {
		t.Fatalf("want >=2 prof_capture flight events, got %d", profEvents)
	}
}

func TestCaptureNowRateLimited(t *testing.T) {
	mem := faultfs.NewMem()
	c := newTestCapturer(t, mem, func(cfg *Config) { cfg.IncidentMinGap = time.Hour })
	c.CaptureNow("stall-watchdog")
	c.CaptureNow("stall-watchdog")
	c.CaptureNow("stall-watchdog")
	waitFor(t, func() bool { return c.Stats().Captures >= 2 })
	if got := c.Stats().Incidents; got != 1 {
		t.Fatalf("incidents = %d, want 1 (rate limit broken)", got)
	}
}

func TestPeriodicLoopCaptures(t *testing.T) {
	mem := faultfs.NewMem()
	c := newTestCapturer(t, mem, func(cfg *Config) {
		cfg.Period = 60 * time.Millisecond
		cfg.CPUSlice = 10 * time.Millisecond
	})
	// One full round = cpu + heap + mutex + block.
	waitFor(t, func() bool { return c.Stats().Captures >= 4 })
	kinds := map[string]bool{}
	for _, e := range c.Entries() {
		kinds[e.Kind] = true
	}
	for _, k := range []string{"cpu", "heap", "mutex", "block"} {
		if !kinds[k] {
			t.Fatalf("periodic round missing %s profile; have %v", k, kinds)
		}
	}
}

func TestProfilezEndpoint(t *testing.T) {
	mem := faultfs.NewMem()
	c := newTestCapturer(t, mem, nil)

	// Synchronous capture via POST ?capture.
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, httptest.NewRequest("POST", "/profilez?capture=manual", nil))
	if rec.Code != 200 {
		t.Fatalf("capture: %d %s", rec.Code, rec.Body)
	}

	// Manifest view.
	rec = httptest.NewRecorder()
	c.ServeHTTP(rec, httptest.NewRequest("GET", "/profilez", nil))
	var doc profilezDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("manifest json: %v", err)
	}
	if len(doc.Entries) < 2 || doc.Stats.Captures < 2 {
		t.Fatalf("manifest too small: %+v", doc.Stats)
	}

	// Fetch one profile by id.
	var cpu *Entry
	for i := range doc.Entries {
		if doc.Entries[i].Kind == "cpu" {
			cpu = &doc.Entries[i]
		}
	}
	if cpu == nil {
		t.Fatal("no cpu entry after manual capture")
	}
	rec = httptest.NewRecorder()
	c.ServeHTTP(rec, httptest.NewRequest("GET", "/profilez?id="+itoa(cpu.Seq), nil))
	if rec.Code != 200 || int64(rec.Body.Len()) != cpu.Bytes {
		t.Fatalf("fetch by id: code %d, %d bytes (want %d)", rec.Code, rec.Body.Len(), cpu.Bytes)
	}
	if _, err := Parse(rec.Body.Bytes()); err != nil {
		t.Fatalf("fetched cpu profile unparsable: %v", err)
	}

	// Merged window across two captures.
	rec = httptest.NewRecorder()
	c.ServeHTTP(rec, httptest.NewRequest("POST", "/profilez?capture=manual2", nil))
	rec = httptest.NewRecorder()
	c.ServeHTTP(rec, httptest.NewRequest("GET", "/profilez?merged=cpu&since=0", nil))
	if rec.Code != 200 {
		t.Fatalf("merged: %d %s", rec.Code, rec.Body)
	}
	if _, err := Parse(rec.Body.Bytes()); err != nil {
		t.Fatalf("merged profile unparsable: %v", err)
	}

	// Error paths.
	for _, url := range []string{"/profilez?id=xyz", "/profilez?id=9999", "/profilez?merged=cpu&since=zzz", "/profilez?merged=nosuch"} {
		rec = httptest.NewRecorder()
		c.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code == 200 {
			t.Fatalf("%s: want error status, got 200", url)
		}
	}
	rec = httptest.NewRecorder()
	c.ServeHTTP(rec, httptest.NewRequest("GET", "/profilez?capture=x", nil))
	if rec.Code != 405 {
		t.Fatalf("GET capture: want 405, got %d", rec.Code)
	}
}

func TestNilCapturerIsNoOp(t *testing.T) {
	var c *Capturer
	c.CaptureNow("anything")
	c.Close()
	if st := c.Stats(); st.Captures != 0 {
		t.Fatalf("nil stats: %+v", st)
	}
	if c.Entries() != nil {
		t.Fatal("nil entries")
	}
}

func TestSanitizeReason(t *testing.T) {
	for in, want := range map[string]string{
		"slo-unhealthy":          "slo-unhealthy",
		"Mem Pressure!":          "mem-pressure-",
		"":                       "unknown",
		"a/b\\c":                 "a-b-c",
		strings.Repeat("x", 100): strings.Repeat("x", 40),
	} {
		if got := sanitizeReason(in); got != want {
			t.Fatalf("sanitizeReason(%q) = %q, want %q", in, got, want)
		}
	}
}

func itoa(v uint64) string { return strconv.FormatUint(v, 10) }

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in 5s")
}
