// Minimal pprof (profile.proto) codec: parse, merge, re-encode, and
// per-function attribution for the gzipped protobuf profiles runtime/pprof
// emits. The repository takes no third-party dependencies, so the handful
// of proto fields the profiling subsystem needs are decoded by hand — the
// format is stable (pprof readers must accept profiles from a decade of
// runtimes) and the subset here covers everything /profilez?merged= and
// `oijbench profdiff` consume: sample stacks resolved to (function, file,
// line) frames with their value vectors, plus the sample-type and period
// metadata that keeps re-encoded output loadable by `go tool pprof`.
package prof

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// ValueType names one sample value dimension (e.g. cpu/nanoseconds).
type ValueType struct {
	Type string `json:"type"`
	Unit string `json:"unit"`
}

// Frame is one resolved stack frame.
type Frame struct {
	Func string
	File string
	Line int64
}

// Sample is one stack with its value vector; Stack[0] is the leaf.
type Sample struct {
	Stack  []Frame
	Values []int64
}

// Profile is the decoded subset of profile.proto this package operates on.
type Profile struct {
	SampleType    []ValueType
	Samples       []Sample
	TimeNanos     int64
	DurationNanos int64
	PeriodType    ValueType
	Period        int64
}

// profile.proto field numbers (message Profile and friends).
const (
	profSampleType    = 1
	profSample        = 2
	profLocation      = 4
	profFunction      = 5
	profStringTable   = 6
	profTimeNanos     = 9
	profDurationNanos = 10
	profPeriodType    = 11
	profPeriod        = 12

	sampleLocationID = 1
	sampleValue      = 2

	locID      = 1
	locAddress = 3
	locLine    = 4

	lineFunctionID = 1
	lineLine       = 2

	funcID        = 1
	funcName      = 2
	funcFilename  = 4
	funcStartLine = 5

	vtType = 1
	vtUnit = 2
)

// pbuf is a protobuf read cursor.
type pbuf struct {
	b []byte
	i int
}

var errTruncated = errors.New("prof: truncated protobuf")

func (p *pbuf) done() bool { return p.i >= len(p.b) }

func (p *pbuf) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if p.i >= len(p.b) {
			return 0, errTruncated
		}
		c := p.b[p.i]
		p.i++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, errors.New("prof: varint overflow")
		}
	}
}

// field reads the next tag, returning the field number and wire type.
func (p *pbuf) field() (int, int, error) {
	tag, err := p.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(tag >> 3), int(tag & 7), nil
}

// bytes reads one length-delimited payload without copying.
func (p *pbuf) bytes() ([]byte, error) {
	n, err := p.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(p.b)-p.i) {
		return nil, errTruncated
	}
	out := p.b[p.i : p.i+int(n)]
	p.i += int(n)
	return out, nil
}

// skip advances past one field of the given wire type.
func (p *pbuf) skip(wire int) error {
	switch wire {
	case 0:
		_, err := p.varint()
		return err
	case 1:
		if len(p.b)-p.i < 8 {
			return errTruncated
		}
		p.i += 8
		return nil
	case 2:
		_, err := p.bytes()
		return err
	case 5:
		if len(p.b)-p.i < 4 {
			return errTruncated
		}
		p.i += 4
		return nil
	}
	return fmt.Errorf("prof: unsupported wire type %d", wire)
}

// uint64s decodes a repeated uint64 field occurrence: packed (wire 2) or a
// single varint (wire 0) — both are legal on the wire and both occur in
// real profiles.
func uint64s(p *pbuf, wire int, into []uint64) ([]uint64, error) {
	if wire == 0 {
		v, err := p.varint()
		if err != nil {
			return nil, err
		}
		return append(into, v), nil
	}
	raw, err := p.bytes()
	if err != nil {
		return nil, err
	}
	in := pbuf{b: raw}
	for !in.done() {
		v, err := in.varint()
		if err != nil {
			return nil, err
		}
		into = append(into, v)
	}
	return into, nil
}

type rawLine struct {
	funcID uint64
	line   int64
}

type rawLoc struct {
	address uint64
	lines   []rawLine
}

type rawFunc struct {
	name, file int64
	startLine  int64
}

// Parse decodes a pprof profile (gzipped or raw protobuf).
func Parse(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		if data, err = io.ReadAll(zr); err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
	}

	var (
		strtab  []string
		funcs   = map[uint64]rawFunc{}
		locs    = map[uint64]rawLoc{}
		rawSams [][2][]uint64 // location ids, raw (varint) values
		out     = &Profile{}
	)
	p := pbuf{b: data}
	for !p.done() {
		num, wire, err := p.field()
		if err != nil {
			return nil, err
		}
		switch num {
		case profStringTable:
			s, err := p.bytes()
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(s))
		case profSampleType, profPeriodType:
			raw, err := p.bytes()
			if err != nil {
				return nil, err
			}
			vt, err := parseValueType(raw)
			if err != nil {
				return nil, err
			}
			if num == profSampleType {
				out.SampleType = append(out.SampleType, valueTypeIdx{vt[0], vt[1]}.vt())
			} else {
				out.PeriodType = valueTypeIdx{vt[0], vt[1]}.vt()
			}
		case profSample:
			raw, err := p.bytes()
			if err != nil {
				return nil, err
			}
			locIDs, vals, err := parseSample(raw)
			if err != nil {
				return nil, err
			}
			rawSams = append(rawSams, [2][]uint64{locIDs, vals})
		case profLocation:
			raw, err := p.bytes()
			if err != nil {
				return nil, err
			}
			id, loc, err := parseLocation(raw)
			if err != nil {
				return nil, err
			}
			locs[id] = loc
		case profFunction:
			raw, err := p.bytes()
			if err != nil {
				return nil, err
			}
			id, fn, err := parseFunction(raw)
			if err != nil {
				return nil, err
			}
			funcs[id] = fn
		case profTimeNanos, profDurationNanos, profPeriod:
			v, err := p.varint()
			if err != nil {
				return nil, err
			}
			switch num {
			case profTimeNanos:
				out.TimeNanos = int64(v)
			case profDurationNanos:
				out.DurationNanos = int64(v)
			case profPeriod:
				out.Period = int64(v)
			}
		default:
			if err := p.skip(wire); err != nil {
				return nil, err
			}
		}
	}

	str := func(i int64) string {
		if i >= 0 && int(i) < len(strtab) {
			return strtab[i]
		}
		return ""
	}
	// Resolve the deferred string-table indexes now that the table is
	// complete (the Profile message carries no field-ordering guarantee).
	for i := range out.SampleType {
		out.SampleType[i] = ValueType{str(pendingIdx(out.SampleType[i].Type)), str(pendingIdx(out.SampleType[i].Unit))}
	}
	out.PeriodType = ValueType{str(pendingIdx(out.PeriodType.Type)), str(pendingIdx(out.PeriodType.Unit))}

	for _, rs := range rawSams {
		s := Sample{Values: make([]int64, len(rs[1]))}
		for i, v := range rs[1] {
			s.Values[i] = int64(v)
		}
		for _, lid := range rs[0] {
			loc, ok := locs[lid]
			if !ok || len(loc.lines) == 0 {
				// Unsymbolized location: keep the stack shape with an
				// address-derived placeholder rather than dropping frames.
				s.Stack = append(s.Stack, Frame{Func: "0x" + strconv.FormatUint(loc.address, 16)})
				continue
			}
			// line[0] is the deepest inlined call, matching leaf-first order.
			for _, ln := range loc.lines {
				fn := funcs[ln.funcID]
				s.Stack = append(s.Stack, Frame{Func: str(fn.name), File: str(fn.file), Line: ln.line})
			}
		}
		out.Samples = append(out.Samples, s)
	}
	if len(out.SampleType) == 0 && len(out.Samples) == 0 {
		return nil, errors.New("prof: not a pprof profile (no sample types or samples)")
	}
	return out, nil
}

// valueTypeIdx defers string resolution: during parsing the string table
// may not be complete yet, so indexes are smuggled through the string
// fields and resolved at the end.
type valueTypeIdx struct{ typ, unit int64 }

func (v valueTypeIdx) vt() ValueType {
	return ValueType{Type: encodeIdx(v.typ), Unit: encodeIdx(v.unit)}
}

func encodeIdx(i int64) string { return "\x00" + strconv.FormatInt(i, 10) }
func pendingIdx(s string) int64 {
	if len(s) < 2 || s[0] != 0 {
		return 0
	}
	n, _ := strconv.ParseInt(s[1:], 10, 64)
	return n
}

func parseValueType(raw []byte) ([2]int64, error) {
	var out [2]int64
	p := pbuf{b: raw}
	for !p.done() {
		num, wire, err := p.field()
		if err != nil {
			return out, err
		}
		if num == vtType || num == vtUnit {
			v, err := p.varint()
			if err != nil {
				return out, err
			}
			out[num-1] = int64(v)
			continue
		}
		if err := p.skip(wire); err != nil {
			return out, err
		}
	}
	return out, nil
}

func parseSample(raw []byte) (locIDs, values []uint64, err error) {
	p := pbuf{b: raw}
	for !p.done() {
		num, wire, err := p.field()
		if err != nil {
			return nil, nil, err
		}
		switch num {
		case sampleLocationID:
			if locIDs, err = uint64s(&p, wire, locIDs); err != nil {
				return nil, nil, err
			}
		case sampleValue:
			if values, err = uint64s(&p, wire, values); err != nil {
				return nil, nil, err
			}
		default:
			if err := p.skip(wire); err != nil {
				return nil, nil, err
			}
		}
	}
	return locIDs, values, nil
}

func parseLocation(raw []byte) (uint64, rawLoc, error) {
	var id uint64
	var loc rawLoc
	p := pbuf{b: raw}
	for !p.done() {
		num, wire, err := p.field()
		if err != nil {
			return 0, loc, err
		}
		switch num {
		case locID:
			if id, err = p.varint(); err != nil {
				return 0, loc, err
			}
		case locAddress:
			if loc.address, err = p.varint(); err != nil {
				return 0, loc, err
			}
		case locLine:
			sub, err := p.bytes()
			if err != nil {
				return 0, loc, err
			}
			var ln rawLine
			in := pbuf{b: sub}
			for !in.done() {
				n, w, err := in.field()
				if err != nil {
					return 0, loc, err
				}
				switch n {
				case lineFunctionID:
					if ln.funcID, err = in.varint(); err != nil {
						return 0, loc, err
					}
				case lineLine:
					v, err := in.varint()
					if err != nil {
						return 0, loc, err
					}
					ln.line = int64(v)
				default:
					if err := in.skip(w); err != nil {
						return 0, loc, err
					}
				}
			}
			loc.lines = append(loc.lines, ln)
		default:
			if err := p.skip(wire); err != nil {
				return 0, loc, err
			}
		}
	}
	return id, loc, nil
}

func parseFunction(raw []byte) (uint64, rawFunc, error) {
	var id uint64
	var fn rawFunc
	p := pbuf{b: raw}
	for !p.done() {
		num, wire, err := p.field()
		if err != nil {
			return 0, fn, err
		}
		switch num {
		case funcID:
			if id, err = p.varint(); err != nil {
				return 0, fn, err
			}
		case funcName, funcFilename, funcStartLine:
			v, err := p.varint()
			if err != nil {
				return 0, fn, err
			}
			switch num {
			case funcName:
				fn.name = int64(v)
			case funcFilename:
				fn.file = int64(v)
			case funcStartLine:
				fn.startLine = int64(v)
			}
		default:
			if err := p.skip(wire); err != nil {
				return 0, fn, err
			}
		}
	}
	return id, fn, nil
}

// ---- encoding ----

func appendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendTag(b []byte, field, wire int) []byte {
	return appendVarint(b, uint64(field)<<3|uint64(wire))
}

func appendMsg(b []byte, field int, payload []byte) []byte {
	b = appendTag(b, field, 2)
	b = appendVarint(b, uint64(len(payload)))
	return append(b, payload...)
}

func appendIntField(b []byte, field int, v int64) []byte {
	if v == 0 {
		return b
	}
	b = appendTag(b, field, 0)
	return appendVarint(b, uint64(v))
}

func appendPacked(b []byte, field int, vals []uint64) []byte {
	var p []byte
	for _, v := range vals {
		p = appendVarint(p, v)
	}
	return appendMsg(b, field, p)
}

// Encode serializes the profile as gzipped profile.proto, rebuilding the
// string/function/location tables from the resolved frames. Each distinct
// (function, file, line) becomes its own single-line location — inline
// chains are flattened, which keeps merge semantics simple and loses no
// attribution.
func (p *Profile) Encode() []byte {
	strIdx := map[string]int64{"": 0}
	strtab := []string{""}
	str := func(s string) int64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := int64(len(strtab))
		strIdx[s] = i
		strtab = append(strtab, s)
		return i
	}
	encVT := func(vt ValueType) []byte {
		var b []byte
		b = appendIntField(b, vtType, str(vt.Type))
		b = appendIntField(b, vtUnit, str(vt.Unit))
		return b
	}

	type funcKey struct {
		name, file string
	}
	funcIDs := map[funcKey]uint64{}
	type locKey struct {
		fid  uint64
		line int64
	}
	locIDs := map[locKey]uint64{}
	var funcMsgs, locMsgs [][]byte

	locOf := func(f Frame) uint64 {
		fk := funcKey{f.Func, f.File}
		fid, ok := funcIDs[fk]
		if !ok {
			fid = uint64(len(funcIDs) + 1)
			funcIDs[fk] = fid
			var fb []byte
			fb = appendIntField(fb, funcID, int64(fid))
			fb = appendIntField(fb, funcName, str(f.Func))
			fb = appendIntField(fb, funcFilename, str(f.File))
			funcMsgs = append(funcMsgs, fb)
		}
		lk := locKey{fid, f.Line}
		lid, ok := locIDs[lk]
		if !ok {
			lid = uint64(len(locIDs) + 1)
			locIDs[lk] = lid
			var ln []byte
			ln = appendIntField(ln, lineFunctionID, int64(fid))
			ln = appendIntField(ln, lineLine, f.Line)
			var lb []byte
			lb = appendIntField(lb, locID, int64(lid))
			lb = appendMsg(lb, locLine, ln)
			locMsgs = append(locMsgs, lb)
		}
		return lid
	}

	var body []byte
	for _, vt := range p.SampleType {
		body = appendMsg(body, profSampleType, encVT(vt))
	}
	for _, s := range p.Samples {
		ids := make([]uint64, len(s.Stack))
		for i, f := range s.Stack {
			ids[i] = locOf(f)
		}
		vals := make([]uint64, len(s.Values))
		for i, v := range s.Values {
			vals[i] = uint64(v)
		}
		var sb []byte
		sb = appendPacked(sb, sampleLocationID, ids)
		sb = appendPacked(sb, sampleValue, vals)
		body = appendMsg(body, profSample, sb)
	}
	for _, m := range locMsgs {
		body = appendMsg(body, profLocation, m)
	}
	for _, m := range funcMsgs {
		body = appendMsg(body, profFunction, m)
	}
	for _, s := range strtab {
		body = appendMsg(body, profStringTable, []byte(s))
	}
	body = appendIntField(body, profTimeNanos, p.TimeNanos)
	body = appendIntField(body, profDurationNanos, p.DurationNanos)
	if p.PeriodType != (ValueType{}) {
		body = appendMsg(body, profPeriodType, encVT(p.PeriodType))
	}
	body = appendIntField(body, profPeriod, p.Period)

	var out bytes.Buffer
	zw := gzip.NewWriter(&out)
	zw.Write(body)
	zw.Close()
	return out.Bytes()
}

// ---- merge ----

// stackKey builds a canonical key for a sample's stack.
func stackKey(stack []Frame) string {
	var b bytes.Buffer
	for _, f := range stack {
		b.WriteString(f.Func)
		b.WriteByte(0)
		b.WriteString(f.File)
		b.WriteByte(0)
		b.WriteString(strconv.FormatInt(f.Line, 10))
		b.WriteByte(0x1e)
	}
	return b.String()
}

// Merge folds profiles with identical sample types into one: samples with
// the same stack sum their value vectors, durations add, and the earliest
// start time wins. This is the ?merged=cpu window view — N two-second
// slices merged read like one long profile of the same workload.
func Merge(ps []*Profile) (*Profile, error) {
	if len(ps) == 0 {
		return nil, errors.New("prof: nothing to merge")
	}
	out := &Profile{
		SampleType: ps[0].SampleType,
		PeriodType: ps[0].PeriodType,
		Period:     ps[0].Period,
		TimeNanos:  ps[0].TimeNanos,
	}
	byStack := map[string]int{}
	for _, p := range ps {
		if len(p.SampleType) != len(out.SampleType) {
			return nil, fmt.Errorf("prof: merge: sample types differ (%d vs %d values)", len(p.SampleType), len(out.SampleType))
		}
		for i, vt := range p.SampleType {
			if vt != out.SampleType[i] {
				return nil, fmt.Errorf("prof: merge: sample type %d differs (%v vs %v)", i, vt, out.SampleType[i])
			}
		}
		out.DurationNanos += p.DurationNanos
		if p.TimeNanos > 0 && (out.TimeNanos == 0 || p.TimeNanos < out.TimeNanos) {
			out.TimeNanos = p.TimeNanos
		}
		for _, s := range p.Samples {
			k := stackKey(s.Stack)
			if i, ok := byStack[k]; ok {
				for j := range s.Values {
					if j < len(out.Samples[i].Values) {
						out.Samples[i].Values[j] += s.Values[j]
					}
				}
				continue
			}
			byStack[k] = len(out.Samples)
			out.Samples = append(out.Samples, Sample{
				Stack:  s.Stack,
				Values: append([]int64(nil), s.Values...),
			})
		}
	}
	return out, nil
}

// ---- attribution ----

// FuncStat is one function's share of a profile.
type FuncStat struct {
	Flat int64 // samples whose leaf frame is this function
	Cum  int64 // samples with this function anywhere on the stack
}

// DefaultValueIndex picks the value dimension diffs rank by: cpu
// nanoseconds for CPU profiles, alloc_space for heap profiles, otherwise
// the last value (the pprof convention for the "weight" dimension).
func (p *Profile) DefaultValueIndex() int {
	for i, vt := range p.SampleType {
		if vt.Type == "cpu" {
			return i
		}
	}
	for i, vt := range p.SampleType {
		if vt.Type == "alloc_space" {
			return i
		}
	}
	if len(p.SampleType) == 0 {
		return 0
	}
	return len(p.SampleType) - 1
}

// FuncTotals aggregates per-function flat/cum totals over value dimension
// vi, plus the profile-wide total. Cum counts each sample once per function
// (recursion does not double-count).
func (p *Profile) FuncTotals(vi int) (map[string]FuncStat, int64) {
	totals := map[string]FuncStat{}
	var grand int64
	seen := map[string]bool{}
	for _, s := range p.Samples {
		if vi >= len(s.Values) {
			continue
		}
		v := s.Values[vi]
		grand += v
		if len(s.Stack) > 0 {
			st := totals[s.Stack[0].Func]
			st.Flat += v
			totals[s.Stack[0].Func] = st
		}
		for k := range seen {
			delete(seen, k)
		}
		for _, f := range s.Stack {
			if seen[f.Func] {
				continue
			}
			seen[f.Func] = true
			st := totals[f.Func]
			st.Cum += v
			totals[f.Func] = st
		}
	}
	return totals, grand
}

// TopFuncs returns function names ordered by flat value, descending.
func (p *Profile) TopFuncs(vi int) []string {
	totals, _ := p.FuncTotals(vi)
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if totals[names[i]].Flat != totals[names[j]].Flat {
			return totals[names[i]].Flat > totals[names[j]].Flat
		}
		return names[i] < names[j]
	})
	return names
}
