// Package prof is the continuous-profiling subsystem: a background
// capturer that takes short periodic CPU profile slices (duty-cycled so
// the profiler's own cost stays bounded), heap/alloc snapshots, and
// mutex/block samples, and writes them into a bounded on-disk profile ring
// — temp+rename writes, an indexed manifest, size- and count-capped
// retention, the same durability discipline as the WAL. Incident paths
// (SLO breach, stall watchdog, memory pressure, evictions) trigger an
// immediate out-of-cycle capture, so the profile of the bad minute is on
// disk next to the flight dump instead of whatever the next periodic slice
// happens to see.
package prof

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oij/internal/faultfs"
	"oij/internal/trace"
)

// Config configures a Capturer.
type Config struct {
	// Dir is the profile ring directory (required).
	Dir string
	// Period is the duty cycle between periodic capture rounds (default
	// 60s). Each round takes one CPU slice plus heap, mutex, and block
	// snapshots.
	Period time.Duration
	// CPUSlice is the length of each CPU profile slice (default 2s; must
	// be shorter than Period — the slice/period ratio is the profiler's
	// duty cycle and therefore its steady-state overhead bound).
	CPUSlice time.Duration
	// Retain caps the number of profiles kept on disk (default 32);
	// MaxBytes caps their total size (default 64 MiB). Oldest-first
	// eviction, like WAL segment rotation.
	Retain   int
	MaxBytes int64
	// FS overrides the filesystem the ring writes through — the fault
	// injection seam of the manifest-recovery tests. Nil means the real
	// filesystem.
	FS faultfs.FS
	// Flight, when set, receives a prof_capture event per stored profile,
	// and every manifest entry records the flight sequence at capture time
	// so incident dumps and the profiles they triggered cross-reference.
	Flight *trace.Flight
	// IncidentMinGap rate-limits incident-triggered captures (default
	// 10s): a flapping SLO must not turn the profiler into the incident.
	IncidentMinGap time.Duration
	// MutexFraction and BlockRateNS set the runtime's mutex/block sampling
	// rates while the capturer runs (defaults 64 and 1e6; negative leaves
	// the runtime setting untouched).
	MutexFraction int
	BlockRateNS   int
}

func (c Config) withDefaults() Config {
	if c.Period <= 0 {
		c.Period = time.Minute
	}
	if c.CPUSlice <= 0 {
		c.CPUSlice = 2 * time.Second
	}
	if c.Retain <= 0 {
		c.Retain = 32
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 64 << 20
	}
	if c.IncidentMinGap <= 0 {
		c.IncidentMinGap = 10 * time.Second
	}
	if c.MutexFraction == 0 {
		c.MutexFraction = 64
	}
	if c.BlockRateNS == 0 {
		c.BlockRateNS = int(time.Millisecond)
	}
	if c.FS == nil {
		c.FS = faultfs.OS{}
	}
	return c
}

// manifestName is the ring index file inside Config.Dir.
const manifestName = "MANIFEST.json"

// Entry is one stored profile in the ring manifest.
type Entry struct {
	Seq       uint64 `json:"seq"`
	Kind      string `json:"kind"`   // cpu | heap | mutex | block
	Reason    string `json:"reason"` // periodic | manual | incident reason
	File      string `json:"file"`   // basename within the ring directory
	Bytes     int64  `json:"bytes"`
	CreatedNS int64  `json:"created_ns"`
	SliceNS   int64  `json:"slice_ns,omitempty"`   // CPU profiles: slice length
	FlightSeq uint64 `json:"flight_seq,omitempty"` // flight recorder seq at store time
}

// manifestDoc is the on-disk MANIFEST.json document.
type manifestDoc struct {
	NextSeq uint64  `json:"next_seq"`
	Entries []Entry `json:"entries"`
}

// Stats is the capturer's live state, exported on /statusz and /metrics.
type Stats struct {
	Captures        uint64  `json:"captures"`
	Errors          uint64  `json:"errors"`
	Incidents       uint64  `json:"incident_captures"`
	Evictions       uint64  `json:"evictions"`
	Recovered       int     `json:"recovered_entries,omitempty"`
	Entries         int     `json:"entries"`
	Bytes           int64   `json:"bytes"`
	LastCaptureUnix int64   `json:"last_capture_unix,omitempty"`
	LastReason      string  `json:"last_reason,omitempty"`
	PeriodSeconds   float64 `json:"period_seconds"`
	CPUSliceSeconds float64 `json:"cpu_slice_seconds"`
}

// Capturer is the continuous profiler. All methods are safe for concurrent
// use; a nil *Capturer is a valid no-op so call sites need no guards.
type Capturer struct {
	cfg Config

	// capMu serializes actual profile collection: the runtime allows one
	// active CPU profile per process, so a periodic slice and an incident
	// capture (or a second server in the same test process) queue instead
	// of erroring.
	capMu sync.Mutex

	// mu guards the ring state and manifest writes.
	mu      sync.Mutex
	entries []Entry
	nextSeq uint64
	bytes   int64
	closed  bool

	captures       atomic.Uint64
	errs           atomic.Uint64
	incidents      atomic.Uint64
	evictions      atomic.Uint64
	recovered      int
	lastCaptureNS  atomic.Int64
	lastIncidentNS atomic.Int64
	lastReason     atomic.Value // string

	prevMutexFrac int
	done          chan struct{}
	wg            sync.WaitGroup
	closeOnce     sync.Once
}

// New validates the configuration, recovers the ring manifest (rebuilding
// it by directory scan if a previous process tore the write), and starts
// the periodic capture loop.
func New(cfg Config) (*Capturer, error) {
	if cfg.Dir == "" {
		return nil, errors.New("prof: Dir is required")
	}
	cfg = cfg.withDefaults()
	if cfg.CPUSlice >= cfg.Period {
		return nil, fmt.Errorf("prof: CPUSlice %v must be shorter than Period %v", cfg.CPUSlice, cfg.Period)
	}
	if _, isMem := cfg.FS.(*faultfs.Mem); !isMem {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	c := &Capturer{cfg: cfg, done: make(chan struct{})}
	c.lastReason.Store("")
	if err := c.loadManifest(); err != nil {
		return nil, err
	}
	if cfg.MutexFraction > 0 {
		c.prevMutexFrac = runtime.SetMutexProfileFraction(cfg.MutexFraction)
	}
	if cfg.BlockRateNS > 0 {
		runtime.SetBlockProfileRate(cfg.BlockRateNS)
	}
	c.wg.Add(1)
	go c.loop()
	return c, nil
}

// Close stops the capture loop and waits for in-flight captures. The ring
// and manifest stay on disk — profiles are forensic artifacts.
func (c *Capturer) Close() {
	if c == nil {
		return
	}
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		close(c.done)
		c.wg.Wait()
		if c.cfg.MutexFraction > 0 {
			runtime.SetMutexProfileFraction(c.prevMutexFrac)
		}
		if c.cfg.BlockRateNS > 0 {
			runtime.SetBlockProfileRate(0)
		}
	})
}

// Stats snapshots the capturer.
func (c *Capturer) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	entries, bytes := len(c.entries), c.bytes
	c.mu.Unlock()
	return Stats{
		Captures:        c.captures.Load(),
		Errors:          c.errs.Load(),
		Incidents:       c.incidents.Load(),
		Evictions:       c.evictions.Load(),
		Recovered:       c.recovered,
		Entries:         entries,
		Bytes:           bytes,
		LastCaptureUnix: c.lastCaptureNS.Load() / int64(time.Second),
		LastReason:      c.lastReason.Load().(string),
		PeriodSeconds:   c.cfg.Period.Seconds(),
		CPUSliceSeconds: c.cfg.CPUSlice.Seconds(),
	}
}

// Entries returns a copy of the live manifest, oldest first.
func (c *Capturer) Entries() []Entry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Entry(nil), c.entries...)
}

// loop is the periodic duty cycle.
func (c *Capturer) loop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.Period)
	defer tick.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-tick.C:
			c.captureRound("periodic", true)
		}
	}
}

// captureRound takes one CPU slice plus snapshot profiles. full rounds add
// mutex/block; incident rounds keep to cpu+heap so they finish fast.
func (c *Capturer) captureRound(reason string, full bool) {
	c.captureCPU(reason)
	c.captureSnapshot("heap", "allocs", reason)
	if full {
		c.captureSnapshot("mutex", "mutex", reason)
		c.captureSnapshot("block", "block", reason)
	}
}

// CaptureNow fires an immediate out-of-cycle capture — the incident hook.
// It never blocks the caller (collection runs in a goroutine) and is
// rate-limited by IncidentMinGap so a flapping incident source cannot keep
// the CPU profiler pinned on.
func (c *Capturer) CaptureNow(reason string) {
	if c == nil {
		return
	}
	now := time.Now().UnixNano()
	last := c.lastIncidentNS.Load()
	if now-last < int64(c.cfg.IncidentMinGap) || !c.lastIncidentNS.CompareAndSwap(last, now) {
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.wg.Add(1)
	c.mu.Unlock()
	c.incidents.Add(1)
	go func() {
		defer c.wg.Done()
		c.captureRound(reason, false)
	}()
}

// captureCPU collects one CPU slice. A busy profiler (another subsystem
// holds runtime/pprof's single CPU profile) counts an error rather than
// failing anything: the next cycle retries.
func (c *Capturer) captureCPU(reason string) {
	c.capMu.Lock()
	defer c.capMu.Unlock()
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		c.errs.Add(1)
		return
	}
	select {
	case <-time.After(c.cfg.CPUSlice):
	case <-c.done: // closing: cut the slice short, keep what it saw
	}
	pprof.StopCPUProfile()
	c.store("cpu", reason, buf.Bytes(), int64(c.cfg.CPUSlice))
}

// captureSnapshot stores one runtime snapshot profile (heap/mutex/block).
func (c *Capturer) captureSnapshot(kind, lookup, reason string) {
	p := pprof.Lookup(lookup)
	if p == nil {
		c.errs.Add(1)
		return
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 0); err != nil {
		c.errs.Add(1)
		return
	}
	c.store(kind, reason, buf.Bytes(), 0)
}

// sanitizeReason maps an incident reason into the filename alphabet.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "unknown"
	}
	out := make([]byte, 0, len(reason))
	for i := 0; i < len(reason) && i < 40; i++ {
		ch := reason[i]
		switch {
		case ch >= 'a' && ch <= 'z', ch >= '0' && ch <= '9', ch == '-':
			out = append(out, ch)
		case ch >= 'A' && ch <= 'Z':
			out = append(out, ch+('a'-'A'))
		default:
			out = append(out, '-')
		}
	}
	return string(out)
}

// entryFile names one ring file: <seq>-<kind>-<reason>.pprof.
func entryFile(seq uint64, kind, reason string) string {
	return fmt.Sprintf("%06d-%s-%s.pprof", seq, kind, sanitizeReason(reason))
}

// parseEntryFile inverts entryFile for manifest recovery scans.
func parseEntryFile(name string) (Entry, bool) {
	if !strings.HasSuffix(name, ".pprof") {
		return Entry{}, false
	}
	parts := strings.SplitN(strings.TrimSuffix(name, ".pprof"), "-", 3)
	if len(parts) != 3 {
		return Entry{}, false
	}
	seq, err := strconv.ParseUint(parts[0], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	switch parts[1] {
	case "cpu", "heap", "mutex", "block":
	default:
		return Entry{}, false
	}
	return Entry{Seq: seq, Kind: parts[1], Reason: parts[2], File: name}, true
}

// store writes one profile into the ring: temp+rename for the profile,
// oldest-first eviction past the retention caps, then a temp+rename
// manifest rewrite — the same torn-write discipline as the WAL, verified
// against faultfs in the tests.
func (c *Capturer) store(kind, reason string, data []byte, sliceNS int64) {
	if len(data) == 0 {
		return
	}
	var flightSeq uint64
	if c.cfg.Flight != nil {
		flightSeq = c.cfg.Flight.Seq()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	seq := c.nextSeq
	c.nextSeq++
	name := entryFile(seq, kind, reason)
	if err := c.writeFile(name, data); err != nil {
		c.errs.Add(1)
		return
	}
	now := time.Now()
	c.entries = append(c.entries, Entry{
		Seq:       seq,
		Kind:      kind,
		Reason:    sanitizeReason(reason),
		File:      name,
		Bytes:     int64(len(data)),
		CreatedNS: now.UnixNano(),
		SliceNS:   sliceNS,
		FlightSeq: flightSeq,
	})
	c.bytes += int64(len(data))
	c.evictLocked()
	if err := c.saveManifestLocked(); err != nil {
		c.errs.Add(1)
	}
	c.captures.Add(1)
	c.lastCaptureNS.Store(now.UnixNano())
	c.lastReason.Store(sanitizeReason(reason))
	c.cfg.Flight.Record(trace.CompProf, trace.EvProfCapture, seq, uint64(len(data)))
}

// evictLocked drops oldest entries while either retention cap is exceeded.
func (c *Capturer) evictLocked() {
	for (len(c.entries) > c.cfg.Retain || c.bytes > c.cfg.MaxBytes) && len(c.entries) > 1 {
		victim := c.entries[0]
		c.entries = c.entries[1:]
		c.bytes -= victim.Bytes
		if err := c.cfg.FS.Remove(filepath.Join(c.cfg.Dir, victim.File)); err != nil {
			c.errs.Add(1)
		}
		c.evictions.Add(1)
	}
}

// writeFile lands data at name via temp+rename through the fault seam.
func (c *Capturer) writeFile(name string, data []byte) error {
	path := filepath.Join(c.cfg.Dir, name)
	tmp := path + ".tmp"
	f, _, err := c.cfg.FS.OpenAppend(tmp)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		c.cfg.FS.Remove(tmp)
		return werr
	}
	if err := c.cfg.FS.Rename(tmp, path); err != nil {
		c.cfg.FS.Remove(tmp)
		return err
	}
	return nil
}

func (c *Capturer) saveManifestLocked() error {
	doc := manifestDoc{NextSeq: c.nextSeq, Entries: c.entries}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(c.cfg.Dir, manifestName)
	tmp := path + ".tmp"
	// A fresh temp file every time: OpenAppend appends, so a leftover torn
	// temp must not prefix the new manifest.
	c.cfg.FS.Remove(tmp)
	f, _, err := c.cfg.FS.OpenAppend(tmp)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		c.cfg.FS.Remove(tmp)
		return werr
	}
	return c.cfg.FS.Rename(tmp, path)
}

// loadManifest restores ring state at startup. A missing manifest is a
// fresh ring; an unparsable one (torn write, bit rot) falls back to a
// directory scan — the profile filenames are self-describing, so the index
// is rebuilt from what actually survived, exactly like WAL salvage.
func (c *Capturer) loadManifest() error {
	path := filepath.Join(c.cfg.Dir, manifestName)
	r, err := c.cfg.FS.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("prof: manifest: %w", err)
	}
	data, rerr := io.ReadAll(r)
	r.Close()
	var doc manifestDoc
	if rerr == nil && json.Unmarshal(data, &doc) == nil && doc.NextSeq >= uint64(len(doc.Entries)) {
		c.entries = doc.Entries
		c.nextSeq = doc.NextSeq
		for _, e := range c.entries {
			c.bytes += e.Bytes
		}
		return nil
	}
	return c.recoverByScan()
}

// recoverByScan rebuilds the manifest from the ring directory contents.
func (c *Capturer) recoverByScan() error {
	var names []string
	if lister, ok := c.cfg.FS.(interface{ Names() []string }); ok {
		prefix := c.cfg.Dir + string(filepath.Separator)
		for _, n := range lister.Names() {
			if strings.HasPrefix(n, prefix) {
				names = append(names, strings.TrimPrefix(n, prefix))
			}
		}
	} else {
		des, err := os.ReadDir(c.cfg.Dir)
		if err != nil {
			return fmt.Errorf("prof: recover: %w", err)
		}
		for _, de := range des {
			if !de.IsDir() {
				names = append(names, de.Name())
			}
		}
	}
	for _, n := range names {
		e, ok := parseEntryFile(n)
		if !ok {
			continue
		}
		// Size via the append seam (it reports current length) so the Mem
		// fault filesystem needs no extra stat surface.
		f, size, err := c.cfg.FS.OpenAppend(filepath.Join(c.cfg.Dir, n))
		if err != nil {
			continue
		}
		f.Close()
		e.Bytes = size
		c.entries = append(c.entries, e)
		c.bytes += size
		if e.Seq >= c.nextSeq {
			c.nextSeq = e.Seq + 1
		}
	}
	sort.Slice(c.entries, func(i, j int) bool { return c.entries[i].Seq < c.entries[j].Seq })
	c.recovered = len(c.entries)
	return c.saveManifestLocked()
}

// readProfile loads one stored profile's bytes.
func (c *Capturer) readProfile(name string) ([]byte, error) {
	r, err := c.cfg.FS.Open(filepath.Join(c.cfg.Dir, name))
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

// MergedSince parses and merges every stored profile of kind captured at
// or after sinceUnix (0 = all), returning the re-encoded pprof bytes.
func (c *Capturer) MergedSince(kind string, sinceUnix int64) ([]byte, error) {
	var picks []Entry
	for _, e := range c.Entries() {
		if e.Kind == kind && e.CreatedNS >= sinceUnix*int64(time.Second) {
			picks = append(picks, e)
		}
	}
	if len(picks) == 0 {
		return nil, fmt.Errorf("prof: no %s profiles in window", kind)
	}
	var ps []*Profile
	for _, e := range picks {
		raw, err := c.readProfile(e.File)
		if err != nil {
			return nil, err
		}
		p, err := Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("prof: %s: %w", e.File, err)
		}
		ps = append(ps, p)
	}
	merged, err := Merge(ps)
	if err != nil {
		return nil, err
	}
	return merged.Encode(), nil
}

// profilezDoc is the /profilez JSON document.
type profilezDoc struct {
	Dir     string  `json:"dir"`
	Retain  int     `json:"retain"`
	MaxByte int64   `json:"max_bytes"`
	Stats   Stats   `json:"stats"`
	Entries []Entry `json:"entries"`
}

// ServeHTTP is the /profilez endpoint: the JSON manifest by default,
// ?id=SEQ fetches one stored profile, ?merged=cpu[&since=unixsec] returns
// a pprof-merged window, and POST ?capture=reason forces a synchronous
// capture round (handy in tests and incident response).
func (c *Capturer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	switch {
	case q.Has("id"):
		seq, err := strconv.ParseUint(q.Get("id"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad id %q", q.Get("id")))
			return
		}
		for _, e := range c.Entries() {
			if e.Seq == seq {
				data, err := c.readProfile(e.File)
				if err != nil {
					httpError(w, http.StatusInternalServerError, err.Error())
					return
				}
				w.Header().Set("Content-Type", "application/octet-stream")
				w.Header().Set("Content-Disposition", `attachment; filename="`+e.File+`"`)
				w.Write(data)
				return
			}
		}
		httpError(w, http.StatusNotFound, fmt.Sprintf("no profile with seq %d", seq))
	case q.Has("merged"):
		var since int64
		if v := q.Get("since"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("bad since %q", v))
				return
			}
			since = n
		}
		data, err := c.MergedSince(q.Get("merged"), since)
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	case q.Has("capture"):
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "capture requires POST")
			return
		}
		reason := q.Get("capture")
		if reason == "" {
			reason = "manual"
		}
		c.captureRound(reason, false)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(c.Stats())
	default:
		w.Header().Set("Content-Type", "application/json")
		doc := profilezDoc{
			Dir:     c.cfg.Dir,
			Retain:  c.cfg.Retain,
			MaxByte: c.cfg.MaxBytes,
			Stats:   c.Stats(),
			Entries: c.Entries(),
		}
		if doc.Entries == nil {
			doc.Entries = []Entry{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
