package prof

import (
	"bytes"
	"os"
	"runtime/pprof"
	"testing"
	"time"
)

// synthetic builds a small profile by hand for codec tests.
func synthetic(vals map[string][]int64) *Profile {
	p := &Profile{
		SampleType: []ValueType{{Type: "samples", Unit: "count"}, {Type: "cpu", Unit: "nanoseconds"}},
		PeriodType: ValueType{Type: "cpu", Unit: "nanoseconds"},
		Period:     10_000_000,
		TimeNanos:  1_000,
	}
	for leaf, v := range vals {
		p.Samples = append(p.Samples, Sample{
			Stack: []Frame{
				{Func: leaf, File: leaf + ".go", Line: 10},
				{Func: "main.main", File: "main.go", Line: 1},
			},
			Values: v,
		})
	}
	return p
}

func TestEncodeParseRoundTrip(t *testing.T) {
	in := synthetic(map[string][]int64{
		"pkg.hot":  {5, 500},
		"pkg.cold": {1, 100},
	})
	out, err := Parse(in.Encode())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(out.SampleType) != 2 || out.SampleType[1].Type != "cpu" || out.SampleType[1].Unit != "nanoseconds" {
		t.Fatalf("sample types mangled: %+v", out.SampleType)
	}
	if out.Period != in.Period || out.PeriodType.Type != "cpu" {
		t.Fatalf("period mangled: %d %+v", out.Period, out.PeriodType)
	}
	if len(out.Samples) != 2 {
		t.Fatalf("want 2 samples, got %d", len(out.Samples))
	}
	totals, sum := out.FuncTotals(out.DefaultValueIndex())
	if sum != 600 {
		t.Fatalf("total cpu = %d, want 600", sum)
	}
	if totals["pkg.hot"].Flat != 500 {
		t.Fatalf("pkg.hot flat = %d, want 500", totals["pkg.hot"].Flat)
	}
	if totals["main.main"].Cum != 600 || totals["main.main"].Flat != 0 {
		t.Fatalf("main.main = %+v, want cum 600 flat 0", totals["main.main"])
	}
}

func TestMergeSumsByStack(t *testing.T) {
	a := synthetic(map[string][]int64{"pkg.hot": {2, 200}})
	a.DurationNanos = 100
	b := synthetic(map[string][]int64{"pkg.hot": {3, 300}, "pkg.other": {1, 50}})
	b.DurationNanos = 200
	m, err := Merge([]*Profile{a, b})
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if m.DurationNanos != 300 {
		t.Fatalf("duration = %d, want 300", m.DurationNanos)
	}
	totals, sum := m.FuncTotals(m.DefaultValueIndex())
	if totals["pkg.hot"].Flat != 500 || totals["pkg.other"].Flat != 50 {
		t.Fatalf("merge totals wrong: %+v (sum %d)", totals, sum)
	}
	// Identical stacks must collapse to one sample, not two.
	hot := 0
	for _, s := range m.Samples {
		if s.Stack[0].Func == "pkg.hot" {
			hot++
		}
	}
	if hot != 1 {
		t.Fatalf("pkg.hot appears in %d merged samples, want 1", hot)
	}
	// Round-trip the merged profile too.
	if _, err := Parse(m.Encode()); err != nil {
		t.Fatalf("reparse merged: %v", err)
	}
}

func TestMergeRejectsMismatchedTypes(t *testing.T) {
	a := synthetic(map[string][]int64{"f": {1, 1}})
	b := synthetic(map[string][]int64{"f": {1, 1}})
	b.SampleType[1].Type = "alloc_space"
	if _, err := Merge([]*Profile{a, b}); err == nil {
		t.Fatal("want sample-type mismatch error")
	}
}

func TestParseRealCPUProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("cpu profiler busy: %v", err)
	}
	deadline := time.Now().Add(150 * time.Millisecond)
	x := 0
	for time.Now().Before(deadline) {
		for i := 0; i < 1000; i++ {
			x += i * i
		}
	}
	pprof.StopCPUProfile()
	_ = x
	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse real profile: %v", err)
	}
	if len(p.SampleType) == 0 {
		t.Fatal("no sample types in real profile")
	}
	// Re-encode and re-parse: totals must survive.
	_, before := p.FuncTotals(p.DefaultValueIndex())
	p2, err := Parse(p.Encode())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	_, after := p2.FuncTotals(p2.DefaultValueIndex())
	if before != after {
		t.Fatalf("value total changed across round-trip: %d -> %d", before, after)
	}
}

func TestParseRealHeapProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.Lookup("allocs").WriteTo(&buf, 0); err != nil {
		t.Fatalf("heap profile: %v", err)
	}
	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse heap profile: %v", err)
	}
	vi := p.DefaultValueIndex()
	if got := p.SampleType[vi].Type; got != "alloc_space" {
		t.Fatalf("default value index picked %q, want alloc_space", got)
	}
}

func TestParseGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, {0x1f}, []byte("not a profile"), {0x1f, 0x8b, 0x00}} {
		if _, err := Parse(data); err == nil {
			t.Fatalf("Parse(%q) accepted garbage", data)
		}
	}
}

func TestTopFuncsOrder(t *testing.T) {
	p := synthetic(map[string][]int64{
		"pkg.big":    {1, 900},
		"pkg.medium": {1, 90},
		"pkg.small":  {1, 9},
	})
	top := p.TopFuncs(p.DefaultValueIndex())
	if len(top) < 3 || top[0] != "pkg.big" {
		t.Fatalf("TopFuncs order wrong: %v", top)
	}
}

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
