package harness

import (
	"math"
	"testing"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/refjoin"
	"oij/internal/window"
	"oij/internal/workload"
)

// smallWorkload is a quick synthetic workload exercising disorder.
func smallWorkload(n int) workload.Config {
	return workload.Config{
		Name:      "test",
		N:         n,
		EventRate: 1_000_000,
		Keys:      16,
		BaseShare: 0.5,
		Window:    window.Spec{Pre: 500, Fol: 0, Lateness: 100},
		Disorder:  100,
		Seed:      123,
	}
}

func TestBuildUnknownEngine(t *testing.T) {
	_, err := Build("nope", engine.Config{Joiners: 1, Window: window.Spec{Pre: 1}}, engine.NullSink{})
	if err == nil {
		t.Fatal("expected error for unknown engine name")
	}
}

// TestRunAllEngines smoke-tests every variant end to end in both modes.
func TestRunAllEngines(t *testing.T) {
	wl := smallWorkload(20000)
	tuples, err := wl.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Engines() {
		for _, mode := range []engine.EmitMode{engine.OnArrival, engine.OnWatermark} {
			if name == OpenMLDB && mode == engine.OnWatermark {
				continue // the baseline has no disorder machinery
			}
			res, err := Run(RunConfig{
				Engine:   name,
				Workload: wl,
				Tuples:   tuples,
				Joiners:  4,
				Agg:      agg.Sum,
				Mode:     mode,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, mode, err)
			}
			wantResults := int64(workload.CountBase(tuples))
			if res.Results != wantResults {
				t.Errorf("%s/%v: got %d results, want %d", name, mode, res.Results, wantResults)
			}
			if res.Throughput <= 0 {
				t.Errorf("%s/%v: non-positive throughput", name, mode)
			}
		}
	}
}

// TestWatermarkModeExact verifies that every engine supporting OnWatermark
// produces exactly the event-time reference results, for several joiner
// counts — the determinism the watermark protocol is designed to give.
func TestWatermarkModeExact(t *testing.T) {
	wl := smallWorkload(30000)
	tuples, err := wl.Generate()
	if err != nil {
		t.Fatal(err)
	}
	want := refjoin.ByBaseSeq(refjoin.EventTime(tuples, wl.Window, agg.Sum))

	for _, name := range []string{KeyOIJ, ScaleOIJ, ScaleOIJNoInc, ScaleOIJNoDyn, ScaleOIJStatic, ScaleOIJIncOnly, SplitJoin} {
		for _, joiners := range []int{1, 3, 8} {
			sink := &engine.CollectSink{}
			cfg := engine.Config{Joiners: joiners, Window: wl.Window, Agg: agg.Sum, Mode: engine.OnWatermark}
			eng, err := Build(name, cfg, sink)
			if err != nil {
				t.Fatal(err)
			}
			eng.Start()
			for _, tp := range tuples {
				eng.Ingest(tp)
			}
			eng.Drain()

			got := sink.ByBaseSeq()
			if len(got) != len(want) {
				t.Fatalf("%s/j=%d: got %d results, want %d", name, joiners, len(got), len(want))
			}
			bad := 0
			for seq, w := range want {
				g, ok := got[seq]
				if !ok {
					t.Fatalf("%s/j=%d: missing result for base %d", name, joiners, seq)
				}
				if g.Matches != w.Matches || math.Abs(g.Agg-w.Agg) > 1e-6*math.Max(1, math.Abs(w.Agg)) {
					bad++
					if bad <= 3 {
						t.Errorf("%s/j=%d: base %d got (agg=%g n=%d) want (agg=%g n=%d)",
							name, joiners, seq, g.Agg, g.Matches, w.Agg, w.Matches)
					}
				}
			}
			if bad > 0 {
				t.Fatalf("%s/j=%d: %d/%d results wrong", name, joiners, bad, len(want))
			}
		}
	}
}

// TestArrivalModeSingleJoiner verifies arrival semantics against the
// arrival-order reference with one joiner (where arrival order is total).
func TestArrivalModeSingleJoiner(t *testing.T) {
	wl := smallWorkload(20000)
	wl.Disorder = 0
	wl.Window.Lateness = 0
	wl.Window.Pre = 500
	tuples, err := wl.Generate()
	if err != nil {
		t.Fatal(err)
	}
	want := refjoin.ByBaseSeq(refjoin.Arrival(tuples, wl.Window, agg.Sum))

	for _, name := range []string{KeyOIJ, ScaleOIJ, ScaleOIJNoInc, SplitJoin, OpenMLDB} {
		sink := &engine.CollectSink{}
		cfg := engine.Config{Joiners: 1, Window: wl.Window, Agg: agg.Sum, Mode: engine.OnArrival}
		eng, err := Build(name, cfg, sink)
		if err != nil {
			t.Fatal(err)
		}
		eng.Start()
		for _, tp := range tuples {
			eng.Ingest(tp)
		}
		eng.Drain()

		got := sink.ByBaseSeq()
		if len(got) != len(want) {
			t.Fatalf("%s: got %d results, want %d", name, len(got), len(want))
		}
		for seq, w := range want {
			g := got[seq]
			if g.Matches != w.Matches || math.Abs(g.Agg-w.Agg) > 1e-6*math.Max(1, math.Abs(w.Agg)) {
				t.Fatalf("%s: base %d got (agg=%g n=%d) want (agg=%g n=%d)",
					name, seq, g.Agg, g.Matches, w.Agg, w.Matches)
			}
		}
	}
}
