package harness

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/metrics"
	"oij/internal/refjoin"
	"oij/internal/scaleoij"
	"oij/internal/tuple"
	"oij/internal/workload"
)

// The experiments in this file go beyond the paper's figures: they
// exercise the future-work items its conclusion lists and which this
// repository implements — incremental computation for non-invertible
// aggregation operators (two-stacks sliding windows) and tunable accuracy
// without prior lateness knowledge (the adaptive watermark estimator).

// ExtensionExperiments returns the extension registry.
func ExtensionExperiments() []Experiment {
	return []Experiment{
		{"ext-noninv", "Extension: incremental min/max (two-stacks) vs window size", expExtNonInvertible},
		{"ext-adaptive", "Extension: adaptive lateness — accuracy without prior knowledge", expExtAdaptive},
		{"ext-numa", "Extension: NUMA-aware dynamic schedule (simulated 4-node topology)", expExtNUMA},
	}
}

// expExtNonInvertible repeats the Fig. 16 window sweep with max — an
// operator Subtract-on-Evict cannot handle — showing the two-stacks
// sliding path keeps throughput flat where full recomputation collapses.
func expExtNonInvertible(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	tw := newTab(w)
	fmt.Fprintln(tw, "window |w|\tkey-oij\tscale-oij w/o inc\tscale-oij w/ two-stacks")
	for _, wsz := range windowSweep {
		wl := workload.DefaultSynthetic(o.N)
		wl.Window.Pre = wsz
		fmt.Fprintf(tw, "%s", fmtDur(wsz))
		for _, e := range []string{KeyOIJ, ScaleOIJNoInc, ScaleOIJ} {
			res, err := Run(RunConfig{Engine: e, Workload: wl, Tuples: nil, Joiners: o.LatencyThreads, Agg: agg.Max})
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%s", fmtTput(res.Throughput))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// expExtAdaptive runs Scale-OIJ in exact watermark mode under disorder the
// engine was NOT told about, comparing three lateness policies: the oracle
// (configured with the true bound), the online adaptive estimator, and a
// naive zero-lateness configuration. It reports match recall against the
// exact event-time join and the retention cost.
func expExtAdaptive(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	const trueDisorder = 5_000 // µs; unknown to the adaptive/naive runs
	wl := workload.DefaultSynthetic(o.N)
	wl.Window.Lateness = trueDisorder
	wl.Disorder = trueDisorder
	wl.OrderedBase = false // disorder on both sides stresses accuracy
	tuples, err := wl.Generate()
	if err != nil {
		return err
	}
	var refMatches int64
	for _, r := range refjoin.EventTime(tuples, wl.Window, agg.Sum) {
		refMatches += r.Matches
	}

	type policy struct {
		name     string
		lateness tuple.Time
		adaptive bool
		quantile float64
	}
	policies := []policy{
		{"oracle (l=true bound)", trueDisorder, false, 0},
		{"adaptive q=0.999", 0, true, 0.999},
		{"adaptive q=0.9", 0, true, 0.9},
		{"naive (l=0)", 0, false, 0},
	}

	tw := newTab(w)
	fmt.Fprintln(tw, "policy\trecall\tthroughput\tevicted\telapsed")
	for _, p := range policies {
		cfg := engine.Config{
			Joiners:          o.LatencyThreads,
			Window:           wl.Window,
			Agg:              agg.Sum,
			Mode:             engine.OnWatermark,
			AdaptiveLateness: p.adaptive,
			AdaptiveQuantile: p.quantile,
		}
		cfg.Window.Lateness = p.lateness
		msink := &matchCounter{}
		eng, err := Build(ScaleOIJ, cfg, msink)
		if err != nil {
			return err
		}
		start := time.Now()
		eng.Start()
		for i := range tuples {
			eng.Ingest(tuples[i])
		}
		eng.Drain()
		elapsed := time.Since(start)
		matches := msink.matches.Load()

		fmt.Fprintf(tw, "%s\t%.4f\t%s\t%d\t%v\n",
			p.name,
			float64(matches)/float64(refMatches),
			fmtTput(float64(len(tuples))/elapsed.Seconds()),
			eng.Stats().Evicted.Load(),
			elapsed.Round(time.Millisecond))
	}
	fmt.Fprintln(tw, "reference matches\t", refMatches)
	return tw.Flush()
}

// matchCounter tallies matches across results without retaining them.
type matchCounter struct {
	matches atomic.Int64
}

// Emit implements engine.Sink.
func (m *matchCounter) Emit(_ int, r tuple.Result) { m.matches.Add(r.Matches) }

// expExtNUMA exercises the NUMA-aware dynamic schedule (the paper's first
// future-work item) on a simulated 4-node topology: the aware balancer
// must keep virtual-team reads node-local with comparable balance.
func expExtNUMA(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	wl := workload.DefaultSynthetic(o.N)
	wl.Keys = 5 // few keys force wide virtual teams
	tuples, err := wl.Generate()
	if err != nil {
		return err
	}
	joiners := o.LatencyThreads
	topo := make([]int, joiners)
	for j := range topo {
		topo[j] = j * 4 / joiners // 4 NUMA nodes
	}

	tw := newTab(w)
	fmt.Fprintln(tw, "scheduler\tthroughput\tunbalancedness\tcross-node load share")
	for _, aware := range []bool{false, true} {
		opt := scaleoij.Default()
		evalTopo := topo
		if aware {
			opt.Sched.Topology = topo
		} else {
			// Flat scheduling, but evaluate its schedule against
			// the same topology to expose the remote reads it
			// causes.
			opt.Sched.Topology = nil
		}
		cfg := engine.Config{Joiners: joiners, Window: wl.Window, Agg: agg.Sum}
		eng := scaleoij.New(cfg, opt, engine.NullSink{})
		start := time.Now()
		eng.Start()
		for i := range tuples {
			eng.Ingest(tuples[i])
		}
		eng.Drain()
		elapsed := time.Since(start)

		share := float64(eng.Stats().Extra["cross_node_permille"]) / 1000
		if !aware {
			share = eng.CrossNodeShareAgainst(evalTopo)
		}
		name := "flat (algorithm 3)"
		if aware {
			name = "NUMA-aware"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.1f%%\n",
			name,
			fmtTput(float64(len(tuples))/elapsed.Seconds()),
			metrics.Unbalancedness(eng.Stats().Loads()),
			share*100)
	}
	return tw.Flush()
}
