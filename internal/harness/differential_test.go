package harness

import (
	"math"
	"testing"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/refjoin"
	"oij/internal/tuple"
	"oij/internal/window"
	"oij/internal/workload"
)

// Differential testing: every engine is driven over seeded randomized
// workloads chosen to stress the cases where implementations historically
// diverge — heavy disorder on both streams, duplicate timestamps (many
// tuples per microsecond), and Zipf key skew — and each answer set is
// compared against the refjoin oracle for the matching semantics.

// diffWorkloads returns the adversarial workload grid: three shapes, each
// under several seeds.
func diffWorkloads() []workload.Config {
	shapes := []workload.Config{
		{
			// Out-of-order on both streams, disorder at the lateness bound.
			Name: "disorder", N: 15000, EventRate: 1e6, Keys: 32, BaseShare: 0.4,
			Window:   window.Spec{Pre: 500, Fol: 0, Lateness: 200},
			Disorder: 200,
		},
		{
			// ~50 tuples per microsecond: duplicate timestamps everywhere,
			// exercising the inclusive window bounds and tie handling.
			Name: "dupes", N: 12000, EventRate: 5e7, Keys: 8, BaseShare: 0.5,
			Window:   window.Spec{Pre: 100, Fol: 0, Lateness: 20},
			Disorder: 20,
		},
		{
			// Zipf 1.8 skew: a few keys carry most of the stream, the rest
			// are near-empty — the partitioning stress case.
			Name: "skew", N: 15000, EventRate: 1e6, Keys: 64, ZipfS: 1.8, BaseShare: 0.3,
			Window:   window.Spec{Pre: 300, Fol: 0, Lateness: 150},
			Disorder: 150,
		},
	}
	var out []workload.Config
	for _, s := range shapes {
		for _, seed := range []int64{7, 4242} {
			c := s
			c.Seed = seed
			out = append(out, c)
		}
	}
	return out
}

// runCollect drives tuples through a freshly built engine and indexes the
// results by base seq.
func runCollect(t *testing.T, name string, cfg engine.Config, tuples []tuple.Tuple) map[uint64]tuple.Result {
	t.Helper()
	sink := &engine.CollectSink{}
	eng, err := Build(name, cfg, sink)
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	for _, tp := range tuples {
		eng.Ingest(tp)
	}
	eng.Drain()
	return sink.ByBaseSeq()
}

// diffCompare requires got to match the oracle: exact match counts, and
// aggregates within 1e-6 relative (floating-point sums may legitimately
// reassociate across joiners).
func diffCompare(t *testing.T, ctx string, got, want map[uint64]tuple.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, oracle has %d", ctx, len(got), len(want))
	}
	bad := 0
	for seq, w := range want {
		g, ok := got[seq]
		if !ok {
			t.Fatalf("%s: missing result for base %d", ctx, seq)
		}
		if g.Matches != w.Matches || math.Abs(g.Agg-w.Agg) > 1e-6*math.Max(1, math.Abs(w.Agg)) {
			bad++
			if bad <= 3 {
				t.Errorf("%s: base %d got (agg=%g n=%d) want (agg=%g n=%d)",
					ctx, seq, g.Agg, g.Matches, w.Agg, w.Matches)
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%s: %d/%d results diverge from oracle", ctx, bad, len(want))
	}
}

// TestDifferentialArrival checks serving semantics: with a single joiner
// the arrival order is total, so every engine must reproduce the
// arrival-order oracle on every adversarial workload. The OpenMLDB
// baseline intentionally has no disorder machinery (it evicts by max
// timestamp, ignoring lateness), so it joins the comparison only on
// in-order variants of each shape — where it is also run with
// Mode=OnWatermark, which it documents as unsupported and degrades to
// arrival semantics; pinning that keeps the degradation deliberate.
func TestDifferentialArrival(t *testing.T) {
	for _, wl := range diffWorkloads() {
		tuples, err := wl.Generate()
		if err != nil {
			t.Fatal(err)
		}
		want := refjoin.ByBaseSeq(refjoin.Arrival(tuples, wl.Window, agg.Sum))

		for _, name := range []string{KeyOIJ, ScaleOIJ, SplitJoin} {
			cfg := engine.Config{Joiners: 1, Window: wl.Window, Agg: agg.Sum, Mode: engine.OnArrival}
			got := runCollect(t, name, cfg, tuples)
			diffCompare(t, wl.Name+"/seed="+itoa64(wl.Seed)+"/"+name+"/arrival", got, want)
		}

		inOrder := wl
		inOrder.Disorder = 0
		tuples, err = inOrder.Generate()
		if err != nil {
			t.Fatal(err)
		}
		want = refjoin.ByBaseSeq(refjoin.Arrival(tuples, inOrder.Window, agg.Sum))
		for _, mode := range []engine.EmitMode{engine.OnArrival, engine.OnWatermark} {
			cfg := engine.Config{Joiners: 1, Window: inOrder.Window, Agg: agg.Sum, Mode: mode}
			got := runCollect(t, OpenMLDB, cfg, tuples)
			diffCompare(t, wl.Name+"/seed="+itoa64(wl.Seed)+"/"+OpenMLDB+"/"+mode.String(), got, want)
		}
	}
}

// TestDifferentialWatermark checks exact event-time semantics: engines
// supporting OnWatermark must reproduce the event-time oracle on every
// adversarial workload regardless of joiner count and interleaving.
func TestDifferentialWatermark(t *testing.T) {
	for _, wl := range diffWorkloads() {
		tuples, err := wl.Generate()
		if err != nil {
			t.Fatal(err)
		}
		want := refjoin.ByBaseSeq(refjoin.EventTime(tuples, wl.Window, agg.Sum))

		for _, name := range []string{KeyOIJ, ScaleOIJ, SplitJoin} {
			for _, joiners := range []int{1, 4} {
				cfg := engine.Config{Joiners: joiners, Window: wl.Window, Agg: agg.Sum, Mode: engine.OnWatermark}
				got := runCollect(t, name, cfg, tuples)
				diffCompare(t, wl.Name+"/seed="+itoa64(wl.Seed)+"/"+name+"/j="+itoa64(int64(joiners)), got, want)
			}
		}
	}
}

// itoa64 renders a small non-negative int64 without pulling in strconv.
func itoa64(n int64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
