package harness

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"oij/internal/agg"
	"oij/internal/cachesim"
	"oij/internal/metrics"
	"oij/internal/tuple"
	"oij/internal/workload"
)

// ExpOptions tunes experiment scale. The defaults keep a full `-exp all`
// run tractable on a laptop; raise N and Threads to approach the paper's
// scale.
type ExpOptions struct {
	// N is the tuple count per run (default 200_000).
	N int
	// Threads is the joiner sweep for scalability figures
	// (default 1,2,4,8,16).
	Threads []int
	// LatencyThreads is the joiner count for latency CDFs (default 16,
	// as in Fig. 5).
	LatencyThreads int
}

// WithDefaults fills unset fields.
func (o ExpOptions) WithDefaults() ExpOptions {
	if o.N <= 0 {
		o.N = 200_000
	}
	if len(o.Threads) == 0 {
		o.Threads = []int{1, 2, 4, 8, 16}
	}
	if o.LatencyThreads <= 0 {
		o.LatencyThreads = 16
	}
	return o
}

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, o ExpOptions) error
}

// Experiments returns the registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table2", "Table II: real-world workload characteristics", expTable2},
		{"table4", "Table IV: default synthetic workload", expTable4},
		{"table5", "Table V: Key-OIJ-favouring synthetic workload", expTable5},
		{"fig4", "Fig. 4: Key-OIJ scalability under Workloads A-D", expFig4},
		{"fig5", "Fig. 5: Key-OIJ latency CDF under Workloads A-D (16 joiners)", expFig5},
		{"fig6", "Fig. 6: Key-OIJ time breakdown under Workloads A-D", expFig6},
		{"fig7", "Fig. 7: lateness effect on Key-OIJ (throughput + effectiveness)", expFig7},
		{"fig8", "Fig. 8: key-count effect on Key-OIJ (throughput, unbalancedness, LLC misses)", expFig8},
		{"fig9", "Fig. 9: window-size effect on Key-OIJ", expFig9},
		{"fig11", "Fig. 11: lateness — Key-OIJ vs Scale-OIJ (time-travel index)", expFig11},
		{"fig13a", "Fig. 13a: scalability under 5 keys — Key-OIJ vs Scale-OIJ", expFig13a},
		{"fig13b", "Fig. 13b: throughput vs number of unique keys", expFig13b},
		{"fig13c", "Fig. 13c: unbalancedness vs number of unique keys", expFig13c},
		{"fig13d", "Fig. 13d: LLC misses vs number of unique keys (simulated)", expFig13d},
		{"fig14", "Fig. 14: per-joiner CPU utilization under rotating hot keys", expFig14},
		{"fig16", "Fig. 16: incremental interval join vs window size", expFig16},
		{"fig17", "Fig. 17: Workload A — throughput scalability + latency CDF", expWorkloadFig("A")},
		{"fig18", "Fig. 18: Workload B — throughput scalability + latency CDF", expWorkloadFig("B")},
		{"fig19", "Fig. 19: Workload C — throughput scalability + latency CDF", expWorkloadFig("C")},
		{"fig20", "Fig. 20: Workload D — throughput scalability + latency CDF", expWorkloadFig("D")},
		{"fig21", "Fig. 21: Key-OIJ-favouring synthetic workload (Table V)", expFig21},
		{"fig22", "Fig. 22: throughput vs the OpenMLDB baseline, Workloads A-D", expFig22},
		{"fig23", "Fig. 23: latency vs the OpenMLDB baseline, Workloads A-D", expFig23},
	}
}

// AllExperiments returns the paper figures plus the future-work extension
// experiments (see extensions.go).
func AllExperiments() []Experiment {
	return append(Experiments(), ExtensionExperiments()...)
}

// FindExperiment returns the experiment with the given ID.
func FindExperiment(id string) (Experiment, bool) {
	for _, e := range AllExperiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// realWorkloads returns the Table II presets at size n.
func realWorkloads(n int) []workload.Config {
	return []workload.Config{workload.A(n), workload.B(n), workload.C(n), workload.D(n)}
}

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

func fmtTput(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM/s", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fK/s", v/1e3)
	default:
		return fmt.Sprintf("%.0f/s", v)
	}
}

func fmtDur(us tuple.Time) string {
	switch {
	case us >= 1_000_000 && us%1_000_000 == 0:
		return fmt.Sprintf("%ds", us/1_000_000)
	case us >= 1_000 && us%1_000 == 0:
		return fmt.Sprintf("%dms", us/1_000)
	default:
		return fmt.Sprintf("%dus", us)
	}
}

// ---- Tables ----

func expTable2(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	tw := newTab(w)
	fmt.Fprintln(tw, "workload\tarrival rate\tkeys u\twindow |w|\tlateness l\tmatches/window\tlateness elems/key")
	for _, c := range realWorkloads(o.N) {
		rate := "unpaced"
		if c.ArrivalRate > 0 {
			rate = fmtTput(c.ArrivalRate)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%.0f\t%.0f\n",
			c.Name, rate, c.Keys, fmtDur(c.Window.Len()), fmtDur(c.Window.Lateness),
			c.MatchesPerWindow(), c.LatenessElements())
	}
	return tw.Flush()
}

func printSynthetic(w io.Writer, c workload.Config, joiners int) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "parameter\tvalue")
	fmt.Fprintf(tw, "key number u\t%d\n", c.Keys)
	fmt.Fprintf(tw, "window size |w|\t%s\n", fmtDur(c.Window.Len()))
	fmt.Fprintf(tw, "lateness l\t%s\n", fmtDur(c.Window.Lateness))
	fmt.Fprintf(tw, "joiner threads\t%d\n", joiners)
	fmt.Fprintf(tw, "event rate\t%s\n", fmtTput(c.EventRate))
	return tw.Flush()
}

func expTable4(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	return printSynthetic(w, workload.DefaultSynthetic(o.N), 16)
}

func expTable5(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	return printSynthetic(w, workload.TableV(o.N), 16)
}

// ---- Scalability sweeps ----

// sweepThreads runs each engine across the thread sweep on one workload
// and prints a throughput matrix.
func sweepThreads(w io.Writer, wl workload.Config, engines []string, threads []int) error {
	tuples, err := wl.Generate()
	if err != nil {
		return err
	}
	tw := newTab(w)
	fmt.Fprint(tw, "joiners")
	for _, e := range engines {
		fmt.Fprintf(tw, "\t%s", e)
	}
	fmt.Fprintln(tw)
	for _, j := range threads {
		fmt.Fprintf(tw, "%d", j)
		for _, e := range engines {
			res, err := Run(RunConfig{Engine: e, Workload: wl, Tuples: tuples, Joiners: j, Agg: agg.Sum})
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%s", fmtTput(res.Throughput))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func expFig4(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	for _, wl := range realWorkloads(o.N) {
		fmt.Fprintf(w, "\nWorkload %s (u=%d): Key-OIJ throughput vs joiners\n", wl.Name, wl.Keys)
		if err := sweepThreads(w, wl, []string{KeyOIJ}, o.Threads); err != nil {
			return err
		}
	}
	return nil
}

// latencyCDF runs one engine paced and prints quantiles.
var cdfQuantiles = []float64{0.50, 0.80, 0.90, 0.95, 0.99, 0.999}

func printCDF(tw *tabwriter.Writer, label string, cdf metrics.CDF) {
	fmt.Fprintf(tw, "%s", label)
	for _, q := range cdfQuantiles {
		fmt.Fprintf(tw, "\t%v", cdf.Quantile(q).Round(10*time.Microsecond))
	}
	fmt.Fprintf(tw, "\t%.1f%%\n", cdf.FractionBelow(20*time.Millisecond)*100)
}

func cdfHeader(tw *tabwriter.Writer, first string) {
	fmt.Fprint(tw, first)
	for _, q := range cdfQuantiles {
		fmt.Fprintf(tw, "\tp%g", q*100)
	}
	fmt.Fprintln(tw, "\t<20ms")
}

func expFig5(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	tw := newTab(w)
	cdfHeader(tw, "workload")
	for _, wl := range realWorkloads(o.N) {
		res, err := Run(RunConfig{
			Engine: KeyOIJ, Workload: wl, Joiners: o.LatencyThreads,
			Agg: agg.Sum, Paced: true, MeasureLatency: true,
		})
		if err != nil {
			return err
		}
		printCDF(tw, wl.Name, res.CDF)
	}
	return tw.Flush()
}

func expFig6(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	tw := newTab(w)
	fmt.Fprintln(tw, "workload\tlookup\tmatch\tother")
	for _, wl := range realWorkloads(o.N) {
		res, err := Run(RunConfig{
			Engine: KeyOIJ, Workload: wl, Joiners: o.LatencyThreads,
			Agg: agg.Sum, Instrument: true,
		})
		if err != nil {
			return err
		}
		l, m, oth := res.Breakdown.Fractions()
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.1f%%\t%.1f%%\n", wl.Name, l*100, m*100, oth*100)
	}
	return tw.Flush()
}

// latenessSweep are the Fig. 7/11 x-axis values (µs). The top value stays
// well below the default run's event-time span (N/EventRate) so the
// steady-state buffer population — not warmup — dominates the measurement.
var latenessSweep = []tuple.Time{100, 1_000, 5_000, 10_000, 20_000, 50_000, 100_000}

func expFig7(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	tw := newTab(w)
	fmt.Fprintln(tw, "lateness\tthroughput\teffectiveness")
	for _, l := range latenessSweep {
		wl := workload.DefaultSynthetic(o.N)
		wl.Window.Lateness = l
		wl.Disorder = l
		res, err := Run(RunConfig{Engine: KeyOIJ, Workload: wl, Joiners: o.LatencyThreads, Agg: agg.Sum, Instrument: true})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%.3f\n", fmtDur(l), fmtTput(res.Throughput), res.Effectiveness)
	}
	return tw.Flush()
}

// keySweep are the Fig. 8/13 x-axis values.
var keySweep = []int{1, 10, 100, 1_000, 10_000, 100_000}

func expFig8(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	tw := newTab(w)
	fmt.Fprintln(tw, "keys u\tthroughput\tunbalancedness\tLLC misses/tuple (sim)")
	for _, u := range keySweep {
		wl := workload.DefaultSynthetic(o.N)
		wl.Keys = u
		res, err := Run(RunConfig{Engine: KeyOIJ, Workload: wl, Joiners: o.LatencyThreads, Agg: agg.Sum})
		if err != nil {
			return err
		}
		miss, err := simulateLLC(wl, cachesim.FullScan)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%s\t%.3f\t%.2f\n", u, fmtTput(res.Throughput), res.Unbalancedness, miss)
	}
	return tw.Flush()
}

// windowSweep are the Fig. 9/16 x-axis values (µs), likewise capped below
// the run's event-time span so windows actually fill.
var windowSweep = []tuple.Time{100, 1_000, 10_000, 25_000, 50_000}

func expFig9(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	tw := newTab(w)
	fmt.Fprintln(tw, "window |w|\tthroughput")
	for _, wsz := range windowSweep {
		wl := workload.DefaultSynthetic(o.N)
		wl.Window.Pre = wsz
		res, err := Run(RunConfig{Engine: KeyOIJ, Workload: wl, Joiners: o.LatencyThreads, Agg: agg.Sum})
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\n", fmtDur(wsz), fmtTput(res.Throughput))
	}
	return tw.Flush()
}

func expFig11(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	tw := newTab(w)
	fmt.Fprintln(tw, "lateness\tkey-oij\tscale-oij")
	for _, l := range latenessSweep {
		wl := workload.DefaultSynthetic(o.N)
		wl.Window.Lateness = l
		wl.Disorder = l
		row := fmt.Sprintf("%s", fmtDur(l))
		for _, e := range []string{KeyOIJ, ScaleOIJ} {
			res, err := Run(RunConfig{Engine: e, Workload: wl, Joiners: o.LatencyThreads, Agg: agg.Sum})
			if err != nil {
				return err
			}
			row += fmt.Sprintf("\t%s", fmtTput(res.Throughput))
		}
		fmt.Fprintln(tw, row)
	}
	return tw.Flush()
}

func expFig13a(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	wl := workload.DefaultSynthetic(o.N)
	wl.Keys = 5
	tuples, err := wl.Generate()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "5-key synthetic workload (unbalancedness in parentheses; with 5")
	fmt.Fprintln(w, "keys Key-OIJ can use at most 5 joiners, Scale-OIJ rebalances)")
	tw := newTab(w)
	fmt.Fprintln(tw, "joiners\tkey-oij\tscale-oij")
	for _, j := range o.Threads {
		fmt.Fprintf(tw, "%d", j)
		for _, e := range []string{KeyOIJ, ScaleOIJ} {
			res, err := Run(RunConfig{Engine: e, Workload: wl, Tuples: tuples, Joiners: j, Agg: agg.Sum})
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%s (unb %.2f)", fmtTput(res.Throughput), res.Unbalancedness)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func keySweepMetric(w io.Writer, o ExpOptions, header string, metric func(RunResult) string) error {
	tw := newTab(w)
	fmt.Fprintf(tw, "keys u\tkey-oij\tscale-oij\n")
	for _, u := range keySweep {
		wl := workload.DefaultSynthetic(o.N)
		wl.Keys = u
		fmt.Fprintf(tw, "%d", u)
		for _, e := range []string{KeyOIJ, ScaleOIJ} {
			res, err := Run(RunConfig{Engine: e, Workload: wl, Joiners: o.LatencyThreads, Agg: agg.Sum})
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%s", metric(res))
		}
		fmt.Fprintln(tw)
	}
	_ = header
	return tw.Flush()
}

func expFig13b(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	return keySweepMetric(w, o, "throughput", func(r RunResult) string { return fmtTput(r.Throughput) })
}

func expFig13c(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	return keySweepMetric(w, o, "unbalancedness", func(r RunResult) string { return fmt.Sprintf("%.3f", r.Unbalancedness) })
}

func expFig13d(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	tw := newTab(w)
	fmt.Fprintln(tw, "keys u\tkey-oij misses/tuple (full scan)\tscale-oij misses/tuple (window only)")
	for _, u := range keySweep {
		wl := workload.DefaultSynthetic(o.N)
		wl.Keys = u
		full, err := simulateLLC(wl, cachesim.FullScan)
		if err != nil {
			return err
		}
		win, err := simulateLLC(wl, cachesim.WindowOnly)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%.2f\t%.2f\n", u, full, win)
	}
	return tw.Flush()
}

// simulateLLC replays the workload's buffer-access trace through the LLC
// model and returns misses per input tuple — the paper's Figs. 8b/13d plot
// absolute LLC misses, and a rate would mislead here (the window-only
// style makes far fewer accesses, so its *rate* can exceed the full scan's
// while its miss count is far lower).
func simulateLLC(wl workload.Config, style cachesim.AccessStyle) (float64, error) {
	tuples, err := wl.Generate()
	if err != nil {
		return 0, err
	}
	// Each joiner thread effectively owns its per-core share of the LLC
	// under all-cores contention, so the trace is replayed against
	// size/cores of the Table III cache.
	geo := cachesim.XeonGold6252()
	geo.SizeBytes /= 24
	c := cachesim.New(geo)
	misses, _ := cachesim.JoinTrace(c, tuples, wl.Window, style)
	return float64(misses) / float64(len(tuples)), nil
}

func expFig14(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	// Pace both engines at the same offered load so per-joiner busy time
	// reflects scheduling rather than raw speed, and run long enough for
	// several hot-set rotations to land in distinct epochs.
	wl := workload.Skewed(o.N * 3)
	// Pace so one hot-set rotation (100 ms of event time) spans many
	// 50 ms sampling epochs; a faster replay would alias rotations into
	// single epochs and wash out the per-epoch imbalance signal.
	wl.ArrivalRate = 100_000
	tw := newTab(w)
	fmt.Fprintln(tw, "engine\tper-epoch imbalance\ttemporal smoothness\treschedules")
	for _, e := range []string{KeyOIJ, ScaleOIJ} {
		res, err := Run(RunConfig{
			Engine: e, Workload: wl, Joiners: o.LatencyThreads, Agg: agg.Sum,
			Paced: true, UtilEpoch: 50 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		var imb, smooth float64
		if res.Utilization != nil {
			imb = res.Utilization.Imbalance()
			smooth = res.Utilization.Smoothness()
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%d\n", e, imb, smooth, res.Extra["reschedules"])
	}
	return tw.Flush()
}

func expFig16(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	tw := newTab(w)
	fmt.Fprintln(tw, "window |w|\tkey-oij\tscale-oij w/o inc\tscale-oij w/ inc")
	for _, wsz := range windowSweep {
		wl := workload.DefaultSynthetic(o.N)
		wl.Window.Pre = wsz
		fmt.Fprintf(tw, "%s", fmtDur(wsz))
		for _, e := range []string{KeyOIJ, ScaleOIJNoInc, ScaleOIJ} {
			res, err := Run(RunConfig{Engine: e, Workload: wl, Joiners: o.LatencyThreads, Agg: agg.Sum})
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%s", fmtTput(res.Throughput))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// expWorkloadFig builds the Fig. 17-20 experiment for one real workload:
// throughput scalability across engines plus latency CDFs at the latency
// thread count.
func expWorkloadFig(name string) func(io.Writer, ExpOptions) error {
	return func(w io.Writer, o ExpOptions) error {
		o = o.WithDefaults()
		var wl workload.Config
		switch name {
		case "A":
			wl = workload.A(o.N)
		case "B":
			wl = workload.B(o.N)
		case "C":
			wl = workload.C(o.N)
		default:
			wl = workload.D(o.N)
		}
		engines := []string{KeyOIJ, ScaleOIJNoInc, ScaleOIJ, SplitJoin}
		fmt.Fprintf(w, "Workload %s: throughput vs joiners\n", name)
		if err := sweepThreads(w, wl, engines, o.Threads); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nWorkload %s: latency CDF (%d joiners)\n", name, o.LatencyThreads)
		tw := newTab(w)
		cdfHeader(tw, "engine")
		for _, e := range engines {
			res, err := Run(RunConfig{
				Engine: e, Workload: wl, Joiners: o.LatencyThreads,
				Agg: agg.Sum, Paced: true, MeasureLatency: true,
			})
			if err != nil {
				return err
			}
			printCDF(tw, e, res.CDF)
		}
		return tw.Flush()
	}
}

func expFig21(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	wl := workload.TableV(o.N)
	fmt.Fprintln(w, "Table V synthetic workload: throughput vs joiners")
	return sweepThreads(w, wl, []string{KeyOIJ, ScaleOIJ, SplitJoin}, o.Threads)
}

func expFig22(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	tw := newTab(w)
	fmt.Fprintln(tw, "workload\topenmldb\tscale-oij\tspeedup")
	for _, wl := range realWorkloads(o.N) {
		var tput [2]float64
		for i, e := range []string{OpenMLDB, ScaleOIJ} {
			res, err := Run(RunConfig{Engine: e, Workload: wl, Joiners: o.LatencyThreads, Agg: agg.Sum})
			if err != nil {
				return err
			}
			tput[i] = res.Throughput
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.1fx\n", wl.Name, fmtTput(tput[0]), fmtTput(tput[1]), tput[1]/tput[0])
	}
	return tw.Flush()
}

func expFig23(w io.Writer, o ExpOptions) error {
	o = o.WithDefaults()
	tw := newTab(w)
	cdfHeader(tw, "workload/engine")
	for _, wl := range realWorkloads(o.N) {
		for _, e := range []string{OpenMLDB, ScaleOIJ} {
			res, err := Run(RunConfig{
				Engine: e, Workload: wl, Joiners: o.LatencyThreads,
				Agg: agg.Sum, Paced: true, MeasureLatency: true,
			})
			if err != nil {
				return err
			}
			printCDF(tw, wl.Name+"/"+e, res.CDF)
		}
	}
	return tw.Flush()
}

// ExperimentIDs returns all registered IDs, sorted.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range AllExperiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}
