package harness

import (
	"path/filepath"
	"testing"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/refjoin"
	"oij/internal/tuple"
	"oij/internal/workload/pattern"
)

// Differential testing over the shipped scenario profiles: every profile in
// profiles/ is a deterministic tuple sequence, so each one must produce the
// same join answers on every engine as the refjoin oracle — at any joiner
// count, in both emission semantics. This locks the simulator's central
// claim: a scenario's answers depend on the profile alone, never on the
// engine, the interleaving, or the replay speed.

// profileTuples compiles one shipped profile and drains a bounded prefix of
// its stream (the profiles simulate hours; a 25k-tuple prefix keeps the
// grid fast while crossing many watermark cycles and churn epochs).
func profileTuples(t *testing.T, path string) (*pattern.Scenario, []tuple.Tuple) {
	t.Helper()
	p, err := pattern.LoadProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := pattern.Compile(p, filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	return sc, pattern.Collect(sc.NewStream(), 25000)
}

func TestProfilesDifferential(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "profiles", "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no shipped profiles found (%v)", err)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			sc, tuples := profileTuples(t, path)
			if len(tuples) == 0 {
				t.Fatal("profile produced no tuples")
			}
			win := sc.Window()

			// Serving semantics: single joiner, arrival-order oracle.
			want := refjoin.ByBaseSeq(refjoin.Arrival(tuples, win, agg.Sum))
			for _, name := range []string{KeyOIJ, ScaleOIJ, SplitJoin} {
				cfg := engine.Config{Joiners: 1, Window: win, Agg: agg.Sum, Mode: engine.OnArrival}
				got := runCollect(t, name, cfg, tuples)
				diffCompare(t, name+"/arrival", got, want)
			}

			// Exact event-time semantics: any joiner count must agree.
			want = refjoin.ByBaseSeq(refjoin.EventTime(tuples, win, agg.Sum))
			for _, name := range []string{KeyOIJ, ScaleOIJ, SplitJoin} {
				for _, joiners := range []int{1, 4} {
					cfg := engine.Config{Joiners: joiners, Window: win, Agg: agg.Sum, Mode: engine.OnWatermark}
					got := runCollect(t, name, cfg, tuples)
					diffCompare(t, name+"/watermark/j="+itoa64(int64(joiners)), got, want)
				}
			}

			// The OpenMLDB baseline has no disorder machinery; it joins the
			// comparison only when the profile's stream is in-order.
			if sc.Profile.Stream.DisorderS == 0 && sc.Profile.Trace == nil {
				cfg := engine.Config{Joiners: 1, Window: win, Agg: agg.Sum, Mode: engine.OnArrival}
				got := runCollect(t, OpenMLDB, cfg, tuples)
				want = refjoin.ByBaseSeq(refjoin.Arrival(tuples, win, agg.Sum))
				diffCompare(t, OpenMLDB+"/arrival", got, want)
			}
		})
	}
}

// TestProfilesDifferentialInOrderBaseline reruns the openmldb baseline over
// disorder-free variants of every synthetic profile, so the baseline stays
// inside the shipped-profile differential net even though the shipped
// profiles all carry disorder.
func TestProfilesDifferentialInOrderBaseline(t *testing.T) {
	paths, _ := filepath.Glob(filepath.Join("..", "..", "profiles", "*.json"))
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			p, err := pattern.LoadProfile(path)
			if err != nil {
				t.Fatal(err)
			}
			if p.Trace != nil {
				t.Skip("trace replay pins its own timestamps; no in-order variant")
			}
			p.Stream.DisorderS = 0
			sc, err := pattern.Compile(p, filepath.Dir(path))
			if err != nil {
				t.Fatal(err)
			}
			tuples := pattern.Collect(sc.NewStream(), 15000)
			win := sc.Window()
			want := refjoin.ByBaseSeq(refjoin.Arrival(tuples, win, agg.Sum))
			cfg := engine.Config{Joiners: 1, Window: win, Agg: agg.Sum, Mode: engine.OnArrival}
			got := runCollect(t, OpenMLDB, cfg, tuples)
			diffCompare(t, OpenMLDB+"/in-order", got, want)
		})
	}
}
