package harness

import (
	"oij/internal/engine"
	"oij/internal/refjoin"
	"oij/internal/tuple"
)

// refEngine adapts the refjoin oracle to the engine lifecycle so sweeps can
// measure the naive full-scan baseline alongside the real engines (and the
// perf gate can watch the oracle's own cost trajectory). It buffers the
// whole replay and joins at Drain on the driver goroutine: throughput is
// the oracle's batch cost, latency is meaningless (everything completes at
// drain time), and with more than one configured joiner every tuple still
// lands on slot 0 — unbalancedness 1:1 reflects that it is serial.
type refEngine struct {
	cfg    engine.Config
	sink   engine.Sink
	tuples []tuple.Tuple
	stats  *engine.Stats
}

func newRefEngine(cfg engine.Config, sink engine.Sink) *refEngine {
	cfg = cfg.WithDefaults()
	return &refEngine{cfg: cfg, sink: sink, stats: engine.NewStats(cfg.Joiners)}
}

// Name implements engine.Engine.
func (r *refEngine) Name() string { return RefJoin }

// Start implements engine.Engine; the oracle has no goroutines.
func (r *refEngine) Start() {}

// Ingest buffers one tuple.
func (r *refEngine) Ingest(t tuple.Tuple) {
	r.tuples = append(r.tuples, t)
	r.stats.Processed[0].Add(1)
}

// Heartbeat implements engine.Engine; the oracle never blocks on
// watermarks.
func (r *refEngine) Heartbeat() {}

// Drain joins the buffered replay and emits every result on joiner slot 0.
func (r *refEngine) Drain() {
	var rs []tuple.Result
	if r.cfg.Mode == engine.OnWatermark {
		rs = refjoin.EventTime(r.tuples, r.cfg.Window, r.cfg.Agg)
	} else {
		rs = refjoin.Arrival(r.tuples, r.cfg.Window, r.cfg.Agg)
	}
	for _, res := range rs {
		r.sink.Emit(0, res)
	}
	r.stats.Results.Add(int64(len(rs)))
	r.tuples = nil
}

// Stats implements engine.Engine.
func (r *refEngine) Stats() *engine.Stats { return r.stats }
