package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range AllExperiments() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	// Every table and figure from the paper's evaluation is present.
	for _, want := range []string{
		"table2", "table4", "table5",
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig11",
		"fig13a", "fig13b", "fig13c", "fig13d", "fig14", "fig16",
		"fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
		"ext-noninv", "ext-adaptive", "ext-numa",
	} {
		if !ids[want] {
			t.Errorf("experiment %q missing from registry", want)
		}
	}
	if _, ok := FindExperiment("fig16"); !ok {
		t.Error("FindExperiment(fig16) failed")
	}
	if _, ok := FindExperiment("fig99"); ok {
		t.Error("FindExperiment(fig99) succeeded")
	}
	if len(ExperimentIDs()) != len(ids) {
		t.Error("ExperimentIDs cardinality mismatch")
	}
}

// TestEveryExperimentRuns executes the full registry at a tiny scale so a
// regression in any experiment is caught by `go test` rather than at
// paper-reproduction time. Skipped under -short.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments smoke test is slow; run without -short")
	}
	opts := ExpOptions{N: 12_000, Threads: []int{1, 2}, LatencyThreads: 2}
	for _, e := range AllExperiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, opts); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if strings.TrimSpace(buf.String()) == "" {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}
