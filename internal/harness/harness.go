// Package harness drives experiments: it builds engines by name, replays
// generated workloads (full speed or paced at the workload's arrival
// rate), samples utilization, and collects the metrics each figure of the
// paper reports.
package harness

import (
	"fmt"
	"time"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/keyoij"
	"oij/internal/metrics"
	"oij/internal/mldb"
	"oij/internal/obs"
	"oij/internal/scaleoij"
	"oij/internal/splitjoin"
	"oij/internal/trace"
	"oij/internal/tuple"
	"oij/internal/workload"
)

// Engine variant names accepted by Build.
const (
	KeyOIJ          = "key-oij"
	ScaleOIJ        = "scale-oij"         // all optimizations
	ScaleOIJNoInc   = "scale-oij-noinc"   // without incremental aggregation
	ScaleOIJNoDyn   = "scale-oij-nodyn"   // without the dynamic schedule
	ScaleOIJStatic  = "scale-oij-static"  // time-travel index only
	ScaleOIJIncOnly = "scale-oij-inconly" // index + incremental, static schedule
	SplitJoin       = "splitjoin"
	OpenMLDB        = "openmldb"
	RefJoin         = "refjoin" // serial full-scan oracle (see refengine.go)
)

// Engines lists every variant Build accepts.
func Engines() []string {
	return []string{KeyOIJ, ScaleOIJ, ScaleOIJNoInc, ScaleOIJNoDyn, ScaleOIJStatic, ScaleOIJIncOnly, SplitJoin, OpenMLDB, RefJoin}
}

// Build constructs an engine variant by name.
func Build(name string, cfg engine.Config, sink engine.Sink) (engine.Engine, error) {
	switch name {
	case KeyOIJ:
		return keyoij.New(cfg, sink), nil
	case ScaleOIJ:
		return scaleoij.New(cfg, scaleoij.Default(), sink), nil
	case ScaleOIJNoInc:
		o := scaleoij.Default()
		o.Incremental = false
		return scaleoij.New(cfg, o, sink), nil
	case ScaleOIJNoDyn:
		o := scaleoij.Default()
		o.DynamicSchedule = false
		return scaleoij.New(cfg, o, sink), nil
	case ScaleOIJStatic:
		return scaleoij.New(cfg, scaleoij.Options{}, sink), nil
	case ScaleOIJIncOnly:
		return scaleoij.New(cfg, scaleoij.Options{Incremental: true}, sink), nil
	case SplitJoin:
		return splitjoin.New(cfg, sink), nil
	case OpenMLDB:
		return mldb.New(cfg, sink), nil
	case RefJoin:
		return newRefEngine(cfg, sink), nil
	default:
		return nil, fmt.Errorf("harness: unknown engine %q (known: %v)", name, Engines())
	}
}

// RunConfig describes one measured run.
type RunConfig struct {
	// Engine is a Build variant name.
	Engine string
	// Workload configures generation; its Window/Lateness also configure
	// the engine.
	Workload workload.Config
	// Tuples, when non-nil, replays this pre-generated sequence instead
	// of generating from Workload (sweeps reuse one generation).
	Tuples []tuple.Tuple
	// Joiners is the joiner thread count.
	Joiners int
	// Agg is the aggregation operator (default sum).
	Agg agg.Func
	// Mode is the emission mode (default OnArrival, the serving
	// semantics the paper benchmarks).
	Mode engine.EmitMode
	// Paced replays at Workload.ArrivalRate instead of full speed
	// (required for meaningful latency CDFs; ArrivalRate 0 still runs
	// unpaced).
	Paced bool
	// MeasureLatency stamps base tuples and collects a latency CDF.
	MeasureLatency bool
	// MaxLatencySamples caps per-joiner latency retention with
	// deterministic reservoir sampling (seeded by LatencySeed). 0 retains
	// every sample — fine for bounded replays, not for endless streams.
	MaxLatencySamples int
	// LatencySeed seeds the reservoir PRNG when MaxLatencySamples > 0.
	LatencySeed uint64
	// Instrument enables breakdown + effectiveness accounting.
	Instrument bool
	// UtilEpoch, when > 0, samples per-joiner utilization at this epoch
	// (Fig. 14).
	UtilEpoch time.Duration
	// Flight, when non-nil, receives the engine's flight-recorder events
	// (watermark advances etc.). Benchmarks pass one to measure the
	// recorder's overhead under load.
	Flight *trace.Flight
	// HotKeys, when non-nil, receives every ingested tuple's key — the
	// same per-tuple SpaceSaving observation oijd performs on its ingest
	// path. Benchmarks pass one to measure the sketch's overhead under
	// load (oijbench gate -telemetry).
	HotKeys *obs.HotKeys
}

// RunResult carries everything a figure needs.
type RunResult struct {
	Engine         string
	Joiners        int
	Tuples         int64
	Elapsed        time.Duration
	Throughput     float64 // input tuples per second
	Results        int64
	CDF            metrics.CDF // populated with MeasureLatency
	Breakdown      metrics.Breakdown
	Effectiveness  float64
	Unbalancedness float64
	Evicted        int64
	Extra          map[string]int64
	Utilization    *metrics.Utilization
}

// Run executes one configured run and collects its metrics.
func Run(rc RunConfig) (RunResult, error) {
	tuples := rc.Tuples
	if tuples == nil {
		var err error
		tuples, err = rc.Workload.Generate()
		if err != nil {
			return RunResult{}, err
		}
	}

	cfg := engine.Config{
		Joiners:    rc.Joiners,
		Window:     rc.Workload.Window,
		Agg:        rc.Agg,
		Mode:       rc.Mode,
		Instrument: rc.Instrument,
		TrackBusy:  rc.UtilEpoch > 0,
		Flight:     rc.Flight,
	}
	var sink engine.Sink
	var lat *engine.LatencySink
	if rc.MeasureLatency {
		if rc.MaxLatencySamples > 0 {
			lat = engine.NewLatencySinkCapped(rc.Joiners, rc.MaxLatencySamples, rc.LatencySeed)
		} else {
			lat = engine.NewLatencySink(rc.Joiners, len(tuples)/2+1)
		}
		sink = lat
	} else {
		sink = &engine.CountSink{}
	}
	eng, err := Build(rc.Engine, cfg, sink)
	if err != nil {
		return RunResult{}, err
	}

	// Optional live utilization sampling. Per-joiner work is sampled as
	// processed-tuple deltas rather than busy nanoseconds: the imbalance
	// and smoothness metrics normalize within each epoch, and tuple
	// counts stay meaningful even when joiners time-share fewer physical
	// cores than Config.Joiners.
	var util *metrics.Utilization
	stopUtil := make(chan struct{})
	utilDone := make(chan struct{})
	if rc.UtilEpoch > 0 {
		util = metrics.NewUtilization(rc.Joiners, rc.UtilEpoch)
		go func() {
			defer close(utilDone)
			tick := time.NewTicker(rc.UtilEpoch)
			defer tick.Stop()
			prev := make([]int64, rc.Joiners)
			st := eng.Stats()
			for {
				select {
				case <-stopUtil:
					return
				case <-tick.C:
					for i := 0; i < rc.Joiners; i++ {
						cur := st.Processed[i].Load()
						util.AddBusy(i, time.Duration(cur-prev[i]))
						prev[i] = cur
					}
					util.Snapshot()
				}
			}
		}()
	} else {
		close(utilDone)
	}

	eng.Start()
	hk := rc.HotKeys
	start := time.Now()
	if rc.Paced && rc.Workload.ArrivalRate > 0 {
		pace(eng, tuples, rc.Workload.ArrivalRate, rc.MeasureLatency, hk)
	} else {
		if rc.MeasureLatency {
			for i := range tuples {
				if tuples[i].Side == tuple.Base {
					tuples[i].Arrival = time.Now()
				}
				if hk != nil {
					hk.Observe(uint64(tuples[i].Key))
				}
				eng.Ingest(tuples[i])
			}
		} else if hk != nil {
			for i := range tuples {
				hk.Observe(uint64(tuples[i].Key))
				eng.Ingest(tuples[i])
			}
		} else {
			for i := range tuples {
				eng.Ingest(tuples[i])
			}
		}
	}
	eng.Drain()
	elapsed := time.Since(start)
	close(stopUtil)
	<-utilDone

	st := eng.Stats()
	res := RunResult{
		Engine:         rc.Engine,
		Joiners:        rc.Joiners,
		Tuples:         int64(len(tuples)),
		Elapsed:        elapsed,
		Throughput:     metrics.Throughput(int64(len(tuples)), elapsed),
		Results:        st.Results.Load(),
		Unbalancedness: metrics.Unbalancedness(st.Loads()),
		Evicted:        st.Evicted.Load(),
		Extra:          st.Extra,
		Utilization:    util,
	}
	if rc.Instrument {
		res.Breakdown = st.MergedBreakdown()
		res.Effectiveness = st.MergedEffectiveness()
	}
	if lat != nil {
		res.CDF = lat.CDF()
	}
	return res, nil
}

// pace replays tuples at the given arrival rate (tuples per wall-clock
// second), stamping base arrivals when latency is measured. Pacing is
// checked every batch of 64 tuples to keep clock reads off the per-tuple
// path.
func pace(eng engine.Engine, tuples []tuple.Tuple, rate float64, stamp bool, hk *obs.HotKeys) {
	const batch = 64
	interval := time.Duration(float64(batch) / rate * float64(time.Second))
	next := time.Now()
	for i := range tuples {
		if i%batch == 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
		}
		if stamp && tuples[i].Side == tuple.Base {
			tuples[i].Arrival = time.Now()
		}
		if hk != nil {
			hk.Observe(uint64(tuples[i].Key))
		}
		eng.Ingest(tuples[i])
	}
}
