// Package agg provides the window aggregation operators used by the online
// interval join: the invertible operators (sum, count, avg) that the
// Subtract-on-Evict technique (Tangwongsan et al., DEBS'17, adapted in
// §V-C of the paper) can maintain incrementally, and the non-invertible
// min/max operators that require recomputation per window.
package agg

import (
	"fmt"
	"math"
)

// Func identifies an aggregation operator.
type Func uint8

const (
	// Sum adds payload values.
	Sum Func = iota
	// Count counts matching tuples.
	Count
	// Avg averages payload values.
	Avg
	// Min keeps the minimum payload value (not invertible).
	Min
	// Max keeps the maximum payload value (not invertible).
	Max
	// Last keeps the value with the largest event timestamp in the
	// window (not invertible) — the aggregation behind OpenMLDB's
	// LAST JOIN ("the most recent matching row").
	Last
	// First keeps the value with the smallest event timestamp in the
	// window (not invertible).
	First
)

// Parse maps an operator name (as written in the SQL dialect) to a Func.
func Parse(name string) (Func, error) {
	switch name {
	case "sum":
		return Sum, nil
	case "count":
		return Count, nil
	case "avg":
		return Avg, nil
	case "min":
		return Min, nil
	case "max":
		return Max, nil
	case "last_value", "last":
		return Last, nil
	case "first_value", "first":
		return First, nil
	default:
		return 0, fmt.Errorf("agg: unknown aggregation function %q", name)
	}
}

// String implements fmt.Stringer.
func (f Func) String() string {
	switch f {
	case Sum:
		return "sum"
	case Count:
		return "count"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	case Last:
		return "last_value"
	case First:
		return "first_value"
	default:
		return fmt.Sprintf("agg(%d)", uint8(f))
	}
}

// Invertible reports whether the operator supports Subtract-on-Evict
// (an exact inverse ⊖ of its combine ⊕).
func (f Func) Invertible() bool { return f == Sum || f == Count || f == Avg }

// Timestamped reports whether the operator's result depends on event
// timestamps (Last/First); engines must fold such operators with AddAt.
func (f Func) Timestamped() bool { return f == Last || f == First }

// State is a running aggregate. The zero State of a Func is the empty
// aggregate. Add/AddAt fold one value in; Remove inverts a previous Add
// (only legal for invertible Funcs); Value renders the current aggregate.
type State struct {
	fn    Func
	sum   float64
	count int64
	// extreme holds the running min/max value, or the selected value
	// for Last/First.
	extreme float64
	// atTS is the timestamp the Last/First selection was made at.
	atTS int64
}

// NewState returns the empty aggregate for fn.
func NewState(fn Func) State {
	s := State{fn: fn}
	switch fn {
	case Min:
		s.extreme = math.Inf(1)
	case Max:
		s.extreme = math.Inf(-1)
	case Last:
		s.atTS = math.MinInt64
	case First:
		s.atTS = math.MaxInt64
	}
	return s
}

// Add folds value v into the aggregate (the paper's ⊕) at timestamp 0.
// Use AddAt for the timestamped operators (Last/First).
func (s *State) Add(v float64) { s.AddAt(0, v) }

// AddAt folds value v carrying event timestamp ts. For Last, ties on ts
// resolve to the later fold (arrival order); for First, to the earlier.
func (s *State) AddAt(ts int64, v float64) {
	s.count++
	switch s.fn {
	case Sum, Avg, Count:
		s.sum += v
	case Min:
		if v < s.extreme {
			s.extreme = v
		}
	case Max:
		if v > s.extreme {
			s.extreme = v
		}
	case Last:
		if ts >= s.atTS {
			s.atTS = ts
			s.extreme = v
		}
	case First:
		if ts < s.atTS {
			s.atTS = ts
			s.extreme = v
		}
	}
}

// Remove inverts a previous Add of v (the paper's ⊖). It panics for
// non-invertible operators — callers must consult Func.Invertible and fall
// back to recomputation, exactly as §V-C scopes the technique to invertible
// aggregations.
func (s *State) Remove(v float64) {
	switch s.fn {
	case Sum, Avg, Count:
		s.sum -= v
		s.count--
	default:
		panic("agg: Remove on non-invertible aggregation " + s.fn.String())
	}
}

// Count returns the number of values currently folded in.
func (s *State) Count() int64 { return s.count }

// Value renders the aggregate. Empty aggregates yield 0 for sum/count, and
// NaN for avg/min/max (no defined value over an empty window).
func (s *State) Value() float64 {
	switch s.fn {
	case Sum:
		return s.sum
	case Count:
		return float64(s.count)
	case Avg:
		if s.count == 0 {
			return math.NaN()
		}
		return s.sum / float64(s.count)
	case Min, Max, Last, First:
		if s.count == 0 {
			return math.NaN()
		}
		return s.extreme
	default:
		return math.NaN()
	}
}

// Reset returns the state to the empty aggregate.
func (s *State) Reset() {
	*s = NewState(s.fn)
}

// Fn returns the operator of this state.
func (s *State) Fn() Func { return s.fn }

// Merge folds another partial aggregate of the same operator into s, so
// distributed engines (SplitJoin's per-joiner partials) can combine
// sub-aggregates. It panics on operator mismatch.
func (s *State) Merge(o State) {
	if s.fn != o.fn {
		panic("agg: merging mismatched aggregations " + s.fn.String() + " and " + o.fn.String())
	}
	s.count += o.count
	switch s.fn {
	case Sum, Avg, Count:
		s.sum += o.sum
	case Min:
		if o.extreme < s.extreme {
			s.extreme = o.extreme
		}
	case Max:
		if o.extreme > s.extreme {
			s.extreme = o.extreme
		}
	case Last:
		if o.count > 0 && o.atTS >= s.atTS {
			s.atTS, s.extreme = o.atTS, o.extreme
		}
	case First:
		if o.count > 0 && o.atTS < s.atTS {
			s.atTS, s.extreme = o.atTS, o.extreme
		}
	}
}
