package agg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSlidingEmpty(t *testing.T) {
	s := NewSliding(Max)
	if s.Len() != 0 || s.Count() != 0 {
		t.Fatal("fresh sliding not empty")
	}
	if !math.IsNaN(s.Value()) {
		t.Fatalf("empty max = %g, want NaN", s.Value())
	}
	if _, ok := s.OldestTS(); ok {
		t.Fatal("OldestTS on empty")
	}
	if _, ok := s.NewestTS(); ok {
		t.Fatal("NewestTS on empty")
	}
	if s.PopBefore(100) != 0 {
		t.Fatal("pop on empty removed entries")
	}
}

func TestSlidingBasicWindow(t *testing.T) {
	s := NewSliding(Max)
	for i, v := range []float64{3, 9, 2, 7} {
		s.Push(int64(i), v)
	}
	if got := s.Value(); got != 9 {
		t.Fatalf("max = %g", got)
	}
	if ts, _ := s.OldestTS(); ts != 0 {
		t.Fatalf("oldest = %d", ts)
	}
	if ts, _ := s.NewestTS(); ts != 3 {
		t.Fatalf("newest = %d", ts)
	}
	// Slide past the 9.
	if got := s.PopBefore(2); got != 2 {
		t.Fatalf("popped %d", got)
	}
	if got := s.Value(); got != 7 {
		t.Fatalf("max after slide = %g", got)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestSlidingMinSum(t *testing.T) {
	mn, sum := NewSliding(Min), NewSliding(Sum)
	for i, v := range []float64{5, 1, 8} {
		mn.Push(int64(i), v)
		sum.Push(int64(i), v)
	}
	if mn.Value() != 1 || sum.Value() != 14 {
		t.Fatalf("min=%g sum=%g", mn.Value(), sum.Value())
	}
	mn.PopBefore(2)
	sum.PopBefore(2)
	if mn.Value() != 8 || sum.Value() != 8 {
		t.Fatalf("after pop: min=%g sum=%g", mn.Value(), sum.Value())
	}
}

func TestSlidingDuplicateTimestamps(t *testing.T) {
	s := NewSliding(Count)
	s.Push(5, 1)
	s.Push(5, 1)
	s.Push(5, 1)
	if s.Value() != 3 {
		t.Fatalf("count = %g", s.Value())
	}
	if got := s.PopBefore(5); got != 0 {
		t.Fatalf("popped %d at equal bound", got)
	}
	if got := s.PopBefore(6); got != 3 {
		t.Fatalf("popped %d", got)
	}
}

// TestQuickSlidingMatchesNaive property-tests a random push/pop sequence
// against a naive window recomputation, across every operator.
func TestQuickSlidingMatchesNaive(t *testing.T) {
	type op struct {
		Push  bool
		Delta uint8
		Val   int8
	}
	f := func(seed int64, ops []op) bool {
		rng := rand.New(rand.NewSource(seed))
		_ = rng
		for _, fn := range []Func{Sum, Count, Avg, Min, Max} {
			s := NewSliding(fn)
			type ent struct {
				ts  int64
				val float64
			}
			var model []ent
			ts := int64(0)
			bound := int64(-1 << 40)
			for _, o := range ops {
				if o.Push {
					ts += int64(o.Delta)
					v := float64(o.Val)
					s.Push(ts, v)
					model = append(model, ent{ts, v})
				} else {
					bound += int64(o.Delta) * 3
					if bound > ts+1 {
						bound = ts + 1
					}
					s.PopBefore(bound)
					keep := model[:0]
					for _, e := range model {
						if e.ts >= bound {
							keep = append(keep, e)
						}
					}
					model = keep
				}
				// Compare against naive recomputation.
				naive := NewState(fn)
				for _, e := range model {
					naive.Add(e.val)
				}
				if s.Len() != len(model) {
					return false
				}
				sv, nv := s.Value(), naive.Value()
				if math.IsNaN(sv) != math.IsNaN(nv) {
					return false
				}
				if !math.IsNaN(sv) && math.Abs(sv-nv) > 1e-9*(1+math.Abs(nv)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
