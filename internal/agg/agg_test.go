package agg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	for name, want := range map[string]Func{"sum": Sum, "count": Count, "avg": Avg, "min": Min, "max": Max} {
		got, err := Parse(name)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Errorf("String round-trip: %v -> %q", got, got.String())
		}
	}
	if _, err := Parse("median"); err == nil {
		t.Error("Parse(median) should fail")
	}
}

func TestInvertible(t *testing.T) {
	for fn, want := range map[Func]bool{Sum: true, Count: true, Avg: true, Min: false, Max: false} {
		if fn.Invertible() != want {
			t.Errorf("%v.Invertible() = %v", fn, !want)
		}
	}
}

func TestEmptyAggregates(t *testing.T) {
	sum := NewState(Sum)
	if v := sum.Value(); v != 0 {
		t.Errorf("empty sum = %g", v)
	}
	cnt := NewState(Count)
	if v := cnt.Value(); v != 0 {
		t.Errorf("empty count = %g", v)
	}
	for _, fn := range []Func{Avg, Min, Max} {
		s := NewState(fn)
		if v := s.Value(); !math.IsNaN(v) {
			t.Errorf("empty %v = %g, want NaN", fn, v)
		}
	}
}

func TestSumCountAvg(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	sum, cnt := 0.0, 0
	states := map[Func]*State{}
	for _, fn := range []Func{Sum, Count, Avg} {
		s := NewState(fn)
		states[fn] = &s
	}
	for _, v := range vals {
		sum += v
		cnt++
		for _, s := range states {
			s.Add(v)
		}
	}
	if got := states[Sum].Value(); got != sum {
		t.Errorf("sum = %g, want %g", got, sum)
	}
	if got := states[Count].Value(); got != float64(cnt) {
		t.Errorf("count = %g, want %d", got, cnt)
	}
	if got := states[Avg].Value(); math.Abs(got-sum/float64(cnt)) > 1e-12 {
		t.Errorf("avg = %g, want %g", got, sum/float64(cnt))
	}
}

func TestMinMax(t *testing.T) {
	mn, mx := NewState(Min), NewState(Max)
	for _, v := range []float64{5, -3, 12, 0.5} {
		mn.Add(v)
		mx.Add(v)
	}
	if mn.Value() != -3 {
		t.Errorf("min = %g", mn.Value())
	}
	if mx.Value() != 12 {
		t.Errorf("max = %g", mx.Value())
	}
}

func TestRemoveInvertsAdd(t *testing.T) {
	for _, fn := range []Func{Sum, Count, Avg} {
		s := NewState(fn)
		s.Add(10)
		s.Add(20)
		s.Add(30)
		s.Remove(10)
		s.Remove(30)
		want := NewState(fn)
		want.Add(20)
		if s.Value() != want.Value() || s.Count() != want.Count() {
			t.Errorf("%v: subtract-on-evict mismatch: got (%g,%d) want (%g,%d)",
				fn, s.Value(), s.Count(), want.Value(), want.Count())
		}
	}
}

func TestRemovePanicsOnNonInvertible(t *testing.T) {
	for _, fn := range []Func{Min, Max} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v.Remove did not panic", fn)
				}
			}()
			s := NewState(fn)
			s.Add(1)
			s.Remove(1)
		}()
	}
}

func TestReset(t *testing.T) {
	s := NewState(Min)
	s.Add(3)
	s.Reset()
	if !math.IsNaN(s.Value()) || s.Count() != 0 {
		t.Fatal("Reset did not restore empty aggregate")
	}
	if s.Fn() != Min {
		t.Fatal("Reset lost the operator")
	}
}

func TestMerge(t *testing.T) {
	for _, fn := range []Func{Sum, Count, Avg, Min, Max} {
		a, b, all := NewState(fn), NewState(fn), NewState(fn)
		for i, v := range []float64{4, 8, 15, 16, 23, 42} {
			if i%2 == 0 {
				a.Add(v)
			} else {
				b.Add(v)
			}
			all.Add(v)
		}
		a.Merge(b)
		if a.Count() != all.Count() || math.Abs(a.Value()-all.Value()) > 1e-12 {
			t.Errorf("%v merge: got (%g,%d) want (%g,%d)", fn, a.Value(), a.Count(), all.Value(), all.Count())
		}
	}
}

func TestMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched merge did not panic")
		}
	}()
	a, b := NewState(Sum), NewState(Min)
	a.Merge(b)
}

// TestQuickSlidingEquivalence property-tests the Subtract-on-Evict
// identity: sliding a window by add/remove equals recomputation, for every
// invertible operator.
func TestQuickSlidingEquivalence(t *testing.T) {
	f := func(vals []float64, loF, hiF uint8) bool {
		if len(vals) == 0 {
			return true
		}
		// Constrain magnitudes: Subtract-on-Evict is exact in the reals
		// but floating-point cancellation near ±MaxFloat64 is not a
		// property of the algorithm under test.
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vals[i] = math.Mod(v, 1e6)
		}
		lo := int(loF) % len(vals)
		hi := int(hiF) % len(vals)
		if lo > hi {
			lo, hi = hi, lo
		}
		for _, fn := range []Func{Sum, Count, Avg} {
			// Incremental: fold everything, then remove the outside.
			inc := NewState(fn)
			for _, v := range vals {
				inc.Add(v)
			}
			for i, v := range vals {
				if i < lo || i > hi {
					inc.Remove(v)
				}
			}
			// Direct recomputation over [lo, hi].
			direct := NewState(fn)
			for i := lo; i <= hi; i++ {
				direct.Add(vals[i])
			}
			iv, dv := inc.Value(), direct.Value()
			if inc.Count() != direct.Count() {
				return false
			}
			if math.IsNaN(iv) != math.IsNaN(dv) {
				return false
			}
			if !math.IsNaN(iv) && math.Abs(iv-dv) > 1e-6*(1+math.Abs(dv)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLastFirst(t *testing.T) {
	last, first := NewState(Last), NewState(First)
	for _, e := range []struct {
		ts int64
		v  float64
	}{{10, 1}, {30, 3}, {20, 2}} {
		last.AddAt(e.ts, e.v)
		first.AddAt(e.ts, e.v)
	}
	if last.Value() != 3 {
		t.Fatalf("last = %g, want value at ts 30", last.Value())
	}
	if first.Value() != 1 {
		t.Fatalf("first = %g, want value at ts 10", first.Value())
	}
	// Empty state is NaN.
	e := NewState(Last)
	if !math.IsNaN(e.Value()) {
		t.Fatal("empty last not NaN")
	}
	// Parse and names.
	for name, fn := range map[string]Func{"last": Last, "last_value": Last, "first": First, "first_value": First} {
		got, err := Parse(name)
		if err != nil || got != fn {
			t.Fatalf("Parse(%q) = %v, %v", name, got, err)
		}
	}
	if Last.Invertible() || First.Invertible() {
		t.Fatal("last/first must not be invertible")
	}
	if !Last.Timestamped() || !First.Timestamped() || Sum.Timestamped() {
		t.Fatal("Timestamped() wrong")
	}
}

func TestLastFirstMerge(t *testing.T) {
	a, b := NewState(Last), NewState(Last)
	a.AddAt(10, 1)
	b.AddAt(20, 2)
	a.Merge(b)
	if a.Value() != 2 || a.Count() != 2 {
		t.Fatalf("merged last = %g over %d", a.Value(), a.Count())
	}
	// Merging an empty state changes nothing.
	a.Merge(NewState(Last))
	if a.Value() != 2 {
		t.Fatal("empty merge changed last")
	}
	f, g := NewState(First), NewState(First)
	f.AddAt(10, 1)
	g.AddAt(5, 0.5)
	f.Merge(g)
	if f.Value() != 0.5 {
		t.Fatalf("merged first = %g", f.Value())
	}
}

func TestSlidingLast(t *testing.T) {
	s := NewSliding(Last)
	for i := int64(0); i < 10; i++ {
		s.Push(i, float64(i)*10)
	}
	if s.Value() != 90 {
		t.Fatalf("sliding last = %g", s.Value())
	}
	s.PopBefore(8)
	if s.Value() != 90 || s.Len() != 2 {
		t.Fatalf("after pop: last = %g over %d", s.Value(), s.Len())
	}
}
