package agg

// Sliding maintains an associative (not necessarily invertible) aggregate
// over a FIFO window of (timestamp, value) entries using the classic
// two-stacks algorithm: every push and pop is amortized O(1) regardless of
// operator, which extends the paper's incremental interval join to min and
// max — one of the future-work items its conclusion lists ("incremental
// computing for non-invertible operators", citing the same DEBS'17 line of
// work the Subtract-on-Evict technique comes from).
//
// Entries must be pushed in non-decreasing timestamp order and are popped
// from the front by a timestamp bound; the window therefore slides forward
// only. Callers that need to move a window backwards rebuild the Sliding
// from a fresh scan.
type Sliding struct {
	fn Func
	// back holds recently pushed entries; back[i].acc aggregates
	// back[0..i] (prefix aggregates).
	back []slideEntry
	// front holds older entries in reversed order; front[i].acc
	// aggregates front[i..0...] — suffix aggregates of the original
	// order — so the front-most window element is at the end of the
	// slice and Value combines front top with back top in O(1).
	front []slideEntry
}

type slideEntry struct {
	ts  int64
	val float64
	acc State
}

// NewSliding returns an empty sliding aggregate for fn.
func NewSliding(fn Func) *Sliding {
	return &Sliding{fn: fn}
}

// Fn returns the operator.
func (s *Sliding) Fn() Func { return s.fn }

// Len returns the number of entries currently in the window.
func (s *Sliding) Len() int { return len(s.front) + len(s.back) }

// Push appends an entry; ts must be >= every previously pushed timestamp
// still in the window (it may equal the newest).
func (s *Sliding) Push(ts int64, val float64) {
	acc := NewState(s.fn)
	if n := len(s.back); n > 0 {
		acc = s.back[n-1].acc
	}
	acc.AddAt(ts, val) // State is a value; acc is a private copy
	s.back = append(s.back, slideEntry{ts: ts, val: val, acc: acc})
}

// PopBefore removes every entry with ts < bound from the front of the
// window and returns how many were removed.
func (s *Sliding) PopBefore(bound int64) int {
	removed := 0
	for {
		if len(s.front) == 0 {
			if len(s.back) == 0 {
				return removed
			}
			s.flip()
		}
		top := len(s.front) - 1
		if s.front[top].ts >= bound {
			return removed
		}
		s.front = s.front[:top]
		removed++
	}
}

// flip moves the back stack onto the front stack, converting prefix
// aggregates to suffix aggregates — the amortized step of the two-stacks
// algorithm.
func (s *Sliding) flip() {
	acc := NewState(s.fn)
	for i := len(s.back) - 1; i >= 0; i-- {
		acc.AddAt(s.back[i].ts, s.back[i].val)
		s.front = append(s.front, slideEntry{ts: s.back[i].ts, val: s.back[i].val, acc: acc})
	}
	s.back = s.back[:0]
}

// OldestTS returns the timestamp at the front of the window.
func (s *Sliding) OldestTS() (int64, bool) {
	if n := len(s.front); n > 0 {
		return s.front[n-1].ts, true
	}
	if len(s.back) > 0 {
		return s.back[0].ts, true
	}
	return 0, false
}

// NewestTS returns the timestamp at the back of the window.
func (s *Sliding) NewestTS() (int64, bool) {
	if n := len(s.back); n > 0 {
		return s.back[n-1].ts, true
	}
	if len(s.front) > 0 {
		return s.front[0].ts, true
	}
	return 0, false
}

// Aggregate returns the combined State over the whole window.
func (s *Sliding) Aggregate() State {
	out := NewState(s.fn)
	if n := len(s.front); n > 0 {
		out.Merge(s.front[n-1].acc)
	}
	if n := len(s.back); n > 0 {
		out.Merge(s.back[n-1].acc)
	}
	return out
}

// Value returns the aggregate value over the window.
func (s *Sliding) Value() float64 {
	st := s.Aggregate()
	return st.Value()
}

// Count returns the number of aggregated values (== Len).
func (s *Sliding) Count() int64 { return int64(s.Len()) }

// Reset empties the window.
func (s *Sliding) Reset() {
	s.front = s.front[:0]
	s.back = s.back[:0]
}
