package agg

import "testing"

// BenchmarkStateAdd measures the plain fold path.
func BenchmarkStateAdd(b *testing.B) {
	st := NewState(Sum)
	for i := 0; i < b.N; i++ {
		st.Add(float64(i & 1023))
	}
	_ = st.Value()
}

// BenchmarkSubtractOnEvict measures one slide step (add one, remove one)
// of the invertible incremental path.
func BenchmarkSubtractOnEvict(b *testing.B) {
	st := NewState(Sum)
	for i := 0; i < 1000; i++ {
		st.Add(float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Add(float64(i & 1023))
		st.Remove(float64(i & 1023))
	}
}

// BenchmarkSlidingMax measures one slide step of the two-stacks window —
// the non-invertible analogue of Subtract-on-Evict.
func BenchmarkSlidingMax(b *testing.B) {
	s := NewSliding(Max)
	for i := 0; i < 1000; i++ {
		s.Push(int64(i), float64(i&255))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Push(int64(1000+i), float64(i&255))
		s.PopBefore(int64(i))
		_ = s.Value()
	}
}

// BenchmarkSlidingRebuild measures a full window rebuild (the fallback the
// incremental paths take on regressions or team changes).
func BenchmarkSlidingRebuild(b *testing.B) {
	vals := make([]float64, 512)
	for i := range vals {
		vals[i] = float64(i * 7 % 255)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSliding(Min)
		for k, v := range vals {
			s.Push(int64(k), v)
		}
		_ = s.Value()
	}
}
