package cachesim

import (
	"oij/internal/tuple"
	"oij/internal/window"
)

// AccessStyle selects which buffer accesses a join performs per base tuple
// in the trace replay.
type AccessStyle uint8

const (
	// FullScan touches every buffered tuple of the key (Key-OIJ).
	FullScan AccessStyle = iota
	// WindowOnly touches only in-window tuples (Scale-OIJ's time-travel
	// index).
	WindowOnly
)

// TupleBytes is the modelled in-memory footprint of one buffered tuple
// (timestamp + key + value + pointer overhead).
const TupleBytes = 48

// KeyMetaBytes is the modelled per-key metadata footprint a join touches
// before reaching the buffer: the hash-map bucket, the buffer header, and
// the index root. With many unique keys this metadata alone outgrows the
// cache — the access-pattern cause of the paper's LLC-miss surge
// (Figs. 8b/13d: "we have to access more data, estimated as #key ×
// window").
const KeyMetaBytes = 192

// JoinTrace replays the buffer-access pattern of an interval-join run over
// a tuple sequence against the cache and returns (misses, accesses). Each
// buffered probe gets a distinct synthetic address from a bump allocator,
// so per-key buffers are interleaved in memory exactly as arrival-order
// allocation interleaves them — the random-access pattern across many keys
// that produces the LLC-miss surge of Figs. 8b/13d.
func JoinTrace(c *Cache, tuples []tuple.Tuple, w window.Spec, style AccessStyle) (misses, accesses uint64) {
	type slot struct {
		ts   tuple.Time
		addr uint64
	}
	buffers := make(map[tuple.Key][]slot)
	keyMeta := make(map[tuple.Key]uint64)
	var nextMeta uint64 = 1 << 30 // metadata region, away from tuple slots
	var next uint64 = 1 << 20     // arbitrary tuple-slot base address
	var maxTS tuple.Time
	h0, m0 := c.Hits(), c.Misses()

	touchMeta := func(k tuple.Key) {
		addr, ok := keyMeta[k]
		if !ok {
			addr = nextMeta
			nextMeta += KeyMetaBytes
			keyMeta[k] = addr
		}
		c.AccessRange(addr, KeyMetaBytes)
	}

	for _, t := range tuples {
		if t.TS > maxTS {
			maxTS = t.TS
		}
		touchMeta(t.Key) // every operation resolves the key's structures
		if t.Side == tuple.Probe {
			buffers[t.Key] = append(buffers[t.Key], slot{t.TS, next})
			c.Access(next) // the insert touches the new slot
			next += TupleBytes
			continue
		}
		lo, hi := w.Bounds(t.TS)
		bound := maxTS - w.Lateness - w.Pre
		buf := buffers[t.Key]
		keep := buf[:0]
		for _, s := range buf {
			switch style {
			case FullScan:
				c.Access(s.addr)
			case WindowOnly:
				if s.ts >= lo && s.ts <= hi {
					c.Access(s.addr)
				}
			}
			if s.ts >= bound {
				keep = append(keep, s)
			}
		}
		buffers[t.Key] = keep
	}
	return c.Misses() - m0, (c.Hits() - h0) + (c.Misses() - m0)
}
