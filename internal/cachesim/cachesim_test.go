package cachesim

import (
	"testing"

	"oij/internal/window"
	"oij/internal/workload"
)

func tiny() Config { return Config{SizeBytes: 64 * 1024, Ways: 4, LineBytes: 64} }

func TestColdMissThenHit(t *testing.T) {
	c := New(tiny())
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("warm access missed")
	}
	if !c.Access(0x1010) {
		t.Fatal("same-line access missed")
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if got := c.MissRate(); got != 1.0/3 {
		t.Fatalf("miss rate = %g", got)
	}
}

func TestLRUEviction(t *testing.T) {
	// 4-way set: 5 distinct lines mapping to the same set must evict the
	// least recently used.
	cfg := tiny()
	c := New(cfg)
	sets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	stride := uint64(sets * cfg.LineBytes) // same set, different tags
	for i := uint64(0); i < 4; i++ {
		c.Access(i * stride)
	}
	c.Access(0) // refresh line 0 so line 1 is LRU
	c.Access(4 * stride)
	if !c.Access(0) {
		t.Fatal("recently used line was evicted")
	}
	if c.Access(1 * stride) {
		t.Fatal("LRU line survived eviction")
	}
}

func TestWorkingSetFitsVsSpills(t *testing.T) {
	cfg := tiny() // 64 KiB
	// A working set that fits: after warmup, no misses.
	c := New(cfg)
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < 32*1024; a += 64 {
			c.Access(a)
		}
	}
	if c.Misses() != 32*1024/64 {
		t.Fatalf("fitting set missed %d times, want warmup-only %d", c.Misses(), 32*1024/64)
	}
	// A working set 4x the cache: every pass misses (sequential LRU
	// thrashing).
	c2 := New(cfg)
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < 256*1024; a += 64 {
			c2.Access(a)
		}
	}
	if rate := c2.MissRate(); rate < 0.99 {
		t.Fatalf("thrashing set miss rate = %g", rate)
	}
}

func TestAccessRange(t *testing.T) {
	c := New(tiny())
	if got := c.AccessRange(0, 256); got != 4 {
		t.Fatalf("first range pass missed %d lines, want 4", got)
	}
	if got := c.AccessRange(0, 256); got != 0 {
		t.Fatalf("second range pass missed %d lines, want 0", got)
	}
}

func TestReset(t *testing.T) {
	c := New(tiny())
	c.Access(0)
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("Reset kept counters")
	}
	if c.Access(0) {
		t.Fatal("Reset kept contents")
	}
}

func TestXeonGeometry(t *testing.T) {
	c := New(Config{})
	if c.sets <= 0 {
		t.Fatal("default geometry broken")
	}
	g := XeonGold6252()
	if g.SizeBytes != 35_750_000 || g.Ways != 11 {
		t.Fatalf("unexpected Xeon geometry %+v", g)
	}
}

// TestJoinTraceKeyCountTrend reproduces the qualitative finding of
// Figs. 8b/13d: with the same tuple volume, spreading the buffer working
// set over many keys raises LLC misses.
func TestJoinTraceKeyCountTrend(t *testing.T) {
	missRate := func(keys int) float64 {
		wl := workload.Config{
			Name:      "cache",
			N:         60_000,
			EventRate: 1_000_000,
			Keys:      keys,
			BaseShare: 0.5,
			Window:    window.Spec{Pre: 20_000, Fol: 0, Lateness: 1000},
			Disorder:  1000,
			Seed:      5,
		}
		ts, err := wl.Generate()
		if err != nil {
			t.Fatal(err)
		}
		c := New(Config{SizeBytes: 256 * 1024, Ways: 8, LineBytes: 64})
		misses, accesses := JoinTrace(c, ts, wl.Window, FullScan)
		if accesses == 0 {
			t.Fatal("trace produced no accesses")
		}
		return float64(misses) / float64(accesses)
	}
	few := missRate(4)
	many := missRate(4096)
	if many <= few {
		t.Fatalf("miss rate did not grow with key count: few=%g many=%g", few, many)
	}
}

// TestJoinTraceWindowOnlyCheaper: the time-travel access style touches
// fewer lines than the full scan under large lateness.
func TestJoinTraceWindowOnlyCheaper(t *testing.T) {
	wl := workload.Config{
		Name:      "cache2",
		N:         40_000,
		EventRate: 1_000_000,
		Keys:      16,
		BaseShare: 0.5,
		Window:    window.Spec{Pre: 1000, Fol: 0, Lateness: 30_000},
		Disorder:  30_000,
		Seed:      6,
	}
	ts, err := wl.Generate()
	if err != nil {
		t.Fatal(err)
	}
	full := New(Config{SizeBytes: 128 * 1024, Ways: 8, LineBytes: 64})
	_, fullAcc := JoinTrace(full, ts, wl.Window, FullScan)
	win := New(Config{SizeBytes: 128 * 1024, Ways: 8, LineBytes: 64})
	_, winAcc := JoinTrace(win, ts, wl.Window, WindowOnly)
	if winAcc*2 >= fullAcc {
		t.Fatalf("window-only accesses (%d) not well below full-scan accesses (%d)", winAcc, fullAcc)
	}
}
