// Package cachesim is a set-associative LRU cache model standing in for
// the hardware LLC-miss counters of Figs. 8b and 13d (see DESIGN.md,
// substitutions). The paper uses LLC misses only to explain a throughput
// trend — many unique keys spread the buffer working set until it no
// longer fits in the last-level cache — and the model reproduces exactly
// that relationship when fed the buffer-access trace of a join run.
package cachesim

import "fmt"

// Config shapes the simulated cache. The defaults model the paper's Xeon
// Gold 6252 LLC: 35.75 MB, 11-way set associative, 64-byte lines.
type Config struct {
	SizeBytes int // total capacity
	Ways      int // associativity
	LineBytes int // cache-line size
}

// XeonGold6252 returns the evaluation machine's LLC geometry (Table III).
func XeonGold6252() Config {
	return Config{SizeBytes: 35_750_000, Ways: 11, LineBytes: 64}
}

// WithDefaults fills unset fields with the Xeon geometry.
func (c Config) WithDefaults() Config {
	d := XeonGold6252()
	if c.SizeBytes <= 0 {
		c.SizeBytes = d.SizeBytes
	}
	if c.Ways <= 0 {
		c.Ways = d.Ways
	}
	if c.LineBytes <= 0 {
		c.LineBytes = d.LineBytes
	}
	return c
}

// Cache simulates one set-associative LRU cache. It is not safe for
// concurrent use; traces are replayed single-threaded.
type Cache struct {
	cfg   Config
	sets  int
	tags  []uint64 // sets × ways; 0 = empty
	stamp []uint64 // LRU timestamps, parallel to tags
	clock uint64

	hits, misses uint64
}

// New builds a cache; it panics on a geometry that yields no sets.
func New(cfg Config) *Cache {
	cfg = cfg.WithDefaults()
	sets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	if sets < 1 {
		panic(fmt.Sprintf("cachesim: geometry %+v has no sets", cfg))
	}
	return &Cache{
		cfg:   cfg,
		sets:  sets,
		tags:  make([]uint64, sets*cfg.Ways),
		stamp: make([]uint64, sets*cfg.Ways),
	}
}

// Access touches one byte address and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr / uint64(c.cfg.LineBytes)
	set := int(line % uint64(c.sets))
	tag := line/uint64(c.sets) + 1 // +1 so tag 0 means "empty"
	base := set * c.cfg.Ways
	c.clock++

	lru, lruStamp := base, c.stamp[base]
	for i := base; i < base+c.cfg.Ways; i++ {
		if c.tags[i] == tag {
			c.stamp[i] = c.clock
			c.hits++
			return true
		}
		if c.stamp[i] < lruStamp {
			lru, lruStamp = i, c.stamp[i]
		}
	}
	c.tags[lru] = tag
	c.stamp[lru] = c.clock
	c.misses++
	return false
}

// AccessRange touches every line in [addr, addr+n) and returns the number
// of misses (sequential scans touch each line once).
func (c *Cache) AccessRange(addr uint64, n int) int {
	misses := 0
	lb := uint64(c.cfg.LineBytes)
	for a := addr &^ (lb - 1); a < addr+uint64(n); a += lb {
		if !c.Access(a) {
			misses++
		}
	}
	return misses
}

// Hits returns the hit count so far.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the miss count so far.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses / accesses (0 when nothing was accessed).
func (c *Cache) MissRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.misses) / float64(total)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamp[i] = 0
	}
	c.clock, c.hits, c.misses = 0, 0, 0
}
