// Primary side of WAL replication: a listener accepting standby links,
// one source goroutine per link streaming the log, and the fence
// watchdog that revokes this node's own right to serve when no standby
// ack arrives inside the lease budget.
//
// Catch-up and tailing are the same loop: replRead serves old slots from
// the segment files and recent ones from the feed ring, and the source
// blocks on the feed when it reaches the end of the log. Heartbeats ride
// a separate goroutine (sharing the connection writer under a mutex) so
// the lease keeps renewing while the stream loop waits for appends.
package server

import (
	"net"
	"sync"
	"time"

	"oij/internal/repl"
	"oij/internal/trace"
	"oij/internal/wire"
)

// replHandshakeTimeout bounds a connecting standby's hello and the
// handshake writes, so a wedged peer cannot pin a source goroutine.
const replHandshakeTimeout = 10 * time.Second

// replStreamBatch is how many frames one replRead round trip ships.
const replStreamBatch = 256

// startSource binds the replication listener and launches the acceptor
// (and, with a lease armed, the fence watchdog). Runs at Serve time on a
// boot primary and again on the ingest goroutine at promotion.
func (r *replState) startSource() error {
	ln, err := net.Listen("tcp", r.listenAddr)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.ln = ln
	r.mu.Unlock()
	r.wg.Add(1)
	go r.acceptSources(ln)
	if r.lease > 0 {
		r.wg.Add(1)
		go r.fenceWatchdog()
	}
	return nil
}

func (r *replState) acceptSources(ln net.Listener) {
	defer r.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		r.mu.Lock()
		r.conns[conn] = struct{}{}
		r.mu.Unlock()
		r.wg.Add(1)
		go r.serveSource(conn)
	}
}

// fenceWatchdog self-fences the primary when FenceAfter (3D/4) passes
// without any standby ack — strictly before the standby's promotion
// deadline D, so under a symmetric partition this node stops acking
// writes before the standby starts serving. Armed by the first standby
// attach: a primary that never had a standby has nobody to defer to.
func (r *replState) fenceWatchdog() {
	defer r.wg.Done()
	every := r.lease / 8
	if every < time.Millisecond {
		every = time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		if r.roleNow() != repl.RolePrimary || !r.armed.Load() {
			continue
		}
		if time.Since(time.Unix(0, r.lastAck.Load())) >= repl.FenceAfter(r.lease) {
			r.fence(r.epoch.Load())
		}
	}
}

// serveSource speaks one standby link: handshake, then stream the log
// from the agreed slot while a reader goroutine consumes acks and a
// heartbeat goroutine renews the standby's lease.
func (r *replState) serveSource(conn net.Conn) {
	defer r.wg.Done()
	defer func() {
		r.mu.Lock()
		delete(r.conns, conn)
		r.mu.Unlock()
		conn.Close()
	}()
	s := r.s
	rd, wr := repl.NewReader(conn), repl.NewWriter(conn)
	var wmu sync.Mutex
	send := func(m repl.Message) error {
		wmu.Lock()
		defer wmu.Unlock()
		if err := wr.Write(m); err != nil {
			return err
		}
		return wr.Flush()
	}

	conn.SetDeadline(time.Now().Add(replHandshakeTimeout))
	m, err := rd.Read()
	if err != nil || m.Kind != repl.TagHello {
		return
	}
	h := m.Hello
	if h.Epoch > r.epoch.Load() {
		// The connecting peer has applied a higher epoch than this node
		// ever stamped: a promotion happened that this node did not
		// observe, so it is the zombie here.
		r.fence(h.Epoch)
		send(repl.Message{Kind: repl.TagFence, Epoch: h.Epoch})
		return
	}
	if r.roleNow() != repl.RolePrimary {
		send(repl.Message{Kind: repl.TagFence, Epoch: r.epoch.Load()})
		return
	}
	feed := s.wal.feed
	next := h.Applied
	oldest, commit := feed.oldest(), feed.commit()
	if h.WALID != r.selfID.Load() || next < oldest || next > commit {
		// The standby's position means nothing against this log (different
		// identity, rotated past, or ahead of the end): reset it to the
		// oldest readable slot. Only an empty standby accepts.
		if send(repl.Message{Kind: repl.TagReset, Oldest: oldest}) != nil {
			return
		}
		next = oldest
	}
	if send(repl.Message{Kind: repl.TagWelcome, Welcome: repl.Welcome{
		Epoch:  r.epoch.Load(),
		WALID:  r.selfID.Load(),
		Commit: commit,
	}}) != nil {
		return
	}
	conn.SetDeadline(time.Time{})
	r.lastAck.Store(time.Now().UnixNano()) // an attach counts as liveness
	r.armed.Store(true)
	r.standbys.Add(1)
	defer r.standbys.Add(-1)
	s.flight.Record(trace.CompRepl, trace.EvReplConnect, next, commit)

	// Ack reader: acks renew the lease and advance the acked watermark; a
	// fence from the standby (it promoted) fences this node immediately.
	go func() {
		for {
			m, err := rd.Read()
			if err != nil {
				conn.Close()
				return
			}
			switch m.Kind {
			case repl.TagAck:
				for {
					cur := r.acked.Load()
					if m.Applied <= cur || r.acked.CompareAndSwap(cur, m.Applied) {
						break
					}
				}
				r.lastAck.Store(time.Now().UnixNano())
			case repl.TagFence:
				if m.Epoch > r.epoch.Load() {
					r.fence(m.Epoch)
				}
				conn.Close()
				return
			default:
				conn.Close()
				return
			}
		}
	}()

	// Heartbeats carry the epoch and the live end-of-log; when this node
	// loses primaryship the same ticker converts into an explicit fence so
	// the standby promotes without waiting out the full lease.
	hbEvery := 250 * time.Millisecond
	if r.lease > 0 {
		hbEvery = repl.HeartbeatEvery(r.lease)
	}
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		t := time.NewTicker(hbEvery)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-r.stop:
				return
			case <-t.C:
			}
			if r.roleNow() != repl.RolePrimary {
				send(repl.Message{Kind: repl.TagFence, Epoch: r.epoch.Load()})
				conn.Close()
				return
			}
			c := feed.commit()
			r.checkLag(c)
			if send(repl.Message{Kind: repl.TagHeartbeat, Epoch: r.epoch.Load(), Commit: c}) != nil {
				conn.Close()
				return
			}
		}
	}()

	caught := false
	var data repl.Message
	data.Kind = repl.TagData
	for {
		b, err := s.wal.replRead(next, replStreamBatch)
		if err != nil {
			// Rotated past the standby's position mid-stream, or the feed
			// was poisoned (the WAL dropped published frames): the stream
			// can no longer be byte-faithful, so drop the link and let the
			// standby re-handshake (which resets or reports, loudly).
			r.setErr("stream: " + err.Error())
			return
		}
		if len(b) == 0 {
			if !caught && next >= feed.commit() {
				caught = true
				s.flight.Record(trace.CompRepl, trace.EvReplCaughtUp, next, next)
			}
			if !feed.wait(next) {
				return
			}
			continue
		}
		n := len(b) / wire.WALFrameBytes
		wmu.Lock()
		var werr error
		for i := 0; i < n; i++ {
			data.Seq = next + uint64(i)
			copy(data.Frame[:], b[i*wire.WALFrameBytes:])
			if werr = wr.Write(data); werr != nil {
				break
			}
		}
		if werr == nil {
			werr = wr.Flush()
		}
		wmu.Unlock()
		if werr != nil {
			return
		}
		next += uint64(n)
	}
}
