// Standby side of WAL replication: a connector that dials the primary
// with backoff, the per-connection link loop (handshake, apply, ack), and
// the promote watchdog that turns a lease expiry into a failover.
//
// Applied frames are marshalled through the server's ingest funnel
// (ingestReq.replFrame), so the single-ingester rule holds on a standby
// exactly as on a primary — the link goroutine never touches the engine
// or the WAL directly. Promotion rides the same funnel after the link has
// fully stopped, which is the ordering proof: every frame received before
// the trigger is applied before the node serves its first request.
package server

import (
	"fmt"
	"net"
	"time"

	"oij/internal/repl"
	"oij/internal/trace"
	"oij/internal/wire"
)

// replDialTimeout bounds one connection attempt to the primary.
const replDialTimeout = 2 * time.Second

// replAckEvery is the data-frame cadence of progress acks (heartbeats
// always draw one, so an idle stream still renews the primary's view).
const replAckEvery = 256

// runLink dials the primary until stopped or promoted, running one link
// per established connection. After the loop — and only after, so no
// frame can trail it through the funnel — a triggered promotion is
// enqueued to the ingest goroutine.
func (r *replState) runLink() {
	defer r.wg.Done()
	backoff := 50 * time.Millisecond
	for !r.promoted.Load() {
		select {
		case <-r.stop:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", r.primaryAddr, replDialTimeout)
		if err != nil {
			r.setErr("dial primary: " + err.Error())
			if !r.sleep(backoff) {
				return
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			continue
		}
		backoff = 50 * time.Millisecond
		r.mu.Lock()
		r.linkConn = conn
		r.mu.Unlock()
		r.linkOnce(conn)
		r.mu.Lock()
		r.linkConn = nil
		r.mu.Unlock()
		conn.Close()
		if r.promoted.Load() {
			break
		}
		if !r.sleep(50 * time.Millisecond) {
			return
		}
	}
	if r.promoted.Load() {
		select {
		case r.s.ingest <- ingestReq{promote: true}:
		case <-r.stop:
		}
	}
}

// promoteWatchdog promotes when the lease expires: nothing heard from the
// primary — frame or heartbeat — for a full lease D. Gated on everSynced:
// a standby that never completed a handshake this process has no basis to
// believe it holds the newest history.
func (r *replState) promoteWatchdog() {
	defer r.wg.Done()
	every := r.lease / 8
	if every < time.Millisecond {
		every = time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		if r.roleNow() != repl.RoleStandby || !r.everSynced.Load() {
			continue
		}
		if time.Since(time.Unix(0, r.lastHeard.Load())) >= r.lease {
			r.triggerPromote()
		}
	}
}

// linkOnce speaks one connection to the primary: hello/welcome handshake
// (with reset handling for a fresh standby), then the apply loop. Any
// protocol surprise drops the connection; the connector retries.
func (r *replState) linkOnce(conn net.Conn) {
	s := r.s
	rd, wr := repl.NewReader(conn), repl.NewWriter(conn)
	applied := r.appliedSlot()
	hello := repl.Message{Kind: repl.TagHello, Hello: repl.Hello{
		Version: repl.ProtocolVersion,
		Epoch:   r.epoch.Load(),
		WALID:   r.upstreamID.Load(),
		Applied: applied,
	}}
	if wr.Write(hello) != nil || wr.Flush() != nil {
		return
	}
	conn.SetReadDeadline(time.Now().Add(replHandshakeTimeout))
	m, err := rd.Read()
	if err != nil {
		r.setErr("handshake: " + err.Error())
		return
	}
	if m.Kind == repl.TagReset {
		// The primary cannot serve our position. Re-applying from its
		// oldest slot would double-count everything we already hold, so
		// only an empty standby accepts; anything else is an operator
		// problem (wipe the standby WAL to rejoin cold).
		if local := s.wal.appended.Load(); local != 0 {
			r.setErr(fmt.Sprintf(
				"primary reset to slot %d but this standby holds %d local slots; wipe the standby WAL and replstate to rejoin",
				m.Oldest, local))
			return
		}
		r.replBase.Store(m.Oldest)
		r.upstreamID.Store(0) // adopt the primary's identity from the welcome
		applied = m.Oldest
		if m, err = rd.Read(); err != nil {
			r.setErr("handshake: " + err.Error())
			return
		}
	}
	if m.Kind == repl.TagFence {
		r.linkFenced(m.Epoch)
		return
	}
	if m.Kind != repl.TagWelcome {
		r.setErr(fmt.Sprintf("handshake: unexpected message tag 0x%02x", m.Kind))
		return
	}
	w := m.Welcome
	if w.Epoch < r.epoch.Load() {
		// Our durably applied epoch is ahead of this primary's: it is a
		// zombie from before a promotion. Fence it and refuse to follow —
		// applying its frames would fork the promoted history.
		wr.Write(repl.Message{Kind: repl.TagFence, Epoch: r.epoch.Load()})
		wr.Flush()
		r.setErr(fmt.Sprintf("refused primary at stale epoch %d (ours %d)", w.Epoch, r.epoch.Load()))
		return
	}
	if id := r.upstreamID.Load(); id == 0 {
		r.upstreamID.Store(w.WALID)
		if err := r.persistState(); err != nil {
			r.setErr("persist replstate: " + err.Error())
			return
		}
	} else if id != w.WALID {
		r.setErr("primary WAL identity changed (primary restarted?); wipe the standby WAL and replstate to rejoin")
		return
	}
	r.commit.Store(w.Commit)
	r.lastHeard.Store(time.Now().UnixNano())
	r.everSynced.Store(true)
	if applied >= w.Commit {
		r.noteCaughtUp(applied)
	} else {
		r.caughtUp.Store(false)
	}
	s.flight.Record(trace.CompRepl, trace.EvReplConnect, applied, w.Commit)

	sendAck := func() bool {
		if wr.Write(repl.Message{Kind: repl.TagAck, Applied: r.appliedSlot()}) != nil {
			return false
		}
		return wr.Flush() == nil
	}
	next := applied
	ackedAt := applied
	for {
		// The read deadline doubles as the liveness probe: with a lease
		// armed, a silent primary surfaces as a timeout here and the
		// promote watchdog takes it from there.
		if r.lease > 0 {
			conn.SetReadDeadline(time.Now().Add(r.lease))
		} else {
			conn.SetReadDeadline(time.Time{})
		}
		m, err := rd.Read()
		if err != nil {
			r.setErr("link: " + err.Error())
			return
		}
		switch m.Kind {
		case repl.TagData:
			if m.Seq != next {
				r.setErr(fmt.Sprintf("link: frame at slot %d, want %d; re-handshaking", m.Seq, next))
				return
			}
			frame := make([]byte, wire.WALFrameBytes)
			copy(frame, m.Frame[:])
			select {
			case s.ingest <- ingestReq{replFrame: frame}:
			case <-r.stop:
				return
			}
			next++
			r.lastHeard.Store(time.Now().UnixNano())
			if next >= r.commit.Load() {
				r.noteCaughtUp(next)
			}
			if next-ackedAt >= replAckEvery {
				ackedAt = next
				if !sendAck() {
					return
				}
			}
		case repl.TagHeartbeat:
			if m.Epoch < r.epoch.Load() {
				wr.Write(repl.Message{Kind: repl.TagFence, Epoch: r.epoch.Load()})
				wr.Flush()
				r.setErr(fmt.Sprintf("refused heartbeat at stale epoch %d (ours %d)", m.Epoch, r.epoch.Load()))
				return
			}
			r.commit.Store(m.Commit)
			r.lastHeard.Store(time.Now().UnixNano())
			if next >= m.Commit {
				r.noteCaughtUp(next)
			}
			if !sendAck() {
				return
			}
		case repl.TagFence:
			r.linkFenced(m.Epoch)
			return
		default:
			r.setErr(fmt.Sprintf("link: unexpected message tag 0x%02x", m.Kind))
			return
		}
	}
}

// linkFenced handles a fence from the primary: it has stopped serving and
// is telling us to take over now rather than wait out the lease. Without
// an armed lease (auto-failover off) it is only reported.
func (r *replState) linkFenced(epoch uint64) {
	if r.lease > 0 {
		r.triggerPromote()
		return
	}
	r.setErr(fmt.Sprintf("primary fenced itself at epoch %d; auto-failover is off (lease 0)", epoch))
}

// noteCaughtUp records the first catch-up transition of a sync.
func (r *replState) noteCaughtUp(applied uint64) {
	if !r.caughtUp.Swap(true) {
		r.s.flight.Record(trace.CompRepl, trace.EvReplCaughtUp, applied, r.commit.Load())
	}
}
