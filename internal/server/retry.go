package server

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"oij/internal/trace"
)

// Backoff computes jittered exponential delays: attempt n sleeps a uniform
// random duration in (0, min(Max, Base·2ⁿ)]. Full jitter decorrelates
// reconnect storms — after a server restart, clients that failed together do
// not all redial together.
type Backoff struct {
	Base time.Duration // first-attempt ceiling (default 50ms)
	Max  time.Duration // ceiling for any attempt (default 5s)

	mu  sync.Mutex
	rng *rand.Rand
}

func (b *Backoff) defaults() (time.Duration, time.Duration) {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	if base > max {
		base = max
	}
	return base, max
}

// Next returns the sleep before retry number attempt (0-based).
func (b *Backoff) Next(attempt int) time.Duration {
	base, max := b.defaults()
	ceil := max
	if attempt < 62 {
		if d := base << uint(attempt); d > 0 && d < max {
			ceil = d
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rng == nil {
		b.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return time.Duration(b.rng.Int63n(int64(ceil))) + 1
}

// ErrBreakerOpen is returned while the circuit breaker is refusing calls.
var ErrBreakerOpen = errors.New("circuit breaker open")

// Breaker is a consecutive-failure circuit breaker. Closed it passes every
// call; after Threshold consecutive failures it opens and fails fast for
// Cooldown; then one trial call is let through (half-open) — success closes
// the circuit, failure re-opens it for another Cooldown.
type Breaker struct {
	Threshold int           // consecutive failures to open (default 5)
	Cooldown  time.Duration // open duration before a trial (default 1s)
	// OnTransition, when set, is called with the old and new state after
	// every state change ("closed"/"open"/"half-open"). Invoked outside
	// the breaker's lock, so the callback may call State or record to a
	// flight recorder without deadlocking.
	OnTransition func(from, to string)

	mu       sync.Mutex
	failures int
	openedAt time.Time
	halfOpen bool
	now      func() time.Time // test hook; nil means time.Now
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return 5
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return time.Second
	}
	return b.Cooldown
}

// stateLocked computes the state name; callers hold b.mu.
func (b *Breaker) stateLocked() string {
	switch {
	case b.failures < b.threshold():
		return "closed"
	case b.halfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// notify fires OnTransition outside the lock when the state changed.
func (b *Breaker) notify(from, to string) {
	if from != to && b.OnTransition != nil {
		b.OnTransition(from, to)
	}
}

// Allow reports whether a call may proceed, transitioning open → half-open
// after the cooldown. In half-open exactly one caller is admitted until its
// Success or Failure settles the state.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	from := b.stateLocked()
	allowed := false
	if b.failures < b.threshold() {
		allowed = true
	} else if !b.halfOpen && b.clock().Sub(b.openedAt) >= b.cooldown() {
		b.halfOpen = true
		allowed = true
	}
	to := b.stateLocked()
	b.mu.Unlock()
	b.notify(from, to)
	return allowed
}

// Success records a successful call and closes the circuit.
func (b *Breaker) Success() {
	b.mu.Lock()
	from := b.stateLocked()
	b.failures = 0
	b.halfOpen = false
	to := b.stateLocked()
	b.mu.Unlock()
	b.notify(from, to)
}

// Failure records a failed call; at the threshold the circuit opens (and a
// failed half-open trial re-opens it).
func (b *Breaker) Failure() {
	b.mu.Lock()
	from := b.stateLocked()
	b.failures++
	b.halfOpen = false
	if b.failures >= b.threshold() {
		b.openedAt = b.clock()
	}
	to := b.stateLocked()
	b.mu.Unlock()
	b.notify(from, to)
}

// State reports "closed", "open", or "half-open" (for statusz-style
// introspection and tests).
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked()
}

// RetryClient wraps Client with automatic reconnection, jittered
// exponential backoff, and a circuit breaker. It is intended for one
// logical session at a time (Do is serialized by the caller, like Client).
type RetryClient struct {
	Addr    string
	Opts    DialOptions
	Backoff Backoff
	Breaker Breaker
	// MaxAttempts bounds tries per Do call (default 4).
	MaxAttempts int

	c     *Client
	sleep func(time.Duration) // test hook; nil means time.Sleep
}

// NewRetryClient builds a RetryClient; the first connection is dialed
// lazily on Do.
func NewRetryClient(addr string, opts DialOptions) *RetryClient {
	return &RetryClient{Addr: addr, Opts: opts}
}

func (rc *RetryClient) attempts() int {
	if rc.MaxAttempts <= 0 {
		return 4
	}
	return rc.MaxAttempts
}

func (rc *RetryClient) pause(d time.Duration) {
	if rc.sleep != nil {
		rc.sleep(d)
		return
	}
	time.Sleep(d)
}

// retryable reports whether err is worth a reconnect-and-retry: lost
// connections and admission NACKs (the server asked us to back off) are;
// application errors are not.
func retryable(err error) bool {
	var nerr *NackError
	return errors.Is(err, ErrDisconnected) || errors.As(err, &nerr)
}

// Do runs fn with a connected client, reconnecting and retrying on
// disconnects and overload NACKs with backoff, and failing fast while the
// breaker is open. fn must not retain the client beyond the call.
func (rc *RetryClient) Do(fn func(*Client) error) error {
	var lastErr error
	for attempt := 0; attempt < rc.attempts(); attempt++ {
		if attempt > 0 {
			rc.pause(rc.Backoff.Next(attempt - 1))
		}
		if !rc.Breaker.Allow() {
			lastErr = ErrBreakerOpen
			continue
		}
		if rc.c == nil {
			c, err := DialWith(rc.Addr, rc.Opts)
			if err != nil {
				rc.Breaker.Failure()
				lastErr = err
				continue
			}
			rc.c = c
		}
		err := fn(rc.c)
		if err == nil {
			rc.Breaker.Success()
			return nil
		}
		lastErr = err
		if errors.Is(err, ErrDisconnected) {
			rc.c.Close()
			rc.c = nil
		}
		if !retryable(err) {
			return err
		}
		rc.Breaker.Failure()
	}
	return fmt.Errorf("giving up after %d attempts: %w", rc.attempts(), lastErr)
}

// RecordBreaker routes the client's circuit-breaker state changes into a
// flight-recorder timeline (a=consecutive failures at the transition), so
// client-side fail-fast episodes line up with the server's eviction and
// shed events when both run in one process (tests, embedded deployments).
func (rc *RetryClient) RecordBreaker(fr *trace.Flight) {
	rc.Breaker.OnTransition = func(_, to string) {
		k := trace.EvBreakerClosed
		switch to {
		case "open":
			k = trace.EvBreakerOpen
		case "half-open":
			k = trace.EvBreakerHalfOpen
		}
		rc.Breaker.mu.Lock()
		failures := rc.Breaker.failures
		rc.Breaker.mu.Unlock()
		fr.Record(trace.CompBreaker, k, uint64(failures), 0)
	}
}

// Close releases the current connection, if any.
func (rc *RetryClient) Close() error {
	if rc.c == nil {
		return nil
	}
	err := rc.c.Close()
	rc.c = nil
	return err
}
