package server

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"oij/internal/trace"
	"oij/internal/wire"
)

// Backoff computes jittered exponential delays: attempt n sleeps a uniform
// random duration in (0, min(Max, Base·2ⁿ)]. Full jitter decorrelates
// reconnect storms — after a server restart, clients that failed together do
// not all redial together.
type Backoff struct {
	Base time.Duration // first-attempt ceiling (default 50ms)
	Max  time.Duration // ceiling for any attempt (default 5s)

	mu  sync.Mutex
	rng *rand.Rand
}

func (b *Backoff) defaults() (time.Duration, time.Duration) {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	if base > max {
		base = max
	}
	return base, max
}

// Next returns the sleep before retry number attempt (0-based).
func (b *Backoff) Next(attempt int) time.Duration {
	base, max := b.defaults()
	ceil := max
	if attempt < 62 {
		if d := base << uint(attempt); d > 0 && d < max {
			ceil = d
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rng == nil {
		b.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return time.Duration(b.rng.Int63n(int64(ceil))) + 1
}

// ErrBreakerOpen is returned while the circuit breaker is refusing calls.
var ErrBreakerOpen = errors.New("circuit breaker open")

// Breaker is a consecutive-failure circuit breaker. Closed it passes every
// call; after Threshold consecutive failures it opens and fails fast for
// Cooldown; then one trial call is let through (half-open) — success closes
// the circuit, failure re-opens it for another Cooldown.
type Breaker struct {
	Threshold int           // consecutive failures to open (default 5)
	Cooldown  time.Duration // open duration before a trial (default 1s)
	// OnTransition, when set, is called with the old and new state after
	// every state change ("closed"/"open"/"half-open"). Invoked outside
	// the breaker's lock, so the callback may call State or record to a
	// flight recorder without deadlocking.
	OnTransition func(from, to string)

	mu       sync.Mutex
	failures int
	openedAt time.Time
	halfOpen bool
	now      func() time.Time // test hook; nil means time.Now
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return 5
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return time.Second
	}
	return b.Cooldown
}

// stateLocked computes the state name; callers hold b.mu.
func (b *Breaker) stateLocked() string {
	switch {
	case b.failures < b.threshold():
		return "closed"
	case b.halfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// notify fires OnTransition outside the lock when the state changed.
func (b *Breaker) notify(from, to string) {
	if from != to && b.OnTransition != nil {
		b.OnTransition(from, to)
	}
}

// Allow reports whether a call may proceed, transitioning open → half-open
// after the cooldown. In half-open exactly one caller is admitted until its
// Success or Failure settles the state.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	from := b.stateLocked()
	allowed := false
	if b.failures < b.threshold() {
		allowed = true
	} else if !b.halfOpen && b.clock().Sub(b.openedAt) >= b.cooldown() {
		b.halfOpen = true
		allowed = true
	}
	to := b.stateLocked()
	b.mu.Unlock()
	b.notify(from, to)
	return allowed
}

// Success records a successful call and closes the circuit.
func (b *Breaker) Success() {
	b.mu.Lock()
	from := b.stateLocked()
	b.failures = 0
	b.halfOpen = false
	to := b.stateLocked()
	b.mu.Unlock()
	b.notify(from, to)
}

// Failure records a failed call; at the threshold the circuit opens (and a
// failed half-open trial re-opens it).
func (b *Breaker) Failure() {
	b.mu.Lock()
	from := b.stateLocked()
	b.failures++
	b.halfOpen = false
	if b.failures >= b.threshold() {
		b.openedAt = b.clock()
	}
	to := b.stateLocked()
	b.mu.Unlock()
	b.notify(from, to)
}

// State reports "closed", "open", or "half-open" (for statusz-style
// introspection and tests).
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked()
}

// ErrAllAddrsDown reports that a Do call exhausted its attempts without any
// configured address accepting the connection: every candidate failed at
// the transport level (dial error, open breaker, or disconnect before a
// response). It is wrapped together with the last underlying error, so
// errors.Is(err, ErrAllAddrsDown) distinguishes "the whole replica set is
// unreachable" from "a server answered and refused".
var ErrAllAddrsDown = errors.New("all addresses down")

// RetryClient wraps Client with automatic reconnection, jittered
// exponential backoff, and per-address circuit breakers. With multiple
// addresses (a primary and its standbys, in any order) it fails over:
// disconnects and role refusals (not-primary, fenced) rotate to the next
// candidate immediately, so a client riding through a failover lands on
// the promoted standby within one Do call. It is intended for one logical
// session at a time (Do is serialized by the caller, like Client).
type RetryClient struct {
	// Addr is the single-server form; Addrs, when non-empty, takes
	// precedence and lists every candidate. The client is sticky: it stays
	// on the address that last worked.
	Addr    string
	Addrs   []string
	Opts    DialOptions
	Backoff Backoff
	// Breaker is the breaker for the first address and the template
	// (Threshold, Cooldown, OnTransition) for the per-address breakers of
	// the rest. Configure it before the first Do.
	Breaker Breaker
	// MaxAttempts bounds tries per Do call (default 4). With multiple
	// addresses one attempt sweeps the whole list before backing off.
	MaxAttempts int

	c     *Client
	cur   int                 // index into addrs() the client is currently pinned to
	extra []*Breaker          // breakers for addrs()[1:]; addrs()[0] uses Breaker
	sleep func(time.Duration) // test hook; nil means time.Sleep
}

// NewRetryClient builds a RetryClient; the first connection is dialed
// lazily on Do.
func NewRetryClient(addr string, opts DialOptions) *RetryClient {
	return &RetryClient{Addr: addr, Opts: opts}
}

// NewFailoverClient builds a RetryClient over a candidate list (a primary
// and its standbys, in any order).
func NewFailoverClient(addrs []string, opts DialOptions) *RetryClient {
	return &RetryClient{Addrs: addrs, Opts: opts}
}

// addrList resolves the candidate addresses.
func (rc *RetryClient) addrList() []string {
	if len(rc.Addrs) > 0 {
		return rc.Addrs
	}
	return []string{rc.Addr}
}

// brk returns the breaker guarding address i, creating per-address
// breakers beyond the first from the Breaker template on demand.
func (rc *RetryClient) brk(i int) *Breaker {
	if i == 0 {
		return &rc.Breaker
	}
	for len(rc.extra) < i {
		rc.extra = append(rc.extra, &Breaker{
			Threshold:    rc.Breaker.Threshold,
			Cooldown:     rc.Breaker.Cooldown,
			OnTransition: rc.Breaker.OnTransition,
		})
	}
	return rc.extra[i-1]
}

// BreakerStates reports the breaker state per candidate address, in
// addrList order (for statusz-style introspection and tests).
func (rc *RetryClient) BreakerStates() []string {
	out := make([]string, len(rc.addrList()))
	for i := range out {
		out[i] = rc.brk(i).State()
	}
	return out
}

// rotate abandons the current address and moves to the next candidate,
// dropping any live connection (it belongs to the old address).
func (rc *RetryClient) rotate() {
	if rc.c != nil {
		rc.c.Close()
		rc.c = nil
	}
	rc.cur = (rc.cur + 1) % len(rc.addrList())
}

func (rc *RetryClient) attempts() int {
	if rc.MaxAttempts <= 0 {
		return 4
	}
	return rc.MaxAttempts
}

func (rc *RetryClient) pause(d time.Duration) {
	if rc.sleep != nil {
		rc.sleep(d)
		return
	}
	time.Sleep(d)
}

// retryable reports whether err is worth a reconnect-and-retry: lost
// connections and admission NACKs (the server asked us to back off) are;
// application errors are not.
func retryable(err error) bool {
	var nerr *NackError
	return errors.Is(err, ErrDisconnected) || errors.As(err, &nerr)
}

// roleRefusal reports whether err is a NACK saying this node cannot serve
// writes at all (a standby, or a fenced ex-primary) — the cure is a
// different address, not a backoff on this one.
func roleRefusal(err error) bool {
	var nerr *NackError
	return errors.As(err, &nerr) &&
		(nerr.Code == wire.NackNotPrimary || nerr.Code == wire.NackFenced)
}

// Do runs fn with a connected client, reconnecting and retrying on
// disconnects and admission NACKs with backoff, and failing fast while a
// breaker is open. With multiple addresses, transport failures and role
// refusals rotate to the next candidate within the same attempt; only
// overload-style NACKs burn a backoff on the current address. fn must not
// retain the client beyond the call.
func (rc *RetryClient) Do(fn func(*Client) error) error {
	addrs := rc.addrList()
	var lastErr error
	reached := false // did any server answer (even with a refusal)?
	for attempt := 0; attempt < rc.attempts(); attempt++ {
		if attempt > 0 {
			rc.pause(rc.Backoff.Next(attempt - 1))
		}
		for swept := 0; swept < len(addrs); swept++ {
			b := rc.brk(rc.cur)
			if !b.Allow() {
				lastErr = ErrBreakerOpen
				rc.rotate()
				continue
			}
			if rc.c == nil {
				c, err := DialWith(addrs[rc.cur], rc.Opts)
				if err != nil {
					b.Failure()
					lastErr = err
					rc.rotate()
					continue
				}
				rc.c = c
			}
			err := fn(rc.c)
			if err == nil {
				b.Success()
				return nil
			}
			lastErr = err
			if errors.Is(err, ErrDisconnected) {
				b.Failure()
				rc.rotate()
				continue
			}
			reached = true
			if !retryable(err) {
				return err
			}
			b.Failure()
			if roleRefusal(err) {
				// Mid-promotion the standby still NACKs not-primary; the
				// rotation plus the next attempt's backoff gives it the
				// lease window to take over.
				rc.rotate()
				continue
			}
			break // overload: back off, then retry this address
		}
	}
	if !reached {
		return fmt.Errorf("giving up after %d attempts over %d address(es): %w",
			rc.attempts(), len(addrs), errors.Join(ErrAllAddrsDown, lastErr))
	}
	return fmt.Errorf("giving up after %d attempts: %w", rc.attempts(), lastErr)
}

// RecordBreaker routes the client's circuit-breaker state changes into a
// flight-recorder timeline (a=consecutive failures at the transition), so
// client-side fail-fast episodes line up with the server's eviction and
// shed events when both run in one process (tests, embedded deployments).
func (rc *RetryClient) RecordBreaker(fr *trace.Flight) {
	rc.Breaker.OnTransition = func(_, to string) {
		k := trace.EvBreakerClosed
		switch to {
		case "open":
			k = trace.EvBreakerOpen
		case "half-open":
			k = trace.EvBreakerHalfOpen
		}
		rc.Breaker.mu.Lock()
		failures := rc.Breaker.failures
		rc.Breaker.mu.Unlock()
		fr.Record(trace.CompBreaker, k, uint64(failures), 0)
	}
	// Per-address breakers created later copy the template; retrofit any
	// that already exist.
	for _, b := range rc.extra {
		b.OnTransition = rc.Breaker.OnTransition
	}
}

// Close releases the current connection, if any.
func (rc *RetryClient) Close() error {
	if rc.c == nil {
		return nil
	}
	err := rc.c.Close()
	rc.c = nil
	return err
}
