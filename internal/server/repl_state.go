// Replication runtime state: the role/epoch machine shared by the
// primary-side source (repl_source.go) and the standby-side link
// (repl_standby.go), plus the durable standby position file and the
// /statusz replication block.
//
// Positions are *slots* in the primary's log (see wal_repl.go): the
// standby's replay offset is replBase (the primary slot its local slot 0
// corresponds to) plus its own durable slot count, so an ack is exactly
// "this prefix of your log survives a crash on my disk". The fencing
// epoch travels inside the WAL itself (epoch frames); this file only
// caches the highest epoch either side has durably observed.
package server

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"oij/internal/repl"
	"oij/internal/trace"
	"oij/internal/tuple"
	"oij/internal/wire"
)

// replState is the replication half of a Server. It exists only when the
// server was configured with ReplListenAddr or StandbyOf; a nil *replState
// means replication is off and costs the hot path one pointer check.
type replState struct {
	s *Server

	lease       time.Duration // failure-detection budget D (0: no auto-failover)
	maxLagBytes int64         // lag alarm threshold (0: disabled)
	listenAddr  string
	primaryAddr string

	role  atomic.Int32 // repl.Role
	epoch atomic.Uint64

	// selfID identifies this process's log to downstream standbys (slot
	// numbering restarts with the process, so the id does too); upstreamID
	// is the primary log this standby follows, persisted in the replstate
	// file so a restarted standby can prove its offsets still apply.
	selfID     atomic.Uint64
	upstreamID atomic.Uint64

	// Standby position, in the primary's slot space.
	replBase   atomic.Uint64 // primary slot of this standby's local slot 0
	commit     atomic.Uint64 // primary's announced end of log
	caughtUp   atomic.Bool
	everSynced atomic.Bool  // completed a handshake at least once this process
	lastHeard  atomic.Int64 // UnixNano of last primary traffic
	promoted   atomic.Bool  // promotion triggered (the link loop enqueues it)

	// Primary-side liveness and progress.
	acked    atomic.Uint64 // highest slot any standby has durably acked
	lastAck  atomic.Int64  // UnixNano of the last ack (or attach)
	armed    atomic.Bool   // a standby attached at least once: fencing live
	standbys atomic.Int64
	lagging  atomic.Bool

	lastErr atomic.Value // string: last replication error, for operators

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	linkConn net.Conn

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newReplState(s *Server, cfg Config) *replState {
	r := &replState{
		s:           s,
		lease:       cfg.ReplLease,
		maxLagBytes: cfg.MaxReplLag,
		listenAddr:  cfg.ReplListenAddr,
		primaryAddr: cfg.StandbyOf,
		conns:       map[net.Conn]struct{}{},
		stop:        make(chan struct{}),
	}
	if r.lease < 0 {
		r.lease = 0 // negative disables automatic failover and fencing
	}
	if cfg.StandbyOf != "" {
		r.role.Store(int32(repl.RoleStandby))
	} else {
		r.role.Store(int32(repl.RolePrimary))
	}
	r.lastErr.Store("")
	return r
}

// roleNow returns the live role.
func (r *replState) roleNow() repl.Role { return repl.Role(r.role.Load()) }

// setErr records the most recent replication error for /statusz.
func (r *replState) setErr(msg string) { r.lastErr.Store(msg) }

// appliedSlot is the standby's durable position in the primary's slot
// space: the primary slot its local log started at, plus every local slot
// known flushed (and fsynced, per the WAL sync mode) to its own disk.
func (r *replState) appliedSlot() uint64 {
	w := r.s.wal
	if w == nil {
		return 0
	}
	return r.replBase.Load() + w.durable.Load()
}

// start launches the configured replication goroutines. Called from
// Serve, after the WAL and engine exist.
func (r *replState) start() error {
	if r.primaryAddr != "" {
		r.wg.Add(1)
		go r.runLink()
		if r.lease > 0 {
			r.wg.Add(1)
			go r.promoteWatchdog()
		}
	}
	if r.listenAddr != "" && r.roleNow() == repl.RolePrimary {
		if err := r.startSource(); err != nil {
			return err
		}
	}
	return nil
}

// stopAll tears replication down: every goroutine is unblocked (listener,
// connections, and the WAL feed are closed) and waited for. It must run
// after the session readers are gone and before the ingest funnel closes,
// because the standby link and promotion both enqueue into the funnel.
func (r *replState) stopAll() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.mu.Lock()
	if r.ln != nil {
		r.ln.Close()
	}
	for c := range r.conns {
		c.Close()
	}
	if r.linkConn != nil {
		r.linkConn.Close()
	}
	r.mu.Unlock()
	if w := r.s.wal; w != nil && w.feed != nil {
		w.feed.close()
	}
	r.wg.Wait()
}

// sleep waits d or until stop; false means stop.
func (r *replState) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-r.stop:
		return false
	case <-t.C:
		return true
	}
}

// fence transitions primary → fenced: this node saw proof (a higher epoch,
// or FenceAfter without any standby ack) that a standby has promoted or is
// presumed promoting, so it stops acking writes — the promoted side's log
// must stay the single history. Terminal for the process.
func (r *replState) fence(sawEpoch uint64) {
	if !r.role.CompareAndSwap(int32(repl.RolePrimary), int32(repl.RoleFenced)) {
		return
	}
	own := r.epoch.Load()
	r.setErr(fmt.Sprintf("fenced: lost the lease at epoch %d (observed epoch %d); restart as a standby of the promoted node", own, sawEpoch))
	r.s.flight.Record(trace.CompRepl, trace.EvReplFenced, sawEpoch, own)
	r.s.incident("repl-fenced")
}

// triggerPromote arms promotion: the standby link is severed and the link
// loop, once fully stopped, enqueues the promotion through the ingest
// funnel — ordering through the funnel guarantees every replicated frame
// received before the trigger is applied before the node starts serving.
func (r *replState) triggerPromote() {
	if r.lease <= 0 || !r.everSynced.Load() || r.roleNow() != repl.RoleStandby {
		return
	}
	if r.promoted.CompareAndSwap(false, true) {
		r.mu.Lock()
		if r.linkConn != nil {
			r.linkConn.Close()
		}
		r.mu.Unlock()
	}
}

// applyPromote runs on the ingest goroutine (funnel-ordered after every
// applied frame): stamp the new fencing epoch durably, re-enable rotation,
// flip to primary, and start serving downstream standbys if configured.
func (s *Server) applyPromote() {
	r := s.repl
	if r == nil || !r.role.CompareAndSwap(int32(repl.RoleStandby), int32(repl.RolePrimary)) {
		return
	}
	newEpoch := r.epoch.Load() + 1
	if s.wal != nil {
		s.wal.noRotate = false
		if err := s.wal.stampEpoch(newEpoch); err != nil {
			s.walErrs.Add(1)
			s.flight.Record(trace.CompWAL, trace.EvWALError, uint64(s.walErrs.Load()), 0)
		}
	}
	r.epoch.Store(newEpoch)
	s.flight.Record(trace.CompRepl, trace.EvReplPromote, newEpoch, r.appliedSlot())
	s.incident("repl-promote")
	if r.listenAddr != "" {
		if err := r.startSource(); err != nil {
			r.setErr("promote: replication listener: " + err.Error())
		}
	}
}

// replRefusal reports whether this node currently refuses client writes,
// and with which NACK code: standbys answer not-primary (clients fail over
// to the next address), fenced ex-primaries answer fenced.
func (s *Server) replRefusal() (byte, bool) {
	r := s.repl
	if r == nil {
		return 0, false
	}
	switch repl.Role(r.role.Load()) {
	case repl.RoleStandby:
		return wire.NackNotPrimary, true
	case repl.RoleFenced:
		return wire.NackFenced, true
	}
	return 0, false
}

// applyReplFrame applies one replicated WAL frame on the ingest goroutine:
// append it verbatim (the standby's log must mirror the primary's, corrupt
// frames included), then replay it into the engine exactly as recovery
// would — epoch frames advance the cached epoch, checksum-failed frames
// are logged but not replayed.
func (s *Server) applyReplFrame(frame []byte) {
	if err := s.wal.appendRaw(frame); err != nil {
		s.walErrs.Add(1)
		s.flight.Record(trace.CompWAL, trace.EvWALError, uint64(s.walErrs.Load()), 0)
	}
	if e, err := wire.DecodeWALEpochFrame(frame); err == nil {
		if r := s.repl; r != nil && e > r.epoch.Load() {
			r.epoch.Store(e)
		}
		return
	}
	t, err := wire.DecodeWALFrame(frame)
	if err != nil || t.Base {
		return
	}
	s.probesIngested.Add(1)
	s.eng.Ingest(tuple.Tuple{TS: t.TS, Key: t.Key, Val: t.Val, Side: tuple.Probe})
}

// checkLag latches the lag alarm: once the un-acked suffix of the log
// exceeds MaxReplLag bytes the transition is recorded (with an incident
// dump); recovery below the threshold re-arms it.
func (r *replState) checkLag(commit uint64) {
	if r.maxLagBytes <= 0 || !r.armed.Load() {
		return
	}
	acked := r.acked.Load()
	var lag int64
	if commit > acked {
		lag = int64(commit-acked) * wire.WALFrameBytes
	}
	if lag > r.maxLagBytes {
		if !r.lagging.Swap(true) {
			r.s.flight.Record(trace.CompRepl, trace.EvReplLagExceeded, uint64(lag), uint64(r.maxLagBytes))
			r.s.incident("repl-lag")
		}
	} else {
		r.lagging.Store(false)
	}
}

// lag returns the live (bytes, ms) lag pair for the current role.
func (r *replState) lag() (int64, float64) {
	var bytes int64
	var since time.Duration
	switch r.roleNow() {
	case repl.RoleStandby, repl.RoleFenced:
		if r.everSynced.Load() {
			if c, a := r.commit.Load(), r.appliedSlot(); c > a {
				bytes = int64(c-a) * wire.WALFrameBytes
			}
			since = time.Since(time.Unix(0, r.lastHeard.Load()))
		}
	default:
		if r.armed.Load() {
			w := r.s.wal
			if w != nil && w.feed != nil {
				if c, a := w.feed.commit(), r.acked.Load(); c > a {
					bytes = int64(c-a) * wire.WALFrameBytes
				}
			}
			since = time.Since(time.Unix(0, r.lastAck.Load()))
		}
	}
	return bytes, float64(since) / float64(time.Millisecond)
}

// ReplStatus is the replication block on /statusz.
type ReplStatus struct {
	Role         string  `json:"role"`
	Epoch        uint64  `json:"epoch"`
	LogEndSlot   uint64  `json:"log_end_slot"`
	DurableSlot  uint64  `json:"durable_slot"`
	ReplayOffset uint64  `json:"replay_offset"`
	LagBytes     int64   `json:"lag_bytes"`
	LagMs        float64 `json:"lag_ms"`
	CaughtUp     bool    `json:"caught_up"`
	Standbys     int64   `json:"standbys"`
	ListenAddr   string  `json:"listen_addr,omitempty"`
	PrimaryAddr  string  `json:"primary_addr,omitempty"`
	Refused      int64   `json:"refused"`
	LastError    string  `json:"last_error,omitempty"`
}

// replStatus snapshots the replication block (nil when replication is
// off, so the JSON field is omitted entirely on plain nodes).
func (s *Server) replStatus() *ReplStatus {
	r := s.repl
	if r == nil {
		return nil
	}
	lagB, lagMs := r.lag()
	st := &ReplStatus{
		Role:        r.roleNow().String(),
		Epoch:       r.epoch.Load(),
		LagBytes:    lagB,
		LagMs:       lagMs,
		CaughtUp:    r.caughtUp.Load(),
		Standbys:    r.standbys.Load(),
		PrimaryAddr: r.primaryAddr,
	}
	if s.wal != nil {
		appended, durable := s.wal.slots()
		st.LogEndSlot, st.DurableSlot = appended, durable
	}
	switch r.roleNow() {
	case repl.RoleStandby, repl.RoleFenced:
		st.ReplayOffset = r.appliedSlot()
	default:
		st.ReplayOffset = r.acked.Load()
	}
	if o := s.o; o != nil && o.replRefused != nil {
		st.Refused = o.replRefused.Load()
	}
	r.mu.Lock()
	if r.ln != nil {
		st.ListenAddr = r.ln.Addr().String()
	} else {
		st.ListenAddr = r.listenAddr
	}
	r.mu.Unlock()
	if msg, _ := r.lastErr.Load().(string); msg != "" {
		st.LastError = msg
	}
	return st
}

// ReplAddr returns the bound replication listener address (nil until the
// source is listening — on a standby, that is after promotion).
func (s *Server) ReplAddr() net.Addr {
	if s.repl == nil {
		return nil
	}
	s.repl.mu.Lock()
	defer s.repl.mu.Unlock()
	if s.repl.ln == nil {
		return nil
	}
	return s.repl.ln.Addr()
}

// ReplRole returns the live replication role (RoleNone when replication
// is not configured).
func (s *Server) ReplRole() repl.Role {
	if s.repl == nil {
		return repl.RoleNone
	}
	return s.repl.roleNow()
}

// --- durable standby position (<wal>.replstate) ---

// replStateMagic opens the standby position file: the upstream log
// identity and the primary slot this standby's local slot 0 maps to,
// CRC-protected and replaced atomically (write temp, sync, rename).
const replStateMagic = "OIJRST1\n"

const replStateBytes = len(replStateMagic) + 8 + 8 + 4

func (r *replState) replStatePath() string { return r.s.cfg.WALPath + ".replstate" }

// persistState durably records (upstreamID, replBase) so a restarted
// standby can prove to the primary that its local slots still line up.
func (r *replState) persistState() error {
	b := make([]byte, replStateBytes)
	copy(b, replStateMagic)
	binary.LittleEndian.PutUint64(b[8:], r.upstreamID.Load())
	binary.LittleEndian.PutUint64(b[16:], r.replBase.Load())
	binary.LittleEndian.PutUint32(b[24:], crc32.Checksum(b[:24], castagnoliWAL))
	fsys := r.s.wal.fs
	tmp := r.replStatePath() + ".tmp"
	fsys.Remove(tmp)
	f, _, err := fsys.OpenAppend(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, r.replStatePath())
}

// loadState restores the persisted standby position. A missing file is a
// fresh standby; a corrupt one is an error (the operator must wipe the
// standby rather than let it rejoin at a made-up offset). When the WAL
// itself is empty the position is stale by definition (the log it
// described is gone), so it is ignored and the standby rejoins cold.
func (r *replState) loadState() error {
	rc, err := r.s.wal.fs.Open(r.replStatePath())
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return err
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil {
		return err
	}
	if len(b) != replStateBytes || string(b[:len(replStateMagic)]) != replStateMagic {
		return errors.New("replstate file corrupt; remove it (and the standby WAL) to rejoin cold")
	}
	if binary.LittleEndian.Uint32(b[24:]) != crc32.Checksum(b[:24], castagnoliWAL) {
		return errors.New("replstate checksum mismatch; remove it (and the standby WAL) to rejoin cold")
	}
	if r.s.wal.slotsBase == 0 {
		return nil // empty local log: the persisted offsets describe nothing
	}
	r.upstreamID.Store(binary.LittleEndian.Uint64(b[8:]))
	r.replBase.Store(binary.LittleEndian.Uint64(b[16:]))
	return nil
}

// castagnoliWAL mirrors the WAL's CRC32C table for the replstate file.
var castagnoliWAL = crc32.MakeTable(crc32.Castagnoli)

// randomWALID draws a non-zero 64-bit log identity (0 means "fresh" on
// the wire, so it is never a valid identity).
func randomWALID() (uint64, error) {
	for {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return 0, err
		}
		if id := binary.LittleEndian.Uint64(b[:]); id != 0 {
			return id, nil
		}
	}
}
