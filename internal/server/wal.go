package server

import (
	"errors"
	"fmt"
	"io"
	"os"

	"oij/internal/tuple"
	"oij/internal/wire"
)

// The write-ahead log makes the serving layer's probe state survive
// restarts: every probe frame is appended (in the same wire format the
// network speaks) before it is acknowledged by ingestion order, and on
// startup Recover replays the log into the fresh engine. Base frames are
// not logged — they are requests, not state.
//
// The log is two segments: `path` (current) and `path.1` (previous). When
// the current segment exceeds SegmentBytes AND everything in the previous
// segment has expired from the join window (older than the retention
// horizon behind the newest logged timestamp), the segments rotate and the
// old previous is deleted — so at most two segments exist and together
// they always cover the retention horizon.

// walWriter appends probe frames to the current segment. Single-writer
// (the ingest goroutine).
type walWriter struct {
	path     string
	maxBytes int64
	// retention is how far behind the newest timestamp data must still
	// be replayable (window + lateness + slack).
	retention tuple.Time

	f     *os.File
	w     *wire.Writer
	size  int64
	maxTS tuple.Time
	// prevNewest is the newest timestamp in path.1 (0 if none).
	prevNewest tuple.Time
}

// frameBytes is the on-disk size of one probe frame.
const frameBytes = 25

func newWALWriter(path string, maxBytes int64, retention tuple.Time) (*walWriter, error) {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	w := &walWriter{path: path, maxBytes: maxBytes, retention: retention}
	if err := w.open(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *walWriter) open() error {
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	w.f = f
	w.w = wire.NewWriter(f)
	w.size = st.Size()
	return nil
}

// append logs one probe tuple and rotates if due.
func (w *walWriter) append(t wire.Tuple) error {
	t.Base = false
	if err := w.w.WriteTuple(t); err != nil {
		return err
	}
	w.size += frameBytes
	if t.TS > w.maxTS {
		w.maxTS = t.TS
	}
	if w.size >= w.maxBytes {
		return w.maybeRotate()
	}
	return nil
}

// maybeRotate rotates current → previous when the previous segment's
// contents are entirely expired (or absent), keeping the two segments
// sufficient to rebuild the retention horizon.
func (w *walWriter) maybeRotate() error {
	if w.prevNewest != 0 && w.prevNewest+w.retention >= w.maxTS {
		return nil // previous still holds live data; keep growing
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(w.path, w.path+".1"); err != nil {
		return err
	}
	w.prevNewest = w.maxTS
	return w.open()
}

// flush pushes buffered frames to the OS.
func (w *walWriter) flush() error {
	if w.w == nil {
		return nil
	}
	return w.w.Flush()
}

// close flushes and closes the segment.
func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Close()
}

// replayWAL streams the recoverable probes — previous segment first, then
// current — into fn. A truncated trailing frame (torn write at crash) ends
// replay of that segment cleanly.
func replayWAL(path string, fn func(wire.Tuple)) (int, tuple.Time, error) {
	total := 0
	var newest tuple.Time
	for _, p := range []string{path + ".1", path} {
		n, ts, err := replaySegment(p, fn)
		if err != nil {
			return total, newest, err
		}
		total += n
		if ts > newest {
			newest = ts
		}
	}
	return total, newest, nil
}

func replaySegment(path string, fn func(wire.Tuple)) (int, tuple.Time, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	r := wire.NewReader(f)
	n := 0
	var newest tuple.Time
	for {
		m, err := r.Read()
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// ErrUnexpectedEOF is a torn final frame from a crash
			// mid-write; everything before it is intact.
			return n, newest, nil
		}
		if err != nil {
			return n, newest, fmt.Errorf("wal: %s: %w", path, err)
		}
		if m.Kind != wire.TagProbe {
			return n, newest, fmt.Errorf("wal: %s: unexpected frame tag 0x%02x", path, m.Kind)
		}
		if m.Tuple.TS > newest {
			newest = m.Tuple.TS
		}
		fn(m.Tuple)
		n++
	}
}
