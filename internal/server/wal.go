package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sync/atomic"

	"oij/internal/faultfs"
	"oij/internal/trace"
	"oij/internal/tuple"
	"oij/internal/wire"
)

// The write-ahead log makes the serving layer's probe state survive
// restarts: every probe frame is appended before it is acknowledged by
// ingestion order, and on startup Recover replays the log into the fresh
// engine. Base frames are not logged — they are requests, not state.
//
// On-disk format (v2, see internal/wire walframe.go): a magic segment
// header followed by fixed-size frames each carrying a CRC32C. Legacy v1
// segments (raw 25-byte network frames, no checksums) are migrated to v2
// in place when the writer opens them; recovery reads both. Recovery is
// salvage-oriented: a torn tail is truncated so appends continue on a
// clean frame boundary, a checksum-failed frame is skipped, and all three
// outcomes are counted (recovered / skipped frames, truncated bytes) for
// the /metrics endpoint.
//
// The log is two segments: `path` (current) and `path.1` (previous). When
// the current segment exceeds SegmentBytes AND everything in the previous
// segment has expired from the join window (older than the retention
// horizon behind the newest logged timestamp), the segments rotate and the
// old previous is deleted — so at most two segments exist and together
// they always cover the retention horizon.

// walSyncMode selects when appended frames are fsynced.
type walSyncMode uint8

const (
	// walSyncInterval fsyncs on the ingest heartbeat cadence (default):
	// a power loss costs at most a heartbeat's worth of probes.
	walSyncInterval walSyncMode = iota
	// walSyncAlways flushes and fsyncs before every append returns — the
	// fsync-on-ack mode: a probe can influence an answer only after it is
	// power-durable.
	walSyncAlways
	// walSyncNever flushes to the OS on the heartbeat but never fsyncs;
	// persistence timing is the kernel's business.
	walSyncNever
)

// parseWALSync maps the -wal-sync flag / Config.WALSync values.
func parseWALSync(s string) (walSyncMode, error) {
	switch s {
	case "", "interval":
		return walSyncInterval, nil
	case "always":
		return walSyncAlways, nil
	case "none":
		return walSyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync mode %q (want interval, always or none)", s)
	}
}

// String implements fmt.Stringer.
func (m walSyncMode) String() string {
	switch m {
	case walSyncAlways:
		return "always"
	case walSyncNever:
		return "none"
	default:
		return "interval"
	}
}

// walStats counts recovery outcomes.
type walStats struct {
	recovered int64 // frames replayed into the engine
	skipped   int64 // checksum-failed frames skipped over
	truncated int64 // unsalvageable bytes cut from segment tails
	// frames is the total frame slots the segment occupies (data frames,
	// epoch frames, and checksum-failed frames alike) — the unit of the
	// replication offset space (see wal_repl.go).
	frames int64
	// epoch is the highest fencing epoch stamped into the segment (0 when
	// the log was never written by a replicated node).
	epoch uint64
}

func (a *walStats) add(b walStats) {
	a.recovered += b.recovered
	a.skipped += b.skipped
	a.truncated += b.truncated
	a.frames += b.frames
	if b.epoch > a.epoch {
		a.epoch = b.epoch
	}
}

const (
	// walFlushChunk is the buffered-frame threshold that forces a write
	// between heartbeats.
	walFlushChunk = 32 << 10
	// walMaxBuffer bounds frames retained across failed writes (disk
	// full): beyond it the newest frames are dropped — availability over
	// durability, with every drop surfaced through append errors.
	walMaxBuffer = 1 << 20
)

// walWriter appends probe frames to the current segment. Single-writer
// (the ingest goroutine).
type walWriter struct {
	fs       faultfs.FS
	path     string
	maxBytes int64
	// retention is how far behind the newest timestamp data must still
	// be replayable (window + lateness + slack).
	retention tuple.Time
	sync      walSyncMode

	f     faultfs.File
	size  int64  // frame-aligned bytes known written to the segment
	buf   []byte // encoded frames not yet written
	maxTS tuple.Time
	// prevNewest is the newest timestamp in path.1; hasPrev distinguishes
	// "no previous segment" from a previous segment whose newest frame is
	// legitimately stamped 0.
	prevNewest tuple.Time
	hasPrev    bool
	// sanitized counts tail bytes cut while opening existing segments
	// (torn v2 tails, unsalvageable v1 suffixes dropped by migration).
	sanitized int64
	// fr, when set by the owning server, receives rotation events (nil is
	// a valid no-op recorder).
	fr *trace.Flight
	// alloc, when set by the owning server, books pending-buffer growth
	// against the wal_append stage's allocation counters.
	alloc func(objs, bytes int64)

	// Replication state (see wal_repl.go). Slot accounting is always on —
	// two atomics per flush — so the admin surfaces can report log
	// positions whether or not a peer is attached; feed is non-nil only
	// when a replication source tails this log.
	epoch     uint64 // highest fencing epoch stamped into this log
	noRotate  bool   // standby role: keep slot offsets stable (no segment shifts)
	feed      *walFeed
	slotsBase uint64 // frame slots already on disk when the writer opened
	prevSlots uint64 // slots in path.1 at open
	wrote     int64  // frame bytes written by this process (cumulative across rotations)
	appended  atomic.Uint64
	durable   atomic.Uint64
}

func newWALWriter(fsys faultfs.FS, path string, maxBytes int64, retention tuple.Time, sync walSyncMode) (*walWriter, error) {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	w := &walWriter{fs: fsys, path: path, maxBytes: maxBytes, retention: retention, sync: sync}

	// A restart must not forget what the previous segment still covers:
	// rotation compares against prevNewest, and treating it as absent
	// would let the next rotation delete a segment still inside the
	// retention horizon.
	if st, newest, err := scanSegmentFile(fsys, path+".1", nil); err == nil {
		if st.recovered > 0 {
			w.prevNewest, w.hasPrev = newest, true
			if newest > w.maxTS {
				w.maxTS = newest
			}
		}
		w.prevSlots = uint64(st.frames)
		w.epoch = st.epoch
	}

	// Sanitize the current segment before appending to it: cut a torn
	// tail back to a frame boundary (so new frames never land mid-frame
	// after a crash) and migrate a legacy v1 segment to the checksummed
	// format.
	curSt, newest, err := sanitizeSegment(fsys, path)
	if err != nil {
		return nil, err
	}
	w.sanitized = curSt.truncated
	if newest > w.maxTS {
		w.maxTS = newest
	}
	if curSt.epoch > w.epoch {
		w.epoch = curSt.epoch
	}
	w.slotsBase = w.prevSlots + uint64(curSt.frames)
	w.appended.Store(w.slotsBase)
	w.durable.Store(w.slotsBase)

	if err := w.openSegment(); err != nil {
		return nil, err
	}
	return w, nil
}

// openSegment opens the current segment for appending, stamping the v2
// header on a fresh file.
func (w *walWriter) openSegment() error {
	f, size, err := w.fs.OpenAppend(w.path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	w.f = f
	w.size = size
	if size == 0 {
		n, err := f.Write([]byte(wire.WALMagicV2))
		if err != nil || n != wire.WALHeaderBytes {
			// A partial header would poison the segment; reset it so the
			// next attempt starts clean.
			w.fs.Truncate(w.path, 0)
			f.Close()
			w.f = nil
			if err == nil {
				err = io.ErrShortWrite
			}
			return fmt.Errorf("wal: header: %w", err)
		}
		w.size = int64(n)
	}
	return nil
}

// append logs one probe tuple and rotates if due. On error the frame is
// retained (bounded) for a later retry, so a transiently full disk drops
// nothing.
func (w *walWriter) append(t wire.Tuple) error {
	t.Base = false
	var frame [wire.WALFrameBytes]byte
	wire.EncodeWALFrame(frame[:], t)
	before := cap(w.buf)
	w.buf = append(w.buf, frame[:]...)
	if w.alloc != nil && cap(w.buf) != before {
		w.alloc(1, int64(cap(w.buf)-before))
	}
	if t.TS > w.maxTS {
		w.maxTS = t.TS
	}
	w.noteAppend(frame[:])
	var err error
	switch {
	case w.sync == walSyncAlways:
		err = w.flushBuf(true)
	case len(w.buf) >= walFlushChunk:
		err = w.flushBuf(false)
	}
	if rerr := w.maybeRotate(); err == nil {
		err = rerr
	}
	return err
}

// flushBuf writes buffered frames, keeping the segment frame-aligned in
// the face of short writes and write errors: fully-written frames are kept,
// a torn tail is truncated away, and unwritten frames stay buffered for
// the next attempt (newest dropped first past walMaxBuffer).
func (w *walWriter) flushBuf(syncNow bool) error {
	if w.f == nil {
		if err := w.openSegment(); err != nil {
			w.dropOverflow()
			return err
		}
	}
	if len(w.buf) > 0 {
		n, err := w.f.Write(w.buf)
		if err != nil {
			keep := n - n%wire.WALFrameBytes
			if n > keep {
				// Cut the torn tail; if even that fails the misaligned
				// bytes stay and the next startup's sanitize pass cuts
				// everything after the last clean frame.
				if terr := w.fs.Truncate(w.path, w.size+int64(keep)); terr != nil {
					keep = n
				}
			}
			w.size += int64(keep)
			w.wrote += int64(keep)
			w.buf = append(w.buf[:0], w.buf[keep:]...)
			w.dropOverflow()
			w.noteDurable(false)
			return fmt.Errorf("wal: %w", err)
		}
		w.size += int64(n)
		w.wrote += int64(n)
		w.buf = w.buf[:0]
	}
	if syncNow {
		if err := w.f.Sync(); err != nil {
			w.noteDurable(false)
			return fmt.Errorf("wal: %w", err)
		}
	}
	w.noteDurable(syncNow)
	return nil
}

// dropOverflow bounds the retry buffer, discarding the newest frames so
// the durable log stays a prefix of the ingest order. Dropped frames
// already hold replication slots, so the slot watermark is rewound and
// an attached feed is poisoned: a standby may have been shipped a slot
// whose content will now differ, and the only safe continuation is a
// fresh handshake (availability over durability, loudly).
func (w *walWriter) dropOverflow() {
	if len(w.buf) <= walMaxBuffer {
		return
	}
	keep := walMaxBuffer - walMaxBuffer%wire.WALFrameBytes
	dropped := uint64(len(w.buf)-keep) / wire.WALFrameBytes
	w.buf = w.buf[:keep]
	w.appended.Store(w.appended.Load() - dropped)
	if w.feed != nil {
		w.feed.rewind(w.appended.Load(),
			fmt.Errorf("wal: dropped %d buffered frames after sustained write failures", dropped))
	}
}

// maybeRotate rotates current → previous when the current segment is over
// the size threshold and the previous segment's contents are entirely
// expired (or absent), keeping the two segments sufficient to rebuild the
// retention horizon.
func (w *walWriter) maybeRotate() error {
	if w.noRotate {
		// Standby role: segment shifts would move the slot↔offset mapping
		// the replication ack is built on. Rotation resumes on promotion.
		return nil
	}
	if w.size+int64(len(w.buf)) < w.maxBytes {
		return nil
	}
	if w.hasPrev && w.prevNewest+w.retention >= w.maxTS {
		return nil // previous still holds live data; keep growing
	}
	if err := w.flushBuf(w.sync != walSyncNever); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.f = nil
	if err := w.fs.Rename(w.path, w.path+".1"); err != nil {
		// Keep appending to the unrotated segment rather than lose frames.
		w.openSegment()
		return fmt.Errorf("wal: rotate: %w", err)
	}
	w.prevNewest = w.maxTS
	w.hasPrev = true
	if w.feed != nil {
		// buf is empty after the flush above, so every appended slot is in
		// the renamed file: the new current segment starts at `appended`.
		w.feed.rotated(w.appended.Load())
	}
	w.fr.Record(trace.CompWAL, trace.EvWALRotate, uint64(w.size), 0)
	err := w.openSegment()
	if err == nil && w.epoch > 0 {
		// Re-stamp the fencing epoch at the head of the fresh segment so a
		// recovery that only sees surviving segments still finds it.
		w.stampEpochFrame(w.epoch)
	}
	return err
}

// heartbeat pushes buffered frames to the OS (and to stable storage in
// interval mode) on the ingest loop's idle cadence.
func (w *walWriter) heartbeat() error {
	return w.flushBuf(w.sync == walSyncInterval)
}

// close flushes, fsyncs (unless sync mode is none) and closes the segment.
func (w *walWriter) close() error {
	if w.f == nil && len(w.buf) == 0 {
		return nil
	}
	if err := w.flushBuf(w.sync != walSyncNever); err != nil {
		return err
	}
	return w.f.Close()
}

// replayWAL streams the recoverable probes — previous segment first, then
// current — into fn, tolerating torn tails and skipping checksum-failed
// frames. It never fails on content, only on I/O.
func replayWAL(fsys faultfs.FS, path string, fn func(wire.Tuple)) (walStats, tuple.Time, error) {
	var total walStats
	var newest tuple.Time
	for _, p := range []string{path + ".1", path} {
		st, ts, err := scanSegmentFile(fsys, p, fn)
		total.add(st)
		if err != nil {
			return total, newest, err
		}
		if ts > newest {
			newest = ts
		}
	}
	return total, newest, nil
}

// scanSegmentFile reads one segment and scans it (fn may be nil to scan
// without replaying). A missing segment is zero frames, not an error.
func scanSegmentFile(fsys faultfs.FS, path string, fn func(wire.Tuple)) (walStats, tuple.Time, error) {
	rc, err := fsys.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return walStats{}, 0, nil
	}
	if err != nil {
		return walStats{}, 0, fmt.Errorf("wal: %w", err)
	}
	b, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		return walStats{}, 0, fmt.Errorf("wal: %s: %w", path, err)
	}
	st, newest, _ := scanSegment(b, fn)
	return st, newest, nil
}

// scanSegment parses every salvageable frame of a segment image, calling
// fn (if non-nil) per intact frame in log order. It returns the recovery
// stats, the newest intact timestamp, and the byte offset after the last
// parseable frame — everything beyond `good` is torn or unsalvageable.
//
// v2 segments (magic header) resynchronize on fixed frame boundaries, so
// a checksum-failed frame mid-log is skipped and scanning continues. v1
// segments have no checksums: parsing stops at the first undecodable
// byte and the remainder is counted as truncated.
func scanSegment(b []byte, fn func(wire.Tuple)) (st walStats, newest tuple.Time, good int) {
	if len(b) == 0 {
		return st, 0, 0
	}
	if len(b) >= wire.WALHeaderBytes && string(b[:wire.WALHeaderBytes]) == wire.WALMagicV2 {
		off := wire.WALHeaderBytes
		for off+wire.WALFrameBytes <= len(b) {
			frame := b[off : off+wire.WALFrameBytes]
			if e, err := wire.DecodeWALEpochFrame(frame); err == nil {
				// An epoch frame is replication metadata, not a tuple and
				// not corruption: it occupies a slot and carries the
				// fencing epoch the log was written under.
				if e > st.epoch {
					st.epoch = e
				}
			} else if t, err := wire.DecodeWALFrame(frame); err != nil {
				st.skipped++
			} else {
				st.recovered++
				if t.TS > newest {
					newest = t.TS
				}
				if fn != nil {
					fn(t)
				}
			}
			st.frames++
			off += wire.WALFrameBytes
		}
		st.truncated = int64(len(b) - off)
		return st, newest, off
	}

	// Legacy v1: raw network frames, trusted as far as they parse.
	r := wire.NewReader(bytes.NewReader(b))
	const v1Frame = 25
	for {
		m, err := r.Read()
		if err != nil || (m.Kind != wire.TagProbe && m.Kind != wire.TagBase) {
			// io.EOF is a clean end; anything else (torn tail, unknown
			// tag, garbage) ends the salvageable prefix.
			good = int(st.recovered) * v1Frame
			st.truncated = int64(len(b) - good)
			return st, newest, good
		}
		st.recovered++
		st.frames++
		if m.Tuple.TS > newest {
			newest = m.Tuple.TS
		}
		if fn != nil {
			fn(m.Tuple)
		}
	}
}

// sanitizeSegment prepares the current segment for appending: a torn v2
// tail is truncated back to a frame boundary, and a legacy v1 segment is
// rewritten in the checksummed v2 format (dropping only bytes that do not
// parse). It returns the segment's scan stats — st.truncated is the tail
// bytes cut, st.frames the slots the sanitized segment holds — and its
// newest intact timestamp.
func sanitizeSegment(fsys faultfs.FS, path string) (walStats, tuple.Time, error) {
	rc, err := fsys.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return walStats{}, 0, nil
	}
	if err != nil {
		return walStats{}, 0, fmt.Errorf("wal: %w", err)
	}
	b, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		return walStats{}, 0, fmt.Errorf("wal: %s: %w", path, err)
	}
	if len(b) == 0 {
		return walStats{}, 0, nil
	}

	st, newest, good := scanSegment(b, nil)
	if len(b) >= wire.WALHeaderBytes && string(b[:wire.WALHeaderBytes]) == wire.WALMagicV2 {
		if good < len(b) {
			if err := fsys.Truncate(path, int64(good)); err != nil {
				return st, newest, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
			}
		}
		return st, newest, nil
	}
	// A headerless segment that salvages nothing is not a v1 log — it is
	// garbage (e.g. a torn header from a crashed segment creation).
	// Resetting it to empty lets openSegment stamp a clean header.
	if st.recovered == 0 {
		if err := fsys.Truncate(path, 0); err != nil {
			return walStats{}, 0, fmt.Errorf("wal: resetting %s: %w", path, err)
		}
		return walStats{truncated: int64(len(b))}, 0, nil
	}
	if _, err := migrateV1Segment(fsys, path, b[:good]); err != nil {
		return st, newest, err
	}
	return st, newest, nil
}

// migrateV1Segment rewrites the salvageable v1 prefix as a v2 segment via
// a temp file + rename, so a crash mid-migration leaves either the old v1
// segment or the complete v2 one.
func migrateV1Segment(fsys faultfs.FS, path string, v1 []byte) (int64, error) {
	tmp := path + ".migrate"
	if err := fsys.Remove(tmp); err != nil {
		return 0, fmt.Errorf("wal: migrate: %w", err)
	}
	f, size, err := fsys.OpenAppend(tmp)
	if err != nil {
		return 0, fmt.Errorf("wal: migrate: %w", err)
	}
	if size != 0 {
		f.Close()
		return 0, fmt.Errorf("wal: migrate: stale %s not empty", tmp)
	}
	out := make([]byte, 0, wire.WALHeaderBytes+len(v1)/25*wire.WALFrameBytes)
	out = append(out, wire.WALMagicV2...)
	var frame [wire.WALFrameBytes]byte
	r := wire.NewReader(bytes.NewReader(v1))
	for {
		m, err := r.Read()
		if err != nil {
			break
		}
		wire.EncodeWALFrame(frame[:], m.Tuple)
		out = append(out, frame[:]...)
	}
	if _, err := f.Write(out); err != nil {
		f.Close()
		return 0, fmt.Errorf("wal: migrate: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("wal: migrate: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("wal: migrate: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return 0, fmt.Errorf("wal: migrate: %w", err)
	}
	return 0, nil
}
