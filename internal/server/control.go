// Controller integration: once per sampler epoch the server condenses its
// live telemetry into a control.Signals snapshot and lets the controller
// act through the atomic knobs (admission level, trace sampling, soft
// memory watermark) and the resize marshalling slot the ingest loop
// drains. /controlz exposes the loop to operators: GET returns the policy
// and the recent decision ring, POST freezes/unfreezes the loop or applies
// a manual override (overrides work while frozen — freeze means "stop the
// automation", not "stop the operator").
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"oij/internal/control"
	"oij/internal/engine"
	"oij/internal/metrics"
)

// activeJoiners returns the engine's live active joiner count (the routing
// target set), or the full pool for engines without a resize path.
func (s *Server) activeJoiners() int {
	if rz, ok := s.eng.(engine.Resizer); ok {
		return rz.ActiveJoiners()
	}
	return s.cfg.Engine.Joiners
}

// controlSignals condenses one epoch into the controller's input vector.
// Utilization and load dispersion are computed over the *active* joiner
// prefix: a deactivated joiner idling at zero must not drag the mean down
// and retrigger a scale-up the controller just undid.
func (s *Server) controlSignals(now time.Time, epoch uint64) control.Signals {
	active := s.activeJoiners()
	sig := control.Signals{
		Epoch:         epoch,
		ActiveJoiners: active,
		MemLevel:      int(s.memLevel.Load()),
	}

	utils := s.o.util.Values()
	if active > len(utils) {
		active = len(utils)
	}
	var sum float64
	for _, u := range utils[:active] {
		sum += u
		if u > sig.MaxUtil {
			sig.MaxUtil = u
		}
	}
	if active > 0 {
		sig.MeanUtil = sum / float64(active)
	}

	loads := s.eng.Stats().Loads()
	if active <= len(loads) {
		loads = loads[:active]
	}
	sig.Unbalancedness = metrics.Unbalancedness(loads)

	if c := cap(s.ingest); c > 0 {
		sig.QueueFrac = float64(len(s.ingest)) / float64(c)
	}
	_, _, lag := s.watermarkLag()
	sig.WatermarkLagS = float64(lag) / 1e6

	window := s.cfg.SLOWindow
	if avg, _, ok := s.o.timeline.WindowStats("oij_request_latency_seconds:p99", window, now); ok {
		sig.P99 = time.Duration(avg * float64(time.Second))
	}
	for _, name := range sloShedSeries {
		if avg, _, ok := s.o.timeline.WindowStats(name, window, now); ok {
			sig.ShedRate += avg
		}
	}
	return sig
}

// controllerStep runs one controller epoch. Sampler goroutine only; a nil
// or disabled controller makes this a no-op.
func (s *Server) controllerStep(now time.Time, epoch uint64) {
	if s.ctl == nil {
		return
	}
	s.ctl.Step(now, s.controlSignals(now, epoch))
}

// controlzDoc is the GET /controlz document.
type controlzDoc struct {
	Enabled bool              `json:"enabled"`
	Active  int               `json:"active_joiners"`
	Pool    int               `json:"pool_joiners"`
	State   *control.Snapshot `json:"state,omitempty"`
}

// serveControlz exposes the controller. GET returns policy, live knob
// values, and the recent decision ring. POST mutates:
//
//	POST /controlz?action=freeze      — suspend automatic decisions
//	POST /controlz?action=unfreeze    — resume automatic decisions
//	POST /controlz?actuator=joiners&value=3  — manual override (also:
//	  admission, trace_sample_n, mem_soft_pct); applies even while frozen
func (s *Server) serveControlz(w http.ResponseWriter, r *http.Request) {
	if s.ctl == nil {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(controlzDoc{
			Enabled: false,
			Active:  s.activeJoiners(),
			Pool:    s.cfg.Engine.Joiners,
		})
		return
	}
	switch r.Method {
	case http.MethodGet:
	case http.MethodPost:
		if err := s.controlzPost(r); err != nil {
			httpJSONError(w, err.Error(), http.StatusBadRequest)
			return
		}
	default:
		httpJSONError(w, fmt.Sprintf("method %s not allowed", r.Method), http.StatusMethodNotAllowed)
		return
	}
	snap := s.ctl.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(controlzDoc{
		Enabled: true,
		Active:  s.activeJoiners(),
		Pool:    s.cfg.Engine.Joiners,
		State:   &snap,
	})
}

// controlzPost applies one POST mutation: a freeze toggle or an override.
func (s *Server) controlzPost(r *http.Request) error {
	q := r.URL.Query()
	now := time.Now()
	switch action := q.Get("action"); action {
	case "freeze":
		s.ctl.SetFrozen(now, true)
		return nil
	case "unfreeze":
		s.ctl.SetFrozen(now, false)
		return nil
	case "":
	default:
		return fmt.Errorf("unknown action %q (want freeze or unfreeze)", action)
	}
	actuator := q.Get("actuator")
	if actuator == "" {
		return fmt.Errorf("POST needs action=freeze|unfreeze or actuator=...&value=...")
	}
	v, err := strconv.Atoi(q.Get("value"))
	if err != nil {
		return fmt.Errorf("bad value %q: %v", q.Get("value"), err)
	}
	_, err = s.ctl.Override(now, actuator, v)
	return err
}
