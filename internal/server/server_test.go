package server

import (
	"net"
	"testing"
	"time"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/harness"
	"oij/internal/window"
	"oij/internal/wire"
)

func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s, addr.String()
}

func baseCfg() Config {
	return Config{
		Engine: engine.Config{
			Joiners: 2,
			Window:  window.Spec{Pre: 10_000_000, Fol: 0, Lateness: 1000},
			Agg:     agg.Sum,
		},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty window accepted")
	}
	cfg := baseCfg()
	cfg.Algorithm = "bogus"
	if _, err := New(cfg); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
}

func TestSingleClientRoundTrip(t *testing.T) {
	_, addr := startServer(t, baseCfg())
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.SendProbe(7, 1000, 10)
	c.SendProbe(7, 2000, 20)
	c.SendProbe(8, 2000, 999) // other key
	seq, _ := c.SendBase(7, 3000, 0)
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	rs, err := c.RecvResults(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("got %d results", len(rs))
	}
	r := rs[0]
	if r.Seq != seq || r.Key != 7 || r.Agg != 30 || r.Matches != 2 {
		t.Fatalf("result %+v", r)
	}
}

func TestSharedStateAcrossClients(t *testing.T) {
	srv, addr := startServer(t, baseCfg())

	producer, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	consumer, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()

	// One client streams data...
	for i := 0; i < 10; i++ {
		producer.SendProbe(42, 1000+int64(i), 1)
	}
	producer.Flush()
	// ...the producer barriers so the server has ingested everything...
	if err := producer.Barrier(); err != nil {
		t.Fatal(err)
	}
	if _, err := producer.RecvResults(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// ...and another client's request sees it.
	consumer.SendBase(42, 2000, 0)
	consumer.Barrier()
	rs, err := consumer.RecvResults(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Matches != 10 {
		t.Fatalf("cross-client visibility broken: %+v", rs)
	}
	if srv.Served() < 11 {
		t.Fatalf("served = %d", srv.Served())
	}
}

func TestSessionLocalSequences(t *testing.T) {
	_, addr := startServer(t, baseCfg())
	a, _ := Dial(addr)
	defer a.Close()
	b, _ := Dial(addr)
	defer b.Close()

	// Both clients' sequences start at 0 independently.
	sa, _ := a.SendBase(1, 1000, 0)
	sb, _ := b.SendBase(1, 1000, 0)
	if sa != 0 || sb != 0 {
		t.Fatalf("local seqs: a=%d b=%d", sa, sb)
	}
	a.Barrier()
	b.Barrier()
	ra, err := a.RecvResults(5 * time.Second)
	if err != nil || len(ra) != 1 || ra[0].Seq != 0 {
		t.Fatalf("client a: %+v %v", ra, err)
	}
	rb, err := b.RecvResults(5 * time.Second)
	if err != nil || len(rb) != 1 || rb[0].Seq != 0 {
		t.Fatalf("client b: %+v %v", rb, err)
	}
}

func TestManyRequests(t *testing.T) {
	_, addr := startServer(t, baseCfg())
	c, _ := Dial(addr)
	defer c.Close()

	const n = 2000
	for i := 0; i < n; i++ {
		c.SendProbe(uint64(i%5), int64(1000+i), 1)
		if i%4 == 0 {
			c.SendBase(uint64(i%5), int64(1000+i), 0)
		}
	}
	c.Barrier()
	rs, err := c.RecvResults(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != n/4 {
		t.Fatalf("got %d results, want %d", len(rs), n/4)
	}
	seen := map[uint64]bool{}
	for _, r := range rs {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}

func TestMalformedFrameClosesSession(t *testing.T) {
	_, addr := startServer(t, baseCfg())
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A result frame from a client is a protocol violation.
	w := wire.NewWriter(conn)
	w.WriteResult(wire.Result{})
	w.Flush()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	m, err := wire.NewReader(conn).Read()
	if err != nil {
		t.Fatalf("expected an error frame before close, got %v", err)
	}
	if m.Kind != wire.TagError {
		t.Fatalf("expected error frame, got kind %d", m.Kind)
	}
}

func TestShutdownIdempotent(t *testing.T) {
	s, _ := startServer(t, baseCfg())
	s.Shutdown()
	s.Shutdown() // second call must be a no-op
}

func TestWatermarkModeServing(t *testing.T) {
	cfg := baseCfg()
	cfg.Algorithm = harness.ScaleOIJ
	cfg.Engine.Mode = engine.OnWatermark
	cfg.Engine.Window = window.Spec{Pre: 1000, Fol: 0, Lateness: 100}
	_, addr := startServer(t, cfg)
	c, _ := Dial(addr)
	defer c.Close()

	c.SendBase(5, 1000, 0)
	c.SendProbe(5, 950, 3) // late probe, still in window
	// Advance event time so the watermark closes the request's window.
	c.SendProbe(5, 5000, 1)
	c.Barrier()
	rs, err := c.RecvResults(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Matches != 1 || rs[0].Agg != 3 {
		t.Fatalf("watermark serving: %+v", rs)
	}
}
