// Package server exposes an online interval join over TCP, modelling the
// OpenMLDB serving path: clients stream probe data continuously and send
// base frames as feature requests; the server answers every base frame
// with its window aggregate over the shared join state.
//
// All sessions feed one engine through a single ingest goroutine (engines
// require a single ingester), so clients share state: a probe pushed by
// one connection is visible to every other connection's requests, exactly
// like rows in a shared feature store. Event time is likewise shared — the
// watermark follows the maximum timestamp over all clients.
//
// Protocol: see package wire. Every base frame is answered with exactly
// one result frame carrying a session-local sequence number (the order the
// session's base frames were received); a flush frame is echoed back once
// all of the session's outstanding requests have been answered.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oij/internal/control"
	"oij/internal/engine"
	"oij/internal/faultfs"
	"oij/internal/harness"
	"oij/internal/obs"
	"oij/internal/prof"
	"oij/internal/trace"
	"oij/internal/tuple"
	"oij/internal/wire"
)

// Config configures a Server.
type Config struct {
	// Algorithm is a harness engine variant (default scale-oij).
	Algorithm string
	// Engine carries window, lateness, aggregation, joiners, and mode.
	Engine engine.Config
	// IngestBuffer is the funnel channel depth (default 4096).
	IngestBuffer int
	// ResultBuffer is the per-session outgoing queue depth (default
	// 1024). A session that stops reading first backpressures itself and
	// is then evicted after SlowConsumerGrace, so one stuck client cannot
	// stall the shared engine.
	ResultBuffer int
	// Admission selects what happens when the ingest funnel is full:
	// "block" (default — senders wait, the pre-overload-control
	// behavior), "shed-probes" (drop probe tuples, requests still wait),
	// or "reject" (drop probes and answer requests with a typed NACK so
	// clients fail fast).
	Admission string
	// RequestDeadline bounds how long a base request may wait in the
	// ingest funnel; one that goes stale is answered with a deadline NACK
	// instead of silently queueing into the engine. Zero disables.
	RequestDeadline time.Duration
	// MemCapProbes caps the engine's buffered probe state (an estimate:
	// probes ingested minus probes evicted). Above 75% of the cap the
	// server degrades by shedding probes already in the oldest half of
	// the retention horizon (they expire soonest and contribute least);
	// at the cap it sheds every incoming probe. Zero disables.
	MemCapProbes int64
	// SlowConsumerGrace is how long a result delivery may wait on a
	// session whose outgoing buffer is full before the session is evicted
	// (default 5s; negative disables eviction and restores the legacy
	// block-forever behavior). The same bound is applied as a per-frame
	// write deadline, so a stalled TCP peer cannot wedge the writer.
	SlowConsumerGrace time.Duration
	// StallThreshold is how long a joiner's input ring may block the
	// engine driver before the watchdog reports the joiner as wedged on
	// /statusz (default 1s).
	StallThreshold time.Duration
	// WALPath, when set, appends every ingested probe to a write-ahead
	// log (checksummed v2 frame format) and lets Recover rebuild the join
	// state after a restart. The log keeps at most two segments covering
	// the join's retention horizon.
	WALPath string
	// WALSegmentBytes is the rotation threshold (default 64 MiB).
	WALSegmentBytes int64
	// WALSync selects append durability: "interval" (default — fsync on
	// the heartbeat cadence), "always" (fsync before each append returns),
	// or "none" (flush to the OS, never fsync).
	WALSync string
	// WALFS overrides the filesystem the WAL writes through — the fault
	// injection seam of the crash tests. Nil means the real filesystem.
	WALFS faultfs.FS
	// AdminAddr, when set, serves the observability endpoint there:
	// /metrics (Prometheus text), /statusz (JSON), and /debug/pprof.
	// Use ":0" for an ephemeral port (AdminAddr() reports the binding).
	AdminAddr string
	// UtilEpoch is the live utilization sampling epoch (default 1s).
	UtilEpoch time.Duration
	// TraceSampleN enables per-request stage tracing: every Nth admitted
	// base request carries a span through all eight pipeline stages
	// (ingest → queue wait → dispatch → probe → aggregate → emit → WAL
	// append → TCP write), scrapeable at /tracez. Sampling is
	// deterministic (a shared counter, no PRNG); 0 disables, 1 traces
	// every request.
	TraceSampleN int
	// TraceRing bounds the completed-span ring behind /tracez (default
	// 256).
	TraceRing int
	// FlightRing is the per-component flight-recorder ring size (default
	// 512). The recorder itself is always on — it is a few atomic stores
	// per control-plane event, nothing on the data hot path.
	FlightRing int
	// FlightDumpPath, when set, receives an automatic flight-recorder
	// dump (JSON, rate-limited to one per second) whenever an eviction,
	// stall detection, or memory-pressure escalation fires.
	FlightDumpPath string
	// ProfileDir enables the continuous profiler: a background capturer
	// takes short periodic CPU slices plus heap/mutex/block snapshots into
	// a bounded on-disk profile ring there (indexed manifest, temp+rename,
	// count- and size-capped retention), served at /profilez and captured
	// out-of-cycle on incidents (SLO breach, stall, memory pressure,
	// evictions) next to the flight dump. Empty disables profiling.
	ProfileDir string
	// ProfilePeriod is the capture duty cycle (default 60s) and
	// ProfileCPUSlice the CPU slice length per cycle (default 2s; must be
	// shorter than the period — the ratio bounds profiling overhead).
	ProfilePeriod   time.Duration
	ProfileCPUSlice time.Duration
	// ProfileRetain caps how many profiles the ring keeps (default 32).
	ProfileRetain int
	// ProfileFS overrides the profile ring's filesystem (fault-injection
	// tests); nil uses the real one.
	ProfileFS faultfs.FS
	// HotKeysK is the per-joiner slot count of the SpaceSaving hot-key
	// sketches on the ingest path (default 16; negative disables hot-key
	// analytics). Any key above a 1/K share of its joiner's stream is
	// guaranteed resident; memory is K entries per joiner per stream.
	HotKeysK int
	// SLOWindow is the trailing window /healthz burn rates are computed
	// over (default 30s). The window must fit the finest timeline tier
	// (5 minutes at defaults).
	SLOWindow time.Duration
	// SLOP99 marks the server unhealthy while the window-averaged
	// interval p99 request latency exceeds it. Zero disables the
	// dimension; all-zero SLO thresholds make /healthz a plain liveness
	// probe.
	SLOP99 time.Duration
	// SLOShedRate marks the server unhealthy while shed/NACK events per
	// second (admission sheds + rejects + deadline NACKs + memory-guard
	// sheds), window-averaged, exceed it. Zero disables.
	SLOShedRate float64
	// SLOWatermarkLag marks the server unhealthy while the
	// window-averaged watermark lag exceeds it. Zero disables.
	SLOWatermarkLag time.Duration
	// SLOMemLevel marks the server unhealthy while any sample in the
	// window sits at or above this memory-pressure rung (1 or 2). Zero
	// disables.
	SLOMemLevel int
	// ReplListenAddr, when set, serves this node's WAL to replication
	// standbys there (requires WALPath). Use ":0" for an ephemeral port
	// (ReplAddr reports the binding). On a node also configured with
	// StandbyOf the listener starts only at promotion.
	ReplListenAddr string
	// StandbyOf, when set, runs this node as a hot standby of the primary
	// at that address (requires WALPath): it applies the primary's WAL
	// stream into its own log and engine and answers every client request
	// with a not-primary NACK until promoted.
	StandbyOf string
	// ReplLease is the failure-detection budget D for automatic failover:
	// the primary heartbeats every D/4 and self-fences after 3D/4 without
	// a standby ack; the standby promotes itself after hearing nothing for
	// D. Zero defaults to 3s when replication is configured; negative
	// disables automatic failover and fencing (replication still streams).
	ReplLease time.Duration
	// MaxReplLag, when positive, records a lag_exceeded flight event (and
	// an incident dump) whenever the un-acked suffix of the primary's log
	// exceeds this many bytes.
	MaxReplLag int64
	// Control configures the adaptive self-tuning controller. When
	// enabled, the engine's goroutine pool is sized to Control.MaxJoiners
	// (Engine.Joiners becomes the boot *active* count) and the controller
	// retunes active joiners, admission policy, trace sampling, and the
	// soft memory watermark live from the sampler epoch loop. A zero value
	// leaves every knob static, exactly as configured.
	Control control.Config
}

func (c Config) withDefaults() Config {
	if c.Algorithm == "" {
		c.Algorithm = harness.ScaleOIJ
	}
	if c.IngestBuffer <= 0 {
		c.IngestBuffer = 4096
	}
	if c.ResultBuffer <= 0 {
		c.ResultBuffer = 1024
	}
	if c.Engine.WatermarkEvery <= 0 {
		// Serving favours promptness over amortization: watermark per
		// tuple, so low-rate request streams finalize without waiting
		// for a 256-tuple batch. High-rate deployments raise this.
		c.Engine.WatermarkEvery = 1
	}
	if c.UtilEpoch <= 0 {
		c.UtilEpoch = time.Second
	}
	if c.Admission == "" {
		c.Admission = AdmissionBlock
	}
	if c.SlowConsumerGrace == 0 {
		c.SlowConsumerGrace = 5 * time.Second
	}
	if c.StallThreshold <= 0 {
		c.StallThreshold = time.Second
	}
	if c.TraceRing <= 0 {
		c.TraceRing = 256
	}
	if c.FlightRing <= 0 {
		c.FlightRing = 512
	}
	if c.HotKeysK == 0 {
		c.HotKeysK = 16
	}
	if c.SLOWindow <= 0 {
		c.SLOWindow = 30 * time.Second
	}
	if (c.ReplListenAddr != "" || c.StandbyOf != "") && c.ReplLease == 0 {
		c.ReplLease = 3 * time.Second
	}
	// Busy-time tracking feeds the live utilization gauges; its cost is
	// two clock reads per joiner batch, not per tuple.
	c.Engine.TrackBusy = true
	c.Engine = c.Engine.WithDefaults()
	return c
}

// Admission policy names (Config.Admission).
const (
	AdmissionBlock      = "block"
	AdmissionShedProbes = "shed-probes"
	AdmissionReject     = "reject"
)

// parseAdmission validates an admission policy name.
func parseAdmission(s string) (string, error) {
	switch s {
	case AdmissionBlock, AdmissionShedProbes, AdmissionReject:
		return s, nil
	}
	return "", fmt.Errorf("unknown admission policy %q (want %s, %s or %s)",
		s, AdmissionBlock, AdmissionShedProbes, AdmissionReject)
}

// defaultMemSoftPct is the boot soft memory-guard rung: the percent of
// MemCapProbes at which old-half probe shedding starts (the historical
// hard-coded 75%). The controller tightens it under sustained hard
// pressure and restores it on recovery.
const defaultMemSoftPct = 75

// admissionLevelOf maps a policy name to its control ladder level.
func admissionLevelOf(policy string) int {
	switch policy {
	case AdmissionShedProbes:
		return control.AdmissionShed
	case AdmissionReject:
		return control.AdmissionReject
	default:
		return control.AdmissionBlock
	}
}

// pendingBase routes a result back to its session.
type pendingBase struct {
	sess     *session
	localSeq uint64
	sp       *trace.Span // nil unless the request was sampled
}

// ingestReq is one unit of work for the ingest goroutine: a probe
// (sess == nil), a base request (sess set), or a flush barrier (flush set;
// routed through the funnel so it observes every base queued before it).
type ingestReq struct {
	t        wire.Tuple
	sess     *session
	localSeq uint64    // session-local sequence, assigned by the reader
	enq      time.Time // when the request entered the funnel
	flush    bool
	sp       *trace.Span // nil unless the request was sampled
	// Replication control flow, marshalled through the funnel so the
	// single-ingester rule covers the standby apply path too: replFrame is
	// one verbatim primary WAL frame to apply; promote flips this standby
	// to primary (enqueued only after the link loop has fully stopped).
	replFrame []byte
	promote   bool
}

// Server is a running join service.
type Server struct {
	cfg Config
	eng engine.Engine

	ln     net.Listener
	ingest chan ingestReq

	mu       sync.Mutex
	pending  map[uint64]pendingBase // engine (global) seq -> session route
	sessions map[*session]struct{}
	closed   bool

	nextGlobal uint64
	served     atomic.Int64
	wg         sync.WaitGroup // ingest + accept loops
	sessWG     sync.WaitGroup // session goroutines

	// Overload-control state. probesIngested counts every probe handed to
	// the engine (network + WAL recovery), so probesIngested − Evicted
	// estimates the buffered probe state the memory guard caps. memLevel
	// is the current degradation rung: 0 normal, 1 shedding oldest-window
	// probes, 2 shedding all probes.
	probesIngested atomic.Int64
	memLevel       atomic.Int32
	retention      tuple.Time // probe relevance horizon in event time

	// Live-tunable overload knobs. Sessions and the ingest loop read these
	// per event; the controller (sampler goroutine) and /controlz overrides
	// store them, so every knob the controller owns is an atomic rather
	// than a cfg field. admission holds a control.Admission* level,
	// memSoftPct the soft memory-guard rung as a percent of MemCapProbes,
	// and resizeReq marshals a pending active-joiner target to the ingest
	// loop (engines only allow Resize from the driver goroutine); 0 means
	// no resize pending.
	admission  atomic.Int32
	memSoftPct atomic.Int32
	resizeReq  atomic.Int32
	ctl        *control.Controller

	// repl is the replication state machine (nil when neither
	// ReplListenAddr nor StandbyOf is configured: replication off costs
	// the hot path one nil check).
	repl *replState

	wal          *walWriter
	walErrs      atomic.Int64
	walRecovered atomic.Int64
	walSkipped   atomic.Int64
	walTruncated atomic.Int64
	started      bool

	// tracer samples per-request spans; flight is the always-on event
	// recorder. lastWALNS is the duration of the most recent probe WAL
	// append the ingest loop observed (written only when tracing is
	// enabled) — a sampled request reports it as its wal_append stage, the
	// durability cost sitting in the pipeline when the request crossed it.
	tracer      *trace.Tracer
	flight      *trace.Flight
	lastWALNS   atomic.Int64
	stallActive atomic.Bool

	// prof is the continuous profiler (nil when ProfileDir is unset; every
	// method is nil-safe so incident paths call it unconditionally).
	prof *prof.Capturer

	o           *serverObs
	slo         *sloEvaluator
	admin       *obs.Admin
	stopSampler chan struct{}
}

// New builds a server (not yet listening).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Engine.Validate(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if _, err := parseAdmission(cfg.Admission); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	// With the controller enabled on a resizable engine, the goroutine
	// pool is sized to the scaling ceiling up front (rings and workers are
	// never added after Start); the configured joiner count becomes the
	// boot *active* count and the engine is narrowed to it below, before
	// any goroutine exists.
	bootJoiners := cfg.Engine.Joiners
	if cfg.Control.Enabled {
		if cfg.Control.MaxJoiners <= 0 || cfg.Control.MaxJoiners < bootJoiners {
			cfg.Control.MaxJoiners = bootJoiners
		}
		if cfg.Algorithm == harness.ScaleOIJ && cfg.Control.MaxJoiners > cfg.Engine.Joiners {
			cfg.Engine.Joiners = cfg.Control.MaxJoiners
			if err := cfg.Engine.Validate(); err != nil {
				return nil, fmt.Errorf("server: controller pool: %w", err)
			}
		}
	}
	s := &Server{
		cfg:         cfg,
		ingest:      make(chan ingestReq, cfg.IngestBuffer),
		pending:     map[uint64]pendingBase{},
		sessions:    map[*session]struct{}{},
		stopSampler: make(chan struct{}),
		tracer:      trace.NewTracer(cfg.TraceSampleN, cfg.TraceRing),
		flight:      trace.NewFlight(cfg.FlightRing, cfg.FlightDumpPath),
	}
	// The engine's transport feeds watermark advances into the recorder.
	cfg.Engine.Flight = s.flight
	s.cfg.Engine.Flight = s.flight
	eng, err := harness.Build(cfg.Algorithm, cfg.Engine, serverSink{s})
	if err != nil {
		return nil, err
	}
	s.eng = eng
	s.retention = cfg.Engine.Window.Len() + cfg.Engine.Window.Lateness
	s.slo = newSLOEvaluator(s)
	s.admission.Store(int32(admissionLevelOf(cfg.Admission)))
	s.memSoftPct.Store(defaultMemSoftPct)
	if cfg.Control.Enabled {
		// Narrow the pool to the boot active count before Start (no
		// goroutines exist yet, so the driver-only rule is trivially
		// met). An engine that cannot resize keeps its full pool and the
		// controller runs without the joiner actuator — admission, trace,
		// and memory rules still apply.
		active := cfg.Engine.Joiners
		var resize func(int) bool
		if rz, ok := eng.(engine.Resizer); ok && rz.Resize(bootJoiners) {
			active = bootJoiners
			resize = func(n int) bool {
				// Marshal to the ingest loop: Resize is driver-only and
				// the sampler goroutine is calling. The loop applies the
				// newest pending target before its next unit of work.
				s.resizeReq.Store(int32(n))
				return true
			}
		}
		cc := cfg.Control
		if cc.P99Target == 0 {
			cc.P99Target = cfg.SLOP99
		}
		s.ctl = control.New(cc, control.Boot{
			Joiners:      active,
			Admission:    admissionLevelOf(cfg.Admission),
			TraceSampleN: cfg.TraceSampleN,
			MemSoftPct:   defaultMemSoftPct,
		}, control.Actuators{
			ResizeJoiners:  resize,
			SetAdmission:   func(l int) { s.admission.Store(int32(l)) },
			SetTraceSample: func(n int) { s.tracer.SetSampleN(n) },
			SetMemSoftPct:  func(p int) { s.memSoftPct.Store(int32(p)) },
		}, s.flight)
	}
	if cfg.ReplListenAddr != "" || cfg.StandbyOf != "" {
		if cfg.WALPath == "" {
			return nil, errors.New("server: replication requires a WAL (set WALPath)")
		}
		s.repl = newReplState(s, cfg)
	}
	if cfg.ProfileDir != "" {
		// Built before newServerObs so the profiling gauges it registers
		// are visible to the collector snapshot.
		pc, err := prof.New(prof.Config{
			Dir:      cfg.ProfileDir,
			Period:   cfg.ProfilePeriod,
			CPUSlice: cfg.ProfileCPUSlice,
			Retain:   cfg.ProfileRetain,
			FS:       cfg.ProfileFS,
			Flight:   s.flight,
		})
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.prof = pc
	}
	s.o = newServerObs(s, cfg.Engine.Joiners)
	if cfg.WALPath != "" {
		mode, err := parseWALSync(cfg.WALSync)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		w := cfg.Engine.Window
		retention := 2*w.Len() + w.Lateness
		s.wal, err = newWALWriter(cfg.WALFS, cfg.WALPath, cfg.WALSegmentBytes, retention, mode)
		if err != nil {
			return nil, err
		}
		// Tail bytes cut while sanitizing existing segments (torn v2
		// tails, unsalvageable v1 suffixes) count as truncated even if
		// Recover is never called.
		s.walTruncated.Add(s.wal.sanitized)
		s.wal.fr = s.flight
		s.wal.alloc = func(objs, bytes int64) { s.o.countAlloc(trace.StageWALAppend, objs, bytes) }
		if s.wal.sanitized > 0 {
			s.flight.Record(trace.CompWAL, trace.EvWALSalvage, uint64(s.wal.sanitized), 0)
		}
	}
	if s.repl != nil {
		// A standby's WAL mirrors the primary's log, so its slot offsets
		// must stay stable: rotation is disabled until promotion. Its
		// durable position (which primary log, at which base slot) lives
		// in the replstate file beside the WAL.
		if cfg.StandbyOf != "" {
			s.wal.noRotate = true
			if err := s.repl.loadState(); err != nil {
				return nil, fmt.Errorf("server: %w", err)
			}
		}
		// A source needs the feed attached before the first append so slot
		// accounting and the tail ring agree; a standby configured with a
		// listener gets it now too (the listener starts at promotion).
		if cfg.ReplListenAddr != "" {
			if _, err := s.wal.enableFeed(); err != nil {
				return nil, fmt.Errorf("server: %w", err)
			}
			id, err := randomWALID()
			if err != nil {
				return nil, fmt.Errorf("server: wal id: %w", err)
			}
			s.repl.selfID.Store(id)
		}
		// The highest epoch stamped in the recovered log is this node's
		// fencing epoch — a zombie restarting after a failover announces
		// its staleness with it.
		s.repl.epoch.Store(s.wal.epoch)
	}
	return s, nil
}

// FlightRecorder exposes the server's always-on event recorder so embedding
// processes can route their own components (e.g. a client-side circuit
// breaker in tests) into the same timeline.
func (s *Server) FlightRecorder() *trace.Flight { return s.flight }

// startEngine starts the engine exactly once.
func (s *Server) startEngine() {
	if !s.started {
		s.started = true
		s.eng.Start()
	}
}

// Recover replays the write-ahead log into the engine, rebuilding the
// probe state a previous process had buffered. Call before Listen; returns
// the number of probes recovered. Recovery is salvage-oriented: a torn
// tail (crash mid-write) is truncated and checksum-failed frames are
// skipped, with both outcomes counted in WALStats and /metrics. Without a
// configured WALPath it is a no-op.
func (s *Server) Recover() (int, error) {
	if s.cfg.WALPath == "" {
		return 0, nil
	}
	s.startEngine()
	st, newest, err := replayWAL(s.wal.fs, s.cfg.WALPath, func(t wire.Tuple) {
		s.probesIngested.Add(1)
		s.eng.Ingest(tuple.Tuple{TS: t.TS, Key: t.Key, Val: t.Val, Side: tuple.Probe})
	})
	s.walRecovered.Add(st.recovered)
	s.walSkipped.Add(st.skipped)
	s.walTruncated.Add(st.truncated)
	s.flight.Record(trace.CompWAL, trace.EvWALRecovered, uint64(st.recovered), uint64(st.skipped))
	if newest > s.wal.maxTS {
		s.wal.maxTS = newest
	}
	return int(st.recovered), err
}

// serverSink routes engine results back to the issuing session.
type serverSink struct{ s *Server }

// SpanFor implements engine.StageRecorder: joiners look up the sampled
// span for the base request they are processing (nil for the unsampled
// overwhelming majority — with tracing off this is a single branch).
func (k serverSink) SpanFor(baseSeq uint64) *trace.Span {
	return k.s.tracer.Lookup(baseSeq)
}

// Emit implements engine.Sink.
func (k serverSink) Emit(joiner int, r tuple.Result) {
	k.s.o.results.Shard(joiner).Inc()
	k.s.mu.Lock()
	p, ok := k.s.pending[r.BaseSeq]
	if ok {
		delete(k.s.pending, r.BaseSeq)
	}
	k.s.mu.Unlock()
	if !ok {
		return // session gone
	}
	p.sess.deliver(wire.Result{
		Seq:     p.localSeq,
		TS:      r.BaseTS,
		Key:     r.Key,
		Agg:     r.Agg,
		Matches: r.Matches,
	}, p.sp)
}

// Listen starts serving on addr and returns the bound address (useful with
// ":0"). Serve loops run in background goroutines; call Shutdown to stop.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := s.Serve(ln); err != nil {
		return nil, err
	}
	return ln.Addr(), nil
}

// Serve starts serving on an already-bound listener (Listen is the common
// TCP wrapper). It takes ownership of ln: Shutdown closes it.
func (s *Server) Serve(ln net.Listener) error {
	s.ln = ln
	s.startEngine()
	if s.cfg.AdminAddr != "" {
		admin, err := obs.ServeAdmin(s.cfg.AdminAddr, s.o.reg, func() any { return s.Statusz() },
			obs.Endpoint{Path: "/tracez", Handler: s.serveTracez},
			obs.Endpoint{Path: "/debug/flightrecorder", Handler: s.serveFlightRecorder},
			obs.Endpoint{Path: "/timeline", Handler: s.serveTimeline},
			obs.Endpoint{Path: "/healthz", Handler: s.serveHealthz},
			obs.Endpoint{Path: "/controlz", Handler: s.serveControlz},
			obs.Endpoint{Path: "/profilez", Handler: s.serveProfilez},
		)
		if err != nil {
			ln.Close()
			return fmt.Errorf("server: admin endpoint: %w", err)
		}
		s.admin = admin
	}
	if s.repl != nil {
		if err := s.repl.start(); err != nil {
			ln.Close()
			if s.admin != nil {
				s.admin.Close()
			}
			return fmt.Errorf("server: replication: %w", err)
		}
	}
	s.wg.Add(3)
	go s.ingestLoop()
	go s.acceptLoop()
	go s.samplerLoop()
	return nil
}

// serveTracez renders the completed-span ring: JSON by default, the Chrome
// trace-event format with ?format=chrome (load into speedscope/Perfetto).
func (s *Server) serveTracez(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		s.tracer.WriteChromeTrace(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.tracer.WriteTracez(w)
}

// serveFlightRecorder renders the flight recorder's event timeline on
// demand (the same document the incident auto-dump writes to disk).
func (s *Server) serveFlightRecorder(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.flight.WriteJSON(w, "on-demand")
}

// serveTimeline renders the telemetry timeline: every registered series at
// the requested resolution. ?series=a,b selects series, ?res= selects a
// retention tier (1s, 10s, 1m), ?since= drops points before a unix second.
func (s *Server) serveTimeline(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var series []string
	if v := q.Get("series"); v != "" {
		series = strings.Split(v, ",")
	}
	var since int64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			httpJSONError(w, fmt.Sprintf("bad since %q: %v", v, err), http.StatusBadRequest)
			return
		}
		since = n
	}
	doc, err := s.o.timeline.Query(series, q.Get("res"), since)
	if err != nil {
		httpJSONError(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}

// serveProfilez exposes the continuous profiler's ring (manifest, profile
// fetch, merged windows). 404 when profiling is disabled.
func (s *Server) serveProfilez(w http.ResponseWriter, r *http.Request) {
	if s.prof == nil {
		httpJSONError(w, "profiling disabled (start with a profile dir)", http.StatusNotFound)
		return
	}
	s.prof.ServeHTTP(w, r)
}

// incident routes one incident signal to both forensic sinks: the flight
// recorder's auto-dump (the control-plane timeline) and the profiler's
// out-of-cycle capture (where the cycles went during the bad minute). Both
// are rate-limited, asynchronous, and nil-safe.
func (s *Server) incident(reason string) {
	s.flight.AutoDump(reason)
	s.prof.CaptureNow(reason)
}

// httpJSONError writes an error as a JSON document so /timeline consumers
// (oijtop, scripts) never have to parse plain-text bodies.
func httpJSONError(w http.ResponseWriter, msg string, code int) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// AdminAddr returns the bound admin address, or nil when no admin endpoint
// was configured or the server is not listening yet.
func (s *Server) AdminAddr() net.Addr {
	if s.admin == nil {
		return nil
	}
	return s.admin.Addr()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		sess := newSession(s, conn)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		s.sessWG.Add(1)
		go func() {
			defer s.sessWG.Done()
			sess.run()
			s.mu.Lock()
			delete(s.sessions, sess)
			s.mu.Unlock()
		}()
	}
}

// ingestLoop is the single goroutine allowed to call Engine.Ingest. While
// the input is idle it heartbeats the engine so watermark-mode windows
// keep finalizing without fresh tuples (a request stream can go quiet with
// answers still pending).
func (s *Server) ingestLoop() {
	defer s.wg.Done()
	beat := time.NewTicker(2 * time.Millisecond)
	defer beat.Stop()
	for {
		// Apply any pending live resize before the next unit of work:
		// engines allow Resize only from the driver goroutine, and this
		// loop is the driver. Swap-to-zero keeps only the newest target
		// when the controller outpaces the loop.
		if n := s.resizeReq.Swap(0); n != 0 {
			if rz, ok := s.eng.(engine.Resizer); ok {
				rz.Resize(int(n))
			}
		}
		var req ingestReq
		var ok bool
		select {
		case req, ok = <-s.ingest:
			if !ok {
				return
			}
		case <-beat.C:
			s.eng.Heartbeat()
			if s.wal != nil {
				// Durability rides the heartbeat cadence (and fsyncs
				// here in the default "interval" sync mode).
				if err := s.wal.heartbeat(); err != nil {
					s.walErrs.Add(1)
				}
			}
			continue
		}
		if req.replFrame != nil {
			s.applyReplFrame(req.replFrame)
			continue
		}
		if req.promote {
			s.applyPromote()
			continue
		}
		if req.flush {
			// Every base this session sent before the flush frame
			// has been registered by now; ack once they are all
			// answered.
			go req.sess.ackFlush()
			continue
		}
		// Role gate at the funnel, not just admission: a primary fenced
		// with requests already queued must not ack them (the promoted
		// side's log is the history now), and a fenced node extending its
		// own WAL with probes would fork that history.
		if code, refused := s.replRefusal(); refused {
			s.o.replRefused.Inc()
			if req.sess != nil {
				req.sess.sendNackNonblock(req.localSeq, code)
				s.tracer.Abandon(req.sp)
			}
			continue
		}
		t := tuple.Tuple{TS: req.t.TS, Key: req.t.Key, Val: req.t.Val}
		if req.sess != nil {
			if d := s.cfg.RequestDeadline; d > 0 && time.Since(req.enq) > d {
				// The request went stale waiting in the funnel:
				// answer with a deadline NACK instead of queueing
				// work whose answer nobody is waiting for.
				s.o.deadlineRejected.Inc()
				s.flight.Record(trace.CompAdmission, trace.EvDeadlineNack,
					req.localSeq, uint64(time.Since(req.enq)))
				req.sess.sendNackNonblock(req.localSeq, wire.NackDeadline)
				s.tracer.Abandon(req.sp)
				continue
			}
			t.Side = tuple.Base
			t.Seq = s.nextGlobal
			t.Arrival = time.Now()
			s.nextGlobal++
			s.mu.Lock()
			s.pending[t.Seq] = pendingBase{sess: req.sess, localSeq: req.localSeq, sp: req.sp}
			s.mu.Unlock()
			req.sess.outstanding.Add(1)
			s.o.bases.Inc()
			if s.o.hotBases != nil {
				s.o.hotBases.Observe(uint64(t.Key))
			}
			if sp := req.sp; sp != nil {
				sp.Add(trace.StageQueueWait, time.Since(req.enq))
				// The request's durability cost is the WAL append most
				// recently in its path (base frames are not logged).
				sp.Add(trace.StageWALAppend, time.Duration(s.lastWALNS.Load()))
				sp.Seq = t.Seq
				s.tracer.Register(sp)
				sp.StampPushed()
			}
		} else {
			t.Side = tuple.Probe
			if s.memGuardSheds(req.t.TS) {
				continue
			}
			s.o.probes.Inc()
			s.probesIngested.Add(1)
			if s.o.hotProbes != nil {
				s.o.hotProbes.Observe(uint64(t.Key))
			}
			if s.wal != nil {
				var t0 time.Time
				traced := s.tracer.Enabled()
				if traced {
					t0 = time.Now()
				}
				if err := s.wal.append(req.t); err != nil {
					// Durability degraded, availability kept:
					// log once per incident via the error frame
					// path is overkill here; the counter lets
					// operators alert on it.
					s.walErrs.Add(1)
					s.flight.Record(trace.CompWAL, trace.EvWALError, uint64(s.walErrs.Load()), 0)
				}
				if traced {
					s.lastWALNS.Store(int64(time.Since(t0)))
				}
			}
		}
		s.eng.Ingest(t)
		s.served.Add(1)
	}
}

// bufferedProbes estimates the engine's live probe state: every probe
// handed to the engine minus every probe it has expired. Both sides are
// atomics, so the estimate is cheap enough to check per ingested probe.
func (s *Server) bufferedProbes() int64 {
	return s.probesIngested.Load() - s.eng.Stats().Evicted.Load()
}

// memGuardSheds is the memory watermark guard: it decides, per incoming
// probe, whether the tuple is shed to keep buffered state under
// MemCapProbes. Degradation is tiered — above the soft rung (memSoftPct
// percent of the cap, boot 75%, tightened live by the controller) only
// probes already in the oldest half of the retention horizon are shed
// (they expire soonest and contribute to the fewest future windows); at
// the cap every probe is shed until eviction catches up.
func (s *Server) memGuardSheds(ts tuple.Time) bool {
	memCap := s.cfg.MemCapProbes
	if memCap <= 0 {
		return false
	}
	buffered := s.bufferedProbes()
	switch {
	case buffered >= memCap:
		s.setMemLevel(2, buffered)
		s.o.memShedProbes.Inc()
		return true
	case buffered >= memCap*int64(s.memSoftPct.Load())/100:
		s.setMemLevel(1, buffered)
		if in := s.introspect(); in != nil && s.retention > 0 {
			if maxTS := in.MaxEventTS(); ts <= maxTS-s.retention/2 {
				s.o.memShedProbes.Inc()
				return true
			}
		}
		return false
	default:
		s.setMemLevel(0, buffered)
		return false
	}
}

// setMemLevel publishes the memory-pressure rung and, on a transition,
// records it to the flight recorder (escalations also trigger an incident
// dump). Ingest-loop only, so the load/store pair does not race.
func (s *Server) setMemLevel(level int32, buffered int64) {
	if s.memLevel.Load() == level {
		return
	}
	s.memLevel.Store(level)
	s.flight.Record(trace.CompMemory, trace.EvMemLevel, uint64(level), uint64(buffered))
	if level > 0 {
		s.incident("mem-pressure")
	}
}

// Shutdown stops accepting, disconnects every session, flushes the engine,
// and waits for all goroutines. Results still pending when their session
// disconnects are dropped — a client that wants every answer sends a flush
// frame and waits for the ack before closing.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()

	if s.ln != nil {
		s.ln.Close()
	}
	// Unblock every session reader (the ingest loop keeps draining, so a
	// reader blocked on the funnel progresses too), wait for them, and
	// only then close the funnel — no sender may remain when it closes.
	for _, sess := range sessions {
		sess.conn.SetReadDeadline(time.Now())
	}
	s.sessWG.Wait()
	// Replication stops after the sessions (its goroutines are the last
	// legal funnel senders) and before the funnel closes.
	if s.repl != nil {
		s.repl.stopAll()
	}
	close(s.ingest)
	close(s.stopSampler)
	// The ingest loop keeps pushing while it drains the closed funnel, and
	// the rings are single-producer — it must be gone before Drain's final
	// broadcast touches them.
	s.wg.Wait()
	s.eng.Drain()
	if s.admin != nil {
		s.admin.Close()
	}
	if s.wal != nil {
		s.wal.close()
	}
	// Last: a capture in flight may still be stamping flight sequences.
	s.prof.Close()
}

// WALErrors reports append failures since startup (0 without a WAL).
func (s *Server) WALErrors() int64 { return s.walErrs.Load() }

// WALStats reports recovery outcomes since startup: frames replayed into
// the engine, checksum-failed frames skipped, and torn or unsalvageable
// bytes truncated from segment tails. All zero without a WAL.
func (s *Server) WALStats() (recovered, skipped, truncatedBytes int64) {
	return s.walRecovered.Load(), s.walSkipped.Load(), s.walTruncated.Load()
}

// Served returns the number of tuples ingested over the network.
func (s *Server) Served() int64 { return s.served.Load() }

// Stats exposes the underlying engine statistics.
func (s *Server) Stats() *engine.Stats { return s.eng.Stats() }

// outMsg is one queued outgoing frame; sp (only ever set on results)
// carries the request's sampled span to the writer so the emit and
// tcp_write stages are stamped where they happen.
type outMsg struct {
	m  wire.Message
	sp *trace.Span
}

// session is one client connection.
type session struct {
	s    *Server
	conn net.Conn
	out  chan outMsg

	// nextLocal is owned by the session's reader goroutine: local
	// sequences are assigned in frame-arrival order before admission, so
	// a NACKed request still consumes the sequence number the client
	// assigned it and accepted requests stay aligned.
	nextLocal   uint64
	outstanding atomic.Int64

	closeOnce sync.Once
	evicted   atomic.Bool
	done      chan struct{}
}

func newSession(s *Server, conn net.Conn) *session {
	return &session{
		s:    s,
		conn: conn,
		out:  make(chan outMsg, s.cfg.ResultBuffer),
		done: make(chan struct{}),
	}
}

// deliver queues a result for the writer goroutine. The outstanding
// counter is decremented only after the result is queued, so a flush ack
// can never overtake the final answer it covers.
//
// A session whose buffer is full gets SlowConsumerGrace to drain; if it is
// still full after the grace the session is evicted and the result dropped,
// so one stuck client stalls delivery for at most one grace period instead
// of wedging the engine behind it (grace < 0 restores the legacy blocking
// behavior).
func (se *session) deliver(r wire.Result, sp *trace.Span) {
	defer se.outstanding.Add(-1)
	m := outMsg{m: wire.Message{Kind: wire.TagResult, Result: r}, sp: sp}
	grace := se.s.cfg.SlowConsumerGrace
	if grace < 0 {
		select {
		case se.out <- m:
		case <-se.done:
			se.s.tracer.Abandon(sp)
		}
		return
	}
	select {
	case se.out <- m:
		return
	case <-se.done:
		se.s.tracer.Abandon(sp)
		return
	default:
	}
	timer := time.NewTimer(grace)
	se.s.o.countAlloc(trace.StageEmit, 1, timerAllocBytes)
	defer timer.Stop()
	select {
	case se.out <- m:
	case <-se.done:
		se.s.tracer.Abandon(sp)
	case <-timer.C:
		se.evictSlow()
		se.s.tracer.Abandon(sp)
	}
}

// evictSlow force-closes a session that stopped draining: done stops new
// work and the connection close unblocks both its reader and a writer stuck
// in a send. Two detectors share it — the deliver grace timer and the
// writer's per-frame deadline — so the CAS makes each session count once.
func (se *session) evictSlow() {
	if se.evicted.CompareAndSwap(false, true) {
		se.s.o.slowEvicted.Inc()
		s := se.s
		s.flight.Record(trace.CompSession, trace.EvSlowEviction,
			uint64(s.o.slowEvicted.Load()), 0)
		s.incident("slow-consumer-eviction")
	}
	se.close()
	se.conn.Close()
}

// run services the connection until EOF or error. Teardown order matters:
// the done channel stops new work, the writer drains whatever is already
// queued (results, flush acks, protocol errors) to the still-open
// connection, and only then does the connection close.
func (se *session) run() {
	writerDone := make(chan struct{})
	go se.writeLoop(writerDone)
	defer func() {
		se.close()
		<-writerDone
		se.conn.Close()
	}()

	r := wire.NewReader(se.conn)
	for {
		m, err := r.Read()
		if err != nil {
			return // EOF and deadline errors are normal teardown paths
		}
		switch m.Kind {
		case wire.TagProbe:
			se.admitProbe(m.Tuple)
		case wire.TagBase:
			localSeq := se.nextLocal
			se.nextLocal++
			se.admitBase(m.Tuple, localSeq)
		case wire.TagBaseID:
			// The client chose the request id; the session-local counter
			// tracks past it so plain base frames interleaved on the same
			// session never collide with an explicit id.
			localSeq := m.Tuple.ID
			if localSeq >= se.nextLocal {
				se.nextLocal = localSeq + 1
			}
			se.admitBase(m.Tuple, localSeq)
		case wire.TagFlush:
			se.s.ingest <- ingestReq{sess: se, flush: true}
		default:
			se.sendError(errors.New("unexpected frame from client").Error())
			return
		}
	}
}

// admitProbe applies the admission policy to one probe tuple. Under
// "shed-probes" and "reject" a full funnel drops the probe (counted)
// instead of blocking the reader; under "block" the reader waits, which
// backpressures this client's TCP stream. The policy is read from the
// live atomic, so the controller's ladder steps take effect on the very
// next frame.
func (se *session) admitProbe(t wire.Tuple) {
	if _, refused := se.s.replRefusal(); refused {
		// Standby and fenced nodes take no writes: the replicated log is
		// the only ingest path, so a locally accepted probe would fork it.
		se.s.o.replRefused.Inc()
		return
	}
	req := ingestReq{t: t}
	if se.s.admission.Load() == control.AdmissionBlock {
		se.s.ingest <- req
		return
	}
	select {
	case se.s.ingest <- req:
	default:
		se.s.o.shedProbes.Inc()
		se.s.flight.Record(trace.CompAdmission, trace.EvAdmissionShed,
			uint64(se.s.o.shedProbes.Load()), 0)
	}
}

// admitBase applies the admission policy to one base request. Only the
// "reject" policy refuses requests: a full funnel answers with an overload
// NACK so the client can fail fast and back off; "block" and "shed-probes"
// let the request wait (requests are the product, probes are the fuel).
func (se *session) admitBase(t wire.Tuple, localSeq uint64) {
	if code, refused := se.s.replRefusal(); refused {
		// Typed refusal (not-primary or fenced) so a failover-aware client
		// rotates to the next address instead of timing out.
		se.s.o.replRefused.Inc()
		se.sendNack(localSeq, code)
		return
	}
	req := ingestReq{t: t, sess: se, localSeq: localSeq, enq: time.Now()}
	var t0 time.Time
	if se.s.tracer.Sample() {
		// Tagged at admission: the span rides the request through every
		// stage from here. The ingest stage is this goroutine's own work
		// — admission plus the funnel enqueue.
		req.sp = trace.NewSpan(localSeq, uint64(t.Key), int64(t.TS))
		se.s.o.countAlloc(trace.StageIngest, 1, spanAllocBytes)
		t0 = time.Now()
	}
	if se.s.admission.Load() != control.AdmissionReject {
		se.s.ingest <- req
		req.sp.Add(trace.StageIngest, time.Since(t0))
		return
	}
	select {
	case se.s.ingest <- req:
		req.sp.Add(trace.StageIngest, time.Since(t0))
	default:
		se.s.o.rejected.Inc()
		se.s.flight.Record(trace.CompAdmission, trace.EvAdmissionReject,
			uint64(se.s.o.rejected.Load()), 0)
		se.sendNack(localSeq, wire.NackOverload)
		se.s.tracer.Abandon(req.sp)
	}
}

// sendNack queues a NACK from the session's own reader goroutine; a full
// outgoing buffer backpressures the reader like any other frame.
func (se *session) sendNack(seq uint64, code byte) {
	select {
	case se.out <- outMsg{m: wire.Message{Kind: wire.TagNack, Nack: wire.Nack{Seq: seq, Code: code}}}:
	case <-se.done:
	}
}

// sendNackNonblock queues a NACK from the ingest goroutine. It must never
// block — a full session buffer would stall the shared funnel — so a NACK
// that does not fit is dropped and counted; the session is congested and
// headed for eviction anyway, and clients recover via read timeouts.
func (se *session) sendNackNonblock(seq uint64, code byte) {
	select {
	case se.out <- outMsg{m: wire.Message{Kind: wire.TagNack, Nack: wire.Nack{Seq: seq, Code: code}}}:
	default:
		se.s.o.nacksDropped.Inc()
	}
}

// ackFlush waits until the session has no outstanding requests, then
// echoes a flush frame.
func (se *session) ackFlush() {
	for se.outstanding.Load() > 0 {
		select {
		case <-se.done:
			return
		case <-time.After(time.Millisecond):
		}
	}
	select {
	case se.out <- outMsg{m: wire.Message{Kind: wire.TagFlush}}:
	case <-se.done:
	}
}

func (se *session) sendError(msg string) {
	select {
	case se.out <- outMsg{m: wire.Message{Kind: wire.TagError, Err: msg}}:
	case <-se.done:
	}
}

// writeMsg encodes one outgoing frame, bounding the time a stalled TCP
// peer can hold the writer: with a slow-consumer grace configured, every
// frame gets that long to make progress before the write fails.
func (se *session) writeMsg(w *wire.Writer, m wire.Message) error {
	if grace := se.s.cfg.SlowConsumerGrace; grace > 0 {
		se.conn.SetWriteDeadline(time.Now().Add(grace))
	}
	switch m.Kind {
	case wire.TagResult:
		return w.WriteResult(m.Result)
	case wire.TagFlush:
		return w.WriteFlush()
	case wire.TagError:
		return w.WriteError(m.Err)
	case wire.TagNack:
		return w.WriteNack(m.Nack)
	}
	return nil
}

// writeLoop serializes outgoing frames, flushing when the queue drains. A
// write error force-closes the session so its reader does not linger on a
// half-dead connection; a deadline-expired write means the peer stopped
// draining its TCP stream and counts as a slow-consumer eviction.
func (se *session) writeLoop(done chan struct{}) {
	defer close(done)
	fail := func(err error) {
		if errors.Is(err, os.ErrDeadlineExceeded) {
			se.evictSlow()
			return
		}
		se.close()
		se.conn.Close()
	}
	w := wire.NewWriter(se.conn)
	se.s.o.countAlloc(trace.StageTCPWrite, 1, wireWriterAllocBytes)
	// write encodes one frame, stamping a sampled result's last two stages
	// around it: emit (join end → this pickup) before, tcp_write after,
	// then the span is complete and retires to the /tracez ring.
	write := func(om outMsg) error {
		om.sp.StampWriterPickup()
		var t0 time.Time
		if om.sp != nil {
			t0 = time.Now()
		}
		err := se.writeMsg(w, om.m)
		if err == nil && len(se.out) == 0 {
			err = w.Flush()
		}
		if om.sp != nil {
			om.sp.Add(trace.StageTCPWrite, time.Since(t0))
			if err == nil {
				se.s.tracer.Complete(om.sp)
			} else {
				se.s.tracer.Abandon(om.sp)
			}
		}
		return err
	}
	for {
		select {
		case om := <-se.out:
			if err := write(om); err != nil {
				fail(err)
				return
			}
		case <-se.done:
			// Drain anything already queued (results, flush acks,
			// protocol errors), then stop.
			for {
				select {
				case om := <-se.out:
					if err := write(om); err != nil {
						return
					}
				default:
					w.Flush()
					return
				}
			}
		}
	}
}

// close marks the session done; the connection itself is closed by run()
// once the writer has drained.
func (se *session) close() {
	se.closeOnce.Do(func() {
		close(se.done)
	})
}
