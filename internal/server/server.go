// Package server exposes an online interval join over TCP, modelling the
// OpenMLDB serving path: clients stream probe data continuously and send
// base frames as feature requests; the server answers every base frame
// with its window aggregate over the shared join state.
//
// All sessions feed one engine through a single ingest goroutine (engines
// require a single ingester), so clients share state: a probe pushed by
// one connection is visible to every other connection's requests, exactly
// like rows in a shared feature store. Event time is likewise shared — the
// watermark follows the maximum timestamp over all clients.
//
// Protocol: see package wire. Every base frame is answered with exactly
// one result frame carrying a session-local sequence number (the order the
// session's base frames were received); a flush frame is echoed back once
// all of the session's outstanding requests have been answered.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"oij/internal/engine"
	"oij/internal/faultfs"
	"oij/internal/harness"
	"oij/internal/obs"
	"oij/internal/tuple"
	"oij/internal/wire"
)

// Config configures a Server.
type Config struct {
	// Algorithm is a harness engine variant (default scale-oij).
	Algorithm string
	// Engine carries window, lateness, aggregation, joiners, and mode.
	Engine engine.Config
	// IngestBuffer is the funnel channel depth (default 4096).
	IngestBuffer int
	// ResultBuffer is the per-session outgoing queue depth (default
	// 1024). A session that stops reading eventually backpressures the
	// whole engine — the deliberate flow-control of a single shared
	// state.
	ResultBuffer int
	// WALPath, when set, appends every ingested probe to a write-ahead
	// log (checksummed v2 frame format) and lets Recover rebuild the join
	// state after a restart. The log keeps at most two segments covering
	// the join's retention horizon.
	WALPath string
	// WALSegmentBytes is the rotation threshold (default 64 MiB).
	WALSegmentBytes int64
	// WALSync selects append durability: "interval" (default — fsync on
	// the heartbeat cadence), "always" (fsync before each append returns),
	// or "none" (flush to the OS, never fsync).
	WALSync string
	// WALFS overrides the filesystem the WAL writes through — the fault
	// injection seam of the crash tests. Nil means the real filesystem.
	WALFS faultfs.FS
	// AdminAddr, when set, serves the observability endpoint there:
	// /metrics (Prometheus text), /statusz (JSON), and /debug/pprof.
	// Use ":0" for an ephemeral port (AdminAddr() reports the binding).
	AdminAddr string
	// UtilEpoch is the live utilization sampling epoch (default 1s).
	UtilEpoch time.Duration
}

func (c Config) withDefaults() Config {
	if c.Algorithm == "" {
		c.Algorithm = harness.ScaleOIJ
	}
	if c.IngestBuffer <= 0 {
		c.IngestBuffer = 4096
	}
	if c.ResultBuffer <= 0 {
		c.ResultBuffer = 1024
	}
	if c.Engine.WatermarkEvery <= 0 {
		// Serving favours promptness over amortization: watermark per
		// tuple, so low-rate request streams finalize without waiting
		// for a 256-tuple batch. High-rate deployments raise this.
		c.Engine.WatermarkEvery = 1
	}
	if c.UtilEpoch <= 0 {
		c.UtilEpoch = time.Second
	}
	// Busy-time tracking feeds the live utilization gauges; its cost is
	// two clock reads per joiner batch, not per tuple.
	c.Engine.TrackBusy = true
	c.Engine = c.Engine.WithDefaults()
	return c
}

// pendingBase routes a result back to its session.
type pendingBase struct {
	sess     *session
	localSeq uint64
}

// ingestReq is one unit of work for the ingest goroutine: a probe
// (sess == nil), a base request (sess set), or a flush barrier (flush set;
// routed through the funnel so it observes every base queued before it).
type ingestReq struct {
	t     wire.Tuple
	sess  *session
	flush bool
}

// Server is a running join service.
type Server struct {
	cfg Config
	eng engine.Engine

	ln     net.Listener
	ingest chan ingestReq

	mu       sync.Mutex
	pending  map[uint64]pendingBase // engine (global) seq -> session route
	sessions map[*session]struct{}
	closed   bool

	nextGlobal uint64
	served     atomic.Int64
	wg         sync.WaitGroup // ingest + accept loops
	sessWG     sync.WaitGroup // session goroutines

	wal          *walWriter
	walErrs      atomic.Int64
	walRecovered atomic.Int64
	walSkipped   atomic.Int64
	walTruncated atomic.Int64
	started      bool

	o           *serverObs
	admin       *obs.Admin
	stopSampler chan struct{}
}

// New builds a server (not yet listening).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Engine.Validate(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:         cfg,
		ingest:      make(chan ingestReq, cfg.IngestBuffer),
		pending:     map[uint64]pendingBase{},
		sessions:    map[*session]struct{}{},
		stopSampler: make(chan struct{}),
	}
	eng, err := harness.Build(cfg.Algorithm, cfg.Engine, serverSink{s})
	if err != nil {
		return nil, err
	}
	s.eng = eng
	s.o = newServerObs(s, cfg.Engine.Joiners)
	if cfg.WALPath != "" {
		mode, err := parseWALSync(cfg.WALSync)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		w := cfg.Engine.Window
		retention := 2*w.Len() + w.Lateness
		s.wal, err = newWALWriter(cfg.WALFS, cfg.WALPath, cfg.WALSegmentBytes, retention, mode)
		if err != nil {
			return nil, err
		}
		// Tail bytes cut while sanitizing existing segments (torn v2
		// tails, unsalvageable v1 suffixes) count as truncated even if
		// Recover is never called.
		s.walTruncated.Add(s.wal.sanitized)
	}
	return s, nil
}

// startEngine starts the engine exactly once.
func (s *Server) startEngine() {
	if !s.started {
		s.started = true
		s.eng.Start()
	}
}

// Recover replays the write-ahead log into the engine, rebuilding the
// probe state a previous process had buffered. Call before Listen; returns
// the number of probes recovered. Recovery is salvage-oriented: a torn
// tail (crash mid-write) is truncated and checksum-failed frames are
// skipped, with both outcomes counted in WALStats and /metrics. Without a
// configured WALPath it is a no-op.
func (s *Server) Recover() (int, error) {
	if s.cfg.WALPath == "" {
		return 0, nil
	}
	s.startEngine()
	st, newest, err := replayWAL(s.wal.fs, s.cfg.WALPath, func(t wire.Tuple) {
		s.eng.Ingest(tuple.Tuple{TS: t.TS, Key: t.Key, Val: t.Val, Side: tuple.Probe})
	})
	s.walRecovered.Add(st.recovered)
	s.walSkipped.Add(st.skipped)
	s.walTruncated.Add(st.truncated)
	if newest > s.wal.maxTS {
		s.wal.maxTS = newest
	}
	return int(st.recovered), err
}

// serverSink routes engine results back to the issuing session.
type serverSink struct{ s *Server }

// Emit implements engine.Sink.
func (k serverSink) Emit(joiner int, r tuple.Result) {
	k.s.o.results.Shard(joiner).Inc()
	k.s.mu.Lock()
	p, ok := k.s.pending[r.BaseSeq]
	if ok {
		delete(k.s.pending, r.BaseSeq)
	}
	k.s.mu.Unlock()
	if !ok {
		return // session gone
	}
	p.sess.deliver(wire.Result{
		Seq:     p.localSeq,
		TS:      r.BaseTS,
		Key:     r.Key,
		Agg:     r.Agg,
		Matches: r.Matches,
	})
}

// Listen starts serving on addr and returns the bound address (useful with
// ":0"). Serve loops run in background goroutines; call Shutdown to stop.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.startEngine()
	if s.cfg.AdminAddr != "" {
		admin, err := obs.ServeAdmin(s.cfg.AdminAddr, s.o.reg, func() any { return s.Statusz() })
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("server: admin endpoint: %w", err)
		}
		s.admin = admin
	}
	s.wg.Add(3)
	go s.ingestLoop()
	go s.acceptLoop()
	go s.samplerLoop()
	return ln.Addr(), nil
}

// AdminAddr returns the bound admin address, or nil when no admin endpoint
// was configured or the server is not listening yet.
func (s *Server) AdminAddr() net.Addr {
	if s.admin == nil {
		return nil
	}
	return s.admin.Addr()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		sess := newSession(s, conn)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.sessions[sess] = struct{}{}
		s.mu.Unlock()
		s.sessWG.Add(1)
		go func() {
			defer s.sessWG.Done()
			sess.run()
			s.mu.Lock()
			delete(s.sessions, sess)
			s.mu.Unlock()
		}()
	}
}

// ingestLoop is the single goroutine allowed to call Engine.Ingest. While
// the input is idle it heartbeats the engine so watermark-mode windows
// keep finalizing without fresh tuples (a request stream can go quiet with
// answers still pending).
func (s *Server) ingestLoop() {
	defer s.wg.Done()
	beat := time.NewTicker(2 * time.Millisecond)
	defer beat.Stop()
	for {
		var req ingestReq
		var ok bool
		select {
		case req, ok = <-s.ingest:
			if !ok {
				return
			}
		case <-beat.C:
			s.eng.Heartbeat()
			if s.wal != nil {
				// Durability rides the heartbeat cadence (and fsyncs
				// here in the default "interval" sync mode).
				if err := s.wal.heartbeat(); err != nil {
					s.walErrs.Add(1)
				}
			}
			continue
		}
		if req.flush {
			// Every base this session sent before the flush frame
			// has been registered by now; ack once they are all
			// answered.
			go req.sess.ackFlush()
			continue
		}
		t := tuple.Tuple{TS: req.t.TS, Key: req.t.Key, Val: req.t.Val}
		if req.sess != nil {
			t.Side = tuple.Base
			t.Seq = s.nextGlobal
			t.Arrival = time.Now()
			s.nextGlobal++
			local := req.sess.nextLocal
			req.sess.nextLocal++
			s.mu.Lock()
			s.pending[t.Seq] = pendingBase{sess: req.sess, localSeq: local}
			s.mu.Unlock()
			req.sess.outstanding.Add(1)
			s.o.bases.Inc()
		} else {
			t.Side = tuple.Probe
			s.o.probes.Inc()
			if s.wal != nil {
				if err := s.wal.append(req.t); err != nil {
					// Durability degraded, availability kept:
					// log once per incident via the error frame
					// path is overkill here; the counter lets
					// operators alert on it.
					s.walErrs.Add(1)
				}
			}
		}
		s.eng.Ingest(t)
		s.served.Add(1)
	}
}

// Shutdown stops accepting, disconnects every session, flushes the engine,
// and waits for all goroutines. Results still pending when their session
// disconnects are dropped — a client that wants every answer sends a flush
// frame and waits for the ack before closing.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()

	if s.ln != nil {
		s.ln.Close()
	}
	// Unblock every session reader (the ingest loop keeps draining, so a
	// reader blocked on the funnel progresses too), wait for them, and
	// only then close the funnel — no sender may remain when it closes.
	for _, sess := range sessions {
		sess.conn.SetReadDeadline(time.Now())
	}
	s.sessWG.Wait()
	close(s.ingest)
	close(s.stopSampler)
	s.eng.Drain()
	s.wg.Wait()
	if s.admin != nil {
		s.admin.Close()
	}
	if s.wal != nil {
		s.wal.close()
	}
}

// WALErrors reports append failures since startup (0 without a WAL).
func (s *Server) WALErrors() int64 { return s.walErrs.Load() }

// WALStats reports recovery outcomes since startup: frames replayed into
// the engine, checksum-failed frames skipped, and torn or unsalvageable
// bytes truncated from segment tails. All zero without a WAL.
func (s *Server) WALStats() (recovered, skipped, truncatedBytes int64) {
	return s.walRecovered.Load(), s.walSkipped.Load(), s.walTruncated.Load()
}

// Served returns the number of tuples ingested over the network.
func (s *Server) Served() int64 { return s.served.Load() }

// Stats exposes the underlying engine statistics.
func (s *Server) Stats() *engine.Stats { return s.eng.Stats() }

// session is one client connection.
type session struct {
	s    *Server
	conn net.Conn
	out  chan wire.Message

	nextLocal   uint64 // owned by the ingest goroutine
	outstanding atomic.Int64

	closeOnce sync.Once
	done      chan struct{}
}

func newSession(s *Server, conn net.Conn) *session {
	return &session{
		s:    s,
		conn: conn,
		out:  make(chan wire.Message, s.cfg.ResultBuffer),
		done: make(chan struct{}),
	}
}

// deliver queues a result for the writer goroutine. The outstanding
// counter is decremented only after the result is queued, so a flush ack
// can never overtake the final answer it covers.
func (se *session) deliver(r wire.Result) {
	select {
	case se.out <- wire.Message{Kind: wire.TagResult, Result: r}:
	case <-se.done:
	}
	se.outstanding.Add(-1)
}

// run services the connection until EOF or error. Teardown order matters:
// the done channel stops new work, the writer drains whatever is already
// queued (results, flush acks, protocol errors) to the still-open
// connection, and only then does the connection close.
func (se *session) run() {
	writerDone := make(chan struct{})
	go se.writeLoop(writerDone)
	defer func() {
		se.close()
		<-writerDone
		se.conn.Close()
	}()

	r := wire.NewReader(se.conn)
	for {
		m, err := r.Read()
		if err != nil {
			return // EOF and deadline errors are normal teardown paths
		}
		switch m.Kind {
		case wire.TagProbe:
			se.s.ingest <- ingestReq{t: m.Tuple}
		case wire.TagBase:
			se.s.ingest <- ingestReq{t: m.Tuple, sess: se}
		case wire.TagFlush:
			se.s.ingest <- ingestReq{sess: se, flush: true}
		default:
			se.sendError(errors.New("unexpected frame from client").Error())
			return
		}
	}
}

// ackFlush waits until the session has no outstanding requests, then
// echoes a flush frame.
func (se *session) ackFlush() {
	for se.outstanding.Load() > 0 {
		select {
		case <-se.done:
			return
		case <-time.After(time.Millisecond):
		}
	}
	select {
	case se.out <- wire.Message{Kind: wire.TagFlush}:
	case <-se.done:
	}
}

func (se *session) sendError(msg string) {
	select {
	case se.out <- wire.Message{Kind: wire.TagError, Err: msg}:
	case <-se.done:
	}
}

// writeLoop serializes outgoing frames, flushing when the queue drains.
func (se *session) writeLoop(done chan struct{}) {
	defer close(done)
	w := wire.NewWriter(se.conn)
	for {
		select {
		case m := <-se.out:
			var err error
			switch m.Kind {
			case wire.TagResult:
				err = w.WriteResult(m.Result)
			case wire.TagFlush:
				err = w.WriteFlush()
			case wire.TagError:
				err = w.WriteError(m.Err)
			}
			if err != nil {
				return
			}
			if len(se.out) == 0 {
				if err := w.Flush(); err != nil {
					return
				}
			}
		case <-se.done:
			// Drain anything already queued (results, flush acks,
			// protocol errors), then stop.
			for {
				select {
				case m := <-se.out:
					var err error
					switch m.Kind {
					case wire.TagResult:
						err = w.WriteResult(m.Result)
					case wire.TagFlush:
						err = w.WriteFlush()
					case wire.TagError:
						err = w.WriteError(m.Err)
					}
					if err != nil {
						return
					}
				default:
					w.Flush()
					return
				}
			}
		}
	}
}

// close marks the session done; the connection itself is closed by run()
// once the writer has drained.
func (se *session) close() {
	se.closeOnce.Do(func() {
		close(se.done)
	})
}
