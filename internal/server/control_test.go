package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"oij/internal/control"
)

// ctlCfg is a controller-enabled server config: boots with 1 active joiner
// out of a 4-wide pool, fast epochs so tests converge quickly.
func ctlCfg() Config {
	cfg := baseCfg()
	cfg.Engine.Joiners = 1
	cfg.AdminAddr = "127.0.0.1:0"
	cfg.UtilEpoch = 10 * time.Millisecond
	cfg.Control = control.Config{
		Enabled:    true,
		MaxJoiners: 4,
	}
	return cfg
}

// TestControllerPoolSizedToCeiling: the engine pool is MaxJoiners wide and
// narrowed to the configured joiner count before Start.
func TestControllerPoolSizedToCeiling(t *testing.T) {
	srv, _ := startServer(t, ctlCfg())
	if got := srv.cfg.Engine.Joiners; got != 4 {
		t.Fatalf("pool = %d, want 4", got)
	}
	if got := srv.activeJoiners(); got != 1 {
		t.Fatalf("active = %d, want 1", got)
	}
	st := srv.Statusz()
	if st.Joiners != 4 || st.ActiveJoiners != 1 {
		t.Fatalf("statusz joiners=%d active=%d, want 4/1", st.Joiners, st.ActiveJoiners)
	}
	if st.Control == nil || st.Control.PoolJoiners != 4 {
		t.Fatalf("statusz control block = %+v", st.Control)
	}
}

// TestControlzOverrideResizesLive: a POST override flows sampler → atomic
// knob → ingest-loop resize → engine active count, and the decision shows
// up on /controlz and in the flight recorder.
func TestControlzOverrideResizesLive(t *testing.T) {
	srv, addr := startServer(t, ctlCfg())
	base := "http://" + srv.AdminAddr().String()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := http.Post(base+"/controlz?actuator=joiners&value=3", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("override status %d", resp.StatusCode)
	}

	// The ingest loop applies the pending resize on its next heartbeat
	// (2ms cadence); traffic is not required.
	deadline := time.Now().Add(2 * time.Second)
	for srv.activeJoiners() != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("active = %d, want 3", srv.activeJoiners())
		}
		time.Sleep(5 * time.Millisecond)
	}

	var doc struct {
		Enabled bool `json:"enabled"`
		State   *struct {
			Joiners   int                `json:"joiners"`
			Decisions []control.Decision `json:"decisions"`
		} `json:"state"`
	}
	get, err := http.Get(base + "/controlz")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	if err := json.NewDecoder(get.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Enabled || doc.State == nil || doc.State.Joiners != 3 {
		t.Fatalf("controlz doc %+v", doc)
	}
	found := false
	for _, d := range doc.State.Decisions {
		if d.Rule == "manual-override" && d.Actuator == "joiners" && d.New == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("manual-override decision missing from ring: %+v", doc.State.Decisions)
	}

	// Round-trip traffic still answers correctly on the resized engine.
	for i := 0; i < 50; i++ {
		c.SendProbe(uint64(i%7), int64(1000+i), 1)
	}
	seq, _ := c.SendBase(3, 5000, 0)
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	rs, err := c.RecvResults(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Seq != seq {
		t.Fatalf("results %+v", rs)
	}
}

// TestControlzFreezeAndAdmissionOverride: freeze flips the gauge and
// admission overrides retune the live knob the sessions read.
func TestControlzFreezeAndAdmissionOverride(t *testing.T) {
	srv, _ := startServer(t, ctlCfg())
	base := "http://" + srv.AdminAddr().String()

	post := func(q string) int {
		resp, err := http.Post(base+"/controlz?"+q, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("action=freeze"); code != http.StatusOK {
		t.Fatalf("freeze status %d", code)
	}
	if !srv.ctl.Frozen() {
		t.Fatal("controller not frozen")
	}
	// Overrides work while frozen (freeze stops the automation, not the
	// operator).
	if code := post("actuator=admission&value=2"); code != http.StatusOK {
		t.Fatalf("override status %d", code)
	}
	if got := srv.admission.Load(); got != control.AdmissionReject {
		t.Fatalf("admission knob = %d, want reject", got)
	}
	if got := srv.Statusz().Overload.Admission; got != "reject" {
		t.Fatalf("statusz admission = %q, want reject", got)
	}
	if code := post("action=unfreeze"); code != http.StatusOK {
		t.Fatalf("unfreeze status %d", code)
	}
	if srv.ctl.Frozen() {
		t.Fatal("controller still frozen")
	}
	// Bad requests are rejected with 400, not applied.
	if code := post("actuator=bogus&value=1"); code != http.StatusBadRequest {
		t.Fatalf("bogus actuator status %d", code)
	}
}

// TestControlzDisabled: without the controller the endpoint reports
// enabled=false rather than erroring.
func TestControlzDisabled(t *testing.T) {
	cfg := baseCfg()
	cfg.AdminAddr = "127.0.0.1:0"
	srv, _ := startServer(t, cfg)
	resp, err := http.Get("http://" + srv.AdminAddr().String() + "/controlz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Enabled bool `json:"enabled"`
		Active  int  `json:"active_joiners"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Enabled || doc.Active != 2 {
		t.Fatalf("doc %+v", doc)
	}
}

// TestControllerScalesUpUnderSyntheticPressure drives the server's
// controller with synthetic saturated signals (deterministic, unlike real
// load) and asserts the resulting scale-up lands on the engine via the
// ingest loop's marshalling slot. The sampler epoch is set long so its
// own idle-signal Steps do not reset the hold streak mid-test.
func TestControllerScalesUpUnderSyntheticPressure(t *testing.T) {
	cfg := ctlCfg()
	cfg.UtilEpoch = time.Hour
	srv, _ := startServer(t, cfg)
	now := time.Unix(1000, 0)
	sat := control.Signals{ActiveJoiners: 1, MeanUtil: 0.95, MaxUtil: 0.95}
	var decided []control.Decision
	for i := 0; i < 10 && len(decided) == 0; i++ {
		sat.Epoch = uint64(i + 1)
		now = now.Add(time.Second)
		decided = srv.ctl.Step(now, sat)
	}
	if len(decided) == 0 {
		t.Fatal("no scale-up decision under sustained saturation")
	}
	d := decided[0]
	if !strings.HasPrefix(d.Rule, "scale-up") || d.New != 2 {
		t.Fatalf("decision %+v, want scale-up to 2", d)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.activeJoiners() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("active = %d, want 2 after scale-up", srv.activeJoiners())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestControllerIgnoredForNonResizableEngine: key-oij has no resize path;
// the pool must stay at the configured width and the controller must run
// without the joiner actuator rather than fail.
func TestControllerIgnoredForNonResizableEngine(t *testing.T) {
	cfg := ctlCfg()
	cfg.Algorithm = "key-oij"
	cfg.Engine.Joiners = 2
	srv, _ := startServer(t, cfg)
	if got := srv.cfg.Engine.Joiners; got != 2 {
		t.Fatalf("pool = %d, want 2 (no inflation for non-resizable engines)", got)
	}
	if got := srv.activeJoiners(); got != 2 {
		t.Fatalf("active = %d, want 2", got)
	}
	if srv.ctl == nil {
		t.Fatal("controller missing")
	}
	// A joiners override must be rejected: there is no actuator.
	if _, err := srv.ctl.Override(time.Now(), "joiners", 3); err == nil {
		t.Fatal("joiners override accepted without a resize path")
	}
}

// TestControllerGaugesRegistered: the controller gauges land on /metrics
// so the timeline records them.
func TestControllerGaugesRegistered(t *testing.T) {
	srv, _ := startServer(t, ctlCfg())
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.AdminAddr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, name := range []string{"oij_active_joiners", "oij_admission_level", "oij_mem_soft_pct", "oij_ctl_enabled", "oij_ctl_decisions_total", "oij_ctl_frozen"} {
		if !strings.Contains(body, name) {
			t.Fatalf("metric %s missing from /metrics", name)
		}
	}
}
