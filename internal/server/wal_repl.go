package server

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sync"

	"oij/internal/wire"
)

// Replication-facing side of the WAL writer. The primary's log is the
// replication stream: every frame appended (data and epoch frames alike)
// occupies one *slot*, numbered from the first frame of the oldest
// segment on disk when the process started. A standby's replay position
// is a slot index, acks are slot indexes, and catch-up is "read my log
// from slot s" — there is no separate replication buffer to keep
// consistent with the log, because the log is the buffer.
//
// walFeed is the hand-off point between the single writer (the ingest
// goroutine) and the replication sources (one goroutine per attached
// standby): a small ring of the most recently appended frames for
// tailing, plus the segment→slot mapping catch-up needs to read older
// frames straight from the segment files. Sources read the files without
// blocking the writer; the rotation generation tells a reader its
// snapshot went stale mid-read (the rotation renamed the file under it),
// in which case it re-resolves the segment listing and retries — holding
// a pre-rotation listing would read frames that are no longer where the
// mapping says they are.

// walFeedRing is the tail ring capacity in frames (~340 KB). A standby
// lagging less than this never touches the segment files.
const walFeedRing = 8192

// errWALRotatedPast reports a requested slot that rotation has already
// deleted; the standby must be reset to the oldest available slot.
var errWALRotatedPast = errors.New("wal: slot rotated past retention")

// walFeed publishes appended frames to replication sources.
type walFeed struct {
	mu   sync.Mutex
	cond *sync.Cond
	// gen counts rotations: a source that resolved a slot to a segment
	// file re-checks gen after reading; a mismatch means the mapping moved.
	gen uint64
	// prevStart/curStart are the slot indexes of the first frame in
	// path.1 / path. hasPrev reports whether path.1 holds any frames.
	prevStart, curStart uint64
	hasPrev             bool
	// appended is the next slot to assign; ring holds the last
	// min(appended, walFeedRing) frames, slot s at (s % walFeedRing).
	appended uint64
	ring     []byte
	// err poisons the feed: the WAL dropped published frames (sustained
	// write failure overflow), so already-shipped slots may be rewritten
	// with different content. Sources must drop their standbys.
	err    error
	closed bool
}

func newWALFeed(prevStart, curStart, appended uint64, hasPrev bool) *walFeed {
	f := &walFeed{
		prevStart: prevStart,
		curStart:  curStart,
		hasPrev:   hasPrev,
		appended:  appended,
		ring:      make([]byte, walFeedRing*wire.WALFrameBytes),
	}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// publish records one appended frame (called by the writer, slot order).
func (f *walFeed) publish(frame []byte) {
	f.mu.Lock()
	off := (f.appended % walFeedRing) * wire.WALFrameBytes
	copy(f.ring[off:], frame)
	f.appended++
	f.mu.Unlock()
	f.cond.Broadcast()
}

// rotated records a segment rotation: the old current segment (now
// path.1) starts where it did, and the fresh current segment starts at
// the rotation point.
func (f *walFeed) rotated(newCurStart uint64) {
	f.mu.Lock()
	f.gen++
	f.prevStart = f.curStart
	f.curStart = newCurStart
	f.hasPrev = true
	f.mu.Unlock()
	f.cond.Broadcast()
}

// rewind retracts published-but-dropped slots and poisons the feed (see
// walWriter.dropOverflow).
func (f *walFeed) rewind(appended uint64, err error) {
	f.mu.Lock()
	f.appended = appended
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
	f.cond.Broadcast()
}

// commit returns the next slot to assign — the end of the log, and the
// catch-up target sent on welcome/heartbeat.
func (f *walFeed) commit() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appended
}

// oldest returns the first slot still readable.
func (f *walFeed) oldest() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.hasPrev {
		return f.prevStart
	}
	return f.curStart
}

// close wakes every waiting source; subsequent waits return immediately.
func (f *walFeed) close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.cond.Broadcast()
}

// wait blocks until the log has grown past slot s, the feed is poisoned,
// or the feed is closed. It returns false when the source should stop.
func (f *walFeed) wait(s uint64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.appended <= s && !f.closed && f.err == nil {
		f.cond.Wait()
	}
	return !f.closed && f.err == nil
}

// noteAppend assigns the next slot to frame: always counts it (the admin
// surfaces report log positions unconditionally) and publishes it when a
// feed is attached.
func (w *walWriter) noteAppend(frame []byte) {
	if w.feed != nil {
		w.feed.publish(frame) // keeps feed.appended == w.appended
	}
	w.appended.Add(1)
}

// noteDurable refreshes the durable-slot watermark after a flush. In
// sync mode "none" persistence timing is the kernel's business, so the
// written watermark is the durable one by the operator's own choice.
func (w *walWriter) noteDurable(synced bool) {
	if synced || w.sync == walSyncNever {
		w.durable.Store(w.slotsBase + uint64(w.wrote)/wire.WALFrameBytes)
	}
}

// slots reports the appended and durable slot watermarks.
func (w *walWriter) slots() (appended, durable uint64) {
	return w.appended.Load(), w.durable.Load()
}

// enableFeed attaches a replication feed. Must be called before the
// first append (construction time), from the ingest goroutine's owner.
func (w *walWriter) enableFeed() (*walFeed, error) {
	if w.feed != nil {
		return w.feed, nil
	}
	if w.prevSlots > 0 {
		// Catch-up reads frames at computed offsets; a legacy v1 previous
		// segment has a different frame size, so its slots cannot be
		// shipped. (The current segment is always v2 after sanitize.)
		if b, err := readSegmentImage(w.fs, w.path+".1"); err == nil &&
			(len(b) < wire.WALHeaderBytes || string(b[:wire.WALHeaderBytes]) != wire.WALMagicV2) {
			return nil, errors.New("wal: cannot replicate a legacy v1 segment; rotate it out first")
		}
	}
	w.feed = newWALFeed(0, w.prevSlots, w.slotsBase, w.prevSlots > 0)
	return w.feed, nil
}

// stampEpoch durably records a new fencing epoch in the log: an epoch
// frame is appended (occupying a slot, replicated like any other frame)
// and flushed to stable storage before returning, so a node never acts
// on an epoch its log could forget.
func (w *walWriter) stampEpoch(e uint64) error {
	if e <= w.epoch {
		return nil
	}
	w.stampEpochFrame(e)
	return w.flushBuf(w.sync != walSyncNever)
}

// stampEpochFrame appends the epoch frame without flushing (rotation
// re-stamps through this on fresh segments).
func (w *walWriter) stampEpochFrame(e uint64) {
	var frame [wire.WALFrameBytes]byte
	wire.EncodeWALEpochFrame(frame[:], e)
	w.buf = append(w.buf, frame[:]...)
	w.noteAppend(frame[:])
	if e > w.epoch {
		w.epoch = e
	}
}

// appendRaw logs one already-encoded WAL frame verbatim — the standby
// apply path, which must preserve the primary's bytes (checksums and
// all) so the replicated log is the primary's log. Flush policy matches
// append.
func (w *walWriter) appendRaw(frame []byte) error {
	w.buf = append(w.buf, frame...)
	if e, err := wire.DecodeWALEpochFrame(frame); err == nil {
		if e > w.epoch {
			w.epoch = e
		}
	} else if t, err := wire.DecodeWALFrame(frame); err == nil && t.TS > w.maxTS {
		w.maxTS = t.TS
	}
	w.noteAppend(frame)
	var err error
	switch {
	case w.sync == walSyncAlways:
		err = w.flushBuf(true)
	case len(w.buf) >= walFlushChunk:
		err = w.flushBuf(false)
	}
	if rerr := w.maybeRotate(); err == nil {
		err = rerr
	}
	return err
}

// replRead returns up to max frames starting at slot s, concatenated
// (each wire.WALFrameBytes long). A nil, nil return means slot s is not
// readable yet — the caller waits on the feed. Frames are returned
// verbatim, including checksum-failed ones: the standby's log must
// mirror the primary's.
//
// Only the tail ring is read under the feed lock. Older slots are read
// from the segment files with the lock released; the rotation generation
// is re-checked afterwards, and on a mismatch the segment listing is
// re-resolved and the read retried — the fix for catch-up racing a
// rotation (a stale listing maps slots to a renamed or deleted file).
func (w *walWriter) replRead(s uint64, max int) ([]byte, error) {
	f := w.feed
	if f == nil {
		return nil, errors.New("wal: no replication feed")
	}
	for attempt := 0; ; attempt++ {
		f.mu.Lock()
		if f.err != nil {
			err := f.err
			f.mu.Unlock()
			return nil, err
		}
		if s >= f.appended {
			f.mu.Unlock()
			return nil, nil
		}
		var ringLow uint64
		if f.appended > walFeedRing {
			ringLow = f.appended - walFeedRing
		}
		if s >= ringLow {
			n := int(f.appended - s)
			if n > max {
				n = max
			}
			out := make([]byte, 0, n*wire.WALFrameBytes)
			for i := 0; i < n; i++ {
				off := ((s + uint64(i)) % walFeedRing) * wire.WALFrameBytes
				out = append(out, f.ring[off:off+wire.WALFrameBytes]...)
			}
			f.mu.Unlock()
			return out, nil
		}
		oldest := f.curStart
		if f.hasPrev {
			oldest = f.prevStart
		}
		if s < oldest {
			f.mu.Unlock()
			return nil, fmt.Errorf("%w: want %d, oldest %d", errWALRotatedPast, s, oldest)
		}
		gen := f.gen
		path, start := w.path, f.curStart
		if f.hasPrev && s < f.curStart {
			path, start = w.path+".1", f.prevStart
		}
		f.mu.Unlock()

		b, err := readSegmentImage(w.fs, path)

		f.mu.Lock()
		stale := f.gen != gen
		f.mu.Unlock()
		// A vanished file is the rotation's rename racing this read (the
		// gen bump lands a moment after the rename) — same remedy.
		if stale || errors.Is(err, fs.ErrNotExist) {
			if attempt > 100 {
				return nil, fmt.Errorf("wal: catch-up starved by rotation at slot %d", s)
			}
			continue // the mapping moved under the read; re-resolve
		}
		if err != nil {
			return nil, err
		}
		off := wire.WALHeaderBytes + int(s-start)*wire.WALFrameBytes
		if off+wire.WALFrameBytes > len(b) {
			return nil, nil // appended but not flushed to disk yet: wait
		}
		end := off + max*wire.WALFrameBytes
		if limit := len(b) - (len(b)-wire.WALHeaderBytes)%wire.WALFrameBytes; end > limit {
			end = limit
		}
		return b[off:end], nil
	}
}

// readSegmentImage reads one segment file in full (a missing file is
// fs.ErrNotExist, which replRead's retry loop treats as a stale listing).
func readSegmentImage(fsys interface {
	Open(string) (io.ReadCloser, error)
}, path string) ([]byte, error) {
	rc, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	return io.ReadAll(rc)
}
