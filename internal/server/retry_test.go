package server

import (
	"errors"
	"net"
	"testing"
	"time"
)

func TestBackoffJitterBounds(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	for attempt := 0; attempt < 10; attempt++ {
		ceil := 10 * time.Millisecond << uint(attempt)
		if ceil > 80*time.Millisecond || ceil <= 0 {
			ceil = 80 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			d := b.Next(attempt)
			if d <= 0 || d > ceil {
				t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, ceil)
			}
		}
	}
}

func TestBackoffDefaultsAndOverflow(t *testing.T) {
	var b Backoff
	if d := b.Next(0); d <= 0 || d > 50*time.Millisecond {
		t.Fatalf("default first delay %v", d)
	}
	// Huge attempt numbers must not overflow past Max.
	if d := b.Next(400); d <= 0 || d > 5*time.Second {
		t.Fatalf("overflow delay %v", d)
	}
}

func TestBreakerTransitions(t *testing.T) {
	clock := time.Unix(0, 0)
	b := Breaker{Threshold: 3, Cooldown: time.Second}
	b.now = func() time.Time { return clock }

	if b.State() != "closed" || !b.Allow() {
		t.Fatal("new breaker not closed")
	}
	b.Failure()
	b.Failure()
	if !b.Allow() {
		t.Fatal("breaker opened below threshold")
	}
	b.Failure()
	if b.State() != "open" || b.Allow() {
		t.Fatal("breaker not open at threshold")
	}

	// Cooldown elapses: exactly one trial call passes.
	clock = clock.Add(time.Second)
	if !b.Allow() {
		t.Fatal("no trial after cooldown")
	}
	if b.State() != "half-open" {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent trial admitted")
	}

	// Failed trial re-opens for another full cooldown.
	b.Failure()
	if b.Allow() {
		t.Fatal("allowed right after failed trial")
	}
	clock = clock.Add(time.Second)
	if !b.Allow() {
		t.Fatal("no second trial")
	}
	b.Success()
	if b.State() != "closed" || !b.Allow() {
		t.Fatal("successful trial did not close breaker")
	}
}

func TestWrapDisconnectClassification(t *testing.T) {
	// Real kernel-level errors: dial a server, shut it down, keep using
	// the connection — the client must surface ErrDisconnected, not raw
	// EPIPE/ECONNRESET.
	s, addr := startServer(t, baseCfg())
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s.Shutdown()

	var got error
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c.SendBase(1, 1000, 0)
		if err := c.Barrier(); err != nil {
			got = err
			break
		}
		if _, err := c.RecvResults(time.Second); err != nil && !isTimeout(err) {
			got = err
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got == nil {
		t.Fatal("no error after server shutdown")
	}
	if !errors.Is(got, ErrDisconnected) {
		t.Fatalf("error %v (%T) does not wrap ErrDisconnected", got, got)
	}
	var de *DisconnectError
	if !errors.As(got, &de) || de.Err == nil {
		t.Fatalf("error %v does not expose the underlying cause", got)
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func TestDeadlineNotDisconnect(t *testing.T) {
	_, addr := startServer(t, baseCfg())
	c, err := DialWith(addr, DialOptions{ReadTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Nothing was sent, so Recv must time out — and a timeout is not a
	// disconnect.
	_, err = c.Recv()
	if err == nil {
		t.Fatal("Recv returned without timeout")
	}
	if errors.Is(err, ErrDisconnected) {
		t.Fatalf("timeout misclassified as disconnect: %v", err)
	}
}

func TestRetryClientReconnectsAcrossRestart(t *testing.T) {
	s1, addr := startServer(t, baseCfg())

	rc := NewRetryClient(addr, DialOptions{DialTimeout: time.Second, ReadTimeout: 5 * time.Second})
	rc.Backoff = Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond}
	rc.MaxAttempts = 20
	defer rc.Close()

	roundTrip := func(c *Client) error {
		if err := c.SendProbe(3, 1000, 2); err != nil {
			return err
		}
		if _, err := c.SendBase(3, 1001, 0); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		rs, err := c.RecvResults(5 * time.Second)
		if err != nil {
			return err
		}
		if len(rs) != 1 {
			return errors.New("missing result")
		}
		return nil
	}
	if err := rc.Do(roundTrip); err != nil {
		t.Fatalf("first round-trip: %v", err)
	}

	// Restart the server on the same port; the stale connection dies and
	// the retry client must reconnect and succeed against the new process.
	s1.Shutdown()
	s2, err := New(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	t.Cleanup(s2.Shutdown)

	if err := rc.Do(roundTrip); err != nil {
		t.Fatalf("round-trip after restart: %v", err)
	}
}

func TestRetryClientBreakerFailsFast(t *testing.T) {
	// Dead address: nothing is listening.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	rc := NewRetryClient(addr, DialOptions{DialTimeout: 100 * time.Millisecond})
	rc.Backoff = Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}
	rc.Breaker = Breaker{Threshold: 2, Cooldown: time.Hour}
	rc.MaxAttempts = 6
	var slept int
	rc.sleep = func(time.Duration) { slept++ }

	err = rc.Do(func(*Client) error { t.Fatal("fn ran without a connection"); return nil })
	if err == nil {
		t.Fatal("Do succeeded against a dead address")
	}
	// Attempts 1-2 fail to dial and trip the breaker; the remaining
	// attempts must fail fast without dialing (breaker open, hour-long
	// cooldown), surfacing ErrBreakerOpen as the final error.
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("final error %v, want ErrBreakerOpen", err)
	}
	if rc.Breaker.State() != "open" {
		t.Fatalf("breaker state %s", rc.Breaker.State())
	}
}

func TestRetryClientGivesUpOnAppError(t *testing.T) {
	_, addr := startServer(t, baseCfg())
	rc := NewRetryClient(addr, DialOptions{})
	defer rc.Close()
	calls := 0
	appErr := errors.New("bad input")
	err := rc.Do(func(*Client) error { calls++; return appErr })
	if !errors.Is(err, appErr) {
		t.Fatalf("err = %v", err)
	}
	if calls != 1 {
		t.Fatalf("application error retried %d times", calls)
	}
}

func TestRetryClientRetriesNacks(t *testing.T) {
	// A server that NACKs everything (1ns deadline) must trigger
	// backoff-and-retry, then exhaust attempts with the NACK as cause.
	cfg := baseCfg()
	cfg.RequestDeadline = time.Nanosecond
	_, addr := startServer(t, cfg)

	rc := NewRetryClient(addr, DialOptions{})
	rc.Backoff = Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}
	rc.MaxAttempts = 3
	defer rc.Close()
	calls := 0
	err := rc.Do(func(c *Client) error {
		calls++
		if _, err := c.SendBase(1, 1000, 0); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		_, err := c.RecvResults(5 * time.Second)
		return err
	})
	var nerr *NackError
	if !errors.As(err, &nerr) {
		t.Fatalf("err = %v, want NackError cause", err)
	}
	if calls != 3 {
		t.Fatalf("NACKed request tried %d times, want 3", calls)
	}
}
