// SLO health evaluation: every epoch tick the sampler re-scores a small
// set of burn-rate dimensions against operator thresholds and publishes a
// verdict that /healthz serves as 200 (healthy) or 503 (unhealthy) plus a
// JSON detail document. The inputs are trailing-window statistics over the
// telemetry timeline — the same series /timeline serves — so the health
// verdict is explainable by pointing at the curves that tripped it.
//
// Every state transition lands in the flight recorder (component "slo"):
// going unhealthy records the breached-dimension bitmask and triggers an
// incident dump, recovering records how long the outage lasted. A load
// balancer polling /healthz therefore leaves a correlated event trail.
package server

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"oij/internal/trace"
)

// Breached-dimension bits (the a-payload of an slo_unhealthy flight event).
const (
	sloBitP99 = 1 << iota
	sloBitShed
	sloBitLag
	sloBitMem
)

// sloShedSeries are the overload counters whose per-second rates sum into
// the shed/NACK dimension: every way the server refuses work.
var sloShedSeries = []string{
	"oij_admission_shed_probes_total:rate",
	"oij_admission_rejected_total:rate",
	"oij_deadline_rejected_total:rate",
	"oij_mem_shed_probes_total:rate",
}

// SLODimension is one scored health dimension in the /healthz document.
type SLODimension struct {
	Name      string  `json:"name"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Unit      string  `json:"unit"`
	Breached  bool    `json:"breached"`
}

// HealthStatus is the /healthz document: the verdict, the window it was
// computed over, and the per-dimension evidence.
type HealthStatus struct {
	Healthy          bool           `json:"healthy"`
	WindowSeconds    float64        `json:"window_seconds"`
	Epoch            uint64         `json:"epoch"`
	Transitions      uint64         `json:"transitions"`
	UnhealthySeconds float64        `json:"unhealthy_seconds,omitempty"`
	Dimensions       []SLODimension `json:"dimensions"`
}

// sloEvaluator scores the health dimensions once per epoch (sampler
// goroutine) and caches the verdict for /healthz, which must answer
// instantly even when the server is drowning — that is exactly when the
// load balancer needs the 503.
type sloEvaluator struct {
	s       *Server
	healthy atomic.Bool // read by the oij_slo_healthy gauge and /healthz

	mu             sync.Mutex
	cur            HealthStatus
	unhealthySince time.Time
	transitions    uint64
}

func newSLOEvaluator(s *Server) *sloEvaluator {
	e := &sloEvaluator{s: s}
	e.healthy.Store(true)
	e.cur = HealthStatus{Healthy: true}
	return e
}

// enabled reports whether any dimension has a threshold configured.
func (e *sloEvaluator) enabled() bool {
	c := e.s.cfg
	return c.SLOP99 > 0 || c.SLOShedRate > 0 || c.SLOWatermarkLag > 0 || c.SLOMemLevel > 0
}

// evaluate re-scores every configured dimension over the trailing SLO
// window and publishes the verdict. Sampler goroutine only.
func (e *sloEvaluator) evaluate(now time.Time, epoch uint64) {
	c := e.s.cfg
	tl := e.s.o.timeline
	window := c.SLOWindow
	st := HealthStatus{Healthy: true, WindowSeconds: window.Seconds(), Epoch: epoch}
	var mask uint64

	if c.SLOP99 > 0 {
		// Burn rate: the window average of the per-epoch interval p99, so
		// one slow epoch inside an otherwise-healthy window does not flap
		// the verdict.
		avg, _, ok := tl.WindowStats("oij_request_latency_seconds:p99", window, now)
		d := SLODimension{Name: "p99_latency", Threshold: c.SLOP99.Seconds(), Unit: "s"}
		if ok {
			d.Value = avg
			d.Breached = avg > d.Threshold
		}
		if d.Breached {
			mask |= sloBitP99
		}
		st.Dimensions = append(st.Dimensions, d)
	}
	if c.SLOShedRate > 0 {
		var sum float64
		var any bool
		for _, name := range sloShedSeries {
			if avg, _, ok := tl.WindowStats(name, window, now); ok {
				sum += avg
				any = true
			}
		}
		d := SLODimension{Name: "shed_rate", Threshold: c.SLOShedRate, Unit: "events/s"}
		if any {
			d.Value = sum
			d.Breached = sum > d.Threshold
		}
		if d.Breached {
			mask |= sloBitShed
		}
		st.Dimensions = append(st.Dimensions, d)
	}
	if c.SLOWatermarkLag > 0 {
		avg, _, ok := tl.WindowStats("oij_watermark_lag_us", window, now)
		d := SLODimension{Name: "watermark_lag", Threshold: float64(c.SLOWatermarkLag.Microseconds()), Unit: "us"}
		if ok {
			d.Value = avg
			d.Breached = avg > d.Threshold
		}
		if d.Breached {
			mask |= sloBitLag
		}
		st.Dimensions = append(st.Dimensions, d)
	}
	if c.SLOMemLevel > 0 {
		// The degradation rung is a step function, not a rate: any sample
		// at or above the configured rung inside the window breaches, and
		// health returns only once the window is clean again.
		_, max, ok := tl.WindowStats("oij_mem_pressure_level", window, now)
		d := SLODimension{Name: "mem_pressure", Threshold: float64(c.SLOMemLevel), Unit: "level"}
		if ok {
			d.Value = max
			d.Breached = max >= d.Threshold
		}
		if d.Breached {
			mask |= sloBitMem
		}
		st.Dimensions = append(st.Dimensions, d)
	}
	st.Healthy = mask == 0

	e.mu.Lock()
	was := e.cur.Healthy
	if was && !st.Healthy {
		e.unhealthySince = now
		e.transitions++
	} else if !was && st.Healthy {
		e.transitions++
	}
	if !st.Healthy && !e.unhealthySince.IsZero() {
		st.UnhealthySeconds = now.Sub(e.unhealthySince).Seconds()
	}
	st.Transitions = e.transitions
	e.cur = st
	e.mu.Unlock()
	e.healthy.Store(st.Healthy)

	if was && !st.Healthy {
		e.s.flight.Record(trace.CompSLO, trace.EvSLOUnhealthy, mask, epoch)
		e.s.incident("slo-unhealthy")
	} else if !was && st.Healthy {
		e.s.flight.Record(trace.CompSLO, trace.EvSLORecovered,
			uint64(now.Sub(e.unhealthySince)), epoch)
	}
}

// Status returns the most recent verdict.
func (e *sloEvaluator) Status() HealthStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.cur
	st.Dimensions = append([]SLODimension(nil), e.cur.Dimensions...)
	return st
}

// serveHealthz answers 200 while the SLO verdict is healthy and 503 while
// it is not, with the full dimension detail as the body either way. With no
// thresholds configured it is a plain liveness check (always 200).
func (s *Server) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	st := s.slo.Status()
	w.Header().Set("Content-Type", "application/json")
	if !st.Healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}
