package server

import (
	"net"
	"sync"
	"testing"
	"time"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/window"
	"oij/internal/wire"
)

func TestAdmissionValidation(t *testing.T) {
	cfg := baseCfg()
	cfg.Admission = "bogus"
	if _, err := New(cfg); err == nil {
		t.Fatal("bogus admission policy accepted")
	}
	for _, p := range []string{AdmissionBlock, AdmissionShedProbes, AdmissionReject} {
		cfg.Admission = p
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("policy %q rejected: %v", p, err)
		}
		s.Shutdown()
	}
}

// pipeListener serves in-memory net.Pipe connections. Pipes are unbuffered
// — a peer that stops reading blocks the server's very next write — so
// slow-consumer scenarios are deterministic, with no TCP socket buffers to
// fill first.
type pipeListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

func (l *pipeListener) dial(t *testing.T) net.Conn {
	t.Helper()
	c1, c2 := net.Pipe()
	select {
	case l.conns <- c2:
		return c1
	case <-time.After(5 * time.Second):
		t.Fatal("accept loop not accepting")
		return nil
	}
}

func startPipeServer(t *testing.T, cfg Config) (*Server, *pipeListener) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl := newPipeListener()
	if err := s.Serve(pl); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s, pl
}

// tinyCfg is sized so a handful of unread results wedges the pipeline:
// one joiner, a near-empty funnel, two-slot rings, one-slot session
// buffers. grace < 0 keeps the legacy block-forever delivery so admission
// behavior can be observed deterministically.
func tinyCfg(admission string, grace time.Duration) Config {
	return Config{
		Admission:         admission,
		SlowConsumerGrace: grace,
		IngestBuffer:      1,
		ResultBuffer:      1,
		Engine: engine.Config{
			Joiners:  1,
			QueueCap: 2,
			Window:   window.Spec{Pre: 10_000_000, Lateness: 1000},
			Agg:      agg.Sum,
		},
	}
}

// wedge connects a client that requests answers and never reads them, then
// waits until the pipeline is saturated end to end (funnel full). The
// writes run in a goroutine because an unread pipe eventually blocks the
// sender too; closing the returned conn releases it.
func wedge(t *testing.T, s *Server, pl *pipeListener) net.Conn {
	t.Helper()
	conn := pl.dial(t)
	go func() {
		w := wire.NewWriter(conn)
		for i := 0; i < 32; i++ {
			if w.WriteTuple(wire.Tuple{Base: true, TS: int64(1000 + i)}) != nil {
				return
			}
			if w.Flush() != nil {
				return
			}
		}
	}()
	// The pipeline is wedged once the ingest goroutine's push into a joiner
	// ring has parked: the unread session has blocked a joiner in delivery,
	// the ring behind it is full, and at most one funnel slot can still be
	// claimed before admission kicks in.
	deadline := time.Now().Add(10 * time.Second)
	for {
		stalls := s.introspect().Stalls()
		blocked := false
		for _, d := range stalls.BlockedFor {
			blocked = blocked || d > 0
		}
		if blocked {
			return conn
		}
		if time.Now().After(deadline) {
			t.Fatal("pipeline never wedged")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRejectPolicyNacks: with the pipeline wedged by a slow consumer, a
// second client's requests are answered with overload NACKs instead of
// queueing, and the transitions are counted.
func TestRejectPolicyNacks(t *testing.T) {
	s, pl := startPipeServer(t, tinyCfg(AdmissionReject, -1))
	slow := wedge(t, s, pl)
	defer slow.Close()

	conn := pl.dial(t)
	defer conn.Close()
	w, r := wire.NewWriter(conn), wire.NewReader(conn)
	// The funnel may still have one free slot when the ingest goroutine is
	// parked mid-push; the first base can claim it (and then waits forever
	// behind the wedge), but the next ones must be NACKed.
	for i := 0; i < 3; i++ {
		if err := w.WriteTuple(wire.Tuple{Base: true, TS: int64(2000 + i)}); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	m, err := r.Read()
	if err != nil {
		t.Fatalf("no NACK under reject policy with a wedged pipeline: %v", err)
	}
	if m.Kind != wire.TagNack || m.Nack.Code != wire.NackOverload {
		t.Fatalf("got frame %+v, want overload NACK", m)
	}
	st := s.Statusz()
	if st.Overload.Rejected < 1 {
		t.Fatalf("rejected counter = %d", st.Overload.Rejected)
	}
	if st.Overload.Admission != AdmissionReject {
		t.Fatalf("statusz admission = %q", st.Overload.Admission)
	}
	slow.Close() // unwedge so Shutdown (via cleanup) is quick
}

// TestShedProbesPolicy: with the pipeline wedged, probes are dropped and
// counted instead of blocking the reader.
func TestShedProbesPolicy(t *testing.T) {
	s, pl := startPipeServer(t, tinyCfg(AdmissionShedProbes, -1))
	slow := wedge(t, s, pl)
	defer slow.Close()

	conn := pl.dial(t)
	defer conn.Close()
	w := wire.NewWriter(conn)
	for i := 0; i < 8; i++ {
		if err := w.WriteTuple(wire.Tuple{TS: int64(3000 + i)}); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Statusz().Overload.ShedProbes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no probes shed under shed-probes policy")
		}
		time.Sleep(time.Millisecond)
	}
	slow.Close()
}

// TestRequestDeadlineNack: a deadline so tight every request goes stale in
// the funnel means every request is NACKed with the deadline code — and a
// flush barrier still acks, because a NACKed request is not outstanding.
func TestRequestDeadlineNack(t *testing.T) {
	cfg := baseCfg()
	cfg.RequestDeadline = time.Nanosecond
	s, addr := startServer(t, cfg)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	seq, _ := c.SendBase(7, 1000, 0)
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	sawNack := false
	for {
		m, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind == wire.TagNack {
			if m.Nack.Seq != seq || m.Nack.Code != wire.NackDeadline {
				t.Fatalf("nack = %+v want seq %d deadline", m.Nack, seq)
			}
			sawNack = true
			continue
		}
		if m.Kind == wire.TagFlush {
			break
		}
		t.Fatalf("unexpected frame kind %d", m.Kind)
	}
	if !sawNack {
		t.Fatal("request not NACKed under 1ns deadline")
	}
	if got := s.Statusz().Overload.DeadlineRejected; got < 1 {
		t.Fatalf("deadline counter = %d", got)
	}
}

// TestSlowReaderEviction (satellite): a client that stops draining Recv
// must not stall other sessions' results or Shutdown — after the grace
// period the slow session is evicted and counted while a healthy client
// keeps getting answers.
func TestSlowReaderEviction(t *testing.T) {
	cfg := baseCfg()
	cfg.ResultBuffer = 1
	cfg.SlowConsumerGrace = 200 * time.Millisecond
	s, pl := startPipeServer(t, cfg)

	slow := pl.dial(t)
	defer slow.Close()
	go func() {
		sw := wire.NewWriter(slow)
		for i := 0; i < 16; i++ {
			if sw.WriteTuple(wire.Tuple{Base: true, TS: int64(1000 + i)}) != nil {
				return
			}
			if sw.Flush() != nil {
				return
			}
		}
	}()
	// Never read: the session's one-slot buffer fills and delivery stalls.

	// A healthy client must keep round-tripping while the slow one decays.
	fast := NewClient(pl.dial(t))
	defer fast.Close()
	evictDeadline := time.Now().Add(10 * time.Second)
	for {
		fast.SendProbe(9, 5000, 2)
		fast.SendBase(9, 6000, 0)
		if err := fast.Barrier(); err != nil {
			t.Fatal(err)
		}
		rs, err := fast.RecvResults(5 * time.Second)
		if err != nil {
			t.Fatalf("healthy client starved: %v", err)
		}
		if len(rs) != 1 {
			t.Fatalf("healthy client got %d results", len(rs))
		}
		if s.Statusz().Overload.SlowSessionsEvicted >= 1 {
			break
		}
		if time.Now().After(evictDeadline) {
			t.Fatal("slow session never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Shutdown must complete promptly despite the (now evicted) slow session.
	done := make(chan struct{})
	go func() {
		s.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("Shutdown stalled by slow reader")
	}
}

// TestMemoryGuard: buffered probe state is capped; once requests advance
// the watermark and eviction reclaims the old window, fresh probes are
// admitted again (shedding stops — the degradation is reversible).
func TestMemoryGuard(t *testing.T) {
	cfg := Config{
		MemCapProbes: 64,
		Engine: engine.Config{
			Joiners: 1,
			Window:  window.Spec{Pre: 1000, Lateness: 10},
			Agg:     agg.Sum,
		},
	}
	s, addr := startServer(t, cfg)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Flood far past the cap within one window.
	for i := 0; i < 256; i++ {
		c.SendProbe(1, int64(1000+i), 1)
	}
	c.SendBase(1, 1500, 0)
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecvResults(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := s.Statusz()
	if st.Overload.MemShedProbes == 0 {
		t.Fatalf("memory guard never shed: %+v", st.Overload)
	}
	if st.Overload.BufferedProbes > 64+1 {
		t.Fatalf("buffered probes %d exceed cap", st.Overload.BufferedProbes)
	}

	// Advance event time far beyond the retention horizon via a request
	// (requests are never shed, so they always advance the watermark),
	// wait for eviction to reclaim the window, then verify fresh probes
	// are admitted again.
	shedBefore := st.Overload.MemShedProbes
	c.SendBase(1, 1_000_000, 0)
	c.Barrier()
	if _, err := c.RecvResults(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		probesBefore := s.Statusz().Probes
		c.SendProbe(1, 1_000_100, 1)
		c.Flush()
		time.Sleep(20 * time.Millisecond)
		st = s.Statusz()
		if st.Probes > probesBefore {
			break // admitted: guard recovered
		}
		if time.Now().After(deadline) {
			t.Fatalf("memory guard never recovered: %+v", st.Overload)
		}
	}
	_ = shedBefore
}

// TestSessionLocalSeqWithNacks: NACKed requests consume session-local
// sequence numbers, so the sequences of later accepted requests still
// match what the client assigned.
func TestSessionLocalSeqWithNacks(t *testing.T) {
	cfg := baseCfg()
	cfg.RequestDeadline = time.Nanosecond
	_, addr := startServer(t, cfg)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var seqs []uint64
	for i := 0; i < 3; i++ {
		seq, _ := c.SendBase(1, int64(1000+i), 0)
		seqs = append(seqs, seq)
	}
	c.Barrier()
	got := map[uint64]bool{}
	for {
		m, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind == wire.TagFlush {
			break
		}
		if m.Kind != wire.TagNack {
			t.Fatalf("expected NACKs only, got kind %d", m.Kind)
		}
		got[m.Nack.Seq] = true
	}
	for _, want := range seqs {
		if !got[want] {
			t.Fatalf("seq %d not NACKed (got %v)", want, got)
		}
	}
}

// TestConcurrentSlowAndFastSessions runs several healthy sessions against
// several wedged ones under -race: results must keep flowing, evictions
// must happen, and shutdown must stay clean.
func TestConcurrentSlowAndFastSessions(t *testing.T) {
	cfg := baseCfg()
	cfg.ResultBuffer = 1
	cfg.SlowConsumerGrace = 100 * time.Millisecond
	s, pl := startPipeServer(t, cfg)

	for i := 0; i < 3; i++ {
		conn := pl.dial(t)
		defer conn.Close()
		go func() {
			w := wire.NewWriter(conn)
			for k := 0; k < 8; k++ {
				if w.WriteTuple(wire.Tuple{Base: true, TS: int64(1000 + k)}) != nil {
					return
				}
				if w.Flush() != nil {
					return
				}
			}
		}()
	}

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		c := NewClient(pl.dial(t))
		wg.Add(1)
		go func(id int, c *Client) {
			defer wg.Done()
			defer c.Close()
			for r := 0; r < 20; r++ {
				c.SendProbe(uint64(id), int64(2000+r), 1)
				c.SendBase(uint64(id), int64(2001+r), 0)
				if err := c.Barrier(); err != nil {
					errs <- err
					return
				}
				if _, err := c.RecvResults(10 * time.Second); err != nil {
					errs <- err
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Statusz().Overload.SlowSessionsEvicted < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("evictions = %d, want 3", s.Statusz().Overload.SlowSessionsEvicted)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
