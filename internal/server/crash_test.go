package server

import (
	"math"
	"testing"
	"time"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/faultfs"
	"oij/internal/harness"
	"oij/internal/refjoin"
	"oij/internal/tuple"
	"oij/internal/window"
	"oij/internal/wire"
)

// The crash-point harness: a scripted ingest runs against the injectable
// filesystem, the process is "killed" at the Nth filesystem operation (for
// every N), recovery replays what survived, and a fresh engine fed the
// survivors must answer byte-equivalently to the refjoin oracle evaluated
// on the same surviving prefix. Values are small integers so sums are
// exact under any accumulation order and "byte-equivalent" means
// Float64bits equality.

// crashWindow is sized so the scripted disorder (15µs) stays inside
// lateness and no probe is ever evicted before the queries run.
func crashWindow() window.Spec {
	return window.Spec{Pre: 500, Fol: 0, Lateness: 50}
}

// crashScript is the deterministic ingest the matrix replays: probes only
// (the WAL's content), with mild disorder and key spread.
func crashScript(n int) []wire.Tuple {
	out := make([]wire.Tuple, n)
	for i := range out {
		ts := tuple.Time(1000 + 10*i)
		if i%5 == 3 {
			ts -= 15
		}
		out[i] = wire.Tuple{TS: ts, Key: tuple.Key(i%4 + 1), Val: float64(i%7 + 1)}
	}
	return out
}

// crashQueries are the base requests answered after recovery.
func crashQueries() []tuple.Tuple {
	var out []tuple.Tuple
	for i, key := range []tuple.Key{1, 2, 3, 4, 1, 2} {
		out = append(out, tuple.Tuple{
			Side: tuple.Base, Seq: uint64(i), Key: key,
			TS: tuple.Time(1200 + 40*i),
		})
	}
	return out
}

// runWALScript drives the WAL writer over the script, ignoring append and
// heartbeat errors exactly like the serving path does (durability
// degraded, availability kept). It never closes the writer: the process
// dies at whatever the armed fault dictates.
func runWALScript(fs *faultfs.Mem, probes []wire.Tuple, sync walSyncMode) {
	w, err := newWALWriter(fs, "wal", 1<<20, 1_000_000, sync)
	if err != nil {
		return // injected failure during open: nothing was logged
	}
	for i, p := range probes {
		w.append(p)
		if sync != walSyncAlways && i%7 == 6 {
			w.heartbeat()
		}
	}
}

// replayInto collects the surviving WAL content.
func replayInto(t *testing.T, fs faultfs.FS) ([]wire.Tuple, walStats) {
	t.Helper()
	var survived []wire.Tuple
	st, _, err := replayWAL(fs, "wal", func(tp wire.Tuple) { survived = append(survived, tp) })
	if err != nil {
		t.Fatal(err)
	}
	return survived, st
}

// answer runs the surviving probes plus the scripted queries through an
// engine built by name and returns the results keyed by base seq.
func answer(t *testing.T, algorithm string, joiners int, mode engine.EmitMode, survived []wire.Tuple) map[uint64]tuple.Result {
	t.Helper()
	sink := &engine.CollectSink{}
	eng, err := harness.Build(algorithm, engine.Config{
		Joiners: joiners, Window: crashWindow(), Agg: agg.Sum, Mode: mode,
	}, sink)
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	for _, p := range survived {
		eng.Ingest(tuple.Tuple{Side: tuple.Probe, TS: p.TS, Key: p.Key, Val: p.Val})
	}
	for _, q := range crashQueries() {
		eng.Ingest(q)
	}
	eng.Drain()
	return sink.ByBaseSeq()
}

// oracleInput rebuilds the oracle's view of the run: the surviving probes
// in log order, then the queries (the ingest order answer uses).
func oracleInput(survived []wire.Tuple) []tuple.Tuple {
	var in []tuple.Tuple
	for _, p := range survived {
		in = append(in, tuple.Tuple{Side: tuple.Probe, TS: p.TS, Key: p.Key, Val: p.Val})
	}
	return append(in, crashQueries()...)
}

// assertByteEqual compares engine answers against oracle results bit for
// bit.
func assertByteEqual(t *testing.T, ctx string, got map[uint64]tuple.Result, want []tuple.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, oracle has %d", ctx, len(got), len(want))
	}
	for _, w := range want {
		g, ok := got[w.BaseSeq]
		if !ok {
			t.Fatalf("%s: missing result for base seq %d", ctx, w.BaseSeq)
		}
		if g.Matches != w.Matches || math.Float64bits(g.Agg) != math.Float64bits(w.Agg) {
			t.Fatalf("%s: base seq %d: got (agg=%v matches=%d), oracle (agg=%v matches=%d)",
				ctx, w.BaseSeq, g.Agg, g.Matches, w.Agg, w.Matches)
		}
	}
}

// assertPrefix checks that the survivors are a bitwise prefix of the
// script — the WAL's fundamental crash contract: it may lose a suffix,
// never reorder, corrupt, or invent.
func assertPrefix(t *testing.T, ctx string, survived, script []wire.Tuple) {
	t.Helper()
	if len(survived) > len(script) {
		t.Fatalf("%s: recovered %d frames from a %d-frame script", ctx, len(survived), len(script))
	}
	for i, p := range survived {
		s := script[i]
		if p.Base || p.TS != s.TS || p.Key != s.Key || math.Float64bits(p.Val) != math.Float64bits(s.Val) {
			t.Fatalf("%s: frame %d diverged: got %+v want %+v", ctx, i, p, s)
		}
	}
}

// TestCrashPointRecoveryMatrix is the satellite matrix: for every
// filesystem operation N of a scripted ingest, and for every fault flavor
// (hard error, short write, silent crash), kill the run at operation N,
// recover, and check (a) the log's prefix contract and (b) byte-equal
// answers between a recovered engine and the refjoin oracle on the
// surviving prefix. "always" runs additionally lose power (only fsynced
// bytes survive); "interval" runs model a process kill where the OS page
// cache survives.
func TestCrashPointRecoveryMatrix(t *testing.T) {
	script := crashScript(36)

	type fault struct {
		name string
		arm  func(*faultfs.Mem, int)
	}
	faults := []fault{
		{"fail", func(m *faultfs.Mem, n int) { m.FailAt(n) }},
		{"short", func(m *faultfs.Mem, n int) { m.ShortWriteAt(n) }},
		{"crash", func(m *faultfs.Mem, n int) { m.CrashAt(n) }},
	}

	for _, sync := range []walSyncMode{walSyncAlways, walSyncInterval} {
		// Dry run to size the sweep: every op index is a crash point.
		clean := faultfs.NewMem()
		runWALScript(clean, script, sync)
		ops := clean.Ops()
		if ops < 5 {
			t.Fatalf("sync=%s: dry run took only %d ops — matrix degenerate", sync, ops)
		}

		for _, f := range faults {
			for k := 1; k <= ops; k++ {
				ctx := "sync=" + sync.String() + "/" + f.name + "/op=" + itoa(k)
				m := faultfs.NewMem()
				f.arm(m, k)
				runWALScript(m, script, sync)
				if sync == walSyncAlways {
					// fsync-on-ack's promise is power-loss durability.
					m.KillPower()
				}

				survived, st := replayInto(t, m)
				if st.skipped != 0 {
					t.Fatalf("%s: %d frames failed checksum with no corruption injected", ctx, st.skipped)
				}
				assertPrefix(t, ctx, survived, script)

				// Arrival semantics, single joiner: deterministic, so the
				// recovered engine must match the oracle bit for bit.
				got := answer(t, harness.KeyOIJ, 1, engine.OnArrival, survived)
				want := refjoin.Arrival(oracleInput(survived), crashWindow(), agg.Sum)
				assertByteEqual(t, ctx, got, want)

				// Sampled points also go through the parallel watermark
				// path: exact event-time semantics are deterministic
				// regardless of joiner interleaving.
				if k%8 == 0 {
					got = answer(t, harness.ScaleOIJ, 3, engine.OnWatermark, survived)
					want = refjoin.EventTime(oracleInput(survived), crashWindow(), agg.Sum)
					assertByteEqual(t, ctx+"/watermark", got, want)
				}
			}
		}
	}
}

// itoa avoids pulling strconv into the test just for context strings.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestCrashRecoveryEndToEnd drives the full server path on the injectable
// filesystem: stream probes over TCP with fsync-on-ack, lose power the
// moment the barrier acks, recover in a second server, and require the
// answers to match the oracle over the complete script — with sync=always
// every acknowledged probe must survive.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	m := faultfs.NewMem()
	cfg := baseCfg()
	cfg.Engine.Window = crashWindow()
	cfg.Engine.Joiners = 1
	cfg.WALPath = "wal"
	cfg.WALFS = m
	cfg.WALSync = "always"

	script := crashScript(24)

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c1, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range script {
		c1.SendProbe(p.Key, p.TS, p.Val)
	}
	c1.Barrier()
	if _, err := c1.RecvResults(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The barrier acked: every probe has been appended and fsynced. Pull
	// the plug before any orderly shutdown.
	m.KillPower()
	c1.Close()
	s1.Shutdown()

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(script) {
		t.Fatalf("recovered %d of %d acknowledged probes", n, len(script))
	}
	addr2, err := s2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown()

	c2, err := Dial(addr2.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	queries := crashQueries()
	for _, q := range queries {
		c2.SendBase(q.Key, q.TS, 0)
	}
	c2.Barrier()
	rs, err := c2.RecvResults(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(queries) {
		t.Fatalf("%d answers for %d queries", len(rs), len(queries))
	}

	var in []tuple.Tuple
	for _, p := range script {
		in = append(in, tuple.Tuple{Side: tuple.Probe, TS: p.TS, Key: p.Key, Val: p.Val})
	}
	want := refjoin.Arrival(append(in, queries...), crashWindow(), agg.Sum)
	for i, r := range rs {
		w := want[i]
		if r.Matches != w.Matches || math.Float64bits(r.Agg) != math.Float64bits(w.Agg) {
			t.Fatalf("query %d: got (agg=%v matches=%d), oracle (agg=%v matches=%d)",
				i, r.Agg, r.Matches, w.Agg, w.Matches)
		}
	}
}
