package server

import (
	"encoding/json"
	"os"
	"sync"
	"testing"
	"time"

	"oij/internal/trace"
	"oij/internal/wire"
)

// TestTraceEndToEnd is the tracing acceptance test: with sampling on, a
// request served over real TCP leaves a complete span on /tracez carrying
// all eight stage deltas, correlated to the client's request ID, and the
// Chrome export renders the same spans.
func TestTraceEndToEnd(t *testing.T) {
	cfg, _ := walCfg(t)
	cfg.AdminAddr = "127.0.0.1:0"
	cfg.TraceSampleN = 1
	srv, addr := startServer(t, cfg)
	base := "http://" + srv.AdminAddr().String()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const requests = 40
	var seqs []uint64
	for i := 0; i < requests; i++ {
		for p := 0; p < 4; p++ {
			c.SendProbe(uint64(i%5), int64(1000+i*10+p), 1)
		}
		seq, err := c.SendBase(uint64(i%5), int64(1000+i*10), 0)
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecvResults(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	var doc trace.TracezDoc
	if err := json.Unmarshal([]byte(scrape(t, base+"/tracez")), &doc); err != nil {
		t.Fatalf("tracez JSON: %v", err)
	}
	if doc.SampleEvery != 1 {
		t.Fatalf("sample_every = %d", doc.SampleEvery)
	}
	if doc.Completed != requests {
		t.Fatalf("completed = %d, want %d", doc.Completed, requests)
	}
	if doc.ActiveSpans != 0 {
		t.Fatalf("active spans leaked: %d", doc.ActiveSpans)
	}
	if len(doc.Spans) != requests {
		t.Fatalf("ring holds %d spans, want %d", len(doc.Spans), requests)
	}

	known := map[uint64]bool{}
	for _, s := range seqs {
		known[s] = true
	}
	stages := []string{"ingest", "queue_wait", "dispatch", "probe", "aggregate", "emit", "wal_append", "tcp_write"}
	complete := 0
	for _, sp := range doc.Spans {
		if !sp.Complete {
			continue
		}
		complete++
		if !known[sp.ReqID] {
			t.Fatalf("span req_id %d does not match any client-issued request ID", sp.ReqID)
		}
		if sp.Joiner < 0 {
			t.Fatalf("complete span never dispatched: %+v", sp)
		}
		if len(sp.Stages) != len(stages) {
			t.Fatalf("span has %d stages, want %d: %+v", len(sp.Stages), len(stages), sp.Stages)
		}
		for _, name := range stages {
			if _, ok := sp.Stages[name]; !ok {
				t.Fatalf("span missing stage %q: %+v", name, sp.Stages)
			}
		}
		// Stages that cross a goroutine hand-off or a syscall cannot be
		// zero; wal_append reflects the probe appends that preceded the
		// request through the ingest loop.
		for _, name := range []string{"queue_wait", "emit", "tcp_write", "wal_append"} {
			if sp.Stages[name] <= 0 {
				t.Fatalf("stage %q not measured: %+v", name, sp.Stages)
			}
		}
		if sp.TotalNS <= 0 {
			t.Fatalf("empty span total: %+v", sp)
		}
	}
	if complete == 0 {
		t.Fatal("no complete spans on /tracez")
	}

	// The same ring in Chrome trace-event form: 8 "X" events per span.
	var chrome struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TID  uint64  `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(scrape(t, base+"/tracez?format=chrome")), &chrome); err != nil {
		t.Fatalf("chrome trace JSON: %v", err)
	}
	if want := len(doc.Spans) * len(stages); len(chrome.TraceEvents) != want {
		t.Fatalf("chrome trace has %d events, want %d", len(chrome.TraceEvents), want)
	}
	for _, ev := range chrome.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("chrome event phase %q", ev.Ph)
		}
		if !known[ev.TID] {
			t.Fatalf("chrome event tid %d unknown", ev.TID)
		}
	}
}

// TestTraceSamplingEveryNth verifies the deterministic 1-in-N sampler
// end-to-end: exactly every Nth request leaves a span, independent of
// timing.
func TestTraceSamplingEveryNth(t *testing.T) {
	cfg := baseCfg()
	cfg.TraceSampleN = 4
	srv, addr := startServer(t, cfg)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 100; i++ {
		c.SendProbe(1, int64(1000+i), 1)
		if _, err := c.SendBase(1, int64(1000+i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecvResults(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := srv.tracer.Completed(); got != 25 {
		t.Fatalf("completed spans = %d, want exactly 25 (100 requests, 1-in-4)", got)
	}
	if srv.tracer.Dropped() != 0 {
		t.Fatalf("dropped spans = %d", srv.tracer.Dropped())
	}
}

// TestTraceDisabledFlightOn: with sampling off (the default), /tracez is
// empty and cheap — but the flight recorder still runs, so the control-plane
// timeline exists before anyone turns tracing on.
func TestTraceDisabledFlightOn(t *testing.T) {
	cfg := baseCfg()
	cfg.AdminAddr = "127.0.0.1:0"
	srv, addr := startServer(t, cfg)
	base := "http://" + srv.AdminAddr().String()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 50; i++ {
		c.SendProbe(1, int64(1000+i*100), 1)
	}
	c.SendBase(1, 6000, 0)
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecvResults(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	var doc trace.TracezDoc
	if err := json.Unmarshal([]byte(scrape(t, base+"/tracez")), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.SampleEvery != 0 || len(doc.Spans) != 0 || doc.Completed != 0 {
		t.Fatalf("tracing not off by default: %+v", doc)
	}

	var fd trace.FlightDoc
	if err := json.Unmarshal([]byte(scrape(t, base+"/debug/flightrecorder")), &fd); err != nil {
		t.Fatal(err)
	}
	if len(fd.Events) == 0 || fd.TotalSeq == 0 {
		t.Fatal("flight recorder recorded nothing (watermark advances expected)")
	}
	sawWM := false
	for i, ev := range fd.Events {
		if ev.Kind == "watermark_advance" {
			sawWM = true
		}
		if i > 0 && fd.Events[i-1].Seq >= ev.Seq {
			t.Fatalf("flight events out of sequence order at %d: %d >= %d", i, fd.Events[i-1].Seq, ev.Seq)
		}
	}
	if !sawWM {
		t.Fatalf("no watermark_advance events in %d flight events", len(fd.Events))
	}
	if srv.FlightRecorder().Seq() == 0 {
		t.Fatal("FlightRecorder accessor disagrees")
	}
}

// TestWALCountersConsistentAcrossEndpoints is the /metrics-vs-/statusz
// consistency check for the WAL salvage counters: after recovering a log
// with a corrupt frame, both endpoints must report the same recovered /
// skipped / truncated / error numbers, and the recovery must land in the
// flight recorder.
func TestWALCountersConsistentAcrossEndpoints(t *testing.T) {
	cfg, path := walCfg(t)
	cfg.WALSync = "always"

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c1, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c1.SendProbe(7, int64(1000+i), 1)
	}
	c1.Barrier()
	if _, err := c1.RecvResults(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	s1.Shutdown()

	// Flip a byte inside frame 4's payload.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[wire.WALHeaderBytes+4*wire.WALFrameBytes+20] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg.AdminAddr = "127.0.0.1:0"
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown()
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s2.AdminAddr().String()

	m := scrape(t, base+"/metrics")
	var st Status
	if err := json.Unmarshal([]byte(scrape(t, base+"/statusz")), &st); err != nil {
		t.Fatal(err)
	}
	if st.WALRecovered != 9 || st.WALSkipped != 1 {
		t.Fatalf("statusz salvage counters: %+v", st)
	}
	for _, cmp := range []struct {
		metric  string
		statusz int64
	}{
		{"oij_wal_recovered_frames", st.WALRecovered},
		{"oij_wal_skipped_frames", st.WALSkipped},
		{"oij_wal_truncated_bytes", st.WALTruncated},
		{"oij_wal_errors", st.WALErrors},
	} {
		if got := int64(metricValue(t, m, cmp.metric)); got != cmp.statusz {
			t.Fatalf("%s: /metrics=%d /statusz=%d", cmp.metric, got, cmp.statusz)
		}
	}

	var fd trace.FlightDoc
	if err := json.Unmarshal([]byte(scrape(t, base+"/debug/flightrecorder")), &fd); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range fd.Events {
		if ev.Kind == "wal_recovered" && ev.A == 9 && ev.B == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no wal_recovered(9,1) flight event in %+v", fd.Events)
	}
}

// TestBuildInfoOnBothEndpoints covers the build-identity satellite: the
// oij_build_info constant gauge on /metrics and the matching build block on
// /statusz.
func TestBuildInfoOnBothEndpoints(t *testing.T) {
	cfg := baseCfg()
	cfg.AdminAddr = "127.0.0.1:0"
	srv, _ := startServer(t, cfg)
	base := "http://" + srv.AdminAddr().String()

	m := scrape(t, base+"/metrics")
	if v := metricValue(t, m, "oij_build_info"); v != 1 {
		t.Fatalf("oij_build_info = %g, want constant 1", v)
	}
	var st Status
	if err := json.Unmarshal([]byte(scrape(t, base+"/statusz")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Build.GoVersion == "" || st.Build.GOMAXPROCS < 1 || st.Build.Revision == "" {
		t.Fatalf("statusz build block: %+v", st.Build)
	}
}

// TestConcurrentScrapes hammers every observability endpoint from several
// goroutines while traffic flows — the race-detector coverage for the
// scrape paths against the hot-path atomics.
func TestConcurrentScrapes(t *testing.T) {
	cfg := baseCfg()
	cfg.AdminAddr = "127.0.0.1:0"
	cfg.TraceSampleN = 2
	cfg.UtilEpoch = 5 * time.Millisecond
	srv, addr := startServer(t, cfg)
	base := "http://" + srv.AdminAddr().String()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, url := range []string{base + "/metrics", base + "/tracez", base + "/tracez?format=chrome", base + "/statusz", base + "/debug/flightrecorder"} {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					scrape(t, u)
				}
			}
		}(url)
	}

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for round := 0; round < 20; round++ {
		for i := 0; i < 50; i++ {
			c.SendProbe(uint64(i%11), int64(1000+round*1000+i), 1)
		}
		for i := 0; i < 10; i++ {
			if _, err := c.SendBase(uint64(i%11), int64(1000+round*1000+i*5), 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Barrier(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.RecvResults(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if srv.tracer.Completed() == 0 {
		t.Fatal("no spans completed under concurrent scraping")
	}
}
