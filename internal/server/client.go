package server

import (
	"fmt"
	"net"
	"time"

	"oij/internal/tuple"
	"oij/internal/wire"
)

// Client is a minimal synchronous client for the serving protocol. Send
// methods may be called from one goroutine while another drains Recv;
// neither method is individually safe for concurrent use.
type Client struct {
	conn net.Conn
	w    *wire.Writer
	r    *wire.Reader
	seq  uint64
}

// Dial connects to a Server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, w: wire.NewWriter(conn), r: wire.NewReader(conn)}, nil
}

// SendProbe streams one probe tuple (buffered; see Flush).
func (c *Client) SendProbe(key tuple.Key, ts tuple.Time, val float64) error {
	return c.w.WriteTuple(wire.Tuple{TS: ts, Key: key, Val: val})
}

// SendBase streams one feature request and returns its session-local
// sequence number, which the matching result frame will carry.
func (c *Client) SendBase(key tuple.Key, ts tuple.Time, val float64) (uint64, error) {
	seq := c.seq
	c.seq++
	return seq, c.w.WriteTuple(wire.Tuple{Base: true, TS: ts, Key: key, Val: val})
}

// Flush pushes buffered frames to the wire.
func (c *Client) Flush() error { return c.w.Flush() }

// Barrier sends a flush frame and pushes the buffer; the server echoes a
// flush frame once every request sent so far has been answered (collect it
// via Recv).
func (c *Client) Barrier() error {
	if err := c.w.WriteFlush(); err != nil {
		return err
	}
	return c.w.Flush()
}

// Recv reads the next server frame: a result, a flush ack (Kind ==
// wire.TagFlush), or a server error.
func (c *Client) Recv() (wire.Message, error) {
	m, err := c.r.Read()
	if err != nil {
		return m, err
	}
	if m.Kind == wire.TagError {
		return m, fmt.Errorf("server error: %s", m.Err)
	}
	return m, nil
}

// RecvResults collects result frames until a flush ack arrives (send
// Barrier first) or the deadline passes.
func (c *Client) RecvResults(deadline time.Duration) ([]wire.Result, error) {
	if deadline > 0 {
		c.conn.SetReadDeadline(time.Now().Add(deadline))
		defer c.conn.SetReadDeadline(time.Time{})
	}
	var out []wire.Result
	for {
		m, err := c.Recv()
		if err != nil {
			return out, err
		}
		switch m.Kind {
		case wire.TagResult:
			out = append(out, m.Result)
		case wire.TagFlush:
			return out, nil
		}
	}
}

// Close flushes and closes the connection.
func (c *Client) Close() error {
	c.w.Flush()
	return c.conn.Close()
}
