package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"syscall"
	"time"

	"oij/internal/tuple"
	"oij/internal/wire"
)

// ErrDisconnected marks transport errors that mean the server connection is
// gone (closed server, reset, broken pipe, EOF mid-stream). Callers match it
// with errors.Is and reconnect; the concrete syscall error stays wrapped for
// logs.
var ErrDisconnected = errors.New("server connection lost")

// DisconnectError wraps a raw transport error with the operation that hit it.
// It unwraps to both ErrDisconnected (for classification) and the underlying
// error (for inspection).
type DisconnectError struct {
	Op  string
	Err error
}

func (e *DisconnectError) Error() string {
	return fmt.Sprintf("%s: %s: %v", e.Op, ErrDisconnected, e.Err)
}

func (e *DisconnectError) Unwrap() []error { return []error{ErrDisconnected, e.Err} }

// wrapDisconnect classifies err: connection-fatal errors become a
// DisconnectError, timeouts and nil pass through untouched (a deadline expiry
// says nothing about connection health).
func wrapDisconnect(op string, err error) error {
	if err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		return err
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.EPIPE) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.ECONNREFUSED) {
		return &DisconnectError{Op: op, Err: err}
	}
	var ne net.Error
	if errors.As(err, &ne) && !ne.Timeout() {
		return &DisconnectError{Op: op, Err: err}
	}
	return err
}

// NackError is a server admission refusal for one request: the request was
// received and answered, but with a typed NACK instead of a result.
type NackError struct {
	Seq  uint64
	Code byte
}

func (e *NackError) Error() string {
	return fmt.Sprintf("request %d rejected: %s", e.Seq, wire.Nack{Seq: e.Seq, Code: e.Code}.Reason())
}

// DialOptions bound the client's blocking points. Zero values mean no bound
// (the legacy behavior).
type DialOptions struct {
	// DialTimeout bounds the TCP connect.
	DialTimeout time.Duration
	// ReadTimeout bounds each Recv/RecvResults frame read (RecvResults'
	// explicit deadline argument takes precedence when set).
	ReadTimeout time.Duration
	// WriteTimeout bounds each flush of buffered frames to the wire.
	WriteTimeout time.Duration
}

// Client is a minimal synchronous client for the serving protocol. Send
// methods may be called from one goroutine while another drains Recv;
// neither method is individually safe for concurrent use.
type Client struct {
	conn net.Conn
	w    *wire.Writer
	r    *wire.Reader
	seq  uint64
	opts DialOptions
}

// Dial connects to a Server.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, DialOptions{})
}

// DialWith connects to a Server with explicit timeout options.
func DialWith(addr string, opts DialOptions) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, wrapDisconnect("dial", err)
	}
	c := NewClient(conn)
	c.opts = opts
	return c, nil
}

// NewClient wraps an established connection (any net.Conn speaking the wire
// protocol — TCP, a proxy, or an in-memory pipe) in a Client.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, w: wire.NewWriter(conn), r: wire.NewReader(conn)}
}

// SendProbe streams one probe tuple (buffered; see Flush).
func (c *Client) SendProbe(key tuple.Key, ts tuple.Time, val float64) error {
	return wrapDisconnect("send probe", c.w.WriteTuple(wire.Tuple{TS: ts, Key: key, Val: val}))
}

// SendBase streams one feature request and returns its session-local
// sequence number, which the matching result frame will carry. The sequence
// number travels on the wire (an identified-base frame), so server-side
// traces of this request are scrapeable under the same ID the client logs.
func (c *Client) SendBase(key tuple.Key, ts tuple.Time, val float64) (uint64, error) {
	seq := c.seq
	c.seq++
	return seq, wrapDisconnect("send request", c.w.WriteBaseID(wire.Tuple{Base: true, TS: ts, Key: key, Val: val, ID: seq}))
}

// Flush pushes buffered frames to the wire.
func (c *Client) Flush() error {
	if d := c.opts.WriteTimeout; d > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(d))
		defer c.conn.SetWriteDeadline(time.Time{})
	}
	return wrapDisconnect("flush", c.w.Flush())
}

// Barrier sends a flush frame and pushes the buffer; the server echoes a
// flush frame once every request sent so far has been answered (collect it
// via Recv).
func (c *Client) Barrier() error {
	if err := c.w.WriteFlush(); err != nil {
		return wrapDisconnect("barrier", err)
	}
	return c.Flush()
}

// Recv reads the next server frame: a result, a flush ack (Kind ==
// wire.TagFlush), an admission NACK (Kind == wire.TagNack), or a server
// error.
func (c *Client) Recv() (wire.Message, error) { return c.recv(true) }

// recv implements Recv; useOpts applies the per-frame ReadTimeout (skipped
// when a caller manages its own overall deadline, like RecvResults).
func (c *Client) recv(useOpts bool) (wire.Message, error) {
	if d := c.opts.ReadTimeout; useOpts && d > 0 {
		c.conn.SetReadDeadline(time.Now().Add(d))
		defer c.conn.SetReadDeadline(time.Time{})
	}
	m, err := c.r.Read()
	if err != nil {
		return m, wrapDisconnect("recv", err)
	}
	if m.Kind == wire.TagError {
		return m, fmt.Errorf("server error: %s", m.Err)
	}
	return m, nil
}

// RecvResults collects result frames until a flush ack arrives (send
// Barrier first) or the deadline passes. If any request was NACKed, the
// collected results are returned together with a *NackError for the first
// refusal, so callers see both the partial answers and the overload signal.
func (c *Client) RecvResults(deadline time.Duration) ([]wire.Result, error) {
	if deadline > 0 {
		c.conn.SetReadDeadline(time.Now().Add(deadline))
		defer c.conn.SetReadDeadline(time.Time{})
	}
	var out []wire.Result
	var nack *NackError
	for {
		m, err := c.recv(deadline <= 0)
		if err != nil {
			return out, err
		}
		switch m.Kind {
		case wire.TagResult:
			out = append(out, m.Result)
		case wire.TagNack:
			if nack == nil {
				nack = &NackError{Seq: m.Nack.Seq, Code: m.Nack.Code}
			}
		case wire.TagFlush:
			if nack != nil {
				return out, nack
			}
			return out, nil
		}
	}
}

// Close flushes and closes the connection.
func (c *Client) Close() error {
	c.w.Flush()
	return c.conn.Close()
}
