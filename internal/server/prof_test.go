package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"oij/internal/obs/timeline"
	"oij/internal/prof"
	"oij/internal/trace"
)

// TestProfilingEndToEnd runs a server with the continuous profiler on a
// fast duty cycle and checks the whole surface: the ring fills, /profilez
// serves the manifest / raw profiles / merged windows, the profiling and
// runtime-health series ride /metrics and /timeline, and the exact
// per-stage allocation counters advance with traffic.
func TestProfilingEndToEnd(t *testing.T) {
	cfg := baseCfg()
	cfg.AdminAddr = "127.0.0.1:0"
	cfg.UtilEpoch = 20 * time.Millisecond
	cfg.TraceSampleN = 1
	cfg.ProfileDir = t.TempDir()
	cfg.ProfilePeriod = 150 * time.Millisecond
	cfg.ProfileCPUSlice = 30 * time.Millisecond
	cfg.ProfileRetain = 8
	srv, addr := startServer(t, cfg)
	base := fmt.Sprintf("http://%s", srv.AdminAddr())

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 300; i++ {
		c.SendProbe(uint64(i%7), int64(1000+i*10), 1)
		c.SendBase(uint64(i%7), int64(1000+i*10), 0)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecvResults(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Wait for at least two periodic rounds so a merged window has
	// multiple CPU slices to fold.
	deadline := time.Now().Add(10 * time.Second)
	for srv.prof.Stats().Captures < 8 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got := srv.prof.Stats().Captures; got < 8 {
		t.Fatalf("capturer too slow: %d captures", got)
	}

	// /profilez manifest.
	var doc struct {
		Stats   prof.Stats   `json:"stats"`
		Entries []prof.Entry `json:"entries"`
	}
	if err := json.Unmarshal([]byte(scrape(t, base+"/profilez")), &doc); err != nil {
		t.Fatalf("profilez JSON: %v", err)
	}
	if len(doc.Entries) == 0 || doc.Stats.Captures == 0 {
		t.Fatalf("empty profilez manifest: %+v", doc.Stats)
	}
	kinds := map[string]bool{}
	var cpuSeq uint64
	var haveCPU bool
	for _, e := range doc.Entries {
		kinds[e.Kind] = true
		if e.Kind == "cpu" {
			cpuSeq, haveCPU = e.Seq, true
		}
	}
	for _, k := range []string{"cpu", "heap", "mutex", "block"} {
		if !kinds[k] {
			t.Fatalf("ring missing %s profiles; have %v", k, kinds)
		}
	}
	if !haveCPU {
		t.Fatal("no cpu entry")
	}

	// Fetch one profile and the merged CPU window; both must parse.
	raw := scrape(t, fmt.Sprintf("%s/profilez?id=%d", base, cpuSeq))
	if _, err := prof.Parse([]byte(raw)); err != nil {
		t.Fatalf("fetched profile unparsable: %v", err)
	}
	merged := scrape(t, base+"/profilez?merged=cpu&since=0")
	if _, err := prof.Parse([]byte(merged)); err != nil {
		t.Fatalf("merged profile unparsable: %v", err)
	}

	// Profiling, runtime-health, and stage-alloc series on /metrics.
	m := scrape(t, base+"/metrics")
	if v := metricValue(t, m, "oij_prof_captures_total"); v < 8 {
		t.Fatalf("oij_prof_captures_total = %g", v)
	}
	if v := metricValue(t, m, "oij_go_goroutines"); v < 1 {
		t.Fatalf("oij_go_goroutines = %g", v)
	}
	if v := metricValue(t, m, "oij_go_heap_inuse_bytes"); v <= 0 {
		t.Fatalf("oij_go_heap_inuse_bytes = %g", v)
	}
	if v := metricValue(t, m, "oij_go_gc_goal_bytes"); v <= 0 {
		t.Fatalf("oij_go_gc_goal_bytes = %g", v)
	}
	metricValue(t, m, "oij_go_gc_pause_p99_us") // present (may be 0)
	// Probe buffers grew and states were allocated while joining, and
	// every request was traced (TraceSampleN=1), so ingest and aggregate
	// books must be non-zero.
	if v := metricValue(t, m, "oij_stage_alloc_objects_ingest_total"); v <= 0 {
		t.Fatalf("ingest alloc objects = %g", v)
	}
	if v := metricValue(t, m, "oij_stage_alloc_objects_aggregate_total"); v <= 0 {
		t.Fatalf("aggregate alloc objects = %g", v)
	}
	if v := metricValue(t, m, "oij_stage_alloc_bytes_ingest_total"); v <= 0 {
		t.Fatalf("ingest alloc bytes = %g", v)
	}

	// /statusz carries the runtime, profiling, and stage-alloc blocks.
	var st Status
	if err := json.Unmarshal([]byte(scrape(t, base+"/statusz")), &st); err != nil {
		t.Fatalf("statusz JSON: %v", err)
	}
	if st.Runtime.Goroutines < 1 || st.Runtime.HeapInUse <= 0 {
		t.Fatalf("runtime block: %+v", st.Runtime)
	}
	if st.Profiling == nil || st.Profiling.Captures < 8 {
		t.Fatalf("profiling block: %+v", st.Profiling)
	}
	if len(st.StageAllocs) != int(trace.NumStages) {
		t.Fatalf("stage allocs: %+v", st.StageAllocs)
	}
	var ingestObjs int64
	for _, sa := range st.StageAllocs {
		if sa.Stage == "ingest" {
			ingestObjs = sa.Objects
		}
	}
	if ingestObjs <= 0 {
		t.Fatalf("ingest stage allocs: %+v", st.StageAllocs)
	}

	// The new series are timeline series too (registered before the
	// collector snapshot).
	tl := scrape(t, base+"/timeline?series=oij_go_goroutines,oij_prof_captures_total,oij_stage_alloc_objects_ingest_total:rate")
	var tdoc timeline.Doc
	if err := json.Unmarshal([]byte(tl), &tdoc); err != nil {
		t.Fatalf("timeline JSON: %v\n%s", err, tl)
	}
	if len(tdoc.Series) != 3 {
		t.Fatalf("timeline series: %s", tl)
	}
}

// TestProfilezDisabled asserts /profilez 404s without a profile dir.
func TestProfilezDisabled(t *testing.T) {
	cfg := baseCfg()
	cfg.AdminAddr = "127.0.0.1:0"
	srv, _ := startServer(t, cfg)
	resp, err := http.Get(fmt.Sprintf("http://%s/profilez", srv.AdminAddr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("want 404 when profiling disabled, got %d", resp.StatusCode)
	}
}

// TestProfileConfigRejected asserts a bad profiling config fails server
// construction instead of limping.
func TestProfileConfigRejected(t *testing.T) {
	cfg := baseCfg()
	cfg.ProfileDir = t.TempDir()
	cfg.ProfilePeriod = time.Second
	cfg.ProfileCPUSlice = 2 * time.Second
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "shorter than Period") {
		t.Fatalf("want slice/period error, got %v", err)
	}
}

// TestIncidentTriggersCapture drives the server into memory pressure and
// asserts the incident path captured an out-of-cycle profile whose flight
// sequence does not precede the incident's.
func TestIncidentTriggersCapture(t *testing.T) {
	cfg := baseCfg()
	cfg.ProfileDir = t.TempDir()
	cfg.ProfilePeriod = time.Hour // periodic loop parked: captures = incidents only
	cfg.ProfileCPUSlice = 30 * time.Millisecond
	srv, _ := startServer(t, cfg)

	srv.incident("mem-pressure")

	deadline := time.Now().Add(10 * time.Second)
	for len(srv.prof.Entries()) < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	entries := srv.prof.Entries()
	if len(entries) < 2 {
		t.Fatalf("incident produced %d profiles, want cpu+heap", len(entries))
	}
	if srv.prof.Stats().Incidents != 1 {
		t.Fatalf("incidents = %d", srv.prof.Stats().Incidents)
	}
	for _, e := range entries {
		if e.Reason != "mem-pressure" {
			t.Fatalf("capture reason %q", e.Reason)
		}
	}
}
