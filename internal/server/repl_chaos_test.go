package server

import (
	"bytes"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"oij/internal/agg"
	"oij/internal/chaos"
	"oij/internal/faultfs"
	"oij/internal/refjoin"
	"oij/internal/repl"
	"oij/internal/tuple"
	"oij/internal/window"
	"oij/internal/wire"
)

// The adversarial replication matrix: the primary is killed, partitioned,
// or torn mid-stream at every interesting protocol step, and in every
// case the promoted standby's answers must be byte-equal to the refjoin
// oracle evaluated over the standby's own replicated WAL — the applied
// prefix is the contract, and it must be an exact prefix of what the
// primary wrote. The WAL-level rotation tests at the bottom are the
// regression net for segment rotation racing an in-flight catch-up ship.

// replServerCfg is the shared node configuration of the chaos pairs.
func replServerCfg(m *faultfs.Mem) Config {
	cfg := baseCfg()
	cfg.Engine.Window = crashWindow()
	cfg.Engine.Joiners = 1
	cfg.WALPath = "wal"
	cfg.WALFS = m
	cfg.WALSync = "always"
	return cfg
}

// chaosWindow is the pair tests' wide window: with 240-frame scripts
// (timestamps up to ~3400) the crash tests' 500µs window would evict
// probes the oracle — which models no eviction — still counts. A 10ms
// PRECEDING bound keeps every scripted probe retained for every query.
func chaosWindow() window.Spec {
	return window.Spec{Pre: 10_000, Fol: 0, Lateness: 50}
}

// lateQueries are base requests timed past the end of a 300-frame script
// (max probe ts 3990), so they are never late against the watermark and
// their windows sit inside the engine's retained horizon even under the
// crash tests' tight 500µs window.
func lateQueries() []tuple.Tuple {
	var out []tuple.Tuple
	for i, key := range []tuple.Key{1, 2, 3, 4, 1, 2} {
		out = append(out, tuple.Tuple{
			Side: tuple.Base, Seq: uint64(i), Key: key,
			TS: tuple.Time(4000 + 40*i),
		})
	}
	return out
}

// askQueries sends the base requests to a serving node and returns its
// answers in query order, failing the test on any transport error.
func askQueries(t *testing.T, addr string, queries []tuple.Tuple) []wire.Result {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, q := range queries {
		if _, err := c.SendBase(q.Key, q.TS, 0); err != nil {
			t.Fatal(err)
		}
	}
	c.Barrier()
	rs, err := c.RecvResults(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(queries) {
		t.Fatalf("%d answers for %d queries", len(rs), len(queries))
	}
	return rs
}

// assertOracleAnswers is the differential heart: the node's live answers
// must bit-equal the refjoin oracle fed the node's own replicated WAL
// content (the applied prefix) plus the same queries.
func assertOracleAnswers(t *testing.T, ctx string, rs []wire.Result, survived []wire.Tuple, w window.Spec, queries []tuple.Tuple) {
	t.Helper()
	in := make([]tuple.Tuple, 0, len(survived)+len(queries))
	for _, p := range survived {
		in = append(in, tuple.Tuple{Side: tuple.Probe, TS: p.TS, Key: p.Key, Val: p.Val})
	}
	in = append(in, queries...)
	want := refjoin.Arrival(in, w, agg.Sum)
	nonzero := false
	for i, r := range rs {
		o := want[i]
		if r.Matches != o.Matches || math.Float64bits(r.Agg) != math.Float64bits(o.Agg) {
			t.Fatalf("%s: query %d: got (agg=%v matches=%d), oracle (agg=%v matches=%d)",
				ctx, i, r.Agg, r.Matches, o.Agg, o.Matches)
		}
		if o.Matches > 0 {
			nonzero = true
		}
	}
	if !nonzero && len(survived) > 20 {
		t.Fatalf("%s: every oracle answer empty over %d probes — the differential proved nothing", ctx, len(survived))
	}
}

// sendScript streams probes to a server and waits for the barrier ack, so
// every probe is appended and fsynced when it returns.
func sendScript(t *testing.T, addr string, script []wire.Tuple) {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, p := range script {
		c.SendProbe(p.Key, p.TS, p.Val)
	}
	c.Barrier()
	if _, err := c.RecvResults(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestReplChaosPartitionZombieWrites partitions an in-sync pair: the
// standby must promote after the lease, the old primary must self-fence
// strictly earlier (3D/4 < D) and refuse post-fence writes without
// extending its WAL — the zombie-ack hole the fencing epoch closes.
func TestReplChaosPartitionZombieWrites(t *testing.T) {
	m1, m2 := faultfs.NewMem(), faultfs.NewMem()
	pcfg := replServerCfg(m1)
	pcfg.ReplListenAddr = "127.0.0.1:0"
	pcfg.ReplLease = pairLease
	p, err := New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	paddr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()

	// The standby reaches the primary through a chaos proxy so the
	// partition can be injected without killing either process.
	proxy, err := chaos.Listen(waitReplAddr(t, p))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	scfg := replServerCfg(m2)
	scfg.StandbyOf = proxy.Addr()
	scfg.ReplLease = pairLease
	s, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	saddr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	script := crashScript(24)
	sendScript(t, paddr.String(), script)
	waitApplied(t, s, uint64(len(script)))

	// Partition: kill the established links and refuse reconnects.
	proxy.SetRefuseNew(true)
	proxy.DropActive()

	// The primary must fence itself on ack silence — before the standby's
	// promotion deadline — and the standby must then promote on lease
	// expiry. Both transitions are observed, not induced.
	waitRole(t, p, repl.RoleFenced)
	if got := s.ReplRole(); got == repl.RolePrimary {
		t.Fatal("standby promoted before the primary fenced: zombie window")
	}
	waitRole(t, s, repl.RolePrimary)

	// Zombie writes: the fenced ex-primary must NACK and must not grow
	// its log — an acked write here would fork the promoted history.
	before := p.wal.appended.Load()
	expectNack(t, paddr.String(), wire.NackFenced)
	func() {
		c, err := Dial(paddr.String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for i := 0; i < 10; i++ {
			c.SendProbe(9, 5000, 1)
		}
		c.Barrier()
		c.RecvResults(2 * time.Second)
	}()
	if after := p.wal.appended.Load(); after != before {
		t.Fatalf("fenced primary extended its WAL: %d -> %d slots", before, after)
	}
	if !flightHas(p, "repl_fenced") {
		t.Fatal("fenced primary flight recorder missing repl_fenced")
	}

	// The promoted standby serves the full replicated history.
	rs := askQueries(t, saddr.String(), crashQueries())
	survived, _ := replayInto(t, m2)
	assertPrefix(t, "partition", survived, script)
	if len(survived) != len(script) {
		t.Fatalf("in-sync standby lost frames: %d of %d", len(survived), len(script))
	}
	assertOracleAnswers(t, "partition", rs, survived, crashWindow(), crashQueries())
}

// TestReplChaosTornStreamResumes tears the TCP stream mid-catch-up (a
// frame may be cut in half on the wire) and requires the standby to
// reconnect, resume at its durable slot, and converge on a byte-identical
// log — frame-granular resumption.
func TestReplChaosTornStreamResumes(t *testing.T) {
	m1, m2 := faultfs.NewMem(), faultfs.NewMem()
	pcfg := replServerCfg(m1)
	pcfg.ReplListenAddr = "127.0.0.1:0"
	pcfg.ReplLease = pairLease
	p, err := New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	paddr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()

	// Preload the log so the standby has a long catch-up to tear.
	script := crashScript(240)
	sendScript(t, paddr.String(), script)

	proxy, err := chaos.Listen(waitReplAddr(t, p))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	// Trickle the catch-up: tiny chunks with a stall per chunk, so the
	// tear lands mid-ship (and likely mid-frame).
	proxy.SetChunk(64)
	proxy.SetStall(1, 2*time.Millisecond)

	scfg := replServerCfg(m2)
	scfg.StandbyOf = proxy.Addr()
	scfg.ReplLease = pairLease
	s, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	// Wait until the standby is mid-catch-up, then cut every connection.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := s.Statusz().Replication; st != nil && st.ReplayOffset > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("standby never started applying")
		}
		time.Sleep(time.Millisecond)
	}
	proxy.DropActive()
	proxy.ClearFaults()

	waitApplied(t, s, uint64(len(script)))
	if s.ReplRole() != repl.RoleStandby {
		t.Fatalf("standby role %v after resume, want standby (primary never died)", s.ReplRole())
	}
	// At least two connects: the original and the post-tear resume.
	connects := 0
	for _, e := range s.flight.Snapshot() {
		if e.Kind == "repl_connect" {
			connects++
		}
	}
	if connects < 2 {
		t.Fatalf("standby reconnected %d times, want >= 2 (torn stream must re-handshake)", connects)
	}
	survived, _ := replayInto(t, m2)
	if len(survived) != len(script) {
		t.Fatalf("resumed standby holds %d of %d frames", len(survived), len(script))
	}
	assertPrefix(t, "torn-stream", survived, script)
}

// TestReplChaosKillDuringCatchUp kills the primary while the standby is
// still replaying history: the standby promotes with a partial prefix,
// and its answers must match the oracle over exactly that prefix — a
// correct answer over less data, never a wrong answer.
func TestReplChaosKillDuringCatchUp(t *testing.T) {
	m1, m2 := faultfs.NewMem(), faultfs.NewMem()
	pcfg := replServerCfg(m1)
	pcfg.Engine.Window = chaosWindow()
	pcfg.ReplListenAddr = "127.0.0.1:0"
	pcfg.ReplLease = pairLease
	p, err := New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	paddr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	script := crashScript(240)
	sendScript(t, paddr.String(), script)

	proxy, err := chaos.Listen(waitReplAddr(t, p))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxy.SetChunk(64)
	proxy.SetStall(1, 2*time.Millisecond)

	scfg := replServerCfg(m2)
	scfg.Engine.Window = chaosWindow()
	scfg.StandbyOf = proxy.Addr()
	scfg.ReplLease = pairLease
	s, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	saddr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	// Kill the primary once the standby is mid-catch-up (some but not all
	// frames applied).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := s.Statusz().Replication; st != nil && st.ReplayOffset > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("standby never started applying")
		}
		time.Sleep(time.Millisecond)
	}
	m1.KillPower()
	p.Shutdown()
	proxy.DropActive()

	waitRole(t, s, repl.RolePrimary)
	if !flightHas(s, "repl_promote") {
		t.Fatal("standby flight recorder missing repl_promote")
	}

	rs := askQueries(t, saddr.String(), crashQueries())
	survived, _ := replayInto(t, m2)
	if len(survived) == 0 {
		t.Fatal("standby promoted with an empty log despite applying frames")
	}
	assertPrefix(t, "kill-during-catch-up", survived, script)
	assertOracleAnswers(t, "kill-during-catch-up", rs, survived, chaosWindow(), crashQueries())
	archiveFailoverFlight(t, s, "failover-catchup-flight")
	t.Logf("promoted with %d of %d frames applied", len(survived), len(script))
}

// TestReplCatchUpAcrossRotation joins an empty standby to a primary whose
// WAL has already rotated (its oldest slots are gone): the standby must
// accept a reset to the oldest retained slot, catch up, and keep
// following while the primary rotates again under live appends — the
// regression test for segment rotation during an in-flight ship.
func TestReplCatchUpAcrossRotation(t *testing.T) {
	m1, m2 := faultfs.NewMem(), faultfs.NewMem()
	pcfg := replServerCfg(m1)
	pcfg.ReplListenAddr = "127.0.0.1:0"
	pcfg.ReplLease = pairLease
	pcfg.WALSegmentBytes = 40 * wire.WALFrameBytes
	p, err := New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	paddr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()

	script := crashScript(300)
	sendScript(t, paddr.String(), script[:260])
	oldest := p.wal.feed.oldest()
	if oldest == 0 {
		t.Fatalf("no rotation after 260 frames in %d-byte segments", pcfg.WALSegmentBytes)
	}

	scfg := replServerCfg(m2)
	scfg.StandbyOf = waitReplAddr(t, p)
	scfg.ReplLease = pairLease
	s, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	saddr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	waitApplied(t, s, 260)
	// Live tail across another potential rotation.
	sendScript(t, paddr.String(), script[260:])
	waitApplied(t, s, 300)

	st := s.Statusz().Replication
	if st == nil || st.ReplayOffset != 300 {
		t.Fatalf("standby status %+v, want replay offset 300", st)
	}
	// The standby holds exactly the retained suffix, byte-faithfully.
	survived, _ := replayInto(t, m2)
	assertPrefix(t, "post-rotation", survived, script[oldest:])
	if uint64(len(survived)) != 300-oldest {
		t.Fatalf("standby holds %d frames, want the %d retained (oldest %d)",
			len(survived), 300-oldest, oldest)
	}

	// Promote and prove the suffix answers match the oracle on it.
	p.Shutdown()
	waitRole(t, s, repl.RolePrimary)
	rs := askQueries(t, saddr.String(), lateQueries())
	assertOracleAnswers(t, "post-rotation", rs, survived, crashWindow(), lateQueries())
}

// TestWALReplReadSegmentsAfterRotation forces catch-up reads through the
// segment files (slots below the tail ring's reach) across a rotation:
// more frames than the ring holds, one rotation, and every slot — file-
// or ring-served — must come back byte-exact.
func TestWALReplReadSegmentsAfterRotation(t *testing.T) {
	m := faultfs.NewMem()
	const frames = walFeedRing + 800
	w, err := newWALWriter(m, "wal", 6000*wire.WALFrameBytes, 100, walSyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.enableFeed(); err != nil {
		t.Fatal(err)
	}
	script := crashScript(frames)
	for _, p := range script {
		if err := w.append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.flushBuf(false); err != nil {
		t.Fatal(err)
	}
	if w.feed.oldest() != 0 || !w.hasPrev {
		t.Fatalf("want exactly one rotation keeping slot 0 (oldest %d, hasPrev %v)",
			w.feed.oldest(), w.hasPrev)
	}
	// Slots below appended-ring are only reachable through the files —
	// including the renamed .1 segment the rotation produced.
	next := uint64(0)
	for next < frames {
		b, err := w.replRead(next, 512)
		if err != nil {
			t.Fatalf("slot %d: %v", next, err)
		}
		if len(b) == 0 {
			t.Fatalf("slot %d unreadable after full flush", next)
		}
		for i := 0; i < len(b)/wire.WALFrameBytes; i++ {
			var want [wire.WALFrameBytes]byte
			wire.EncodeWALFrame(want[:], script[next])
			if !bytes.Equal(b[i*wire.WALFrameBytes:(i+1)*wire.WALFrameBytes], want[:]) {
				t.Fatalf("slot %d: frame diverged across rotation", next)
			}
			next++
		}
	}
}

// TestWALReplReadRotatedPastTyped rotates a tiny-segment WAL far past the
// tail ring: slots that fell out of both the segments and the ring must
// fail with the typed errWALRotatedPast (the source drops the link and
// the standby resets, loudly), while every slot still ring- or
// file-reachable stays byte-exact.
func TestWALReplReadRotatedPastTyped(t *testing.T) {
	m := faultfs.NewMem()
	const frames = walFeedRing + 800
	w, err := newWALWriter(m, "wal", 64*wire.WALFrameBytes, 100, walSyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.enableFeed(); err != nil {
		t.Fatal(err)
	}
	script := crashScript(frames)
	for _, p := range script {
		if err := w.append(p); err != nil {
			t.Fatal(err)
		}
	}
	oldest := w.feed.oldest()
	ringLow := uint64(frames - walFeedRing)
	if oldest <= ringLow {
		t.Fatalf("oldest %d within ring reach %d: nothing rotated past", oldest, ringLow)
	}
	// Below the ring AND below the retained segments: typed refusal.
	for _, s := range []uint64{0, ringLow / 2, ringLow - 1} {
		if _, err := w.replRead(s, 1); !errors.Is(err, errWALRotatedPast) {
			t.Fatalf("dropped slot %d: err = %v, want errWALRotatedPast", s, err)
		}
	}
	// In the ring (even though the segments dropped them) and above:
	// byte-exact. The ring keeps a rotation from tearing a live tail ship.
	for s := ringLow; s < frames; s += 97 {
		b, err := w.replRead(s, 1)
		if err != nil {
			t.Fatalf("slot %d: %v", s, err)
		}
		var want [wire.WALFrameBytes]byte
		wire.EncodeWALFrame(want[:], script[s])
		if !bytes.Equal(b, want[:]) {
			t.Fatalf("slot %d: frame diverged", s)
		}
	}
}

// TestWALReplReadRotationStress races a catch-up reader against an
// / appender that rotates continuously: every frame the reader gets must be
// byte-exact for its slot, with errWALRotatedPast the only accepted
// excuse to skip ahead. Run under -race this doubles as the locking proof
// for the feed's rotation bookkeeping.
func TestWALReplReadRotationStress(t *testing.T) {
	m := faultfs.NewMem()
	w, err := newWALWriter(m, "wal", 16*wire.WALFrameBytes, 50, walSyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.enableFeed(); err != nil {
		t.Fatal(err)
	}
	const frames = 2000
	script := crashScript(frames)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, p := range script {
			if err := w.append(p); err != nil {
				return
			}
		}
		w.feed.close()
	}()

	var checked, skipped int
	next := uint64(0)
	for {
		b, err := w.replRead(next, 7)
		if errors.Is(err, errWALRotatedPast) {
			old := w.feed.oldest()
			skipped += int(old - next)
			next = old
			continue
		}
		if err != nil {
			t.Fatalf("slot %d: %v", next, err)
		}
		if len(b) == 0 {
			if !w.feed.wait(next) && next >= w.feed.commit() {
				break // writer done and log drained
			}
			continue
		}
		for i := 0; i < len(b)/wire.WALFrameBytes; i++ {
			var want [wire.WALFrameBytes]byte
			wire.EncodeWALFrame(want[:], script[next])
			if !bytes.Equal(b[i*wire.WALFrameBytes:(i+1)*wire.WALFrameBytes], want[:]) {
				t.Fatalf("slot %d: frame diverged under rotation", next)
			}
			next++
			checked++
		}
	}
	wg.Wait()
	if checked == 0 {
		t.Fatal("reader verified nothing")
	}
	if next != frames {
		// The reader may legitimately finish behind the end only if the
		// remaining slots rotated out after its last read.
		if next < w.feed.oldest() {
			t.Fatalf("reader stopped at %d below oldest %d", next, w.feed.oldest())
		}
	}
	t.Logf("verified %d frames, skipped %d rotated-out", checked, skipped)
}
