package server

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"oij/internal/agg"
	"oij/internal/faultfs"
	"oij/internal/refjoin"
	"oij/internal/repl"
	"oij/internal/wire"
)

// The primary/standby pair harness: two full servers on the injectable
// filesystem wired over a real TCP replication link. The tests here prove
// the happy path end to end — stream, catch-up, role gating, lease-expiry
// promotion — and that a promoted standby answers byte-equivalently to
// the refjoin oracle over the acknowledged prefix. The adversarial matrix
// (partitions, torn streams, kill-during-catch-up) lives in
// repl_chaos_test.go.

const pairLease = 400 * time.Millisecond

// replPair is one running primary/standby pair plus its filesystems.
type replPair struct {
	p, s       *Server
	paddr      string // primary client address
	saddr      string // standby client address
	m1, m2     *faultfs.Mem
	pDown      bool
	sDown      bool
	pcfg, scfg Config
}

// startReplPair boots a primary with a replication listener and a standby
// following it, both serving clients on loopback.
func startReplPair(t *testing.T, lease time.Duration) *replPair {
	t.Helper()
	pr := &replPair{m1: faultfs.NewMem(), m2: faultfs.NewMem()}

	// When CI archives failover artifacts, run both nodes with the
	// continuous profiler writing rings straight into the artifact
	// directory: every fencing and promotion incident the suite provokes
	// then ships its out-of-cycle profile captures alongside the flight
	// timelines.
	profDir := func(role string) string {
		dir := os.Getenv("OIJ_FAILOVER_ARTIFACT_DIR")
		if dir == "" {
			return ""
		}
		return filepath.Join(dir, "prof-"+role+"-"+sanitizeTestName(t.Name()))
	}

	pr.pcfg = baseCfg()
	pr.pcfg.Engine.Window = crashWindow()
	pr.pcfg.Engine.Joiners = 1
	pr.pcfg.WALPath = "wal"
	pr.pcfg.WALFS = pr.m1
	pr.pcfg.WALSync = "always"
	pr.pcfg.ReplListenAddr = "127.0.0.1:0"
	pr.pcfg.ReplLease = lease
	pr.pcfg.ProfileDir = profDir("primary")
	pr.pcfg.ProfilePeriod = 2 * time.Second
	pr.pcfg.ProfileCPUSlice = 200 * time.Millisecond
	if pr.pcfg.ProfileDir == "" {
		pr.pcfg.ProfilePeriod, pr.pcfg.ProfileCPUSlice = 0, 0
	}

	p, err := New(pr.pcfg)
	if err != nil {
		t.Fatal(err)
	}
	pr.p = p
	paddr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pr.paddr = paddr.String()
	raddr := waitReplAddr(t, p)

	pr.scfg = baseCfg()
	pr.scfg.Engine.Window = crashWindow()
	pr.scfg.Engine.Joiners = 1
	pr.scfg.WALPath = "wal"
	pr.scfg.WALFS = pr.m2
	pr.scfg.WALSync = "always"
	pr.scfg.StandbyOf = raddr
	pr.scfg.ReplLease = lease
	pr.scfg.ProfileDir = profDir("standby")
	if pr.scfg.ProfileDir != "" {
		pr.scfg.ProfilePeriod = 2 * time.Second
		pr.scfg.ProfileCPUSlice = 200 * time.Millisecond
	}

	s, err := New(pr.scfg)
	if err != nil {
		t.Fatal(err)
	}
	pr.s = s
	saddr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pr.saddr = saddr.String()

	t.Cleanup(pr.stopAll)
	return pr
}

func (pr *replPair) killPrimary() {
	if !pr.pDown {
		pr.pDown = true
		pr.m1.KillPower()
		pr.p.Shutdown()
	}
}

func (pr *replPair) stopAll() {
	if !pr.sDown {
		pr.sDown = true
		pr.s.Shutdown()
	}
	if !pr.pDown {
		pr.pDown = true
		pr.p.Shutdown()
	}
}

// waitReplAddr polls until the server's replication listener is bound
// (it binds on the Serve goroutine, after Listen returns).
func waitReplAddr(t *testing.T, s *Server) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if a := s.ReplAddr(); a != nil {
			return a.String()
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("replication listener never bound")
	return ""
}

// waitReplied polls the standby's status until it has durably applied at
// least n slots and reports caught up.
func waitApplied(t *testing.T, s *Server, n uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := s.Statusz().Replication; st != nil && st.ReplayOffset >= n && st.CaughtUp {
			return
		}
		time.Sleep(time.Millisecond)
	}
	st := s.Statusz().Replication
	t.Fatalf("standby never applied %d slots (status %+v)", n, st)
}

// waitRole polls until the server reports the wanted replication role.
func waitRole(t *testing.T, s *Server, want repl.Role) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s.ReplRole() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("role = %v, want %v (status %+v)", s.ReplRole(), want, s.Statusz().Replication)
}

// archiveFailoverFlight leaves a node's flight timeline behind when CI
// points OIJ_FAILOVER_ARTIFACT_DIR at a directory (the failover-smoke
// job and the nightly archive both do), so every failover the suite
// exercises ships its repl_* event sequence as an inspectable artifact.
func archiveFailoverFlight(t *testing.T, s *Server, name string) {
	t.Helper()
	dir := os.Getenv("OIJ_FAILOVER_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(s.flight.Snapshot(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name+".json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// sanitizeTestName flattens a test name (which may contain subtest
// slashes) into a filesystem-safe artifact-directory component.
func sanitizeTestName(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '-')
		}
	}
	return string(out)
}

func flightHas(s *Server, kind string) bool {
	for _, e := range s.flight.Snapshot() {
		if e.Kind == kind {
			return true
		}
	}
	return false
}

// expectNack sends one base request and requires the given refusal code.
func expectNack(t *testing.T, addr string, code byte) {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.SendBase(1, 1200, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	_, err = c.RecvResults(5 * time.Second)
	var nerr *NackError
	if !errors.As(err, &nerr) {
		t.Fatalf("err = %v, want NackError", err)
	}
	if nerr.Code != code {
		t.Fatalf("nack code = 0x%02x (%s), want 0x%02x", nerr.Code, wire.Nack{Code: nerr.Code}.Reason(), code)
	}
}

// TestReplPairFailover is the end-to-end happy path: stream a scripted
// ingest to the primary, watch the standby catch up and mirror the WAL
// byte for byte, kill the primary, and require the promoted standby to
// answer the scripted queries byte-equivalently to the refjoin oracle
// over the acknowledged prefix.
func TestReplPairFailover(t *testing.T) {
	pr := startReplPair(t, pairLease)
	script := crashScript(24)

	c1, err := Dial(pr.paddr)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range script {
		c1.SendProbe(p.Key, p.TS, p.Val)
	}
	c1.Barrier()
	if _, err := c1.RecvResults(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	waitApplied(t, pr.s, uint64(len(script)))

	// A standby refuses writes: the single history is the primary's.
	expectNack(t, pr.saddr, wire.NackNotPrimary)

	// The standby's WAL is a byte-faithful mirror of the primary's log.
	survived, _ := replayInto(t, pr.m2)
	if len(survived) != len(script) {
		t.Fatalf("standby WAL holds %d probes, primary acked %d", len(survived), len(script))
	}
	for i, p := range survived {
		if p != script[i] {
			t.Fatalf("standby WAL frame %d = %+v, primary wrote %+v", i, p, script[i])
		}
	}
	if !flightHas(pr.s, "repl_caught_up") {
		t.Fatal("standby flight recorder missing repl_caught_up")
	}

	// Pull the plug on the primary. Nothing tells the standby; the lease
	// has to expire and the watchdog has to promote.
	pr.killPrimary()
	waitRole(t, pr.s, repl.RolePrimary)
	if !flightHas(pr.s, "repl_promote") {
		t.Fatal("standby flight recorder missing repl_promote")
	}
	st := pr.s.Statusz().Replication
	if st == nil || st.Role != "primary" {
		t.Fatalf("promoted status = %+v, want role primary", st)
	}
	if st.Epoch == 0 {
		t.Fatal("promotion did not advance the fencing epoch")
	}

	// The promoted standby answers from the replicated history.
	c2, err := Dial(pr.saddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	queries := crashQueries()
	for _, q := range queries {
		if _, err := c2.SendBase(q.Key, q.TS, 0); err != nil {
			t.Fatal(err)
		}
	}
	c2.Barrier()
	rs, err := c2.RecvResults(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(queries) {
		t.Fatalf("%d answers for %d queries", len(rs), len(queries))
	}
	want := refjoin.Arrival(oracleInput(script), crashWindow(), agg.Sum)
	for i, r := range rs {
		w := want[i]
		if r.Matches != w.Matches || math.Float64bits(r.Agg) != math.Float64bits(w.Agg) {
			t.Fatalf("query %d: got (agg=%v matches=%d), oracle (agg=%v matches=%d)",
				i, r.Agg, r.Matches, w.Agg, w.Matches)
		}
	}
	archiveFailoverFlight(t, pr.s, "failover-pair-flight")
}

// TestReplPairIdleStable proves the lease machinery is quiet when nothing
// is wrong: an idle pair left alone for several leases keeps its roles —
// heartbeats renew the standby's lease, acks renew the primary's.
func TestReplPairIdleStable(t *testing.T) {
	pr := startReplPair(t, 150*time.Millisecond)
	waitApplied(t, pr.s, 0)
	time.Sleep(5 * 150 * time.Millisecond)
	if got := pr.p.ReplRole(); got != repl.RolePrimary {
		t.Fatalf("idle primary role = %v, want primary", got)
	}
	if got := pr.s.ReplRole(); got != repl.RoleStandby {
		t.Fatalf("idle standby role = %v, want standby", got)
	}
}

// TestReplFencedPrimaryRefusesWrites forces the primary into the fenced
// role and requires it to NACK writes with the fenced code — the gate
// that stops a zombie primary from acknowledging a forked history.
func TestReplFencedPrimaryRefusesWrites(t *testing.T) {
	pr := startReplPair(t, pairLease)
	waitApplied(t, pr.s, 0)

	pr.p.repl.fence(pr.p.repl.epoch.Load() + 1)
	expectNack(t, pr.paddr, wire.NackFenced)
	if !flightHas(pr.p, "repl_fenced") {
		t.Fatal("fenced primary flight recorder missing repl_fenced")
	}
	st := pr.p.Statusz().Replication
	if st == nil || st.Role != "fenced" {
		t.Fatalf("fenced status = %+v, want role fenced", st)
	}
}
