package server

import (
	"strings"
	"testing"

	"oij/internal/faultfs"
	"oij/internal/tuple"
	"oij/internal/wire"
)

// FuzzWALRecover throws arbitrary bytes at the recovery path as a segment
// image. Invariants: recovery never panics and never reports an error on
// content (only I/O can fail); the replay callback fires exactly
// st.recovered times; a writer opened over the same segment (sanitize +
// migrate) always succeeds; and after one append + clean close, a second
// recovery sees a fully clean log — every previously salvaged frame, the
// new frame, no torn bytes.
func FuzzWALRecover(f *testing.F) {
	frame := func(t wire.Tuple) []byte {
		var b [wire.WALFrameBytes]byte
		wire.EncodeWALFrame(b[:], t)
		return b[:]
	}
	// A healthy v2 segment.
	v2 := []byte(wire.WALMagicV2)
	for i := 0; i < 3; i++ {
		v2 = append(v2, frame(wire.Tuple{TS: tuple.Time(i), Key: 1, Val: 1})...)
	}
	f.Add(v2)
	// Same segment with a flipped bit mid-frame and a torn tail.
	dam := append([]byte(nil), v2...)
	dam[wire.WALHeaderBytes+wire.WALFrameBytes+7] ^= 0x01
	f.Add(append(dam, 0xab, 0xcd))
	// A legacy v1 segment (raw network frames), intact and torn.
	var sb strings.Builder
	enc := wire.NewWriter(&sb)
	enc.WriteTuple(wire.Tuple{TS: 9, Key: 2, Val: 0.5})
	enc.WriteTuple(wire.Tuple{TS: 10, Key: 2, Val: 1.5})
	enc.Flush()
	f.Add([]byte(sb.String()))
	f.Add([]byte(sb.String()[:30]))
	// Degenerates: empty, torn header, pure junk.
	f.Add([]byte{})
	f.Add([]byte(wire.WALMagicV2[:5]))
	f.Add([]byte{0xff, 0x00, 0x13, 0x37})

	f.Fuzz(func(t *testing.T, data []byte) {
		m := faultfs.NewMem()
		m.Put("wal", data)

		var replayed int64
		st, _, err := replayWAL(m, "wal", func(wire.Tuple) { replayed++ })
		if err != nil {
			t.Fatalf("recovery failed on content: %v", err)
		}
		if replayed != st.recovered {
			t.Fatalf("callback fired %d times, stats say %d", replayed, st.recovered)
		}

		// Second life: the writer must be able to continue any log.
		w, err := newWALWriter(m, "wal", 1<<20, 1000, walSyncAlways)
		if err != nil {
			t.Fatalf("writer refused salvageable log: %v", err)
		}
		if err := w.append(wire.Tuple{TS: 1 << 40, Key: 7, Val: 2}); err != nil {
			t.Fatal(err)
		}
		if err := w.close(); err != nil {
			t.Fatal(err)
		}

		st2, _, err := replayWAL(m, "wal", nil)
		if err != nil {
			t.Fatal(err)
		}
		if st2.truncated != 0 {
			t.Fatalf("sanitized log still has %d torn bytes", st2.truncated)
		}
		if st2.recovered != st.recovered+1 {
			t.Fatalf("second life recovered %d frames, want %d salvaged + 1 new",
				st2.recovered, st.recovered)
		}
		if st2.skipped != st.skipped {
			t.Fatalf("skip count changed across sanitize: %d -> %d", st.skipped, st2.skipped)
		}
	})
}
