package server

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"oij/internal/wire"
)

func walCfg(t *testing.T) (Config, string) {
	t.Helper()
	dir := t.TempDir()
	cfg := baseCfg()
	cfg.WALPath = filepath.Join(dir, "wal")
	return cfg, cfg.WALPath
}

// TestWALRecovery: state streamed into one server instance survives into a
// fresh instance recovering from the same log.
func TestWALRecovery(t *testing.T) {
	cfg, path := walCfg(t)

	// First life: stream some orders and stop.
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := Dial(addr.String())
	for i := 0; i < 50; i++ {
		c1.SendProbe(9, int64(1000+i), 2)
	}
	c1.Barrier()
	if _, err := c1.RecvResults(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	s1.Shutdown()
	if s1.WALErrors() != 0 {
		t.Fatalf("wal errors: %d", s1.WALErrors())
	}

	// Second life: recover and query.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("recovered %d probes, want 50", n)
	}
	addr2, err := s2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown()
	c2, _ := Dial(addr2.String())
	defer c2.Close()
	c2.SendBase(9, 2000, 0)
	c2.Barrier()
	rs, err := c2.RecvResults(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Matches != 50 || rs[0].Agg != 100 {
		t.Fatalf("recovered state wrong: %+v", rs)
	}
	_ = path
}

// TestWALTornTail: a crash mid-frame leaves a truncated record, which
// recovery must tolerate, keeping everything before it.
func TestWALTornTail(t *testing.T) {
	cfg, path := walCfg(t)
	// Write 10 intact frames plus a torn one, by hand.
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := wire.NewWriter(f)
	for i := 0; i < 10; i++ {
		w.WriteTuple(wire.Tuple{TS: int64(i), Key: 1, Val: 1})
	}
	w.Flush()
	f.Write([]byte{wire.TagProbe, 0x01, 0x02}) // torn frame
	f.Close()

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Recover()
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if n != 10 {
		t.Fatalf("recovered %d, want 10", n)
	}
	s.Shutdown()
}

// TestWALRotation: tiny segments rotate and at most two exist; recovery
// still sees the live horizon.
func TestWALRotation(t *testing.T) {
	cfg, path := walCfg(t)
	cfg.WALSegmentBytes = 10 * wire.WALFrameBytes
	cfg.Engine.Window.Pre = 100 // tiny horizon so rotation can discard
	cfg.Engine.Window.Lateness = 10

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, _ := Dial(addr.String())
	for i := 0; i < 500; i++ {
		c.SendProbe(1, int64(i*10), 1)
	}
	c.Barrier()
	if _, err := c.RecvResults(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Close()
	s.Shutdown()

	cur, err := os.Stat(path)
	if err != nil {
		t.Fatalf("current segment missing: %v", err)
	}
	if cur.Size() > 40*wire.WALFrameBytes {
		t.Fatalf("current segment grew to %d bytes despite rotation", cur.Size())
	}
	// Recovery over the rotated pair still works.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || n >= 500 {
		t.Fatalf("recovered %d probes, want a rotated subset", n)
	}
	s2.Shutdown()
}

// TestNoWALNoop: Recover without a WAL configured is a no-op.
func TestNoWALNoop(t *testing.T) {
	s, err := New(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s.Recover(); n != 0 || err != nil {
		t.Fatalf("no-op recover: %d, %v", n, err)
	}
	s.Shutdown()
}
