package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"oij/internal/obs/timeline"
)

// tickTelemetry drives the epoch sampler's telemetry step by hand (collect
// → record → evaluate) with a synthetic clock, so SLO transitions are
// tested deterministically instead of racing a real ticker.
type telemetryClock struct {
	s     *Server
	now   time.Time
	epoch uint64
}

func (c *telemetryClock) tick(n int) {
	for i := 0; i < n; i++ {
		c.now = c.now.Add(time.Second)
		c.epoch++
		c.s.o.vals = c.s.o.collector.Collect(time.Second, c.s.o.vals)
		c.s.o.timeline.Record(c.now, c.s.o.vals)
		c.s.slo.evaluate(c.now, c.epoch)
	}
}

func getHealthz(t *testing.T, s *Server) (int, HealthStatus) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.serveHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("healthz content-type = %q", ct)
	}
	var st HealthStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("healthz JSON: %v", err)
	}
	return rec.Code, st
}

// TestHealthzSLOTransitions: /healthz flips 200→503 when a dimension
// breaches, holds 503 while the breach is inside the window, recovers to
// 200 once the window is clean, and leaves both transitions in the flight
// recorder.
func TestHealthzSLOTransitions(t *testing.T) {
	cfg := baseCfg()
	cfg.SLOWindow = 2 * time.Second
	cfg.SLOMemLevel = 2
	cfg.SLOP99 = 50 * time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	clk := &telemetryClock{s: s, now: time.Unix(10_000, 0)}
	clk.tick(3)
	code, st := getHealthz(t, s)
	if code != http.StatusOK || !st.Healthy {
		t.Fatalf("clean server unhealthy: code=%d %+v", code, st)
	}
	if len(st.Dimensions) != 2 {
		t.Fatalf("dimensions = %+v, want p99 + mem", st.Dimensions)
	}

	// Trip the memory-pressure rung.
	s.memLevel.Store(2)
	clk.tick(1)
	code, st = getHealthz(t, s)
	if code != http.StatusServiceUnavailable || st.Healthy {
		t.Fatalf("breach not reported: code=%d %+v", code, st)
	}
	var memDim *SLODimension
	for i := range st.Dimensions {
		if st.Dimensions[i].Name == "mem_pressure" {
			memDim = &st.Dimensions[i]
		}
	}
	if memDim == nil || !memDim.Breached || memDim.Value != 2 {
		t.Fatalf("mem dimension: %+v", st.Dimensions)
	}
	if st.Transitions != 1 {
		t.Fatalf("transitions = %d, want 1", st.Transitions)
	}

	// Pressure clears, but the verdict must hold 503 until the breach ages
	// out of the trailing window (step function, not instant forgiveness).
	s.memLevel.Store(0)
	clk.tick(1)
	if code, _ := getHealthz(t, s); code != http.StatusServiceUnavailable {
		t.Fatal("verdict recovered before the window was clean")
	}
	for i := 0; i < 5; i++ {
		clk.tick(1)
		if code, _ = getHealthz(t, s); code == http.StatusOK {
			break
		}
	}
	code, st = getHealthz(t, s)
	if code != http.StatusOK || !st.Healthy {
		t.Fatalf("never recovered: code=%d %+v", code, st)
	}
	if st.Transitions != 2 {
		t.Fatalf("transitions = %d, want 2", st.Transitions)
	}

	// Both transitions are in the flight recorder.
	var sb strings.Builder
	s.flight.WriteJSON(&sb, "test")
	dump := sb.String()
	if !strings.Contains(dump, "slo_unhealthy") || !strings.Contains(dump, "slo_recovered") {
		t.Fatalf("flight recorder missing SLO transitions:\n%s", dump)
	}

	// The verdict is also a timeline series (healthy=1 during the early
	// clean epochs, 0 after the breach tick).
	if _, max, ok := s.o.timeline.WindowStats("oij_slo_healthy", 30*time.Second, clk.now); !ok || max != 1 {
		t.Fatalf("oij_slo_healthy series: max=%g ok=%v", max, ok)
	}
}

// TestHealthzDisabledIsLiveness: with no thresholds, /healthz is a plain
// 200 liveness probe with no dimensions.
func TestHealthzDisabledIsLiveness(t *testing.T) {
	s, err := New(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	if s.slo.enabled() {
		t.Fatal("SLO enabled without thresholds")
	}
	code, st := getHealthz(t, s)
	if code != http.StatusOK || !st.Healthy || len(st.Dimensions) != 0 {
		t.Fatalf("liveness probe: code=%d %+v", code, st)
	}
}

// TestTimelineEndpoint: /timeline serves every retention tier with the
// collector-derived series, honors ?series/?res/?since, and rejects
// unknown parameters with a JSON 400.
func TestTimelineEndpoint(t *testing.T) {
	cfg := baseCfg()
	cfg.AdminAddr = "127.0.0.1:0"
	cfg.UtilEpoch = 10 * time.Millisecond
	srv, addr := startServer(t, cfg)
	base := fmt.Sprintf("http://%s", srv.AdminAddr())

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 300; i++ {
		c.SendProbe(uint64(i%7), int64(1000+i*10), 1)
	}
	c.SendBase(3, 2500, 0)
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecvResults(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Give the sampler a couple of epochs to land ticks in the timeline.
	deadline := time.Now().Add(5 * time.Second)
	for srv.o.timeline.Ticks() < 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	for _, res := range []string{"1s", "10s", "1m"} {
		var doc timeline.Doc
		if err := json.Unmarshal([]byte(scrape(t, base+"/timeline?res="+res)), &doc); err != nil {
			t.Fatalf("res=%s: %v", res, err)
		}
		if doc.Res != res || len(doc.Resolutions) != 3 {
			t.Fatalf("res=%s doc: res=%q resolutions=%v", res, doc.Res, doc.Resolutions)
		}
		if len(doc.Series) == 0 {
			t.Fatalf("res=%s: no series", res)
		}
	}

	var doc timeline.Doc
	body := scrape(t, base+"/timeline?series=oij_probes_total:rate,oij_slo_healthy")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Series) != 2 || doc.Series[0].Name != "oij_probes_total:rate" {
		t.Fatalf("series selection: %+v", doc.SeriesNames)
	}
	if len(doc.Series[0].Points) == 0 {
		t.Fatal("probe rate series has no points")
	}
	// The sampler ticked while probes flowed, so some slot saw a non-zero
	// rate.
	var sawRate bool
	for _, p := range doc.Series[0].Points {
		if p.Max > 0 {
			sawRate = true
		}
	}
	if !sawRate {
		t.Fatalf("probe rate never rose above zero: %+v", doc.Series[0].Points)
	}

	resp, err := http.Get(base + "/timeline?res=5s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown resolution: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error content-type = %q", ct)
	}
}

// TestHotKeysOnIngest: a skewed stream surfaces its hot key on /statusz,
// attributed with shares, and the skew gauges feed the timeline.
func TestHotKeysOnIngest(t *testing.T) {
	cfg := baseCfg()
	cfg.HotKeysK = 8
	srv, addr := startServer(t, cfg)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Key 42 takes half the probe stream; the rest spreads over 20 keys.
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			c.SendProbe(42, int64(1000+i), 1)
		} else {
			c.SendProbe(uint64(100+i%20), int64(1000+i), 1)
		}
	}
	c.SendBase(42, 3000, 0)
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecvResults(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	st := srv.Statusz()
	if st.HotKeys == nil {
		t.Fatal("hot keys absent from statusz")
	}
	hk := st.HotKeys
	if hk.K != 8 || len(hk.Probes.Entries) == 0 {
		t.Fatalf("hot keys shape: %+v", hk)
	}
	if hk.Probes.Entries[0].Key != 42 {
		t.Fatalf("hottest probe key = %d, want 42 (%+v)", hk.Probes.Entries[0].Key, hk.Probes.Entries)
	}
	if hk.ProbesTop1 < 0.4 || hk.ProbesTop1 > 0.6 {
		t.Fatalf("top1 share = %g, want ≈0.5", hk.ProbesTop1)
	}
	if hk.Bases.Entries[0].Key != 42 || hk.Bases.Total != 1 {
		t.Fatalf("base hot keys: %+v", hk.Bases)
	}
	// The share gauges are registered, so they are timeline series too.
	var found bool
	for _, name := range srv.o.timeline.Names() {
		if name == "oij_hotkey_probe_top1_share" {
			found = true
		}
	}
	if !found {
		t.Fatalf("hot-key share gauge not a timeline series: %v", srv.o.timeline.Names())
	}
}

// TestHotKeysDisabled: a negative K turns the tracker off end to end.
func TestHotKeysDisabled(t *testing.T) {
	cfg := baseCfg()
	cfg.HotKeysK = -1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	if s.o.hotProbes != nil || s.Statusz().HotKeys != nil {
		t.Fatal("hot keys active despite being disabled")
	}
}
