package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts the first sample value of a metric (with or without
// labels) from Prometheus text output.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !(strings.HasPrefix(rest, " ") || strings.HasPrefix(rest, "{")) {
			continue // longer metric name sharing the prefix
		}
		fields := strings.Fields(line)
		var v float64
		if _, err := fmt.Sscanf(fields[len(fields)-1], "%g", &v); err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

// TestAdminEndToEnd is the acceptance test: while a join is streaming, the
// admin endpoint serves Prometheus metrics, a full statusz document, and
// pprof, with counters advancing between scrapes.
func TestAdminEndToEnd(t *testing.T) {
	cfg := baseCfg()
	cfg.AdminAddr = "127.0.0.1:0"
	cfg.UtilEpoch = 20 * time.Millisecond
	srv, addr := startServer(t, cfg)
	if srv.AdminAddr() == nil {
		t.Fatal("admin address not bound")
	}
	base := fmt.Sprintf("http://%s", srv.AdminAddr())

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	stream := func(n, probesPer int) {
		for i := 0; i < n; i++ {
			for p := 0; p < probesPer; p++ {
				c.SendProbe(uint64(i%7), int64(1000+i*10+p), 1)
			}
			c.SendBase(uint64(i%7), int64(1000+i*10), 0)
		}
		if err := c.Barrier(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.RecvResults(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}

	stream(200, 3)
	m1 := scrape(t, base+"/metrics")
	probes1 := metricValue(t, m1, "oij_probes_total")
	reqs1 := metricValue(t, m1, "oij_requests_total")
	if probes1 < 600 || reqs1 < 200 {
		t.Fatalf("first scrape: probes=%g requests=%g", probes1, reqs1)
	}
	for _, want := range []string{
		"# TYPE oij_request_latency_seconds summary",
		`oij_request_latency_seconds{quantile="0.99"}`,
		"oij_joiner_utilization",
		"oij_joiner_queue_depth",
		"oij_watermark_lag_us",
		"oij_results_total",
	} {
		if !strings.Contains(m1, want) {
			t.Fatalf("metrics missing %q:\n%s", want, m1)
		}
	}

	// Counters advance while the join keeps streaming.
	stream(200, 3)
	m2 := scrape(t, base+"/metrics")
	if probes2 := metricValue(t, m2, "oij_probes_total"); probes2 <= probes1 {
		t.Fatalf("probes did not advance: %g -> %g", probes1, probes2)
	}
	if reqs2 := metricValue(t, m2, "oij_requests_total"); reqs2 <= reqs1 {
		t.Fatalf("requests did not advance: %g -> %g", reqs1, reqs2)
	}

	var st Status
	if err := json.Unmarshal([]byte(scrape(t, base+"/statusz")), &st); err != nil {
		t.Fatalf("statusz JSON: %v", err)
	}
	if st.Algorithm == "" || st.Joiners != 2 || len(st.PerJoiner) != 2 {
		t.Fatalf("statusz shape: %+v", st)
	}
	if st.Requests < 400 || st.Results < 400 || st.Probes < 1200 {
		t.Fatalf("statusz counters: %+v", st)
	}
	if st.Latency.Count < 400 || st.Latency.P99Ms < st.Latency.P50Ms {
		t.Fatalf("statusz latency: %+v", st.Latency)
	}
	if st.WatermarkLag <= 0 {
		// Lateness is 1000µs and the watermark trails max event time by
		// exactly that once tuples flow.
		t.Fatalf("watermark lag = %d, want > 0", st.WatermarkLag)
	}
	var processed int64
	for _, js := range st.PerJoiner {
		processed += js.Processed
		if js.QueueDepth < 0 || js.Utilization < 0 || js.Utilization > 1 {
			t.Fatalf("joiner status out of range: %+v", js)
		}
	}
	if processed == 0 {
		t.Fatal("no per-joiner processed counts")
	}

	if body := scrape(t, base+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatal("pprof index not served")
	}
}

// TestAdminRouteHeaders audits every admin route: each must answer with
// the expected status code and an exact Content-Type, so scrapers,
// dashboards, and load balancers never have to sniff bodies. New admin
// endpoints belong in this table.
func TestAdminRouteHeaders(t *testing.T) {
	cfg := baseCfg()
	cfg.AdminAddr = "127.0.0.1:0"
	srv, _ := startServer(t, cfg)
	base := fmt.Sprintf("http://%s", srv.AdminAddr())

	routes := []struct {
		path        string
		wantStatus  int
		wantType    string
		bodyMustHit string // substring the body must contain (skip when empty)
	}{
		{"/metrics", http.StatusOK, "text/plain; version=0.0.4; charset=utf-8", "# TYPE oij_probes_total counter"},
		{"/statusz", http.StatusOK, "application/json", `"per_joiner"`},
		{"/tracez", http.StatusOK, "application/json", `"spans"`},
		{"/tracez?format=chrome", http.StatusOK, "application/json", "traceEvents"},
		{"/debug/flightrecorder", http.StatusOK, "application/json", `"events"`},
		{"/timeline", http.StatusOK, "application/json", `"resolutions"`},
		{"/timeline?res=bogus", http.StatusBadRequest, "application/json", `"error"`},
		{"/healthz", http.StatusOK, "application/json", `"healthy"`},
		{"/debug/pprof/", http.StatusOK, "text/html; charset=utf-8", "goroutine"},
	}
	client := &http.Client{Timeout: 5 * time.Second}
	for _, rt := range routes {
		resp, err := client.Get(base + rt.path)
		if err != nil {
			t.Fatalf("GET %s: %v", rt.path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: %v", rt.path, err)
		}
		if resp.StatusCode != rt.wantStatus {
			t.Errorf("%s: status %d, want %d", rt.path, resp.StatusCode, rt.wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); ct != rt.wantType {
			t.Errorf("%s: content-type %q, want %q", rt.path, ct, rt.wantType)
		}
		if rt.bodyMustHit != "" && !strings.Contains(string(body), rt.bodyMustHit) {
			t.Errorf("%s: body missing %q:\n%.400s", rt.path, rt.bodyMustHit, body)
		}
	}
}

// TestStatuszWithoutListen exercises the snapshot path on an idle,
// never-listening server (no watermark yet, empty histogram).
func TestStatuszWithoutListen(t *testing.T) {
	s, err := New(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	st := s.Statusz()
	if st.WatermarkLag != 0 || st.Latency.Count != 0 || st.Served != 0 {
		t.Fatalf("idle statusz: %+v", st)
	}
	if s.AdminAddr() != nil {
		t.Fatal("admin bound without AdminAddr config")
	}
}

// TestUtilizationSamplerAdvances verifies the Fig. 14 live gauge vector
// gets populated while traffic flows.
func TestUtilizationSamplerAdvances(t *testing.T) {
	cfg := baseCfg()
	cfg.AdminAddr = "127.0.0.1:0"
	cfg.UtilEpoch = 5 * time.Millisecond
	srv, addr := startServer(t, cfg)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for i := 0; i < 500; i++ {
			c.SendProbe(uint64(i%13), int64(1000+i), 1)
		}
		c.SendBase(3, 2000, 0)
		if err := c.Barrier(); err != nil {
			t.Fatal(err)
		}
		if _, err := c.RecvResults(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		if srv.o.epochs.Load() > 0 {
			return // at least one epoch sampled
		}
	}
	t.Fatal("utilization sampler never closed an epoch")
}
