// Runtime health sampling: goroutine count, heap occupancy, the GC's next
// heap goal, and the epoch-local p99 GC pause, read from runtime/metrics
// once per sampler epoch. Lives in its own file because runtime/metrics
// would collide with the oij/internal/metrics import in the rest of the
// package.
package server

import (
	"math"
	runtimemetrics "runtime/metrics"
	"sync/atomic"
)

// runtime/metrics names sampled per epoch.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmGCPauses   = "/sched/pauses/total/gc:seconds"
	rmHeapInUse  = "/memory/classes/heap/objects:bytes"
	rmGCGoal     = "/gc/heap/goal:bytes"
)

// runtimeSampler snapshots process health. sample() is called only from
// the sampler goroutine; the atomic fields are read from scrape handlers
// and /statusz on other goroutines.
type runtimeSampler struct {
	samples []runtimemetrics.Sample

	goroutines atomic.Int64
	heapInUse  atomic.Int64
	gcGoal     atomic.Int64
	// pauseP99NS is the 99th-percentile GC pause over the last epoch,
	// derived from bucket-count deltas of the cumulative pause histogram.
	pauseP99NS atomic.Int64

	prevPauseCounts []uint64
}

func newRuntimeSampler() *runtimeSampler {
	rt := &runtimeSampler{
		samples: []runtimemetrics.Sample{
			{Name: rmGoroutines},
			{Name: rmGCPauses},
			{Name: rmHeapInUse},
			{Name: rmGCGoal},
		},
	}
	rt.sample() // seed so gauges are live before the first epoch closes
	return rt
}

// sample refreshes every health series. Called once per sampler epoch.
func (rt *runtimeSampler) sample() {
	if rt == nil {
		return
	}
	runtimemetrics.Read(rt.samples)
	for i := range rt.samples {
		s := &rt.samples[i]
		switch s.Name {
		case rmGoroutines:
			if s.Value.Kind() == runtimemetrics.KindUint64 {
				rt.goroutines.Store(int64(s.Value.Uint64()))
			}
		case rmHeapInUse:
			if s.Value.Kind() == runtimemetrics.KindUint64 {
				rt.heapInUse.Store(int64(s.Value.Uint64()))
			}
		case rmGCGoal:
			if s.Value.Kind() == runtimemetrics.KindUint64 {
				rt.gcGoal.Store(int64(s.Value.Uint64()))
			}
		case rmGCPauses:
			if s.Value.Kind() == runtimemetrics.KindFloat64Histogram {
				rt.updatePauseP99(s.Value.Float64Histogram())
			}
		}
	}
}

// updatePauseP99 turns the cumulative pause histogram into an epoch-local
// p99: the bucket-count deltas since the previous sample form this epoch's
// distribution, and the p99 is the upper bound of the bucket where the
// 99th-percentile count lands. No pauses this epoch reports zero.
func (rt *runtimeSampler) updatePauseP99(h *runtimemetrics.Float64Histogram) {
	if h == nil || len(h.Counts) == 0 {
		return
	}
	if len(rt.prevPauseCounts) != len(h.Counts) {
		rt.prevPauseCounts = make([]uint64, len(h.Counts))
		copy(rt.prevPauseCounts, h.Counts)
		return
	}
	var total uint64
	for i, c := range h.Counts {
		if c >= rt.prevPauseCounts[i] {
			total += c - rt.prevPauseCounts[i]
		}
	}
	if total == 0 {
		rt.pauseP99NS.Store(0)
		copy(rt.prevPauseCounts, h.Counts)
		return
	}
	target := uint64(math.Ceil(float64(total) * 0.99))
	var cum uint64
	p99 := 0.0
	for i, c := range h.Counts {
		delta := uint64(0)
		if c >= rt.prevPauseCounts[i] {
			delta = c - rt.prevPauseCounts[i]
		}
		cum += delta
		if cum >= target {
			// Buckets[i+1] is this bucket's upper bound (seconds); the
			// last bucket's bound may be +Inf — fall back to its lower
			// bound so the gauge stays finite.
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 1) {
				ub = h.Buckets[i]
			}
			p99 = ub
			break
		}
	}
	rt.pauseP99NS.Store(int64(p99 * 1e9))
	copy(rt.prevPauseCounts, h.Counts)
}

// pauseP99US reports the epoch p99 GC pause in microseconds.
func (rt *runtimeSampler) pauseP99US() float64 {
	if rt == nil {
		return 0
	}
	return float64(rt.pauseP99NS.Load()) / 1e3
}
