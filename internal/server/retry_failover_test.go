package server

import (
	"errors"
	"net"
	"testing"
	"time"

	"oij/internal/wire"
)

// deadAddr returns a loopback address with nothing listening on it.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// retryRoundTrip is the canonical Do body: one probe, one base, barrier,
// and exactly one result back.
func retryRoundTrip(c *Client) error {
	if err := c.SendProbe(3, 1000, 2); err != nil {
		return err
	}
	if _, err := c.SendBase(3, 1001, 0); err != nil {
		return err
	}
	if err := c.Barrier(); err != nil {
		return err
	}
	rs, err := c.RecvResults(5 * time.Second)
	if err != nil {
		return err
	}
	if len(rs) != 1 {
		return errors.New("missing result")
	}
	return nil
}

// TestFailoverClientSkipsDeadAddress: a candidate list led by a dead
// address must fail over to the live one within a single Do call — no
// backoff sleeps, since rotation happens inside the sweep — and pin there
// for subsequent calls. The dead address's breaker opens; the live one
// stays closed (per-address isolation).
func TestFailoverClientSkipsDeadAddress(t *testing.T) {
	_, live := startServer(t, baseCfg())
	rc := NewFailoverClient([]string{deadAddr(t), live}, DialOptions{DialTimeout: 200 * time.Millisecond})
	rc.Breaker = Breaker{Threshold: 1, Cooldown: time.Hour}
	defer rc.Close()
	var slept int
	rc.sleep = func(time.Duration) { slept++ }

	if err := rc.Do(retryRoundTrip); err != nil {
		t.Fatalf("Do with one live candidate: %v", err)
	}
	if slept != 0 {
		t.Fatalf("failover slept %d times, want in-sweep rotation", slept)
	}
	if got := rc.BreakerStates(); got[0] != "open" || got[1] != "closed" {
		t.Fatalf("breaker states %v, want [open closed]", got)
	}
	// Sticky: the next call must go straight to the live address (whose
	// breaker is closed) without touching the dead one.
	if err := rc.Do(retryRoundTrip); err != nil {
		t.Fatalf("second Do: %v", err)
	}
	if slept != 0 {
		t.Fatalf("pinned call slept %d times", slept)
	}
}

// TestFailoverClientAllDown: when every candidate is unreachable, Do must
// surface the typed ErrAllAddrsDown (wrapped with the last transport
// error) so callers can tell a dead replica set from a live refusal.
func TestFailoverClientAllDown(t *testing.T) {
	rc := NewFailoverClient([]string{deadAddr(t), deadAddr(t)}, DialOptions{DialTimeout: 100 * time.Millisecond})
	rc.Backoff = Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}
	rc.Breaker = Breaker{Threshold: 2, Cooldown: time.Hour}
	rc.MaxAttempts = 4
	rc.sleep = func(time.Duration) {}

	err := rc.Do(func(*Client) error { t.Fatal("fn ran without a connection"); return nil })
	if !errors.Is(err, ErrAllAddrsDown) {
		t.Fatalf("err = %v, want ErrAllAddrsDown", err)
	}
	for i, st := range rc.BreakerStates() {
		if st != "open" {
			t.Fatalf("address %d breaker %s, want open", i, st)
		}
	}
}

// TestFailoverClientNotAllDownWhenRefused: a server that answers — even
// with a refusal — means the set is not dead, so the typed all-down error
// must NOT appear.
func TestFailoverClientNotAllDownWhenRefused(t *testing.T) {
	cfg := baseCfg()
	cfg.RequestDeadline = time.Nanosecond // NACK everything
	_, addr := startServer(t, cfg)

	rc := NewFailoverClient([]string{deadAddr(t), addr}, DialOptions{DialTimeout: 200 * time.Millisecond})
	rc.Backoff = Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond}
	rc.MaxAttempts = 2
	rc.sleep = func(time.Duration) {}
	defer rc.Close()

	err := rc.Do(func(c *Client) error {
		if _, err := c.SendBase(1, 1000, 0); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		_, err := c.RecvResults(5 * time.Second)
		return err
	})
	if err == nil {
		t.Fatal("Do succeeded against an always-NACK server")
	}
	if errors.Is(err, ErrAllAddrsDown) {
		t.Fatalf("reachable-but-refusing set reported as all down: %v", err)
	}
	var nerr *NackError
	if !errors.As(err, &nerr) {
		t.Fatalf("err = %v, want NackError cause", err)
	}
}

// TestFailoverClientRidesThroughPromotion is the client side of the
// failover story: a client configured with both pair addresses keeps
// working when the primary is killed mid-session. The standby NACKs
// not-primary until its lease expires; those refusals must rotate (not
// give up), and a later attempt lands on the promoted standby.
func TestFailoverClientRidesThroughPromotion(t *testing.T) {
	pr := startReplPair(t, pairLease)
	waitApplied(t, pr.s, 0)

	rc := NewFailoverClient([]string{pr.paddr, pr.saddr},
		DialOptions{DialTimeout: 200 * time.Millisecond, ReadTimeout: 2 * time.Second})
	rc.Backoff = Backoff{Base: 20 * time.Millisecond, Max: 100 * time.Millisecond}
	rc.Breaker = Breaker{Threshold: 100} // the dead primary must not fail-fast the sweep
	rc.MaxAttempts = 50
	defer rc.Close()

	if err := rc.Do(retryRoundTrip); err != nil {
		t.Fatalf("round-trip against the primary: %v", err)
	}

	// While the standby is a standby, its refusal must be the role NACK
	// (the code the rotation logic keys on).
	expectNack(t, pr.saddr, wire.NackNotPrimary)

	pr.killPrimary()
	if err := rc.Do(retryRoundTrip); err != nil {
		t.Fatalf("round-trip through failover: %v", err)
	}
	if got := pr.s.ReplRole(); !got.Serving() {
		t.Fatalf("standby answered while role %v", got)
	}
}
