package server

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"oij/internal/faultfs"
	"oij/internal/tuple"
	"oij/internal/wire"
)

// collectReplay replays a log into a slice.
func collectReplay(t *testing.T, fsys faultfs.FS, path string) ([]wire.Tuple, walStats) {
	t.Helper()
	var got []wire.Tuple
	st, _, err := replayWAL(fsys, path, func(tp wire.Tuple) { got = append(got, tp) })
	if err != nil {
		t.Fatal(err)
	}
	return got, st
}

// TestWALWritesV2Header: a fresh segment starts with the magic and frames
// carry checksums.
func TestWALWritesV2Header(t *testing.T) {
	m := faultfs.NewMem()
	w, err := newWALWriter(m, "wal", 0, 1000, walSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	w.append(wire.Tuple{TS: 1, Key: 2, Val: 3})
	w.close()

	b := m.Bytes("wal")
	if len(b) != wire.WALHeaderBytes+wire.WALFrameBytes {
		t.Fatalf("segment size %d", len(b))
	}
	if string(b[:wire.WALHeaderBytes]) != wire.WALMagicV2 {
		t.Fatalf("header %q", b[:wire.WALHeaderBytes])
	}
	if tu, err := wire.DecodeWALFrame(b[wire.WALHeaderBytes:]); err != nil || tu.TS != 1 || tu.Key != 2 || tu.Val != 3 {
		t.Fatalf("frame %+v %v", tu, err)
	}
}

// TestWALCorruptFrameSkipped: a bit-flipped frame mid-log is skipped, the
// frames around it survive, and the skip is counted. On the v1 format this
// was silent garbage or an aborted recovery.
func TestWALCorruptFrameSkipped(t *testing.T) {
	m := faultfs.NewMem()
	w, err := newWALWriter(m, "wal", 0, 1000, walSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		w.append(wire.Tuple{TS: tuple.Time(i), Key: 1, Val: float64(i)})
	}
	w.close()
	// Flip a bit inside frame 4's value field.
	m.Corrupt("wal", int64(wire.WALHeaderBytes+4*wire.WALFrameBytes+20))

	got, st := collectReplay(t, m, "wal")
	if st.recovered != 9 || st.skipped != 1 || st.truncated != 0 {
		t.Fatalf("stats %+v", st)
	}
	for _, tp := range got {
		if tp.TS == 4 {
			t.Fatal("corrupt frame replayed")
		}
	}
}

// TestWALTornTailTruncateAndContinue: after a crash leaves a torn tail,
// the next writer must cut the tail back to a frame boundary before
// appending — otherwise new frames land mid-frame and a later recovery
// reads garbage. The pre-v2 WAL failed exactly this: it opened with
// O_APPEND after the torn bytes, and the second recovery lost every frame
// written after the first crash.
func TestWALTornTailTruncateAndContinue(t *testing.T) {
	m := faultfs.NewMem()
	w, err := newWALWriter(m, "wal", 0, 1000, walSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		w.append(wire.Tuple{TS: tuple.Time(i), Key: 1, Val: 1})
	}
	w.close()

	// Crash mid-frame: 11 bytes of a frame made it to disk.
	var torn [wire.WALFrameBytes]byte
	wire.EncodeWALFrame(torn[:], wire.Tuple{TS: 5, Key: 1, Val: 1})
	m.Put("wal", append(m.Bytes("wal"), torn[:11]...))

	// Second life: open (sanitize), append five more frames.
	w2, err := newWALWriter(m, "wal", 0, 1000, walSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if w2.sanitized != 11 {
		t.Fatalf("sanitized %d bytes, want 11", w2.sanitized)
	}
	for i := 5; i < 10; i++ {
		w2.append(wire.Tuple{TS: tuple.Time(i), Key: 1, Val: 1})
	}
	w2.close()

	got, st := collectReplay(t, m, "wal")
	if st.recovered != 10 || st.skipped != 0 {
		t.Fatalf("stats %+v (frames written after a torn tail were lost)", st)
	}
	for i, tp := range got {
		if tp.TS != tuple.Time(i) {
			t.Fatalf("frame %d has ts %d", i, tp.TS)
		}
	}
}

// TestWALMigratesV1: a legacy unchecksummed segment is rewritten as v2 on
// open; recovery sees every frame and new appends are checksummed.
func TestWALMigratesV1(t *testing.T) {
	m := faultfs.NewMem()
	var v1 []byte
	{
		var sb strings.Builder
		enc := wire.NewWriter(&sb)
		for i := 0; i < 7; i++ {
			enc.WriteTuple(wire.Tuple{TS: tuple.Time(100 + i), Key: 3, Val: float64(i)})
		}
		enc.Flush()
		v1 = []byte(sb.String())
	}
	m.Put("wal", v1)

	w, err := newWALWriter(m, "wal", 0, 1000, walSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	w.append(wire.Tuple{TS: 200, Key: 3, Val: 9})
	w.close()

	b := m.Bytes("wal")
	if string(b[:wire.WALHeaderBytes]) != wire.WALMagicV2 {
		t.Fatalf("not migrated: %q", b[:wire.WALHeaderBytes])
	}
	got, st := collectReplay(t, m, "wal")
	if st.recovered != 8 || st.skipped != 0 || st.truncated != 0 {
		t.Fatalf("stats %+v", st)
	}
	if got[0].TS != 100 || got[7].TS != 200 {
		t.Fatalf("order lost: first %d last %d", got[0].TS, got[7].TS)
	}
}

// TestWALMigratesV1TornTail: migration drops only the torn suffix of a
// legacy segment and counts the cut bytes.
func TestWALMigratesV1TornTail(t *testing.T) {
	m := faultfs.NewMem()
	var sb strings.Builder
	enc := wire.NewWriter(&sb)
	for i := 0; i < 4; i++ {
		enc.WriteTuple(wire.Tuple{TS: tuple.Time(i), Key: 1, Val: 1})
	}
	enc.Flush()
	m.Put("wal", append([]byte(sb.String()), wire.TagProbe, 0x01, 0x02))

	w, err := newWALWriter(m, "wal", 0, 1000, walSyncInterval)
	if err != nil {
		t.Fatal(err)
	}
	if w.sanitized != 3 {
		t.Fatalf("sanitized %d, want 3", w.sanitized)
	}
	w.close()
	_, st := collectReplay(t, m, "wal")
	if st.recovered != 4 || st.truncated != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestWALGarbageSegmentReset: a current segment that salvages nothing
// (e.g. a torn header) is reset so the writer can stamp a clean header.
func TestWALGarbageSegmentReset(t *testing.T) {
	m := faultfs.NewMem()
	m.Put("wal", []byte("OIJW")) // torn header from a crashed creation
	w, err := newWALWriter(m, "wal", 0, 1000, walSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if w.sanitized != 4 {
		t.Fatalf("sanitized %d, want 4", w.sanitized)
	}
	w.append(wire.Tuple{TS: 1, Key: 1, Val: 1})
	w.close()
	_, st := collectReplay(t, m, "wal")
	if st.recovered != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestWALDiskFullRetry: a failed append keeps the frame buffered and a
// later flush persists it — a transiently full disk loses nothing.
func TestWALDiskFullRetry(t *testing.T) {
	m := faultfs.NewMem()
	w, err := newWALWriter(m, "wal", 0, 1000, walSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	m.FailAt(m.Ops() + 1) // next write fails
	if err := w.append(wire.Tuple{TS: 1, Key: 1, Val: 1}); err == nil {
		t.Fatal("append on full disk must report an error")
	}
	// Disk clears; the buffered frame goes out with the next append.
	if err := w.append(wire.Tuple{TS: 2, Key: 1, Val: 2}); err != nil {
		t.Fatal(err)
	}
	w.close()
	got, st := collectReplay(t, m, "wal")
	if st.recovered != 2 || len(got) != 2 || got[0].TS != 1 || got[1].TS != 2 {
		t.Fatalf("stats %+v got %+v", st, got)
	}
}

// TestWALShortWriteRealigns: a short write (torn append) is truncated back
// to a frame boundary and the interrupted frame is rewritten whole.
func TestWALShortWriteRealigns(t *testing.T) {
	m := faultfs.NewMem()
	w, err := newWALWriter(m, "wal", 0, 1000, walSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	w.append(wire.Tuple{TS: 1, Key: 1, Val: 1})
	m.ShortWriteAt(m.Ops() + 1)
	if err := w.append(wire.Tuple{TS: 2, Key: 1, Val: 2}); err == nil {
		t.Fatal("short write must surface")
	}
	if err := w.append(wire.Tuple{TS: 3, Key: 1, Val: 3}); err != nil {
		t.Fatal(err)
	}
	w.close()
	got, st := collectReplay(t, m, "wal")
	if st.recovered != 3 || st.skipped != 0 || st.truncated != 0 {
		t.Fatalf("stats %+v", st)
	}
	for i, tp := range got {
		if tp.TS != tuple.Time(i+1) {
			t.Fatalf("frame %d ts %d", i, tp.TS)
		}
	}
}

// TestWALFsyncAlwaysSurvivesPowerLoss: in "always" mode every append that
// returned is durable across a power kill; in "none" mode unflushed frames
// are legitimately lost. This is the contract the -wal-sync knob sells.
func TestWALFsyncAlwaysSurvivesPowerLoss(t *testing.T) {
	m := faultfs.NewMem()
	w, err := newWALWriter(m, "wal", 0, 1000, walSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := w.append(wire.Tuple{TS: tuple.Time(i), Key: 1, Val: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// No close, no flush: the process dies and the machine loses power.
	m.KillPower()
	_, st := collectReplay(t, m, "wal")
	if st.recovered != 20 {
		t.Fatalf("fsync-on-ack lost frames: %+v", st)
	}

	m2 := faultfs.NewMem()
	w2, err := newWALWriter(m2, "wal", 0, 1000, walSyncNever)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		w2.append(wire.Tuple{TS: tuple.Time(i), Key: 1, Val: 1})
	}
	w2.heartbeat() // flushed to the OS, never fsynced
	m2.KillPower()
	if _, st := collectReplay(t, m2, "wal"); st.recovered != 0 {
		t.Fatalf("sync=none recovered %d frames across power loss — Mem sync model broken", st.recovered)
	}
}

// TestWALRotationKeepsZeroTimestampSegment: a previous segment whose
// newest frame is stamped 0 is still inside the retention horizon; the
// old writer used 0 as the "no previous" sentinel and deleted it.
func TestWALRotationKeepsZeroTimestampSegment(t *testing.T) {
	m := faultfs.NewMem()
	maxBytes := int64(wire.WALHeaderBytes + 4*wire.WALFrameBytes)
	w, err := newWALWriter(m, "wal", maxBytes, 1_000_000, walSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	// 12 frames all at ts=0: everything stays inside the horizon forever,
	// so nothing may ever be deleted. The first rotation is legal (no
	// previous segment); after it prevNewest == 0.
	for i := 0; i < 12; i++ {
		if err := w.append(wire.Tuple{TS: 0, Key: 1, Val: 1}); err != nil {
			t.Fatal(err)
		}
	}
	w.close()
	_, st := collectReplay(t, m, "wal")
	if st.recovered != 12 {
		t.Fatalf("rotation deleted live zero-timestamp frames: recovered %d of 12", st.recovered)
	}
}

// TestWALRotationSurvivesRestart: prevNewest must be rediscovered from
// disk after a restart. The old writer forgot it, so the first rotation
// of the new process deleted a previous segment still inside the
// retention horizon.
func TestWALRotationSurvivesRestart(t *testing.T) {
	m := faultfs.NewMem()
	maxBytes := int64(wire.WALHeaderBytes + 4*wire.WALFrameBytes)
	retention := tuple.Time(1_000_000)
	w, err := newWALWriter(m, "wal", maxBytes, retention, walSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	// Fill past one rotation: frames 0..7, rotation happens at frame 4
	// (no previous yet), so "wal.1" holds live frames.
	for i := 0; i < 8; i++ {
		if err := w.append(wire.Tuple{TS: tuple.Time(i), Key: 1, Val: 1}); err != nil {
			t.Fatal(err)
		}
	}
	w.close()
	if m.Bytes("wal.1") == nil {
		t.Fatal("test setup: no rotation happened")
	}

	// Restart and keep appending timestamps still within the horizon.
	w2, err := newWALWriter(m, "wal", maxBytes, retention, walSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if !w2.hasPrev {
		t.Fatal("restart forgot the previous segment")
	}
	for i := 8; i < 16; i++ {
		if err := w2.append(wire.Tuple{TS: tuple.Time(i), Key: 1, Val: 1}); err != nil {
			t.Fatal(err)
		}
	}
	w2.close()
	_, st := collectReplay(t, m, "wal")
	if st.recovered != 16 {
		t.Fatalf("restart rotation deleted live frames: recovered %d of 16", st.recovered)
	}
}

// TestWALRotationBoundary: rotation at the exact retention boundary. A
// previous segment whose newest frame sits exactly window+lateness+slack
// behind the newest timestamp is still needed (eviction is strict-less),
// so rotation must keep it; one microsecond older and it may go.
func TestWALRotationBoundary(t *testing.T) {
	maxBytes := int64(wire.WALHeaderBytes + 2*wire.WALFrameBytes)
	retention := tuple.Time(100)

	run := func(newestDelta tuple.Time) (kept bool) {
		m := faultfs.NewMem()
		w, err := newWALWriter(m, "wal", maxBytes, retention, walSyncAlways)
		if err != nil {
			t.Fatal(err)
		}
		// Two frames fill the segment; rotation moves them to wal.1.
		w.append(wire.Tuple{TS: 0, Key: 1, Val: 1})
		w.append(wire.Tuple{TS: 10, Key: 1, Val: 1}) // prevNewest = 10
		// Two more at the probe boundary: rotation decision compares
		// prevNewest+retention against maxTS.
		w.append(wire.Tuple{TS: 10 + retention + newestDelta, Key: 1, Val: 1})
		w.append(wire.Tuple{TS: 10 + retention + newestDelta, Key: 1, Val: 1})
		w.close()
		got, _ := collectReplay(t, m, "wal")
		for _, tp := range got {
			if tp.TS == 10 {
				return true // the boundary segment survived
			}
		}
		return false
	}

	if !run(0) {
		t.Fatal("segment exactly at the retention boundary was rotated away")
	}
	if run(1) {
		t.Fatal("segment past the retention boundary was kept forever")
	}
}

// TestWALSyncModeValidation: the config knob rejects unknown values and
// reports the active mode through /statusz.
func TestWALSyncModeValidation(t *testing.T) {
	cfg, _ := walCfg(t)
	cfg.WALSync = "sometimes"
	if _, err := New(cfg); err == nil {
		t.Fatal("bogus WALSync accepted")
	}
	cfg.WALSync = "always"
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	if got := s.Statusz().WALSync; got != "always" {
		t.Fatalf("statusz wal_sync = %q", got)
	}
}

// TestWALRecoveryMetricsExposed: a log with one corrupt frame and a torn
// tail recovers with the skip and truncation visible in /statusz and in
// the Prometheus scrape — the operator-facing face of crash recovery.
func TestWALRecoveryMetricsExposed(t *testing.T) {
	m := faultfs.NewMem()
	w, err := newWALWriter(m, "wal", 0, 1000, walSyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		w.append(wire.Tuple{TS: tuple.Time(1000 + i), Key: 9, Val: 2})
	}
	w.close()
	m.Corrupt("wal", int64(wire.WALHeaderBytes+3*wire.WALFrameBytes+5))
	m.Put("wal", append(m.Bytes("wal"), 0xde, 0xad, 0xbe)) // torn tail

	cfg := baseCfg()
	cfg.WALPath = "wal"
	cfg.WALFS = m
	cfg.AdminAddr = "127.0.0.1:0"
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("recovered %d, want 9", n)
	}
	rec, skip, trunc := s.WALStats()
	if rec != 9 || skip != 1 || trunc != 3 {
		t.Fatalf("WALStats = (%d, %d, %d), want (9, 1, 3)", rec, skip, trunc)
	}
	if _, err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	st := s.Statusz()
	if st.WALRecovered != 9 || st.WALSkipped != 1 || st.WALTruncated != 3 {
		t.Fatalf("statusz wal counters: %+v", st)
	}

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(fmt.Sprintf("http://%s/metrics", s.AdminAddr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"oij_wal_recovered_frames 9",
		"oij_wal_skipped_frames 1",
		"oij_wal_truncated_bytes 3",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestWALEndToEndSecondLifeOnDisk: the full server path on the real
// filesystem — stream, kill with a torn tail, recover, query — answers
// reflect exactly the surviving frames.
func TestWALEndToEndSecondLifeOnDisk(t *testing.T) {
	cfg, path := walCfg(t)
	cfg.WALSync = "always"

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := Dial(addr.String())
	for i := 0; i < 30; i++ {
		c1.SendProbe(5, tuple.Time(1000+i), 1)
	}
	c1.Barrier()
	if _, err := c1.RecvResults(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	s1.Shutdown()

	// Simulated crash damage: flip a bit in one frame, tear the tail.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[wire.WALHeaderBytes+10*wire.WALFrameBytes+3] ^= 0x10
	b = append(b, 0x77)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 29 {
		t.Fatalf("recovered %d, want 29 (one corrupt frame skipped)", n)
	}
	addr2, err := s2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown()
	c2, _ := Dial(addr2.String())
	defer c2.Close()
	c2.SendBase(5, 2000, 0)
	c2.Barrier()
	rs, err := c2.RecvResults(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Matches != 29 || rs[0].Agg != 29 {
		t.Fatalf("recovered answer wrong: %+v", rs)
	}
}
