// Live observability for the serving path: per-joiner instruments from
// package obs, the /statusz snapshot, and the epoch sampler that turns the
// paper's Fig. 14 utilization trace into a live gauge vector.
//
// Hot-path writes are shard-local atomics only (one counter add per tuple,
// one histogram bucket add per result); everything else is computed at
// scrape time from state the engine already publishes atomically.
package server

import (
	"fmt"
	"time"
	"unsafe"

	"oij/internal/control"
	"oij/internal/engine"
	"oij/internal/metrics"
	"oij/internal/obs"
	"oij/internal/obs/timeline"
	"oij/internal/prof"
	"oij/internal/repl"
	"oij/internal/trace"
	"oij/internal/tuple"
	"oij/internal/watermark"
)

// utilHistoryEpochs bounds the retained Fig. 14 trace on a long-running
// server (at the default 1s epoch: the last 10 minutes).
const utilHistoryEpochs = 600

// serverObs owns the server's registry and hot-path instruments.
type serverObs struct {
	reg     *obs.Registry
	probes  *obs.Counter      // ingested probe tuples
	bases   *obs.Counter      // ingested base (request) tuples
	results *obs.CounterVec   // emitted results, per joiner
	latency *obs.HistogramVec // request latency in ns, per joiner
	util    *obs.GaugeVec     // live utilization in [0,1], per joiner
	trace   *metrics.Utilization
	epochs  *obs.Counter // closed utilization epochs
	started time.Time

	// Overload-control transitions: every shed, reject, and eviction is
	// counted so the degradation ladder is visible on /metrics.
	shedProbes       *obs.Counter // probes dropped at admission (funnel full)
	rejected         *obs.Counter // requests NACKed at admission (policy reject)
	deadlineRejected *obs.Counter // requests NACKed past RequestDeadline
	memShedProbes    *obs.Counter // probes shed by the memory watermark guard
	slowEvicted      *obs.Counter // sessions evicted for not draining results
	nacksDropped     *obs.Counter // NACKs dropped because the session buffer was full

	// replRefused counts writes refused because this node is a standby or
	// fenced (nil — never incremented — when replication is off).
	replRefused *obs.Counter

	// Hot-key analytics: one SpaceSaving sketch per joiner per stream,
	// keys routed by the engines' own partition hash so skew is attributed
	// to the joiner that actually absorbs it. Nil when disabled.
	hotProbes *obs.HotKeys
	hotBases  *obs.HotKeys

	// Exact hot-path allocation accounting: one counter pair per pipeline
	// stage (objects, bytes), fed by the engines through the AllocRecorder
	// seam and by the serving layer's own allocation sites. This is the
	// always-on allocations-per-tuple baseline the batched hot-path work
	// optimizes against; the sampled heap profiles corroborate it.
	allocObjs  [trace.NumStages]*obs.Counter
	allocBytes [trace.NumStages]*obs.Counter

	// rt samples runtime/metrics once per epoch (goroutines, GC pause
	// p99, heap in-use, GC goal) so process health rides the same
	// timeline as join health.
	rt *runtimeSampler

	// Telemetry timeline: the collector flattens the registry into a
	// series vector once per epoch and the multi-resolution ring retains
	// it (≈5m at 1s, 1h at 10s, 24h at 1m) in fixed memory. vals is the
	// sampler-owned scratch vector.
	collector *obs.Collector
	timeline  *timeline.Timeline
	vals      []float64
}

// Accounting sizes for the serving layer's own hot-path allocation sites.
// Spans and timers are exact struct sizes; the wire writer is its bufio
// buffer (the struct around it is noise by comparison).
var (
	spanAllocBytes  = int64(unsafe.Sizeof(trace.Span{}))
	timerAllocBytes = int64(unsafe.Sizeof(time.Timer{}))
)

const wireWriterAllocBytes = 4096

// countAlloc books one hot-path allocation report against a stage's
// counters. Nil-safe on a half-built serverObs (nothing registers before
// newServerObs returns in production; tests may call earlier).
func (o *serverObs) countAlloc(st trace.Stage, objs, bytes int64) {
	if o == nil || o.allocObjs[st] == nil {
		return
	}
	o.allocObjs[st].Add(objs)
	o.allocBytes[st].Add(bytes)
}

// CountAlloc implements engine.AllocRecorder for the engines' hot paths.
func (k serverSink) CountAlloc(st trace.Stage, objs, bytes int64) {
	k.s.o.countAlloc(st, objs, bytes)
}

// introspect returns the engine's live transport view, or nil when the
// engine predates the Introspector interface.
func (s *Server) introspect() engine.Introspector {
	in, _ := s.eng.(engine.Introspector)
	return in
}

// watermarkLag returns (maxEventTS, watermark, lag) in event-time µs,
// zeros before the first tuple.
func (s *Server) watermarkLag() (maxTS, wm, lag int64) {
	in := s.introspect()
	if in == nil {
		return 0, 0, 0
	}
	m, w := in.MaxEventTS(), in.Watermark()
	if m == watermark.MinTime {
		return 0, 0, 0
	}
	if w == watermark.MinTime {
		return int64(m), 0, 0
	}
	return int64(m), int64(w), int64(m - w)
}

// newServerObs registers every instrument against a fresh registry.
func newServerObs(s *Server, joiners int) *serverObs {
	reg := obs.NewRegistry()
	o := &serverObs{
		reg:     reg,
		probes:  reg.NewCounter("oij_probes_total", "Probe tuples ingested over the network."),
		bases:   reg.NewCounter("oij_requests_total", "Base (feature request) tuples ingested."),
		results: reg.NewCounterVec("oij_results_total", "Join results emitted, per joiner.", joiners),
		latency: reg.NewHistogramVec("oij_request_latency_seconds", "Request latency from arrival to result emission.", joiners, 1e9, nil),
		util:    reg.NewGaugeVec("oij_joiner_utilization", "Per-joiner busy fraction over the last epoch (Fig. 14, live).", joiners),
		trace:   metrics.NewUtilization(joiners, 0),
		started: time.Now(),
	}
	o.epochs = reg.NewCounter("oij_utilization_epochs_total", "Closed utilization sampling epochs.")
	o.trace.LimitHistory(utilHistoryEpochs)

	// Per-stage allocation accounting. The Prometheus encoder renders
	// vector labels only for per-joiner shards, so each stage gets its own
	// counter name rather than a label.
	for st := trace.Stage(0); st < trace.NumStages; st++ {
		name := st.String()
		o.allocObjs[st] = reg.NewCounter("oij_stage_alloc_objects_"+name+"_total",
			"Hot-path allocations attributed to the "+name+" stage (exact counts from instrumented sites).")
		o.allocBytes[st] = reg.NewCounter("oij_stage_alloc_bytes_"+name+"_total",
			"Bytes allocated on the hot path in the "+name+" stage (slice growth exact, boxed states nominal).")
	}

	// Runtime health: sampled once per epoch by the sampler loop, read
	// here at scrape/collect time.
	o.rt = newRuntimeSampler()
	reg.NewGaugeFunc("oij_go_goroutines", "Live goroutine count (sampled per epoch).", func() float64 {
		return float64(o.rt.goroutines.Load())
	})
	reg.NewGaugeFunc("oij_go_heap_inuse_bytes", "Heap bytes occupied by live objects (sampled per epoch).", func() float64 {
		return float64(o.rt.heapInUse.Load())
	})
	reg.NewGaugeFunc("oij_go_gc_goal_bytes", "Heap size the next GC cycle targets (sampled per epoch).", func() float64 {
		return float64(o.rt.gcGoal.Load())
	})
	reg.NewGaugeFunc("oij_go_gc_pause_p99_us", "99th percentile GC stop-the-world pause over the last epoch (µs).", func() float64 {
		return o.rt.pauseP99US()
	})

	if s.prof != nil {
		reg.NewGaugeFunc("oij_prof_captures_total", "Profiles captured into the ring since startup.", func() float64 {
			return float64(s.prof.Stats().Captures)
		})
		reg.NewGaugeFunc("oij_prof_incident_captures_total", "Out-of-cycle incident captures since startup.", func() float64 {
			return float64(s.prof.Stats().Incidents)
		})
		reg.NewGaugeFunc("oij_prof_errors_total", "Profile capture or ring write failures since startup.", func() float64 {
			return float64(s.prof.Stats().Errors)
		})
		reg.NewGaugeFunc("oij_prof_ring_entries", "Profiles currently retained in the on-disk ring.", func() float64 {
			return float64(s.prof.Stats().Entries)
		})
		reg.NewGaugeFunc("oij_prof_ring_bytes", "Bytes currently retained in the on-disk profile ring.", func() float64 {
			return float64(s.prof.Stats().Bytes)
		})
	}

	o.shedProbes = reg.NewCounter("oij_admission_shed_probes_total", "Probe tuples dropped at admission because the ingest funnel was full.")
	o.rejected = reg.NewCounter("oij_admission_rejected_total", "Requests NACKed at admission under the reject policy.")
	o.deadlineRejected = reg.NewCounter("oij_deadline_rejected_total", "Requests NACKed after exceeding the per-request deadline in the funnel.")
	o.memShedProbes = reg.NewCounter("oij_mem_shed_probes_total", "Probe tuples shed by the memory watermark guard.")
	o.slowEvicted = reg.NewCounter("oij_slow_sessions_evicted_total", "Sessions evicted because their result buffer stayed full past the grace period.")
	o.nacksDropped = reg.NewCounter("oij_nacks_dropped_total", "NACK frames dropped because the session's outgoing buffer was full.")

	reg.NewGaugeFunc("oij_uptime_seconds", "Seconds since the server started.", func() float64 {
		return time.Since(o.started).Seconds()
	})
	reg.NewGaugeFunc("oij_watermark_lag_us", "Max observed event time minus current watermark (event-time µs).", func() float64 {
		_, _, lag := s.watermarkLag()
		return float64(lag)
	})
	reg.NewGaugeFunc("oij_pending_requests", "Requests awaiting a result.", func() float64 {
		s.mu.Lock()
		n := len(s.pending)
		s.mu.Unlock()
		return float64(n)
	})
	reg.NewGaugeFunc("oij_ingest_queue_depth", "Tuples buffered in the ingest funnel.", func() float64 {
		return float64(len(s.ingest))
	})
	reg.NewGaugeFunc("oij_sessions_active", "Currently connected sessions.", func() float64 {
		s.mu.Lock()
		n := len(s.sessions)
		s.mu.Unlock()
		return float64(n)
	})
	reg.NewGaugeFunc("oij_buffered_probes", "Estimated probe tuples buffered in the engine (ingested minus evicted).", func() float64 {
		return float64(s.bufferedProbes())
	})
	reg.NewGaugeFunc("oij_mem_pressure_level", "Memory guard rung: 0 normal, 1 shedding oldest-window probes, 2 shedding all probes.", func() float64 {
		return float64(s.memLevel.Load())
	})
	reg.NewGaugeFunc("oij_transport_stall_parks_total", "Driver parks while waiting for joiner ring space.", func() float64 {
		if in := s.introspect(); in != nil {
			return float64(in.Stalls().Parks)
		}
		return 0
	})
	reg.NewGaugeFunc("oij_stalled_joiners", "Joiners whose input ring has blocked the driver past the stall threshold.", func() float64 {
		if in := s.introspect(); in != nil {
			return float64(len(in.Stalls().Wedged(s.cfg.StallThreshold)))
		}
		return 0
	})
	reg.NewGaugeFunc("oij_wal_errors", "WAL append failures since startup.", func() float64 {
		return float64(s.walErrs.Load())
	})
	reg.NewGaugeFunc("oij_wal_recovered_frames", "WAL frames replayed into the engine at recovery.", func() float64 {
		return float64(s.walRecovered.Load())
	})
	reg.NewGaugeFunc("oij_wal_skipped_frames", "Checksum-failed WAL frames skipped at recovery.", func() float64 {
		return float64(s.walSkipped.Load())
	})
	reg.NewGaugeFunc("oij_wal_truncated_bytes", "Torn or unsalvageable bytes truncated from WAL segment tails.", func() float64 {
		return float64(s.walTruncated.Load())
	})
	reg.NewGaugeFunc("oij_effectiveness", "Paper Eq. 1: in-window fraction of visited buffer entries (1 when uninstrumented).", func() float64 {
		return s.eng.Stats().MergedEffectiveness()
	})
	reg.NewGaugeFunc("oij_unbalancedness", "Paper Eq. 2: dispersion of per-joiner workloads.", func() float64 {
		return metrics.Unbalancedness(s.eng.Stats().Loads())
	})
	reg.NewGaugeVecFunc("oij_joiner_queue_depth", "Per-joiner input ring depth.", func() []float64 {
		in := s.introspect()
		if in == nil {
			return make([]float64, joiners)
		}
		depths := in.QueueDepths()
		out := make([]float64, len(depths))
		for i, d := range depths {
			out[i] = float64(d)
		}
		return out
	})
	reg.NewGaugeVecFunc("oij_joiner_processed_total", "Data tuples handled per joiner (paper W_i).", func() []float64 {
		st := s.eng.Stats()
		out := make([]float64, len(st.Processed))
		for i := range st.Processed {
			out[i] = float64(st.Processed[i].Load())
		}
		return out
	})
	if r, ok := s.eng.(interface{ Reschedules() int64 }); ok {
		reg.NewGaugeFunc("oij_reschedules", "Accepted dynamic-schedule changes (Algorithm 3).", func() float64 {
			return float64(r.Reschedules())
		})
	}
	rev, goVer, procs := obs.Build()
	reg.NewInfo("oij_build_info", "Build identity; constant 1.", [][2]string{
		{"revision", rev},
		{"go_version", goVer},
		{"gomaxprocs", fmt.Sprintf("%d", procs)},
	})
	reg.NewGaugeFunc("oij_trace_sample_every", "Per-request trace sampling rate (1-in-N; 0 = disabled).", func() float64 {
		return float64(s.tracer.SampleN())
	})
	reg.NewGaugeFunc("oij_trace_completed_spans", "Sampled request spans completed since startup.", func() float64 {
		return float64(s.tracer.Completed())
	})
	reg.NewGaugeFunc("oij_flight_events_total", "Flight-recorder events recorded since startup.", func() float64 {
		return float64(s.flight.Seq())
	})
	reg.NewGaugeFunc("oij_flight_dumps_total", "Flight-recorder incident dumps written since startup.", func() float64 {
		return float64(s.flight.Dumps())
	})
	reg.NewGaugeFunc("oij_slo_healthy", "SLO verdict served on /healthz: 1 healthy, 0 unhealthy.", func() float64 {
		if s.slo.healthy.Load() {
			return 1
		}
		return 0
	})
	if k := s.cfg.HotKeysK; k > 0 {
		hash := func(h uint64) uint64 { return engine.HashKey(tuple.Key(h)) }
		o.hotProbes = obs.NewHotKeys(joiners, k, hash)
		o.hotBases = obs.NewHotKeys(joiners, k, hash)
		reg.NewGaugeFunc("oij_hotkey_probe_top1_share", "Stream share of the hottest probe key (SpaceSaving merge across joiners).", func() float64 {
			top1, _ := o.hotProbes.TopShare(k)
			return top1
		})
		reg.NewGaugeFunc("oij_hotkey_probe_topk_share", "Stream share of the merged probe top-K residency.", func() float64 {
			_, topK := o.hotProbes.TopShare(k)
			return topK
		})
		reg.NewGaugeFunc("oij_hotkey_base_top1_share", "Stream share of the hottest request key.", func() float64 {
			top1, _ := o.hotBases.TopShare(k)
			return top1
		})
		reg.NewGaugeFunc("oij_hotkey_base_topk_share", "Stream share of the merged request top-K residency.", func() float64 {
			_, topK := o.hotBases.TopShare(k)
			return topK
		})
	}
	reg.NewGaugeFunc("oij_active_joiners", "Joiners currently routed new work (controller-resized; equals the pool when static).", func() float64 {
		return float64(s.activeJoiners())
	})
	reg.NewGaugeFunc("oij_admission_level", "Live admission ladder level: 0 block, 1 shed-probes, 2 reject.", func() float64 {
		return float64(s.admission.Load())
	})
	if r := s.repl; r != nil {
		o.replRefused = reg.NewCounter("oij_repl_refused_total", "Writes refused because this node is a replication standby or fenced.")
		reg.NewGaugeFunc("oij_repl_role", "Replication role: 1 primary, 2 standby, 3 fenced.", func() float64 {
			return float64(r.role.Load())
		})
		reg.NewGaugeFunc("oij_repl_epoch", "Fencing epoch this node last durably stamped or applied.", func() float64 {
			return float64(r.epoch.Load())
		})
		reg.NewGaugeFunc("oij_repl_log_end_slot", "Next WAL slot this node will assign (end of its log).", func() float64 {
			if s.wal == nil {
				return 0
			}
			appended, _ := s.wal.slots()
			return float64(appended)
		})
		reg.NewGaugeFunc("oij_repl_durable_slot", "WAL slots known durable on this node's own disk.", func() float64 {
			if s.wal == nil {
				return 0
			}
			_, durable := s.wal.slots()
			return float64(durable)
		})
		reg.NewGaugeFunc("oij_repl_replay_offset", "Replication replay offset: acked slot on a primary, applied primary slot on a standby.", func() float64 {
			switch r.roleNow() {
			case repl.RoleStandby, repl.RoleFenced:
				return float64(r.appliedSlot())
			default:
				return float64(r.acked.Load())
			}
		})
		reg.NewGaugeFunc("oij_repl_lag_bytes", "Replication lag in bytes (un-acked log suffix on a primary, un-applied on a standby).", func() float64 {
			b, _ := r.lag()
			return float64(b)
		})
		reg.NewGaugeFunc("oij_repl_lag_ms", "Milliseconds since the last replication liveness signal (ack on a primary, any traffic on a standby).", func() float64 {
			_, ms := r.lag()
			return ms
		})
		reg.NewGaugeFunc("oij_repl_standbys", "Standby links currently attached to this node's source.", func() float64 {
			return float64(r.standbys.Load())
		})
		reg.NewGaugeFunc("oij_repl_caught_up", "1 once the standby has applied up to the primary's announced end of log.", func() float64 {
			if r.caughtUp.Load() {
				return 1
			}
			return 0
		})
	}
	reg.NewGaugeFunc("oij_mem_soft_pct", "Soft memory-guard rung as a percent of MemCapProbes.", func() float64 {
		return float64(s.memSoftPct.Load())
	})
	reg.NewGaugeFunc("oij_ctl_enabled", "1 while the adaptive controller is enabled.", func() float64 {
		if s.ctl != nil {
			return 1
		}
		return 0
	})
	reg.NewGaugeFunc("oij_ctl_decisions_total", "Controller decisions applied since startup.", func() float64 {
		if s.ctl == nil {
			return 0
		}
		return float64(s.ctl.Applied())
	})
	reg.NewGaugeFunc("oij_ctl_frozen", "1 while the controller is frozen (manual overrides still apply).", func() float64 {
		if s.ctl != nil && s.ctl.Frozen() {
			return 1
		}
		return 0
	})
	// The collector snapshots the instrument set, so every gauge above —
	// including the SLO verdict and hot-key shares — becomes a timeline
	// series; instruments must not be registered after this point.
	o.collector = obs.NewCollector(reg)
	o.timeline = timeline.New(o.collector.Names(), nil)
	return o
}

// sampleUtilization closes one epoch: per-joiner busy-time deltas become
// the live gauge vector and one Fig. 14 trace row.
func (s *Server) sampleUtilization(prevBusy []int64, epoch time.Duration) {
	st := s.eng.Stats()
	for i := range st.Busy {
		cur := st.Busy[i].Load()
		s.o.trace.AddBusy(i, time.Duration(cur-prevBusy[i]))
		prevBusy[i] = cur
	}
	row := s.o.trace.SnapshotOver(epoch)
	for i, f := range row {
		s.o.util.Shard(i).Set(f)
	}
	s.o.epochs.Inc()
}

// samplerLoop runs until Shutdown, closing a utilization epoch per tick.
// Each epoch also lands in the flight recorder, and the tick doubles as
// the stall watchdog's edge detector: the first epoch that sees wedged
// joiners records stall-detected (and triggers an incident dump), the
// first clean one after it records stall-cleared.
func (s *Server) samplerLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.UtilEpoch)
	defer tick.Stop()
	prev := make([]int64, s.cfg.Engine.Joiners)
	last := time.Now()
	var epoch uint64
	for {
		select {
		case <-s.stopSampler:
			return
		case now := <-tick.C:
			elapsed := now.Sub(last)
			s.sampleUtilization(prev, elapsed)
			last = now
			epoch++
			_, _, lag := s.watermarkLag()
			s.flight.Record(trace.CompEpoch, trace.EvEpoch, epoch, uint64(lag))
			s.watchStalls()
			// Runtime health is sampled on the same clock so the GC and
			// goroutine series line up with join-side series point for
			// point on /timeline.
			s.o.rt.sample()
			// The same tick feeds the telemetry timeline and re-scores
			// the SLO verdict, so /timeline, /healthz, and the flight
			// recorder all advance on one clock.
			s.o.vals = s.o.collector.Collect(elapsed, s.o.vals)
			s.o.timeline.Record(now, s.o.vals)
			s.slo.evaluate(now, epoch)
			// The controller consumes the same epoch snapshot the SLO
			// verdict was scored from, so its decisions and the health
			// transitions they react to share one clock in the flight
			// recorder.
			s.controllerStep(now, epoch)
		}
	}
}

// watchStalls records stall watchdog edges to the flight recorder.
func (s *Server) watchStalls() {
	in := s.introspect()
	if in == nil {
		return
	}
	st := in.Stalls()
	wedged := st.Wedged(s.cfg.StallThreshold)
	if len(wedged) > 0 {
		var maxBlock time.Duration
		for _, d := range st.BlockedFor {
			if d > maxBlock {
				maxBlock = d
			}
		}
		if !s.stallActive.Swap(true) {
			s.flight.Record(trace.CompStall, trace.EvStallDetected,
				uint64(len(wedged)), uint64(maxBlock))
			s.incident("stall-watchdog")
		}
	} else if s.stallActive.Swap(false) {
		s.flight.Record(trace.CompStall, trace.EvStallCleared, 0, 0)
	}
}

// JoinerStatus is one joiner's row in the /statusz document.
type JoinerStatus struct {
	Processed   int64   `json:"processed"`
	Results     int64   `json:"results"`
	QueueDepth  int     `json:"queue_depth"`
	Utilization float64 `json:"utilization"`
}

// LatencyStatus summarises the live request-latency distribution.
type LatencyStatus struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// OverloadStatus is the degradation ladder's live state on /statusz: the
// configured policy and knobs plus every shed/reject/evict transition
// counter and the stall watchdog's view of the joiners.
type OverloadStatus struct {
	Admission           string  `json:"admission"`
	RequestDeadlineMs   float64 `json:"request_deadline_ms,omitempty"`
	MemCapProbes        int64   `json:"mem_cap_probes,omitempty"`
	MemSoftPct          int32   `json:"mem_soft_pct,omitempty"`
	SlowGraceMs         float64 `json:"slow_consumer_grace_ms"`
	ShedProbes          int64   `json:"admission_shed_probes"`
	Rejected            int64   `json:"admission_rejected"`
	DeadlineRejected    int64   `json:"deadline_rejected"`
	MemShedProbes       int64   `json:"mem_shed_probes"`
	SlowSessionsEvicted int64   `json:"slow_sessions_evicted"`
	NacksDropped        int64   `json:"nacks_dropped"`
	BufferedProbes      int64   `json:"buffered_probes"`
	MemPressureLevel    int32   `json:"mem_pressure_level"`
	SessionsActive      int     `json:"sessions_active"`
	StallParks          int64   `json:"stall_parks"`
	StalledJoiners      []int   `json:"stalled_joiners,omitempty"`
}

// BuildStatus identifies the running build on /statusz (mirrors the
// oij_build_info labels on /metrics).
type BuildStatus struct {
	Revision   string `json:"revision"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// TraceStatus is the tracing subsystem's live state on /statusz.
type TraceStatus struct {
	SampleEvery    int    `json:"sample_every"`
	ActiveSpans    int64  `json:"active_spans"`
	CompletedSpans uint64 `json:"completed_spans"`
	DroppedSpans   uint64 `json:"dropped_spans"`
	FlightEvents   uint64 `json:"flight_events"`
	FlightDumps    uint64 `json:"flight_dumps"`
}

// HotKeysStatus is the hot-key analytics block on /statusz: the merged
// cross-joiner top-K of each stream, plus the concentration shares. Every
// Count overestimates the true frequency by at most its Err.
type HotKeysStatus struct {
	K           int              `json:"k"`
	Probes      obs.TopKSnapshot `json:"probes"`
	Bases       obs.TopKSnapshot `json:"bases"`
	ProbesTop1  float64          `json:"probes_top1_share"`
	ProbesTopK  float64          `json:"probes_topk_share"`
	BasesTop1   float64          `json:"bases_top1_share"`
	BasesTopK   float64          `json:"bases_topk_share"`
	PerJoinerK  int              `json:"per_joiner_k"`
	JoinerShard bool             `json:"joiner_sharded"`
}

// ControlStatus is the adaptive-controller block on /statusz: live knob
// values plus the tail of the decision ring (/controlz has the full ring
// and the policy document).
type ControlStatus struct {
	Frozen        bool               `json:"frozen"`
	ActiveJoiners int                `json:"active_joiners"`
	PoolJoiners   int                `json:"pool_joiners"`
	Applied       uint64             `json:"applied_decisions"`
	Suppressed    uint64             `json:"suppressed_decisions"`
	Recent        []control.Decision `json:"recent_decisions,omitempty"`
}

// RuntimeStatus is the per-epoch runtime/metrics sample on /statusz.
type RuntimeStatus struct {
	Goroutines   int64   `json:"goroutines"`
	HeapInUse    int64   `json:"heap_inuse_bytes"`
	GCGoalBytes  int64   `json:"gc_goal_bytes"`
	GCPauseP99Us float64 `json:"gc_pause_p99_us"`
}

// StageAllocStatus is one pipeline stage's exact hot-path allocation
// account (objects and bytes since startup).
type StageAllocStatus struct {
	Stage   string `json:"stage"`
	Objects int64  `json:"objects"`
	Bytes   int64  `json:"bytes"`
}

// TimelineStatus summarises the telemetry timeline on /statusz.
type TimelineStatus struct {
	Series      int      `json:"series"`
	Resolutions []string `json:"resolutions"`
	Ticks       uint64   `json:"ticks"`
	MemoryBytes int64    `json:"memory_bytes"`
}

// Status is the /statusz document: the paper's post-run metrics (§III-B,
// Eq. 1, Eq. 2, Fig. 14) read live off a serving daemon.
type Status struct {
	Build            BuildStatus        `json:"build"`
	Algorithm        string             `json:"algorithm"`
	Mode             string             `json:"mode"`
	Joiners          int                `json:"joiners"`
	ActiveJoiners    int                `json:"active_joiners"`
	UptimeSeconds    float64            `json:"uptime_seconds"`
	Served           int64              `json:"served"`
	Probes           int64              `json:"probes"`
	Requests         int64              `json:"requests"`
	Results          int64              `json:"results"`
	PendingRequests  int                `json:"pending_requests"`
	IngestQueueDepth int                `json:"ingest_queue_depth"`
	WALErrors        int64              `json:"wal_errors"`
	WALSync          string             `json:"wal_sync,omitempty"`
	WALRecovered     int64              `json:"wal_recovered_frames"`
	WALSkipped       int64              `json:"wal_skipped_frames"`
	WALTruncated     int64              `json:"wal_truncated_bytes"`
	MaxEventTS       int64              `json:"max_event_ts_us"`
	Watermark        int64              `json:"watermark_us"`
	WatermarkLag     int64              `json:"watermark_lag_us"`
	Effectiveness    float64            `json:"effectiveness"`
	Unbalancedness   float64            `json:"unbalancedness"`
	Reschedules      *int64             `json:"reschedules,omitempty"`
	Replication      *ReplStatus        `json:"replication,omitempty"`
	Overload         OverloadStatus     `json:"overload"`
	Control          *ControlStatus     `json:"control,omitempty"`
	Trace            TraceStatus        `json:"trace"`
	Runtime          RuntimeStatus      `json:"runtime"`
	Profiling        *prof.Stats        `json:"profiling,omitempty"`
	StageAllocs      []StageAllocStatus `json:"stage_allocs"`
	SLO              HealthStatus       `json:"slo"`
	Timeline         TimelineStatus     `json:"timeline"`
	HotKeys          *HotKeysStatus     `json:"hot_keys,omitempty"`
	Latency          LatencyStatus      `json:"latency"`
	PerJoiner        []JoinerStatus     `json:"per_joiner"`
}

// Statusz snapshots the server without stopping it: counters and gauges
// are atomics, the latency histogram merges per-joiner SWMR shards, and
// the only lock taken is the short pending-map mutex.
func (s *Server) Statusz() Status {
	st := s.eng.Stats()
	maxTS, wm, lag := s.watermarkLag()
	s.mu.Lock()
	pending := len(s.pending)
	active := len(s.sessions)
	s.mu.Unlock()

	joiners := s.cfg.Engine.Joiners
	var depths []int
	if in := s.introspect(); in != nil {
		depths = in.QueueDepths()
	} else {
		depths = make([]int, joiners)
	}
	utils := s.o.util.Values()
	resultsPer := s.o.results.Values()

	out := Status{
		Algorithm:        s.cfg.Algorithm,
		Mode:             s.cfg.Engine.Mode.String(),
		Joiners:          joiners,
		ActiveJoiners:    s.activeJoiners(),
		UptimeSeconds:    time.Since(s.o.started).Seconds(),
		Served:           s.served.Load(),
		Probes:           s.o.probes.Load(),
		Requests:         s.o.bases.Load(),
		Results:          s.o.results.Total(),
		PendingRequests:  pending,
		IngestQueueDepth: len(s.ingest),
		WALErrors:        s.walErrs.Load(),
		WALRecovered:     s.walRecovered.Load(),
		WALSkipped:       s.walSkipped.Load(),
		WALTruncated:     s.walTruncated.Load(),
		MaxEventTS:       maxTS,
		Watermark:        wm,
		WatermarkLag:     lag,
		Effectiveness:    st.MergedEffectiveness(),
		Unbalancedness:   metrics.Unbalancedness(st.Loads()),
		PerJoiner:        make([]JoinerStatus, joiners),
	}
	if s.wal != nil {
		out.WALSync = s.wal.sync.String()
	}
	if r, ok := s.eng.(interface{ Reschedules() int64 }); ok {
		n := r.Reschedules()
		out.Reschedules = &n
	}
	out.Replication = s.replStatus()
	out.Overload = OverloadStatus{
		Admission:           control.AdmissionName(int(s.admission.Load())),
		RequestDeadlineMs:   float64(s.cfg.RequestDeadline) / float64(time.Millisecond),
		MemCapProbes:        s.cfg.MemCapProbes,
		MemSoftPct:          s.memSoftPct.Load(),
		SlowGraceMs:         float64(s.cfg.SlowConsumerGrace) / float64(time.Millisecond),
		ShedProbes:          s.o.shedProbes.Load(),
		Rejected:            s.o.rejected.Load(),
		DeadlineRejected:    s.o.deadlineRejected.Load(),
		MemShedProbes:       s.o.memShedProbes.Load(),
		SlowSessionsEvicted: s.o.slowEvicted.Load(),
		NacksDropped:        s.o.nacksDropped.Load(),
		BufferedProbes:      s.bufferedProbes(),
		MemPressureLevel:    s.memLevel.Load(),
		SessionsActive:      active,
	}
	if in := s.introspect(); in != nil {
		stalls := in.Stalls()
		out.Overload.StallParks = stalls.Parks
		out.Overload.StalledJoiners = stalls.Wedged(s.cfg.StallThreshold)
	}
	rev, goVer, procs := obs.Build()
	out.Build = BuildStatus{Revision: rev, GoVersion: goVer, GOMAXPROCS: procs}
	out.Trace = TraceStatus{
		SampleEvery:    s.tracer.SampleN(),
		ActiveSpans:    s.tracer.Active(),
		CompletedSpans: s.tracer.Completed(),
		DroppedSpans:   s.tracer.Dropped(),
		FlightEvents:   s.flight.Seq(),
		FlightDumps:    s.flight.Dumps(),
	}
	if s.ctl != nil {
		snap := s.ctl.Snapshot()
		recent := snap.Decisions
		if len(recent) > 8 {
			recent = recent[:8]
		}
		out.Control = &ControlStatus{
			Frozen:        snap.Frozen,
			ActiveJoiners: s.activeJoiners(),
			PoolJoiners:   joiners,
			Applied:       snap.Applied,
			Suppressed:    snap.Suppressed,
			Recent:        recent,
		}
	}
	out.Runtime = RuntimeStatus{
		Goroutines:   s.o.rt.goroutines.Load(),
		HeapInUse:    s.o.rt.heapInUse.Load(),
		GCGoalBytes:  s.o.rt.gcGoal.Load(),
		GCPauseP99Us: s.o.rt.pauseP99US(),
	}
	if s.prof != nil {
		ps := s.prof.Stats()
		out.Profiling = &ps
	}
	out.StageAllocs = make([]StageAllocStatus, trace.NumStages)
	for st := trace.Stage(0); st < trace.NumStages; st++ {
		out.StageAllocs[st] = StageAllocStatus{
			Stage:   st.String(),
			Objects: s.o.allocObjs[st].Load(),
			Bytes:   s.o.allocBytes[st].Load(),
		}
	}
	out.SLO = s.slo.Status()
	out.Timeline = TimelineStatus{
		Series:      len(s.o.timeline.Names()),
		Resolutions: s.o.timeline.Resolutions(),
		Ticks:       s.o.timeline.Ticks(),
		MemoryBytes: s.o.timeline.MemoryBytes(),
	}
	if s.o.hotProbes != nil {
		k := s.cfg.HotKeysK
		hk := &HotKeysStatus{K: k, PerJoinerK: k, JoinerShard: true}
		hk.Probes = s.o.hotProbes.Merged(k)
		hk.Bases = s.o.hotBases.Merged(k)
		hk.ProbesTop1, hk.ProbesTopK = s.o.hotProbes.TopShare(k)
		hk.BasesTop1, hk.BasesTopK = s.o.hotBases.TopShare(k)
		out.HotKeys = hk
	}
	h := s.o.latency.Snapshot()
	msOf := func(ns int64) float64 { return float64(ns) / float64(time.Millisecond) }
	out.Latency = LatencyStatus{
		Count:  h.N,
		MeanMs: h.Mean() / float64(time.Millisecond),
		P50Ms:  msOf(h.Quantile(0.5)),
		P90Ms:  msOf(h.Quantile(0.9)),
		P99Ms:  msOf(h.Quantile(0.99)),
		P999Ms: msOf(h.Quantile(0.999)),
		MaxMs:  msOf(h.Max),
	}
	for i := 0; i < joiners; i++ {
		js := JoinerStatus{Processed: st.Processed[i].Load()}
		if i < len(resultsPer) {
			js.Results = resultsPer[i]
		}
		if i < len(depths) {
			js.QueueDepth = depths[i]
		}
		if i < len(utils) {
			js.Utilization = utils[i]
		}
		out.PerJoiner[i] = js
	}
	return out
}

// Record implements engine.LatencyRecorder: engines call it once per
// result whose base tuple carries an arrival stamp. The write is one
// atomic bucket add in the joiner's own histogram shard.
func (k serverSink) Record(joiner int, d time.Duration) {
	k.s.o.latency.Shard(joiner).Observe(int64(d))
}

// compile-time checks: the server sink accepts latency samples and hands
// out trace spans to engines.
var (
	_ engine.LatencyRecorder = serverSink{}
	_ engine.StageRecorder   = serverSink{}
	_ engine.AllocRecorder   = serverSink{}
)
