// Package faultfs puts a filesystem seam under the durability path. The
// WAL writes through the FS interface instead of package os, so tests can
// substitute Mem: an in-memory filesystem with deterministic fault
// injection — fail, short-write, or silently stop persisting ("crash") at
// the Nth mutating operation — plus a power-kill that discards everything
// not yet fsynced. That is the substrate of the crash-point recovery
// harness: run a scripted ingest against Mem, kill it at every injected
// point, recover from what survived, and compare the recovered answers to
// the refjoin oracle.
package faultfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sort"
	"sync"
)

// File is the append handle the WAL writes through.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage (fsync).
	Sync() error
	Close() error
}

// FS is the slice of filesystem the WAL needs. Implementations must return
// an error satisfying errors.Is(err, fs.ErrNotExist) when opening a
// missing file for reading.
type FS interface {
	// OpenAppend opens name for appending, creating it if absent, and
	// reports its current size.
	OpenAppend(name string) (File, int64, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name (no error if absent).
	Remove(name string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
}

// OS is the passthrough production implementation.
type OS struct{}

// OpenAppend implements FS.
func (OS) OpenAppend(name string) (File, int64, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, st.Size(), nil
}

// Open implements FS.
func (OS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

// Rename implements FS.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OS) Remove(name string) error {
	err := os.Remove(name)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// Truncate implements FS.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// Injection kinds for Mem.
type injectKind uint8

const (
	injectNone injectKind = iota
	// injectFail makes the Nth mutating op return ErrInjected having done
	// nothing — a full disk or an I/O error.
	injectFail
	// injectShort makes the Nth write persist only half its bytes and
	// return io.ErrShortWrite — a torn append.
	injectShort
	// injectCrash makes every op from the Nth on report success without
	// persisting anything — the process runs on, acking into the void,
	// until it is killed.
	injectCrash
)

// ErrInjected is returned by operations the injection point fails.
var ErrInjected = errors.New("faultfs: injected fault")

// Mem is an in-memory FS with fault injection. All methods are safe for
// concurrent use. The zero value is not usable; call NewMem.
type Mem struct {
	mu     sync.Mutex
	files  map[string]*memFile
	ops    int
	at     int // 1-based op index the injection triggers at
	kind   injectKind
	downed bool // post-crash: ops succeed but persist nothing
}

// memFile separates what the "OS" has accepted (data — survives a process
// kill) from what has reached stable storage (the synced prefix — all that
// survives a power kill).
type memFile struct {
	data   []byte
	synced int
}

// NewMem returns an empty filesystem with no injection armed.
func NewMem() *Mem { return &Mem{files: map[string]*memFile{}} }

// FailAt arms injection: the n-th mutating operation (1-based; Write,
// Sync, Rename, Remove, Truncate) returns ErrInjected without effect.
func (m *Mem) FailAt(n int) { m.arm(n, injectFail) }

// ShortWriteAt arms injection: the n-th mutating operation, if a write,
// persists only half its bytes and returns io.ErrShortWrite.
func (m *Mem) ShortWriteAt(n int) { m.arm(n, injectShort) }

// CrashAt arms injection: from the n-th mutating operation on, everything
// reports success but nothing is persisted.
func (m *Mem) CrashAt(n int) { m.arm(n, injectCrash) }

func (m *Mem) arm(n int, k injectKind) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.at, m.kind = n, k
}

// Ops reports how many mutating operations have been counted so far —
// run a script once uninjected to size a crash-point sweep.
func (m *Mem) Ops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// step counts one mutating op and reports whether the injection fires on
// it. Callers hold m.mu.
func (m *Mem) step() (fire bool) {
	m.ops++
	if m.kind == injectCrash && m.at > 0 && m.ops >= m.at {
		m.downed = true
	}
	return m.at > 0 && m.ops == m.at
}

// KillPower simulates power loss: every file keeps only its fsynced
// prefix. Data accepted by Write but never Synced is gone.
func (m *Mem) KillPower() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		f.data = f.data[:f.synced]
	}
}

// Corrupt flips one bit at off in name (no-op past EOF) — bit rot for the
// recovery tests.
func (m *Mem) Corrupt(name string, off int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[name]; ok && off >= 0 && off < int64(len(f.data)) {
		f.data[off] ^= 0x40
	}
}

// Bytes returns a copy of name's current content (nil if absent).
func (m *Mem) Bytes(name string) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil
	}
	return append([]byte(nil), f.data...)
}

// Put replaces name's content (fully synced) without counting an op —
// test setup.
func (m *Mem) Put(name string, b []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = &memFile{data: append([]byte(nil), b...), synced: len(b)}
}

// Names lists existing files, sorted.
func (m *Mem) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	for n := range m.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// OpenAppend implements FS. Opening counts no op; only mutation does.
func (m *Mem) OpenAppend(name string) (File, int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		f = &memFile{}
		m.files[name] = f
	}
	return &memAppend{fs: m, name: name}, int64(len(f.data)), nil
}

// Open implements FS.
func (m *Mem) Open(name string) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("faultfs: open %s: %w", name, fs.ErrNotExist)
	}
	return io.NopCloser(bytes.NewReader(append([]byte(nil), f.data...))), nil
}

// Rename implements FS.
func (m *Mem) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.step() {
		return fmt.Errorf("faultfs: rename %s: %w", oldname, ErrInjected)
	}
	if m.downed {
		return nil
	}
	f, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("faultfs: rename %s: %w", oldname, fs.ErrNotExist)
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

// Remove implements FS.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.step() {
		return fmt.Errorf("faultfs: remove %s: %w", name, ErrInjected)
	}
	if m.downed {
		return nil
	}
	delete(m.files, name)
	return nil
}

// Truncate implements FS.
func (m *Mem) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.step() {
		return fmt.Errorf("faultfs: truncate %s: %w", name, ErrInjected)
	}
	if m.downed {
		return nil
	}
	f, ok := m.files[name]
	if !ok || size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("faultfs: truncate %s to %d", name, size)
	}
	f.data = f.data[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

// memAppend is an append-only handle into a Mem file.
type memAppend struct {
	fs     *Mem
	name   string
	closed bool
}

// Write implements io.Writer with the armed injection applied.
func (a *memAppend) Write(p []byte) (int, error) {
	a.fs.mu.Lock()
	defer a.fs.mu.Unlock()
	if a.closed {
		return 0, errors.New("faultfs: write on closed file")
	}
	fire := a.fs.step()
	if a.fs.downed {
		return len(p), nil // accepted, never persisted
	}
	f := a.fs.files[a.name]
	if f == nil { // removed underneath the handle
		return 0, fmt.Errorf("faultfs: write %s: %w", a.name, fs.ErrNotExist)
	}
	if fire {
		switch a.fs.kind {
		case injectFail:
			return 0, fmt.Errorf("faultfs: write %s: %w", a.name, ErrInjected)
		case injectShort:
			n := len(p) / 2
			f.data = append(f.data, p[:n]...)
			return n, io.ErrShortWrite
		}
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

// Sync implements File: marks everything written so far power-durable.
func (a *memAppend) Sync() error {
	a.fs.mu.Lock()
	defer a.fs.mu.Unlock()
	if a.fs.step() && a.fs.kind == injectFail {
		return fmt.Errorf("faultfs: sync %s: %w", a.name, ErrInjected)
	}
	if a.fs.downed {
		return nil
	}
	if f := a.fs.files[a.name]; f != nil {
		f.synced = len(f.data)
	}
	return nil
}

// Close implements File.
func (a *memAppend) Close() error {
	a.fs.mu.Lock()
	defer a.fs.mu.Unlock()
	a.closed = true
	return nil
}
