package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

func readAll(t *testing.T, fsys FS, name string) []byte {
	t.Helper()
	rc, err := fsys.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestOSPassthrough exercises the production implementation end to end in
// a temp dir: append, reopen-append, rename, truncate, remove.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "seg")
	var fsys FS = OS{}

	f, size, err := fsys.OpenAppend(p)
	if err != nil || size != 0 {
		t.Fatalf("open: size=%d err=%v", size, err)
	}
	f.Write([]byte("hello "))
	f.Sync()
	f.Close()

	f, size, err = fsys.OpenAppend(p)
	if err != nil || size != 6 {
		t.Fatalf("reopen: size=%d err=%v", size, err)
	}
	f.Write([]byte("world"))
	f.Close()
	if got := string(readAll(t, fsys, p)); got != "hello world" {
		t.Fatalf("content %q", got)
	}

	if err := fsys.Truncate(p, 5); err != nil {
		t.Fatal(err)
	}
	if got := string(readAll(t, fsys, p)); got != "hello" {
		t.Fatalf("truncated content %q", got)
	}
	if err := fsys.Rename(p, p+".1"); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Open(p); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("want ErrNotExist after rename, got %v", err)
	}
	if err := fsys.Remove(p + ".1"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(p + ".1"); err != nil {
		t.Fatalf("remove of absent file should be a no-op, got %v", err)
	}
	if _, err := os.Stat(p + ".1"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("file survived Remove")
	}
}

// TestMemBasics: Mem behaves like a filesystem when no fault is armed.
func TestMemBasics(t *testing.T) {
	m := NewMem()
	f, size, _ := m.OpenAppend("a")
	if size != 0 {
		t.Fatalf("fresh size %d", size)
	}
	f.Write([]byte("one"))
	f.Write([]byte("two"))
	f.Close()
	if got := string(m.Bytes("a")); got != "onetwo" {
		t.Fatalf("content %q", got)
	}
	if _, _, err := m.OpenAppend("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open("a"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
	if got := string(readAll(t, m, "b")); got != "onetwo" {
		t.Fatalf("renamed content %q", got)
	}
	if err := m.Truncate("b", 3); err != nil {
		t.Fatal(err)
	}
	if got := string(m.Bytes("b")); got != "one" {
		t.Fatalf("truncated %q", got)
	}
}

// TestMemFailAt: the armed operation fails with ErrInjected and has no
// effect; operations before and after it succeed.
func TestMemFailAt(t *testing.T) {
	m := NewMem()
	m.FailAt(2)
	f, _, _ := m.OpenAppend("a")
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("op 1: %v", err)
	}
	if _, err := f.Write([]byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 2: want ErrInjected, got %v", err)
	}
	if _, err := f.Write([]byte("again")); err != nil {
		t.Fatalf("op 3: %v", err)
	}
	if got := string(m.Bytes("a")); got != "okagain" {
		t.Fatalf("content %q", got)
	}
	if m.Ops() != 3 {
		t.Fatalf("ops %d", m.Ops())
	}
}

// TestMemShortWriteAt: the armed write persists half and reports
// io.ErrShortWrite — a torn append.
func TestMemShortWriteAt(t *testing.T) {
	m := NewMem()
	m.ShortWriteAt(1)
	f, _, _ := m.OpenAppend("a")
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	if got := string(m.Bytes("a")); got != "abc" {
		t.Fatalf("content %q", got)
	}
}

// TestMemCrashAt: from the crash point on, operations report success but
// persist nothing — the silent-loss regime the fsync knob exists for.
func TestMemCrashAt(t *testing.T) {
	m := NewMem()
	m.CrashAt(2)
	f, _, _ := m.OpenAppend("a")
	f.Write([]byte("kept"))
	if n, err := f.Write([]byte("lost")); n != 4 || err != nil {
		t.Fatalf("post-crash write must claim success, got n=%d err=%v", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("post-crash sync must claim success: %v", err)
	}
	if got := string(m.Bytes("a")); got != "kept" {
		t.Fatalf("content %q", got)
	}
}

// TestMemKillPower: only fsynced bytes survive a power kill.
func TestMemKillPower(t *testing.T) {
	m := NewMem()
	f, _, _ := m.OpenAppend("a")
	f.Write([]byte("durable"))
	f.Sync()
	f.Write([]byte(" volatile"))
	m.KillPower()
	if got := string(m.Bytes("a")); got != "durable" {
		t.Fatalf("after power kill: %q", got)
	}
}

// TestMemCorrupt flips a bit in place.
func TestMemCorrupt(t *testing.T) {
	m := NewMem()
	m.Put("a", []byte{0x00, 0x00})
	m.Corrupt("a", 1)
	if b := m.Bytes("a"); b[0] != 0x00 || b[1] == 0x00 {
		t.Fatalf("corrupt: % x", b)
	}
}
