// Package queue provides the lock-free single-producer/single-consumer ring
// buffer used as the transport between partitioner threads, joiner threads,
// and result mergers. Every engine in the repository moves tuples over
// these rings, so transport overhead is identical across algorithms and
// measured differences come from the join designs themselves.
package queue

import (
	"sync/atomic"
)

const cacheLine = 64

// pad separates hot atomics onto their own cache lines to avoid false
// sharing between the producer and consumer cores.
type pad [cacheLine]byte

// SPSC is a bounded lock-free ring buffer carrying values from exactly one
// producer goroutine to exactly one consumer goroutine.
//
// The implementation is the classic Lamport queue with cached indices: the
// producer caches the consumer's head and only re-reads the shared atomic
// when the cached value indicates a full ring (and symmetrically for the
// consumer), so the steady-state cost per operation is one release store.
type SPSC[T any] struct {
	mask uint64
	buf  []T

	_          pad
	head       atomic.Uint64 // next slot to read; owned by consumer
	cachedTail uint64        // consumer's snapshot of tail
	_          pad
	tail       atomic.Uint64 // next slot to write; owned by producer
	cachedHead uint64        // producer's snapshot of head
	_          pad
	closed     atomic.Bool
}

// NewSPSC creates a ring with capacity rounded up to the next power of two
// (minimum 2).
func NewSPSC[T any](capacity int) *SPSC[T] {
	n := uint64(2)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &SPSC[T]{mask: n - 1, buf: make([]T, n)}
}

// Cap returns the ring capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// TryPush appends v and reports success; it fails only when the ring is
// full. Must be called from the single producer goroutine.
func (q *SPSC[T]) TryPush(v T) bool {
	tail := q.tail.Load()
	if tail-q.cachedHead >= uint64(len(q.buf)) {
		q.cachedHead = q.head.Load()
		if tail-q.cachedHead >= uint64(len(q.buf)) {
			return false
		}
	}
	q.buf[tail&q.mask] = v
	q.tail.Store(tail + 1)
	return true
}

// TryPop removes the oldest value and reports success; it fails when the
// ring is empty. Must be called from the single consumer goroutine.
func (q *SPSC[T]) TryPop() (T, bool) {
	head := q.head.Load()
	if head == q.cachedTail {
		q.cachedTail = q.tail.Load()
		if head == q.cachedTail {
			var zero T
			return zero, false
		}
	}
	v := q.buf[head&q.mask]
	q.head.Store(head + 1)
	return v, true
}

// PopBatch pops up to len(out) values into out and returns the count.
func (q *SPSC[T]) PopBatch(out []T) int {
	head := q.head.Load()
	avail := q.cachedTail - head
	if avail == 0 {
		q.cachedTail = q.tail.Load()
		avail = q.cachedTail - head
		if avail == 0 {
			return 0
		}
	}
	n := uint64(len(out))
	if avail < n {
		n = avail
	}
	for i := uint64(0); i < n; i++ {
		out[i] = q.buf[(head+i)&q.mask]
	}
	q.head.Store(head + n)
	return int(n)
}

// Len returns the approximate number of buffered values. Safe from any
// goroutine; the value may be stale by the time it is observed.
func (q *SPSC[T]) Len() int {
	return int(q.tail.Load() - q.head.Load())
}

// Close marks the queue closed; the producer must not push afterwards.
func (q *SPSC[T]) Close() { q.closed.Store(true) }

// Closed reports whether Close has been called. A consumer should treat
// Closed-and-empty as end of stream.
func (q *SPSC[T]) Closed() bool { return q.closed.Load() }
