package queue

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestCapacityRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{{0, 2}, {1, 2}, {2, 2}, {3, 4}, {1000, 1024}, {1024, 1024}} {
		if got := NewSPSC[int](c.in).Cap(); got != c.want {
			t.Errorf("NewSPSC(%d).Cap() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPushPopFIFO(t *testing.T) {
	q := NewSPSC[int](8)
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop on empty succeeded")
	}
	for i := 0; i < 8; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.TryPush(99) {
		t.Fatal("push on full succeeded")
	}
	if q.Len() != 8 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 8; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d,%v", i, v, ok)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop after drain succeeded")
	}
}

func TestWrapAround(t *testing.T) {
	q := NewSPSC[int](4)
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			if !q.TryPush(round*10 + i) {
				t.Fatal("push failed during wrap test")
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := q.TryPop()
			if !ok || v != round*10+i {
				t.Fatalf("round %d: pop = %d,%v", round, v, ok)
			}
		}
	}
}

func TestPopBatch(t *testing.T) {
	q := NewSPSC[int](16)
	for i := 0; i < 10; i++ {
		q.TryPush(i)
	}
	out := make([]int, 4)
	if n := q.PopBatch(out); n != 4 {
		t.Fatalf("first batch = %d", n)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("batch content %v", out)
		}
	}
	big := make([]int, 100)
	if n := q.PopBatch(big); n != 6 {
		t.Fatalf("second batch = %d, want 6", n)
	}
	if n := q.PopBatch(big); n != 0 {
		t.Fatalf("empty batch = %d", n)
	}
}

func TestClose(t *testing.T) {
	q := NewSPSC[int](4)
	if q.Closed() {
		t.Fatal("fresh queue closed")
	}
	q.TryPush(1)
	q.Close()
	if !q.Closed() {
		t.Fatal("Close did not stick")
	}
	// Buffered items remain poppable after close.
	if v, ok := q.TryPop(); !ok || v != 1 {
		t.Fatal("buffered item lost on close")
	}
}

// TestConcurrentTransfer moves a large sequence through the queue and
// verifies order and completeness under real concurrency.
func TestConcurrentTransfer(t *testing.T) {
	q := NewSPSC[uint64](128)
	const n = 50_000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; i++ {
			for !q.TryPush(i) {
				runtime.Gosched()
			}
		}
	}()
	var next uint64
	batch := make([]uint64, 64)
	for next < n {
		m := q.PopBatch(batch)
		if m == 0 {
			runtime.Gosched()
		}
		for _, v := range batch[:m] {
			if v != next {
				t.Fatalf("out of order: got %d want %d", v, next)
			}
			next++
		}
	}
	wg.Wait()
	if q.Len() != 0 {
		t.Fatalf("queue not empty at end: %d", q.Len())
	}
}

// TestQuickInterleaving property-tests arbitrary push/pop interleavings
// against a slice model (single-threaded, so the model is exact).
func TestQuickInterleaving(t *testing.T) {
	f := func(ops []bool) bool {
		q := NewSPSC[int](8)
		var model []int
		next := 0
		for _, push := range ops {
			if push {
				if q.TryPush(next) {
					model = append(model, next)
				} else if len(model) < 8 {
					return false // queue refused although model has room
				}
				next++
			} else {
				v, ok := q.TryPop()
				if ok {
					if len(model) == 0 || model[0] != v {
						return false
					}
					model = model[1:]
				} else if len(model) != 0 {
					return false
				}
			}
		}
		return q.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
