package timetravel

import (
	"sync"
	"testing"
	"testing/quick"

	"oij/internal/tuple"
)

func pt(key tuple.Key, ts tuple.Time, val float64) tuple.Tuple {
	return tuple.Tuple{Key: key, TS: ts, Val: val, Side: tuple.Probe}
}

func count(ix *Index, key tuple.Key, lo, hi tuple.Time) int {
	return ix.ScanWindow(key, lo, hi, func(tuple.Time, float64) bool { return true })
}

func TestEmptyIndex(t *testing.T) {
	ix := New(1)
	if ix.Len() != 0 || ix.Keys() != 0 {
		t.Fatal("fresh index not empty")
	}
	if ix.Series(7) != nil {
		t.Fatal("Series on empty index not nil")
	}
	if n := count(ix, 7, 0, 100); n != 0 {
		t.Fatalf("scan on empty visited %d", n)
	}
	if ix.EvictBefore(100) != 0 {
		t.Fatal("evict on empty removed something")
	}
}

func TestPutScanPerKey(t *testing.T) {
	ix := New(2)
	for k := tuple.Key(0); k < 10; k++ {
		for ts := tuple.Time(0); ts < 100; ts += 10 {
			ix.Put(pt(k, ts, float64(k*1000)+float64(ts)))
		}
	}
	if ix.Keys() != 10 {
		t.Fatalf("Keys = %d, want 10", ix.Keys())
	}
	if ix.Len() != 100 {
		t.Fatalf("Len = %d, want 100", ix.Len())
	}
	// Scans see only their key's entries, in timestamp order, in bounds.
	var seen []tuple.Time
	n := ix.ScanWindow(3, 20, 50, func(ts tuple.Time, val float64) bool {
		if val != 3000+float64(ts) {
			t.Fatalf("scan leaked another key's value %g at ts %d", val, ts)
		}
		seen = append(seen, ts)
		return true
	})
	if n != 4 {
		t.Fatalf("visited %d, want 4 (20,30,40,50)", n)
	}
	for i, ts := range []tuple.Time{20, 30, 40, 50} {
		if seen[i] != ts {
			t.Fatalf("scan order %v", seen)
		}
	}
}

func TestScanUnknownKey(t *testing.T) {
	ix := New(3)
	ix.Put(pt(1, 10, 1))
	if n := count(ix, 2, 0, 100); n != 0 {
		t.Fatalf("unknown key visited %d", n)
	}
}

func TestDuplicateTimestamps(t *testing.T) {
	ix := New(4)
	for i := 0; i < 5; i++ {
		ix.Put(pt(1, 42, float64(i)))
	}
	var vals []float64
	ix.ScanWindow(1, 42, 42, func(_ tuple.Time, val float64) bool { vals = append(vals, val); return true })
	if len(vals) != 5 {
		t.Fatalf("got %d entries at shared timestamp, want 5", len(vals))
	}
}

func TestEvictAcrossKeys(t *testing.T) {
	ix := New(5)
	for k := tuple.Key(0); k < 4; k++ {
		for ts := tuple.Time(0); ts < 10; ts++ {
			ix.Put(pt(k, ts, 1))
		}
	}
	if got := ix.EvictBefore(6); got != 24 {
		t.Fatalf("evicted %d, want 24", got)
	}
	if ix.Len() != 16 {
		t.Fatalf("Len = %d, want 16", ix.Len())
	}
	for k := tuple.Key(0); k < 4; k++ {
		if n := count(ix, k, 0, 100); n != 4 {
			t.Fatalf("key %d has %d survivors, want 4", k, n)
		}
	}
	// Keys are retained even when emptied.
	ix.EvictBefore(100)
	if ix.Keys() != 4 {
		t.Fatalf("Keys = %d after total eviction, want 4", ix.Keys())
	}
	// Refill works.
	ix.Put(pt(2, 200, 1))
	if n := count(ix, 2, 0, 300); n != 1 {
		t.Fatal("refill after eviction broken")
	}
}

func TestSeriesMinTS(t *testing.T) {
	ix := New(6)
	ix.Put(pt(9, 50, 1))
	ix.Put(pt(9, 30, 1))
	ix.Put(pt(9, 70, 1))
	s := ix.Series(9)
	if s == nil {
		t.Fatal("Series(9) nil")
	}
	if ts, ok := s.MinTS(); !ok || ts != 30 {
		t.Fatalf("MinTS = %d,%v; want 30", ts, ok)
	}
	if s.Len() != 3 {
		t.Fatalf("series Len = %d", s.Len())
	}
	// Ascend from a lower bound.
	var got []tuple.Time
	s.Ascend(40, func(ts tuple.Time, _ float64) bool { got = append(got, ts); return true })
	if len(got) != 2 || got[0] != 50 || got[1] != 70 {
		t.Fatalf("Ascend(40) = %v", got)
	}
}

// TestQuickWindowScan property-tests window scans against a filter over
// the raw inserts.
func TestQuickWindowScan(t *testing.T) {
	f := func(entries []struct {
		K  uint8
		TS int16
	}, key uint8, lo, hi int16) bool {
		ix := New(7)
		want := 0
		for _, e := range entries {
			ix.Put(pt(tuple.Key(e.K), tuple.Time(e.TS), 1))
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		for _, e := range entries {
			if e.K == key && e.TS >= lo && e.TS <= hi {
				want++
			}
		}
		got := count(ix, tuple.Key(key), tuple.Time(lo), tuple.Time(hi))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSWMRSharedScan exercises the shared-processing contract: a writer
// goroutine owns the index while reader goroutines scan a stable window.
func TestSWMRSharedScan(t *testing.T) {
	ix := New(8)
	const key = tuple.Key(5)
	// Stable region the writer never evicts.
	for ts := tuple.Time(1_000_000); ts < 1_000_500; ts++ {
		ix.Put(pt(key, ts, 2))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	bad := make(chan string, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sum := 0.0
				n := ix.ScanWindow(key, 1_000_000, 1_000_499, func(_ tuple.Time, val float64) bool {
					sum += val
					return true
				})
				if n != 500 || sum != 1000 {
					bad <- "stable window scan inconsistent"
					return
				}
			}
		}()
	}
	for i := tuple.Time(0); i < 100_000; i++ {
		ix.Put(pt(key, i, 1))
		if i%2048 == 2047 {
			ix.EvictBefore(i - 1000)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case m := <-bad:
		t.Fatal(m)
	default:
	}
}
