package timetravel

import (
	"math/rand"
	"testing"

	"oij/internal/tuple"
)

// BenchmarkPutOrdered measures the streaming insert path with in-order
// timestamps (the finger-search fast path).
func BenchmarkPutOrdered(b *testing.B) {
	ix := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Put(tuple.Tuple{Key: tuple.Key(i % 64), TS: tuple.Time(i), Val: 1})
		if i%4096 == 4095 {
			ix.EvictBefore(tuple.Time(i - 100_000))
		}
	}
}

// BenchmarkPutDisordered measures inserts with bounded disorder (the
// lateness regime the paper studies).
func BenchmarkPutDisordered(b *testing.B) {
	ix := New(2)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := tuple.Time(i) - tuple.Time(rng.Int63n(10_000))
		ix.Put(tuple.Tuple{Key: tuple.Key(i % 64), TS: ts, Val: 1})
		if i%4096 == 4095 {
			ix.EvictBefore(tuple.Time(i - 100_000))
		}
	}
}

// BenchmarkScanWindow measures range scans over a populated series.
func BenchmarkScanWindow(b *testing.B) {
	ix := New(3)
	const n = 200_000
	for i := 0; i < n; i++ {
		ix.Put(tuple.Tuple{Key: tuple.Key(i % 16), TS: tuple.Time(i), Val: 1})
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		lo := tuple.Time((i * 37) % (n / 2))
		ix.ScanWindow(tuple.Key(i%16), lo, lo+5_000, func(_ tuple.Time, v float64) bool {
			sink += v
			return true
		})
	}
	_ = sink
}
