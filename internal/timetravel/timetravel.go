// Package timetravel implements the paper's two-layer "time-travel" data
// structure (§V-A): a first-layer skip-list mapping join keys to per-key
// second-layer skip-lists mapping event timestamps to tuple payloads.
//
// Locating a window boundary costs O(log N_key) + O(log N_ts), and a window
// scan then touches only in-window tuples — this is what makes lateness
// (and therefore buffer size) insignificant to Scale-OIJ's performance,
// in contrast to the full-buffer scans of Key-OIJ.
//
// The time layer stores compact (timestamp, value) entries: the engines
// aggregate over the numeric payload, and keeping entries small preserves
// the scan locality of the arena-backed skip-list. A deployment carrying
// wider payloads would store an index or pointer as the value.
//
// The index inherits the SWMR concurrency property of its skip-lists:
// exactly one owner goroutine writes (Put/Evict) while any number of team
// members read (ScanWindow/...), which is the substrate of the shared
// processing framework in §V-B.
package timetravel

import (
	"oij/internal/skiplist"
	"oij/internal/tuple"
)

// Series is the second-layer index for one key: event timestamp → value.
type Series struct {
	times *skiplist.List[tuple.Time, float64]
}

// newSeries creates the per-key time layer. The seed decorrelates tower
// heights across keys.
func newSeries(seed uint64) *Series {
	return &Series{times: skiplist.New[tuple.Time, float64](seed)}
}

// Len returns the number of buffered entries for this key.
func (s *Series) Len() int { return s.times.Len() }

// AscendRange visits buffered entries with lo <= ts <= hi in timestamp
// order; it returns the number of entries visited (== matched, since the
// index seeks directly to the boundary).
func (s *Series) AscendRange(lo, hi tuple.Time, fn func(ts tuple.Time, val float64) bool) int {
	return s.times.AscendRange(lo, hi, fn)
}

// Ascend visits buffered entries with ts >= lo in timestamp order until fn
// returns false.
func (s *Series) Ascend(lo tuple.Time, fn func(ts tuple.Time, val float64) bool) {
	s.times.Ascend(lo, fn)
}

// MinTS returns the smallest buffered timestamp.
func (s *Series) MinTS() (tuple.Time, bool) {
	ts, _, ok := s.times.Min()
	return ts, ok
}

// Index is the two-layer time-travel structure. One goroutine (the owner)
// may call Put and EvictBefore; any goroutine may call the read methods.
type Index struct {
	keys *skiplist.List[tuple.Key, *Series]
	// cache is the owner's key → series shortcut so the hot insert path
	// skips the first-layer search; readers always go through the
	// skip-list (a Go map is not safe for concurrent read/write).
	cache map[tuple.Key]*Series
	seed  uint64
	// size tracks live entries across all keys; maintained by the owner.
	size int
}

// New returns an empty index. The seed varies skip-list shapes between
// joiners.
func New(seed uint64) *Index {
	if seed == 0 {
		seed = 1
	}
	return &Index{
		keys:  skiplist.New[tuple.Key, *Series](seed),
		cache: make(map[tuple.Key]*Series),
		seed:  seed,
	}
}

// Put inserts a tuple's (timestamp, value) under its key. Owner-only.
func (ix *Index) Put(t tuple.Tuple) {
	s, ok := ix.cache[t.Key]
	if !ok {
		// Single writer: check-then-insert cannot race with another
		// writer; readers either miss the key (empty window, correct
		// until the tuple is published) or see the fully built series.
		ix.seed = ix.seed*6364136223846793005 + 1442695040888963407
		s = newSeries(ix.seed | 1)
		ix.keys.Put(t.Key, s)
		ix.cache[t.Key] = s
	}
	s.times.Put(t.TS, t.Val)
	ix.size++
}

// Series returns the per-key time layer, or nil if the key has never been
// inserted. Readers use it for window scans and incremental cursors.
func (ix *Index) Series(key tuple.Key) *Series {
	s, ok := ix.keys.Get(key)
	if !ok {
		return nil
	}
	return s
}

// ScanWindow visits every buffered entry with the given key and lo <= ts
// <= hi and returns the number visited.
func (ix *Index) ScanWindow(key tuple.Key, lo, hi tuple.Time, fn func(ts tuple.Time, val float64) bool) int {
	s := ix.Series(key)
	if s == nil {
		return 0
	}
	return s.AscendRange(lo, hi, fn)
}

// EvictBefore removes every entry with ts < bound across all keys and
// returns the number removed. Owner-only. Empty series are kept: the paper
// observes per-key structure overhead as a cost of many keys, and keys
// that went quiet typically come back.
func (ix *Index) EvictBefore(bound tuple.Time) int {
	removed := 0
	ix.keys.All(func(_ tuple.Key, s *Series) bool {
		removed += s.times.EvictBefore(bound)
		return true
	})
	ix.size -= removed
	return removed
}

// Len returns the number of live entries in the index (owner's view).
func (ix *Index) Len() int { return ix.size }

// Keys returns the number of distinct keys ever inserted.
func (ix *Index) Keys() int { return ix.keys.Len() }
