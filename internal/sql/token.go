// Package sql parses the OpenMLDB SQL dialect the paper uses to express
// online interval joins (§II-A): a SELECT with windowed aggregations over a
// WINDOW ... AS (UNION <probe> PARTITION BY ... ORDER BY ... ROWS_RANGE
// BETWEEN <offset> PRECEDING AND <offset> FOLLOWING) clause. The parser
// produces a QuerySpec that the public API turns directly into an engine
// configuration.
//
// One extension beyond OpenMLDB's published grammar is accepted: a trailing
// LATENESS <duration> clause inside the window definition, which sets the
// out-of-order bound (OpenMLDB configures this out of band).
package sql

import "fmt"

// kind enumerates token kinds.
type kind uint8

const (
	tokEOF kind = iota
	tokIdent
	tokNumber   // bare integer, e.g. 10
	tokDuration // integer with unit suffix, e.g. 1s, 500ms
	tokLParen
	tokRParen
	tokComma
	tokSemi
	tokStar
)

func (k kind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokDuration:
		return "duration"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokSemi:
		return "';'"
	case tokStar:
		return "'*'"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// token is one lexical unit. For tokDuration, num holds the scalar and
// unit the suffix; for tokNumber only num is set; for tokIdent text holds
// the original spelling and up holds its upper-cased form for keyword
// comparison.
type token struct {
	kind kind
	text string
	up   string
	num  int64
	unit string
	pos  int // byte offset, for error messages
}
