package sql

import (
	"fmt"
	"strings"
)

// lex tokenizes the input. Keywords are not distinguished from identifiers
// here; the parser matches on the upper-cased spelling.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, pos: i})
			i++
		case c == ',':
			toks = append(toks, token{kind: tokComma, pos: i})
			i++
		case c == ';':
			toks = append(toks, token{kind: tokSemi, pos: i})
			i++
		case c == '*':
			toks = append(toks, token{kind: tokStar, pos: i})
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// Line comment.
			for i < n && input[i] != '\n' {
				i++
			}
		case c >= '0' && c <= '9':
			start := i
			var num int64
			for i < n && input[i] >= '0' && input[i] <= '9' {
				num = num*10 + int64(input[i]-'0')
				i++
			}
			// Optional duration unit suffix.
			us := i
			for i < n && isAlpha(input[i]) {
				i++
			}
			unit := strings.ToLower(input[us:i])
			if unit == "" {
				toks = append(toks, token{kind: tokNumber, num: num, pos: start})
			} else {
				if _, ok := unitScale[unit]; !ok {
					return nil, fmt.Errorf("sql: unknown duration unit %q at offset %d", unit, us)
				}
				toks = append(toks, token{kind: tokDuration, num: num, unit: unit, pos: start})
			}
		case isAlpha(c) || c == '_':
			start := i
			for i < n && (isAlpha(input[i]) || input[i] == '_' || (input[i] >= '0' && input[i] <= '9') || input[i] == '.') {
				i++
			}
			text := input[start:i]
			toks = append(toks, token{kind: tokIdent, text: text, up: strings.ToUpper(text), pos: start})
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

func isAlpha(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// unitScale maps duration suffixes to microseconds (the repository's event
// time unit).
var unitScale = map[string]int64{
	"us": 1,
	"ms": 1_000,
	"s":  1_000_000,
	"m":  60_000_000,
	"h":  3_600_000_000,
	"d":  86_400_000_000,
}
