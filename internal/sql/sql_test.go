package sql

import (
	"strings"
	"testing"

	"oij/internal/agg"
)

// paperQuery is the exact SQL from §II-A of the paper.
const paperQuery = `
SELECT sum(col2) over w1 FROM S
WINDOW w1 AS (
UNION R
PARTITION BY key
ORDER BY timestamp
ROWS_RANGE
BETWEEN 1s PRECEDING AND 1s FOLLOWING);`

func TestParsePaperQuery(t *testing.T) {
	q, err := Parse(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Aggs) != 1 {
		t.Fatalf("aggs = %d", len(q.Aggs))
	}
	a := q.Aggs[0]
	if a.Func != agg.Sum || a.Column != "col2" || a.Window != "w1" {
		t.Fatalf("agg = %+v", a)
	}
	if q.BaseTable != "S" || q.ProbeTable != "R" {
		t.Fatalf("tables = %s, %s", q.BaseTable, q.ProbeTable)
	}
	if q.PartitionBy != "key" || q.OrderBy != "timestamp" {
		t.Fatalf("partition=%s order=%s", q.PartitionBy, q.OrderBy)
	}
	if q.Window.Pre != 1_000_000 || q.Window.Fol != 1_000_000 {
		t.Fatalf("window = %+v", q.Window)
	}
}

func TestParseCurrentRow(t *testing.T) {
	q, err := Parse(`SELECT count(x) OVER w FROM base WINDOW w AS (
		UNION probe PARTITION BY uid ORDER BY ts
		ROWS_RANGE BETWEEN 500ms PRECEDING AND CURRENT ROW)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Window.Pre != 500_000 || q.Window.Fol != 0 {
		t.Fatalf("window = %+v", q.Window)
	}
	if q.Aggs[0].Func != agg.Count {
		t.Fatalf("func = %v", q.Aggs[0].Func)
	}
}

func TestParseCurrentToFollowing(t *testing.T) {
	q, err := Parse(`SELECT avg(v) OVER w FROM b WINDOW w AS (
		UNION p PARTITION BY k ORDER BY t
		ROWS_RANGE BETWEEN CURRENT ROW AND 2m FOLLOWING)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Window.Pre != 0 || q.Window.Fol != 120_000_000 {
		t.Fatalf("window = %+v", q.Window)
	}
}

func TestParseLatenessExtension(t *testing.T) {
	q, err := Parse(`SELECT sum(v) OVER w FROM b WINDOW w AS (
		UNION p PARTITION BY k ORDER BY t
		ROWS_RANGE BETWEEN 10s PRECEDING AND CURRENT ROW
		LATENESS 2s)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Window.Lateness != 2_000_000 {
		t.Fatalf("lateness = %d", q.Window.Lateness)
	}
}

func TestParseMultipleAggregations(t *testing.T) {
	q, err := Parse(`SELECT sum(amount) OVER w, count(*) OVER w, max(amount) OVER w
		FROM actions WINDOW w AS (
		UNION orders PARTITION BY user_id ORDER BY event_time
		ROWS_RANGE BETWEEN 1h PRECEDING AND CURRENT ROW)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Aggs) != 3 {
		t.Fatalf("aggs = %d", len(q.Aggs))
	}
	if q.Aggs[1].Column != "*" || q.Aggs[1].Func != agg.Count {
		t.Fatalf("count(*) parsed as %+v", q.Aggs[1])
	}
	if q.Aggs[2].Func != agg.Max {
		t.Fatalf("max parsed as %+v", q.Aggs[2])
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse(`select SUM(a) over w from b window w as (
		union p partition by k order by t
		rows_range between 1s preceding and current row)`); err != nil {
		t.Fatal(err)
	}
}

func TestParseComments(t *testing.T) {
	if _, err := Parse(`SELECT sum(a) OVER w -- the feature
		FROM b WINDOW w AS (
		UNION p PARTITION BY k ORDER BY t -- join spec
		ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW)`); err != nil {
		t.Fatal(err)
	}
}

func TestParseDurationUnits(t *testing.T) {
	for unit, us := range map[string]int64{"us": 1, "ms": 1e3, "s": 1e6, "m": 6e7, "h": 3.6e9, "d": 8.64e10} {
		q, err := Parse(`SELECT sum(a) OVER w FROM b WINDOW w AS (
			UNION p PARTITION BY k ORDER BY t
			ROWS_RANGE BETWEEN 3` + unit + ` PRECEDING AND CURRENT ROW)`)
		if err != nil {
			t.Fatalf("%s: %v", unit, err)
		}
		if q.Window.Pre != 3*us {
			t.Errorf("%s: Pre = %d, want %d", unit, q.Window.Pre, 3*us)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":               ``,
		"unknown agg":         `SELECT median(a) OVER w FROM b WINDOW w AS (UNION p PARTITION BY k ORDER BY t ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW)`,
		"missing FROM":        `SELECT sum(a) OVER w`,
		"bad unit":            `SELECT sum(a) OVER w FROM b WINDOW w AS (UNION p PARTITION BY k ORDER BY t ROWS_RANGE BETWEEN 1parsec PRECEDING AND CURRENT ROW)`,
		"wrong window name":   `SELECT sum(a) OVER w2 FROM b WINDOW w AS (UNION p PARTITION BY k ORDER BY t ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW)`,
		"empty window":        `SELECT sum(a) OVER w FROM b WINDOW w AS (UNION p PARTITION BY k ORDER BY t ROWS_RANGE BETWEEN CURRENT ROW AND CURRENT ROW)`,
		"inverted bounds":     `SELECT sum(a) OVER w FROM b WINDOW w AS (UNION p PARTITION BY k ORDER BY t ROWS_RANGE BETWEEN 1s FOLLOWING AND 1s PRECEDING)`,
		"trailing garbage":    `SELECT sum(a) OVER w FROM b WINDOW w AS (UNION p PARTITION BY k ORDER BY t ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW) extra`,
		"stray character":     `SELECT sum(a) OVER w FROM b WINDOW w @`,
		"lateness not a time": `SELECT sum(a) OVER w FROM b WINDOW w AS (UNION p PARTITION BY k ORDER BY t ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW LATENESS x)`,
	}
	for name, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("%s: parse succeeded", name)
		}
	}
}

func TestErrorMentionsOffset(t *testing.T) {
	_, err := Parse(`SELECT sum(a) OVER w FROM b WINDOW w AS (UNION p PARTITION BY k ORDER BY t ROWS_RANGE AROUND 1s PRECEDING AND CURRENT ROW)`)
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error lacks position info: %v", err)
	}
}

func TestParseExcludeCurrentTime(t *testing.T) {
	q, err := Parse(`SELECT sum(v) OVER w FROM b WINDOW w AS (
		UNION p PARTITION BY k ORDER BY t
		ROWS_RANGE BETWEEN 10s PRECEDING AND CURRENT ROW
		EXCLUDE CURRENT_TIME LATENESS 1s)`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Window.ExcludeCurrentTime || q.Window.Lateness != 1_000_000 {
		t.Fatalf("window = %+v", q.Window)
	}
	// Clause order is free.
	q2, err := Parse(`SELECT sum(v) OVER w FROM b WINDOW w AS (
		UNION p PARTITION BY k ORDER BY t
		ROWS_RANGE BETWEEN 10s PRECEDING AND CURRENT ROW
		LATENESS 1s EXCLUDE CURRENT_TIME)`)
	if err != nil {
		t.Fatal(err)
	}
	if !q2.Window.ExcludeCurrentTime {
		t.Fatal("clause order not free")
	}
	// EXCLUDE CURRENT_TIME is incompatible with a FOLLOWING bound.
	if _, err := Parse(`SELECT sum(v) OVER w FROM b WINDOW w AS (
		UNION p PARTITION BY k ORDER BY t
		ROWS_RANGE BETWEEN 10s PRECEDING AND 1s FOLLOWING
		EXCLUDE CURRENT_TIME)`); err == nil {
		t.Fatal("EXCLUDE CURRENT_TIME with FOLLOWING accepted")
	}
	// Garbage after EXCLUDE.
	if _, err := Parse(`SELECT sum(v) OVER w FROM b WINDOW w AS (
		UNION p PARTITION BY k ORDER BY t
		ROWS_RANGE BETWEEN 10s PRECEDING AND CURRENT ROW
		EXCLUDE EVERYTHING)`); err == nil {
		t.Fatal("EXCLUDE EVERYTHING accepted")
	}
}

func TestParseLastValue(t *testing.T) {
	q, err := Parse(`SELECT last_value(price) OVER w FROM quotes WINDOW w AS (
		UNION trades PARTITION BY sym ORDER BY ts
		ROWS_RANGE BETWEEN 1s PRECEDING AND CURRENT ROW)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Aggs[0].Func != agg.Last {
		t.Fatalf("func = %v", q.Aggs[0].Func)
	}
}
