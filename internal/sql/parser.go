package sql

import (
	"fmt"

	"oij/internal/agg"
	"oij/internal/tuple"
	"oij/internal/window"
)

// Aggregation is one windowed select item, e.g. sum(col2) OVER w1.
type Aggregation struct {
	Func   agg.Func // the aggregation operator
	Column string   // aggregated column name
	Window string   // the OVER target window name
}

// QuerySpec is the parsed form of an online-interval-join query.
type QuerySpec struct {
	// Aggs are the windowed aggregations in select order.
	Aggs []Aggregation
	// BaseTable is the FROM table (the base stream S).
	BaseTable string
	// ProbeTable is the UNION table (the probe stream R).
	ProbeTable string
	// WindowName is the defined window's name.
	WindowName string
	// PartitionBy is the join-key column.
	PartitionBy string
	// OrderBy is the event-time column.
	OrderBy string
	// Window carries PRE/FOL (and LATENESS, if the extension clause was
	// present) in microseconds.
	Window window.Spec
}

// Parse parses one OIJ query in the OpenMLDB dialect.
func Parse(input string) (*QuerySpec, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...interface{}) error {
	return fmt.Errorf("sql: offset %d: %s", t.pos, fmt.Sprintf(format, args...))
}

// expectKeyword consumes an identifier with the given upper-case spelling.
func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || t.up != kw {
		return p.errf(t, "expected %s, got %s %q", kw, t.kind, t.text)
	}
	return nil
}

// expectIdent consumes a non-keyword identifier and returns its spelling.
func (p *parser) expectIdent(what string) (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", p.errf(t, "expected %s, got %s", what, t.kind)
	}
	return t.text, nil
}

func (p *parser) expect(k kind) error {
	t := p.next()
	if t.kind != k {
		return p.errf(t, "expected %s, got %s %q", k, t.kind, t.text)
	}
	return nil
}

// query = SELECT aggList FROM ident WINDOW ident AS ( windowDef ) [;]
func (p *parser) query() (*QuerySpec, error) {
	q := &QuerySpec{}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	for {
		a, err := p.aggregation()
		if err != nil {
			return nil, err
		}
		q.Aggs = append(q.Aggs, a)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	base, err := p.expectIdent("base table name")
	if err != nil {
		return nil, err
	}
	q.BaseTable = base

	if err := p.expectKeyword("WINDOW"); err != nil {
		return nil, err
	}
	wname, err := p.expectIdent("window name")
	if err != nil {
		return nil, err
	}
	q.WindowName = wname
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	if err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	if err := p.windowDef(q); err != nil {
		return nil, err
	}
	if err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if p.peek().kind == tokSemi {
		p.next()
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errf(t, "unexpected trailing input")
	}

	// Semantic checks.
	for _, a := range q.Aggs {
		if a.Window != q.WindowName {
			return nil, fmt.Errorf("sql: aggregation over undefined window %q (defined: %q)", a.Window, q.WindowName)
		}
	}
	if err := q.Window.Validate(); err != nil {
		return nil, fmt.Errorf("sql: %w", err)
	}
	return q, nil
}

// aggregation = func ( column ) OVER window
func (p *parser) aggregation() (Aggregation, error) {
	var a Aggregation
	fnTok := p.next()
	if fnTok.kind != tokIdent {
		return a, p.errf(fnTok, "expected aggregation function, got %s", fnTok.kind)
	}
	fn, err := agg.Parse(string(lower(fnTok.text)))
	if err != nil {
		return a, p.errf(fnTok, "%v", err)
	}
	a.Func = fn
	if err := p.expect(tokLParen); err != nil {
		return a, err
	}
	if p.peek().kind == tokStar {
		p.next()
		a.Column = "*"
	} else {
		col, err := p.expectIdent("column name")
		if err != nil {
			return a, err
		}
		a.Column = col
	}
	if err := p.expect(tokRParen); err != nil {
		return a, err
	}
	if err := p.expectKeyword("OVER"); err != nil {
		return a, err
	}
	w, err := p.expectIdent("window name")
	if err != nil {
		return a, err
	}
	a.Window = w
	return a, nil
}

// windowDef = UNION ident PARTITION BY ident ORDER BY ident
//
//	ROWS_RANGE BETWEEN bound AND bound [LATENESS duration]
func (p *parser) windowDef(q *QuerySpec) error {
	if err := p.expectKeyword("UNION"); err != nil {
		return err
	}
	probe, err := p.expectIdent("probe table name")
	if err != nil {
		return err
	}
	q.ProbeTable = probe

	if err := p.expectKeyword("PARTITION"); err != nil {
		return err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return err
	}
	part, err := p.expectIdent("partition column")
	if err != nil {
		return err
	}
	q.PartitionBy = part

	if err := p.expectKeyword("ORDER"); err != nil {
		return err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return err
	}
	ord, err := p.expectIdent("order column")
	if err != nil {
		return err
	}
	q.OrderBy = ord

	if err := p.expectKeyword("ROWS_RANGE"); err != nil {
		return err
	}
	if err := p.expectKeyword("BETWEEN"); err != nil {
		return err
	}
	pre, preKind, err := p.bound()
	if err != nil {
		return err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return err
	}
	fol, folKind, err := p.bound()
	if err != nil {
		return err
	}
	switch {
	case preKind == boundPreceding && folKind == boundFollowing:
		q.Window.Pre, q.Window.Fol = pre, fol
	case preKind == boundPreceding && folKind == boundCurrent:
		q.Window.Pre, q.Window.Fol = pre, 0
	case preKind == boundCurrent && folKind == boundFollowing:
		q.Window.Pre, q.Window.Fol = 0, fol
	default:
		return fmt.Errorf("sql: window bounds must run from PRECEDING/CURRENT to CURRENT/FOLLOWING")
	}

	// Optional trailing clauses in any order: OpenMLDB's EXCLUDE
	// CURRENT_TIME and the repository's LATENESS <duration> extension.
	for {
		t := p.peek()
		if t.kind != tokIdent {
			return nil
		}
		switch t.up {
		case "LATENESS":
			p.next()
			d := p.next()
			if d.kind != tokDuration {
				return p.errf(d, "expected duration after LATENESS")
			}
			q.Window.Lateness = tuple.Time(d.num * unitScale[d.unit])
		case "EXCLUDE":
			p.next()
			what := p.next()
			if what.kind != tokIdent || what.up != "CURRENT_TIME" {
				return p.errf(what, "expected CURRENT_TIME after EXCLUDE")
			}
			q.Window.ExcludeCurrentTime = true
		default:
			return nil
		}
	}
}

type boundKind uint8

const (
	boundPreceding boundKind = iota
	boundFollowing
	boundCurrent
)

// bound = duration PRECEDING | duration FOLLOWING | CURRENT ROW
func (p *parser) bound() (tuple.Time, boundKind, error) {
	t := p.next()
	switch {
	case t.kind == tokDuration:
		dir := p.next()
		if dir.kind != tokIdent {
			return 0, 0, p.errf(dir, "expected PRECEDING or FOLLOWING")
		}
		switch dir.up {
		case "PRECEDING":
			return tuple.Time(t.num * unitScale[t.unit]), boundPreceding, nil
		case "FOLLOWING":
			return tuple.Time(t.num * unitScale[t.unit]), boundFollowing, nil
		default:
			return 0, 0, p.errf(dir, "expected PRECEDING or FOLLOWING, got %q", dir.text)
		}
	case t.kind == tokIdent && t.up == "CURRENT":
		if err := p.expectKeyword("ROW"); err != nil {
			return 0, 0, err
		}
		return 0, boundCurrent, nil
	default:
		return 0, 0, p.errf(t, "expected a duration bound or CURRENT ROW")
	}
}

func lower(s string) []byte {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return b
}
