// Package mldb models the OpenMLDB online engine the paper compares
// against in §V-E: a read-optimized in-memory table (sorted per-key time
// index, like OpenMLDB's memtable) *shared by all processing threads* and
// guarded as a whole, so concurrent insertions serialize — "insertion will
// become a potential performance bottleneck" — and with no out-of-order
// machinery at all (the paper removes OpenMLDB's accuracy checking, so
// lateness is intentionally ignored and retention covers the window only).
//
// The two properties §V-E blames for the slowdown are therefore explicit
// here: (1) writer serialization on the shared structure, which collapses
// at high arrival rates (Workloads B/C); (2) the read-intensive assumption,
// which makes it perfectly adequate at low rates (Workload D).
package mldb

import (
	"sync"
	"sync/atomic"
	"time"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/timetravel"
	"oij/internal/trace"
	"oij/internal/tuple"
	"oij/internal/watermark"
)

// Engine is the OpenMLDB-style baseline implementation of engine.Engine.
// It always emits on arrival (request/serving semantics); OnWatermark mode
// is not supported, mirroring OpenMLDB's lack of disorder handling.
type Engine struct {
	cfg   engine.Config
	tr    *engine.Transport
	sink  engine.Sink
	lrec  engine.LatencyRecorder
	srec  engine.StageRecorder
	arec  engine.AllocRecorder
	stats *engine.Stats

	// mu guards table: one writer at a time, readers share. The paper's
	// insertion bottleneck is exactly this serialization.
	mu       sync.RWMutex
	table    *timetravel.Index
	lockWait atomic.Int64 // ns spent waiting for mu across workers

	evicted   atomic.Int64
	rr        int
	lastSweep []tuple.Time
	wms       []tuple.Time
}

// New builds the baseline engine.
func New(cfg engine.Config, sink engine.Sink) *Engine {
	cfg = cfg.WithDefaults()
	if cfg.Instrument {
		cfg.TrackBusy = true
	}
	e := &Engine{
		cfg:       cfg,
		tr:        engine.NewTransport(cfg),
		sink:      sink,
		stats:     engine.NewStats(cfg.Joiners),
		table:     timetravel.New(0xfeed),
		lastSweep: make([]tuple.Time, cfg.Joiners),
		wms:       make([]tuple.Time, cfg.Joiners),
	}
	for i := range e.lastSweep {
		e.lastSweep[i] = watermark.MinTime
		e.wms[i] = watermark.MinTime
	}
	e.lrec, _ = sink.(engine.LatencyRecorder)
	e.srec, _ = sink.(engine.StageRecorder)
	e.arec, _ = sink.(engine.AllocRecorder)
	return e
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "openmldb" }

// Start implements engine.Engine.
func (e *Engine) Start() {
	for i := 0; i < e.cfg.Joiners; i++ {
		i := i
		var busy *atomic.Int64
		if e.cfg.TrackBusy {
			busy = &e.stats.Busy[i]
		}
		e.tr.Go(i, engine.JoinerHooks{
			OnTuple:     func(t tuple.Tuple) { e.work(i, t) },
			OnWatermark: func(wm tuple.Time) { e.watermark(i, wm) },
			Busy:        busy,
		})
	}
}

// Ingest implements engine.Engine: round-robin across workers — with a
// single shared table there is no data ownership to partition by.
func (e *Engine) Ingest(t tuple.Tuple) {
	e.tr.Observe(t.TS)
	e.tr.Push(e.rr, t)
	e.rr = (e.rr + 1) % e.cfg.Joiners
}

// Drain implements engine.Engine.
func (e *Engine) Drain() {
	e.tr.Finish()
	e.stats.Evicted.Store(e.evicted.Load())
	e.stats.Extra["lock_wait_ns"] = e.lockWait.Load()
	if e.cfg.Instrument {
		engine.FillOther(e.stats)
	}
}

// Stats implements engine.Engine.
func (e *Engine) Stats() *engine.Stats { return e.stats }

// Heartbeat implements engine.Engine.
func (e *Engine) Heartbeat() { e.tr.Heartbeat() }

// QueueDepths implements engine.Introspector.
func (e *Engine) QueueDepths() []int { return e.tr.QueueDepths() }

// Watermark implements engine.Introspector.
func (e *Engine) Watermark() tuple.Time { return e.tr.Watermark() }

// MaxEventTS implements engine.Introspector.
func (e *Engine) MaxEventTS() tuple.Time { return e.tr.MaxEventTS() }

// Stalls implements engine.Introspector.
func (e *Engine) Stalls() engine.StallSnapshot { return e.tr.Stalls() }

func (e *Engine) work(id int, t tuple.Tuple) {
	e.stats.Processed[id].Add(1)
	if t.Side == tuple.Probe {
		w0 := time.Now()
		e.mu.Lock()
		e.lockWait.Add(int64(time.Since(w0)))
		e.table.Put(t)
		e.mu.Unlock()
		if e.arec != nil {
			// Every Put allocates one index node holding the tuple.
			e.arec.CountAlloc(trace.StageIngest, 1, engine.TupleAllocBytes)
		}
		return
	}
	e.join(id, t)
}

func (e *Engine) join(id int, base tuple.Tuple) {
	lo, hi := e.cfg.Window.Bounds(base.TS)
	st := agg.NewState(e.cfg.Agg)
	engine.CountStateAlloc(e.arec, trace.StageAggregate)

	var sp *trace.Span
	if e.srec != nil {
		sp = e.srec.SpanFor(base.Seq)
	}
	sp.StampDispatched(id)

	w0 := time.Now()
	e.mu.RLock()
	waited := time.Since(w0)
	if e.cfg.Instrument || sp != nil {
		t0 := time.Now()
		scratch := make([]engine.TSVal, 0, 64)
		engine.CountSliceGrowth(e.arec, trace.StageProbe, 0, cap(scratch), engine.TSValAllocBytes)
		visited := e.table.ScanWindow(base.Key, lo, hi, func(ts tuple.Time, val float64) bool {
			before := cap(scratch)
			scratch = append(scratch, engine.TSVal{TS: ts, Val: val})
			engine.CountSliceGrowth(e.arec, trace.StageProbe, before, cap(scratch), engine.TSValAllocBytes)
			return true
		})
		e.mu.RUnlock()
		t1 := time.Now()
		for _, p := range scratch {
			st.AddAt(p.TS, p.Val)
		}
		t2 := time.Now()
		if e.cfg.Instrument {
			bd := &e.stats.Breakdown[id]
			bd.Lookup += t1.Sub(t0)
			bd.Match += t2.Sub(t1)
			e.stats.Effect[id].Observe(int64(len(scratch)), int64(visited))
		}
		sp.Add(trace.StageProbe, t1.Sub(t0))
		sp.Add(trace.StageAggregate, t2.Sub(t1))
	} else {
		e.table.ScanWindow(base.Key, lo, hi, func(ts tuple.Time, val float64) bool {
			st.AddAt(ts, val)
			return true
		})
		e.mu.RUnlock()
	}
	e.lockWait.Add(int64(waited))

	sp.StampJoined()
	e.stats.Results.Add(1)
	e.sink.Emit(id, tuple.Result{
		BaseTS:  base.TS,
		Key:     base.Key,
		BaseSeq: base.Seq,
		Agg:     st.Value(),
		Matches: st.Count(),
	})
	if e.lrec != nil && !base.Arrival.IsZero() {
		e.lrec.Record(id, time.Since(base.Arrival))
	}
}

// watermark triggers eviction: retention is the window only — no lateness
// slack, the accuracy machinery the paper removed. Worker 0 does the sweep
// under the write lock.
func (e *Engine) watermark(id int, wm tuple.Time) {
	if wm <= e.wms[id] {
		return
	}
	e.wms[id] = wm
	if id != 0 {
		return
	}
	// Undo the driver's lateness subtraction: this engine evicts by
	// observed max event time, pretending streams are ordered.
	maxTS := wm + e.cfg.Window.Lateness
	horizon := e.cfg.Window.Len()
	if e.lastSweep[0] != watermark.MinTime && maxTS-e.lastSweep[0] <= horizon/2+1 {
		return
	}
	e.lastSweep[0] = maxTS
	w0 := time.Now()
	e.mu.Lock()
	e.lockWait.Add(int64(time.Since(w0)))
	if n := int64(e.table.EvictBefore(maxTS - e.cfg.Window.Pre - e.cfg.Window.Fol)); n > 0 {
		e.evicted.Add(n)
		// Mirror live for the serving layer's memory guard; sweeps are
		// amortized to half the retention horizon.
		e.stats.Evicted.Add(n)
	}
	e.mu.Unlock()
}
