package mldb

import (
	"math"
	"testing"

	"oij/internal/agg"
	"oij/internal/engine"
	"oij/internal/refjoin"
	"oij/internal/tuple"
	"oij/internal/window"
	"oij/internal/workload"
)

func replay(e engine.Engine, tuples []tuple.Tuple) {
	e.Start()
	for _, t := range tuples {
		e.Ingest(t)
	}
	e.Drain()
}

// TestSingleWorkerOrderedExact: with one worker and an in-order stream the
// baseline matches the arrival reference exactly.
func TestSingleWorkerOrderedExact(t *testing.T) {
	w := window.Spec{Pre: 1000, Fol: 0, Lateness: 0}
	wl := workload.Config{
		Name: "mldb-test", N: 20_000, EventRate: 1_000_000, Keys: 6,
		BaseShare: 0.5, Window: w, Disorder: 0, Seed: 12,
	}
	stream, err := wl.Generate()
	if err != nil {
		t.Fatal(err)
	}
	want := refjoin.ByBaseSeq(refjoin.Arrival(stream, w, agg.Sum))

	sink := &engine.CollectSink{}
	e := New(engine.Config{Joiners: 1, Window: w, Agg: agg.Sum}, sink)
	replay(e, stream)
	got := sink.ByBaseSeq()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for seq, wr := range want {
		g := got[seq]
		if g.Matches != wr.Matches || math.Abs(g.Agg-wr.Agg) > 1e-6*(1+math.Abs(wr.Agg)) {
			t.Fatalf("base %d: got %+v want %+v", seq, g, wr)
		}
	}
}

// TestNoDisorderHandling documents the baseline's defining flaw: under
// disorder its aggressive window-only retention drops probes that late
// base tuples still need, losing matches relative to the exact join.
func TestNoDisorderHandling(t *testing.T) {
	w := window.Spec{Pre: 500, Fol: 0, Lateness: 2000} // heavy disorder
	wl := workload.Config{
		Name: "mldb-disorder", N: 80_000, EventRate: 1_000_000, Keys: 4,
		BaseShare: 0.5, Window: w, Disorder: 2000, Seed: 13,
	}
	stream, err := wl.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var wantMatches int64
	for _, r := range refjoin.Arrival(stream, w, agg.Sum) {
		wantMatches += r.Matches
	}

	sink := &engine.CollectSink{}
	e := New(engine.Config{Joiners: 1, Window: w, Agg: agg.Sum}, sink)
	replay(e, stream)
	var gotMatches int64
	for _, r := range sink.Results() {
		gotMatches += r.Matches
	}
	if e.Stats().Evicted.Load() == 0 {
		t.Fatal("expected evictions")
	}
	if gotMatches >= wantMatches {
		t.Fatalf("baseline under disorder matched %d >= exact %d — the accuracy loss should be visible",
			gotMatches, wantMatches)
	}
	// With disorder 4x the window most matches are lost (retention stops
	// at maxTS − |w|), but some on-time traffic always survives.
	if gotMatches == 0 {
		t.Fatal("baseline produced no matches at all")
	}
}

// TestLockWaitAccounting: the shared-table serialization is observable.
func TestLockWaitAccounting(t *testing.T) {
	w := window.Spec{Pre: 1000, Fol: 0, Lateness: 100}
	wl := workload.Config{
		Name: "mldb-lock", N: 60_000, EventRate: 1_000_000, Keys: 8,
		BaseShare: 0.5, Window: w, Disorder: 100, Seed: 14,
	}
	stream, err := wl.Generate()
	if err != nil {
		t.Fatal(err)
	}
	e := New(engine.Config{Joiners: 8, Window: w, Agg: agg.Sum}, engine.NullSink{})
	replay(e, stream)
	if _, ok := e.Stats().Extra["lock_wait_ns"]; !ok {
		t.Fatal("lock_wait_ns not reported")
	}
	if e.Stats().Results.Load() != int64(workload.CountBase(stream)) {
		t.Fatal("result count wrong")
	}
}

// TestInstrumentation: breakdown and effectiveness populate under the
// shared-table baseline too.
func TestInstrumentation(t *testing.T) {
	w := window.Spec{Pre: 1000, Fol: 0, Lateness: 0}
	wl := workload.Config{
		Name: "mldb-instr", N: 30_000, EventRate: 1_000_000, Keys: 6,
		BaseShare: 0.5, Window: w, Disorder: 0, Seed: 15,
	}
	stream, err := wl.Generate()
	if err != nil {
		t.Fatal(err)
	}
	e := New(engine.Config{Joiners: 2, Window: w, Agg: agg.Sum, Instrument: true}, engine.NullSink{})
	replay(e, stream)
	st := e.Stats()
	bd := st.MergedBreakdown()
	if bd.Lookup == 0 || bd.Match == 0 {
		t.Fatalf("breakdown not populated: %+v", bd)
	}
	// The sorted shared table visits only in-window entries.
	if eff := st.MergedEffectiveness(); eff < 0.999 {
		t.Fatalf("effectiveness = %g", eff)
	}
}

// TestHeartbeatHarmless: heartbeats are no-ops for the arrival-only
// baseline but must not disturb it.
func TestHeartbeatHarmless(t *testing.T) {
	w := window.Spec{Pre: 1000, Fol: 0, Lateness: 0}
	e := New(engine.Config{Joiners: 1, Window: w, Agg: agg.Count}, engine.NullSink{})
	e.Start()
	e.Heartbeat() // before any tuple
	e.Ingest(tuple.Tuple{TS: 10, Key: 1, Side: tuple.Probe, Val: 1})
	e.Heartbeat()
	e.Ingest(tuple.Tuple{TS: 20, Key: 1, Side: tuple.Base, Seq: 0})
	e.Drain()
	if e.Stats().Results.Load() != 1 {
		t.Fatal("heartbeats disturbed the baseline")
	}
}
