// Package refjoin provides naive, obviously-correct online interval joins
// used as test oracles for every engine:
//
//   - Arrival implements the serving semantics (engine.OnArrival with a
//     single joiner): each base tuple aggregates the probe tuples that
//     arrived before it.
//   - EventTime implements the exact semantics (engine.OnWatermark): each
//     base tuple aggregates every probe tuple inside its window regardless
//     of arrival order.
//
// Both are O(N · buffer) scans with no concurrency, eviction, or indexing —
// slow but trivially auditable.
package refjoin

import (
	"oij/internal/agg"
	"oij/internal/tuple"
	"oij/internal/window"
)

// Arrival returns one result per base tuple under arrival semantics, in
// base-stream order.
func Arrival(tuples []tuple.Tuple, w window.Spec, fn agg.Func) []tuple.Result {
	var out []tuple.Result
	buffers := make(map[tuple.Key][]tuple.Tuple)
	for _, t := range tuples {
		switch t.Side {
		case tuple.Probe:
			buffers[t.Key] = append(buffers[t.Key], t)
		case tuple.Base:
			lo, hi := w.Bounds(t.TS)
			st := agg.NewState(fn)
			for _, p := range buffers[t.Key] {
				if p.TS >= lo && p.TS <= hi {
					st.AddAt(p.TS, p.Val)
				}
			}
			out = append(out, tuple.Result{
				BaseTS:  t.TS,
				Key:     t.Key,
				BaseSeq: t.Seq,
				Agg:     st.Value(),
				Matches: st.Count(),
			})
		}
	}
	return out
}

// EventTime returns one result per base tuple under exact event-time
// semantics, in base-stream order.
func EventTime(tuples []tuple.Tuple, w window.Spec, fn agg.Func) []tuple.Result {
	probes := make(map[tuple.Key][]tuple.Tuple)
	for _, t := range tuples {
		if t.Side == tuple.Probe {
			probes[t.Key] = append(probes[t.Key], t)
		}
	}
	var out []tuple.Result
	for _, t := range tuples {
		if t.Side != tuple.Base {
			continue
		}
		lo, hi := w.Bounds(t.TS)
		st := agg.NewState(fn)
		for _, p := range probes[t.Key] {
			if p.TS >= lo && p.TS <= hi {
				st.AddAt(p.TS, p.Val)
			}
		}
		out = append(out, tuple.Result{
			BaseTS:  t.TS,
			Key:     t.Key,
			BaseSeq: t.Seq,
			Agg:     st.Value(),
			Matches: st.Count(),
		})
	}
	return out
}

// ByBaseSeq indexes results by base sequence number.
func ByBaseSeq(rs []tuple.Result) map[uint64]tuple.Result {
	m := make(map[uint64]tuple.Result, len(rs))
	for _, r := range rs {
		m[r.BaseSeq] = r
	}
	return m
}
