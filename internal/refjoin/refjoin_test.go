package refjoin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oij/internal/agg"
	"oij/internal/tuple"
	"oij/internal/window"
)

func base(key tuple.Key, ts tuple.Time, seq uint64) tuple.Tuple {
	return tuple.Tuple{Key: key, TS: ts, Seq: seq, Side: tuple.Base}
}

func probe(key tuple.Key, ts tuple.Time, val float64) tuple.Tuple {
	return tuple.Tuple{Key: key, TS: ts, Val: val, Side: tuple.Probe}
}

var w = window.Spec{Pre: 10, Fol: 0, Lateness: 5}

func TestArrivalHandComputed(t *testing.T) {
	stream := []tuple.Tuple{
		probe(1, 5, 100),
		base(1, 10, 0),  // sees ts 5 (in [0,10])
		probe(1, 8, 50), // late probe: after base 0
		base(1, 12, 1),  // sees ts 5? 5 < 2? window [2,12]: 5 and 8 -> 150
		base(2, 12, 2),  // other key: nothing
	}
	rs := Arrival(stream, w, agg.Sum)
	if len(rs) != 3 {
		t.Fatalf("%d results", len(rs))
	}
	m := ByBaseSeq(rs)
	if m[0].Agg != 100 || m[0].Matches != 1 {
		t.Fatalf("base 0: %+v", m[0])
	}
	if m[1].Agg != 150 || m[1].Matches != 2 {
		t.Fatalf("base 1: %+v", m[1])
	}
	if m[2].Matches != 0 {
		t.Fatalf("base 2: %+v", m[2])
	}
}

func TestEventTimeHandComputed(t *testing.T) {
	stream := []tuple.Tuple{
		base(1, 10, 0),  // window [0,10]
		probe(1, 8, 50), // arrives later but counts under event time
		probe(1, 11, 7), // outside window
	}
	rs := EventTime(stream, w, agg.Sum)
	m := ByBaseSeq(rs)
	if m[0].Agg != 50 || m[0].Matches != 1 {
		t.Fatalf("base 0: %+v", m[0])
	}
}

func TestWindowBoundsInclusive(t *testing.T) {
	stream := []tuple.Tuple{
		probe(1, 0, 1),  // exactly at lower bound of [0, 10]
		probe(1, 10, 2), // exactly at base timestamp
		base(1, 10, 0),
	}
	for _, rs := range [][]tuple.Result{Arrival(stream, w, agg.Count), EventTime(stream, w, agg.Count)} {
		if rs[0].Matches != 2 {
			t.Fatalf("boundary probes: %+v", rs[0])
		}
	}
}

// TestQuickEventTimeArrivalInvariance: EventTime results are invariant to
// arrival-order shuffles, and when every probe arrives before every base,
// Arrival equals EventTime.
func TestQuickEventTimeArrivalInvariance(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var probes, bases []tuple.Tuple
		for i := 0; i < int(n%40)+5; i++ {
			probes = append(probes, probe(tuple.Key(rng.Intn(3)), tuple.Time(rng.Intn(50)), float64(rng.Intn(10))))
		}
		for i := 0; i < 5; i++ {
			bases = append(bases, base(tuple.Key(rng.Intn(3)), tuple.Time(rng.Intn(50)), uint64(i)))
		}

		ordered := append(append([]tuple.Tuple{}, probes...), bases...)
		shuffled := append([]tuple.Tuple{}, ordered...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

		et1 := ByBaseSeq(EventTime(ordered, w, agg.Sum))
		et2 := ByBaseSeq(EventTime(shuffled, w, agg.Sum))
		ar := ByBaseSeq(Arrival(ordered, w, agg.Sum))
		for seq, r1 := range et1 {
			if et2[seq].Agg != r1.Agg || et2[seq].Matches != r1.Matches {
				return false // not shuffle-invariant
			}
			if ar[seq].Agg != r1.Agg || ar[seq].Matches != r1.Matches {
				return false // probes-first arrival must equal event time
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickArrivalMonotone: adding earlier-arriving probes never decreases
// a count aggregate.
func TestQuickArrivalMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var stream []tuple.Tuple
		for i := 0; i < 30; i++ {
			stream = append(stream, probe(1, tuple.Time(rng.Intn(30)), 1))
		}
		stream = append(stream, base(1, 20, 0))
		before := Arrival(stream, w, agg.Count)[0].Matches
		// Prepend one more in-window probe.
		grown := append([]tuple.Tuple{probe(1, 15, 1)}, stream...)
		after := Arrival(grown, w, agg.Count)[0].Matches
		return after == before+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
