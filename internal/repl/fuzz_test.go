package repl

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"oij/internal/wire"
)

// FuzzReplFrameDecode feeds arbitrary bytes through the replication
// message reader, mirroring the wire-package fuzz targets. Invariants:
// Read never panics; every accepted message re-encodes to the exact bytes
// it was decoded from (so a relay cannot silently mutate the stream); a
// rejected stream fails with EOF, ErrUnexpectedEOF, or ErrBadMessage —
// nothing else; and the reader terminates on every input. The seed corpus
// under testdata/fuzz/FuzzReplFrameDecode is checked in; regenerate with
// TestReplFuzzSeedCorpus below.
func FuzzReplFrameDecode(f *testing.F) {
	for _, b := range seedStreams() {
		f.Add(b)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		rest := data
		for i := 0; i < len(data)+1; i++ { // bounded: each Read consumes >= 1 byte or errors
			m, err := r.Read()
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF && !errors.Is(err, ErrBadMessage) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			re, err := AppendMessage(nil, m)
			if err != nil {
				t.Fatalf("accepted message does not re-encode: %+v: %v", m, err)
			}
			if len(rest) < len(re) || !bytes.Equal(rest[:len(re)], re) {
				t.Fatalf("accepted message does not re-encode to its input bytes:\n in %x\nout %x", rest, re)
			}
			rest = rest[len(re):]
		}
		t.Fatal("reader did not terminate")
	})
}

// seedStreams builds the seed inputs: a full handshake-plus-stream
// exchange, each message kind alone, corrupted and truncated variants,
// and junk.
func seedStreams() [][]byte {
	var frame [wire.WALFrameBytes]byte
	wire.EncodeWALFrame(frame[:], wire.Tuple{Base: true, TS: 42, Key: 7, Val: 3.5})

	var stream bytes.Buffer
	w := NewWriter(&stream)
	for _, m := range []Message{
		{Kind: TagHello, Hello: Hello{Version: ProtocolVersion, Epoch: 1, WALID: 99, Applied: 0}},
		{Kind: TagWelcome, Welcome: Welcome{Epoch: 1, WALID: 99, Commit: 2}},
		{Kind: TagData, Seq: 0, Frame: frame},
		{Kind: TagData, Seq: 1, Frame: frame},
		{Kind: TagHeartbeat, Epoch: 1, Commit: 2},
		{Kind: TagAck, Applied: 2},
		{Kind: TagReset, Oldest: 10},
		{Kind: TagFence, Epoch: 2},
	} {
		w.Write(m)
	}
	w.Flush()

	seeds := [][]byte{stream.Bytes(), {}, {TagHello}, {0x99, 0x00, 0x41}}
	for _, m := range sampleMessages() {
		b, err := AppendMessage(nil, m)
		if err != nil {
			panic(err)
		}
		seeds = append(seeds, b)
		// Checksum-corrupted and truncated variants.
		bad := bytes.Clone(b)
		bad[len(bad)-1] ^= 0xff
		seeds = append(seeds, bad, b[:len(b)/2])
	}
	return seeds
}

// TestReplFuzzSeedCorpus verifies every seed stream is also checked in as
// a corpus file, so the corpus survives outside this process (CI runs the
// fuzzer from testdata). Set OIJ_REGEN_CORPUS=1 to rewrite the corpus
// after changing seedStreams.
func TestReplFuzzSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzReplFrameDecode")
	if os.Getenv("OIJ_REGEN_CORPUS") != "" {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, b := range seedStreams() {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seed corpus missing (set OIJ_REGEN_CORPUS=1 to generate): %v", err)
	}
	if want := len(seedStreams()); len(entries) != want {
		t.Fatalf("corpus has %d files, seedStreams yields %d (set OIJ_REGEN_CORPUS=1 to regenerate)", len(entries), want)
	}
}
