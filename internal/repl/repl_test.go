package repl

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"oij/internal/wire"
)

// sampleMessages returns one well-formed message of every kind.
func sampleMessages() []Message {
	var frame [wire.WALFrameBytes]byte
	wire.EncodeWALFrame(frame[:], wire.Tuple{Base: true, TS: 42, Key: 7, Val: 3.5})
	return []Message{
		{Kind: TagHello, Hello: Hello{Version: ProtocolVersion, Epoch: 3, WALID: 0xdeadbeef, Applied: 129}},
		{Kind: TagWelcome, Welcome: Welcome{Epoch: 4, WALID: 0xdeadbeef, Commit: 512}},
		{Kind: TagReset, Oldest: 1000},
		{Kind: TagFence, Epoch: 9},
		{Kind: TagData, Seq: 777, Frame: frame},
		{Kind: TagHeartbeat, Epoch: 4, Commit: 640},
		{Kind: TagAck, Applied: 600},
	}
}

func TestReplMessageRoundTrip(t *testing.T) {
	for _, want := range sampleMessages() {
		b, err := AppendMessage(nil, want)
		if err != nil {
			t.Fatalf("encode tag 0x%02x: %v", want.Kind, err)
		}
		if n := sizeOf(want.Kind); len(b) != n {
			t.Fatalf("tag 0x%02x: encoded %d bytes, want %d", want.Kind, len(b), n)
		}
		got, n, err := DecodeMessage(b)
		if err != nil {
			t.Fatalf("decode tag 0x%02x: %v", want.Kind, err)
		}
		if n != len(b) {
			t.Fatalf("tag 0x%02x: decoded %d bytes, want %d", want.Kind, n, len(b))
		}
		if got != want {
			t.Fatalf("tag 0x%02x round trip:\n got %+v\nwant %+v", want.Kind, got, want)
		}
	}
}

func TestReplReaderWriterStream(t *testing.T) {
	msgs := sampleMessages()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, m := range msgs {
		if err := w.Write(m); err != nil {
			t.Fatalf("write tag 0x%02x: %v", m.Kind, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	r := NewReader(&buf)
	for i, want := range msgs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("read %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("after last message: err = %v, want io.EOF", err)
	}
}

// Every single-bit flip anywhere in an encoded message must be rejected:
// either as a checksum mismatch, an unknown tag, or a version mismatch —
// never decoded as a (different) valid message.
func TestReplMessageBitFlipsRejected(t *testing.T) {
	for _, m := range sampleMessages() {
		b, err := AppendMessage(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		for i := range b {
			for bit := 0; bit < 8; bit++ {
				mut := bytes.Clone(b)
				mut[i] ^= 1 << bit
				got, _, err := DecodeMessage(mut)
				// A tag flip may turn the message into a shorter
				// message's prefix; the checksum still catches it, or
				// the length check reports a truncation. Both reject.
				if err == nil {
					t.Fatalf("tag 0x%02x: flip byte %d bit %d decoded as %+v", m.Kind, i, bit, got)
				}
			}
		}
	}
}

func TestReplDecodeTruncated(t *testing.T) {
	for _, m := range sampleMessages() {
		b, err := AppendMessage(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		for n := 1; n < len(b); n++ {
			if _, _, err := DecodeMessage(b[:n]); err != io.ErrUnexpectedEOF {
				t.Fatalf("tag 0x%02x truncated to %d: err = %v, want io.ErrUnexpectedEOF", m.Kind, n, err)
			}
		}
	}
	if _, _, err := DecodeMessage(nil); err != io.ErrUnexpectedEOF {
		t.Fatalf("empty: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestReplReaderTruncatedStream(t *testing.T) {
	b, err := AppendMessage(nil, Message{Kind: TagAck, Applied: 5})
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(b[:len(b)-1]))
	if _, err := r.Read(); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn stream: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestReplUnknownTag(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{0x7f, 0, 0, 0}))
	if _, err := r.Read(); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("unknown tag: err = %v, want ErrBadMessage", err)
	}
	if _, _, err := DecodeMessage([]byte{0xff}); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("unknown tag (decode): err = %v, want ErrBadMessage", err)
	}
}

func TestReplHelloVersionMismatch(t *testing.T) {
	b, err := AppendMessage(nil, Message{Kind: TagHello, Hello: Hello{Version: ProtocolVersion + 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeMessage(b); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("future version: err = %v, want ErrBadMessage", err)
	}
}

func TestReplEncodeUnknownKind(t *testing.T) {
	if _, err := AppendMessage(nil, Message{Kind: 0x42}); err == nil {
		t.Fatal("encoding unknown kind succeeded")
	}
}

// The data payload is a verbatim WAL frame: whatever bytes the primary's
// log holds — including a frame that fails the WAL-level checksum — must
// survive the trip so the standby's log is byte-identical.
func TestReplDataCarriesFrameVerbatim(t *testing.T) {
	var frame [wire.WALFrameBytes]byte
	for i := range frame {
		frame[i] = byte(i * 7)
	}
	b, err := AppendMessage(nil, Message{Kind: TagData, Seq: 1, Frame: frame})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeMessage(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Frame != frame {
		t.Fatalf("frame mutated in transit:\n got %x\nwant %x", got.Frame, frame)
	}
}

func TestRoleStrings(t *testing.T) {
	for _, r := range []Role{RoleNone, RolePrimary, RoleStandby, RoleFenced} {
		got, err := ParseRole(r.String())
		if err != nil || got != r {
			t.Fatalf("ParseRole(%q) = %v, %v; want %v", r.String(), got, err, r)
		}
	}
	if Role(99).String() != "unknown" {
		t.Fatalf("out-of-range role: %q", Role(99).String())
	}
	if _, err := ParseRole("bogus"); err == nil {
		t.Fatal("ParseRole(bogus) succeeded")
	}
	if !RolePrimary.Serving() || !RoleNone.Serving() {
		t.Fatal("primary/none must serve")
	}
	if RoleStandby.Serving() || RoleFenced.Serving() {
		t.Fatal("standby/fenced must not serve")
	}
}

// The asymmetry that makes fencing safe: the primary's self-fence
// deadline is strictly inside the standby's promotion deadline for any
// lease, so the zombie stops acking before the standby starts serving.
func TestLeaseTimingAsymmetry(t *testing.T) {
	for _, d := range []time.Duration{4 * time.Millisecond, time.Second, 5 * time.Second, time.Minute} {
		if f := FenceAfter(d); f >= d {
			t.Fatalf("lease %v: FenceAfter %v not strictly inside the lease", d, f)
		}
		hb := HeartbeatEvery(d)
		if hb <= 0 {
			t.Fatalf("lease %v: heartbeat cadence %v", d, hb)
		}
		// At least two heartbeats fit inside the fence window, so one
		// lost heartbeat alone cannot fence a healthy primary.
		if 2*hb > FenceAfter(d) && d >= 4*time.Millisecond*4 {
			t.Fatalf("lease %v: only %v per heartbeat inside fence window %v", d, hb, FenceAfter(d))
		}
	}
	if HeartbeatEvery(time.Microsecond) < time.Millisecond {
		t.Fatal("degenerate lease must floor the heartbeat cadence")
	}
}

func TestLeaseRenewExpire(t *testing.T) {
	t0 := time.Unix(1000, 0)
	l := NewLease(time.Second, t0)
	if l.Expired(t0.Add(999 * time.Millisecond)) {
		t.Fatal("expired before the lease ran out")
	}
	if !l.Expired(t0.Add(time.Second)) {
		t.Fatal("not expired at the deadline")
	}
	l.Renew(t0.Add(900 * time.Millisecond))
	if l.Expired(t0.Add(1800 * time.Millisecond)) {
		t.Fatal("renewal did not extend the lease")
	}
	if !l.Expired(t0.Add(1900 * time.Millisecond)) {
		t.Fatal("lease outlived its renewal")
	}
	// Out-of-order renewals must not move time backwards.
	l.Renew(t0)
	if l.Expired(t0.Add(1899 * time.Millisecond)) {
		t.Fatal("stale renewal shortened the lease")
	}
	if got := l.Remaining(t0.Add(1800 * time.Millisecond)); got != 100*time.Millisecond {
		t.Fatalf("Remaining = %v, want 100ms", got)
	}
	if got := l.Remaining(t0.Add(5 * time.Second)); got != 0 {
		t.Fatalf("Remaining after expiry = %v, want 0", got)
	}
}

func TestLeaseDisarmed(t *testing.T) {
	t0 := time.Unix(1000, 0)
	l := NewLease(0, t0)
	if l.Expired(t0.Add(24 * time.Hour)) {
		t.Fatal("disarmed lease expired")
	}
	if l.Duration() != 0 {
		t.Fatalf("Duration = %v, want 0", l.Duration())
	}
}
